; Audited exceptions to nsql-lint rules. Each entry suppresses one rule
; at one site and must say why the invariant still holds. Stale entries
; (matching no finding) fail the lint, so remove entries once the code
; they excuse is gone. Staleness is judged only against rules enabled in
; the run: `--rule` subsets don't flag other rules' entries.
;
; Re-audited at the NOWAIT-LEAK/SPAN-LEAK -> RES-LEAK migration: neither
; entry names a retired rule and both sites still stand as written.

((rule DET-HASHITER) (file lib/lock/lock.ml) (line 98)
 (note "overlap probe on the point-lock hash: the fold only accumulates a
        conflict set, callers sort every escaping list (holders uses
        sort_uniq, acquire sorts blocker txs), so traversal order cannot
        reach state or output; sorting here would put an O(n log n) pass
        on the hot point-probe path"))

((rule LOCK-ORDER) (file lib/dp/dp.ml) (line 366)
 (note "try_lock is the single acquisition wrapper and receives its
        resource as a variable, so the rule cannot rank it; every call
        site passes a literal constructor and is checked individually"))

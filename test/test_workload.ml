(* Tests of the workload generators: Wisconsin determinism and schema
   properties; DebitCredit consistency across the SQL and ENSCRIBE
   implementations. *)

module N = Nsql_core.Nonstop_sql
module Row = Nsql_row.Row
module Wisconsin = Nsql_workload.Wisconsin
module Debitcredit = Nsql_workload.Debitcredit
module Errors = Nsql_util.Errors

let get_ok = Errors.get_ok

let wisconsin_loads () =
  let node = N.create_node () in
  get_ok ~ctx:"wisc"
    (Wisconsin.create node ~name:"tenktup1" ~rows:1000 ());
  let s = N.session node in
  (match N.exec_exn s "SELECT COUNT(*) FROM tenktup1" with
  | N.Rows { rows = [ [| Row.Vint n |] ]; _ } ->
      Alcotest.(check int) "row count" 1000 n
  | _ -> Alcotest.fail "bad count");
  (* unique1 is a permutation: min 0, max n-1, all distinct *)
  (match
     N.exec_exn s "SELECT MIN(unique1), MAX(unique1), COUNT(*) FROM tenktup1"
   with
  | N.Rows { rows = [ [| Row.Vint mn; Row.Vint mx; Row.Vint c |] ]; _ } ->
      Alcotest.(check int) "min" 0 mn;
      Alcotest.(check int) "max" 999 mx;
      Alcotest.(check int) "count" 1000 c
  | _ -> Alcotest.fail "bad permutation stats");
  (* selectivity sanity: the 1% predicate selects 1% *)
  match
    N.exec_exn s "SELECT COUNT(*) FROM tenktup1 WHERE unique1 >= 400 AND unique1 < 410"
  with
  | N.Rows { rows = [ [| Row.Vint n |] ]; _ } ->
      Alcotest.(check int) "1% selection" 10 n
  | _ -> Alcotest.fail "bad selectivity"

let wisconsin_deterministic () =
  let load () =
    let node = N.create_node () in
    get_ok ~ctx:"wisc" (Wisconsin.create node ~name:"t" ~rows:200 ());
    let s = N.session node in
    match N.exec_exn s "SELECT unique1 FROM t WHERE unique2 < 5 ORDER BY unique2" with
    | N.Rows { rows; _ } ->
        List.map (fun r -> match r.(0) with Row.Vint i -> i | _ -> -1) rows
    | _ -> Alcotest.fail "bad rows"
  in
  Alcotest.(check (list int)) "two loads identical" (load ()) (load ())

let wisconsin_partitioned () =
  let node = N.create_node ~volumes:4 () in
  get_ok ~ctx:"wisc"
    (Wisconsin.create node ~name:"t" ~rows:400 ~partitions:4 ());
  let s = N.session node in
  match N.exec_exn s "SELECT COUNT(*) FROM t" with
  | N.Rows { rows = [ [| Row.Vint 400 |] ]; _ } -> ()
  | _ -> Alcotest.fail "partitioned load wrong"

let queries_run () =
  let node = N.create_node () in
  get_ok ~ctx:"wisc" (Wisconsin.create node ~name:"a" ~rows:500 ());
  get_ok ~ctx:"wisc" (Wisconsin.create node ~name:"b" ~rows:500 ());
  let s = N.session node in
  List.iter
    (fun q ->
      match N.exec s q.Wisconsin.q_sql with
      | Ok (N.Rows _) -> ()
      | Ok _ -> Alcotest.fail (q.Wisconsin.q_id ^ ": no rows result")
      | Error e ->
          Alcotest.fail (q.Wisconsin.q_id ^ ": " ^ Errors.to_string e))
    (Wisconsin.selection_queries ~table:"a" ~rows:500
    @ Wisconsin.agg_and_join_queries ~table:"a" ~table2:"b" ~rows:500)

let debitcredit_consistent () =
  (* run the same transaction mix through both implementations; final
     account totals and history counts must agree *)
  let txs = 50 in
  let deltas = List.init txs (fun i -> float_of_int ((i mod 19) - 9)) in
  let aids = List.init txs (fun i -> (i * 37) mod 200) in
  (* SQL side *)
  let node_sql = N.create_node () in
  let db_sql =
    get_ok ~ctx:"sql setup"
      (Debitcredit.setup_sql node_sql ~accounts:200 ~tellers:20 ~branches:2)
  in
  let s = N.session node_sql in
  List.iter2
    (fun aid delta ->
      get_ok ~ctx:"sql tx" (Debitcredit.run_sql_tx db_sql s ~aid ~delta))
    aids deltas;
  let sql_total, sql_hist = get_ok ~ctx:"sql bal" (Debitcredit.sql_balances db_sql s) in
  (* ENSCRIBE side *)
  let node_ens = N.create_node () in
  let db_ens =
    get_ok ~ctx:"ens setup"
      (Debitcredit.setup_enscribe node_ens ~accounts:200 ~tellers:20 ~branches:2)
  in
  List.iter2
    (fun aid delta ->
      get_ok ~ctx:"ens tx" (Debitcredit.run_enscribe_tx node_ens db_ens ~aid ~delta))
    aids deltas;
  let ens_total, ens_hist =
    get_ok ~ctx:"ens bal" (Debitcredit.enscribe_balances node_ens db_ens)
  in
  Alcotest.(check (float 1e-6)) "totals agree" sql_total ens_total;
  Alcotest.(check int) "history counts agree" sql_hist ens_hist;
  let expected = 200_000. +. List.fold_left ( +. ) 0. deltas in
  Alcotest.(check (float 1e-6)) "conservation" expected sql_total

let debitcredit_sql_cheaper_messages () =
  (* the headline integration claim: the SQL transaction needs no
     preliminary reads, so it sends fewer FS-DP messages than ENSCRIBE *)
  let node_sql = N.create_node () in
  let db_sql =
    get_ok ~ctx:"setup" (Debitcredit.setup_sql node_sql ~accounts:100 ~tellers:10 ~branches:1)
  in
  let s = N.session node_sql in
  let _, d_sql =
    N.measure node_sql (fun () ->
        for i = 0 to 19 do
          get_ok ~ctx:"tx" (Debitcredit.run_sql_tx db_sql s ~aid:i ~delta:1.)
        done)
  in
  let node_ens = N.create_node () in
  let db_ens =
    get_ok ~ctx:"setup"
      (Debitcredit.setup_enscribe node_ens ~accounts:100 ~tellers:10 ~branches:1)
  in
  let _, d_ens =
    N.measure node_ens (fun () ->
        for i = 0 to 19 do
          get_ok ~ctx:"tx" (Debitcredit.run_enscribe_tx node_ens db_ens ~aid:i ~delta:1.)
        done)
  in
  let m_sql = d_sql.Nsql_sim.Stats.msgs_sent in
  let m_ens = d_ens.Nsql_sim.Stats.msgs_sent in
  Alcotest.(check bool)
    (Printf.sprintf "SQL %d msgs < ENSCRIBE %d msgs" m_sql m_ens)
    true (m_sql < m_ens)

(* enabling DP-side lock waiting must be free for uncontended sessions: a
   single session never parks, so its message and byte counts are
   identical with the feature on and off *)
let lock_wait_free_when_uncontended () =
  let run dp_lock_wait =
    let config = Nsql_sim.Config.v ~dp_lock_wait () in
    let node = N.create_node ~config () in
    let db =
      get_ok ~ctx:"setup"
        (Debitcredit.setup_sql node ~accounts:50 ~tellers:5 ~branches:1)
    in
    let s = N.session node in
    let _, d =
      N.measure node (fun () ->
          for i = 0 to 14 do
            get_ok ~ctx:"tx" (Debitcredit.run_sql_tx db s ~aid:i ~delta:1.)
          done)
    in
    d
  in
  let off = run false and on = run true in
  let module S = Nsql_sim.Stats in
  Alcotest.(check int) "messages identical" off.S.msgs_sent on.S.msgs_sent;
  Alcotest.(check int) "request bytes identical" off.S.msg_req_bytes
    on.S.msg_req_bytes;
  Alcotest.(check int) "reply bytes identical" off.S.msg_reply_bytes
    on.S.msg_reply_bytes;
  Alcotest.(check int) "no queued waits" 0 on.S.lock_waits

(* the transfer driver itself, uncontended: one terminal commits everything
   with no waits, no deadlocks, no retries, and conserves money *)
let transfer_single_terminal () =
  let config = Nsql_sim.Config.v ~dp_lock_wait:true () in
  let node = N.create_node ~config () in
  let db = get_ok ~ctx:"setup" (Debitcredit.setup_transfer node ~accounts:4) in
  let rep = Debitcredit.run_transfers db ~terminals:1 ~txs_per_terminal:8 () in
  Alcotest.(check int) "all committed" 8 rep.Debitcredit.x_committed;
  Alcotest.(check int) "no retries" 0 rep.Debitcredit.x_retries;
  Alcotest.(check int) "no failures" 0 rep.Debitcredit.x_failed;
  let sum = get_ok ~ctx:"sum" (Debitcredit.transfer_balance_sum db) in
  Alcotest.(check (float 1e-6)) "conservation" 4000. sum

let suite =
  [
    Alcotest.test_case "wisconsin loads correctly" `Quick wisconsin_loads;
    Alcotest.test_case "wisconsin deterministic" `Quick wisconsin_deterministic;
    Alcotest.test_case "wisconsin partitioned" `Quick wisconsin_partitioned;
    Alcotest.test_case "benchmark queries run" `Quick queries_run;
    Alcotest.test_case "debitcredit SQL = ENSCRIBE results" `Quick
      debitcredit_consistent;
    Alcotest.test_case "debitcredit SQL cheaper in messages" `Quick
      debitcredit_sql_cheaper_messages;
    Alcotest.test_case "lock waiting free when uncontended" `Quick
      lock_wait_free_when_uncontended;
    Alcotest.test_case "transfer driver, single terminal" `Quick
      transfer_single_terminal;
  ]

(* Integration tests of the Disk Process: the FS-DP protocol codec, record
   operations, set-oriented operations with re-drive, SCBs, field-compressed
   audit, undo/abort, crash recovery. *)

open Harness
module Dp_msg = Nsql_dp.Dp_msg
module Stats = Nsql_sim.Stats
module Ar = Nsql_audit.Audit_record

let codec_roundtrip () =
  let reqs =
    [
      Dp_msg.R_read { file = 3; tx = 7; key = "k"; lock = Dp_msg.L_shared };
      Dp_msg.R_get_first
        {
          file = 1;
          tx = 2;
          buffering = Dp_msg.B_vsbb;
          range = Expr.{ lo = "a"; hi = Keycode.high_value };
          pred = Some Expr.(Cmp (Gt, Field 1, float_ 0.));
          proj = Some [| 0; 2 |];
          lock = Dp_msg.L_none;
        };
      Dp_msg.R_update_subset_first
        {
          file = 1;
          tx = 2;
          range = Expr.full_range;
          pred = None;
          assignments =
            [ { Expr.target = 1; source = Expr.(Binop (Mul, Field 1, float_ 1.07)) } ];
        };
      Dp_msg.R_insert_block
        { file = 0; tx = 1; rows = [ [| Row.Vint 1; Row.Vstr "x" |] ] };
      Dp_msg.R_read_next
        { file = 0; tx = 0; from_key = "q"; inclusive = true;
          lock = Dp_msg.L_none; sbb = true };
    ]
  in
  List.iter
    (fun req ->
      let req' =
        match Dp_msg.decode_request (Dp_msg.encode_request req) with
        | Ok r -> r
        | Error e -> failwith (Dp_msg.decode_error_to_string e)
      in
      Alcotest.(check string) "request roundtrip (by tag+size)"
        (Dp_msg.tag req ^ string_of_int (String.length (Dp_msg.encode_request req)))
        (Dp_msg.tag req' ^ string_of_int (String.length (Dp_msg.encode_request req'))))
    reqs;
  let replies =
    [
      Dp_msg.Rp_ok;
      Dp_msg.Rp_record { key = "k"; record = "r" };
      Dp_msg.Rp_vblock
        { rows = [ [| Row.Vint 1 |]; [| Row.Null |] ]; last_key = "z"; more = true; scb = 4 };
      Dp_msg.Rp_blocked { blockers = [ 3; 9 ]; processed = 2; last_key = "m"; scb = 1 };
      Dp_msg.Rp_error (Errors.Duplicate_key "dup");
    ]
  in
  List.iter
    (fun reply ->
      let reply' =
        match Dp_msg.decode_reply (Dp_msg.encode_reply reply) with
        | Ok r -> r
        | Error e -> failwith (Dp_msg.decode_error_to_string e)
      in
      Alcotest.(check string) "reply roundtrip"
        (String.length (Dp_msg.encode_reply reply) |> string_of_int)
        (String.length (Dp_msg.encode_reply reply') |> string_of_int))
    replies

let setup_with_file () =
  let n = node () in
  let file = create_accounts n in
  (n, file)

let insert_read_commit () =
  let n, file = setup_with_file () in
  in_tx n (fun tx ->
      let open Errors in
      let* () = Fs.insert_row n.fs file ~tx (account 1 500. "alice") in
      let* () = Fs.insert_row n.fs file ~tx (account 2 700. "bob") in
      Ok ());
  in_tx n (fun tx ->
      let open Errors in
      let* record = Fs.read n.fs file ~tx ~key:(acct_key 1) ~lock:Dp_msg.L_shared in
      let row = Row.decode_exn account_schema record in
      Alcotest.(check bool) "balance read back" true
        (Row.equal_value (Row.Vfloat 500.) row.(1));
      Ok ())

let duplicate_key_via_messages () =
  let n, file = setup_with_file () in
  in_tx n (fun tx -> Fs.insert_row n.fs file ~tx (account 1 1. "x"));
  let tx = Tmf.begin_tx n.tmf in
  (match Fs.insert_row n.fs file ~tx (account 1 2. "y") with
  | Error (Errors.Duplicate_key _) -> ()
  | Ok () -> Alcotest.fail "duplicate accepted"
  | Error e -> Alcotest.fail (Errors.to_string e));
  get_ok ~ctx:"abort" (Tmf.abort n.tmf ~tx)

let check_constraint_enforced_at_dp () =
  let n = node () in
  (* CHECK balance >= 0, enforced in the Disk Process *)
  let check = Some Expr.(Cmp (Ge, Field 1, float_ 0.)) in
  let file = create_accounts ~check n in
  let tx = Tmf.begin_tx n.tmf in
  (match Fs.insert_row n.fs file ~tx (account 1 (-5.) "red") with
  | Error (Errors.Constraint_violation _) -> ()
  | Ok () -> Alcotest.fail "negative balance accepted"
  | Error e -> Alcotest.fail (Errors.to_string e));
  get_ok ~ctx:"insert ok" (Fs.insert_row n.fs file ~tx (account 1 5. "ok"));
  (* update that would violate the constraint must be rejected DP-side
     without a preliminary read message *)
  (match
     Fs.update_subset n.fs file ~tx ~range:full_range
       [ { Expr.target = 1; source = Expr.(Binop (Sub, Field 1, float_ 100.)) } ]
   with
  | Error (Errors.Constraint_violation _) -> ()
  | Ok _ -> Alcotest.fail "constraint-violating update accepted"
  | Error e -> Alcotest.fail (Errors.to_string e));
  get_ok ~ctx:"abort" (Tmf.abort n.tmf ~tx)

let vsbb_scan_results () =
  let n, file = setup_with_file () in
  load_accounts n file 200;
  in_tx n (fun tx ->
      let sc =
        Fs.open_scan n.fs file ~tx ~access:Fs.A_vsbb ~range:full_range
          ~pred:Expr.(Cmp (Ge, Field 1, float_ 15000.))
          ~proj:[| 0; 2 |] ~lock:Dp_msg.L_shared ()
      in
      let rows = drain_scan n sc in
      (* balances are 100*i, i in 0..199; >= 15000 means i >= 150 *)
      Alcotest.(check int) "row count" 50 (List.length rows);
      (match rows with
      | first :: _ ->
          Alcotest.(check bool) "projected first row" true
            (Row.equal_row [| Row.Vint 150; Row.Vstr "owner-0150" |] first)
      | [] -> Alcotest.fail "no rows");
      Ok ())

let scan_modes_agree () =
  let n, file = setup_with_file () in
  load_accounts n file 300;
  let pred = Expr.(Cmp (Lt, Field 0, int_ 123)) in
  let collect access =
    in_tx n (fun tx ->
        let sc =
          Fs.open_scan n.fs file ~tx ~access ~range:full_range ~pred
            ~proj:[| 0 |] ~lock:Dp_msg.L_none ()
        in
        Ok (drain_scan n sc))
  in
  let va = collect Fs.A_vsbb in
  let ra = collect Fs.A_rsbb in
  let rec_ = collect Fs.A_record in
  Alcotest.(check int) "vsbb count" 123 (List.length va);
  Alcotest.(check bool) "vsbb = rsbb" true
    (List.for_all2 Row.equal_row va ra);
  Alcotest.(check bool) "vsbb = record" true
    (List.for_all2 Row.equal_row va rec_)

let vsbb_fewer_messages () =
  let n, file = setup_with_file () in
  load_accounts n file 500;
  let messages access =
    let before = (Sim.stats n.sim).Stats.msgs_sent in
    in_tx n (fun tx ->
        let sc =
          Fs.open_scan n.fs file ~tx ~access ~range:full_range
            ~pred:Expr.(Cmp (Eq, Field 2, str "owner-0100"))
            ~proj:[| 0 |] ~lock:Dp_msg.L_none ()
        in
        ignore (drain_scan n sc);
        Ok ());
    (Sim.stats n.sim).Stats.msgs_sent - before
  in
  let m_rec = messages Fs.A_record in
  let m_rsbb = messages Fs.A_rsbb in
  let m_vsbb = messages Fs.A_vsbb in
  Alcotest.(check bool)
    (Printf.sprintf "record(%d) > rsbb(%d) > vsbb(%d)" m_rec m_rsbb m_vsbb)
    true
    (m_rec > m_rsbb && m_rsbb > m_vsbb)

let redrive_protocol () =
  (* a tiny VSBB buffer forces continuation re-drives *)
  let config = Config.v ~vsbb_buffer_bytes:256 () in
  let n = node ~config () in
  let file = create_accounts n in
  load_accounts n file 120;
  let s = Sim.stats n.sim in
  in_tx n (fun tx ->
      let sc =
        Fs.open_scan n.fs file ~tx ~access:Fs.A_vsbb ~range:full_range
          ~lock:Dp_msg.L_none ()
      in
      let rows = drain_scan n sc in
      Alcotest.(check int) "all rows despite re-drives" 120 (List.length rows);
      Ok ());
  Alcotest.(check bool)
    (Printf.sprintf "re-drives happened (%d)" s.Stats.redrives)
    true (s.Stats.redrives > 3)

let update_subset_applies () =
  let n, file = setup_with_file () in
  load_accounts n file 100;
  let updated =
    in_tx n (fun tx ->
        Fs.update_subset n.fs file ~tx ~range:full_range
          ~pred:Expr.(Cmp (Ge, Field 1, float_ 5000.))
          [ { Expr.target = 1; source = Expr.(Binop (Mul, Field 1, float_ 1.07)) } ])
  in
  Alcotest.(check int) "rows updated" 50 updated;
  in_tx n (fun tx ->
      let open Errors in
      let* record = Fs.read n.fs file ~tx ~key:(acct_key 60) ~lock:Dp_msg.L_none in
      let row = Row.decode_exn account_schema record in
      (match row.(1) with
      | Row.Vfloat f -> Alcotest.(check (float 1e-6)) "interest applied" (6000. *. 1.07) f
      | _ -> Alcotest.fail "bad type");
      let* record = Fs.read n.fs file ~tx ~key:(acct_key 10) ~lock:Dp_msg.L_none in
      let row = Row.decode_exn account_schema record in
      (match row.(1) with
      | Row.Vfloat f -> Alcotest.(check (float 1e-6)) "below threshold untouched" 1000. f
      | _ -> Alcotest.fail "bad type");
      Ok ())

let update_subset_field_compressed_audit () =
  let n, file = setup_with_file () in
  load_accounts n file 50;
  let s = Sim.stats n.sim in
  let audit_before = s.Stats.audit_bytes in
  let _count =
    in_tx n (fun tx ->
        Fs.update_subset n.fs file ~tx ~range:full_range
          [ { Expr.target = 1; source = Expr.(Binop (Mul, Field 1, float_ 1.07)) } ])
  in
  let sql_audit = s.Stats.audit_bytes - audit_before in
  (* same update via the record-at-a-time full-image path *)
  let audit_before = s.Stats.audit_bytes in
  in_tx n (fun tx ->
      let open Errors in
      let rec go i =
        if i >= 50 then Ok ()
        else
          let* () =
            Fs.update_row_via_key n.fs file ~tx ~key:(acct_key i)
              [ { Expr.target = 1; source = Expr.(Binop (Mul, Field 1, float_ 1.07)) } ]
          in
          go (i + 1)
      in
      go 0);
  let full_audit = s.Stats.audit_bytes - audit_before in
  (* the account record is small (~45B); even so the compressed form must
     clearly win — the E4 bench measures the larger, realistic ratio on
     wide records *)
  Alcotest.(check bool)
    (Printf.sprintf "field-compressed %dB < full-image %dB" sql_audit full_audit)
    true
    (sql_audit * 3 < full_audit * 2)

let delete_subset_applies () =
  let n, file = setup_with_file () in
  load_accounts n file 100;
  let deleted =
    in_tx n (fun tx ->
        Fs.delete_subset n.fs file ~tx ~range:full_range
          ~pred:Expr.(Cmp (Lt, Field 0, int_ 30))
          ())
  in
  Alcotest.(check int) "rows deleted" 30 deleted;
  Alcotest.(check int) "remaining" 70 (Fs.record_count n.fs file)

let abort_undoes_everything () =
  let n, file = setup_with_file () in
  load_accounts n file 40;
  let tx = Tmf.begin_tx n.tmf in
  get_ok ~ctx:"ins" (Fs.insert_row n.fs file ~tx (account 999 1. "ghost"));
  ignore
    (get_ok ~ctx:"upd"
       (Fs.update_subset n.fs file ~tx ~range:full_range
          [ { Expr.target = 1; source = Expr.(Binop (Add, Field 1, float_ 5.)) } ]));
  ignore
    (get_ok ~ctx:"del"
       (Fs.delete_subset n.fs file ~tx ~range:full_range
          ~pred:Expr.(Cmp (Lt, Field 0, int_ 5))
          ()));
  get_ok ~ctx:"abort" (Tmf.abort n.tmf ~tx);
  (* everything back to the loaded state *)
  Alcotest.(check int) "count restored" 40 (Fs.record_count n.fs file);
  in_tx n (fun tx ->
      let open Errors in
      let* record = Fs.read n.fs file ~tx ~key:(acct_key 7) ~lock:Dp_msg.L_none in
      let row = Row.decode_exn account_schema record in
      (match row.(1) with
      | Row.Vfloat f -> Alcotest.(check (float 1e-9)) "balance restored" 700. f
      | _ -> Alcotest.fail "bad type");
      (match Fs.read n.fs file ~tx ~key:(acct_key 999) ~lock:Dp_msg.L_none with
      | Error (Errors.Not_found_key _) -> ()
      | Ok _ -> Alcotest.fail "ghost insert survived abort"
      | Error e -> Alcotest.fail (Errors.to_string e));
      Ok ())

let crash_recovery_restores_committed () =
  let n, file = setup_with_file () in
  load_accounts n file 60;
  (* a committed update *)
  ignore
    (in_tx n (fun tx ->
         Fs.update_subset n.fs file ~tx ~range:full_range
           ~pred:Expr.(Cmp (Eq, Field 0, int_ 10))
           [ { Expr.target = 1; source = Expr.(Const (Row.Vfloat 9999.)) } ]));
  (* an uncommitted transaction in flight at the crash; its audit happens
     to reach the trail (buffer-full flush) so recovery must recognise it
     as a loser *)
  let tx = Tmf.begin_tx n.tmf in
  get_ok ~ctx:"ins" (Fs.insert_row n.fs file ~tx (account 777 1. "loser"));
  Trail.force n.trail (Int64.pred (Trail.next_lsn n.trail));
  (* crash: volatile state lost *)
  Dp.crash n.dps.(0);
  let outcome = Dp.recover n.dps.(0) in
  Alcotest.(check bool) "some records replayed" true
    (outcome.Nsql_tmf.Recovery.replayed >= 60);
  Alcotest.(check bool) "losers detected" true
    (outcome.Nsql_tmf.Recovery.losers >= 1);
  Alcotest.(check int) "committed count restored" 60 (Fs.record_count n.fs file);
  (match Dp.check_invariants n.dps.(0) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  in_tx n (fun tx ->
      let open Errors in
      let* record = Fs.read n.fs file ~tx ~key:(acct_key 10) ~lock:Dp_msg.L_none in
      let row = Row.decode_exn account_schema record in
      (match row.(1) with
      | Row.Vfloat f ->
          Alcotest.(check (float 1e-9)) "committed update survived" 9999. f
      | _ -> Alcotest.fail "bad type");
      (match Fs.read n.fs file ~tx ~key:(acct_key 777) ~lock:Dp_msg.L_none with
      | Error (Errors.Not_found_key _) -> ()
      | Ok _ -> Alcotest.fail "uncommitted insert survived crash"
      | Error e -> Alcotest.fail (Errors.to_string e));
      Ok ())

let update_of_primary_key_rejected () =
  let n, file = setup_with_file () in
  load_accounts n file 5;
  let tx = Tmf.begin_tx n.tmf in
  (match
     Fs.update_subset n.fs file ~tx ~range:full_range
       [ { Expr.target = 0; source = Expr.(Binop (Add, Field 0, int_ 1)) } ]
   with
  | Error (Errors.Bad_request _) -> ()
  | Ok _ -> Alcotest.fail "primary-key update accepted"
  | Error e -> Alcotest.fail (Errors.to_string e));
  get_ok ~ctx:"abort" (Tmf.abort n.tmf ~tx)

let lock_conflict_reported () =
  let n, file = setup_with_file () in
  load_accounts n file 10;
  let tx1 = Tmf.begin_tx n.tmf in
  ignore
    (get_ok ~ctx:"upd"
       (Fs.update_subset n.fs file ~tx:tx1 ~range:full_range
          ~pred:Expr.(Cmp (Eq, Field 0, int_ 3))
          [ { Expr.target = 1; source = Expr.(Const (Row.Vfloat 0.)) } ]));
  let tx2 = Tmf.begin_tx n.tmf in
  (match Fs.read n.fs file ~tx:tx2 ~key:(acct_key 3) ~lock:Dp_msg.L_shared with
  | Error (Errors.Lock_timeout _) -> ()
  | Ok _ -> Alcotest.fail "conflicting read granted"
  | Error e -> Alcotest.fail (Errors.to_string e));
  get_ok ~ctx:"commit tx1" (Tmf.commit n.tmf ~tx:tx1);
  (* after commit the lock is free *)
  (match Fs.read n.fs file ~tx:tx2 ~key:(acct_key 3) ~lock:Dp_msg.L_shared with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Errors.to_string e));
  get_ok ~ctx:"commit tx2" (Tmf.commit n.tmf ~tx:tx2)

let checkpoint_messages_counted () =
  let n, file = setup_with_file () in
  let s = Sim.stats n.sim in
  let before = s.Stats.checkpoint_msgs in
  in_tx n (fun tx -> Fs.insert_row n.fs file ~tx (account 1 1. "a"));
  Alcotest.(check bool) "mutations checkpoint to backup" true
    (s.Stats.checkpoint_msgs > before)

let suite =
  [
    Alcotest.test_case "protocol codec roundtrip" `Quick codec_roundtrip;
    Alcotest.test_case "insert + read via messages" `Quick insert_read_commit;
    Alcotest.test_case "duplicate key" `Quick duplicate_key_via_messages;
    Alcotest.test_case "CHECK constraint at DP" `Quick
      check_constraint_enforced_at_dp;
    Alcotest.test_case "VSBB scan selects and projects" `Quick vsbb_scan_results;
    Alcotest.test_case "scan modes agree" `Quick scan_modes_agree;
    Alcotest.test_case "VSBB < RSBB < record messages" `Quick
      vsbb_fewer_messages;
    Alcotest.test_case "continuation re-drive protocol" `Quick redrive_protocol;
    Alcotest.test_case "update subset applies expression" `Quick
      update_subset_applies;
    Alcotest.test_case "field-compressed audit smaller" `Quick
      update_subset_field_compressed_audit;
    Alcotest.test_case "delete subset" `Quick delete_subset_applies;
    Alcotest.test_case "abort undoes inserts/updates/deletes" `Quick
      abort_undoes_everything;
    Alcotest.test_case "crash recovery" `Quick crash_recovery_restores_committed;
    Alcotest.test_case "primary-key update rejected" `Quick
      update_of_primary_key_rejected;
    Alcotest.test_case "lock conflict + release on commit" `Quick
      lock_conflict_reported;
    Alcotest.test_case "checkpoints to backup process" `Quick
      checkpoint_messages_counted;
  ]

(* late addition: the raw record interface cannot bypass the CHECK
   constraint of a SQL file *)
let raw_update_checks_constraint () =
  let n = node () in
  let check = Some Expr.(Cmp (Ge, Field 1, float_ 0.)) in
  let file = create_accounts ~check n in
  load_accounts n file 3;
  let tx = Tmf.begin_tx n.tmf in
  let bad = Row.encode account_schema (account 1 (-50.) "evil") in
  (match Fs.update n.fs file ~tx ~key:(acct_key 1) ~record:bad with
  | Error (Errors.Constraint_violation _) -> ()
  | Ok () -> Alcotest.fail "raw UPDATE bypassed CHECK"
  | Error e -> Alcotest.fail (Errors.to_string e));
  (match Fs.insert n.fs file ~tx ~key:(acct_key 99) ~record:bad with
  | Error (Errors.Constraint_violation _) -> ()
  | Ok () -> Alcotest.fail "raw WRITE bypassed CHECK"
  | Error e -> Alcotest.fail (Errors.to_string e));
  get_ok ~ctx:"abort" (Tmf.abort n.tmf ~tx)

let suite =
  suite
  @ [
      Alcotest.test_case "raw record writes respect CHECK" `Quick
        raw_update_checks_constraint;
    ]

(* --- DP lock wait queues (dp_lock_wait) ------------------------------- *)

(* With [dp_lock_wait] on, a conflicting request parks on the Disk
   Process's FIFO wait queue — the reply is simply withheld — instead of
   bouncing back as an immediate denial. These tests drive the DP with
   nowait sends so the test itself can hold locks while other requests
   wait. *)

let wait_node ?(timeout_us = 1_000_000.) () =
  let config = Config.v ~dp_lock_wait:true ~lock_wait_timeout_us:timeout_us () in
  let n = node ~config () in
  let file = create_accounts n in
  load_accounts n file 5;
  (n, file)

let dp_file n = Option.get (Dp.file_id n.dps.(0) "ACCOUNT#p0")

let nowait_read n ~tx ~acct ~lock =
  let req =
    Dp_msg.R_read { file = dp_file n; tx; key = acct_key acct; lock }
  in
  Msg.send_nowait n.msys ~from:n.app_processor ~tag:(Dp_msg.tag req)
    (Dp.endpoint n.dps.(0))
    (Dp_msg.encode_request req)

let reply_of n c =
  match Dp_msg.decode_reply (Msg.await n.msys c) with
  | Ok r -> r
  | Error e -> failwith (Dp_msg.decode_error_to_string e)

let wait_queue_grants_on_release () =
  let n, file = wait_node () in
  let s = Sim.stats n.sim in
  let tx1 = Tmf.begin_tx n.tmf in
  ignore
    (get_ok ~ctx:"tx1 read"
       (Fs.read n.fs file ~tx:tx1 ~key:(acct_key 1) ~lock:Dp_msg.L_exclusive));
  let tx2 = Tmf.begin_tx n.tmf in
  let waits_before = s.Stats.lock_waits in
  let c = nowait_read n ~tx:tx2 ~acct:1 ~lock:Dp_msg.L_exclusive in
  (* tx1's commit releases its locks; the parked request must then be
     granted and the withheld reply delivered *)
  get_ok ~ctx:"commit tx1" (Tmf.commit n.tmf ~tx:tx1);
  (match reply_of n c with
  | Dp_msg.Rp_record _ -> ()
  | Dp_msg.Rp_error e -> Alcotest.fail (Errors.to_string e)
  | _ -> Alcotest.fail "unexpected reply to parked READ");
  Alcotest.(check bool) "request was queued, not denied" true
    (s.Stats.lock_waits > waits_before);
  get_ok ~ctx:"commit tx2" (Tmf.commit n.tmf ~tx:tx2)

let wait_budget_expires () =
  let n, file = wait_node ~timeout_us:2_000. () in
  let tx1 = Tmf.begin_tx n.tmf in
  ignore
    (get_ok ~ctx:"tx1 read"
       (Fs.read n.fs file ~tx:tx1 ~key:(acct_key 1) ~lock:Dp_msg.L_exclusive));
  let tx2 = Tmf.begin_tx n.tmf in
  let c = nowait_read n ~tx:tx2 ~acct:1 ~lock:Dp_msg.L_exclusive in
  (* nothing else is running: draining the event queue runs the park and
     then the wait-budget expiry *)
  Sim.drain n.sim;
  (match reply_of n c with
  | Dp_msg.Rp_error (Errors.Lock_timeout _) -> ()
  | Dp_msg.Rp_error e -> Alcotest.fail (Errors.to_string e)
  | _ -> Alcotest.fail "parked READ should have timed out");
  (* the holder is undisturbed by the waiter's expiry *)
  get_ok ~ctx:"abort tx2" (Tmf.abort n.tmf ~tx:tx2);
  get_ok ~ctx:"commit tx1" (Tmf.commit n.tmf ~tx:tx1)

let deadlock_aborts_youngest () =
  let n, file = wait_node () in
  let s = Sim.stats n.sim in
  let tx1 = Tmf.begin_tx n.tmf in
  let tx2 = Tmf.begin_tx n.tmf in
  Alcotest.(check bool) "tx2 is the younger transaction" true (tx2 > tx1);
  ignore
    (get_ok ~ctx:"tx1 locks acct 1"
       (Fs.read n.fs file ~tx:tx1 ~key:(acct_key 1) ~lock:Dp_msg.L_exclusive));
  ignore
    (get_ok ~ctx:"tx2 locks acct 2"
       (Fs.read n.fs file ~tx:tx2 ~key:(acct_key 2) ~lock:Dp_msg.L_exclusive));
  let deadlocks_before = s.Stats.deadlocks in
  (* crossed requests: tx2 wants acct 1 (parks), then tx1 wants acct 2 —
     the wait-for cycle is detected at block time *)
  let c2 = nowait_read n ~tx:tx2 ~acct:1 ~lock:Dp_msg.L_exclusive in
  let c1 = nowait_read n ~tx:tx1 ~acct:2 ~lock:Dp_msg.L_exclusive in
  (* the victim is the youngest: tx2's parked request is denied *)
  (match reply_of n c2 with
  | Dp_msg.Rp_error (Errors.Deadlock _) -> ()
  | Dp_msg.Rp_error e -> Alcotest.fail (Errors.to_string e)
  | _ -> Alcotest.fail "victim's READ should be denied with Deadlock");
  Alcotest.(check bool) "deadlock counted" true
    (s.Stats.deadlocks > deadlocks_before);
  (* the survivor stays parked; the victim's abort unblocks it *)
  get_ok ~ctx:"abort tx2" (Tmf.abort n.tmf ~tx:tx2);
  (match reply_of n c1 with
  | Dp_msg.Rp_record _ -> ()
  | Dp_msg.Rp_error e -> Alcotest.fail (Errors.to_string e)
  | _ -> Alcotest.fail "unexpected reply to survivor's READ");
  get_ok ~ctx:"commit tx1" (Tmf.commit n.tmf ~tx:tx1)

let crash_flushes_wait_queue () =
  let n, file = wait_node () in
  let tx1 = Tmf.begin_tx n.tmf in
  ignore
    (get_ok ~ctx:"tx1 read"
       (Fs.read n.fs file ~tx:tx1 ~key:(acct_key 1) ~lock:Dp_msg.L_exclusive));
  let tx2 = Tmf.begin_tx n.tmf in
  let c = nowait_read n ~tx:tx2 ~acct:1 ~lock:Dp_msg.L_exclusive in
  (* a blocking no-lock read by tx1 pumps the event queue, so tx2's
     conflicting request is delivered and parked before the crash *)
  ignore
    (get_ok ~ctx:"pump"
       (Fs.read n.fs file ~tx:tx1 ~key:(acct_key 2) ~lock:Dp_msg.L_none));
  Alcotest.(check bool) "request parked, reply withheld" true
    (Msg.done_at c = None);
  Dp.crash n.dps.(0);
  (* no completion may be left unresolvable after the server is gone *)
  (match reply_of n c with
  | Dp_msg.Rp_error (Errors.Io_error _) -> ()
  | Dp_msg.Rp_error e -> Alcotest.fail (Errors.to_string e)
  | _ -> Alcotest.fail "flushed READ should report an I/O error")

let suite =
  suite
  @ [
      Alcotest.test_case "wait queue grants on release" `Quick
        wait_queue_grants_on_release;
      Alcotest.test_case "wait budget expires" `Quick wait_budget_expires;
      Alcotest.test_case "deadlock aborts youngest" `Quick
        deadlock_aborts_youngest;
      Alcotest.test_case "crash flushes wait queue" `Quick
        crash_flushes_wait_queue;
    ]

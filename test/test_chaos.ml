(* The chaos corpus: pinned fault-schedule seeds checked against the
   transactional oracle, a replay-determinism witness, and a QCheck sweep
   over arbitrary seeds.

   Each seed materializes a fault plan (crashes, takeovers, message flaps,
   disk errors, audit stalls, mid-2PC coordinator losses), drives a mixed
   SQL/FS workload through it, and requires the post-recovery state to
   match the serial oracle exactly — any atomicity, durability or index
   inconsistency fails the test with the seed in the message, which is all
   that is needed to replay the run (`sqlci chaos <seed>`). *)

module Chaos = Nsql_chaos.Chaos
module Stats = Nsql_sim.Stats
module Debitcredit = Nsql_workload.Debitcredit

let check_seed ?topology ~txs seed () =
  let r = Chaos.run ~txs ?topology ~seed () in
  Alcotest.(check (list string))
    (Printf.sprintf "seed %d: ACID violations" seed)
    [] r.Chaos.r_violations;
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: transactions committed" seed)
    true
    (r.Chaos.r_txs_committed > 0);
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: faults applied" seed)
    true
    (List.exists (fun (_, n) -> n > 0) r.Chaos.r_faults)

(* seeds with [seed land 3 <> 3] run the single-node scenario (volume
   crash + rollforward, takeover mid-scan, message-path flaps, ...) *)
let single_seeds =
  [ 1; 2; 4; 5; 6; 8; 9; 10; 12; 13; 14; 16; 17; 18; 20; 21; 22; 24 ]

(* seeds with [seed land 3 = 3] run the 2-node cluster scenario, whose
   plans always include a mid-2PC coordinator crash *)
let cluster_seeds = [ 3; 7; 11; 15; 19; 23; 27; 31 ]

let corpus_cases =
  List.map
    (fun seed ->
      Alcotest.test_case
        (Printf.sprintf "seed %d (single)" seed)
        `Quick
        (check_seed ~txs:80 seed))
    single_seeds
  @ List.map
      (fun seed ->
        Alcotest.test_case
          (Printf.sprintf "seed %d (cluster)" seed)
          `Quick
          (check_seed ~txs:80 seed))
      cluster_seeds

(* the same seed must replay byte-identically: every counter of the final
   statistics record — messages, I/Os, ticks, faults — is equal *)
let determinism seed () =
  let r1 = Chaos.run ~txs:60 ~seed () in
  let r2 = Chaos.run ~txs:60 ~seed () in
  Alcotest.(check (list (pair string int)))
    (Printf.sprintf "seed %d: identical statistics" seed)
    (Stats.to_assoc r1.Chaos.r_stats)
    (Stats.to_assoc r2.Chaos.r_stats);
  Alcotest.(check (list (pair string int)))
    "identical fault application"
    r1.Chaos.r_faults r2.Chaos.r_faults;
  Alcotest.(check (list string))
    "identical violations" r1.Chaos.r_violations r2.Chaos.r_violations;
  Alcotest.(check int)
    "identical commit count" r1.Chaos.r_txs_committed r2.Chaos.r_txs_committed

(* the plan alone is also a pure function of the seed *)
let plan_determinism () =
  let p1 = Chaos.plan ~seed:42 () and p2 = Chaos.plan ~seed:42 () in
  Alcotest.(check int)
    "same event count"
    (List.length p1.Chaos.p_events)
    (List.length p2.Chaos.p_events);
  List.iter2
    (fun a b ->
      Alcotest.(check string)
        "same fault"
        (Format.asprintf "%a" Chaos.pp_fault a.Chaos.fault)
        (Format.asprintf "%a" Chaos.pp_fault b.Chaos.fault);
      Alcotest.(check (float 0.)) "same due time" a.Chaos.due b.Chaos.due)
    p1.Chaos.p_events p2.Chaos.p_events

(* any seed QCheck throws at the harness must uphold ACID *)
let qcheck_any_seed =
  QCheck.Test.make ~count:10 ~name:"chaos: arbitrary seeds uphold ACID"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Chaos.run ~txs:30 ~seed () in
      if r.Chaos.r_violations <> [] then
        QCheck.Test.fail_reportf "seed %d violations:@.%s" seed
          (String.concat "\n" r.Chaos.r_violations);
      true)

(* --- contended multi-terminal corpus ---------------------------------- *)

(* pinned seeds for the contention harness: every run must be violation
   free, and these seeds are known to produce wait-for cycles, so each run
   also witnesses at least one detected-and-resolved deadlock *)
let check_contention_seed seed () =
  let r = Chaos.run_contention ~seed () in
  Alcotest.(check (list string))
    (Printf.sprintf "contention seed %d: violations" seed)
    [] r.Chaos.n_violations;
  Alcotest.(check bool)
    (Printf.sprintf "contention seed %d: all transfers committed" seed)
    true
    (r.Chaos.n_transfers.Debitcredit.x_committed > 0);
  Alcotest.(check bool)
    (Printf.sprintf "contention seed %d: requests queued on the DP" seed)
    true (r.Chaos.n_lock_waits > 0);
  Alcotest.(check bool)
    (Printf.sprintf "contention seed %d: deadlock detected and resolved" seed)
    true (r.Chaos.n_deadlocks > 0)

let contention_determinism seed () =
  let r1 = Chaos.run_contention ~seed () in
  let r2 = Chaos.run_contention ~seed () in
  Alcotest.(check (list (pair string int)))
    (Printf.sprintf "contention seed %d: identical statistics" seed)
    (Stats.to_assoc r1.Chaos.n_stats)
    (Stats.to_assoc r2.Chaos.n_stats);
  Alcotest.(check int)
    "identical commit count"
    r1.Chaos.n_transfers.Debitcredit.x_committed
    r2.Chaos.n_transfers.Debitcredit.x_committed;
  Alcotest.(check int)
    "identical retries" r1.Chaos.n_transfers.Debitcredit.x_retries
    r2.Chaos.n_transfers.Debitcredit.x_retries;
  Alcotest.(check int)
    "identical deadlocks" r1.Chaos.n_deadlocks r2.Chaos.n_deadlocks

let qcheck_contention_seed =
  QCheck.Test.make ~count:5 ~name:"contention: arbitrary seeds stay consistent"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Chaos.run_contention ~txs_per_terminal:5 ~seed () in
      if r.Chaos.n_violations <> [] then
        QCheck.Test.fail_reportf "contention seed %d violations:@.%s" seed
          (String.concat "\n" r.Chaos.n_violations);
      true)

(* --- process-pair takeover under live contention ----------------------- *)

(* pinned seeds where the hot volume's primary fails mid-run, with
   terminals mid-scan, parked on the wait queue, or between phases. The
   replica makes the takeover transparent: the oracle must hold, nothing
   may be denied, and no parameter set abandoned. *)
let check_takeover_seed seed () =
  let r = Chaos.run_contention ~takeover:true ~seed () in
  Alcotest.(check (list string))
    (Printf.sprintf "takeover seed %d: violations" seed)
    [] r.Chaos.n_violations;
  Alcotest.(check int)
    (Printf.sprintf "takeover seed %d: exactly one takeover" seed)
    1 r.Chaos.n_stats.Stats.takeovers;
  Alcotest.(check int)
    (Printf.sprintf "takeover seed %d: replica leaves nothing to deny" seed)
    0 r.Chaos.n_transfers.Debitcredit.x_takeover_aborts;
  Alcotest.(check int)
    (Printf.sprintf "takeover seed %d: no transfer abandoned" seed)
    0 r.Chaos.n_transfers.Debitcredit.x_failed;
  Alcotest.(check bool)
    (Printf.sprintf "takeover seed %d: the queue was exercised" seed)
    true (r.Chaos.n_lock_waits > 0)

let takeover_determinism seed () =
  let r1 = Chaos.run_contention ~takeover:true ~seed () in
  let r2 = Chaos.run_contention ~takeover:true ~seed () in
  Alcotest.(check (list (pair string int)))
    (Printf.sprintf "takeover seed %d: identical statistics" seed)
    (Stats.to_assoc r1.Chaos.n_stats)
    (Stats.to_assoc r2.Chaos.n_stats);
  Alcotest.(check int)
    "identical commit count"
    r1.Chaos.n_transfers.Debitcredit.x_committed
    r2.Chaos.n_transfers.Debitcredit.x_committed;
  (* the takeover flag must not perturb a run without it: the extra stream
     draw happens only when armed *)
  let base1 = Chaos.run_contention ~seed () in
  let base2 = Chaos.run_contention ~seed () in
  Alcotest.(check (list (pair string int)))
    "unarmed runs replay identically"
    (Stats.to_assoc base1.Chaos.n_stats)
    (Stats.to_assoc base2.Chaos.n_stats)

(* acknowledged commits are never lost and never doubled: each run's
   violations list already proves its balances match the mirror of exactly
   the acknowledged commits; and when neither run abandons a parameter
   set, the deterministic parameter streams commit exactly once in both,
   so the committed results of the takeover run equal the fault-free
   run's *)
let qcheck_takeover_equivalence =
  QCheck.Test.make ~count:5
    ~name:"takeover: committed results equal the fault-free run"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ff = Chaos.run_contention ~txs_per_terminal:5 ~seed () in
      let tk =
        Chaos.run_contention ~txs_per_terminal:5 ~takeover:true ~seed ()
      in
      if tk.Chaos.n_violations <> [] then
        QCheck.Test.fail_reportf "takeover seed %d violations:@.%s" seed
          (String.concat "\n" tk.Chaos.n_violations);
      if tk.Chaos.n_stats.Stats.takeovers <> 1 then
        QCheck.Test.fail_reportf "takeover seed %d: takeover did not land"
          seed;
      let failed r = r.Chaos.n_transfers.Debitcredit.x_failed in
      if failed ff = 0 && failed tk <> 0 then
        QCheck.Test.fail_reportf
          "takeover seed %d: takeover abandoned %d parameter sets the \
           fault-free run committed"
          seed (failed tk);
      if failed ff = 0 && failed tk = 0
         && ff.Chaos.n_transfers.Debitcredit.x_committed
            <> tk.Chaos.n_transfers.Debitcredit.x_committed
      then
        QCheck.Test.fail_reportf
          "takeover seed %d: %d commits fault-free vs %d across takeover"
          seed ff.Chaos.n_transfers.Debitcredit.x_committed
          tk.Chaos.n_transfers.Debitcredit.x_committed;
      true)

let suite =
  corpus_cases
  @ [
      Alcotest.test_case "replay determinism (single)" `Quick (determinism 17);
      Alcotest.test_case "replay determinism (cluster)" `Quick (determinism 19);
      Alcotest.test_case "plan determinism" `Quick plan_determinism;
      QCheck_alcotest.to_alcotest qcheck_any_seed;
      Alcotest.test_case "contention seed 1" `Quick (check_contention_seed 1);
      Alcotest.test_case "contention seed 4" `Quick (check_contention_seed 4);
      Alcotest.test_case "contention replay determinism" `Quick
        (contention_determinism 9);
      QCheck_alcotest.to_alcotest qcheck_contention_seed;
      Alcotest.test_case "takeover seed 2" `Quick (check_takeover_seed 2);
      Alcotest.test_case "takeover seed 5" `Quick (check_takeover_seed 5);
      Alcotest.test_case "takeover seed 8" `Quick (check_takeover_seed 8);
      Alcotest.test_case "takeover replay determinism" `Quick
        (takeover_determinism 6);
      QCheck_alcotest.to_alcotest qcheck_takeover_equivalence;
    ]

(* Properties of the push-based batched executor: for every query shape
   the batched pipeline and the retained pull-reference path produce
   byte-identical rowsets, byte-identical stats counters (messages, bytes,
   locks, batches, rows — the whole [Stats.to_assoc] vector), and the same
   simulated clock — on random Wisconsin queries, across the published
   Wisconsin suite, and under a chaos fault filter delaying and flapping
   the Disk Processes. The batching is an implementation change only; any
   observable divergence is a bug. *)

module N = Nsql_core.Nonstop_sql
module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Config = Nsql_sim.Config
module Msg = Nsql_msg.Msg
module Row = Nsql_row.Row
module Errors = Nsql_util.Errors
module Wisconsin = Nsql_workload.Wisconsin

let get_ok = Errors.get_ok
let fpr = Printf.sprintf
let rows = 240
let parts = 4

(* a tiny deterministic generator seeded per property case, as in
   test_fanout: keeping everything on the QCheck seed makes shrinking and
   replay exact *)
let prng seed =
  let state = ref (max 1 (seed land 0x3FFFFFFF)) in
  fun n ->
    state := (!state * 48271 + 13) land 0x3FFFFFFF;
    !state mod n

let random_where next =
  match next 7 with
  | 0 -> ""
  | 1 -> fpr " WHERE unique1 < %d" (next rows)
  | 2 -> fpr " WHERE tenpercent = %d" (next 10)
  | 3 ->
      let lo = next rows in
      fpr " WHERE unique2 >= %d AND unique2 < %d" lo (lo + 1 + next rows)
  | 4 -> fpr " WHERE two = 0 OR onepercent = %d" (next (1 + (rows / 100)))
  | 5 ->
      (* equality on the secondary-indexed column: exercises the
         index-scan batch path *)
      fpr " WHERE onepercent = %d" (next (1 + (rows / 100)))
  | _ -> fpr " WHERE four = %d AND unique1 >= %d" (next 4) (next rows)

(* the query shapes cover every batched operator: scan + residual filter,
   projection, grouped and grand aggregates with HAVING, ORDER BY,
   DISTINCT, LIMIT, and the keyed and scan joins *)
let random_select next =
  let where = random_where next in
  match next 8 with
  | 0 -> fpr "SELECT unique1, unique2, stringu1 FROM t%s" where
  | 1 -> fpr "SELECT * FROM t%s" where
  | 2 ->
      fpr "SELECT onepercent, COUNT(*), SUM(unique1), MIN(unique2) FROM t%s GROUP BY onepercent"
        where
  | 3 ->
      fpr
        "SELECT tenpercent, AVG(unique1) FROM t%s GROUP BY tenpercent HAVING COUNT(*) > %d"
        where (next 8)
  | 4 -> fpr "SELECT unique1, stringu1 FROM t%s ORDER BY unique1 DESC LIMIT %d" where (1 + next 20)
  | 5 -> fpr "SELECT DISTINCT four, twenty FROM t%s ORDER BY four, twenty" where
  | 6 ->
      fpr "SELECT a.unique2, b.stringu1 FROM t a, t2 b WHERE a.unique2 = b.unique2 AND a.unique1 < %d"
        (next (rows / 2))
  | _ ->
      fpr "SELECT COUNT(*), SUM(unique1), MIN(unique2), MAX(unique3), AVG(two) FROM t%s"
        where

(* chaos: deterministic delays and path flaps keyed on (seed, dest, tag);
   delivery always succeeds, only latencies and arrival order move *)
let install_chaos node seed =
  Msg.set_fault_filter (N.msys node)
    (Some
       (fun ~from:_ ~to_name ~tag ->
         match Hashtbl.hash (seed, to_name, tag) mod 5 with
         | 0 -> Msg.Fault_delay (float_of_int (Hashtbl.hash (to_name, seed) mod 700))
         | 1 -> Msg.Fault_path_retry (float_of_int (Hashtbl.hash (tag, seed) mod 300))
         | _ -> Msg.Fault_pass))

let make_node ~batched ~chaos seed =
  let config = Config.v ~exec_batch:batched () in
  let node = N.create_node ~config ~volumes:4 () in
  get_ok ~ctx:"wisc" (Wisconsin.create node ~name:"t" ~rows ~partitions:parts ());
  get_ok ~ctx:"wisc2" (Wisconsin.create node ~name:"t2" ~rows:(rows / 2) ());
  ignore (N.exec_exn (N.session node) "CREATE INDEX t_op ON t (onepercent)");
  if chaos then install_chaos node seed;
  node

let run_sql node sql =
  match N.exec_exn (N.session node) sql with
  | N.Rows { rows; _ } -> rows
  | _ -> Alcotest.fail ("not a rowset: " ^ sql)

let pp_rows rs =
  String.concat "; " (List.map (Format.asprintf "%a" Row.pp_row) rs)

let check_same_rows sql a b =
  if a <> b then
    QCheck.Test.fail_reportf "%s diverged:@.  %s@.  vs@.  %s" sql (pp_rows a)
      (pp_rows b)

(* the full observable state of a run: every stats counter plus the
   simulated clock — "byte-identical" means this whole vector matches *)
let snapshot node =
  (Stats.to_assoc (Sim.stats (N.sim node)), Sim.now (N.sim node))

let check_same_snapshot sql (sa, ta) (sb, tb) =
  List.iter2
    (fun (name, va) (name', vb) ->
      assert (name = name');
      if va <> vb then
        QCheck.Test.fail_reportf "%s: pull/batched %s diverged: %d vs %d" sql
          name va vb)
    sa sb;
  if ta <> tb then
    QCheck.Test.fail_reportf "%s: simulated clock diverged: %.0f vs %.0f" sql
      ta tb

(* --- batched SELECT ≡ pull SELECT, random shapes ---------------------- *)

let select_equivalence ~chaos =
  QCheck.Test.make ~count:15
    ~name:
      (if chaos then "batched select = pull select (under chaos)"
       else "batched select = pull select")
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let next = prng seed in
      let sql = random_select next in
      let pull_node = make_node ~batched:false ~chaos seed in
      let bat_node = make_node ~batched:true ~chaos seed in
      check_same_rows sql (run_sql pull_node sql) (run_sql bat_node sql);
      check_same_snapshot sql (snapshot pull_node) (snapshot bat_node);
      true)

(* --- batched DML drivers ≡ pull DML drivers --------------------------- *)

let dml_equivalence ~chaos =
  QCheck.Test.make ~count:10
    ~name:
      (if chaos then "batched DML = pull DML (under chaos)"
       else "batched DML = pull DML")
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let next = prng seed in
      let upd =
        fpr "UPDATE t SET unique3 = unique3 + %d, stringu1 = 'touched'%s"
          (1 + next 50) (random_where next)
      in
      let del = fpr "DELETE FROM t%s" (random_where next) in
      let probe = "SELECT unique2, unique3, stringu1 FROM t" in
      let run node =
        let s = N.session node in
        let affected stmt =
          match N.exec_exn s stmt with
          | N.Affected n -> n
          | _ -> Alcotest.fail ("not a DML result: " ^ stmt)
        in
        let nu = affected upd in
        let nd = affected del in
        ((nu, nd), run_sql node probe, snapshot node)
      in
      let an, ar, asnap = run (make_node ~batched:false ~chaos seed) in
      let bn, br, bsnap = run (make_node ~batched:true ~chaos seed) in
      if an <> bn then
        QCheck.Test.fail_reportf "affected counts diverged: %d,%d vs %d,%d"
          (fst an) (snd an) (fst bn) (snd bn);
      check_same_rows probe ar br;
      check_same_snapshot (upd ^ "; " ^ del) asnap bsnap;
      true)

(* --- the published Wisconsin suite, query by query -------------------- *)

let wisconsin_suite_equivalence ~chaos =
  QCheck.Test.make ~count:3
    ~name:
      (if chaos then "Wisconsin suite: batched = pull (under chaos)"
       else "Wisconsin suite: batched = pull")
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let queries =
        Wisconsin.selection_queries ~table:"t" ~rows
        @ Wisconsin.agg_and_join_queries ~table:"t" ~table2:"t2" ~rows
      in
      let pull_node = make_node ~batched:false ~chaos seed in
      let bat_node = make_node ~batched:true ~chaos seed in
      List.iter
        (fun q ->
          let tag = fpr "%s (%s)" q.Wisconsin.q_id q.Wisconsin.q_sql in
          check_same_rows tag (run_sql pull_node q.Wisconsin.q_sql)
            (run_sql bat_node q.Wisconsin.q_sql);
          check_same_snapshot tag (snapshot pull_node) (snapshot bat_node))
        queries;
      true)

let suite =
  [
    QCheck_alcotest.to_alcotest (select_equivalence ~chaos:false);
    QCheck_alcotest.to_alcotest (select_equivalence ~chaos:true);
    QCheck_alcotest.to_alcotest (dml_equivalence ~chaos:false);
    QCheck_alcotest.to_alcotest (dml_equivalence ~chaos:true);
    QCheck_alcotest.to_alcotest (wisconsin_suite_equivalence ~chaos:false);
    QCheck_alcotest.to_alcotest (wisconsin_suite_equivalence ~chaos:true);
  ]

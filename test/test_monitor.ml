(* Tests of the resource monitor: observation is free (monitoring on
   leaves the clock and every counter bit-identical), the per-category
   time accounting tiles [Sim.now] deltas exactly (float-equal, not
   within epsilon), per-statement decompositions tile each statement's
   elapsed time, gauges return to zero at quiescence, the JSON export is
   byte-identical per seed, and the fixed-bucket histogram's quantiles
   agree with a sorted-array reference while merge stays associative and
   order-independent to the bit. *)

module N = Nsql_core.Nonstop_sql
module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Config = Nsql_sim.Config
module Moncore = Nsql_sim.Moncore
module Hist = Nsql_sim.Hist
module Monitor = Nsql_monitor.Monitor
module Errors = Nsql_util.Errors
module Wisconsin = Nsql_workload.Wisconsin
module Debitcredit = Nsql_workload.Debitcredit

let get_ok = Errors.get_ok

(* the same Wisconsin mini-suite test_trace uses: selections, aggregates,
   a join and DML over a partitioned table, exercising every instrumented
   subsystem (executor, FS fan-out, DP, disk, cache, lock, audit) *)
let query_workload ~monitoring () =
  let config = Config.v ~fs_fanout:true () in
  let node = N.create_node ~config ~volumes:4 () in
  let sim = N.sim node in
  if monitoring then Monitor.set_enabled sim true;
  let rows = 200 in
  get_ok ~ctx:"wisc" (Wisconsin.create node ~name:"t" ~rows ~partitions:4 ());
  get_ok ~ctx:"wisc2" (Wisconsin.create node ~name:"t2" ~rows ());
  let s = N.session node in
  List.iter
    (fun q -> ignore (N.exec_exn s q.Wisconsin.q_sql))
    (Wisconsin.selection_queries ~table:"t" ~rows
    @ Wisconsin.agg_and_join_queries ~table:"t" ~table2:"t2" ~rows);
  ignore (N.exec_exn s "UPDATE t SET two = 1 WHERE unique2 < 20");
  ignore (N.exec_exn s "DELETE FROM t WHERE unique2 >= 190");
  (node, sim)

(* contended debit/credit with DP lock-wait queues: feeds the transfer
   and lock_wait histograms and swings every gauge *)
let transfer_workload ~monitoring () =
  let config =
    Config.v ~dp_lock_wait:true ~lock_wait_timeout_us:150_000. ()
  in
  let node = N.create_node ~config ~volumes:2 () in
  let db =
    get_ok ~ctx:"transfer setup" (Debitcredit.setup_transfer node ~accounts:4)
  in
  let sim = N.sim node in
  if monitoring then Monitor.set_enabled sim true;
  let rep =
    Debitcredit.run_transfers db ~terminals:4 ~txs_per_terminal:10 ()
  in
  Alcotest.(check int) "no failed transfers" 0 rep.Debitcredit.x_failed;
  Alcotest.(check int) "all transfers committed" 40
    rep.Debitcredit.x_committed;
  (node, sim)

(* the monitor reads the clock and snapshots counters but never charges,
   ticks, waits or sends — enabling it must be invisible to the run *)
let zero_perturbation () =
  List.iter
    (fun (what, workload) ->
      let node_off, sim_off = workload ~monitoring:false () in
      let node_on, sim_on = workload ~monitoring:true () in
      Alcotest.(check (list (pair string int)))
        (what ^ ": monitoring leaves every counter identical")
        (Stats.to_assoc (N.snapshot node_off))
        (Stats.to_assoc (N.snapshot node_on));
      Alcotest.(check (float 0.))
        (what ^ ": monitoring leaves the clock identical")
        (Sim.now sim_off) (Sim.now sim_on))
    [ ("queries", query_workload); ("transfers", transfer_workload) ]

(* category totals and per-slice totals both tile the clock delta
   exactly: every advance is charged to exactly one category and
   apportioned across slice boundaries without loss, and every config
   time constant is a binary-exact multiple of 0.25 us, so the float
   sums are exact *)
let tiling_exact () =
  let _node, sim = transfer_workload ~monitoring:true () in
  let mc = Sim.moncore sim in
  let delta = Sim.now sim -. Moncore.start_now mc in
  let total = Array.fold_left ( +. ) 0. (Moncore.cat_snapshot mc) in
  Alcotest.(check (float 0.)) "categories tile the clock delta exactly"
    delta total;
  let all_slices = Moncore.slices mc @ [ Moncore.current_slice mc ] in
  let slice_total =
    List.fold_left
      (fun acc sl -> acc +. Array.fold_left ( +. ) 0. sl.Moncore.sl_cats)
      0. all_slices
  in
  Alcotest.(check (float 0.)) "slices tile the clock delta exactly" delta
    slice_total;
  (* sampler coverage: one closed slice per whole slice width elapsed,
     starts advancing by exactly the slice width *)
  let w = Moncore.slice_us mc in
  Alcotest.(check int) "one closed slice per elapsed slice width"
    (int_of_float (delta /. w))
    (List.length (Moncore.slices mc));
  ignore
    (List.fold_left
       (fun prev sl ->
         (match prev with
         | Some p ->
             Alcotest.(check (float 0.)) "slice starts advance by the width"
               w
               (sl.Moncore.sl_start -. p)
         | None -> ());
         Some sl.Moncore.sl_start)
       None all_slices)

(* each recorded statement's category deltas sum to its elapsed time,
   float-exactly, and its elapsed time reached the "stmt" histogram *)
let stmt_tiling_exact () =
  let _node, sim = query_workload ~monitoring:true () in
  let mc = Sim.moncore sim in
  let stmts = Moncore.stmts mc in
  Alcotest.(check bool) "statements were recorded" true
    (List.length stmts > 10);
  List.iter
    (fun st ->
      Alcotest.(check (float 0.))
        (st.Moncore.st_name ^ " categories tile its elapsed time exactly")
        st.Moncore.st_elapsed
        (Array.fold_left ( +. ) 0. st.Moncore.st_cats))
    stmts;
  match Moncore.hist mc "stmt" with
  | None -> Alcotest.fail "no stmt histogram"
  | Some h ->
      Alcotest.(check int) "one stmt histogram entry per statement"
        (List.length stmts) (Hist.count h)

(* all in-flight work has completed by the time the report runs, so the
   occupancy gauges must be back at zero — a bulk-adjustment bug at any
   park/grant/clear/restore site shows up here *)
let gauges_quiesce () =
  let _node, sim = transfer_workload ~monitoring:true () in
  let mc = Sim.moncore sim in
  List.iter
    (fun (name, g) ->
      Alcotest.(check int) (name ^ " gauge returns to zero") 0
        (Moncore.gauge_value mc g))
    [
      ("outstanding", Moncore.G_outstanding);
      ("parked", Moncore.G_parked);
      ("locks", Moncore.G_locks);
    ];
  (* the contended run exercised both latency feeds *)
  (match Moncore.hist mc "transfer" with
  | None -> Alcotest.fail "no transfer histogram"
  | Some h ->
      Alcotest.(check int) "one transfer observation per commit" 40
        (Hist.count h));
  Alcotest.(check bool) "lock waits were observed" true
    (match Moncore.hist mc "lock_wait" with
    | Some h -> not (Hist.is_empty h)
    | None -> false)

(* the export is a pure function of the (deterministic) run *)
let export_deterministic () =
  let render () =
    let _node, sim = transfer_workload ~monitoring:true () in
    (Monitor.json sim, Monitor.chrome_counters (Sim.moncore sim))
  in
  let j1, c1 = render () in
  let j2, c2 = render () in
  Alcotest.(check string) "byte-identical monitor export" j1 j2;
  Alcotest.(check (list string)) "byte-identical chrome counters" c1 c2;
  Alcotest.(check bool) "json world-array shape" true
    (String.length j1 > 2 && j1.[0] = '[');
  Alcotest.(check bool) "counter events carry ph:C" true
    (c1 <> []
    && List.for_all
         (fun ev ->
           let has needle hay =
             let n = String.length needle and h = String.length hay in
             let rec go i =
               i + n <= h
               && (String.equal (String.sub hay i n) needle || go (i + 1))
             in
             go 0
           in
           has "\"ph\":\"C\"" ev)
         c1)

(* --- histogram properties (QCheck) --------------------------------------- *)

(* durations spread across the full bucket range: ~2^-7 us to ~2^33 us *)
let duration =
  QCheck.make
    ~print:(fun f -> Printf.sprintf "%.17g" f)
    QCheck.Gen.(
      map2
        (fun e m ->
          (1. +. (float_of_int m /. 1000.)) *. (2. ** float_of_int e) /. 128.)
        (int_bound 40) (int_bound 999))

let durations = QCheck.list_of_size (QCheck.Gen.int_range 1 300) duration

let hist_of l =
  let h = Hist.create () in
  List.iter (Hist.record h) l;
  h

(* the estimator returns the upper edge of the bucket holding the true
   rank-⌈q·n⌉ order statistic (clamped to the max), so estimate and
   truth always share a bucket *)
let quantile_vs_reference =
  QCheck.Test.make
    ~name:"histogram quantiles land in the true order statistic's bucket"
    ~count:200 durations
    (fun l ->
      l = []
      ||
      let arr = Array.of_list (List.sort compare l) in
      let n = Array.length arr in
      let h = hist_of l in
      List.for_all
        (fun q ->
          let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
          let truth = arr.(min (n - 1) (rank - 1)) in
          let est = Hist.quantile h q in
          Hist.bucket_of est = Hist.bucket_of truth
          && est <= Hist.max_value h
          && truth <= est)
        [ 0.25; 0.5; 0.9; 0.95; 0.99; 1.0 ])

let hists_equal a b =
  Hist.count a = Hist.count b
  && Hist.min_value a = Hist.min_value b
  && Hist.max_value a = Hist.max_value b
  && Hist.nonzero a = Hist.nonzero b
  && List.for_all
       (fun q -> Hist.quantile a q = Hist.quantile b q)
       [ 0.5; 0.95; 0.99 ]

(* only int bucket counts and exact min/max are stored — no float sum —
   so merging worlds' histograms in any grouping or order, or recording
   the concatenated stream into one histogram, is bit-identical *)
let merge_associative =
  QCheck.Test.make
    ~name:"histogram merge is associative and order-independent" ~count:200
    (QCheck.triple durations durations durations)
    (fun (la, lb, lc) ->
      let a = hist_of la and b = hist_of lb and c = hist_of lc in
      let m1 = Hist.merge a (Hist.merge b c) in
      let m2 = Hist.merge (Hist.merge c a) b in
      let whole = hist_of (la @ lb @ lc) in
      hists_equal m1 m2 && hists_equal m1 whole)

let suite =
  [
    Alcotest.test_case "monitoring is observation-free" `Quick
      zero_perturbation;
    Alcotest.test_case "categories and slices tile the clock exactly" `Quick
      tiling_exact;
    Alcotest.test_case "statement decompositions tile elapsed time" `Quick
      stmt_tiling_exact;
    Alcotest.test_case "gauges return to zero at quiescence" `Quick
      gauges_quiesce;
    Alcotest.test_case "exports are byte-identical per seed" `Quick
      export_deterministic;
    QCheck_alcotest.to_alcotest quantile_vs_reference;
    QCheck_alcotest.to_alcotest merge_associative;
  ]

(* Tests of the lock manager: granularities, modes, upgrades, virtual-block
   group (range) locks, release, and deadlock detection. *)

module Sim = Nsql_sim.Sim
module Lock = Nsql_lock.Lock
module Keycode = Nsql_util.Keycode

let setup () =
  let sim = Sim.create () in
  (sim, Lock.create sim)

let k i = Keycode.of_int i

let check_granted msg = function
  | Lock.Granted -> ()
  | Lock.Blocked bs ->
      Alcotest.fail
        (Printf.sprintf "%s: blocked by %s" msg
           (String.concat "," (List.map string_of_int bs)))

let check_blocked msg = function
  | Lock.Granted -> Alcotest.fail (msg ^ ": unexpectedly granted")
  | Lock.Blocked _ -> ()

let shared_compatible () =
  let _, m = setup () in
  check_granted "tx1 S" (Lock.acquire m ~tx:1 ~file:0 (Lock.Record (k 5)) Lock.Shared);
  check_granted "tx2 S" (Lock.acquire m ~tx:2 ~file:0 (Lock.Record (k 5)) Lock.Shared);
  check_blocked "tx3 X" (Lock.acquire m ~tx:3 ~file:0 (Lock.Record (k 5)) Lock.Exclusive)

let exclusive_conflicts () =
  let _, m = setup () in
  check_granted "tx1 X" (Lock.acquire m ~tx:1 ~file:0 (Lock.Record (k 5)) Lock.Exclusive);
  check_blocked "tx2 S" (Lock.acquire m ~tx:2 ~file:0 (Lock.Record (k 5)) Lock.Shared);
  check_granted "tx2 other key" (Lock.acquire m ~tx:2 ~file:0 (Lock.Record (k 6)) Lock.Shared);
  check_granted "tx2 other file" (Lock.acquire m ~tx:2 ~file:1 (Lock.Record (k 5)) Lock.Shared)

let reentrant_and_upgrade () =
  let _, m = setup () in
  check_granted "S" (Lock.acquire m ~tx:1 ~file:0 (Lock.Record (k 1)) Lock.Shared);
  check_granted "S again" (Lock.acquire m ~tx:1 ~file:0 (Lock.Record (k 1)) Lock.Shared);
  check_granted "upgrade to X" (Lock.acquire m ~tx:1 ~file:0 (Lock.Record (k 1)) Lock.Exclusive);
  (* now other readers must block *)
  check_blocked "reader after upgrade"
    (Lock.acquire m ~tx:2 ~file:0 (Lock.Record (k 1)) Lock.Shared);
  Alcotest.(check int) "single lock entry" 1 (Lock.held m ~tx:1)

let upgrade_blocked_by_other_reader () =
  let _, m = setup () in
  check_granted "tx1 S" (Lock.acquire m ~tx:1 ~file:0 (Lock.Record (k 1)) Lock.Shared);
  check_granted "tx2 S" (Lock.acquire m ~tx:2 ~file:0 (Lock.Record (k 1)) Lock.Shared);
  check_blocked "tx1 upgrade blocked"
    (Lock.acquire m ~tx:1 ~file:0 (Lock.Record (k 1)) Lock.Exclusive)

let file_lock_covers_records () =
  let _, m = setup () in
  check_granted "file X" (Lock.acquire m ~tx:1 ~file:0 Lock.File Lock.Exclusive);
  check_blocked "record under file lock"
    (Lock.acquire m ~tx:2 ~file:0 (Lock.Record (k 9)) Lock.Shared);
  check_blocked "file S vs file X" (Lock.acquire m ~tx:2 ~file:0 Lock.File Lock.Shared)

let generic_prefix_lock () =
  let _, m = setup () in
  (* generic lock on int prefix 7 of a two-int key *)
  let prefix = k 7 in
  check_granted "generic X"
    (Lock.acquire m ~tx:1 ~file:0 (Lock.Generic prefix) Lock.Exclusive);
  check_blocked "record inside prefix"
    (Lock.acquire m ~tx:2 ~file:0 (Lock.Record (prefix ^ k 1)) Lock.Shared);
  check_granted "record outside prefix"
    (Lock.acquire m ~tx:2 ~file:0 (Lock.Record (k 8 ^ k 1)) Lock.Shared)

let range_group_lock () =
  let _, m = setup () in
  (* a virtual block covering keys [10, 20) locked as a group *)
  check_granted "vblock range"
    (Lock.acquire m ~tx:1 ~file:0 (Lock.Range (k 10, k 20)) Lock.Shared);
  check_blocked "write inside range"
    (Lock.acquire m ~tx:2 ~file:0 (Lock.Record (k 15)) Lock.Exclusive);
  check_granted "write outside range"
    (Lock.acquire m ~tx:2 ~file:0 (Lock.Record (k 20)) Lock.Exclusive);
  check_granted "overlapping shared range"
    (Lock.acquire m ~tx:3 ~file:0 (Lock.Range (k 12, k 18)) Lock.Shared);
  check_blocked "range over the exclusive record"
    (Lock.acquire m ~tx:3 ~file:0 (Lock.Range (k 15, k 25)) Lock.Shared)

let release_all_frees () =
  let _, m = setup () in
  check_granted "tx1 X" (Lock.acquire m ~tx:1 ~file:0 (Lock.Record (k 5)) Lock.Exclusive);
  check_granted "tx1 range" (Lock.acquire m ~tx:1 ~file:0 (Lock.Range (k 0, k 100)) Lock.Shared);
  Alcotest.(check int) "two held" 2 (Lock.held m ~tx:1);
  Lock.release_all m ~tx:1;
  Alcotest.(check int) "none held" 0 (Lock.held m ~tx:1);
  Alcotest.(check int) "table empty" 0 (Lock.total_locks m);
  check_granted "tx2 free to lock"
    (Lock.acquire m ~tx:2 ~file:0 (Lock.Record (k 5)) Lock.Exclusive)

let blockers_reported () =
  let _, m = setup () in
  check_granted "tx1" (Lock.acquire m ~tx:1 ~file:0 (Lock.Record (k 5)) Lock.Shared);
  check_granted "tx2" (Lock.acquire m ~tx:2 ~file:0 (Lock.Record (k 5)) Lock.Shared);
  match Lock.acquire m ~tx:3 ~file:0 (Lock.Record (k 5)) Lock.Exclusive with
  | Lock.Blocked bs -> Alcotest.(check (list int)) "both blockers" [ 1; 2 ] bs
  | Lock.Granted -> Alcotest.fail "expected block"

let waitgraph_detects_cycle () =
  let g = Lock.Waitgraph.create () in
  Lock.Waitgraph.set_waiting g ~tx:1 ~on:[ 2 ];
  Lock.Waitgraph.set_waiting g ~tx:2 ~on:[ 3 ];
  Alcotest.(check bool) "no cycle yet" true
    (Lock.Waitgraph.find_cycle g ~tx:1 = None);
  Lock.Waitgraph.set_waiting g ~tx:3 ~on:[ 1 ];
  Alcotest.(check bool) "cycle found" true
    (Lock.Waitgraph.find_cycle g ~tx:1 <> None);
  Lock.Waitgraph.clear_waiting g ~tx:2;
  Alcotest.(check bool) "cycle broken" true
    (Lock.Waitgraph.find_cycle g ~tx:1 = None)

let lock_counters () =
  let sim, m = setup () in
  let s = Sim.stats sim in
  ignore (Lock.acquire m ~tx:1 ~file:0 (Lock.Record (k 1)) Lock.Exclusive);
  ignore (Lock.acquire m ~tx:2 ~file:0 (Lock.Record (k 1)) Lock.Exclusive);
  Alcotest.(check int) "requests" 2 s.Nsql_sim.Stats.lock_requests;
  (* an immediate denial is a conflict, not a queued wait *)
  Alcotest.(check int) "conflicts" 1 s.Nsql_sim.Stats.lock_conflicts;
  Alcotest.(check int) "waits" 0 s.Nsql_sim.Stats.lock_waits

let range_semantics_property =
  (* a record lock conflicts with a range lock iff the key is inside *)
  QCheck.Test.make ~name:"range lock covers exactly [lo,hi)" ~count:300
    QCheck.(tup3 int int int)
    (fun (a, b, x) ->
      let lo = min a b and hi = max a b in
      QCheck.assume (lo < hi);
      let _, m = setup () in
      (match Lock.acquire m ~tx:1 ~file:0 (Lock.Range (k lo, k hi)) Lock.Exclusive with
      | Lock.Granted -> ()
      | Lock.Blocked _ -> assert false);
      let outcome = Lock.acquire m ~tx:2 ~file:0 (Lock.Record (k x)) Lock.Shared in
      let inside = lo <= x && x < hi in
      match outcome with
      | Lock.Granted -> not inside
      | Lock.Blocked _ -> inside)

(* --- conflict matrix: every granularity pair x S/X x overlap ---------- *)

(* each case is one granularity pair with an overlapping and a disjoint
   instantiation; [file2] lets the File rows express disjointness as "a
   different file" *)
let matrix_cases =
  [
    ("file/file", Lock.File, Lock.File, 1, true);
    ("file/record", Lock.File, Lock.Record (k 1), 0, true);
    ("file/generic", Lock.File, Lock.Generic (k 1), 0, true);
    ("file/range", Lock.File, Lock.Range (k 1, k 2), 0, true);
    ("record/record same", Lock.Record (k 5), Lock.Record (k 5), 0, true);
    ("record/record other", Lock.Record (k 5), Lock.Record (k 6), 0, false);
    ("record/generic inside", Lock.Record (k 7 ^ k 1), Lock.Generic (k 7), 0, true);
    ("record/generic outside", Lock.Record (k 8 ^ k 1), Lock.Generic (k 7), 0, false);
    ("record/range inside", Lock.Record (k 15), Lock.Range (k 10, k 20), 0, true);
    ("record/range at hi", Lock.Record (k 20), Lock.Range (k 10, k 20), 0, false);
    ("generic/generic same", Lock.Generic (k 7), Lock.Generic (k 7), 0, true);
    ("generic/generic other", Lock.Generic (k 7), Lock.Generic (k 8), 0, false);
    ("generic/range inside", Lock.Generic (k 7), Lock.Range (k 7 ^ k 1, k 7 ^ k 5), 0, true);
    ("generic/range outside", Lock.Generic (k 7), Lock.Range (k 8, k 9), 0, false);
    ("range/range overlap", Lock.Range (k 10, k 20), Lock.Range (k 15, k 25), 0, true);
    ("range/range adjacent", Lock.Range (k 10, k 20), Lock.Range (k 20, k 30), 0, false);
  ]

let conflict_matrix () =
  List.iter
    (fun (name, r1, r2, file2, overlap) ->
      List.iter
        (fun m1 ->
          List.iter
            (fun m2 ->
              let _, m = setup () in
              check_granted (name ^ ": first") (Lock.acquire m ~tx:1 ~file:0 r1 m1);
              (* two locks conflict iff their key intervals overlap and at
                 least one is exclusive — same-file File rows always overlap *)
              let file2 = if file2 = 1 then 1 else 0 in
              let expect_block =
                overlap && file2 = 0
                && (m1 = Lock.Exclusive || m2 = Lock.Exclusive)
              in
              let label =
                Printf.sprintf "%s %s/%s" name
                  (if m1 = Lock.Shared then "S" else "X")
                  (if m2 = Lock.Shared then "S" else "X")
              in
              let outcome = Lock.acquire m ~tx:2 ~file:file2 r2 m2 in
              if expect_block then check_blocked label outcome
              else check_granted label outcome)
            [ Lock.Shared; Lock.Exclusive ])
        [ Lock.Shared; Lock.Exclusive ])
    matrix_cases

(* --- waitgraph regressions -------------------------------------------- *)

(* regression: set_waiting must merge edges. With replace semantics the
   second probe's blocker overwrote the first and this cycle went
   undetected. *)
let waitgraph_merges_edges () =
  let g = Lock.Waitgraph.create () in
  Lock.Waitgraph.set_waiting g ~tx:1 ~on:[ 2 ];
  Lock.Waitgraph.set_waiting g ~tx:1 ~on:[ 3 ];
  (* the edge 1->2 must have survived the second call *)
  Lock.Waitgraph.set_waiting g ~tx:2 ~on:[ 1 ];
  Alcotest.(check bool) "merged edge keeps the 1<->2 cycle" true
    (Lock.Waitgraph.find_cycle g ~tx:1 <> None);
  Lock.Waitgraph.clear_waiting g ~tx:1;
  Lock.Waitgraph.set_waiting g ~tx:1 ~on:[ 3 ];
  Alcotest.(check bool) "clear_waiting gives replace semantics" true
    (Lock.Waitgraph.find_cycle g ~tx:1 = None)

(* two readers of the same record both upgrading to exclusive deadlock:
   each waits on the other, and the wait-for graph must say so *)
let upgrade_deadlock_detected () =
  let _, m = setup () in
  let g = Lock.Waitgraph.create () in
  check_granted "tx1 S" (Lock.acquire m ~tx:1 ~file:0 (Lock.Record (k 1)) Lock.Shared);
  check_granted "tx2 S" (Lock.acquire m ~tx:2 ~file:0 (Lock.Record (k 1)) Lock.Shared);
  (match Lock.acquire m ~tx:1 ~file:0 (Lock.Record (k 1)) Lock.Exclusive with
  | Lock.Granted -> Alcotest.fail "tx1 upgrade should block on tx2"
  | Lock.Blocked bs ->
      Alcotest.(check (list int)) "tx1 blocked by tx2 only" [ 2 ] bs;
      Lock.Waitgraph.set_waiting g ~tx:1 ~on:bs);
  Alcotest.(check bool) "no cycle yet" true
    (Lock.Waitgraph.find_cycle g ~tx:1 = None);
  (match Lock.acquire m ~tx:2 ~file:0 (Lock.Record (k 1)) Lock.Exclusive with
  | Lock.Granted -> Alcotest.fail "tx2 upgrade should block on tx1"
  | Lock.Blocked bs ->
      Alcotest.(check (list int)) "tx2 blocked by tx1 only" [ 1 ] bs;
      Lock.Waitgraph.set_waiting g ~tx:2 ~on:bs);
  (match Lock.Waitgraph.find_cycle g ~tx:2 with
  | None -> Alcotest.fail "upgrade deadlock not detected"
  | Some cycle ->
      Alcotest.(check bool) "cycle passes through both" true
        (List.mem 1 cycle && List.mem 2 cycle));
  (* victim (youngest = max id) aborts: its edges clear, deadlock resolves *)
  Lock.Waitgraph.clear_waiting g ~tx:2;
  Lock.release_all m ~tx:2;
  Alcotest.(check bool) "victim abort breaks the cycle" true
    (Lock.Waitgraph.find_cycle g ~tx:1 = None);
  check_granted "survivor's upgrade now granted"
    (Lock.acquire m ~tx:1 ~file:0 (Lock.Record (k 1)) Lock.Exclusive)

(* property: find_cycle reports a deadlock through tx iff tx can reach
   itself in the reference reachability relation of the same edges *)
let deadlock_iff_cycle_property =
  QCheck.Test.make ~name:"deadlock reported iff wait-for cycle exists"
    ~count:300
    QCheck.(list (pair (int_bound 5) (int_bound 5)))
    (fun edges ->
      let g = Lock.Waitgraph.create () in
      List.iter (fun (a, b) -> Lock.Waitgraph.set_waiting g ~tx:a ~on:[ b ]) edges;
      (* reference: transitive reachability over the raw edge list *)
      let reaches src dst =
        let rec go visited frontier =
          if List.mem dst frontier then true
          else
            let next =
              List.concat_map
                (fun (a, b) ->
                  if List.mem a frontier && not (List.mem b visited) then [ b ]
                  else [])
                edges
              |> List.sort_uniq compare
            in
            if next = [] then false else go (visited @ next) next
        in
        let first = List.filter_map (fun (a, b) -> if a = src then Some b else None) edges in
        first <> [] && (List.mem dst first || go first first)
      in
      List.for_all
        (fun tx -> (Lock.Waitgraph.find_cycle g ~tx <> None) = reaches tx tx)
        [ 0; 1; 2; 3; 4; 5 ])

let suite =
  [
    Alcotest.test_case "shared compatible" `Quick shared_compatible;
    Alcotest.test_case "exclusive conflicts" `Quick exclusive_conflicts;
    Alcotest.test_case "reentrant + upgrade" `Quick reentrant_and_upgrade;
    Alcotest.test_case "upgrade blocked by reader" `Quick
      upgrade_blocked_by_other_reader;
    Alcotest.test_case "file lock covers records" `Quick
      file_lock_covers_records;
    Alcotest.test_case "generic (prefix) lock" `Quick generic_prefix_lock;
    Alcotest.test_case "virtual-block range lock" `Quick range_group_lock;
    Alcotest.test_case "release all" `Quick release_all_frees;
    Alcotest.test_case "blockers reported" `Quick blockers_reported;
    Alcotest.test_case "wait-for graph cycle" `Quick waitgraph_detects_cycle;
    Alcotest.test_case "lock counters" `Quick lock_counters;
    Alcotest.test_case "conflict matrix" `Quick conflict_matrix;
    Alcotest.test_case "waitgraph merges edges" `Quick waitgraph_merges_edges;
    Alcotest.test_case "upgrade deadlock detected" `Quick
      upgrade_deadlock_detected;
    QCheck_alcotest.to_alcotest range_semantics_property;
    QCheck_alcotest.to_alcotest deadlock_iff_cycle_property;
  ]

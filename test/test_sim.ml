(* Tests of the simulation world: clock, events, heap, stats, message
   system, disk cost model. *)

module Heap = Nsql_util.Heap
module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Config = Nsql_sim.Config
module Msg = Nsql_msg.Msg
module Disk = Nsql_disk.Disk
module Tracer = Nsql_sim.Tracer
module Trace = Nsql_trace.Trace

let heap_orders () =
  let h = Heap.create () in
  List.iter (fun (p, v) -> Heap.push h ~prio:p v)
    [ (3., "c"); (1., "a"); (2., "b"); (1., "a2") ];
  let pop () = match Heap.pop_min h with Some (_, v) -> v | None -> "END" in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  let p4 = pop () in
  let p5 = pop () in
  let popped = [ p1; p2; p3; p4; p5 ] in
  Alcotest.(check (list string)) "order with FIFO ties"
    [ "a"; "a2"; "b"; "c"; "END" ]
    popped

let heap_property =
  QCheck.Test.make ~name:"heap pops in nondecreasing priority" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun prios ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h ~prio:p ()) prios;
      let rec drain last =
        match Heap.pop_min h with
        | None -> true
        | Some (p, ()) -> p >= last && drain p
      in
      drain neg_infinity)

let clock_advances () =
  let sim = Sim.create () in
  Alcotest.(check (float 0.)) "starts at 0" 0. (Sim.now sim);
  Sim.charge sim 100.;
  Alcotest.(check (float 0.)) "charge" 100. (Sim.now sim);
  Sim.tick sim 50;
  Alcotest.(check (float 0.)) "ticks move clock" 150. (Sim.now sim);
  Alcotest.(check int) "ticks counted" 50 (Sim.stats sim).Stats.cpu_ticks

let events_fire_in_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~at:50. (fun () -> log := "b" :: !log);
  Sim.schedule sim ~at:10. (fun () -> log := "a" :: !log);
  Sim.schedule sim ~at:90. (fun () -> log := "c" :: !log);
  Sim.charge sim 60.;
  Alcotest.(check (list string)) "due events fired" [ "a"; "b" ] (List.rev !log);
  Sim.drain sim;
  Alcotest.(check (list string)) "drained" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 0.)) "clock at last event" 90. (Sim.now sim)

let event_schedules_event () =
  let sim = Sim.create () in
  let fired = ref 0 in
  Sim.schedule sim ~at:10. (fun () ->
      incr fired;
      Sim.schedule sim ~at:20. (fun () -> incr fired));
  Sim.drain sim;
  Alcotest.(check int) "both fired" 2 !fired

let measure_diffs () =
  let sim = Sim.create () in
  Sim.tick sim 7;
  let (), delta = Sim.measure sim (fun () -> Sim.tick sim 5) in
  Alcotest.(check int) "delta isolated" 5 delta.Stats.cpu_ticks

(* --- message system ---------------------------------------------------- *)

let msg_roundtrip_and_counters () =
  let sim = Sim.create () in
  let sys = Msg.create sim in
  let proc_a = Msg.{ node = 0; cpu = 0 } in
  let proc_b = Msg.{ node = 0; cpu = 1 } in
  let server =
    Msg.register sys ~name:"$DATA" ~processor:proc_b (fun req ->
        req ^ "-reply")
  in
  let reply = Msg.send sys ~from:proc_a ~tag:"TEST" server "hello" in
  Alcotest.(check string) "handler ran" "hello-reply" reply;
  let s = Sim.stats sim in
  Alcotest.(check int) "one message" 1 s.Stats.msgs_sent;
  Alcotest.(check int) "req bytes" 5 s.Stats.msg_req_bytes;
  Alcotest.(check int) "reply bytes" 11 s.Stats.msg_reply_bytes;
  Alcotest.(check int) "remote" 1 s.Stats.msgs_remote

let msg_local_vs_remote_cost () =
  let sim = Sim.create () in
  let sys = Msg.create sim in
  let p0 = Msg.{ node = 0; cpu = 0 } in
  let p1 = Msg.{ node = 0; cpu = 1 } in
  let n1 = Msg.{ node = 1; cpu = 0 } in
  let mk name proc = Msg.register sys ~name ~processor:proc (fun _ -> "") in
  let local = mk "$LOCAL" p0 in
  let cross = mk "$CROSS" p1 in
  let remote = mk "$REMOTE" n1 in
  let cost target =
    let t0 = Sim.now sim in
    ignore (Msg.send sys ~from:p0 ~tag:"T" target "x");
    Sim.now sim -. t0
  in
  let cl = cost local and cc = cost cross and cr = cost remote in
  Alcotest.(check bool) "local < cross" true (cl < cc);
  Alcotest.(check bool) "cross < node" true (cc < cr)

let msg_trace () =
  let sim = Sim.create () in
  let sys = Msg.create sim in
  let p0 = Msg.{ node = 0; cpu = 0 } in
  let server = Msg.register sys ~name:"$D1" ~processor:p0 (fun _ -> "ok") in
  Trace.set_enabled sim true;
  ignore (Msg.send sys ~from:p0 ~tag:"READ" server "req");
  Trace.set_enabled sim false;
  let trace = Trace.msg_spans (Trace.take sim) in
  Alcotest.(check int) "one entry" 1 (List.length trace);
  let sp = List.hd trace in
  Alcotest.(check string) "tag" "READ" sp.Tracer.sp_name;
  (match Trace.attr sp "to" with
  | Some (Trace.Str s) -> Alcotest.(check string) "target" "$D1" s
  | _ -> Alcotest.fail "msg span has no 'to' attribute")

(* --- disk --------------------------------------------------------------- *)

let disk_roundtrip () =
  let sim = Sim.create () in
  let d = Disk.create sim ~name:"$DATA" in
  let first = Disk.allocate d 10 in
  let bs = Disk.block_size d in
  let payload = String.init bs (fun i -> Char.chr (i mod 256)) in
  Disk.write d (first + 3) payload;
  Alcotest.(check string) "read back" payload (Disk.read d (first + 3));
  Alcotest.(check string) "other block zero"
    (String.make bs '\x00')
    (Disk.read d first)

let disk_bulk_counts () =
  let sim = Sim.create () in
  let d = Disk.create sim ~name:"$DATA" in
  ignore (Disk.allocate d 20);
  let s = Sim.stats sim in
  ignore (Disk.read_bulk d ~first:0 ~count:7);
  Alcotest.(check int) "one io" 1 s.Nsql_sim.Stats.disk_reads;
  Alcotest.(check int) "seven blocks" 7 s.Nsql_sim.Stats.blocks_read;
  Alcotest.(check int) "bulk" 1 s.Nsql_sim.Stats.bulk_reads;
  Alcotest.check_raises "bulk limit enforced"
    (Invalid_argument
       "Disk($DATA): bulk I/O of 8 blocks exceeds limit 7") (fun () ->
      ignore (Disk.read_bulk d ~first:0 ~count:8))

let disk_sequential_cheaper () =
  let sim = Sim.create () in
  let d = Disk.create sim ~name:"$DATA" in
  ignore (Disk.allocate d 100);
  ignore (Disk.read d 10);
  let t0 = Sim.now sim in
  ignore (Disk.read d 11);
  let sequential = Sim.now sim -. t0 in
  let t1 = Sim.now sim in
  ignore (Disk.read d 50);
  let random = Sim.now sim -. t1 in
  Alcotest.(check bool) "sequential cheaper" true (sequential < random)

let disk_mirrored_writes () =
  let sim = Sim.create () in
  let d = Disk.create ~mirrored:true sim ~name:"$MIR" in
  ignore (Disk.allocate d 4);
  let bs = Disk.block_size d in
  Disk.write d 0 (String.make bs 'x');
  let s = Sim.stats sim in
  Alcotest.(check int) "two physical writes" 2 s.Nsql_sim.Stats.disk_writes;
  Alcotest.(check int) "two blocks" 2 s.Nsql_sim.Stats.blocks_written

let disk_async_completion () =
  let sim = Sim.create () in
  let d = Disk.create sim ~name:"$DATA" in
  ignore (Disk.allocate d 20);
  let t0 = Sim.now sim in
  let _data, completion = Disk.read_bulk_async d ~first:0 ~count:7 in
  Alcotest.(check (float 0.)) "clock did not advance" t0 (Sim.now sim);
  Alcotest.(check bool) "completion in the future" true (completion > t0)

let suite =
  [
    Alcotest.test_case "heap ordering" `Quick heap_orders;
    QCheck_alcotest.to_alcotest heap_property;
    Alcotest.test_case "clock advances" `Quick clock_advances;
    Alcotest.test_case "events fire in order" `Quick events_fire_in_order;
    Alcotest.test_case "event schedules event" `Quick event_schedules_event;
    Alcotest.test_case "measure diffs stats" `Quick measure_diffs;
    Alcotest.test_case "msg roundtrip and counters" `Quick
      msg_roundtrip_and_counters;
    Alcotest.test_case "msg distance costs" `Quick msg_local_vs_remote_cost;
    Alcotest.test_case "msg trace" `Quick msg_trace;
    Alcotest.test_case "disk roundtrip" `Quick disk_roundtrip;
    Alcotest.test_case "disk bulk I/O counters" `Quick disk_bulk_counts;
    Alcotest.test_case "disk sequential cost" `Quick disk_sequential_cheaper;
    Alcotest.test_case "disk mirrored writes" `Quick disk_mirrored_writes;
    Alcotest.test_case "disk async completion" `Quick disk_async_completion;
  ]

(* Model-based property tests: the cache against a reference "disk image"
   model under random operation interleavings, and the B-tree under
   multi-column string keys that force deep splits. *)

module Sim = Nsql_sim.Sim
module Config = Nsql_sim.Config
module Disk = Nsql_disk.Disk
module Cache = Nsql_cache.Cache
module Btree = Nsql_store.Btree
module Keycode = Nsql_util.Keycode
module Errors = Nsql_util.Errors

(* --- cache vs model ------------------------------------------------------- *)

(* Operations over a small block space. The model is simply "the latest
   value written per block" — whatever the pool does internally (evict,
   steal, prefetch, write-behind, flush), reads must always return it. *)
type cache_op =
  | C_read of int
  | C_write of int * char
  | C_flush_block of int
  | C_flush_all
  | C_steal of int
  | C_prefetch of int * int
  | C_read_range of int * int
  | C_write_behind
  | C_advance_durable

let cache_op_gen nblocks =
  QCheck.Gen.(
    oneof
      [
        map (fun b -> C_read b) (int_bound (nblocks - 1));
        map2 (fun b c -> C_write (b, c)) (int_bound (nblocks - 1)) (char_range 'a' 'z');
        map (fun b -> C_flush_block b) (int_bound (nblocks - 1));
        return C_flush_all;
        map (fun n -> C_steal (n + 1)) (int_bound 8);
        map2 (fun f n -> C_prefetch (f, (n mod 7) + 1)) (int_bound (nblocks - 8)) (int_bound 6);
        map2 (fun f n -> C_read_range (f, (n mod 7) + 1)) (int_bound (nblocks - 8)) (int_bound 6);
        return C_write_behind;
        return C_advance_durable;
      ])

let cache_matches_model =
  QCheck.Test.make ~name:"cache serves latest writes under any interleaving"
    ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_bound 120) (QCheck.make (cache_op_gen 32)))
    (fun ops ->
      let sim = Sim.create () in
      let disk = Disk.create sim ~name:"$M" in
      ignore (Disk.allocate disk 32);
      let durable = ref 0L in
      let cache =
        Cache.create sim disk ~capacity:8
          ~durable_lsn:(fun () -> !durable)
          ~force_log:(fun lsn -> if lsn > !durable then durable := lsn)
      in
      let bs = Disk.block_size disk in
      let model = Array.make 32 (String.make bs '\x00') in
      let lsn = ref 0L in
      let ok = ref true in
      List.iter
        (fun op ->
          if !ok then
            match op with
            | C_read b -> ok := String.equal (Cache.read cache b) model.(b)
            | C_write (b, c) ->
                lsn := Int64.add !lsn 1L;
                let data = String.make bs c in
                model.(b) <- data;
                Cache.write cache b data ~lsn:!lsn
            | C_flush_block b -> Cache.flush_block cache b
            | C_flush_all -> Cache.flush_all cache
            | C_steal n -> ignore (Cache.steal cache n)
            | C_prefetch (f, n) -> Cache.prefetch cache ~first:f ~count:n
            | C_read_range (f, n) ->
                let datas = Cache.read_range cache ~first:f ~count:n in
                Array.iteri
                  (fun i d -> if not (String.equal d model.(f + i)) then ok := false)
                  datas
            | C_write_behind -> ignore (Cache.write_behind cache)
            | C_advance_durable -> durable := !lsn)
        ops;
      (* final consistency: flush everything and compare the disk itself *)
      durable := !lsn;
      Cache.flush_all cache;
      Sim.drain sim;
      for b = 0 to 31 do
        if not (String.equal (Disk.read disk b) model.(b)) then ok := false
      done;
      !ok)

(* --- b-tree with composite string keys -------------------------------------- *)

let word_gen =
  QCheck.Gen.(string_size ~gen:(char_range 'a' 'f') (int_range 0 12))

let btree_string_keys =
  QCheck.Test.make ~name:"btree with composite string keys matches a map"
    ~count:25
    QCheck.(
      list_of_size (QCheck.Gen.int_bound 400)
        (pair (QCheck.make word_gen) (QCheck.make word_gen)))
    (fun pairs ->
      let sim = Sim.create () in
      let disk = Disk.create sim ~name:"$B" in
      let cache =
        Cache.create sim disk ~capacity:64
          ~durable_lsn:(fun () -> Int64.max_int)
          ~force_log:(fun _ -> ())
      in
      let t = Btree.create sim cache ~name:"T" in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (a, b) ->
          let key = Keycode.of_string a ^ Keycode.of_string b in
          (* a fat record forces frequent splits *)
          let record = a ^ "|" ^ b ^ String.make 200 'r' in
          match Btree.insert t ~key ~record ~lsn:1L with
          | Ok () -> Hashtbl.replace model key record
          | Error (Errors.Duplicate_key _) -> assert (Hashtbl.mem model key)
          | Error e -> failwith (Errors.to_string e))
        pairs;
      (match Btree.check_invariants t with
      | Ok () -> ()
      | Error e -> failwith e);
      (* every model entry is retrievable, and the scan is sorted + complete *)
      Hashtbl.fold
        (fun key record acc -> acc && Btree.lookup t key = Some record)
        model true
      &&
      let rec walk c last n =
        match Btree.cursor_entry t c with
        | None -> n = Hashtbl.length model
        | Some (k, _) ->
            (match last with Some l -> String.compare l k < 0 | None -> true)
            && walk (Btree.advance t c) (Some k) (n + 1)
      in
      walk (Btree.seek t Keycode.low_value) None 0)

(* --- keycode encoding is order-preserving ------------------------------------ *)

module Row = Nsql_row.Row

(* Everything in the system — primary keys, index keys, generic locks,
   partition boundaries — relies on one property: byte-comparison of the
   encoded key equals lexicographic comparison of the typed key columns.
   Check it over random multi-column (int, string, float, bool) rows. *)
let multikey_schema =
  Row.schema
    [|
      Row.column "a" Row.T_int;
      Row.column "b" (Row.T_varchar 16);
      Row.column "c" Row.T_float;
      Row.column "d" Row.T_bool;
      Row.column "payload" (Row.T_varchar 8);
    |]
    ~key:[ "a"; "b"; "c"; "d" ]

let multikey_row_gen =
  QCheck.Gen.(
    (* small domains make every field's tie-then-differ case likely;
       floats come from a grid (no NaN — NaN has no order to preserve) *)
    let int_part = int_range (-6) 6 in
    let str_part =
      string_size ~gen:(oneofl [ 'a'; 'b'; '\x00'; '\xff' ]) (int_bound 4)
    in
    let float_part = map (fun i -> float_of_int i /. 4.) (int_range (-9) 9) in
    map
      (fun (a, b, c, d) ->
        [| Row.Vint a; Row.Vstr b; Row.Vfloat c; Row.Vbool d; Row.Vstr "p" |])
      (quad int_part str_part float_part bool))

let sign i = compare i 0

let lex_compare ra rb =
  let rec go = function
    | [] -> 0
    | c :: rest ->
        let d = Row.compare_value ra.(c) rb.(c) in
        if d <> 0 then d else go rest
  in
  go [ 0; 1; 2; 3 ]

let keycode_order_preserving =
  QCheck.Test.make
    ~name:"keycode: multi-column encoding preserves row order" ~count:1000
    QCheck.(pair (QCheck.make multikey_row_gen) (QCheck.make multikey_row_gen))
    (fun (ra, rb) ->
      let ka = Row.key_of_row multikey_schema ra
      and kb = Row.key_of_row multikey_schema rb in
      let want = sign (lex_compare ra rb)
      and got = sign (String.compare ka kb) in
      if want <> got then
        QCheck.Test.fail_reportf
          "rows compare %d but encoded keys compare %d:@.%a@.%a@.%S@.%S" want
          got Row.pp_row ra Row.pp_row rb ka kb;
      true)

let suite =
  [
    QCheck_alcotest.to_alcotest cache_matches_model;
    QCheck_alcotest.to_alcotest btree_string_keys;
    QCheck_alcotest.to_alcotest keycode_order_preserving;
  ]

(* Property tests of the FS-DP wire protocol, the processor time-slice
   re-drive, entry-sequenced sequential reads, and mirrored volumes. *)

open Harness
module Dp_msg = Nsql_dp.Dp_msg
module Enscribe = Nsql_enscribe.Enscribe
module Stats = Nsql_sim.Stats
module Disk = Nsql_disk.Disk

(* --- random protocol roundtrips ------------------------------------------- *)

let key_gen = QCheck.Gen.(string_size ~gen:(char_range '\x00' '\xff') (int_bound 24))

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Row.Null;
        map (fun i -> Row.Vint i) int;
        map (fun f -> Row.Vfloat f) (float_bound_inclusive 1e6);
        map (fun b -> Row.Vbool b) bool;
        map (fun s -> Row.Vstr s) (string_size (int_bound 16));
      ])

let expr_gen =
  QCheck.Gen.(
    fix
      (fun self depth ->
        if depth = 0 then
          oneof
            [ map (fun i -> Expr.Field i) (int_bound 10);
              map (fun v -> Expr.Const v) value_gen ]
        else
          let sub = self (depth - 1) in
          oneof
            [
              map (fun i -> Expr.Field i) (int_bound 10);
              map (fun v -> Expr.Const v) value_gen;
              map2 (fun a b -> Expr.Binop (Expr.Add, a, b)) sub sub;
              map2 (fun a b -> Expr.Cmp (Expr.Lt, a, b)) sub sub;
              map2 (fun a b -> Expr.And (a, b)) sub sub;
              map (fun a -> Expr.Not a) sub;
              map2 (fun a p -> Expr.Like (a, p)) sub (string_size (int_bound 6));
            ])
      3)

let request_gen =
  QCheck.Gen.(
    let range =
      map2 (fun lo hi -> Expr.{ lo; hi }) key_gen key_gen
    in
    oneof
      [
        map2
          (fun file key -> Dp_msg.R_read { file; tx = 1; key; lock = Dp_msg.L_shared })
          (int_bound 30) key_gen;
        map2
          (fun key record -> Dp_msg.R_insert { file = 0; tx = 2; key; record })
          key_gen (string_size (int_bound 64));
        map2
          (fun r pred ->
            Dp_msg.R_get_first
              {
                file = 1;
                tx = 3;
                buffering = Dp_msg.B_vsbb;
                range = r;
                pred = Some pred;
                proj = Some [| 0; 2; 5 |];
                lock = Dp_msg.L_none;
              })
          range expr_gen;
        map2
          (fun r pred ->
            Dp_msg.R_update_subset_first
              {
                file = 2;
                tx = 4;
                range = r;
                pred = Some pred;
                assignments = [ { Expr.target = 1; source = pred } ];
              })
          range expr_gen;
        map
          (fun rows -> Dp_msg.R_insert_block { file = 3; tx = 5; rows })
          (list_size (int_bound 6) (array_size (int_bound 4) value_gen));
        map
          (fun ops ->
            Dp_msg.R_apply_block
              { file = 4; tx = 6;
                ops = List.map (fun k -> (k, Dp_msg.Ob_delete)) ops })
          (list_size (int_bound 5) key_gen);
      ])

let request_roundtrip =
  QCheck.Test.make ~name:"request codec roundtrip (random)" ~count:500
    (QCheck.make request_gen) (fun req ->
      let bytes1 = Dp_msg.encode_request req in
      let req' =
        match Dp_msg.decode_request bytes1 with
        | Ok r -> r
        | Error e -> failwith (Dp_msg.decode_error_to_string e)
      in
      let bytes2 = Dp_msg.encode_request req' in
      (* byte-level idempotence implies structural equality for this codec *)
      String.equal bytes1 bytes2 && Dp_msg.tag req = Dp_msg.tag req')

let reply_gen =
  QCheck.Gen.(
    oneof
      [
        return Dp_msg.Rp_ok;
        return Dp_msg.Rp_end;
        map (fun id -> Dp_msg.Rp_file id) (int_bound 100);
        map2
          (fun key record -> Dp_msg.Rp_record { key; record })
          key_gen (string_size (int_bound 64));
        map2
          (fun rows last_key ->
            Dp_msg.Rp_vblock { rows; last_key; more = true; scb = 7 })
          (list_size (int_bound 5) (array_size (int_bound 4) value_gen))
          key_gen;
        map
          (fun blockers ->
            Dp_msg.Rp_blocked { blockers; processed = 3; last_key = "k"; scb = 1 })
          (list_size (int_bound 4) (int_bound 50));
        map
          (fun msg_ -> Dp_msg.Rp_error (Errors.Lock_timeout msg_))
          (string_size (int_bound 20));
      ])

let reply_roundtrip =
  QCheck.Test.make ~name:"reply codec roundtrip (random)" ~count:500
    (QCheck.make reply_gen) (fun reply ->
      let bytes1 = Dp_msg.encode_reply reply in
      match Dp_msg.decode_reply bytes1 with
      | Error e -> failwith (Dp_msg.decode_error_to_string e)
      | Ok reply' -> String.equal bytes1 (Dp_msg.encode_reply reply'))

(* --- time-slice re-drives --------------------------------------------------- *)

let tick_limit_triggers_redrive () =
  (* a tiny CPU budget per request forces re-drives even when the record
     limit and the reply buffer would not *)
  let config = Config.v ~dp_ticks_per_request:500 ~dp_records_per_request:100000 () in
  let n = node ~config () in
  let file = create_accounts n in
  load_accounts n file 400;
  let s = Sim.stats n.sim in
  in_tx n (fun tx ->
      let sc =
        Fs.open_scan n.fs file ~tx ~access:Fs.A_vsbb ~range:full_range
          ~pred:Expr.(Cmp (Eq, Field 2, str "nobody"))
          ~proj:[| 0 |] ~lock:Dp_msg.L_none ()
      in
      let rows = drain_scan n sc in
      Alcotest.(check int) "predicate matches nothing" 0 (List.length rows);
      Ok ());
  Alcotest.(check bool)
    (Printf.sprintf "time-slice re-drives happened (%d)" s.Stats.redrives)
    true
    (s.Stats.redrives > 2)

(* --- entry-sequenced sequential read through ENSCRIBE ------------------------ *)

let entry_file_scan () =
  let n = node () in
  let file =
    get_ok ~ctx:"create"
      (Fs.create_enscribe_file n.fs ~fname:"HIST" ~kind:Dp_msg.K_entry_sequenced
         ~partitions:[ Fs.{ ps_lo = ""; ps_dp = n.dps.(0) } ])
  in
  let h = Enscribe.open_file n.fs file ~sbb:false in
  in_tx n (fun tx ->
      let open Errors in
      let rec go i =
        if i >= 150 then Ok ()
        else
          let* () =
            Enscribe.write h ~tx ~key:""
              ~record:(Printf.sprintf "event-%04d-%s" i (String.make 60 'h'))
          in
          go (i + 1)
      in
      go 0);
  in_tx n (fun tx ->
      let open Errors in
      Enscribe.keyposition h ~key:"";
      let rec collect acc =
        let* entry = Enscribe.readnext h ~tx ~lock:Dp_msg.L_none in
        match entry with
        | None -> Ok (List.rev acc)
        | Some (_, r) -> collect (r :: acc)
      in
      let* all = collect [] in
      Alcotest.(check int) "all history records" 150 (List.length all);
      (* insertion order preserved *)
      List.iteri
        (fun i r ->
          Alcotest.(check string) "prefix"
            (Printf.sprintf "event-%04d" i)
            (String.sub r 0 10))
        all;
      Ok ())

(* --- re-drive under random bounds and fault points ---------------------------- *)

(* A scan is chopped into continuation re-drives by whatever per-request
   record and CPU-tick budgets the Disk Process is configured with; the
   session control block must make the resumption exact no matter where
   the cut falls — and no matter whether the message path flaps, the
   reply is delayed, or the primary DP dies and the backup takes over
   mid-scan. The observable contract: the requester sees every row
   exactly once, in key order. *)
let scan_redrive_exactly_once =
  QCheck.Test.make
    ~name:"re-drive: random bounds + fault points lose/duplicate nothing"
    ~count:30
    QCheck.(
      quad (int_range 1 40) (int_range 150 4000) (int_range 30 220)
        (int_bound 100_000))
    (fun (recs, ticks, count, salt) ->
      let config =
        Config.v ~dp_records_per_request:recs ~dp_ticks_per_request:ticks
          ~vsbb_buffer_bytes:(512 + (salt mod 7 * 256))
          ()
      in
      let n = node ~config ~dps:2 () in
      let file = create_accounts ~parts:2 ~split:((count + 1) / 2) n in
      load_accounts n file count;
      let access = if salt land 1 = 0 then Fs.A_vsbb else Fs.A_rsbb in
      let fault_at = salt mod count in
      let fault_kind = salt / 7 mod 3 in
      let inject () =
        match fault_kind with
        | 0 ->
            (* next few messages fail on the primary path and are resent *)
            let remaining = ref 3 in
            Msg.set_fault_filter n.msys
              (Some
                 (fun ~from:_ ~to_name:_ ~tag:_ ->
                   if !remaining > 0 then begin
                     decr remaining;
                     Msg.Fault_path_retry 400.
                   end
                   else Msg.Fault_pass))
        | 1 ->
            let remaining = ref 4 in
            Msg.set_fault_filter n.msys
              (Some
                 (fun ~from:_ ~to_name:_ ~tag:_ ->
                   if !remaining > 0 then begin
                     decr remaining;
                     Msg.Fault_delay 2_000.
                   end
                   else Msg.Fault_pass))
        | _ ->
            (* the primary of one volume dies; the backup takes over and
               the scan's next re-drive lands on it transparently *)
            get_ok ~ctx:"takeover" (Dp.takeover n.dps.(salt land 1))
      in
      let rows =
        in_tx n (fun tx ->
            let sc =
              Fs.open_scan n.fs file ~tx ~access ~range:full_range
                ~lock:Dp_msg.L_none ()
            in
            let rec go i acc =
              if i = fault_at then inject ();
              match get_ok ~ctx:"scan_next" (Fs.scan_next n.fs sc) with
              | Some row -> go (i + 1) (row :: acc)
              | None -> List.rev acc
            in
            let rows = go 0 [] in
            Fs.close_scan n.fs sc;
            Ok rows)
      in
      Msg.set_fault_filter n.msys None;
      if List.length rows <> count then
        QCheck.Test.fail_reportf "expected %d rows, got %d" count
          (List.length rows);
      List.iteri
        (fun i row ->
          match row.(0) with
          | Row.Vint acct when acct = i -> ()
          | v ->
              QCheck.Test.fail_reportf
                "row %d: expected acctno %d, got %s (lost/dup/reordered)" i i
                (Format.asprintf "%a" Row.pp_value v))
        rows;
      true)

(* --- mirrored volumes --------------------------------------------------------- *)

let mirrored_volume_duplicates_writes () =
  let config = Config.v ~mirrored:true () in
  let n = node ~config () in
  let file = create_accounts n in
  let s = Sim.stats n.sim in
  let before_w = s.Stats.disk_writes in
  load_accounts n file 100;
  Nsql_cache.Cache.flush_all (Dp.cache n.dps.(0));
  let writes = s.Stats.disk_writes - before_w in
  Alcotest.(check bool) "writes doubled by mirroring" true (writes mod 2 = 0 && writes > 0);
  (* reads are served by one drive: a cold scan costs single reads *)
  ignore (Nsql_cache.Cache.steal (Dp.cache n.dps.(0)) max_int);
  let before_r = s.Stats.disk_reads in
  in_tx n (fun tx ->
      let sc =
        Fs.open_scan n.fs file ~tx ~access:Fs.A_vsbb ~range:full_range
          ~proj:[| 0 |] ~lock:Dp_msg.L_none ()
      in
      ignore (drain_scan n sc);
      Ok ());
  Alcotest.(check bool) "reads not doubled" true (s.Stats.disk_reads - before_r > 0)

(* a malformed payload must surface as a typed decode error, never an
   exception out of the transport layer *)
let malformed_payload_is_typed_error () =
  (match Dp_msg.decode_request "\xff" with
  | Error (Dp_msg.Bad_tag { field = "request"; tag = 255 }) -> ()
  | Error e ->
      Alcotest.failf "unexpected error: %s" (Dp_msg.decode_error_to_string e)
  | Ok _ -> Alcotest.fail "decoded a garbage request");
  (match Dp_msg.decode_reply "" with
  | Error Dp_msg.Truncated -> ()
  | Error e ->
      Alcotest.failf "unexpected error: %s" (Dp_msg.decode_error_to_string e)
  | Ok _ -> Alcotest.fail "decoded an empty reply");
  (* tag 1 = R_read, with its fields cut off *)
  match Dp_msg.decode_request "\x01" with
  | Error Dp_msg.Truncated -> ()
  | Error e ->
      Alcotest.failf "unexpected error: %s" (Dp_msg.decode_error_to_string e)
  | Ok _ -> Alcotest.fail "decoded a truncated request"

let suite =
  [
    QCheck_alcotest.to_alcotest request_roundtrip;
    Alcotest.test_case "malformed payloads are typed errors" `Quick
      malformed_payload_is_typed_error;
    QCheck_alcotest.to_alcotest reply_roundtrip;
    Alcotest.test_case "CPU time-slice forces re-drives" `Quick
      tick_limit_triggers_redrive;
    Alcotest.test_case "entry-sequenced scan via ENSCRIBE" `Quick
      entry_file_scan;
    Alcotest.test_case "mirrored volume write doubling" `Quick
      mirrored_volume_duplicates_writes;
    QCheck_alcotest.to_alcotest scan_redrive_exactly_once;
  ]

(* PR-10 battery: the multi-queue disk and the two accounting bugfixes.

   Three layers of defence:

   - depth-1 bit-identity: the golden fingerprints in {!Golden} (captured
     from the pre-queue-model build) must be reproduced exactly by the
     default configuration AND by an explicit [disk_queue_depth = 1] —
     full statistics vector and final simulated clock, byte for byte;

   - device semantics: submission/completion handle behaviour, channel
     overlap at depth, the repaired [Disk.stall] arithmetic (an idle
     device is delayed by exactly the stall; a backlog already past the
     stall point absorbs it — the pre-PR code overwrote the backlog),
     and the repaired [Cache.read_range] hit/miss accounting (a miss per
     absent block, hits only for blocks resident before the call);

   - determinism: QCheck sweeps checking that random submit/complete
     interleavings — including chaos-style transient disk faults — replay
     byte-identically at every depth, and that the data read is the same
     at depth 8 as at depth 1. *)

module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Config = Nsql_sim.Config
module Moncore = Nsql_sim.Moncore
module Disk = Nsql_disk.Disk
module Cache = Nsql_cache.Cache
module N = Nsql_core.Nonstop_sql
module Wisconsin = Nsql_workload.Wisconsin
module Errors = Nsql_util.Errors

(* --- depth-1 golden fingerprints -------------------------------------- *)

let check_golden name expected run () =
  Alcotest.(check string)
    (name ^ ": pre-queue-model fingerprint reproduced")
    expected (run ())

let golden_cases =
  List.map2
    (fun (name, run) expected ->
      Alcotest.test_case
        (Printf.sprintf "golden: %s (default depth 1)" name)
        `Quick
        (check_golden name expected run))
    Golden.scenarios
    [
      Golden.golden_queries;
      Golden.golden_transfers;
      Golden.golden_cold_scans;
      Golden.golden_chaos6;
      Golden.golden_chaos12;
    ]

(* an explicit depth-1 config must be indistinguishable from the default *)
let explicit_depth1_cases =
  [
    Alcotest.test_case "golden: queries (explicit depth 1)" `Quick
      (check_golden "queries" Golden.golden_queries (fun () ->
           Golden.queries
             ~config:(Config.v ~fs_fanout:true ~disk_queue_depth:1 ())
             ()));
    Alcotest.test_case "golden: transfers (explicit depth 1)" `Quick
      (check_golden "transfers" Golden.golden_transfers (fun () ->
           Golden.transfers
             ~config:
               (Config.v ~dp_lock_wait:true ~lock_wait_timeout_us:150_000.
                  ~disk_queue_depth:1 ())
             ()));
    Alcotest.test_case "golden: cold_scans (explicit depth 1)" `Quick
      (check_golden "cold_scans" Golden.golden_cold_scans (fun () ->
           Golden.cold_scans
             ~config:
               (Config.v ~fs_fanout:true ~cache_blocks:16 ~disk_queue_depth:1
                  ())
             ()));
  ]

(* --- device semantics -------------------------------------------------- *)

let setup ?(depth = 1) ?(blocks = 256) () =
  let sim = Sim.create ~config:(Config.v ~disk_queue_depth:depth ()) () in
  let d = Disk.create sim ~name:"$DATA" in
  ignore (Disk.allocate d blocks);
  (sim, d)

let submit_costs_nothing () =
  let sim, d = setup ~depth:4 () in
  let t0 = Sim.now sim in
  let io = Disk.submit_read d ~first:0 ~count:7 in
  Alcotest.(check (float 0.)) "submission is free" t0 (Sim.now sim);
  Alcotest.(check bool) "completion in the future" true
    (Disk.io_done_at io > t0);
  let data = Disk.complete d io in
  Alcotest.(check (float 0.))
    "complete waits to the done-time" (Disk.io_done_at io) (Sim.now sim);
  Alcotest.(check int) "seven blocks" 7 (Array.length data)

(* four random-position reads: at depth 4 the seeks overlap across the
   channels (equal service times, so total elapsed = one I/O); at depth 1
   they serialize to exactly four times that *)
let channels_overlap () =
  let firsts = [ 0; 50; 100; 150 ] in
  let run depth =
    let sim, d = setup ~depth () in
    let t0 = Sim.now sim in
    let ios = List.map (fun first -> Disk.submit_read d ~first ~count:7) firsts in
    List.iter (fun io -> ignore (Disk.complete d io)) ios;
    Sim.now sim -. t0
  in
  let e1 = run 1 and e4 = run 4 in
  Alcotest.(check (float 0.)) "depth 4 overlaps fully" (e1 /. 4.) e4

let gauge_tracks_inflight () =
  let sim, d = setup ~depth:4 () in
  let mc = Sim.moncore sim in
  Moncore.set_enabled mc ~now:(Sim.now sim) true;
  let ios = List.map (fun first -> Disk.submit_read d ~first ~count:7) [ 0; 50; 100 ] in
  Alcotest.(check int) "three in flight" 3 (Disk.queue_depth d);
  Alcotest.(check int) "gauge agrees" 3 (Moncore.gauge_value mc Moncore.G_diskq);
  List.iter (fun io -> ignore (Disk.complete d io)) ios;
  Alcotest.(check int) "drained" 0 (Disk.queue_depth d);
  Alcotest.(check int) "gauge retired" 0
    (Moncore.gauge_value mc Moncore.G_diskq)

(* regression: [stall] on an idle device delays the next I/O by exactly
   the stall — and only measures from [now], not from zero *)
let stall_delays_idle_device () =
  (* baseline cost of the same read without a stall *)
  let sim, d = setup () in
  let t0 = Sim.now sim in
  ignore (Disk.read_bulk d ~first:40 ~count:3);
  let io_cost = Sim.now sim -. t0 in
  let sim, d = setup () in
  Sim.tick sim 100;
  let t0 = Sim.now sim in
  Disk.stall d ~us:1000.;
  ignore (Disk.read_bulk d ~first:40 ~count:3);
  Alcotest.(check (float 0.))
    "read starts exactly at the end of the stall" (1000. +. io_cost)
    (Sim.now sim -. t0)

(* regression: a backlog already extending past [now + us] absorbs the
   stall. The pre-PR code set [busy_until <- now + us] unconditionally,
   so a stall *shortened* the queue and later I/Os started too early. *)
let stall_absorbed_by_backlog () =
  let sim, d = setup () in
  let io = Disk.submit_read d ~first:0 ~count:7 in
  let backlog_end = Disk.io_done_at io in
  Alcotest.(check bool) "backlog extends past the stall" true
    (backlog_end > Sim.now sim +. 1.);
  Disk.stall d ~us:1.;
  let io2 = Disk.submit_read d ~first:7 ~count:7 in
  Alcotest.(check bool)
    "second I/O queues behind the full backlog, not the stall" true
    (Disk.io_done_at io2 > backlog_end);
  ignore (Disk.complete d io);
  ignore (Disk.complete d io2)

(* --- read_range accounting regressions --------------------------------- *)

let cache_setup ?(depth = 1) ?(capacity = 64) () =
  let sim = Sim.create ~config:(Config.v ~disk_queue_depth:depth ()) () in
  let disk = Disk.create sim ~name:"$DATA" in
  ignore (Disk.allocate disk 256);
  let cache =
    Cache.create sim disk ~capacity
      ~durable_lsn:(fun () -> Int64.max_int)
      ~force_log:(fun _ -> ())
  in
  (sim, disk, cache)

(* regression: a cold range is one miss per absent block and zero hits —
   the pre-PR code counted every fetched block as a hit *)
let read_range_cold_counts_misses () =
  let sim, _disk, cache = cache_setup () in
  let s = Sim.stats sim in
  ignore (Cache.read_range cache ~first:10 ~count:10);
  Alcotest.(check int) "a miss per absent block" 10 s.Stats.cache_misses;
  Alcotest.(check int) "no hits on a cold range" 0 s.Stats.cache_hits

let read_range_warm_counts_hits () =
  let sim, _disk, cache = cache_setup () in
  let s = Sim.stats sim in
  ignore (Cache.read_range cache ~first:10 ~count:10);
  ignore (Cache.read_range cache ~first:10 ~count:10);
  Alcotest.(check int) "warm range hits every block" 10 s.Stats.cache_hits;
  Alcotest.(check int) "no further misses" 10 s.Stats.cache_misses

let read_range_mixed_residency () =
  let sim, _disk, cache = cache_setup () in
  let s = Sim.stats sim in
  ignore (Cache.read cache 14);
  (* one resident block in the middle of an absent range *)
  ignore (Cache.read_range cache ~first:10 ~count:10);
  Alcotest.(check int) "one hit for the pre-resident block"
    1 s.Stats.cache_hits;
  Alcotest.(check int) "a miss per absent block (1 + 9)"
    10 s.Stats.cache_misses

let read_range_returns_disk_contents () =
  let _sim, disk, cache = cache_setup ~depth:4 () in
  let bs = Disk.block_size disk in
  for i = 0 to 27 do
    Disk.write disk i (String.make bs (Char.chr (Char.code 'a' + (i mod 26))))
  done;
  let got = Cache.read_range cache ~first:0 ~count:28 in
  Alcotest.(check int) "28 blocks" 28 (Array.length got);
  Array.iteri
    (fun i data ->
      Alcotest.(check char)
        (Printf.sprintf "block %d contents" i)
        (Char.chr (Char.code 'a' + (i mod 26)))
        data.[0])
    got

let read_range_depth_overlaps () =
  let run depth =
    let sim, _disk, cache = cache_setup ~depth () in
    let t0 = Sim.now sim in
    ignore (Cache.read_range cache ~first:0 ~count:28);
    Sim.now sim -. t0
  in
  let e1 = run 1 and e4 = run 4 in
  Alcotest.(check bool)
    (Printf.sprintf "four strings in flight beat serial (%.1f < %.1f)" e4 e1)
    true (e4 < e1)

(* --- determinism sweeps ------------------------------------------------ *)

(* a deterministic pseudo-random interleaving of submissions, completions,
   stalls and transient faults, driven from one integer seed; returns the
   closing fingerprint (clock + full stats) and a digest of the data *)
let random_io_run ~depth ~seed =
  let sim, d = setup ~depth ~blocks:256 () in
  let rng = Random.State.make [| seed |] in
  (* deterministic fault plan: roughly one I/O in six suffers a retry *)
  Disk.set_fault_hook d
    (Some
       (fun () ->
         if Random.State.int rng 6 = 0 then
           Some (float_of_int (1 + Random.State.int rng 3) *. 100.)
         else None));
  let bs = Disk.block_size d in
  for i = 0 to 255 do
    Disk.write d i (String.make bs (Char.chr (i mod 256)))
  done;
  let pending = Queue.create () in
  let digest = Buffer.create 64 in
  let retire () =
    let io = Queue.pop pending in
    let data = Disk.complete d io in
    Array.iter (fun b -> Buffer.add_char digest b.[0]) data
  in
  for _ = 1 to 40 do
    (match Random.State.int rng 10 with
    | 0 -> Disk.stall d ~us:(float_of_int (Random.State.int rng 500))
    | 1 | 2 -> if not (Queue.is_empty pending) then retire ()
    | _ ->
        if Queue.length pending >= depth then retire ();
        let count = 1 + Random.State.int rng 7 in
        let first = Random.State.int rng (256 - count) in
        Queue.push (Disk.submit_read d ~first ~count) pending);
    Sim.tick sim (Random.State.int rng 50)
  done;
  while not (Queue.is_empty pending) do
    retire ()
  done;
  ( Golden.fingerprint_of ~stats:(Sim.stats sim) ~now:(Sim.now sim),
    Buffer.contents digest )

let completion_order_deterministic =
  QCheck.Test.make ~count:15
    ~name:"diskq: random interleavings replay byte-identically at any depth"
    QCheck.(pair (int_bound 1_000_000) (int_bound 3))
    (fun (seed, dexp) ->
      let depth = 1 lsl dexp in
      let f1, d1 = random_io_run ~depth ~seed in
      let f2, d2 = random_io_run ~depth ~seed in
      if f1 <> f2 then
        QCheck.Test.fail_reportf
          "seed %d depth %d: fingerprints differ:@.%s@.%s" seed depth f1 f2;
      d1 = d2)

let data_identical_across_depths =
  QCheck.Test.make ~count:15
    ~name:"diskq: depth changes timing, never data"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let _, d1 = random_io_run ~depth:1 ~seed in
      let _, d8 = random_io_run ~depth:8 ~seed in
      if d1 <> d8 then
        QCheck.Test.fail_reportf "seed %d: depth 8 read different data" seed;
      true)

(* pre-fetch and write-behind pumped through a faulty deep-queue device:
   contents survive the retries, the transient-error counter moves, and
   the whole interleaving replays byte-identically *)
let prefetch_writebehind_under_faults () =
  let run () =
    let sim, disk, cache = cache_setup ~depth:4 ~capacity:64 () in
    let rng = Random.State.make [| 42 |] in
    Disk.set_fault_hook disk
      (Some
         (fun () ->
           if Random.State.int rng 4 = 0 then Some 250. else None));
    let bs = Disk.block_size disk in
    for i = 0 to 55 do
      Disk.write disk i (String.make bs (Char.chr (Char.code 'A' + (i mod 56))))
    done;
    Cache.prefetch cache ~first:0 ~count:28;
    (* dirty a second stripe and drain it through write-behind *)
    for i = 28 to 55 do
      Cache.write cache i (String.make bs 'z') ~lsn:1L
    done;
    ignore (Cache.write_behind cache);
    let got = Cache.read_range cache ~first:0 ~count:28 in
    Array.iteri
      (fun i data ->
        Alcotest.(check char)
          (Printf.sprintf "prefetched block %d" i)
          (Char.chr (Char.code 'A' + (i mod 56)))
          data.[0])
      got;
    Cache.flush_all cache;
    let s = Sim.stats sim in
    Alcotest.(check bool) "transient faults were injected" true
      (s.Stats.disk_transient_errors > 0);
    Alcotest.(check bool) "write-behind ran" true
      (s.Stats.writebehind_writes > 0);
    Alcotest.(check bool) "prefetch ran" true (s.Stats.prefetch_reads > 0);
    Golden.fingerprint_of ~stats:s ~now:(Sim.now sim)
  in
  Alcotest.(check string) "faulty deep-queue run replays identically"
    (run ()) (run ())

(* the cold-scan scenario replays byte-identically at every depth (the
   fingerprints differ ACROSS depths — that is the point of the knob) *)
let scenario_deterministic_per_depth () =
  List.iter
    (fun depth ->
      let config () =
        Config.v ~fs_fanout:true ~cache_blocks:16 ~disk_queue_depth:depth ()
      in
      let f1 = Golden.cold_scans ~config:(config ()) () in
      let f2 = Golden.cold_scans ~config:(config ()) () in
      Alcotest.(check string)
        (Printf.sprintf "cold_scans deterministic at depth %d" depth)
        f1 f2)
    [ 2; 8 ]

(* SQL rowsets are depth-invariant: same Wisconsin queries, same answers,
   at depths 1, 2, 4, 8 and 16 *)
let rowsets_identical_across_depths () =
  let run depth =
    let config = Config.v ~cache_blocks:32 ~disk_queue_depth:depth () in
    let node = N.create_node ~config ~volumes:2 () in
    let rows = 600 in
    Errors.get_ok ~ctx:"wisc"
      (Wisconsin.create node ~name:"t" ~rows ~partitions:2 ());
    let s = N.session node in
    List.map
      (fun sql ->
        match N.exec_exn s sql with
        | N.Rows rs -> Format.asprintf "%a" N.pp_rowset rs
        | _ -> Alcotest.fail ("no rowset from " ^ sql))
      [
        "SELECT COUNT(*), SUM(unique1) FROM t";
        "SELECT unique1, stringu1 FROM t WHERE unique2 < 47";
        "SELECT COUNT(*), MIN(unique2), MAX(unique2) FROM t WHERE two = 0";
      ]
  in
  let base = run 1 in
  List.iter
    (fun depth ->
      List.iteri
        (fun i (expect, got) ->
          Alcotest.(check string)
            (Printf.sprintf "query %d rowset at depth %d" i depth)
            expect got)
        (List.combine base (run depth)))
    [ 2; 4; 8; 16 ]

let invalid_depth_rejected () =
  let sim = Sim.create ~config:(Config.v ~disk_queue_depth:0 ()) () in
  Alcotest.check_raises "depth 0 rejected"
    (Invalid_argument "Disk($DATA): disk_queue_depth 0 < 1") (fun () ->
      ignore (Disk.create sim ~name:"$DATA"))

let suite =
  golden_cases @ explicit_depth1_cases
  @ [
      Alcotest.test_case "submit costs nothing, complete waits" `Quick
        submit_costs_nothing;
      Alcotest.test_case "channels overlap at depth" `Quick channels_overlap;
      Alcotest.test_case "queue-depth gauge tracks in-flight" `Quick
        gauge_tracks_inflight;
      Alcotest.test_case "stall delays an idle device (regression)" `Quick
        stall_delays_idle_device;
      Alcotest.test_case "backlog absorbs a shorter stall (regression)"
        `Quick stall_absorbed_by_backlog;
      Alcotest.test_case "cold read_range counts misses (regression)" `Quick
        read_range_cold_counts_misses;
      Alcotest.test_case "warm read_range counts hits" `Quick
        read_range_warm_counts_hits;
      Alcotest.test_case "mixed-residency read_range accounting" `Quick
        read_range_mixed_residency;
      Alcotest.test_case "read_range returns disk contents" `Quick
        read_range_returns_disk_contents;
      Alcotest.test_case "read_range overlaps strings at depth" `Quick
        read_range_depth_overlaps;
      QCheck_alcotest.to_alcotest completion_order_deterministic;
      QCheck_alcotest.to_alcotest data_identical_across_depths;
      Alcotest.test_case "prefetch/write-behind under disk faults" `Quick
        prefetch_writebehind_under_faults;
      Alcotest.test_case "scenarios deterministic per depth" `Quick
        scenario_deterministic_per_depth;
      Alcotest.test_case "rowsets identical across depths" `Quick
        rowsets_identical_across_depths;
      Alcotest.test_case "invalid depth rejected" `Quick
        invalid_depth_rejected;
    ]

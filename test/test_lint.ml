(* Per-rule fixtures for nsql-lint: each rule gets a known-bad source
   that must fire and a known-good source that must stay clean, plus
   call-graph/effect-engine unit tests, allowlist behaviour and a
   whole-repo "lib/ lints clean" check — the same invariant CI enforces,
   kept here so `dune runtest` catches a violation before the lint job
   does. *)

module Diag = Nsql_lint_lib.Diag
module Rules = Nsql_lint_lib.Rules
module Source = Nsql_lint_lib.Source
module Allow = Nsql_lint_lib.Allow
module Engine = Nsql_lint_lib.Engine
module Callgraph = Nsql_lint_lib.Callgraph
module Effects = Nsql_lint_lib.Effects

let parse ~path src = Source.parse_string ~path src

let rules_of diags = List.map (fun d -> d.Diag.rule) diags

let check_rules name expected diags =
  Alcotest.(check (list string)) name expected (rules_of diags)

(* build an interprocedural context over a list of (path, source) fixtures *)
let parse_all files = List.map (fun (p, src) -> (p, parse ~path:p src)) files
let ctx_of files = Rules.build_ctx (parse_all files)

(* run RES-LEAK on [target] with the whole fixture cluster as call-graph
   context *)
let res_leak_on files target =
  let parsed = parse_all files in
  let ctx = Rules.build_ctx parsed in
  Rules.res_leak ~path:target ~ctx (List.assoc target parsed)

let res_leak1 ~path src = res_leak_on [ (path, src) ] path

(* --- DET-RANDOM ---------------------------------------------------------- *)

let det_random () =
  let bad = parse ~path:"lib/sql/fixture.ml" "let x () = Random.int 5" in
  check_rules "Random.int fires" [ "DET-RANDOM" ]
    (Rules.det_random ~path:"lib/sql/fixture.ml" bad);
  let qualified =
    parse ~path:"lib/sql/fixture.ml" "let x () = Stdlib.Random.bits ()"
  in
  check_rules "Stdlib.Random fires" [ "DET-RANDOM" ]
    (Rules.det_random ~path:"lib/sql/fixture.ml" qualified);
  (* the simulation layer owns the seeded generator *)
  let sim = parse ~path:"lib/sim/fixture.ml" "let x () = Random.int 5" in
  check_rules "lib/sim is exempt" [] (Rules.det_random ~path:"lib/sim/fixture.ml" sim);
  let good = parse ~path:"lib/sql/fixture.ml" "let x p = Prng.int p 5" in
  check_rules "seeded Prng is clean" []
    (Rules.det_random ~path:"lib/sql/fixture.ml" good)

(* --- SIM-CLOCK ----------------------------------------------------------- *)

let sim_clock () =
  let bad =
    parse ~path:"lib/tmf/fixture.ml" "let now () = Unix.gettimeofday ()"
  in
  check_rules "Unix.gettimeofday fires" [ "SIM-CLOCK" ]
    (Rules.sim_clock ~path:"lib/tmf/fixture.ml" bad);
  let sys = parse ~path:"lib/tmf/fixture.ml" "let now () = Sys.time ()" in
  check_rules "Sys.time fires" [ "SIM-CLOCK" ]
    (Rules.sim_clock ~path:"lib/tmf/fixture.ml" sys);
  let good = parse ~path:"lib/tmf/fixture.ml" "let now sim = Sim.now sim" in
  check_rules "Sim.now is clean" []
    (Rules.sim_clock ~path:"lib/tmf/fixture.ml" good)

(* --- MON-PURE ------------------------------------------------------------ *)

let mon_pure () =
  let bad =
    parse ~path:"lib/monitor/fixture.ml"
      "let f sim = Sim.charge sim 5.0"
  in
  check_rules "Sim.charge in lib/monitor fires" [ "MON-PURE" ]
    (Rules.mon_pure ~path:"lib/monitor/fixture.ml" bad);
  let qualified =
    parse ~path:"lib/sim/moncore.ml"
      "let f sys ep = Nsql_msg.Msg.send sys ~from:ep ~tag:\"t\" ep \"x\""
  in
  check_rules "qualified Msg.send in moncore fires" [ "MON-PURE" ]
    (Rules.mon_pure ~path:"lib/sim/moncore.ml" qualified);
  let sched =
    parse ~path:"lib/sim/hist.ml"
      "let f sim = Sim.schedule sim ~at:1.0 (fun () -> ())"
  in
  check_rules "Sim.schedule in hist fires" [ "MON-PURE" ]
    (Rules.mon_pure ~path:"lib/sim/hist.ml" sched);
  let submit =
    parse ~path:"lib/monitor/fixture.ml"
      "let f d = Disk.complete d (Disk.submit_read d ~first:0 ~count:1)"
  in
  check_rules "disk submission/completion in the monitor fires"
    [ "MON-PURE"; "MON-PURE" ]
    (Rules.mon_pure ~path:"lib/monitor/fixture.ml" submit);
  (* reads are fine: the monitor observes the clock and counters *)
  let good =
    parse ~path:"lib/monitor/fixture.ml"
      "let f sim = (Sim.now sim, Sim.stats sim, Moncore.cat_snapshot \
       (Sim.moncore sim))"
  in
  check_rules "clock/counter reads are clean" []
    (Rules.mon_pure ~path:"lib/monitor/fixture.ml" good);
  (* the same call outside the monitor layer is none of this rule's
     business — CLOCK-CHARGE territory *)
  let elsewhere =
    parse ~path:"lib/dp/fixture.ml" "let f sim = Sim.charge sim 5.0"
  in
  check_rules "charging outside the monitor is exempt" []
    (Rules.mon_pure ~path:"lib/dp/fixture.ml" elsewhere)

(* --- DET-HASHITER -------------------------------------------------------- *)

let det_hashiter () =
  let bad =
    parse ~path:"lib/cache/fixture.ml"
      "let f t = Hashtbl.iter (fun _ v -> print_int v) t"
  in
  check_rules "Hashtbl.iter fires" [ "DET-HASHITER" ]
    (Rules.det_hashiter ~path:"lib/cache/fixture.ml" bad);
  let fold =
    parse ~path:"lib/cache/fixture.ml"
      "let f t = Hashtbl.fold (fun _ v acc -> v + acc) t 0"
  in
  check_rules "Hashtbl.fold fires" [ "DET-HASHITER" ]
    (Rules.det_hashiter ~path:"lib/cache/fixture.ml" fold);
  let good =
    parse ~path:"lib/cache/fixture.ml"
      "let f t = List.iter print_int (List.map snd (Nsql_util.Tbl.sorted_bindings t))\n\
       let g t k = Hashtbl.replace t k 1"
  in
  check_rules "sorted_bindings and point ops are clean" []
    (Rules.det_hashiter ~path:"lib/cache/fixture.ml" good);
  (* the sanctioned wrapper is the one place allowed raw traversal *)
  let wrapper =
    parse ~path:"lib/util/tbl.ml"
      "let sorted_bindings t = Hashtbl.fold (fun k v a -> (k, v) :: a) t []"
  in
  check_rules "lib/util/tbl.ml is exempt" []
    (Rules.det_hashiter ~path:"lib/util/tbl.ml" wrapper)

(* --- ERR-SWALLOW --------------------------------------------------------- *)

let result_index () =
  let index = Rules.Result_index.create () in
  let sg =
    Source.parse_intf_string ~path:"relfile.mli"
      "type t\n\
       val write : t -> slot:int -> (unit, string) result\n\
       val slot_size : t -> int"
  in
  Rules.Result_index.add_signature index ~module_name:"Relfile" sg;
  index

let err_swallow () =
  let index = result_index () in
  let bad =
    parse ~path:"lib/dp/fixture.ml"
      "let f r = ignore (Relfile.write r ~slot:3)"
  in
  check_rules "ignore of result fires" [ "ERR-SWALLOW" ]
    (Rules.err_swallow ~path:"lib/dp/fixture.ml" ~index bad);
  let fw =
    parse ~path:"lib/dp/fixture.ml" "let f () = failwith \"boom\""
  in
  check_rules "bare failwith fires" [ "ERR-SWALLOW" ]
    (Rules.err_swallow ~path:"lib/dp/fixture.ml" ~index fw);
  (* discarding a plain value is fine; so is the same code off-protocol *)
  let good =
    parse ~path:"lib/dp/fixture.ml" "let f r = ignore (Relfile.slot_size r)"
  in
  check_rules "ignore of non-result is clean" []
    (Rules.err_swallow ~path:"lib/dp/fixture.ml" ~index good);
  let off =
    parse ~path:"lib/sort/fixture.ml"
      "let f r = ignore (Relfile.write r ~slot:3)"
  in
  check_rules "non-protocol path is out of scope" []
    (Rules.err_swallow ~path:"lib/sort/fixture.ml" ~index off)

(* --- LOCK-ORDER ---------------------------------------------------------- *)

let lock_order () =
  let bad =
    parse ~path:"lib/dp/fixture.ml"
      "let f t tx =\n\
      \  ignore (Lock.acquire t ~tx ~file:0 (Lock.Record \"k\") Lock.Exclusive);\n\
      \  ignore (Lock.acquire t ~tx ~file:0 Lock.File Lock.Shared)"
  in
  check_rules "record-then-file fires" [ "LOCK-ORDER" ]
    (Rules.lock_order ~path:"lib/dp/fixture.ml" bad);
  let good =
    parse ~path:"lib/dp/fixture.ml"
      "let f t tx =\n\
      \  ignore (Lock.acquire t ~tx ~file:0 Lock.File Lock.Shared);\n\
      \  ignore (Lock.acquire t ~tx ~file:0 (Lock.Generic \"p\") Lock.Shared);\n\
      \  ignore (Lock.acquire t ~tx ~file:0 (Lock.Record \"k\") Lock.Exclusive)"
  in
  check_rules "coarse-to-fine is clean" []
    (Rules.lock_order ~path:"lib/dp/fixture.ml" good);
  let opaque =
    parse ~path:"lib/dp/fixture.ml"
      "let f t tx res = ignore (Lock.acquire t ~tx ~file:0 res Lock.Shared)"
  in
  check_rules "non-literal resource is unprovable" [ "LOCK-ORDER" ]
    (Rules.lock_order ~path:"lib/dp/fixture.ml" opaque);
  (* ordering is per top-level binding, so separate operations don't mix *)
  let split =
    parse ~path:"lib/dp/fixture.ml"
      "let f t tx = ignore (Lock.acquire t ~tx ~file:0 (Lock.Record \"k\") Lock.Shared)\n\
       let g t tx = ignore (Lock.acquire t ~tx ~file:0 Lock.File Lock.Shared)"
  in
  check_rules "separate bindings don't interact" []
    (Rules.lock_order ~path:"lib/dp/fixture.ml" split)

(* --- PROTO-EXHAUST ------------------------------------------------------- *)

let proto_msg =
  "type request = R_ping of int | R_pong\n\
   let tag = function R_ping _ -> \"PING\" | R_pong -> \"PONG\""

let proto_exhaust () =
  let msg = ("lib/dp/dp_msg.ml", parse ~path:"lib/dp/dp_msg.ml" proto_msg) in
  let dispatch_good =
    ( "lib/dp/dp.ml",
      parse ~path:"lib/dp/dp.ml"
        "let dispatch t = function R_ping n -> n + t | R_pong -> t" )
  in
  let requester_good =
    ( "lib/fs/fs.ml",
      parse ~path:"lib/fs/fs.ml"
        "let send () = ignore (R_ping 3); ignore R_pong" )
  in
  check_rules "complete protocol is clean" []
    (Rules.proto_exhaust ~msg ~dispatch:dispatch_good
       ~requesters:[ requester_good ]);
  (* a catch-all hides new constructors and R_pong loses its dispatch *)
  let dispatch_bad =
    ( "lib/dp/dp.ml",
      parse ~path:"lib/dp/dp.ml"
        "let dispatch t = function R_ping n -> n + t | _ -> t" )
  in
  check_rules "catch-all + undispatched constructor fire"
    [ "PROTO-EXHAUST"; "PROTO-EXHAUST" ]
    (Rules.proto_exhaust ~msg ~dispatch:dispatch_bad
       ~requesters:[ requester_good ]);
  (* a constructor nobody sends is dead protocol *)
  let requester_partial =
    ("lib/fs/fs.ml", parse ~path:"lib/fs/fs.ml" "let send () = ignore (R_ping 3)")
  in
  check_rules "requester-less constructor fires" [ "PROTO-EXHAUST" ]
    (Rules.proto_exhaust ~msg ~dispatch:dispatch_good
       ~requesters:[ requester_partial ])

(* --- the call graph ------------------------------------------------------- *)

let callgraph_resolution () =
  let parsed =
    parse_all
      [
        ("lib/core/a.ml", "let h x = x\nlet f x = x + 1");
        ( "lib/core/b.ml",
          "module A = Nsql_core.A\nopen A\nlet f y = y\nlet g y = f (h y)" );
        ("lib/core/c.ml", "module K = Nsql_core.A\nlet use x = K.f x");
        ( "lib/core/d.ml",
          "module Sub = struct let inner x = x end\nlet outer x = Sub.inner x"
        );
      ]
  in
  let g = Callgraph.build parsed in
  (* a unit's own binding shadows the opened unit's same name *)
  Alcotest.(check (option string))
    "own f shadows opened A.f" (Some "B.f")
    (Callgraph.resolve g ~unit_name:"B" [ "f" ]);
  Alcotest.(check (option string))
    "unqualified h falls through to the open" (Some "A.h")
    (Callgraph.resolve g ~unit_name:"B" [ "h" ]);
  Alcotest.(check (list string))
    "edges follow resolution" [ "A.h"; "B.f" ]
    (Callgraph.callees g "B.g");
  (* re-export alias: K.f in c.ml is A.f *)
  Alcotest.(check (list string))
    "alias re-export resolves" [ "A.f" ]
    (Callgraph.callees g "C.use");
  (* nested modules register qualified and resolve from their own unit *)
  Alcotest.(check (list string))
    "same-unit nested module resolves" [ "D.Sub.inner" ]
    (Callgraph.callees g "D.outer")

let callgraph_recursion () =
  let parsed =
    parse_all
      [
        ( "lib/dp/r.ml",
          "let rec even n = if n = 0 then true else odd (n - 1)\n\
           and odd n = if n = 0 then (Sim.tick sim 1; false) else even (n - 1)"
        );
      ]
  in
  let g = Callgraph.build parsed in
  Alcotest.(check (list string))
    "mutual recursion edges" [ "R.odd" ] (Callgraph.callees g "R.even");
  (* the effect fixed point converges through the cycle *)
  let s = Effects.summaries g in
  Alcotest.(check bool) "odd charges locally" true
    (Effects.mem Effects.Charges_clock (Effects.summary s "R.odd"));
  Alcotest.(check bool) "even charges transitively" true
    (Effects.mem Effects.Charges_clock (Effects.summary s "R.even"))

let effects_chain () =
  (* f -> g -> Sim.tick: the summary propagates up a helper chain *)
  let parsed =
    parse_all
      [
        ( "lib/dp/e.ml",
          "let g t = Sim.tick t 1\nlet f t = g t\nlet quiet t = t" );
      ]
  in
  let g = Callgraph.build parsed in
  let s = Effects.summaries g in
  Alcotest.(check bool) "f inherits Charges_clock" true
    (Effects.mem Effects.Charges_clock (Effects.summary s "E.f"));
  Alcotest.(check bool) "unrelated binding stays empty" false
    (Effects.mem Effects.Charges_clock (Effects.summary s "E.quiet"));
  (* Ck_* constructor builds count as checkpoint emission *)
  let parsed2 =
    parse_all
      [ ("lib/dp/e2.ml", "let emit t w = ckpt t [ Ck_unpark { tx = w } ]") ]
  in
  let g2 = Callgraph.build parsed2 in
  let s2 = Effects.summaries g2 in
  Alcotest.(check bool) "Ck_* construct is Emits_ckpt" true
    (Effects.mem Effects.Emits_ckpt (Effects.summary s2 "E2.emit"))

(* --- RES-LEAK ------------------------------------------------------------- *)

(* the per-file shapes the old NOWAIT-LEAK fence covered *)
let res_leak_completion () =
  let path = "lib/fs/fixture.ml" in
  check_rules "ignore of send_nowait fires" [ "RES-LEAK" ]
    (res_leak1 ~path "let f t dp req = ignore (Msg.send_nowait t dp req)");
  check_rules "statement-position send_nowait fires" [ "RES-LEAK" ]
    (res_leak1 ~path "let f t dp req = Msg.send_nowait t dp req; 0");
  check_rules "wildcard binding fires" [ "RES-LEAK" ]
    (res_leak1 ~path "let f t dp req = let _ = Msg.send_nowait t dp req in 0");
  check_rules "unused completion fires" [ "RES-LEAK" ]
    (res_leak1 ~path "let f t dp req = let c = Msg.send_nowait t dp req in 0");
  check_rules "awaited completion is clean" []
    (res_leak1 ~path
       "let f t dp req = let c = Msg.send_nowait t dp req in Msg.await t c");
  (* storing the handle hands responsibility to the holding structure *)
  check_rules "stored handles are clean" []
    (res_leak1 ~path
       "let f t dps reqs = Array.map (fun dp -> Msg.send_nowait t dp reqs) dps\n\
        let g pp t dp req = pp.pp_pending <- Some (Msg.send_nowait t dp req)")

(* the per-file shapes the old SPAN-LEAK fence covered *)
let res_leak_span () =
  let path = "lib/fs/fixture.ml" in
  check_rules "ignore of begin_span fires" [ "RES-LEAK" ]
    (res_leak1 ~path "let f t = ignore (Trace.begin_span t ~cat:\"fs\" \"scan\")");
  check_rules "statement-position begin_span fires" [ "RES-LEAK" ]
    (res_leak1 ~path "let f t = Trace.begin_span t ~cat:\"fs\" \"scan\"; 0");
  check_rules "wildcard span binding fires" [ "RES-LEAK" ]
    (res_leak1 ~path
       "let f t = let _ = Trace.begin_span t ~cat:\"fs\" \"scan\" in 0");
  check_rules "unfinished span fires" [ "RES-LEAK" ]
    (res_leak1 ~path
       "let f t = let sp = Trace.begin_span t ~cat:\"fs\" \"scan\" in 0");
  check_rules "finished span is clean" []
    (res_leak1 ~path
       "let f t = let sp = Trace.begin_span t ~cat:\"fs\" \"scan\" in\n\
        Trace.finish t sp");
  (* the guarded-opener idiom binds a live handle through Some/if *)
  check_rules "conditional span is tracked through Some/if" [ "RES-LEAK" ]
    (res_leak1 ~path
       "let f t =\n\
        \  let sp = if Trace.enabled t then Some (Trace.begin_span t \"s\") \
        else None in\n\
        \  0");
  check_rules "stored span handles are clean" []
    (res_leak1 ~path
       "let f sc t = sc.sc_span <- Trace.begin_span t ~cat:\"fs\" \"scan\"")

(* the PR-10 multi-queue disk handles: a submission that provably never
   reaches [Disk.complete] is a leaked transfer — it was counted and its
   span opened, but its latency is never charged to anyone *)
let res_leak_diskio () =
  let path = "lib/cache/fixture.ml" in
  check_rules "ignored disk submission fires" [ "RES-LEAK" ]
    (res_leak1 ~path
       "let f d = ignore (Disk.submit_read d ~first:0 ~count:7)");
  check_rules "statement-position submission fires" [ "RES-LEAK" ]
    (res_leak1 ~path "let f d buf = Disk.submit_write d ~first:0 buf; 0");
  check_rules "unused io binding fires" [ "RES-LEAK" ]
    (res_leak1 ~path
       "let f d = let io = Disk.submit_read d ~first:0 ~count:7 in 0");
  check_rules "completed io is clean" []
    (res_leak1 ~path
       "let f d = let io = Disk.submit_read d ~first:0 ~count:7 in\n\
        Disk.complete d io");
  (* the read_range pump: pushing the handle into a queue transfers
     ownership to the drain loop *)
  check_rules "queued io handle is clean" []
    (res_leak1 ~path
       "let f d q = Queue.push (0, Disk.submit_read d ~first:0 ~count:7) q")

let res_leak_deferral () =
  let path = "lib/dp/fixture.ml" in
  check_rules "unresolved deferral fires" [ "RES-LEAK" ]
    (res_leak1 ~path "let f t = let d = Msg.defer t in 0");
  check_rules "resolved deferral is clean" []
    (res_leak1 ~path
       "let f t reply = let d = Msg.defer t in Msg.resolve t d reply");
  (* a deferral parked in a waiter record is an ownership transfer *)
  check_rules "parked deferral is clean" []
    (res_leak1 ~path
       "let park t w = let d = Msg.defer t in w.w_deferral <- d")

(* the cross-function blind spot the old per-file fences could not see:
   every use of the handle goes to helpers whose analyzed bodies provably
   never reach the close *)
let res_leak_cross_function () =
  let helper =
    ( "lib/fs/helper.ml",
      "let record t c = ignore (tag t c)\nlet drain t c = Msg.await t c" )
  in
  let leak =
    ( "lib/fs/fixture.ml",
      "module Helper = Nsql_fs.Helper\n\
       let f t dp req =\n\
       \  let c = Msg.send_nowait t dp req in\n\
       \  Helper.record t c" )
  in
  check_rules "handle lost in a non-awaiting helper fires" [ "RES-LEAK" ]
    (res_leak_on [ helper; leak ] "lib/fs/fixture.ml");
  let ok =
    ( "lib/fs/fixture.ml",
      "module Helper = Nsql_fs.Helper\n\
       let f t dp req =\n\
       \  let c = Msg.send_nowait t dp req in\n\
       \  Helper.drain t c" )
  in
  check_rules "handle awaited through a helper is clean" []
    (res_leak_on [ helper; ok ] "lib/fs/fixture.ml");
  (* an unresolvable callee might close: stay quiet *)
  let unknown =
    ( "lib/fs/fixture.ml",
      "let f t dp req = let c = Msg.send_nowait t dp req in mystery t c" )
  in
  check_rules "unknown callee is trusted" []
    (res_leak_on [ unknown ] "lib/fs/fixture.ml")

(* a close reachable only on the fall-through path leaks under a raise *)
let res_leak_trailing_close () =
  let path = "lib/fs/fixture.ml" in
  check_rules "unprotected trailing close fires" [ "RES-LEAK" ]
    (res_leak1 ~path
       "let f t file =\n\
        \  let sc = open_scan t file in\n\
        \  let rec go n = match scan_next t sc with None -> n | Some _ -> go \
        (n + 1) in\n\
        \  let res = go 0 in\n\
        \  close_scan t sc;\n\
        \  res");
  check_rules "Fun.protect close is clean" []
    (res_leak1 ~path
       "let f t file =\n\
        \  let sc = open_scan t file in\n\
        \  let rec go n = match scan_next t sc with None -> n | Some _ -> go \
        (n + 1) in\n\
        \  Fun.protect ~finally:(fun () -> close_scan t sc) (fun () -> go 0)");
  (* nothing risky happens between open and close: no finding *)
  check_rules "immediate close is clean" []
    (res_leak1 ~path
       "let f t file = let sc = open_scan t file in close_scan t sc; 0")

(* the streamed-cursor shape: [Fs.index_scan] hands back a (next, close)
   pair through [let*] over result — an unrecognized opener, a tuple
   pattern and a letop at once, so the handle analysis above never sees
   it (the blind spot that let the executor's index path leak) *)
let res_leak_stream () =
  let path = "lib/fs/fixture.ml" in
  check_rules "trailing stream close fires" [ "RES-LEAK" ]
    (res_leak1 ~path
       "let f t file =\n\
        \  let* next, close = index_scan t file in\n\
        \  let rec go n = match next () with None -> n | Some _ -> go (n + \
        1) in\n\
        \  let res = go 0 in\n\
        \  close ();\n\
        \  res");
  check_rules "never-closed stream fires" [ "RES-LEAK" ]
    (res_leak1 ~path
       "let f t file =\n\
        \  let* next, close = index_scan t file in\n\
        \  let rec go n = match next () with None -> n | Some _ -> go (n + \
        1) in\n\
        \  go 0");
  check_rules "plain let binding is covered too" [ "RES-LEAK" ]
    (res_leak1 ~path
       "let f t file =\n\
        \  let next, close = index_scan t file in\n\
        \  let rec go n = match next () with None -> n | Some _ -> go (n + \
        1) in\n\
        \  let res = go 0 in\n\
        \  close ();\n\
        \  res");
  check_rules "opener behind a wrapper thunk is still seen" [ "RES-LEAK" ]
    (res_leak1 ~path
       "let f t stp file =\n\
        \  let* next, close = stp.stp (fun () -> index_scan t file) in\n\
        \  let rec go n = match next () with None -> n | Some _ -> go (n + \
        1) in\n\
        \  let res = go 0 in\n\
        \  close ();\n\
        \  res");
  check_rules "Fun.protect ~finally:close is clean" []
    (res_leak1 ~path
       "let f t file =\n\
        \  let* next, close = index_scan t file in\n\
        \  let rec go n = match next () with None -> n | Some _ -> go (n + \
        1) in\n\
        \  Fun.protect ~finally:close (fun () -> go 0)");
  check_rules "close inside the finally thunk is clean" []
    (res_leak1 ~path
       "let f t file =\n\
        \  let* next, close = index_scan t file in\n\
        \  let rec go n = match next () with None -> n | Some _ -> go (n + \
        1) in\n\
        \  Fun.protect ~finally:(fun () -> close ()) (fun () -> go 0)")

(* --- the DP wait-queue pattern stays lintable ---------------------------- *)

(* The lock-wait path withholds replies (a deferral parked in a waiter
   record) and the multi-terminal requester keeps one completion per
   terminal until [await_any] resolves it. Both are deliberate ownership
   transfers, not leaks, and the parked dispatch keeps explicit arms — so
   the whole pattern must pass RES-LEAK and PROTO-EXHAUST unchanged. *)
let wait_queue_pattern () =
  check_rules "completion parked in terminal state is clean" []
    (res_leak1 ~path:"lib/workload/fixture.ml"
       "let start t term dp req = term.t_pending <- Some (Msg.send_nowait t \
        dp req)\n\
        let drive t terms =\n\
       \  let cs = List.filter_map (fun term -> term.t_pending) terms in\n\
       \  Msg.await_any t cs");
  let msg = ("lib/dp/dp_msg.ml", parse ~path:"lib/dp/dp_msg.ml" proto_msg) in
  (* the DP either answers now or parks the deferral — every constructor
     still has an explicit arm, and the parking arm is not a catch-all *)
  let parking_dispatch =
    ( "lib/dp/dp.ml",
      parse ~path:"lib/dp/dp.ml"
        "let dispatch t = function\n\
        \  | R_ping n -> (if locked t n then park t n else reply t n); t\n\
        \  | R_pong -> t" )
  in
  let requester_side =
    ( "lib/fs/fs.ml",
      parse ~path:"lib/fs/fs.ml" "let send () = ignore (R_ping 3); ignore R_pong"
    )
  in
  check_rules "parking dispatch is PROTO-EXHAUST clean" []
    (Rules.proto_exhaust ~msg ~dispatch:parking_dispatch
       ~requesters:[ requester_side ])

(* --- CKPT-COMPLETE -------------------------------------------------------- *)

let ckpt_complete () =
  (* clause 1: a dispatch-reachable control mutation whose call subtree
     never emits a checkpoint item *)
  let bad =
    ctx_of
      [
        ( "lib/dp/dpfix.ml",
          "let mutate t scb = Hashtbl.replace t.scbs scb 1\n\
           let dispatch t req = mutate t req\n\
           let handler t payload = dispatch t payload" );
      ]
  in
  check_rules "uncheckpointed control mutation fires" [ "CKPT-COMPLETE" ]
    (Rules.ckpt_complete ~ctx:bad ());
  (* the emit may live anywhere in the mutation's subtree *)
  let good =
    ctx_of
      [
        ( "lib/dp/dpfix.ml",
          "let ckpt_emit t items = Msg.checkpoint t items\n\
           let mutate t scb = Hashtbl.replace t.scbs scb 1; ckpt_emit t []\n\
           let dispatch t req = mutate t req\n\
           let handler t payload = dispatch t payload" );
      ]
  in
  check_rules "transitively checkpointed mutation is clean" []
    (Rules.ckpt_complete ~ctx:good ());
  (* clause 2: a handler reaching heap mutation but no checkpoint emit *)
  let bad2 =
    ctx_of
      [
        ( "lib/dp/dpfix2.ml",
          "let apply t row = Btree.insert t row\n\
           let handler t payload = apply t payload" );
      ]
  in
  check_rules "heap mutation without write intent fires" [ "CKPT-COMPLETE" ]
    (Rules.ckpt_complete ~ctx:bad2 ());
  let good2 =
    ctx_of
      [
        ( "lib/dp/dpfix2.ml",
          "let apply t row = Msg.checkpoint t [ row ]; Btree.insert t row\n\
           let handler t payload = apply t payload" );
      ]
  in
  check_rules "checkpointed heap mutation is clean" []
    (Rules.ckpt_complete ~ctx:good2 ());
  (* takeover/crash entry points rebuild state by design: only functions
     reachable from a handler owe clause 1 *)
  let offline =
    ctx_of
      [
        ( "lib/dp/dpfix3.ml",
          "let takeover t = Hashtbl.reset t.scbs\n\
           let handler t payload = payload" );
      ]
  in
  check_rules "recovery paths are exempt" []
    (Rules.ckpt_complete ~ctx:offline ())

(* --- CLOCK-CHARGE --------------------------------------------------------- *)

let clock_charge () =
  let bad =
    ctx_of
      [
        ( "lib/dp/cfix.ml",
          "let slow t = Disk.read t 0\nlet handler t payload = slow t" );
      ]
  in
  check_rules "free dispatch-path I/O fires" [ "CLOCK-CHARGE" ]
    (Rules.clock_charge ~ctx:bad ~roots:[ "Cfix.handler" ] ());
  let good =
    ctx_of
      [
        ( "lib/dp/cfix.ml",
          "let slow t = let b = Disk.read t 0 in Sim.tick t 1; b\n\
           let handler t payload = slow t" );
      ]
  in
  check_rules "charged I/O is clean" []
    (Rules.clock_charge ~ctx:good ~roots:[ "Cfix.handler" ] ());
  (* only dispatch-reachable functions owe the charge *)
  let offline =
    ctx_of
      [
        ( "lib/dp/cfix.ml",
          "let offline t = Disk.read t 0\nlet handler t payload = payload" );
      ]
  in
  check_rules "unreachable I/O is out of scope" []
    (Rules.clock_charge ~ctx:offline ~roots:[ "Cfix.handler" ] ())

(* --- PARK-SAFE ------------------------------------------------------------ *)

let park_safe () =
  let base parks dispatch_read =
    ctx_of
      [
        ( "lib/dp/pfix.ml",
          Printf.sprintf
            "let park_tx req = match req with %s | R_scan _ -> None\n\
             let dispatch t req = match req with R_read r -> %s | R_scan s \
             -> open_scan t s | R_insert r -> apply t r"
            parks dispatch_read );
      ]
  in
  let ok = base "R_read { tx } -> Some tx | R_insert _ -> None" "read t r" in
  check_rules "whitelist in sync is clean" []
    (Rules.park_safe ~whitelist:[ "R_read" ] ~ctx:ok ());
  (* a new op starts parking without being audited *)
  let drifted =
    base "R_read { tx } -> Some tx | R_insert { tx } -> Some tx" "read t r"
  in
  check_rules "unaudited parking op fires" [ "PARK-SAFE" ]
    (Rules.park_safe ~whitelist:[ "R_read" ] ~ctx:drifted ());
  (* a declared op silently stops parking *)
  let stale = base "R_read { tx } -> Some tx | R_insert _ -> None" "read t r" in
  check_rules "stale whitelist entry fires" [ "PARK-SAFE" ]
    (Rules.park_safe ~whitelist:[ "R_read"; "R_insert" ] ~ctx:stale ());
  (* a parked op whose dispatch arm allocates scan state is re-dispatch
     unsafe even if whitelisted *)
  let scans =
    base "R_read { tx } -> Some tx | R_insert _ -> None" "open_scan t r"
  in
  check_rules "whitelisted arm opening a scan fires" [ "PARK-SAFE" ]
    (Rules.park_safe ~whitelist:[ "R_read" ] ~ctx:scans ())

(* --- rule filtering -------------------------------------------------------- *)

let rule_filtering () =
  let path = "lib/sql/fixture.ml" in
  let structure =
    parse ~path
      "let x () = Random.int 5\n\
       let f t = Hashtbl.iter (fun _ v -> print_int v) t"
  in
  let ctx = Rules.build_ctx [ (path, structure) ] in
  let index = Rules.Result_index.create () in
  check_rules "all per-file rules run by default"
    [ "DET-RANDOM"; "DET-HASHITER" ]
    (Rules.per_file ~path ~index ~ctx ~enabled:(fun _ -> true) structure);
  check_rules "disabled rules stay silent" [ "DET-RANDOM" ]
    (Rules.per_file ~path ~index ~ctx
       ~enabled:(fun r -> String.equal r "DET-RANDOM")
       structure)

(* --- allowlist ----------------------------------------------------------- *)

let with_allow_file contents f =
  (* cwd during runtest is inside _build, so this stays in the sandbox *)
  let path = "test_lint_allow.sexp" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let allowlist () =
  let d =
    Diag.v ~rule:"DET-HASHITER" ~file:"lib/lock/lock.ml" ~line:85 ~col:6
      "unordered traversal"
  in
  with_allow_file
    "((rule DET-HASHITER) (file lib/lock/lock.ml) (line 85) (note \"audited\"))\n\
     ((rule SIM-CLOCK) (file lib/tmf/tmf.ml) (note \"never matches\"))"
    (fun path ->
      match Allow.load path with
      | Error msg -> Alcotest.fail msg
      | Ok entries ->
          let kept, suppressed = Allow.apply entries [ d ] in
          Alcotest.(check int) "finding suppressed" 0 (List.length kept);
          Alcotest.(check int) "suppression counted" 1 suppressed;
          Alcotest.(check (list string)) "unused entry is stale"
            [ "SIM-CLOCK" ]
            (List.map (fun e -> e.Allow.a_rule) (Allow.stale entries)))

let allowlist_line_mismatch () =
  let d =
    Diag.v ~rule:"DET-HASHITER" ~file:"lib/lock/lock.ml" ~line:99 ~col:6 "x"
  in
  with_allow_file
    "((rule DET-HASHITER) (file lib/lock/lock.ml) (line 85) (note \"pinned\"))"
    (fun path ->
      match Allow.load path with
      | Error msg -> Alcotest.fail msg
      | Ok entries ->
          let kept, suppressed = Allow.apply entries [ d ] in
          Alcotest.(check int) "wrong line is not suppressed" 1
            (List.length kept);
          Alcotest.(check int) "nothing counted" 0 suppressed)

(* --- diagnostics format --------------------------------------------------- *)

let diag_format () =
  let d = Diag.v ~rule:"SIM-CLOCK" ~file:"lib/a.ml" ~line:3 ~col:7 "msg" in
  Alcotest.(check string) "grep-able format" "lib/a.ml:3:7 [SIM-CLOCK] msg"
    (Diag.to_string d)

(* --- the repository itself lints clean ------------------------------------ *)

let repo_root () =
  (* runtest executes inside _build; walk up to the checkout, recognised
     by the allowlist file (dune does not copy lint/ into _build) *)
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "lint/allow.sexp") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent
  in
  up (Sys.getcwd ())

let repo_is_clean () =
  match repo_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let report =
        Engine.run
          ~allow_file:(Some (Filename.concat root "lint/allow.sexp"))
          ~roots:[ Filename.concat root "lib" ]
          ()
      in
      List.iter
        (fun d -> Printf.printf "unsuppressed: %s\n" (Diag.to_string d))
        report.Engine.diags;
      Alcotest.(check int) "no unsuppressed findings in lib/" 0
        (List.length report.Engine.diags);
      Alcotest.(check int) "no stale allow entries" 0
        (List.length report.Engine.stale_allows);
      Alcotest.(check bool) "scanned a plausible number of files" true
        (report.Engine.files_scanned > 20)

(* running a rule subset must not report other rules' entries as stale *)
let repo_rule_subset () =
  match repo_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let report =
        Engine.run
          ~allow_file:(Some (Filename.concat root "lint/allow.sexp"))
          ~rules:(Some [ "RES-LEAK"; "CKPT-COMPLETE" ])
          ~roots:[ Filename.concat root "lib" ]
          ()
      in
      Alcotest.(check int) "subset run is clean" 0
        (List.length report.Engine.diags);
      Alcotest.(check int) "entries for disabled rules are not stale" 0
        (List.length report.Engine.stale_allows)

let suite =
  [
    Alcotest.test_case "DET-RANDOM fixtures" `Quick det_random;
    Alcotest.test_case "SIM-CLOCK fixtures" `Quick sim_clock;
    Alcotest.test_case "MON-PURE fixtures" `Quick mon_pure;
    Alcotest.test_case "DET-HASHITER fixtures" `Quick det_hashiter;
    Alcotest.test_case "ERR-SWALLOW fixtures" `Quick err_swallow;
    Alcotest.test_case "LOCK-ORDER fixtures" `Quick lock_order;
    Alcotest.test_case "PROTO-EXHAUST fixtures" `Quick proto_exhaust;
    Alcotest.test_case "call graph resolution" `Quick callgraph_resolution;
    Alcotest.test_case "call graph recursion + fixed point" `Quick
      callgraph_recursion;
    Alcotest.test_case "effect summary chains" `Quick effects_chain;
    Alcotest.test_case "RES-LEAK completion fixtures" `Quick
      res_leak_completion;
    Alcotest.test_case "RES-LEAK span fixtures" `Quick res_leak_span;
    Alcotest.test_case "RES-LEAK deferral fixtures" `Quick res_leak_deferral;
    Alcotest.test_case "RES-LEAK disk I/O fixtures" `Quick res_leak_diskio;
    Alcotest.test_case "RES-LEAK cross-function blind spot" `Quick
      res_leak_cross_function;
    Alcotest.test_case "RES-LEAK trailing close" `Quick
      res_leak_trailing_close;
    Alcotest.test_case "RES-LEAK index-scan streams" `Quick res_leak_stream;
    Alcotest.test_case "wait-queue pattern lints clean" `Quick
      wait_queue_pattern;
    Alcotest.test_case "CKPT-COMPLETE fixtures" `Quick ckpt_complete;
    Alcotest.test_case "CLOCK-CHARGE fixtures" `Quick clock_charge;
    Alcotest.test_case "PARK-SAFE fixtures" `Quick park_safe;
    Alcotest.test_case "rule filtering" `Quick rule_filtering;
    Alcotest.test_case "allowlist suppresses and reports stale" `Quick allowlist;
    Alcotest.test_case "allowlist line pinning" `Quick allowlist_line_mismatch;
    Alcotest.test_case "diagnostic format" `Quick diag_format;
    Alcotest.test_case "whole repo lints clean" `Quick repo_is_clean;
    Alcotest.test_case "rule subset keeps allowlist quiet" `Quick
      repo_rule_subset;
  ]

(* Per-rule fixtures for nsql-lint: each rule gets a known-bad source
   that must fire and a known-good source that must stay clean, plus
   allowlist behaviour and a whole-repo "lib/ lints clean" check — the
   same invariant CI enforces, kept here so `dune runtest` catches a
   violation before the lint job does. *)

module Diag = Nsql_lint_lib.Diag
module Rules = Nsql_lint_lib.Rules
module Source = Nsql_lint_lib.Source
module Allow = Nsql_lint_lib.Allow
module Engine = Nsql_lint_lib.Engine

let parse ~path src = Source.parse_string ~path src

let rules_of diags = List.map (fun d -> d.Diag.rule) diags

let check_rules name expected diags =
  Alcotest.(check (list string)) name expected (rules_of diags)

(* --- DET-RANDOM ---------------------------------------------------------- *)

let det_random () =
  let bad = parse ~path:"lib/sql/fixture.ml" "let x () = Random.int 5" in
  check_rules "Random.int fires" [ "DET-RANDOM" ]
    (Rules.det_random ~path:"lib/sql/fixture.ml" bad);
  let qualified =
    parse ~path:"lib/sql/fixture.ml" "let x () = Stdlib.Random.bits ()"
  in
  check_rules "Stdlib.Random fires" [ "DET-RANDOM" ]
    (Rules.det_random ~path:"lib/sql/fixture.ml" qualified);
  (* the simulation layer owns the seeded generator *)
  let sim = parse ~path:"lib/sim/fixture.ml" "let x () = Random.int 5" in
  check_rules "lib/sim is exempt" [] (Rules.det_random ~path:"lib/sim/fixture.ml" sim);
  let good = parse ~path:"lib/sql/fixture.ml" "let x p = Prng.int p 5" in
  check_rules "seeded Prng is clean" []
    (Rules.det_random ~path:"lib/sql/fixture.ml" good)

(* --- SIM-CLOCK ----------------------------------------------------------- *)

let sim_clock () =
  let bad =
    parse ~path:"lib/tmf/fixture.ml" "let now () = Unix.gettimeofday ()"
  in
  check_rules "Unix.gettimeofday fires" [ "SIM-CLOCK" ]
    (Rules.sim_clock ~path:"lib/tmf/fixture.ml" bad);
  let sys = parse ~path:"lib/tmf/fixture.ml" "let now () = Sys.time ()" in
  check_rules "Sys.time fires" [ "SIM-CLOCK" ]
    (Rules.sim_clock ~path:"lib/tmf/fixture.ml" sys);
  let good = parse ~path:"lib/tmf/fixture.ml" "let now sim = Sim.now sim" in
  check_rules "Sim.now is clean" []
    (Rules.sim_clock ~path:"lib/tmf/fixture.ml" good)

(* --- DET-HASHITER -------------------------------------------------------- *)

let det_hashiter () =
  let bad =
    parse ~path:"lib/cache/fixture.ml"
      "let f t = Hashtbl.iter (fun _ v -> print_int v) t"
  in
  check_rules "Hashtbl.iter fires" [ "DET-HASHITER" ]
    (Rules.det_hashiter ~path:"lib/cache/fixture.ml" bad);
  let fold =
    parse ~path:"lib/cache/fixture.ml"
      "let f t = Hashtbl.fold (fun _ v acc -> v + acc) t 0"
  in
  check_rules "Hashtbl.fold fires" [ "DET-HASHITER" ]
    (Rules.det_hashiter ~path:"lib/cache/fixture.ml" fold);
  let good =
    parse ~path:"lib/cache/fixture.ml"
      "let f t = List.iter print_int (List.map snd (Nsql_util.Tbl.sorted_bindings t))\n\
       let g t k = Hashtbl.replace t k 1"
  in
  check_rules "sorted_bindings and point ops are clean" []
    (Rules.det_hashiter ~path:"lib/cache/fixture.ml" good);
  (* the sanctioned wrapper is the one place allowed raw traversal *)
  let wrapper =
    parse ~path:"lib/util/tbl.ml"
      "let sorted_bindings t = Hashtbl.fold (fun k v a -> (k, v) :: a) t []"
  in
  check_rules "lib/util/tbl.ml is exempt" []
    (Rules.det_hashiter ~path:"lib/util/tbl.ml" wrapper)

(* --- ERR-SWALLOW --------------------------------------------------------- *)

let result_index () =
  let index = Rules.Result_index.create () in
  let sg =
    Source.parse_intf_string ~path:"relfile.mli"
      "type t\n\
       val write : t -> slot:int -> (unit, string) result\n\
       val slot_size : t -> int"
  in
  Rules.Result_index.add_signature index ~module_name:"Relfile" sg;
  index

let err_swallow () =
  let index = result_index () in
  let bad =
    parse ~path:"lib/dp/fixture.ml"
      "let f r = ignore (Relfile.write r ~slot:3)"
  in
  check_rules "ignore of result fires" [ "ERR-SWALLOW" ]
    (Rules.err_swallow ~path:"lib/dp/fixture.ml" ~index bad);
  let fw =
    parse ~path:"lib/dp/fixture.ml" "let f () = failwith \"boom\""
  in
  check_rules "bare failwith fires" [ "ERR-SWALLOW" ]
    (Rules.err_swallow ~path:"lib/dp/fixture.ml" ~index fw);
  (* discarding a plain value is fine; so is the same code off-protocol *)
  let good =
    parse ~path:"lib/dp/fixture.ml" "let f r = ignore (Relfile.slot_size r)"
  in
  check_rules "ignore of non-result is clean" []
    (Rules.err_swallow ~path:"lib/dp/fixture.ml" ~index good);
  let off =
    parse ~path:"lib/sort/fixture.ml"
      "let f r = ignore (Relfile.write r ~slot:3)"
  in
  check_rules "non-protocol path is out of scope" []
    (Rules.err_swallow ~path:"lib/sort/fixture.ml" ~index off)

(* --- LOCK-ORDER ---------------------------------------------------------- *)

let lock_order () =
  let bad =
    parse ~path:"lib/dp/fixture.ml"
      "let f t tx =\n\
      \  ignore (Lock.acquire t ~tx ~file:0 (Lock.Record \"k\") Lock.Exclusive);\n\
      \  ignore (Lock.acquire t ~tx ~file:0 Lock.File Lock.Shared)"
  in
  check_rules "record-then-file fires" [ "LOCK-ORDER" ]
    (Rules.lock_order ~path:"lib/dp/fixture.ml" bad);
  let good =
    parse ~path:"lib/dp/fixture.ml"
      "let f t tx =\n\
      \  ignore (Lock.acquire t ~tx ~file:0 Lock.File Lock.Shared);\n\
      \  ignore (Lock.acquire t ~tx ~file:0 (Lock.Generic \"p\") Lock.Shared);\n\
      \  ignore (Lock.acquire t ~tx ~file:0 (Lock.Record \"k\") Lock.Exclusive)"
  in
  check_rules "coarse-to-fine is clean" []
    (Rules.lock_order ~path:"lib/dp/fixture.ml" good);
  let opaque =
    parse ~path:"lib/dp/fixture.ml"
      "let f t tx res = ignore (Lock.acquire t ~tx ~file:0 res Lock.Shared)"
  in
  check_rules "non-literal resource is unprovable" [ "LOCK-ORDER" ]
    (Rules.lock_order ~path:"lib/dp/fixture.ml" opaque);
  (* ordering is per top-level binding, so separate operations don't mix *)
  let split =
    parse ~path:"lib/dp/fixture.ml"
      "let f t tx = ignore (Lock.acquire t ~tx ~file:0 (Lock.Record \"k\") Lock.Shared)\n\
       let g t tx = ignore (Lock.acquire t ~tx ~file:0 Lock.File Lock.Shared)"
  in
  check_rules "separate bindings don't interact" []
    (Rules.lock_order ~path:"lib/dp/fixture.ml" split)

(* --- PROTO-EXHAUST ------------------------------------------------------- *)

let proto_msg =
  "type request = R_ping of int | R_pong\n\
   let tag = function R_ping _ -> \"PING\" | R_pong -> \"PONG\""

let proto_exhaust () =
  let msg = ("lib/dp/dp_msg.ml", parse ~path:"lib/dp/dp_msg.ml" proto_msg) in
  let dispatch_good =
    ( "lib/dp/dp.ml",
      parse ~path:"lib/dp/dp.ml"
        "let dispatch t = function R_ping n -> n + t | R_pong -> t" )
  in
  let requester_good =
    ( "lib/fs/fs.ml",
      parse ~path:"lib/fs/fs.ml"
        "let send () = ignore (R_ping 3); ignore R_pong" )
  in
  check_rules "complete protocol is clean" []
    (Rules.proto_exhaust ~msg ~dispatch:dispatch_good
       ~requesters:[ requester_good ]);
  (* a catch-all hides new constructors and R_pong loses its dispatch *)
  let dispatch_bad =
    ( "lib/dp/dp.ml",
      parse ~path:"lib/dp/dp.ml"
        "let dispatch t = function R_ping n -> n + t | _ -> t" )
  in
  check_rules "catch-all + undispatched constructor fire"
    [ "PROTO-EXHAUST"; "PROTO-EXHAUST" ]
    (Rules.proto_exhaust ~msg ~dispatch:dispatch_bad
       ~requesters:[ requester_good ]);
  (* a constructor nobody sends is dead protocol *)
  let requester_partial =
    ("lib/fs/fs.ml", parse ~path:"lib/fs/fs.ml" "let send () = ignore (R_ping 3)")
  in
  check_rules "requester-less constructor fires" [ "PROTO-EXHAUST" ]
    (Rules.proto_exhaust ~msg ~dispatch:dispatch_good
       ~requesters:[ requester_partial ])

(* --- NOWAIT-LEAK --------------------------------------------------------- *)

let nowait_leak () =
  let ignored =
    parse ~path:"lib/fs/fixture.ml"
      "let f t dp req = ignore (Msg.send_nowait t dp req)"
  in
  check_rules "ignore of send_nowait fires" [ "NOWAIT-LEAK" ]
    (Rules.nowait_leak ~path:"lib/fs/fixture.ml" ignored);
  let stmt =
    parse ~path:"lib/fs/fixture.ml"
      "let f t dp req = Msg.send_nowait t dp req; 0"
  in
  check_rules "statement-position send_nowait fires" [ "NOWAIT-LEAK" ]
    (Rules.nowait_leak ~path:"lib/fs/fixture.ml" stmt);
  let wildcard =
    parse ~path:"lib/fs/fixture.ml"
      "let f t dp req = let _ = Msg.send_nowait t dp req in 0"
  in
  check_rules "wildcard binding fires" [ "NOWAIT-LEAK" ]
    (Rules.nowait_leak ~path:"lib/fs/fixture.ml" wildcard);
  let unused =
    parse ~path:"lib/fs/fixture.ml"
      "let f t dp req = let c = Msg.send_nowait t dp req in 0"
  in
  check_rules "unused completion fires" [ "NOWAIT-LEAK" ]
    (Rules.nowait_leak ~path:"lib/fs/fixture.ml" unused);
  let awaited =
    parse ~path:"lib/fs/fixture.ml"
      "let f t dp req = let c = Msg.send_nowait t dp req in Msg.await t c"
  in
  check_rules "awaited completion is clean" []
    (Rules.nowait_leak ~path:"lib/fs/fixture.ml" awaited);
  (* storing the handle hands responsibility to the holding structure *)
  let stored =
    parse ~path:"lib/fs/fixture.ml"
      "let f t dps reqs = Array.map (fun dp -> Msg.send_nowait t dp reqs) dps\n\
       let g pp t dp req = pp.pp_pending <- Some (Msg.send_nowait t dp req)"
  in
  check_rules "stored handles are clean" []
    (Rules.nowait_leak ~path:"lib/fs/fixture.ml" stored)

(* --- the DP wait-queue pattern stays lintable ---------------------------- *)

(* The lock-wait path withholds replies (a deferral parked in a waiter
   record) and the multi-terminal requester keeps one completion per
   terminal until [await_any] resolves it. Both are deliberate ownership
   transfers, not leaks, and the parked dispatch keeps explicit arms — so
   the whole pattern must pass NOWAIT-LEAK and PROTO-EXHAUST unchanged. *)
let wait_queue_pattern () =
  let requester =
    parse ~path:"lib/workload/fixture.ml"
      "let start t term dp req = term.t_pending <- Some (Msg.send_nowait t \
       dp req)\n\
       let drive t terms =\n\
      \  let cs = List.filter_map (fun term -> term.t_pending) terms in\n\
      \  Msg.await_any t cs"
  in
  check_rules "completion parked in terminal state is clean" []
    (Rules.nowait_leak ~path:"lib/workload/fixture.ml" requester);
  let msg = ("lib/dp/dp_msg.ml", parse ~path:"lib/dp/dp_msg.ml" proto_msg) in
  (* the DP either answers now or parks the deferral — every constructor
     still has an explicit arm, and the parking arm is not a catch-all *)
  let parking_dispatch =
    ( "lib/dp/dp.ml",
      parse ~path:"lib/dp/dp.ml"
        "let dispatch t = function\n\
        \  | R_ping n -> (if locked t n then park t n else reply t n); t\n\
        \  | R_pong -> t" )
  in
  let requester_side =
    ( "lib/fs/fs.ml",
      parse ~path:"lib/fs/fs.ml" "let send () = ignore (R_ping 3); ignore R_pong"
    )
  in
  check_rules "parking dispatch is PROTO-EXHAUST clean" []
    (Rules.proto_exhaust ~msg ~dispatch:parking_dispatch
       ~requesters:[ requester_side ])

(* --- SPAN-LEAK ----------------------------------------------------------- *)

let span_leak () =
  let ignored =
    parse ~path:"lib/fs/fixture.ml"
      "let f t = ignore (Trace.begin_span t ~cat:\"fs\" \"scan\")"
  in
  check_rules "ignore of begin_span fires" [ "SPAN-LEAK" ]
    (Rules.span_leak ~path:"lib/fs/fixture.ml" ignored);
  let stmt =
    parse ~path:"lib/fs/fixture.ml"
      "let f t = Trace.begin_span t ~cat:\"fs\" \"scan\"; 0"
  in
  check_rules "statement-position begin_span fires" [ "SPAN-LEAK" ]
    (Rules.span_leak ~path:"lib/fs/fixture.ml" stmt);
  let wildcard =
    parse ~path:"lib/fs/fixture.ml"
      "let f t = let _ = Trace.begin_span t ~cat:\"fs\" \"scan\" in 0"
  in
  check_rules "wildcard span binding fires" [ "SPAN-LEAK" ]
    (Rules.span_leak ~path:"lib/fs/fixture.ml" wildcard);
  let unused =
    parse ~path:"lib/fs/fixture.ml"
      "let f t = let sp = Trace.begin_span t ~cat:\"fs\" \"scan\" in 0"
  in
  check_rules "unfinished span fires" [ "SPAN-LEAK" ]
    (Rules.span_leak ~path:"lib/fs/fixture.ml" unused);
  let finished =
    parse ~path:"lib/fs/fixture.ml"
      "let f t = let sp = Trace.begin_span t ~cat:\"fs\" \"scan\" in\n\
       Trace.finish t sp"
  in
  check_rules "finished span is clean" []
    (Rules.span_leak ~path:"lib/fs/fixture.ml" finished);
  (* storing the handle hands responsibility to the holding structure *)
  let stored =
    parse ~path:"lib/fs/fixture.ml"
      "let f sc t = sc.sc_span <- Trace.begin_span t ~cat:\"fs\" \"scan\""
  in
  check_rules "stored span handles are clean" []
    (Rules.span_leak ~path:"lib/fs/fixture.ml" stored)

(* --- allowlist ----------------------------------------------------------- *)

let with_allow_file contents f =
  (* cwd during runtest is inside _build, so this stays in the sandbox *)
  let path = "test_lint_allow.sexp" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let allowlist () =
  let d =
    Diag.v ~rule:"DET-HASHITER" ~file:"lib/lock/lock.ml" ~line:85 ~col:6
      "unordered traversal"
  in
  with_allow_file
    "((rule DET-HASHITER) (file lib/lock/lock.ml) (line 85) (note \"audited\"))\n\
     ((rule SIM-CLOCK) (file lib/tmf/tmf.ml) (note \"never matches\"))"
    (fun path ->
      match Allow.load path with
      | Error msg -> Alcotest.fail msg
      | Ok entries ->
          let kept, suppressed = Allow.apply entries [ d ] in
          Alcotest.(check int) "finding suppressed" 0 (List.length kept);
          Alcotest.(check int) "suppression counted" 1 suppressed;
          Alcotest.(check (list string)) "unused entry is stale"
            [ "SIM-CLOCK" ]
            (List.map (fun e -> e.Allow.a_rule) (Allow.stale entries)))

let allowlist_line_mismatch () =
  let d =
    Diag.v ~rule:"DET-HASHITER" ~file:"lib/lock/lock.ml" ~line:99 ~col:6 "x"
  in
  with_allow_file
    "((rule DET-HASHITER) (file lib/lock/lock.ml) (line 85) (note \"pinned\"))"
    (fun path ->
      match Allow.load path with
      | Error msg -> Alcotest.fail msg
      | Ok entries ->
          let kept, suppressed = Allow.apply entries [ d ] in
          Alcotest.(check int) "wrong line is not suppressed" 1
            (List.length kept);
          Alcotest.(check int) "nothing counted" 0 suppressed)

(* --- diagnostics format --------------------------------------------------- *)

let diag_format () =
  let d = Diag.v ~rule:"SIM-CLOCK" ~file:"lib/a.ml" ~line:3 ~col:7 "msg" in
  Alcotest.(check string) "grep-able format" "lib/a.ml:3:7 [SIM-CLOCK] msg"
    (Diag.to_string d)

(* --- the repository itself lints clean ------------------------------------ *)

let repo_root () =
  (* runtest executes inside _build; walk up to the checkout, recognised
     by the allowlist file (dune does not copy lint/ into _build) *)
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "lint/allow.sexp") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent
  in
  up (Sys.getcwd ())

let repo_is_clean () =
  match repo_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let report =
        Engine.run
          ~allow_file:(Some (Filename.concat root "lint/allow.sexp"))
          ~roots:[ Filename.concat root "lib" ]
          ()
      in
      List.iter
        (fun d -> Printf.printf "unsuppressed: %s\n" (Diag.to_string d))
        report.Engine.diags;
      Alcotest.(check int) "no unsuppressed findings in lib/" 0
        (List.length report.Engine.diags);
      Alcotest.(check int) "no stale allow entries" 0
        (List.length report.Engine.stale_allows);
      Alcotest.(check bool) "scanned a plausible number of files" true
        (report.Engine.files_scanned > 20)

let suite =
  [
    Alcotest.test_case "DET-RANDOM fixtures" `Quick det_random;
    Alcotest.test_case "SIM-CLOCK fixtures" `Quick sim_clock;
    Alcotest.test_case "DET-HASHITER fixtures" `Quick det_hashiter;
    Alcotest.test_case "ERR-SWALLOW fixtures" `Quick err_swallow;
    Alcotest.test_case "LOCK-ORDER fixtures" `Quick lock_order;
    Alcotest.test_case "PROTO-EXHAUST fixtures" `Quick proto_exhaust;
    Alcotest.test_case "NOWAIT-LEAK fixtures" `Quick nowait_leak;
    Alcotest.test_case "wait-queue pattern lints clean" `Quick
      wait_queue_pattern;
    Alcotest.test_case "SPAN-LEAK fixtures" `Quick span_leak;
    Alcotest.test_case "allowlist suppresses and reports stale" `Quick allowlist;
    Alcotest.test_case "allowlist line pinning" `Quick allowlist_line_mismatch;
    Alcotest.test_case "diagnostic format" `Quick diag_format;
    Alcotest.test_case "whole repo lints clean" `Quick repo_is_clean;
  ]

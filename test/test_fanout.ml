(* Properties of the nowait fan-out paths: a parallel partitioned scan
   returns exactly what the sequential driver returns, aggregate pushdown
   returns exactly what requester-side aggregation returns — on random
   Wisconsin predicates, with and without a chaos fault filter delaying
   and flapping the partitions' Disk Processes — and a given seed
   reproduces the run byte for byte. *)

module N = Nsql_core.Nonstop_sql
module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Config = Nsql_sim.Config
module Msg = Nsql_msg.Msg
module Row = Nsql_row.Row
module Expr = Nsql_expr.Expr
module Fs = Nsql_fs.Fs
module Dp_msg = Nsql_dp.Dp_msg
module Tmf = Nsql_tmf.Tmf
module Errors = Nsql_util.Errors
module Wisconsin = Nsql_workload.Wisconsin

let get_ok = Errors.get_ok
let fpr = Printf.sprintf
let rows = 240
let parts = 4

(* a tiny deterministic generator seeded per property case (tests may use
   Random, but keeping everything on the QCheck seed makes shrinking and
   replay exact) *)
let prng seed =
  let state = ref (max 1 (seed land 0x3FFFFFFF)) in
  fun n ->
    state := (!state * 48271 + 13) land 0x3FFFFFFF;
    !state mod n

(* random single-variable Wisconsin predicates, all lowerable to the DP *)
let random_where next =
  match next 6 with
  | 0 -> ""
  | 1 -> fpr " WHERE unique1 < %d" (next rows)
  | 2 -> fpr " WHERE tenpercent = %d" (next 10)
  | 3 ->
      let lo = next rows in
      fpr " WHERE unique2 >= %d AND unique2 < %d" lo (lo + 1 + next rows)
  | 4 -> fpr " WHERE two = 0 OR onepercent = %d" (next (1 + (rows / 100)))
  | _ -> fpr " WHERE four = %d AND unique1 >= %d" (next 4) (next rows)

(* chaos: deterministic delays and path flaps keyed on (seed, dest, tag);
   delivery always succeeds, only latencies and arrival order move *)
let install_chaos node seed =
  Msg.set_fault_filter (N.msys node)
    (Some
       (fun ~from:_ ~to_name ~tag ->
         match Hashtbl.hash (seed, to_name, tag) mod 5 with
         | 0 -> Msg.Fault_delay (float_of_int (Hashtbl.hash (to_name, seed) mod 700))
         | 1 -> Msg.Fault_path_retry (float_of_int (Hashtbl.hash (tag, seed) mod 300))
         | _ -> Msg.Fault_pass))

let make_node ~fanout ~chaos seed =
  let config = Config.v ~fs_fanout:fanout () in
  let node = N.create_node ~config ~volumes:4 () in
  get_ok ~ctx:"wisc" (Wisconsin.create node ~name:"t" ~rows ~partitions:parts ());
  if chaos then install_chaos node seed;
  node

let run_sql node sql =
  match N.exec_exn (N.session node) sql with
  | N.Rows { rows; _ } -> rows
  | _ -> Alcotest.fail ("not a rowset: " ^ sql)

let pp_rows rs =
  String.concat "; " (List.map (Format.asprintf "%a" Row.pp_row) rs)

let check_same_rows sql a b =
  if a <> b then
    QCheck.Test.fail_reportf "%s diverged:@.  %s@.  vs@.  %s" sql (pp_rows a)
      (pp_rows b)

(* --- parallel scan ≡ sequential scan -------------------------------- *)

let scan_equivalence ~chaos =
  QCheck.Test.make ~count:12
    ~name:
      (if chaos then "parallel scan = sequential scan (under chaos)"
       else "parallel scan = sequential scan")
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let next = prng seed in
      let sql = fpr "SELECT unique1, unique2, stringu1 FROM t%s" (random_where next) in
      let seq = run_sql (make_node ~fanout:false ~chaos seed) sql in
      let par = run_sql (make_node ~fanout:true ~chaos seed) sql in
      check_same_rows sql seq par;
      true)

(* the unordered variant interleaves completions, so compare as multisets *)
let unordered_scan_equivalence =
  QCheck.Test.make ~count:8 ~name:"unordered parallel scan = sequential (multiset)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let collect node ~ordered =
        let tbl = get_ok ~ctx:"find" (N.Catalog.find (N.catalog node) "t") in
        get_ok ~ctx:"scan"
          (Tmf.run (N.tmf node) (fun tx ->
               let sc =
                 Fs.open_scan (N.fs node) tbl.N.Catalog.t_file ~tx
                   ~access:Fs.A_vsbb ~range:Expr.full_range ~ordered
                   ~lock:Dp_msg.L_shared ()
               in
               let rec drain acc =
                 match Fs.scan_next (N.fs node) sc with
                 | Ok (Some r) -> drain (r :: acc)
                 | Ok None ->
                     Fs.close_scan (N.fs node) sc;
                     Ok (List.rev acc)
                 | Error e -> Error e
               in
               drain []))
      in
      let seq = collect (make_node ~fanout:false ~chaos:true seed) ~ordered:true in
      let un = collect (make_node ~fanout:true ~chaos:true seed) ~ordered:false in
      check_same_rows "unordered full scan" (List.sort compare seq)
        (List.sort compare un);
      true)

(* --- aggregate pushdown ≡ requester-side aggregation ----------------- *)

let pushdown_equivalence ~chaos =
  QCheck.Test.make ~count:12
    ~name:
      (if chaos then "pushdown aggregates = client aggregates (under chaos)"
       else "pushdown aggregates = client aggregates")
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let next = prng seed in
      let where = random_where next in
      let sql =
        match next 3 with
        | 0 ->
            fpr
              "SELECT COUNT(*), SUM(unique1), MIN(unique2), MAX(unique3), \
               AVG(two) FROM t%s"
              where
        | 1 -> fpr "SELECT COUNT(unique1), SUM(two) FROM t%s" where
        | _ ->
            (* unique2 is the primary key: a legal pushdown GROUP BY prefix *)
            fpr "SELECT unique2, COUNT(*), SUM(unique1) FROM t%s GROUP BY unique2"
              where
      in
      let client_node = make_node ~fanout:true ~chaos seed in
      N.set_access_mode (N.session client_node) (Some Fs.A_vsbb);
      let client = run_sql client_node sql in
      let pushed = run_sql (make_node ~fanout:true ~chaos seed) sql in
      check_same_rows sql client pushed;
      true)

(* --- same seed, byte-identical run ----------------------------------- *)

let snapshot node =
  let s = Sim.stats (N.sim node) in
  ( s.Stats.msgs_sent,
    s.Stats.msg_req_bytes,
    s.Stats.msg_reply_bytes,
    s.Stats.lock_requests,
    Sim.now (N.sim node) )

let determinism =
  QCheck.Test.make ~count:8 ~name:"fan-out runs are seed-deterministic"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let next = prng seed in
      let sql =
        fpr "SELECT COUNT(*), SUM(unique1) FROM t%s" (random_where next)
      in
      let run () =
        let node = make_node ~fanout:true ~chaos:true seed in
        let rs = run_sql node sql in
        (rs, snapshot node)
      in
      let a = run () in
      let b = run () in
      if a <> b then
        QCheck.Test.fail_reportf "seed %d: two runs of %s diverged" seed sql;
      true)

let suite =
  [
    QCheck_alcotest.to_alcotest (scan_equivalence ~chaos:false);
    QCheck_alcotest.to_alcotest (scan_equivalence ~chaos:true);
    QCheck_alcotest.to_alcotest unordered_scan_equivalence;
    QCheck_alcotest.to_alcotest (pushdown_equivalence ~chaos:false);
    QCheck_alcotest.to_alcotest (pushdown_equivalence ~chaos:true);
    QCheck_alcotest.to_alcotest determinism;
  ]

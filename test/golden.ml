(* Depth-1 golden fingerprints: canonical strings of the full statistics
   vector plus the final simulated clock for three fixed workloads. The
   constants below were captured from the pre-queue-model build (after the
   PR-10 stall/read_range accounting bugfixes, before the multi-queue disk
   rework) and pin the contract that [disk_queue_depth = 1] — the default —
   reproduces the single-[busy_until] disk byte for byte: same results,
   same counters, same clock. test_diskq checks them on every run.

   No Alcotest in here: the module is also compiled standalone by the
   one-off capture driver that (re)generates the constants, so keep it a
   pure library over the nsql libs. *)

module N = Nsql_core.Nonstop_sql
module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Config = Nsql_sim.Config
module Errors = Nsql_util.Errors
module Wisconsin = Nsql_workload.Wisconsin
module Debitcredit = Nsql_workload.Debitcredit
module Chaos = Nsql_chaos.Chaos

let get_ok = Errors.get_ok

let fingerprint_of ~stats ~now =
  String.concat ";"
    (List.map
       (fun (k, v) -> Printf.sprintf "%s=%d" k v)
       (Stats.to_assoc stats))
  ^ Printf.sprintf ";now=%.6f" now

let fingerprint node =
  fingerprint_of ~stats:(N.snapshot node) ~now:(Sim.now (N.sim node))

(* the test_monitor Wisconsin mini-suite: selections, aggregates, a join
   and DML over a partitioned table — scans, prefetch, bulk I/O, audit *)
let queries ?config () =
  let config = match config with Some c -> c | None -> Config.v ~fs_fanout:true () in
  let node = N.create_node ~config ~volumes:4 () in
  let rows = 200 in
  get_ok ~ctx:"wisc" (Wisconsin.create node ~name:"t" ~rows ~partitions:4 ());
  get_ok ~ctx:"wisc2" (Wisconsin.create node ~name:"t2" ~rows ());
  let s = N.session node in
  List.iter
    (fun q -> ignore (N.exec_exn s q.Wisconsin.q_sql))
    (Wisconsin.selection_queries ~table:"t" ~rows
    @ Wisconsin.agg_and_join_queries ~table:"t" ~table2:"t2" ~rows);
  ignore (N.exec_exn s "UPDATE t SET two = 1 WHERE unique2 < 20");
  ignore (N.exec_exn s "DELETE FROM t WHERE unique2 >= 190");
  Sim.drain (N.sim node);
  fingerprint node

(* contended DebitCredit with DP lock-wait queues: dirties the cache hard
   enough to drive write-behind and eviction cleaning *)
let transfers ?config () =
  let config =
    match config with
    | Some c -> c
    | None -> Config.v ~dp_lock_wait:true ~lock_wait_timeout_us:150_000. ()
  in
  let node = N.create_node ~config ~volumes:2 () in
  let db =
    get_ok ~ctx:"transfer setup" (Debitcredit.setup_transfer node ~accounts:4)
  in
  let rep = Debitcredit.run_transfers db ~terminals:4 ~txs_per_terminal:10 () in
  assert (rep.Debitcredit.x_failed = 0);
  assert (rep.Debitcredit.x_committed = 40);
  Sim.drain (N.sim node);
  fingerprint node

(* a pool far smaller than the table: scans run cold, so demand bulk
   reads, pre-fetch, eviction cleaning and re-reads all hit the disk *)
let cold_scans ?config () =
  let config =
    match config with
    | Some c -> c
    | None -> Config.v ~fs_fanout:true ~cache_blocks:16 ()
  in
  let node = N.create_node ~config ~volumes:2 () in
  let rows = 4000 in
  get_ok ~ctx:"wisc" (Wisconsin.create node ~name:"t" ~rows ~partitions:2 ());
  let s = N.session node in
  ignore (N.exec_exn s "SELECT COUNT(*), SUM(unique1) FROM t");
  ignore (N.exec_exn s "SELECT unique1 FROM t WHERE unique2 < 50");
  ignore (N.exec_exn s "UPDATE t SET two = 1 WHERE unique2 < 40");
  ignore (N.exec_exn s "SELECT COUNT(*), MIN(unique2) FROM t WHERE two = 1");
  Sim.drain (N.sim node);
  fingerprint node

(* chaos runs whose plans include audit stalls, disk transients and VM
   pressure (seeds 6 and 12 carry all three): pins the repaired
   [Disk.stall] arithmetic under faults; the applied-fault counts ride
   along in the fingerprint *)
let chaos ~seed () =
  let r = Chaos.run ~txs:40 ~seed () in
  assert (r.Chaos.r_violations = []);
  fingerprint_of ~stats:r.Chaos.r_stats
    ~now:(float_of_int r.Chaos.r_txs_committed)
  ^ ";"
  ^ String.concat ";"
      (List.map (fun (k, n) -> Printf.sprintf "fault_%s=%d" k n) r.Chaos.r_faults)

let scenarios =
  [
    ("queries", fun () -> queries ());
    ("transfers", fun () -> transfers ());
    ("cold_scans", fun () -> cold_scans ());
    ("chaos_seed6", fun () -> chaos ~seed:6 ());
    ("chaos_seed12", fun () -> chaos ~seed:12 ());
  ]
(* --- captured constants (regenerate with the PR-10 capture driver) --- *)

let golden_queries =
  "msgs_sent=50;msg_req_bytes=90398;msg_reply_bytes=19683;msgs_remote=50;msgs_internode=0;checkpoint_msgs=55;checkpoint_bytes=91178;disk_reads=0;disk_writes=12;blocks_read=0;blocks_written=37;bulk_reads=0;bulk_writes=5;prefetch_reads=0;writebehind_writes=0;cache_hits=5045;cache_misses=0;cache_steals=0;cpu_ticks=86053;lock_requests=36;lock_conflicts=0;lock_waits=0;deadlocks=0;audit_records=448;audit_bytes=119212;audit_flushes=8;audit_flush_full=4;audit_flush_timer=4;group_commit_txs=4;tx_begun=14;tx_committed=14;tx_aborted=0;records_read=1652;records_returned=629;exec_batches=20;exec_rows=629;redrives=1;faults_injected=0;msg_path_retries=0;disk_transient_errors=0;takeovers=0;takeover_denials=0;now=474586.500000"

let golden_transfers =
  "msgs_sent=222;msg_req_bytes=18708;msg_reply_bytes=11558;msgs_remote=222;msgs_internode=0;checkpoint_msgs=428;checkpoint_bytes=22049;disk_reads=2;disk_writes=41;blocks_read=2;blocks_written=48;bulk_reads=0;bulk_writes=7;prefetch_reads=0;writebehind_writes=0;cache_hits=306;cache_misses=2;cache_steals=0;cpu_ticks=17532;lock_requests=315;lock_conflicts=103;lock_waits=63;deadlocks=4;audit_records=230;audit_bytes=31740;audit_flushes=41;audit_flush_full=0;audit_flush_timer=41;group_commit_txs=41;tx_begun=49;tx_committed=41;tx_aborted=8;records_read=0;records_returned=0;exec_batches=0;exec_rows=0;redrives=0;faults_injected=0;msg_path_retries=0;disk_transient_errors=0;takeovers=0;takeover_denials=0;now=2647241.000000"

let golden_cold_scans =
  "msgs_sent=52;msg_req_bytes=880809;msg_reply_bytes=1074;msgs_remote=52;msgs_internode=0;checkpoint_msgs=55;checkpoint_bytes=882802;disk_reads=102;disk_writes=373;blocks_read=578;blocks_written=614;bulk_reads=80;bulk_writes=41;prefetch_reads=80;writebehind_writes=0;cache_hits=32817;cache_misses=22;cache_steals=0;cpu_ticks=512149;lock_requests=80;lock_conflicts=0;lock_waits=0;deadlocks=0;audit_records=4047;audit_bytes=1153858;audit_flushes=42;audit_flush_full=40;audit_flush_timer=2;group_commit_txs=2;tx_begun=5;tx_committed=5;tx_aborted=0;records_read=8090;records_returned=50;exec_batches=1;exec_rows=50;redrives=4;faults_injected=0;msg_path_retries=0;disk_transient_errors=0;takeovers=0;takeover_denials=0;now=3155230.000000"

let golden_chaos6 =
  "msgs_sent=415;msg_req_bytes=13762;msg_reply_bytes=12882;msgs_remote=415;msgs_internode=0;checkpoint_msgs=302;checkpoint_bytes=15170;disk_reads=11;disk_writes=56;blocks_read=22;blocks_written=59;bulk_reads=3;bulk_writes=3;prefetch_reads=0;writebehind_writes=0;cache_hits=2114;cache_misses=8;cache_steals=5;cpu_ticks=53421;lock_requests=284;lock_conflicts=0;lock_waits=0;deadlocks=0;audit_records=399;audit_bytes=19271;audit_flushes=51;audit_flush_full=0;audit_flush_timer=51;group_commit_txs=51;tx_begun=68;tx_committed=63;tx_aborted=5;records_read=336;records_returned=290;exec_batches=28;exec_rows=274;redrives=0;faults_injected=8;msg_path_retries=0;disk_transient_errors=0;takeovers=1;takeover_denials=0;now=35.000000;fault_msg_delay=2;fault_msg_flap=0;fault_takeover=2;fault_crash=1;fault_disk_transient=1;fault_vm_pressure=1;fault_audit_stall=1;fault_2pc_crash=0"

let golden_chaos12 =
  "msgs_sent=507;msg_req_bytes=15034;msg_reply_bytes=19496;msgs_remote=507;msgs_internode=0;checkpoint_msgs=295;checkpoint_bytes=14244;disk_reads=11;disk_writes=55;blocks_read=21;blocks_written=59;bulk_reads=3;bulk_writes=4;prefetch_reads=0;writebehind_writes=0;cache_hits=2475;cache_misses=8;cache_steals=5;cpu_ticks=62089;lock_requests=284;lock_conflicts=0;lock_waits=0;deadlocks=0;audit_records=389;audit_bytes=18795;audit_flushes=50;audit_flush_full=0;audit_flush_timer=50;group_commit_txs=50;tx_begun=68;tx_committed=65;tx_aborted=3;records_read=470;records_returned=427;exec_batches=34;exec_rows=412;redrives=0;faults_injected=7;msg_path_retries=0;disk_transient_errors=2;takeovers=1;takeover_denials=0;now=37.000000;fault_msg_delay=0;fault_msg_flap=0;fault_takeover=1;fault_crash=1;fault_disk_transient=3;fault_vm_pressure=1;fault_audit_stall=1;fault_2pc_crash=0"


(* Tests of the deterministic span tracer: observation is free (tracing on
   leaves the clock and every counter bit-identical), exports are
   byte-identical per seed, nesting stays well-formed under chaos faults,
   and the profile's per-operator / per-leg counters tile the statement's
   global Stats.diff exactly. Plus Stats.pp completeness: every field of
   Stats.t must reach to_assoc (and so pp). *)

module N = Nsql_core.Nonstop_sql
module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Config = Nsql_sim.Config
module Tracer = Nsql_sim.Tracer
module Trace = Nsql_trace.Trace
module Errors = Nsql_util.Errors
module Wisconsin = Nsql_workload.Wisconsin
module Chaos = Nsql_chaos.Chaos

let get_ok = Errors.get_ok

(* A Wisconsin mini-suite over a partitioned table: selections, aggregates
   (client-side and pushed down), a join, and DML — together they exercise
   every instrumented subsystem (executor, FS fan-out, DP, disk, cache,
   lock, audit). *)
let workload ~tracing () =
  let config = Config.v ~fs_fanout:true () in
  let node = N.create_node ~config ~volumes:4 () in
  let sim = N.sim node in
  if tracing then Trace.set_enabled sim true;
  let rows = 200 in
  get_ok ~ctx:"wisc" (Wisconsin.create node ~name:"t" ~rows ~partitions:4 ());
  get_ok ~ctx:"wisc2" (Wisconsin.create node ~name:"t2" ~rows ());
  let s = N.session node in
  List.iter
    (fun q -> ignore (N.exec_exn s q.Wisconsin.q_sql))
    (Wisconsin.selection_queries ~table:"t" ~rows
    @ Wisconsin.agg_and_join_queries ~table:"t" ~table2:"t2" ~rows);
  ignore (N.exec_exn s "UPDATE t SET two = 1 WHERE unique2 < 20");
  ignore (N.exec_exn s "DELETE FROM t WHERE unique2 >= 190");
  (node, sim)

(* spans read the clock and snapshot counters but never charge or tick *)
let zero_perturbation () =
  let node_off, sim_off = workload ~tracing:false () in
  let node_on, sim_on = workload ~tracing:true () in
  Alcotest.(check (list (pair string int)))
    "tracing leaves every counter identical"
    (Stats.to_assoc (N.snapshot node_off))
    (Stats.to_assoc (N.snapshot node_on));
  Alcotest.(check (float 0.)) "tracing leaves the clock identical"
    (Sim.now sim_off) (Sim.now sim_on)

(* one traced partitioned VSBB scan, used by the determinism and
   attribution tests *)
let traced_scan () =
  let config = Config.v ~fs_fanout:true () in
  let node = N.create_node ~config ~volumes:4 () in
  get_ok ~ctx:"wisc"
    (Wisconsin.create node ~name:"t" ~rows:200 ~partitions:4 ());
  let s = N.session node in
  let sim = N.sim node in
  Trace.set_enabled sim true;
  ignore (N.exec_exn s "SELECT unique1, unique2 FROM t");
  Trace.set_enabled sim false;
  Trace.take sim

let export_deterministic () =
  let j1 = Trace.chrome_json [ traced_scan () ] in
  let j2 = Trace.chrome_json [ traced_scan () ] in
  Alcotest.(check string) "byte-identical chrome export" j1 j2;
  Alcotest.(check bool) "chrome trace-event shape" true
    (String.length j1 > 16
    && String.equal (String.sub j1 0 15) "{\"traceEvents\":")

let counters : (string * (Stats.t -> int)) list =
  [
    ("msgs_sent", fun s -> s.Stats.msgs_sent);
    ("msg_req_bytes", fun s -> s.Stats.msg_req_bytes);
    ("msg_reply_bytes", fun s -> s.Stats.msg_reply_bytes);
    ("redrives", fun s -> s.Stats.redrives);
    ("cache_hits", fun s -> s.Stats.cache_hits);
    ("records_read", fun s -> s.Stats.records_read);
  ]

(* the profile must account for everything: operator spans tile the
   statement span, partition legs tile the fan-out scan span — for every
   counter a SELECT can generate *)
let exact_attribution () =
  let spans = traced_scan () in
  let by_cat c = List.filter (fun sp -> String.equal sp.Tracer.sp_cat c) spans in
  let the what = function
    | [ sp ] -> sp
    | l -> Alcotest.failf "expected one %s span, got %d" what (List.length l)
  in
  let stmt = the "stmt" (by_cat "stmt") in
  let scan = the "fs" (by_cat "fs") in
  let ops = by_cat "op" in
  let legs = by_cat "fs.leg" in
  Alcotest.(check int) "one leg per partition" 4 (List.length legs);
  List.iter
    (fun (name, get) ->
      let sum l =
        List.fold_left (fun a sp -> a + get sp.Tracer.sp_stats) 0 l
      in
      Alcotest.(check int)
        (name ^ ": operator spans tile the statement")
        (get stmt.Tracer.sp_stats) (sum ops);
      Alcotest.(check int)
        (name ^ ": partition legs tile the scan")
        (get scan.Tracer.sp_stats) (sum legs))
    counters

(* --- nesting well-formedness under chaos faults -------------------------- *)

let span_nesting_holds spans =
  let tbl = Hashtbl.create 256 in
  List.iter (fun sp -> Hashtbl.replace tbl sp.Tracer.sp_id sp) spans;
  List.for_all
    (fun sp ->
      (not sp.Tracer.sp_open)
      && sp.Tracer.sp_start <= sp.Tracer.sp_end
      &&
      match sp.Tracer.sp_parent with
      | None -> true
      | Some pid -> (
          match Hashtbl.find_opt tbl pid with
          | None -> true (* parent rotated out of the ring *)
          | Some p ->
              p.Tracer.sp_start <= sp.Tracer.sp_start
              && sp.Tracer.sp_end <= p.Tracer.sp_end))
    spans

(* chaos injects crashes, takeovers, message-path retries and transient
   disk faults; every span must still close and stay inside its parent's
   extent *)
let chaos_nesting =
  QCheck.Test.make ~name:"span nesting is well-formed under chaos faults"
    ~count:8
    QCheck.(int_bound 1000)
    (fun seed ->
      let worlds = ref [] in
      Tracer.creation_hook :=
        Some
          (fun tr ->
            Tracer.set_enabled tr true;
            worlds := tr :: !worlds);
      let report =
        Fun.protect
          ~finally:(fun () -> Tracer.creation_hook := None)
          (fun () -> Chaos.run ~txs:15 ~seed ())
      in
      (* tracing must not have perturbed the run into a violation *)
      if report.Chaos.r_violations <> [] then
        QCheck.Test.fail_report "chaos oracle violation under tracing"
      else
        List.for_all (fun tr -> span_nesting_holds (Tracer.take tr)) !worlds)

(* --- Stats.pp completeness ------------------------------------------------ *)

(* count the record's fields by side effect through map2, then require
   to_assoc (and so pp, which renders every non-zero to_assoc entry) to
   cover each one — adding a Stats field without exporting it fails here *)
let stats_pp_complete () =
  let z = Stats.create () in
  let nfields = ref 0 in
  let ones =
    Stats.map2
      (fun _ _ ->
        incr nfields;
        1)
      z z
  in
  Alcotest.(check int) "to_assoc covers every Stats.t field" !nfields
    (List.length (Stats.to_assoc ones));
  let rendered = Format.asprintf "%a" Stats.pp ones in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i =
      i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun (name, v) ->
      Alcotest.(check int) (name ^ " rendered with value one") 1 v;
      Alcotest.(check bool) (name ^ " appears in Stats.pp") true
        (contains name rendered))
    (Stats.to_assoc ones)

let suite =
  [
    Alcotest.test_case "tracing is observation-free" `Quick zero_perturbation;
    Alcotest.test_case "chrome export is byte-identical per seed" `Quick
      export_deterministic;
    Alcotest.test_case "operator and leg counters tile the statement" `Quick
      exact_attribution;
    QCheck_alcotest.to_alcotest chaos_nesting;
    Alcotest.test_case "Stats.pp renders every field" `Quick stats_pp_complete;
  ]

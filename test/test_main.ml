let () =
  Alcotest.run "nonstop_sql"
    [
      ("codec", Test_codec.suite);
      ("sim", Test_sim.suite);
      ("row", Test_row.suite);
      ("expr", Test_expr.suite);
      ("cache", Test_cache.suite);
      ("lock", Test_lock.suite);
      ("audit", Test_audit.suite);
      ("store", Test_store.suite);
      ("dp", Test_dp.suite);
      ("fs", Test_fs.suite);
      ("sql", Test_sql.suite);
      ("enscribe", Test_enscribe.suite);
      ("sort", Test_sort.suite);
      ("workload", Test_workload.suite);
      ("extensions", Test_extensions.suite);
      ("sql_edge", Test_sql_edge.suite);
      ("protocol", Test_protocol.suite);
      ("availability", Test_availability.suite);
      ("dtx", Test_dtx.suite);
      ("model", Test_model.suite);
      ("relative", Test_relative.suite);
      ("fanout", Test_fanout.suite);
      ("batch", Test_batch.suite);
      ("trace", Test_trace.suite);
      ("monitor", Test_monitor.suite);
      ("chaos", Test_chaos.suite);
      ("lint", Test_lint.suite);
      ("diskq", Test_diskq.suite);
    ]

(* Tests of the availability features (process-pair takeover) and of the
   newest SQL surface (DISTINCT, DROP TABLE). *)

open Harness
module N = Nsql_core.Nonstop_sql
module Msg = Nsql_msg.Msg
module Dp_msg = Nsql_dp.Dp_msg
module Row = Nsql_row.Row

let takeover_preserves_service () =
  let n, file = (fun () -> let n = node () in (n, create_accounts n)) () in
  load_accounts n file 50;
  let primary_before = Msg.endpoint_processor (Dp.endpoint n.dps.(0)) in
  (* an open transaction holds locks across the takeover *)
  let tx = Tmf.begin_tx n.tmf in
  ignore
    (get_ok ~ctx:"upd"
       (Fs.update_subset n.fs file ~tx
          ~range:Expr.{ lo = acct_key 7; hi = Keycode.successor (acct_key 7) }
          [ { Expr.target = 1; source = Expr.(Const (Row.Vfloat 42.)) } ]));
  (* the primary fails; the backup takes over *)
  get_ok ~ctx:"takeover" (Dp.takeover n.dps.(0));
  let primary_after = Msg.endpoint_processor (Dp.endpoint n.dps.(0)) in
  Alcotest.(check bool) "endpoint moved processors" true
    (primary_before <> primary_after);
  (* the in-flight transaction continues: its locks survived *)
  let tx2 = Tmf.begin_tx n.tmf in
  (match Fs.read n.fs file ~tx:tx2 ~key:(acct_key 7) ~lock:Dp_msg.L_shared with
  | Error (Errors.Lock_timeout _) -> ()
  | Ok _ -> Alcotest.fail "lock lost across takeover"
  | Error e -> Alcotest.fail (Errors.to_string e));
  get_ok ~ctx:"abort reader" (Tmf.abort n.tmf ~tx:tx2);
  get_ok ~ctx:"commit writer" (Tmf.commit n.tmf ~tx);
  (* normal service continues, no recovery required *)
  in_tx n (fun tx ->
      let open Errors in
      let* r = Fs.read n.fs file ~tx ~key:(acct_key 7) ~lock:Dp_msg.L_none in
      (match (Row.decode_exn account_schema r).(1) with
      | Row.Vfloat f -> Alcotest.(check (float 1e-9)) "update survived" 42. f
      | _ -> Alcotest.fail "bad type");
      Ok ());
  (* a second takeover has no backup left *)
  match Dp.takeover n.dps.(0) with
  | Error (Errors.Bad_request _) -> ()
  | Ok () -> Alcotest.fail "takeover without backup succeeded"
  | Error e -> Alcotest.fail (Errors.to_string e)

let takeover_mid_scan () =
  let n, file = (fun () -> let n = node () in (n, create_accounts n)) () in
  load_accounts n file 200;
  in_tx n (fun tx ->
      let open Errors in
      let sc =
        Fs.open_scan n.fs file ~tx ~access:Fs.A_vsbb ~range:full_range
          ~proj:[| 0 |] ~lock:Dp_msg.L_none ()
      in
      let rec go k =
        (* primary fails in the middle of the subset: the SCB was
           checkpointed, so the re-drives continue on the backup *)
        if k = 50 then get_ok ~ctx:"takeover" (Dp.takeover n.dps.(0));
        let* row = Fs.scan_next n.fs sc in
        match row with
        | Some _ -> go (k + 1)
        | None ->
            Fs.close_scan n.fs sc;
            Alcotest.(check int) "scan complete across takeover" 200 k;
            Ok ()
      in
      go 0)

let distinct_sql () =
  let node = N.create_node () in
  let s = N.session node in
  ignore (N.exec_exn s "CREATE TABLE t (k INT PRIMARY KEY, g INT NOT NULL)");
  for i = 0 to 9 do
    ignore (N.exec_exn s (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i (i mod 3)))
  done;
  let rows =
    match N.exec_exn s "SELECT DISTINCT g FROM t ORDER BY g" with
    | N.Rows r -> r.Nsql_sql.Executor.rows
    | _ -> Alcotest.fail "expected rows"
  in
  Alcotest.(check int) "three distinct values" 3 (List.length rows);
  let plain =
    match N.exec_exn s "SELECT g FROM t" with
    | N.Rows r -> List.length r.Nsql_sql.Executor.rows
    | _ -> 0
  in
  Alcotest.(check int) "without DISTINCT all rows" 10 plain

let drop_table_sql () =
  let node = N.create_node () in
  let s = N.session node in
  ignore (N.exec_exn s "CREATE TABLE t (k INT PRIMARY KEY)");
  ignore (N.exec_exn s "INSERT INTO t VALUES (1)");
  (match N.exec_exn s "DROP TABLE t" with
  | N.Done -> ()
  | _ -> Alcotest.fail "expected Done");
  (match N.exec s "SELECT * FROM t" with
  | Error (Errors.Name_error _) -> ()
  | _ -> Alcotest.fail "dropped table still queryable");
  match N.exec s "DROP TABLE t" with
  | Error (Errors.Name_error _) -> ()
  | _ -> Alcotest.fail "double drop accepted"

let suite =
  [
    Alcotest.test_case "takeover preserves service + locks" `Quick
      takeover_preserves_service;
    Alcotest.test_case "takeover mid-scan (SCB survives)" `Quick
      takeover_mid_scan;
    Alcotest.test_case "SELECT DISTINCT" `Quick distinct_sql;
    Alcotest.test_case "DROP TABLE" `Quick drop_table_sql;
  ]

(* --- read-only transactions and entry-append undo (late additions) ------- *)

let readonly_tx_skips_group_commit () =
  let node = N.create_node () in
  let s = N.session node in
  ignore (N.exec_exn s "CREATE TABLE t (k INT PRIMARY KEY)");
  ignore (N.exec_exn s "INSERT INTO t VALUES (1)");
  let stats = N.stats node in
  let flushes = stats.Nsql_sim.Stats.audit_flushes in
  let records = stats.Nsql_sim.Stats.audit_records in
  let t0 = Nsql_sim.Sim.now (N.sim node) in
  ignore (N.exec_exn s "SELECT * FROM t");
  Alcotest.(check int) "no log flush for a read-only statement" flushes
    stats.Nsql_sim.Stats.audit_flushes;
  (* only the BEGIN record, no COMMIT *)
  Alcotest.(check int) "one audit record (BEGIN)" (records + 1)
    stats.Nsql_sim.Stats.audit_records;
  Alcotest.(check bool) "no group-commit wait" true
    (Nsql_sim.Sim.now (N.sim node) -. t0 < 10_000.)

let entry_append_abort_undoes () =
  let n = node () in
  let file =
    get_ok ~ctx:"create"
      (Fs.create_enscribe_file n.fs ~fname:"HIST" ~kind:Dp_msg.K_entry_sequenced
         ~partitions:[ Fs.{ ps_lo = ""; ps_dp = n.dps.(0) } ])
  in
  in_tx n (fun tx ->
      let open Errors in
      let* _ = Fs.append_entry n.fs file ~tx ~record:"committed-1" in
      Ok ());
  let tx = Tmf.begin_tx n.tmf in
  ignore (get_ok ~ctx:"a1" (Fs.append_entry n.fs file ~tx ~record:"doomed-1"));
  ignore (get_ok ~ctx:"a2" (Fs.append_entry n.fs file ~tx ~record:"doomed-2"));
  Alcotest.(check int) "visible before abort" 3 (Fs.record_count n.fs file);
  get_ok ~ctx:"abort" (Tmf.abort n.tmf ~tx);
  Alcotest.(check int) "appends rolled back" 1 (Fs.record_count n.fs file);
  (* the file still works after the truncation *)
  in_tx n (fun tx ->
      let open Errors in
      let* _ = Fs.append_entry n.fs file ~tx ~record:"committed-2" in
      Ok ());
  Alcotest.(check int) "append after undo" 2 (Fs.record_count n.fs file)

let suite =
  suite
  @ [
      Alcotest.test_case "read-only tx skips group commit" `Quick
        readonly_tx_skips_group_commit;
      Alcotest.test_case "entry-append abort truncates" `Quick
        entry_append_abort_undoes;
    ]

(* --- process-pair replication battery ------------------------------------ *)

module Stats = Nsql_sim.Stats

let lock_wait_config ?dp_checkpoint () =
  Config.v ~dp_lock_wait:true ~lock_wait_timeout_us:150_000. ?dp_checkpoint ()

(* an exclusive point read sent nowait straight at the Disk Process, so the
   test can hold several parked requests at once *)
let xread_nowait n ~dpfile ~tx key =
  let req =
    Dp_msg.R_read { file = dpfile; tx; key; lock = Dp_msg.L_exclusive }
  in
  Msg.send_nowait n.msys ~from:n.app_processor ~tag:(Dp_msg.tag req)
    (Dp.endpoint n.dps.(0)) (Dp_msg.encode_request req)

let reply_of payload =
  match Dp_msg.decode_reply payload with
  | Ok r -> r
  | Error e -> Alcotest.fail (Dp_msg.decode_error_to_string e)

(* two waiters queue behind an exclusive lock; the primary fails; the NEW
   primary must grant them in the original FIFO order when the lock holder
   commits *)
let takeover_preserves_fifo_waiters () =
  let n = node ~config:(lock_wait_config ()) () in
  let file = create_accounts n in
  load_accounts n file 10;
  let dpfile = Option.get (Dp.file_id n.dps.(0) "ACCOUNT#p0") in
  let tx1 = Tmf.begin_tx n.tmf in
  ignore
    (get_ok ~ctx:"tx1 X"
       (Fs.read n.fs file ~tx:tx1 ~key:(acct_key 5) ~lock:Dp_msg.L_exclusive));
  let tx2 = Tmf.begin_tx n.tmf in
  let tx3 = Tmf.begin_tx n.tmf in
  let c2 = xread_nowait n ~dpfile ~tx:tx2 (acct_key 5) in
  let c3 = xread_nowait n ~dpfile ~tx:tx3 (acct_key 5) in
  Alcotest.(check bool) "both parked" true
    (Msg.done_at c2 = None && Msg.done_at c3 = None);
  get_ok ~ctx:"takeover" (Dp.takeover n.dps.(0));
  Alcotest.(check bool) "both still parked on the new primary" true
    (Msg.done_at c2 = None && Msg.done_at c3 = None);
  (* release: the new primary pumps its (checkpointed) wait queue *)
  get_ok ~ctx:"commit tx1" (Tmf.commit n.tmf ~tx:tx1);
  Alcotest.(check bool) "tx2 granted first (FIFO)" true
    (Msg.done_at c2 <> None);
  Alcotest.(check bool) "tx3 still behind tx2" true (Msg.done_at c3 = None);
  (match reply_of (Msg.await n.msys c2) with
  | Dp_msg.Rp_record _ -> ()
  | _ -> Alcotest.fail "tx2: expected the record");
  get_ok ~ctx:"commit tx2" (Tmf.commit n.tmf ~tx:tx2);
  Alcotest.(check bool) "tx3 granted after tx2" true (Msg.done_at c3 <> None);
  (match reply_of (Msg.await n.msys c3) with
  | Dp_msg.Rp_record _ -> ()
  | _ -> Alcotest.fail "tx3: expected the record");
  get_ok ~ctx:"commit tx3" (Tmf.commit n.tmf ~tx:tx3)

(* a parked request's wait budget is NOT restarted by a takeover: the
   timeout fires at park-time + budget even though the primary changed
   half-way through the wait *)
let takeover_keeps_wait_budget () =
  let n = node ~config:(lock_wait_config ()) () in
  let file = create_accounts n in
  load_accounts n file 10;
  let dpfile = Option.get (Dp.file_id n.dps.(0) "ACCOUNT#p0") in
  let tx1 = Tmf.begin_tx n.tmf in
  ignore
    (get_ok ~ctx:"tx1 X"
       (Fs.read n.fs file ~tx:tx1 ~key:(acct_key 3) ~lock:Dp_msg.L_exclusive));
  let tx2 = Tmf.begin_tx n.tmf in
  let parked_at = Sim.now n.sim in
  let c2 = xread_nowait n ~dpfile ~tx:tx2 (acct_key 3) in
  (* fail the primary half-way into the 150ms budget *)
  Sim.schedule n.sim
    ~at:(parked_at +. 75_000.)
    (fun () -> get_ok ~ctx:"mid-wait takeover" (Dp.takeover n.dps.(0)));
  (match reply_of (Msg.await n.msys c2) with
  | Dp_msg.Rp_error (Errors.Lock_timeout _) -> ()
  | Dp_msg.Rp_error e -> Alcotest.fail (Errors.to_string e)
  | _ -> Alcotest.fail "expected a lock-wait timeout");
  let waited = Sim.now n.sim -. parked_at in
  Alcotest.(check bool) "waited out the budget" true (waited >= 150_000.);
  Alcotest.(check bool) "budget kept counting across takeover" true
    (waited < 160_000.);
  get_ok ~ctx:"abort tx2" (Tmf.abort n.tmf ~tx:tx2);
  get_ok ~ctx:"commit tx1" (Tmf.commit n.tmf ~tx:tx1)

(* without a replica (checkpoint apply off), a takeover still answers, but
   transactions that were in flight are denied with a retryable error until
   they abort — after which service is clean *)
let unreplicated_takeover_denies_retryably () =
  let n = node ~config:(Config.v ~dp_checkpoint:false ()) () in
  let file = create_accounts n in
  load_accounts n file 10;
  let tx = Tmf.begin_tx n.tmf in
  ignore
    (get_ok ~ctx:"tx X"
       (Fs.read n.fs file ~tx ~key:(acct_key 2) ~lock:Dp_msg.L_exclusive));
  let s = Sim.stats n.sim in
  let denials = s.Stats.takeover_denials in
  get_ok ~ctx:"takeover" (Dp.takeover n.dps.(0));
  (match Fs.read n.fs file ~tx ~key:(acct_key 4) ~lock:Dp_msg.L_exclusive with
  | Error (Errors.Takeover _ as e) ->
      Alcotest.(check bool) "classified retryable" true (N.retryable e)
  | Ok _ -> Alcotest.fail "in-flight tx served by unreplicated new primary"
  | Error e -> Alcotest.fail (Errors.to_string e));
  Alcotest.(check int) "denial counted" (denials + 1)
    s.Stats.takeover_denials;
  get_ok ~ctx:"abort" (Tmf.abort n.tmf ~tx);
  (* the abort clears the denial: a fresh attempt succeeds *)
  in_tx n (fun tx ->
      let open Errors in
      let* _ =
        Fs.read n.fs file ~tx ~key:(acct_key 4) ~lock:Dp_msg.L_exclusive
      in
      Ok ())

(* no-backup regressions: a solo Disk Process refuses takeover with
   [Bad_request], and a second takeover of a pair finds no backup left *)
let no_backup_regressions () =
  let sim = Sim.create () in
  let msys = Msg.create sim in
  let audit_volume = Disk.create sim ~name:"$AUDIT" in
  let trail = Trail.create sim audit_volume in
  let tmf = Tmf.create sim trail in
  let solo =
    Dp.create sim msys tmf ~name:"$SOLO"
      ~processor:Msg.{ node = 0; cpu = 1 }
      ()
  in
  (match Dp.takeover solo with
  | Error (Errors.Bad_request _) -> ()
  | Ok () -> Alcotest.fail "takeover without backup succeeded"
  | Error e -> Alcotest.fail (Errors.to_string e));
  let nn = N.create_node () in
  Alcotest.(check bool) "first takeover flips to the backup" true
    (N.takeover_volume nn 0);
  Alcotest.(check bool) "double takeover refused" false
    (N.takeover_volume nn 0)

(* "the replica is free when unused": with no fault injected, running the
   same workload with checkpoint apply on and off yields bit-identical
   results, clock, and counters — the checkpoint messages themselves are
   charged either way, the replica bookkeeping is pure heap *)
let replica_is_free_when_unused () =
  let run dp_checkpoint =
    let n = node ~config:(lock_wait_config ~dp_checkpoint ()) () in
    let file = create_accounts n in
    load_accounts n file 60;
    let dpfile = Option.get (Dp.file_id n.dps.(0) "ACCOUNT#p0") in
    (* cross every checkpointed structure: a subset update (SCB + intent),
       a lock wait with grant (park/unpark), and a full scan *)
    in_tx n (fun tx ->
        let open Errors in
        let* nrows =
          Fs.update_subset n.fs file ~tx
            ~range:
              Expr.{ lo = acct_key 10; hi = Keycode.successor (acct_key 19) }
            [ { Expr.target = 1; source = Expr.(Const (Row.Vfloat 7.)) } ]
        in
        Alcotest.(check int) "updated" 10 nrows;
        Ok ());
    let tx1 = Tmf.begin_tx n.tmf in
    ignore
      (get_ok ~ctx:"tx1 X"
         (Fs.read n.fs file ~tx:tx1 ~key:(acct_key 0)
            ~lock:Dp_msg.L_exclusive));
    let tx2 = Tmf.begin_tx n.tmf in
    let c2 = xread_nowait n ~dpfile ~tx:tx2 (acct_key 0) in
    get_ok ~ctx:"commit tx1" (Tmf.commit n.tmf ~tx:tx1);
    (match reply_of (Msg.await n.msys c2) with
    | Dp_msg.Rp_record _ -> ()
    | _ -> Alcotest.fail "waiter not granted");
    get_ok ~ctx:"commit tx2" (Tmf.commit n.tmf ~tx:tx2);
    let rows =
      in_tx n (fun tx ->
          let sc =
            Fs.open_scan n.fs file ~tx ~access:Fs.A_vsbb ~range:full_range
              ~lock:Dp_msg.L_none ()
          in
          Ok (drain_scan n sc))
    in
    let encoded = List.map (Row.encode account_schema) rows in
    (Sim.now n.sim, Stats.to_assoc (Sim.stats n.sim), encoded)
  in
  let t_on, s_on, r_on = run true in
  let t_off, s_off, r_off = run false in
  Alcotest.(check (float 0.)) "bit-identical clock" t_on t_off;
  Alcotest.(check (list (pair string int))) "bit-identical counters" s_on
    s_off;
  Alcotest.(check (list string)) "bit-identical results" r_on r_off

let suite =
  suite
  @ [
      Alcotest.test_case "takeover preserves waiter FIFO" `Quick
        takeover_preserves_fifo_waiters;
      Alcotest.test_case "takeover keeps the wait budget counting" `Quick
        takeover_keeps_wait_budget;
      Alcotest.test_case "unreplicated takeover denies retryably" `Quick
        unreplicated_takeover_denies_retryably;
      Alcotest.test_case "no backup: Bad_request and double takeover" `Quick
        no_backup_regressions;
      Alcotest.test_case "replica is free when unused" `Quick
        replica_is_free_when_unused;
    ]

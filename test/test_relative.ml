(* Tests of ENSCRIBE relative-file operations through the full FS-DP
   message path, including transactional undo and crash recovery. *)

open Harness
module Dp_msg = Nsql_dp.Dp_msg
module Trail = Nsql_audit.Trail

let setup () =
  let n = node () in
  let dp = n.dps.(0) in
  let reply =
    Dp.request dp
      (Dp_msg.R_create_file
         { fname = "RELF"; kind = Dp_msg.K_relative 80; schema = None; check = None })
  in
  let file =
    match reply with
    | Dp_msg.Rp_file id -> id
    | _ -> Alcotest.fail "create failed"
  in
  (n, dp, file)

let expect_ok = function
  | Dp_msg.Rp_ok | Dp_msg.Rp_slot _ -> ()
  | Dp_msg.Rp_error e -> Alcotest.fail (Errors.to_string e)
  | _ -> Alcotest.fail "unexpected reply"

let rel_write_read_cycle () =
  let n, dp, file = setup () in
  in_tx n (fun tx ->
      expect_ok (Dp.request dp (Dp_msg.R_rel_write { file; tx; slot = 3; record = "three" }));
      expect_ok (Dp.request dp (Dp_msg.R_rel_write { file; tx; slot = 7; record = "seven" }));
      Ok ());
  in_tx n (fun tx ->
      (match Dp.request dp (Dp_msg.R_rel_read { file; tx; slot = 3 }) with
      | Dp_msg.Rp_record { record = "three"; _ } -> ()
      | _ -> Alcotest.fail "read slot 3");
      (match Dp.request dp (Dp_msg.R_rel_read { file; tx; slot = 4 }) with
      | Dp_msg.Rp_error (Errors.Not_found_key _) -> ()
      | _ -> Alcotest.fail "empty slot readable");
      expect_ok (Dp.request dp (Dp_msg.R_rel_rewrite { file; tx; slot = 7; record = "SEVEN" }));
      expect_ok (Dp.request dp (Dp_msg.R_rel_delete { file; tx; slot = 3 }));
      Ok ());
  Alcotest.(check int) "one slot occupied" 1 (Dp.record_count dp ~file)

let rel_double_write_rejected () =
  let n, dp, file = setup () in
  in_tx n (fun tx ->
      expect_ok (Dp.request dp (Dp_msg.R_rel_write { file; tx; slot = 1; record = "a" }));
      (match Dp.request dp (Dp_msg.R_rel_write { file; tx; slot = 1; record = "b" }) with
      | Dp_msg.Rp_error (Errors.Duplicate_key _) -> ()
      | _ -> Alcotest.fail "occupied slot overwritten");
      (match
         Dp.request dp
           (Dp_msg.R_rel_write { file; tx; slot = 2; record = String.make 200 'x' })
       with
      | Dp_msg.Rp_error (Errors.Bad_request _) -> ()
      | _ -> Alcotest.fail "oversized record accepted");
      Ok ())

let rel_abort_undoes () =
  let n, dp, file = setup () in
  in_tx n (fun tx ->
      expect_ok (Dp.request dp (Dp_msg.R_rel_write { file; tx; slot = 5; record = "keep" }));
      Ok ());
  let tx = Tmf.begin_tx n.tmf in
  expect_ok (Dp.request dp (Dp_msg.R_rel_rewrite { file; tx; slot = 5; record = "clobber" }));
  expect_ok (Dp.request dp (Dp_msg.R_rel_write { file; tx; slot = 6; record = "ghost" }));
  expect_ok (Dp.request dp (Dp_msg.R_rel_delete { file; tx; slot = 5 }));
  get_ok ~ctx:"abort" (Tmf.abort n.tmf ~tx);
  in_tx n (fun tx2 ->
      (match Dp.request dp (Dp_msg.R_rel_read { file; tx = tx2; slot = 5 }) with
      | Dp_msg.Rp_record { record = "keep"; _ } -> ()
      | Dp_msg.Rp_record { record; _ } -> Alcotest.fail ("slot 5 is " ^ record)
      | _ -> Alcotest.fail "slot 5 lost");
      (match Dp.request dp (Dp_msg.R_rel_read { file; tx = tx2; slot = 6 }) with
      | Dp_msg.Rp_error (Errors.Not_found_key _) -> ()
      | _ -> Alcotest.fail "aborted write survived");
      Ok ())

let rel_crash_recovery () =
  let n, dp, file = setup () in
  in_tx n (fun tx ->
      expect_ok (Dp.request dp (Dp_msg.R_rel_write { file; tx; slot = 0; record = "zero" }));
      expect_ok (Dp.request dp (Dp_msg.R_rel_write { file; tx; slot = 9; record = "nine" }));
      Ok ());
  in_tx n (fun tx ->
      expect_ok (Dp.request dp (Dp_msg.R_rel_rewrite { file; tx; slot = 9; record = "NINE" }));
      Ok ());
  Trail.force n.trail (Int64.pred (Trail.next_lsn n.trail));
  Dp.crash dp;
  ignore (Dp.recover dp);
  Alcotest.(check int) "slots recovered" 2 (Dp.record_count dp ~file);
  in_tx n (fun tx ->
      (match Dp.request dp (Dp_msg.R_rel_read { file; tx; slot = 9 }) with
      | Dp_msg.Rp_record { record = "NINE"; _ } -> ()
      | _ -> Alcotest.fail "rewrite lost in recovery");
      Ok ())

(* the same operations through the FS wrappers, i.e. the requester path
   an application (and PROTO-EXHAUST) sees *)
let fs_rel_and_entry_wrappers () =
  let n = node () in
  let ok ~ctx = function
    | Ok v -> v
    | Error e -> Alcotest.fail (ctx ^ ": " ^ Errors.to_string e)
  in
  let relf =
    ok ~ctx:"create rel"
      (Fs.create_enscribe_file n.fs ~fname:"RELW" ~kind:(Dp_msg.K_relative 80)
         ~partitions:[ { Fs.ps_lo = ""; ps_dp = n.dps.(0) } ])
  in
  let entf =
    ok ~ctx:"create entry"
      (Fs.create_enscribe_file n.fs ~fname:"ENTW" ~kind:Dp_msg.K_entry_sequenced
         ~partitions:[ { Fs.ps_lo = ""; ps_dp = n.dps.(0) } ])
  in
  let addr = ref (-1) in
  in_tx n (fun tx ->
      let slot = ok ~ctx:"rel_write" (Fs.rel_write n.fs relf ~tx ~slot:5 ~record:"five") in
      Alcotest.(check int) "slot echoed" 5 slot;
      Alcotest.(check string) "rel_read" "five"
        (ok ~ctx:"rel_read" (Fs.rel_read n.fs relf ~tx ~slot:5));
      ok ~ctx:"rel_rewrite" (Fs.rel_rewrite n.fs relf ~tx ~slot:5 ~record:"FIVE");
      Alcotest.(check string) "rewrite visible" "FIVE"
        (ok ~ctx:"rel_read2" (Fs.rel_read n.fs relf ~tx ~slot:5));
      ok ~ctx:"rel_delete" (Fs.rel_delete n.fs relf ~tx ~slot:5);
      (match Fs.rel_read n.fs relf ~tx ~slot:5 with
      | Error (Errors.Not_found_key _) -> ()
      | _ -> Alcotest.fail "deleted slot still readable");
      addr := ok ~ctx:"append_entry" (Fs.append_entry n.fs entf ~tx ~record:"logline");
      Ok ());
  in_tx n (fun tx ->
      Alcotest.(check string) "entry_read" "logline"
        (ok ~ctx:"entry_read" (Fs.entry_read n.fs entf ~tx ~addr:!addr));
      Ok ())

let suite =
  [
    Alcotest.test_case "relative write/read/rewrite/delete" `Quick
      rel_write_read_cycle;
    Alcotest.test_case "FS rel/entry wrappers" `Quick fs_rel_and_entry_wrappers;
    Alcotest.test_case "relative duplicate/oversize rejected" `Quick
      rel_double_write_rejected;
    Alcotest.test_case "relative abort undoes" `Quick rel_abort_undoes;
    Alcotest.test_case "relative crash recovery" `Quick rel_crash_recovery;
  ]

(* Integration tests of the File System: partition routing, secondary-index
   maintenance and access (Figure 2), multi-partition scans, requester-side
   fallbacks, blocked inserts. *)

open Harness
module Dp_msg = Nsql_dp.Dp_msg
module Stats = Nsql_sim.Stats
module Tracer = Nsql_sim.Tracer
module Trace = Nsql_trace.Trace

let partitioned_file () =
  let n = node ~dps:3 () in
  (* three partitions split at 100 and 200 *)
  let file = create_accounts ~parts:3 ~split:100 n in
  Alcotest.(check int) "three partitions" 3 (Fs.partition_count file);
  load_accounts n file 300;
  (* each record landed on the partition owning its key range *)
  Alcotest.(check int) "p1 rows" 100 (Dp.record_count n.dps.(0) ~file:(Option.get (Dp.file_id n.dps.(0) "ACCOUNT#p0")));
  Alcotest.(check int) "p2 rows" 100 (Dp.record_count n.dps.(1) ~file:(Option.get (Dp.file_id n.dps.(1) "ACCOUNT#p1")));
  Alcotest.(check int) "p3 rows" 100 (Dp.record_count n.dps.(2) ~file:(Option.get (Dp.file_id n.dps.(2) "ACCOUNT#p2")));
  (* point reads route to the right Disk Process *)
  in_tx n (fun tx ->
      let open Errors in
      let* r = Fs.read n.fs file ~tx ~key:(acct_key 250) ~lock:Dp_msg.L_none in
      let row = Row.decode_exn account_schema r in
      Alcotest.(check bool) "right record" true (Row.equal_value (Row.Vint 250) row.(0));
      Ok ())

let scan_across_partitions () =
  let n = node ~dps:3 () in
  let file = create_accounts ~parts:3 ~split:100 n in
  load_accounts n file 300;
  in_tx n (fun tx ->
      let sc =
        Fs.open_scan n.fs file ~tx ~access:Fs.A_vsbb
          ~range:full_range ~proj:[| 0 |] ~lock:Dp_msg.L_none ()
      in
      let rows = drain_scan n sc in
      Alcotest.(check int) "all rows across partitions" 300 (List.length rows);
      (* key order is preserved across the partition boundary *)
      let keys = List.map (fun r -> match r.(0) with Row.Vint i -> i | _ -> -1) rows in
      Alcotest.(check (list int)) "ordered" (List.init 300 (fun i -> i)) keys;
      Ok ())

let scan_subrange_crossing_boundary () =
  let n = node ~dps:2 () in
  let file = create_accounts ~parts:2 ~split:100 n in
  load_accounts n file 200;
  in_tx n (fun tx ->
      let range = Expr.{ lo = acct_key 90; hi = acct_key 110 } in
      let sc =
        Fs.open_scan n.fs file ~tx ~access:Fs.A_vsbb ~range ~proj:[| 0 |]
          ~lock:Dp_msg.L_none ()
      in
      let rows = drain_scan n sc in
      Alcotest.(check int) "20 rows" 20 (List.length rows);
      Ok ())

let with_branch_index () =
  (* schema with a non-key column to index: owner *)
  let n = node ~dps:2 () in
  let file =
    create_accounts ~parts:1 n
      ~indexes:[ Fs.{ is_name = "by_owner"; is_cols = [ 2 ]; is_dp = n.dps.(1) } ]
  in
  (n, file)

let index_maintained_on_insert () =
  let n, file = with_branch_index () in
  load_accounts n file 50;
  (* the index file holds one entry per base row, on the other volume *)
  let ix_file = Option.get (Dp.file_id n.dps.(1) "ACCOUNT#ix_by_owner") in
  Alcotest.(check int) "index entries" 50 (Dp.record_count n.dps.(1) ~file:ix_file)

let figure2_read_via_index () =
  let n, file = with_branch_index () in
  load_accounts n file 50;
  Trace.set_enabled n.sim true;
  let row =
    in_tx n (fun tx ->
        Fs.read_row_via_index n.fs file ~tx ~index:"by_owner"
          ~index_key:[ Row.Vstr "owner-0031" ])
  in
  Trace.set_enabled n.sim false;
  let trace = Trace.msg_spans (Trace.take n.sim) in
  (match row with
  | Some r -> Alcotest.(check bool) "right base row" true (Row.equal_value (Row.Vint 31) r.(0))
  | None -> Alcotest.fail "row not found via index");
  (* Figure 2: first a message to the index's DP, then one to the base DP
     (plus BEGIN/COMMIT traffic which goes to no DP endpoint here) *)
  let to_name sp =
    match Trace.attr sp "to" with Some (Trace.Str s) -> s | _ -> ""
  in
  let dp_msgs =
    List.filter
      (fun sp -> sp.Tracer.sp_name = "READ^NEXT" || sp.Tracer.sp_name = "READ")
      trace
  in
  Alcotest.(check int) "two FS-DP messages" 2 (List.length dp_msgs);
  (match dp_msgs with
  | [ first; second ] ->
      Alcotest.(check string) "index DP first" "$DATA2" (to_name first);
      Alcotest.(check string) "base DP second" "$DATA1" (to_name second)
  | _ -> Alcotest.fail "unexpected trace shape")

let index_maintained_on_update_delete () =
  let n, file = with_branch_index () in
  load_accounts n file 20;
  let ix_file = Option.get (Dp.file_id n.dps.(1) "ACCOUNT#ix_by_owner") in
  (* update an indexed column through the requester-side path *)
  in_tx n (fun tx ->
      Fs.update_row_via_key n.fs file ~tx ~key:(acct_key 7)
        [ { Expr.target = 2; source = Expr.str "renamed" } ]);
  let found =
    in_tx n (fun tx ->
        Fs.read_row_via_index n.fs file ~tx ~index:"by_owner"
          ~index_key:[ Row.Vstr "renamed" ])
  in
  (match found with
  | Some r -> Alcotest.(check bool) "found under new owner" true (Row.equal_value (Row.Vint 7) r.(0))
  | None -> Alcotest.fail "index not updated");
  let stale =
    in_tx n (fun tx ->
        Fs.read_row_via_index n.fs file ~tx ~index:"by_owner"
          ~index_key:[ Row.Vstr "owner-0007" ])
  in
  Alcotest.(check bool) "old entry gone" true (stale = None);
  (* delete maintains the index too *)
  in_tx n (fun tx -> Fs.delete_row_via_key n.fs file ~tx ~key:(acct_key 7));
  Alcotest.(check int) "index entry removed" 19 (Dp.record_count n.dps.(1) ~file:ix_file)

let update_subset_falls_back_when_indexed () =
  let n, file = with_branch_index () in
  load_accounts n file 30;
  (* updating the indexed column cannot be delegated; the FS falls back to
     read-modify-write plus index maintenance, and the result is correct *)
  let count =
    in_tx n (fun tx ->
        Fs.update_subset n.fs file ~tx ~range:full_range
          ~pred:Expr.(Cmp (Lt, Field 0, int_ 10))
          [ { Expr.target = 2; source = Expr.str "mass-renamed" } ])
  in
  Alcotest.(check int) "10 updated" 10 count;
  let found =
    in_tx n (fun tx ->
        Fs.read_row_via_index n.fs file ~tx ~index:"by_owner"
          ~index_key:[ Row.Vstr "mass-renamed" ])
  in
  Alcotest.(check bool) "reachable via index" true (found <> None)

let update_subset_delegated_when_not_indexed () =
  let n, file = with_branch_index () in
  load_accounts n file 30;
  let s = Sim.stats n.sim in
  let before = s.Stats.msgs_sent in
  (* balance is not indexed: the whole subset costs O(re-drives) messages,
     not O(records) *)
  let count =
    in_tx n (fun tx ->
        Fs.update_subset n.fs file ~tx ~range:full_range
          [ { Expr.target = 1; source = Expr.(Binop (Mul, Field 1, float_ 2.)) } ])
  in
  let msgs = s.Stats.msgs_sent - before in
  Alcotest.(check int) "30 updated" 30 count;
  Alcotest.(check bool)
    (Printf.sprintf "far fewer messages than records (%d)" msgs)
    true (msgs < 10)

let blocked_insert_fewer_messages () =
  let n = node () in
  let file_a = create_accounts n in
  let s = Sim.stats n.sim in
  (* per-record inserts *)
  let before = s.Stats.msgs_sent in
  in_tx n (fun tx ->
      let open Errors in
      let rec go i =
        if i >= 100 then Ok ()
        else
          let* () = Fs.insert_row n.fs file_a ~tx (account i 1. "x") in
          go (i + 1)
      in
      go 0);
  let per_record_msgs = s.Stats.msgs_sent - before in
  (* blocked inserts, 20 rows per message *)
  let n2 = node () in
  let file_b = create_accounts n2 in
  let s2 = Sim.stats n2.sim in
  let before = s2.Stats.msgs_sent in
  in_tx n2 (fun tx ->
      let open Errors in
      let buf = Fs.open_insert_buffer n2.fs file_b ~tx ~capacity:20 in
      let rec go i =
        if i >= 100 then Fs.flush_insert_buffer n2.fs buf
        else
          let* () = Fs.buffered_insert n2.fs buf (account i 1. "x") in
          go (i + 1)
      in
      go 0);
  let blocked_msgs = s2.Stats.msgs_sent - before in
  Alcotest.(check int) "rows all inserted" 100 (Fs.record_count n2.fs file_b);
  Alcotest.(check bool)
    (Printf.sprintf "blocked %d << per-record %d" blocked_msgs per_record_msgs)
    true
    (blocked_msgs * 10 <= per_record_msgs)

let index_scan_streams_base_rows () =
  let n, file = with_branch_index () in
  load_accounts n file 40;
  in_tx n (fun tx ->
      let open Errors in
      let ix_schema = get_ok ~ctx:"ixs" (Fs.index_schema file ~index:"by_owner") in
      (* range over the index: owners 0010..0019 (string prefix) *)
      let* lo = Row.key_of_values ix_schema [ Row.Vstr "owner-0010" ] in
      let* hi = Row.key_of_values ix_schema [ Row.Vstr "owner-0019" ] in
      let range = Expr.{ lo; hi = Keycode.successor (hi ^ "\xff") } in
      let* next, close =
        Fs.index_scan n.fs file ~tx ~index:"by_owner" ~range ~proj:[| 0 |]
          ~lock:Dp_msg.L_none ()
      in
      let rec go acc =
        let* row = next () in
        match row with None -> Ok (List.rev acc) | Some r -> go (r :: acc)
      in
      let res = go [] in
      close ();
      let* rows = res in
      Alcotest.(check int) "ten base rows" 10 (List.length rows);
      Ok ())

let suite =
  [
    Alcotest.test_case "partitioned file routing" `Quick partitioned_file;
    Alcotest.test_case "scan across partitions" `Quick scan_across_partitions;
    Alcotest.test_case "subrange scan over boundary" `Quick
      scan_subrange_crossing_boundary;
    Alcotest.test_case "index maintained on insert" `Quick
      index_maintained_on_insert;
    Alcotest.test_case "Figure 2: read via alternate key" `Quick
      figure2_read_via_index;
    Alcotest.test_case "index maintained on update/delete" `Quick
      index_maintained_on_update_delete;
    Alcotest.test_case "update subset: indexed fallback" `Quick
      update_subset_falls_back_when_indexed;
    Alcotest.test_case "update subset: delegated" `Quick
      update_subset_delegated_when_not_indexed;
    Alcotest.test_case "blocked insert message savings" `Quick
      blocked_insert_fewer_messages;
    Alcotest.test_case "index scan streams base rows" `Quick
      index_scan_streams_base_rows;
  ]

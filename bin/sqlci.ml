(* SQLCI — an interactive SQL conversational interface to the simulated
   node, in the spirit of Tandem's SQLCI utility.

   Run with: dune exec bin/sqlci.exe
   Or a script: dune exec bin/sqlci.exe -- --script setup.sql
   Backslash commands: \stats \reset \explain <sql> \tables \mode <m>
   \trace <sql> \profile <sql> \crash <i> \recover <i> \wisconsin <rows>
   \quit *)

module N = Nsql_core.Nonstop_sql
module Stats = Nsql_sim.Stats
module Msg = Nsql_msg.Msg
module Fs = Nsql_fs.Fs
module Errors = Nsql_util.Errors
module Trace = Nsql_trace.Trace
module Monitor = Nsql_monitor.Monitor
module Wisconsin = Nsql_workload.Wisconsin

let printf = Format.printf

type repl = { node : N.node; session : N.session; mutable baseline : Stats.t }

let show_error e = printf "error: %s@." (Errors.to_string e)

let run_sql repl sql =
  let result, delta = N.measure repl.node (fun () -> N.exec repl.session sql) in
  match result with
  | Ok r ->
      printf "%a@." N.pp_exec_result r;
      printf "-- %a@." Stats.pp_brief delta
  | Error e -> show_error e

(* run one statement with span collection on, returning the trace *)
let traced repl sql =
  let sim = N.sim repl.node in
  Trace.clear sim;
  Trace.set_enabled sim true;
  Fun.protect
    ~finally:(fun () -> Trace.set_enabled sim false)
    (fun () -> run_sql repl sql);
  Trace.take sim

let backslash repl line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "\\quit" ] | [ "\\q" ] -> raise Exit
  | [ "\\stats" ] ->
      let now = N.snapshot repl.node in
      printf "%a@." Stats.pp (Stats.diff ~before:repl.baseline ~after:now)
  | [ "\\reset" ] ->
      repl.baseline <- N.snapshot repl.node;
      printf "counters reset@."
  | [ "\\tables" ] ->
      List.iter (fun t -> printf "%s@." t)
        (N.Catalog.table_names (N.catalog repl.node))
  | "\\explain" :: rest ->
      (match N.explain repl.session (String.concat " " rest) with
      | Ok plan -> printf "%s@." plan
      | Error e -> show_error e)
  | [ "\\mode"; m ] ->
      (match m with
      | "record" -> N.set_access_mode repl.session (Some Fs.A_record)
      | "rsbb" -> N.set_access_mode repl.session (Some Fs.A_rsbb)
      | "vsbb" -> N.set_access_mode repl.session (Some Fs.A_vsbb)
      | "auto" -> N.set_access_mode repl.session None
      | _ -> printf "modes: record | rsbb | vsbb | auto@.");
      printf "access mode set@."
  | "\\trace" :: rest ->
      let spans = traced repl (String.concat " " rest) in
      List.iter
        (fun sp -> printf "  %a@." Trace.pp_msg_span sp)
        (Trace.msg_spans spans)
  | "\\profile" :: rest ->
      let spans = traced repl (String.concat " " rest) in
      printf "%a@." (fun ppf l -> Trace.pp_profile ppf l) spans
  | [ "\\crash"; i ] ->
      (match int_of_string_opt i with
      | Some i when i >= 0 && i < Array.length (N.dps repl.node) ->
          N.crash_volume repl.node i;
          printf "volume %d crashed (volatile state lost)@." i
      | _ -> printf "usage: \\crash <volume index>@.")
  | [ "\\recover"; i ] ->
      (match int_of_string_opt i with
      | Some i when i >= 0 && i < Array.length (N.dps repl.node) ->
          let o = N.recover_volume repl.node i in
          printf "%a@." Nsql_tmf.Recovery.pp_outcome o
      | _ -> printf "usage: \\recover <volume index>@.")
  | [ "\\wisconsin"; rows ] ->
      (match int_of_string_opt rows with
      | Some rows when rows > 0 -> (
          match Wisconsin.create repl.node ~name:"tenktup1" ~rows () with
          | Ok () -> printf "loaded tenktup1 (%d rows)@." rows
          | Error e -> show_error e)
      | _ -> printf "usage: \\wisconsin <rows>@.")
  | [ "\\monitor" ] -> printf "%a@." Monitor.pp_report (N.sim repl.node)
  | [ "\\monitor"; "reset" ] ->
      Monitor.clear (N.sim repl.node);
      printf "monitor cleared@."
  | [ "\\help" ] | _ ->
      printf
        "commands: \\stats \\reset \\tables \\explain <sql> \\mode \
         <record|rsbb|vsbb|auto> \\trace <sql> \\profile <sql> \\monitor \
         [reset] \\crash <i> \\recover <i> \\wisconsin <rows> \\quit@."

let feed repl line =
  let line = String.trim line in
  if line = "" then ()
  else if line.[0] = '\\' then backslash repl line
  else run_sql repl line

let repl_loop repl =
  printf "NonStop SQL reproduction — SQLCI. \\help for commands, \\quit to \
          exit.@.";
  try
    while true do
      printf ">> @?";
      match In_channel.input_line stdin with
      | None -> raise Exit
      | Some line -> feed repl line
    done
  with Exit -> printf "bye@."

let run_script repl path =
  let contents = In_channel.with_open_text path In_channel.input_all in
  match N.exec_script repl.session contents with
  | Ok results -> List.iter (fun r -> printf "%a@." N.pp_exec_result r) results
  | Error e -> show_error e

let main script volumes =
  let node = N.create_node ~volumes () in
  (* the monitor is free when idle and bit-identical when on, so the
     interactive session always collects — \monitor reads it *)
  Monitor.set_enabled (N.sim node) true;
  let repl = { node; session = N.session node; baseline = N.snapshot node } in
  match script with
  | Some path -> run_script repl path
  | None -> repl_loop repl

(* chaos subcommand: replay one seed of the deterministic chaos harness *)

module Chaos = Nsql_chaos.Chaos

let run_chaos seed txs plan_only topology =
  let topology =
    match topology with
    | Some "single" -> Some Chaos.Single
    | Some "cluster" -> Some Chaos.Cluster
    | Some t ->
        printf "unknown topology %S (single | cluster)@." t;
        exit 2
    | None -> None
  in
  if plan_only then begin
    printf "%a@." Chaos.pp_plan (Chaos.plan ~txs ?topology ~seed ());
    0
  end
  else begin
    let r = Chaos.run ~txs ?topology ~seed () in
    printf "%a@." Chaos.pp_report r;
    if r.Chaos.r_violations = [] then 0 else 1
  end

(* contend subcommand: replay one seed of the multi-terminal contention
   harness — DP lock wait queues, deadlock detection, victim abort *)

let run_contend seed terminals txs_per_terminal =
  let r = Chaos.run_contention ~terminals ~txs_per_terminal ~seed () in
  printf "%a@." Chaos.pp_contention_report r;
  if r.Chaos.n_violations = [] then 0 else 1

(* trace subcommand: run one statement with spans on, export Chrome JSON.
   The simulation is deterministic, so the output is byte-identical across
   runs of the same command line. *)

let run_trace sql out wisconsin volumes =
  let node = N.create_node ~volumes () in
  let session = N.session node in
  (if wisconsin > 0 then
     match Wisconsin.create node ~name:"tenktup1" ~rows:wisconsin () with
     | Ok () -> ()
     | Error e ->
         show_error e;
         exit 2);
  let sim = N.sim node in
  Trace.set_enabled sim true;
  Monitor.set_enabled sim true;
  let status =
    match N.exec session sql with
    | Ok r ->
        printf "%a@." N.pp_exec_result r;
        0
    | Error e ->
        show_error e;
        1
  in
  Trace.set_enabled sim false;
  let spans = Trace.take sim in
  let counters = Monitor.chrome_counters (N.sim node |> Nsql_sim.Sim.moncore) in
  let json = Trace.chrome_json ~counters [ spans ] in
  Out_channel.with_open_text out (fun oc -> Out_channel.output_string oc json);
  printf "wrote %s (%d spans)@." out (List.length spans);
  status

open Cmdliner

let script =
  let doc = "Execute the SQL script at $(docv) instead of the interactive loop." in
  Arg.(value & opt (some string) None & info [ "script" ] ~docv:"FILE" ~doc)

let volumes =
  let doc = "Number of disk volumes (Disk Processes) for the node." in
  Arg.(value & opt int 2 & info [ "volumes" ] ~docv:"N" ~doc)

let repl_cmd =
  let doc = "interactive SQL interface to the simulated Tandem node" in
  Cmd.v (Cmd.info "repl" ~doc)
    Term.(const (fun s v -> main s v; 0) $ script $ volumes)

let seed =
  let doc = "Fault-plan seed to replay." in
  Arg.(required & pos 0 (some int) None & info [] ~docv:"SEED" ~doc)

let txs =
  let doc = "Number of workload transactions to drive." in
  Arg.(value & opt int 120 & info [ "txs" ] ~docv:"N" ~doc)

let plan_only =
  let doc = "Print the materialized fault plan without running it." in
  Arg.(value & flag & info [ "plan" ] ~doc)

let topology =
  let doc = "Force the topology: $(b,single) or $(b,cluster) \
             (default: derived from the seed)." in
  Arg.(value & opt (some string) None & info [ "topology" ] ~docv:"T" ~doc)

let chaos_cmd =
  let doc = "replay a deterministic chaos run and verify ACID vs the oracle" in
  Cmd.v
    (Cmd.info "chaos" ~doc)
    Term.(const run_chaos $ seed $ txs $ plan_only $ topology)

let terminals =
  let doc = "Number of concurrent terminal state machines." in
  Arg.(value & opt int 4 & info [ "terminals" ] ~docv:"N" ~doc)

let txs_per_terminal =
  let doc = "Transfers each terminal must commit." in
  Arg.(value & opt int 10 & info [ "txs" ] ~docv:"N" ~doc)

let contend_cmd =
  let doc =
    "replay a deterministic multi-terminal contention run (DP lock wait \
     queues, deadlock detection, victim abort) and verify balances"
  in
  Cmd.v
    (Cmd.info "contend" ~doc)
    Term.(const run_contend $ seed $ terminals $ txs_per_terminal)

let trace_sql =
  let doc = "SQL statement to trace." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)

let trace_out =
  let doc = "Write the Chrome trace-event JSON to $(docv)." in
  Arg.(value & opt string "trace.json" & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let trace_wisconsin =
  let doc = "Load a Wisconsin table $(b,tenktup1) with $(docv) rows first." in
  Arg.(value & opt int 1000 & info [ "wisconsin" ] ~docv:"ROWS" ~doc)

let trace_cmd =
  let doc = "trace one statement and export Chrome trace-event JSON" in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run_trace $ trace_sql $ trace_out $ trace_wisconsin $ volumes)

let cmd =
  let doc = "interactive SQL interface to the simulated Tandem node" in
  Cmd.group
    ~default:Term.(const (fun s v -> main s v; 0) $ script $ volumes)
    (Cmd.info "sqlci" ~doc)
    [ repl_cmd; chaos_cmd; contend_cmd; trace_cmd ]

let () = exit (Cmd.eval' cmd)

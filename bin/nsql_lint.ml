(* nsql-lint: static analysis over the repository's own sources.

   Usage: nsql_lint [--allow FILE] [--no-allow] [DIR-or-FILE ...]

   Parses every .ml under the given roots (default: lib) with
   compiler-libs and enforces the determinism / protocol / lock-discipline
   rules described in DESIGN.md §6. Exit code 1 on any unsuppressed
   finding or stale allowlist entry. *)

module Engine = Nsql_lint_lib.Engine
module Allow = Nsql_lint_lib.Allow
module Diag = Nsql_lint_lib.Diag

let () =
  let allow_path = ref "lint/allow.sexp" in
  let no_allow = ref false in
  let roots = ref [] in
  let spec =
    [
      ( "--allow",
        Arg.Set_string allow_path,
        "FILE allowlist of audited exceptions (default lint/allow.sexp)" );
      ("--no-allow", Arg.Set no_allow, " ignore the allowlist entirely");
    ]
  in
  let usage = "nsql_lint [--allow FILE] [--no-allow] [DIR-or-FILE ...]" in
  Arg.parse spec (fun root -> roots := root :: !roots) usage;
  let roots = match List.rev !roots with [] -> [ "lib" ] | rs -> rs in
  let allow_file =
    if !no_allow then None
    else if Sys.file_exists !allow_path then Some !allow_path
    else None
  in
  let report = Engine.run ~allow_file ~roots () in
  List.iter (fun d -> print_endline (Diag.to_string d)) report.Engine.diags;
  List.iter
    (fun e ->
      Printf.printf "%s:0:0 [ALLOW-STALE] allowlist entry %s matched nothing\n"
        !allow_path (Allow.describe e))
    report.Engine.stale_allows;
  let findings = List.length report.Engine.diags in
  let stale = List.length report.Engine.stale_allows in
  Printf.eprintf "nsql-lint: %d files scanned, %d findings (%d suppressed)%s\n"
    report.Engine.files_scanned findings report.Engine.suppressed
    (if stale > 0 then Printf.sprintf ", %d stale allow entries" stale else "");
  exit (if findings > 0 || stale > 0 then 1 else 0)

(* nsql-lint: static analysis over the repository's own sources.

   Usage: nsql_lint [--allow FILE] [--no-allow] [--rule R1,R2] [--json]
                    [--list-rules] [DIR-or-FILE ...]

   Parses every .ml under the given roots (default: lib) with
   compiler-libs and enforces the determinism / protocol / lock-discipline
   / effect rules described in DESIGN.md §5. Exit code 1 on any
   unsuppressed finding or stale allowlist entry, 2 on usage errors. *)

module Engine = Nsql_lint_lib.Engine
module Allow = Nsql_lint_lib.Allow
module Diag = Nsql_lint_lib.Diag

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* machine-readable report: findings and stale entries in the same stable
   order the text output uses, so CI can diff artifacts byte-for-byte *)
let print_json (report : Engine.report) =
  let finding (d : Diag.t) =
    Printf.sprintf
      "    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": %d, \
       \"msg\": \"%s\"}"
      (json_escape d.Diag.rule) (json_escape d.Diag.file) d.Diag.line
      d.Diag.col (json_escape d.Diag.msg)
  in
  let stale (e : Allow.entry) =
    Printf.sprintf "    {\"entry\": \"%s\"}" (json_escape (Allow.describe e))
  in
  print_string "{\n";
  Printf.printf "  \"files_scanned\": %d,\n" report.Engine.files_scanned;
  Printf.printf "  \"suppressed\": %d,\n" report.Engine.suppressed;
  Printf.printf "  \"findings\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map finding report.Engine.diags));
  Printf.printf "  \"stale_allows\": [\n%s\n  ]\n"
    (String.concat ",\n" (List.map stale report.Engine.stale_allows));
  print_string "}\n"

let () =
  let allow_path = ref "lint/allow.sexp" in
  let no_allow = ref false in
  let json = ref false in
  let list_rules = ref false in
  let rule_csv = ref "" in
  let roots = ref [] in
  let spec =
    [
      ( "--allow",
        Arg.Set_string allow_path,
        "FILE allowlist of audited exceptions (default lint/allow.sexp)" );
      ("--no-allow", Arg.Set no_allow, " ignore the allowlist entirely");
      ( "--rule",
        Arg.Set_string rule_csv,
        "R1,R2 run only the named rules (default: all)" );
      ("--json", Arg.Set json, " emit the report as JSON on stdout");
      ("--list-rules", Arg.Set list_rules, " print the rule table and exit");
    ]
  in
  let usage =
    "nsql_lint [--allow FILE] [--no-allow] [--rule R1,R2] [--json] \
     [--list-rules] [DIR-or-FILE ...]"
  in
  Arg.parse spec (fun root -> roots := root :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun (name, doc) -> Printf.printf "%-14s %s\n" name doc)
      Engine.registry;
    exit 0
  end;
  let rules =
    if String.equal !rule_csv "" then None
    else begin
      let names =
        List.filter
          (fun s -> not (String.equal s ""))
          (String.split_on_char ',' !rule_csv)
      in
      List.iter
        (fun name ->
          if not (Engine.known_rule name) then begin
            Printf.eprintf
              "nsql-lint: unknown rule %s (see --list-rules)\n" name;
            exit 2
          end)
        names;
      Some names
    end
  in
  let roots = match List.rev !roots with [] -> [ "lib" ] | rs -> rs in
  let allow_file =
    if !no_allow then None
    else if Sys.file_exists !allow_path then Some !allow_path
    else None
  in
  let report = Engine.run ~allow_file ~rules ~roots () in
  if !json then print_json report
  else begin
    List.iter (fun d -> print_endline (Diag.to_string d)) report.Engine.diags;
    List.iter
      (fun e ->
        Printf.printf
          "%s:0:0 [ALLOW-STALE] allowlist entry %s matched nothing\n"
          !allow_path (Allow.describe e))
      report.Engine.stale_allows
  end;
  let findings = List.length report.Engine.diags in
  let stale = List.length report.Engine.stale_allows in
  Printf.eprintf "nsql-lint: %d files scanned, %d findings (%d suppressed)%s\n"
    report.Engine.files_scanned findings report.Engine.suppressed
    (if stale > 0 then Printf.sprintf ", %d stale allow entries" stale else "");
  exit (if findings > 0 || stale > 0 then 1 else 0)

module Row = Nsql_row.Row

module Smap = Map.Make (String)

type keyed_file = {
  kf_schema : Row.schema;
  kf_indexes : (string * int list) list;
  mutable kf_rows : Row.row Smap.t;  (** encoded primary key -> row *)
}

type entry_file = { mutable ef_entries : string list (** reversed *) }

type file_state = F_keyed of keyed_file | F_entry of entry_file

type t = { files : (string, file_state) Hashtbl.t }

let create () = { files = Hashtbl.create 8 }

let add_file t ~name ~schema ~indexes =
  Hashtbl.replace t.files name
    (F_keyed { kf_schema = schema; kf_indexes = indexes; kf_rows = Smap.empty })

let add_entry_file t ~name =
  Hashtbl.replace t.files name (F_entry { ef_entries = [] })

let keyed t file =
  match Hashtbl.find_opt t.files file with
  | Some (F_keyed kf) -> kf
  | Some (F_entry _) ->
      invalid_arg (Printf.sprintf "Oracle: %s is entry-sequenced" file)
  | None -> invalid_arg (Printf.sprintf "Oracle: unknown file %s" file)

let entry t file =
  match Hashtbl.find_opt t.files file with
  | Some (F_entry ef) -> ef
  | Some (F_keyed _) ->
      invalid_arg (Printf.sprintf "Oracle: %s is key-sequenced" file)
  | None -> invalid_arg (Printf.sprintf "Oracle: unknown file %s" file)

let row_count t ~file = Smap.cardinal (keyed t file).kf_rows

let rows t ~file = Smap.bindings (keyed t file).kf_rows

let entries t ~file = List.rev (entry t file).ef_entries

let lookup t ~file ~key = Smap.find_opt key (keyed t file).kf_rows

let float_sum t ~file ~col =
  Smap.fold
    (fun _ row acc ->
      match row.(col) with Row.Vfloat f -> acc +. f | _ -> acc)
    (keyed t file).kf_rows 0.

(* --- transaction views -------------------------------------------------- *)

type op =
  | O_insert of string * string * Row.row
  | O_update of string * string * Row.row
  | O_delete of string * string
  | O_append of string * string

type view = {
  v_oracle : t;
  mutable v_ops : op list;  (** reversed *)
  v_overlay : (string * string, Row.row option) Hashtbl.t;
      (** (file, key) -> Some row (present) / None (deleted) *)
}

let view t = { v_oracle = t; v_ops = []; v_overlay = Hashtbl.create 16 }

let v_lookup v ~file ~key =
  match Hashtbl.find_opt v.v_overlay (file, key) with
  | Some state -> state
  | None -> lookup v.v_oracle ~file ~key

let key_of v ~file row = Row.key_of_row (keyed v.v_oracle file).kf_schema row

let v_insert v ~file row =
  let key = key_of v ~file row in
  if v_lookup v ~file ~key <> None then
    invalid_arg (Printf.sprintf "Oracle.v_insert: duplicate key in %s" file);
  Hashtbl.replace v.v_overlay (file, key) (Some row);
  v.v_ops <- O_insert (file, key, row) :: v.v_ops

let v_update v ~file row =
  let key = key_of v ~file row in
  if v_lookup v ~file ~key = None then
    invalid_arg (Printf.sprintf "Oracle.v_update: missing key in %s" file);
  Hashtbl.replace v.v_overlay (file, key) (Some row);
  v.v_ops <- O_update (file, key, row) :: v.v_ops

let v_delete v ~file ~key =
  if v_lookup v ~file ~key = None then
    invalid_arg (Printf.sprintf "Oracle.v_delete: missing key in %s" file);
  Hashtbl.replace v.v_overlay (file, key) None;
  v.v_ops <- O_delete (file, key) :: v.v_ops

let v_append v ~file ~record =
  ignore (entry v.v_oracle file);
  v.v_ops <- O_append (file, record) :: v.v_ops

let commit t v =
  List.iter
    (fun op ->
      match op with
      | O_insert (file, key, row) | O_update (file, key, row) ->
          let kf = keyed t file in
          kf.kf_rows <- Smap.add key row kf.kf_rows
      | O_delete (file, key) ->
          let kf = keyed t file in
          kf.kf_rows <- Smap.remove key kf.kf_rows
      | O_append (file, record) ->
          let ef = entry t file in
          ef.ef_entries <- record :: ef.ef_entries)
    (List.rev v.v_ops)

(* --- end-of-run checks --------------------------------------------------- *)

let pp_row row = Format.asprintf "%a" Row.pp_row row

let check_file t ~file ~actual =
  let kf = keyed t file in
  let expected = Smap.bindings kf.kf_rows in
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let rec walk exp act =
    match (exp, act) with
    | [], [] -> ()
    | (k, row) :: exp', [] ->
        add "%s: durability: committed row %s (key %S) lost" file (pp_row row) k;
        walk exp' []
    | [], (k, row) :: act' ->
        add "%s: atomicity: uncommitted row %s (key %S) visible" file
          (pp_row row) k;
        walk [] act'
    | (ke, re) :: exp', (ka, ra) :: act' ->
        let c = String.compare ke ka in
        if c = 0 then begin
          if not (Row.equal_row re ra) then
            add "%s: key %S holds %s, oracle expects %s" file ka (pp_row ra)
              (pp_row re);
          walk exp' act'
        end
        else if c < 0 then begin
          add "%s: durability: committed row %s (key %S) lost" file (pp_row re)
            ke;
          walk exp' act
        end
        else begin
          add "%s: atomicity: uncommitted row %s (key %S) visible" file
            (pp_row ra) ka;
          walk exp act'
        end
  in
  walk expected actual;
  List.rev !violations

let check_entries t ~file ~actual =
  let expected = entries t ~file in
  if List.length expected <> List.length actual then
    [
      Printf.sprintf "%s: %d committed entries, %d found" file
        (List.length expected) (List.length actual);
    ]
  else
    List.concat
      (List.mapi
         (fun i (e, a) ->
           if String.equal e a then []
           else [ Printf.sprintf "%s: entry %d is %S, oracle expects %S" file i a e ])
         (List.combine expected actual))

let check_index t ~file ~index ~actual =
  let kf = keyed t file in
  let cols =
    match List.assoc_opt index kf.kf_indexes with
    | Some cols -> cols
    | None ->
        invalid_arg (Printf.sprintf "Oracle: unknown index %s on %s" index file)
  in
  (* the index scan returns base rows ordered by (index columns, primary
     key); derive the same ordering from the committed base rows *)
  let expected =
    List.stable_sort
      (fun (ka, a) (kb, b) ->
        let rec cmp = function
          | [] -> String.compare ka kb
          | c :: rest ->
              let d = Row.compare_value a.(c) b.(c) in
              if d <> 0 then d else cmp rest
        in
        cmp cols)
      (Smap.bindings kf.kf_rows)
    |> List.map snd
  in
  if List.length expected <> List.length actual then
    [
      Printf.sprintf "%s.%s: index scan returned %d rows, oracle expects %d"
        file index (List.length actual) (List.length expected);
    ]
  else
    List.concat
      (List.mapi
         (fun i (e, a) ->
           if Row.equal_row e a then []
           else
             [
               Printf.sprintf "%s.%s: position %d is %s, oracle expects %s" file
                 index i (pp_row a) (pp_row e);
             ])
         (List.combine expected actual))

(** The transactional oracle: a serial in-memory reference model.

    The chaos harness runs a workload against the simulated node while
    faults fire; this module maintains what the database {e should}
    contain, applying only the transactions the harness saw commit. After
    the fault schedule and recovery, the real system's state is dumped and
    compared against the oracle, which checks the ACID end-to-end
    properties:

    - {b atomicity}: no effect of an aborted or in-flight transaction is
      visible;
    - {b durability}: every committed write survives crash + recovery;
    - {b consistency}: secondary indices agree with their base files, and
      workload invariants (balance conservation) hold.

    The model is deliberately simple — a sorted map per key-sequenced
    file, an append list per entry-sequenced file, and an index shadow
    derived from the base rows — so that it is obviously correct. *)

module Row = Nsql_row.Row

type t

val create : unit -> t

(** [add_file t ~name ~schema ~indexes] registers a key-sequenced SQL
    file. [indexes] lists (index name, base-file key column numbers). *)
val add_file :
  t -> name:string -> schema:Row.schema -> indexes:(string * int list) list ->
  unit

(** [add_entry_file t ~name] registers an entry-sequenced (history) file. *)
val add_entry_file : t -> name:string -> unit

(** {1 Committed state} *)

val row_count : t -> file:string -> int

(** [rows t ~file] is the committed contents in primary-key order. *)
val rows : t -> file:string -> (string * Row.row) list

(** [entries t ~file] is the committed append-order contents. *)
val entries : t -> file:string -> string list

val lookup : t -> file:string -> key:string -> Row.row option

(** [float_sum t ~file ~col] sums a float column over the committed rows —
    balance-conservation checks. *)
val float_sum : t -> file:string -> col:int -> float

(** {1 Transaction views}

    A view buffers one transaction's intended effects on top of the
    committed state. The harness mirrors every operation it performs into
    the view; if the transaction commits, the view is folded into the
    committed state, otherwise it is dropped. *)

type view

val view : t -> view

(** [v_lookup v ~file ~key] reads through the overlay then the committed
    state. *)
val v_lookup : view -> file:string -> key:string -> Row.row option

(** [v_insert v ~file row] records an insert. Raises [Invalid_argument] if
    the key is already present in the view — the harness must only mirror
    operations that succeeded on the real system. *)
val v_insert : view -> file:string -> Row.row -> unit

(** [v_update v ~file row] records a full-row rewrite (same primary key). *)
val v_update : view -> file:string -> Row.row -> unit

val v_delete : view -> file:string -> key:string -> unit

val v_append : view -> file:string -> record:string -> unit

(** [commit t v] folds the view into the committed state. *)
val commit : t -> view -> unit

(** {1 End-of-run checks}

    Each check returns human-readable violation descriptions; an empty
    list means the property holds. [actual] arguments are dumps of the
    real system's post-recovery state obtained through ordinary scans. *)

(** [check_file t ~file ~actual] compares a key-sequenced file dump
    (primary-key order) against the committed model: missing rows are
    durability violations, extra rows are atomicity violations. *)
val check_file :
  t -> file:string -> actual:(string * Row.row) list -> string list

(** [check_entries t ~file ~actual] compares an entry-sequenced dump in
    address order. *)
val check_entries : t -> file:string -> actual:string list -> string list

(** [check_index t ~file ~index ~actual] compares the base rows returned
    by a full index scan against the model ordered by (index columns,
    primary key): orphaned or missing index entries and wrong ordering all
    surface here. *)
val check_index :
  t -> file:string -> index:string -> actual:Row.row list -> string list

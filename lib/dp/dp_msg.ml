module Row = Nsql_row.Row
module Expr = Nsql_expr.Expr
module Codec = Nsql_util.Codec
module Errors = Nsql_util.Errors

type buffered_op = Ob_update of Expr.assignment list | Ob_delete

type lock_mode = L_none | L_shared | L_exclusive

let pp_lock_mode ppf = function
  | L_none -> Format.pp_print_string ppf "none"
  | L_shared -> Format.pp_print_string ppf "S"
  | L_exclusive -> Format.pp_print_string ppf "X"

type buffering = B_rsbb | B_vsbb

type file_kind_spec = K_key_sequenced | K_relative of int | K_entry_sequenced

(* --- aggregate pushdown ------------------------------------------------- *)

(* The Disk Process evaluates COUNT/SUM/MIN/MAX/AVG at the source and
   ships accumulator state instead of rows. One accumulator carries every
   kind's partial state so that merging partials from several partitions
   (or several re-drives) is uniform. *)

type agg_kind = Agg_count_star | Agg_count | Agg_sum | Agg_min | Agg_max | Agg_avg

type agg_spec = {
  ag_kind : agg_kind;
  ag_arg : Expr.t option;  (** [None] only for [Agg_count_star] *)
}

type agg_acc = {
  mutable aa_count : int;  (** non-Null inputs seen (all rows for [*]) *)
  mutable aa_sum_i : int;
  mutable aa_sum_f : float;
  mutable aa_saw_float : bool;
  mutable aa_min : Row.value;  (** [Null] while no input seen *)
  mutable aa_max : Row.value;
}

let fresh_acc () =
  {
    aa_count = 0;
    aa_sum_i = 0;
    aa_sum_f = 0.;
    aa_saw_float = false;
    aa_min = Row.Null;
    aa_max = Row.Null;
  }

let feed_acc acc (v : Row.value) =
  match v with
  | Row.Null -> ()
  | v ->
      acc.aa_count <- acc.aa_count + 1;
      (match v with
      | Row.Vint n -> acc.aa_sum_i <- acc.aa_sum_i + n
      | Row.Vfloat f ->
          acc.aa_sum_f <- acc.aa_sum_f +. f;
          acc.aa_saw_float <- true
      | _ -> ());
      (match acc.aa_min with
      | Row.Null -> acc.aa_min <- v
      | m -> if Row.compare_value v m < 0 then acc.aa_min <- v);
      (match acc.aa_max with
      | Row.Null -> acc.aa_max <- v
      | m -> if Row.compare_value v m > 0 then acc.aa_max <- v)

let feed_spec acc spec row =
  match (spec.ag_kind, spec.ag_arg) with
  | Agg_count_star, _ -> acc.aa_count <- acc.aa_count + 1
  | _, Some e -> feed_acc acc (Expr.eval row e)
  | _, None -> ()

(* [feed_spec] with the kind/argument dispatch hoisted out of the
   per-row path; batch loops resolve it once per query *)
let feeder spec =
  match (spec.ag_kind, spec.ag_arg) with
  | Agg_count_star, _ -> fun acc _row -> acc.aa_count <- acc.aa_count + 1
  | _, Some e -> fun acc row -> feed_acc acc (Expr.eval row e)
  | _, None -> fun _acc _row -> ()

let merge_acc ~into acc =
  into.aa_count <- into.aa_count + acc.aa_count;
  into.aa_sum_i <- into.aa_sum_i + acc.aa_sum_i;
  into.aa_sum_f <- into.aa_sum_f +. acc.aa_sum_f;
  into.aa_saw_float <- into.aa_saw_float || acc.aa_saw_float;
  (match acc.aa_min with
  | Row.Null -> ()
  | v -> (
      match into.aa_min with
      | Row.Null -> into.aa_min <- v
      | m -> if Row.compare_value v m < 0 then into.aa_min <- v));
  match acc.aa_max with
  | Row.Null -> ()
  | v -> (
      match into.aa_max with
      | Row.Null -> into.aa_max <- v
      | m -> if Row.compare_value v m > 0 then into.aa_max <- v)

let finish_acc kind acc : Row.value =
  match kind with
  | Agg_count_star | Agg_count -> Row.Vint acc.aa_count
  | Agg_sum ->
      if acc.aa_count = 0 then Row.Null
      else if acc.aa_saw_float then
        Row.Vfloat (acc.aa_sum_f +. float_of_int acc.aa_sum_i)
      else Row.Vint acc.aa_sum_i
  | Agg_min -> acc.aa_min
  | Agg_max -> acc.aa_max
  | Agg_avg ->
      if acc.aa_count = 0 then Row.Null
      else
        Row.Vfloat
          ((acc.aa_sum_f +. float_of_int acc.aa_sum_i)
          /. float_of_int acc.aa_count)

type request =
  | R_create_file of {
      fname : string;
      kind : file_kind_spec;
      schema : Row.schema option;
      check : Expr.t option;
    }
  | R_read of { file : int; tx : int; key : string; lock : lock_mode }
  | R_read_next of {
      file : int;
      tx : int;
      from_key : string;
      inclusive : bool;
      lock : lock_mode;
      sbb : bool;
    }
  | R_insert of { file : int; tx : int; key : string; record : string }
  | R_update of { file : int; tx : int; key : string; record : string }
  | R_delete of { file : int; tx : int; key : string }
  | R_lock_file of { file : int; tx : int; lock : lock_mode }
  | R_lock_generic of { file : int; tx : int; prefix : string; lock : lock_mode }
  | R_rel_read of { file : int; tx : int; slot : int }
  | R_rel_write of { file : int; tx : int; slot : int; record : string }
  | R_rel_rewrite of { file : int; tx : int; slot : int; record : string }
  | R_rel_delete of { file : int; tx : int; slot : int }
  | R_entry_append of { file : int; tx : int; record : string }
  | R_entry_read of { file : int; tx : int; addr : int }
  | R_get_first of {
      file : int;
      tx : int;
      buffering : buffering;
      range : Expr.key_range;
      pred : Expr.t option;
      proj : int array option;
      lock : lock_mode;
    }
  | R_get_next of { file : int; tx : int; scb : int; after_key : string }
  | R_update_subset_first of {
      file : int;
      tx : int;
      range : Expr.key_range;
      pred : Expr.t option;
      assignments : Expr.assignment list;
    }
  | R_update_subset_next of { file : int; tx : int; scb : int; after_key : string }
  | R_delete_subset_first of {
      file : int;
      tx : int;
      range : Expr.key_range;
      pred : Expr.t option;
    }
  | R_delete_subset_next of { file : int; tx : int; scb : int; after_key : string }
  | R_insert_row of { file : int; tx : int; row : Row.row }
  | R_insert_block of { file : int; tx : int; rows : Row.row list }
  | R_apply_block of { file : int; tx : int; ops : (string * buffered_op) list }
  | R_close_scb of { scb : int }
  | R_agg_first of {
      file : int;
      tx : int;
      range : Expr.key_range;
      pred : Expr.t option;
      group_keys : int array;
      aggs : agg_spec list;
      lock : lock_mode;
    }
  | R_agg_next of { file : int; tx : int; scb : int; after_key : string }
  | R_record_count of { file : int }

type reply =
  | Rp_ok
  | Rp_file of int
  | Rp_record of { key : string; record : string }
  | Rp_row of Row.row
  | Rp_slot of int
  | Rp_block of {
      entries : (string * string) list;
      last_key : string;
      more : bool;
      scb : int;
    }
  | Rp_vblock of { rows : Row.row list; last_key : string; more : bool; scb : int }
  | Rp_progress of { processed : int; last_key : string; more : bool; scb : int }
  | Rp_end
  | Rp_blocked of {
      blockers : int list;
      processed : int;
      last_key : string;
      scb : int;
    }
  | Rp_agg of {
      groups : (Row.row * agg_acc list) list;
      last_key : string;
      more : bool;
      scb : int;
    }
  | Rp_error of Errors.t

let tag = function
  | R_create_file _ -> "CREATE^FILE"
  | R_read _ -> "READ"
  | R_read_next { sbb = true; _ } -> "READ^NEXT^SBB"
  | R_read_next _ -> "READ^NEXT"
  | R_insert _ -> "WRITE"
  | R_update _ -> "UPDATE"
  | R_delete _ -> "DELETE"
  | R_lock_file _ -> "LOCKFILE"
  | R_lock_generic _ -> "LOCKGENERIC"
  | R_rel_read _ -> "REL^READ"
  | R_rel_write _ -> "REL^WRITE"
  | R_rel_rewrite _ -> "REL^REWRITE"
  | R_rel_delete _ -> "REL^DELETE"
  | R_entry_append _ -> "ENTRY^APPEND"
  | R_entry_read _ -> "ENTRY^READ"
  | R_get_first { buffering = B_vsbb; _ } -> "GET^FIRST^VSBB"
  | R_get_first { buffering = B_rsbb; _ } -> "GET^FIRST^RSBB"
  | R_get_next _ -> "GET^NEXT"
  | R_update_subset_first _ -> "UPDATE^SUBSET^FIRST"
  | R_update_subset_next _ -> "UPDATE^SUBSET^NEXT"
  | R_delete_subset_first _ -> "DELETE^SUBSET^FIRST"
  | R_delete_subset_next _ -> "DELETE^SUBSET^NEXT"
  | R_insert_row _ -> "INSERT^ROW"
  | R_insert_block _ -> "INSERT^BLOCK"
  | R_apply_block _ -> "APPLY^BLOCK"
  | R_close_scb _ -> "CLOSE^SCB"
  | R_agg_first _ -> "AGGREGATE^FIRST"
  | R_agg_next _ -> "AGGREGATE^NEXT"
  | R_record_count _ -> "RECORD^COUNT"

let is_mutation = function
  | R_insert _ | R_update _ | R_delete _ | R_rel_write _ | R_rel_rewrite _
  | R_rel_delete _ | R_entry_append _ | R_update_subset_first _
  | R_update_subset_next _ | R_delete_subset_first _ | R_delete_subset_next _
  | R_insert_row _ | R_insert_block _ | R_apply_block _ | R_create_file _ ->
      true
  | R_read _ | R_read_next _ | R_lock_file _ | R_lock_generic _
  | R_get_first _ | R_get_next _
  | R_close_scb _ | R_rel_read _ | R_entry_read _
  | R_agg_first _ | R_agg_next _ | R_record_count _ ->
      false

(* --- decode errors ------------------------------------------------------- *)

(* A malformed payload is a peer bug or corruption, not a caller error:
   decoding returns [result] so the transport layer can answer with a
   protocol-level error instead of unwinding the process. *)
type decode_error =
  | Bad_tag of { field : string; tag : int }
  | Truncated

let decode_error_to_string = function
  | Bad_tag { field; tag } -> Printf.sprintf "bad %s tag %d" field tag
  | Truncated -> "truncated payload"

(* internal: unwinds the recursive-descent decoders; callers only ever
   see the [result] *)
exception Bad_tag_exn of string * int

let bad_tag field tag = raise (Bad_tag_exn (field, tag))

(* --- primitive codecs --------------------------------------------------- *)

let w_lock w = function
  | L_none -> Codec.w_u8 w 0
  | L_shared -> Codec.w_u8 w 1
  | L_exclusive -> Codec.w_u8 w 2

let r_lock r =
  match Codec.r_u8 r with
  | 0 -> L_none
  | 1 -> L_shared
  | 2 -> L_exclusive
  | n -> bad_tag "lock mode" n

let w_range w (range : Expr.key_range) =
  Codec.w_bytes w range.Expr.lo;
  Codec.w_bytes w range.Expr.hi

let r_range r =
  let lo = Codec.r_bytes r in
  let hi = Codec.r_bytes r in
  Expr.{ lo; hi }

let w_opt w f = function
  | None -> Codec.w_u8 w 0
  | Some x ->
      Codec.w_u8 w 1;
      f w x

let r_opt r f = match Codec.r_u8 r with 0 -> None | _ -> Some (f r)

let w_proj w proj =
  Codec.w_varint w (Array.length proj);
  Array.iter (fun i -> Codec.w_varint w i) proj

let r_proj r =
  let n = Codec.r_varint r in
  Array.init n (fun _ -> Codec.r_varint r)

let w_assignments w assignments =
  Codec.w_varint w (List.length assignments);
  List.iter (fun a -> Expr.encode_assignment w a) assignments

let r_assignments r =
  let n = Codec.r_varint r in
  List.init n (fun _ -> Expr.decode_assignment r)

let w_rows w rows =
  Codec.w_varint w (List.length rows);
  List.iter (fun row -> Row.encode_values w row) rows

let r_rows r =
  let n = Codec.r_varint r in
  List.init n (fun _ -> Row.decode_values r)

let w_agg_kind w k =
  Codec.w_u8 w
    (match k with
    | Agg_count_star -> 0
    | Agg_count -> 1
    | Agg_sum -> 2
    | Agg_min -> 3
    | Agg_max -> 4
    | Agg_avg -> 5)

let r_agg_kind r =
  match Codec.r_u8 r with
  | 0 -> Agg_count_star
  | 1 -> Agg_count
  | 2 -> Agg_sum
  | 3 -> Agg_min
  | 4 -> Agg_max
  | 5 -> Agg_avg
  | n -> bad_tag "aggregate kind" n

let w_agg_specs w specs =
  Codec.w_varint w (List.length specs);
  List.iter
    (fun s ->
      w_agg_kind w s.ag_kind;
      w_opt w Expr.encode s.ag_arg)
    specs

let r_agg_specs r =
  let n = Codec.r_varint r in
  List.init n (fun _ ->
      let ag_kind = r_agg_kind r in
      let ag_arg = r_opt r Expr.decode in
      { ag_kind; ag_arg })

let w_agg_acc w acc =
  Codec.w_varint w acc.aa_count;
  Codec.w_int w acc.aa_sum_i;
  Codec.w_float w acc.aa_sum_f;
  Codec.w_bool w acc.aa_saw_float;
  Row.encode_value w acc.aa_min;
  Row.encode_value w acc.aa_max

let r_agg_acc r =
  let aa_count = Codec.r_varint r in
  let aa_sum_i = Codec.r_int r in
  let aa_sum_f = Codec.r_float r in
  let aa_saw_float = Codec.r_bool r in
  let aa_min = Row.decode_value r in
  let aa_max = Row.decode_value r in
  { aa_count; aa_sum_i; aa_sum_f; aa_saw_float; aa_min; aa_max }

let w_groups w groups =
  Codec.w_varint w (List.length groups);
  List.iter
    (fun (key_vals, accs) ->
      Row.encode_values w key_vals;
      Codec.w_varint w (List.length accs);
      List.iter (fun acc -> w_agg_acc w acc) accs)
    groups

let r_groups r =
  let n = Codec.r_varint r in
  List.init n (fun _ ->
      let key_vals = Row.decode_values r in
      let k = Codec.r_varint r in
      let accs = List.init k (fun _ -> r_agg_acc r) in
      (key_vals, accs))

let w_error w (e : Errors.t) =
  let tag, payload =
    match e with
    | Errors.Not_found_key s -> (0, s)
    | Errors.Duplicate_key s -> (1, s)
    | Errors.File_not_found s -> (2, s)
    | Errors.File_exists s -> (3, s)
    | Errors.Bad_request s -> (4, s)
    | Errors.Lock_timeout s -> (5, s)
    | Errors.Tx_aborted s -> (6, s)
    | Errors.No_transaction -> (7, "")
    | Errors.Constraint_violation s -> (8, s)
    | Errors.Type_error s -> (9, s)
    | Errors.Parse_error s -> (10, s)
    | Errors.Name_error s -> (11, s)
    | Errors.Invalid_argument_error s -> (12, s)
    | Errors.Io_error s -> (13, s)
    | Errors.Internal s -> (14, s)
    | Errors.Deadlock s -> (15, s)
    | Errors.Takeover s -> (16, s)
  in
  Codec.w_u8 w tag;
  Codec.w_bytes w payload

let r_error r : Errors.t =
  let tag = Codec.r_u8 r in
  let payload = Codec.r_bytes r in
  match tag with
  | 0 -> Errors.Not_found_key payload
  | 1 -> Errors.Duplicate_key payload
  | 2 -> Errors.File_not_found payload
  | 3 -> Errors.File_exists payload
  | 4 -> Errors.Bad_request payload
  | 5 -> Errors.Lock_timeout payload
  | 6 -> Errors.Tx_aborted payload
  | 7 -> Errors.No_transaction
  | 8 -> Errors.Constraint_violation payload
  | 9 -> Errors.Type_error payload
  | 10 -> Errors.Parse_error payload
  | 11 -> Errors.Name_error payload
  | 12 -> Errors.Invalid_argument_error payload
  | 13 -> Errors.Io_error payload
  | 14 -> Errors.Internal payload
  | 15 -> Errors.Deadlock payload
  | 16 -> Errors.Takeover payload
  | n -> bad_tag "error" n

(* --- request codec ------------------------------------------------------- *)

let encode_request req =
  let w = Codec.writer () in
  (match req with
  | R_create_file { fname; kind; schema; check } ->
      Codec.w_u8 w 0;
      Codec.w_bytes w fname;
      (match kind with
      | K_key_sequenced -> Codec.w_u8 w 0
      | K_relative slot_size ->
          Codec.w_u8 w 1;
          Codec.w_varint w slot_size
      | K_entry_sequenced -> Codec.w_u8 w 2);
      w_opt w Row.encode_schema schema;
      w_opt w Expr.encode check
  | R_read { file; tx; key; lock } ->
      Codec.w_u8 w 1;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_bytes w key;
      w_lock w lock
  | R_read_next { file; tx; from_key; inclusive; lock; sbb } ->
      Codec.w_u8 w 2;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_bytes w from_key;
      Codec.w_bool w inclusive;
      w_lock w lock;
      Codec.w_bool w sbb
  | R_insert { file; tx; key; record } ->
      Codec.w_u8 w 3;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_bytes w key;
      Codec.w_bytes w record
  | R_update { file; tx; key; record } ->
      Codec.w_u8 w 4;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_bytes w key;
      Codec.w_bytes w record
  | R_delete { file; tx; key } ->
      Codec.w_u8 w 5;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_bytes w key
  | R_lock_file { file; tx; lock } ->
      Codec.w_u8 w 6;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      w_lock w lock
  | R_lock_generic { file; tx; prefix; lock } ->
      Codec.w_u8 w 23;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_bytes w prefix;
      w_lock w lock
  | R_rel_read { file; tx; slot } ->
      Codec.w_u8 w 7;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_varint w slot
  | R_rel_write { file; tx; slot; record } ->
      Codec.w_u8 w 8;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_varint w slot;
      Codec.w_bytes w record
  | R_rel_rewrite { file; tx; slot; record } ->
      Codec.w_u8 w 9;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_varint w slot;
      Codec.w_bytes w record
  | R_rel_delete { file; tx; slot } ->
      Codec.w_u8 w 10;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_varint w slot
  | R_entry_append { file; tx; record } ->
      Codec.w_u8 w 11;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_bytes w record
  | R_entry_read { file; tx; addr } ->
      Codec.w_u8 w 12;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_varint w addr
  | R_get_first { file; tx; buffering; range; pred; proj; lock } ->
      Codec.w_u8 w 13;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_u8 w (match buffering with B_rsbb -> 0 | B_vsbb -> 1);
      w_range w range;
      w_opt w Expr.encode pred;
      w_opt w w_proj proj;
      w_lock w lock
  | R_get_next { file; tx; scb; after_key } ->
      Codec.w_u8 w 14;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_varint w scb;
      Codec.w_bytes w after_key
  | R_update_subset_first { file; tx; range; pred; assignments } ->
      Codec.w_u8 w 15;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      w_range w range;
      w_opt w Expr.encode pred;
      w_assignments w assignments
  | R_update_subset_next { file; tx; scb; after_key } ->
      Codec.w_u8 w 16;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_varint w scb;
      Codec.w_bytes w after_key
  | R_delete_subset_first { file; tx; range; pred } ->
      Codec.w_u8 w 17;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      w_range w range;
      w_opt w Expr.encode pred
  | R_delete_subset_next { file; tx; scb; after_key } ->
      Codec.w_u8 w 18;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_varint w scb;
      Codec.w_bytes w after_key
  | R_insert_row { file; tx; row } ->
      Codec.w_u8 w 19;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Row.encode_values w row
  | R_insert_block { file; tx; rows } ->
      Codec.w_u8 w 20;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      w_rows w rows
  | R_apply_block { file; tx; ops } ->
      Codec.w_u8 w 22;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_varint w (List.length ops);
      List.iter
        (fun (key, op) ->
          Codec.w_bytes w key;
          match op with
          | Ob_update assignments ->
              Codec.w_u8 w 0;
              w_assignments w assignments
          | Ob_delete -> Codec.w_u8 w 1)
        ops
  | R_close_scb { scb } ->
      Codec.w_u8 w 21;
      Codec.w_varint w scb
  | R_agg_first { file; tx; range; pred; group_keys; aggs; lock } ->
      Codec.w_u8 w 24;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      w_range w range;
      w_opt w Expr.encode pred;
      w_proj w group_keys;
      w_agg_specs w aggs;
      w_lock w lock
  | R_agg_next { file; tx; scb; after_key } ->
      Codec.w_u8 w 25;
      Codec.w_varint w file;
      Codec.w_varint w tx;
      Codec.w_varint w scb;
      Codec.w_bytes w after_key
  | R_record_count { file } ->
      Codec.w_u8 w 26;
      Codec.w_varint w file);
  Codec.contents w

let decode_request_exn payload =
  let r = Codec.reader payload in
  match Codec.r_u8 r with
  | 0 ->
      let fname = Codec.r_bytes r in
      let kind =
        match Codec.r_u8 r with
        | 0 -> K_key_sequenced
        | 1 -> K_relative (Codec.r_varint r)
        | 2 -> K_entry_sequenced
        | n -> bad_tag "file kind" n
      in
      let schema = r_opt r Row.decode_schema in
      let check = r_opt r Expr.decode in
      R_create_file { fname; kind; schema; check }
  | 1 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let key = Codec.r_bytes r in
      let lock = r_lock r in
      R_read { file; tx; key; lock }
  | 2 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let from_key = Codec.r_bytes r in
      let inclusive = Codec.r_bool r in
      let lock = r_lock r in
      let sbb = Codec.r_bool r in
      R_read_next { file; tx; from_key; inclusive; lock; sbb }
  | 3 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let key = Codec.r_bytes r in
      let record = Codec.r_bytes r in
      R_insert { file; tx; key; record }
  | 4 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let key = Codec.r_bytes r in
      let record = Codec.r_bytes r in
      R_update { file; tx; key; record }
  | 5 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let key = Codec.r_bytes r in
      R_delete { file; tx; key }
  | 6 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let lock = r_lock r in
      R_lock_file { file; tx; lock }
  | 7 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let slot = Codec.r_varint r in
      R_rel_read { file; tx; slot }
  | 8 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let slot = Codec.r_varint r in
      let record = Codec.r_bytes r in
      R_rel_write { file; tx; slot; record }
  | 9 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let slot = Codec.r_varint r in
      let record = Codec.r_bytes r in
      R_rel_rewrite { file; tx; slot; record }
  | 10 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let slot = Codec.r_varint r in
      R_rel_delete { file; tx; slot }
  | 11 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let record = Codec.r_bytes r in
      R_entry_append { file; tx; record }
  | 12 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let addr = Codec.r_varint r in
      R_entry_read { file; tx; addr }
  | 13 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let buffering = match Codec.r_u8 r with 0 -> B_rsbb | _ -> B_vsbb in
      let range = r_range r in
      let pred = r_opt r Expr.decode in
      let proj = r_opt r r_proj in
      let lock = r_lock r in
      R_get_first { file; tx; buffering; range; pred; proj; lock }
  | 14 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let scb = Codec.r_varint r in
      let after_key = Codec.r_bytes r in
      R_get_next { file; tx; scb; after_key }
  | 15 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let range = r_range r in
      let pred = r_opt r Expr.decode in
      let assignments = r_assignments r in
      R_update_subset_first { file; tx; range; pred; assignments }
  | 16 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let scb = Codec.r_varint r in
      let after_key = Codec.r_bytes r in
      R_update_subset_next { file; tx; scb; after_key }
  | 17 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let range = r_range r in
      let pred = r_opt r Expr.decode in
      R_delete_subset_first { file; tx; range; pred }
  | 18 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let scb = Codec.r_varint r in
      let after_key = Codec.r_bytes r in
      R_delete_subset_next { file; tx; scb; after_key }
  | 19 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let row = Row.decode_values r in
      R_insert_row { file; tx; row }
  | 20 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let rows = r_rows r in
      R_insert_block { file; tx; rows }
  | 21 ->
      let scb = Codec.r_varint r in
      R_close_scb { scb }
  | 23 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let prefix = Codec.r_bytes r in
      let lock = r_lock r in
      R_lock_generic { file; tx; prefix; lock }
  | 22 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let n = Codec.r_varint r in
      let ops =
        List.init n (fun _ ->
            let key = Codec.r_bytes r in
            let op =
              match Codec.r_u8 r with
              | 0 -> Ob_update (r_assignments r)
              | 1 -> Ob_delete
              | k -> bad_tag "buffered op" k
            in
            (key, op))
      in
      R_apply_block { file; tx; ops }
  | 24 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let range = r_range r in
      let pred = r_opt r Expr.decode in
      let group_keys = r_proj r in
      let aggs = r_agg_specs r in
      let lock = r_lock r in
      R_agg_first { file; tx; range; pred; group_keys; aggs; lock }
  | 25 ->
      let file = Codec.r_varint r in
      let tx = Codec.r_varint r in
      let scb = Codec.r_varint r in
      let after_key = Codec.r_bytes r in
      R_agg_next { file; tx; scb; after_key }
  | 26 ->
      let file = Codec.r_varint r in
      R_record_count { file }
  | n -> bad_tag "request" n

(* --- reply codec ----------------------------------------------------------- *)

let encode_reply reply =
  let w = Codec.writer () in
  (match reply with
  | Rp_ok -> Codec.w_u8 w 0
  | Rp_file id ->
      Codec.w_u8 w 1;
      Codec.w_varint w id
  | Rp_record { key; record } ->
      Codec.w_u8 w 2;
      Codec.w_bytes w key;
      Codec.w_bytes w record
  | Rp_row row ->
      Codec.w_u8 w 3;
      Row.encode_values w row
  | Rp_slot slot ->
      Codec.w_u8 w 4;
      Codec.w_varint w slot
  | Rp_block { entries; last_key; more; scb } ->
      Codec.w_u8 w 5;
      Codec.w_varint w (List.length entries);
      List.iter
        (fun (k, record) ->
          Codec.w_bytes w k;
          Codec.w_bytes w record)
        entries;
      Codec.w_bytes w last_key;
      Codec.w_bool w more;
      Codec.w_varint w (scb + 1)
  | Rp_vblock { rows; last_key; more; scb } ->
      Codec.w_u8 w 6;
      w_rows w rows;
      Codec.w_bytes w last_key;
      Codec.w_bool w more;
      Codec.w_varint w (scb + 1)
  | Rp_progress { processed; last_key; more; scb } ->
      Codec.w_u8 w 7;
      Codec.w_varint w processed;
      Codec.w_bytes w last_key;
      Codec.w_bool w more;
      Codec.w_varint w (scb + 1)
  | Rp_end -> Codec.w_u8 w 8
  | Rp_blocked { blockers; processed; last_key; scb } ->
      Codec.w_u8 w 9;
      Codec.w_varint w (List.length blockers);
      List.iter (fun b -> Codec.w_varint w b) blockers;
      Codec.w_varint w processed;
      Codec.w_bytes w last_key;
      Codec.w_varint w (scb + 1)
  | Rp_agg { groups; last_key; more; scb } ->
      Codec.w_u8 w 11;
      w_groups w groups;
      Codec.w_bytes w last_key;
      Codec.w_bool w more;
      Codec.w_varint w (scb + 1)
  | Rp_error e ->
      Codec.w_u8 w 10;
      w_error w e);
  Codec.contents w

let decode_reply_exn payload =
  let r = Codec.reader payload in
  match Codec.r_u8 r with
  | 0 -> Rp_ok
  | 1 -> Rp_file (Codec.r_varint r)
  | 2 ->
      let key = Codec.r_bytes r in
      let record = Codec.r_bytes r in
      Rp_record { key; record }
  | 3 -> Rp_row (Row.decode_values r)
  | 4 -> Rp_slot (Codec.r_varint r)
  | 5 ->
      let n = Codec.r_varint r in
      let entries =
        List.init n (fun _ ->
            let k = Codec.r_bytes r in
            let record = Codec.r_bytes r in
            (k, record))
      in
      let last_key = Codec.r_bytes r in
      let more = Codec.r_bool r in
      let scb = Codec.r_varint r - 1 in
      Rp_block { entries; last_key; more; scb }
  | 6 ->
      let rows = r_rows r in
      let last_key = Codec.r_bytes r in
      let more = Codec.r_bool r in
      let scb = Codec.r_varint r - 1 in
      Rp_vblock { rows; last_key; more; scb }
  | 7 ->
      let processed = Codec.r_varint r in
      let last_key = Codec.r_bytes r in
      let more = Codec.r_bool r in
      let scb = Codec.r_varint r - 1 in
      Rp_progress { processed; last_key; more; scb }
  | 8 -> Rp_end
  | 9 ->
      let n = Codec.r_varint r in
      let blockers = List.init n (fun _ -> Codec.r_varint r) in
      let processed = Codec.r_varint r in
      let last_key = Codec.r_bytes r in
      let scb = Codec.r_varint r - 1 in
      Rp_blocked { blockers; processed; last_key; scb }
  | 10 -> Rp_error (r_error r)
  | 11 ->
      let groups = r_groups r in
      let last_key = Codec.r_bytes r in
      let more = Codec.r_bool r in
      let scb = Codec.r_varint r - 1 in
      Rp_agg { groups; last_key; more; scb }
  | n -> bad_tag "reply" n

let guard decode payload =
  match decode payload with
  | v -> Ok v
  | exception Bad_tag_exn (field, tag) -> Error (Bad_tag { field; tag })
  | exception Codec.Truncated -> Error Truncated

let decode_request payload = guard decode_request_exn payload

let decode_reply payload = guard decode_reply_exn payload

(* --- process-pair checkpoint codec --------------------------------------- *)

(* The checkpoint stream a primary sends its backup: every item is a delta
   against the replica of takeover-relevant state (SCBs, lock table, wait
   queues, mutation intents). Each checkpoint message carries the encoded
   items — the byte charge on the wire is exactly [String.length payload]. *)

module Lock = Nsql_lock.Lock

type ckpt_scb_body =
  | Cs_read of {
      buffering : buffering;
      pred : Expr.t option;
      proj : int array option;
      lock : lock_mode;
    }
  | Cs_update of { pred : Expr.t option; assignments : Expr.assignment list }
  | Cs_delete of { pred : Expr.t option }
  | Cs_agg of {
      pred : Expr.t option;
      group_keys : int array;
      aggs : agg_spec list;
      lock : lock_mode;
    }

type ckpt_item =
  | Ck_intent of { payload : string }
      (** a mutation request is about to be applied: its full request bytes *)
  | Ck_lock of { tx : int; file : int; res : Lock.resource; mode : Lock.mode }
      (** a lock was granted (or upgraded to Exclusive) *)
  | Ck_release of { tx : int }  (** commit/abort released every lock of [tx] *)
  | Ck_scb_open of {
      scb : int;
      file : int;
      lo : string;
      hi : string;
      body : ckpt_scb_body;
    }  (** a subset cursor opened: definition, not position — position is
           client-held and re-supplied on every re-drive *)
  | Ck_agg_state of { scb : int; groups : (Row.row * agg_acc list) list }
      (** server-side aggregate partials after a re-drive (the one cursor
          kind whose progress lives in the Disk Process) *)
  | Ck_scb_close of { scb : int }  (** the cursor completed or was closed *)
  | Ck_park of { tx : int; payload : string }
      (** a request was parked on the lock wait queue: its request bytes *)
  | Ck_unpark of { tx : int }  (** the parked request left the queue *)

let w_lock_mode w = function
  | Lock.Shared -> Codec.w_u8 w 0
  | Lock.Exclusive -> Codec.w_u8 w 1

let r_lock_mode r =
  match Codec.r_u8 r with
  | 0 -> Lock.Shared
  | 1 -> Lock.Exclusive
  | n -> bad_tag "lock grant mode" n

let w_resource w = function
  | Lock.File -> Codec.w_u8 w 0
  | Lock.Record k ->
      Codec.w_u8 w 1;
      Codec.w_bytes w k
  | Lock.Generic p ->
      Codec.w_u8 w 2;
      Codec.w_bytes w p
  | Lock.Range (lo, hi) ->
      Codec.w_u8 w 3;
      Codec.w_bytes w lo;
      Codec.w_bytes w hi

let r_resource r =
  match Codec.r_u8 r with
  | 0 -> Lock.File
  | 1 -> Lock.Record (Codec.r_bytes r)
  | 2 -> Lock.Generic (Codec.r_bytes r)
  | 3 ->
      let lo = Codec.r_bytes r in
      let hi = Codec.r_bytes r in
      Lock.Range (lo, hi)
  | n -> bad_tag "lock resource" n

let w_scb_body w = function
  | Cs_read { buffering; pred; proj; lock } ->
      Codec.w_u8 w 0;
      Codec.w_u8 w (match buffering with B_rsbb -> 0 | B_vsbb -> 1);
      w_opt w Expr.encode pred;
      w_opt w w_proj proj;
      w_lock w lock
  | Cs_update { pred; assignments } ->
      Codec.w_u8 w 1;
      w_opt w Expr.encode pred;
      w_assignments w assignments
  | Cs_delete { pred } ->
      Codec.w_u8 w 2;
      w_opt w Expr.encode pred
  | Cs_agg { pred; group_keys; aggs; lock } ->
      Codec.w_u8 w 3;
      w_opt w Expr.encode pred;
      w_proj w group_keys;
      w_agg_specs w aggs;
      w_lock w lock

let r_scb_body r =
  match Codec.r_u8 r with
  | 0 ->
      let buffering = match Codec.r_u8 r with 0 -> B_rsbb | _ -> B_vsbb in
      let pred = r_opt r Expr.decode in
      let proj = r_opt r r_proj in
      let lock = r_lock r in
      Cs_read { buffering; pred; proj; lock }
  | 1 ->
      let pred = r_opt r Expr.decode in
      let assignments = r_assignments r in
      Cs_update { pred; assignments }
  | 2 ->
      let pred = r_opt r Expr.decode in
      Cs_delete { pred }
  | 3 ->
      let pred = r_opt r Expr.decode in
      let group_keys = r_proj r in
      let aggs = r_agg_specs r in
      let lock = r_lock r in
      Cs_agg { pred; group_keys; aggs; lock }
  | n -> bad_tag "checkpoint SCB body" n

let w_ckpt_item w = function
  | Ck_intent { payload } ->
      Codec.w_u8 w 0;
      Codec.w_bytes w payload
  | Ck_lock { tx; file; res; mode } ->
      Codec.w_u8 w 1;
      Codec.w_varint w tx;
      Codec.w_varint w file;
      w_resource w res;
      w_lock_mode w mode
  | Ck_release { tx } ->
      Codec.w_u8 w 2;
      Codec.w_varint w tx
  | Ck_scb_open { scb; file; lo; hi; body } ->
      Codec.w_u8 w 3;
      Codec.w_varint w scb;
      Codec.w_varint w file;
      Codec.w_bytes w lo;
      Codec.w_bytes w hi;
      w_scb_body w body
  | Ck_agg_state { scb; groups } ->
      Codec.w_u8 w 4;
      Codec.w_varint w scb;
      w_groups w groups
  | Ck_scb_close { scb } ->
      Codec.w_u8 w 5;
      Codec.w_varint w scb
  | Ck_park { tx; payload } ->
      Codec.w_u8 w 6;
      Codec.w_varint w tx;
      Codec.w_bytes w payload
  | Ck_unpark { tx } ->
      Codec.w_u8 w 7;
      Codec.w_varint w tx

let r_ckpt_item r =
  match Codec.r_u8 r with
  | 0 -> Ck_intent { payload = Codec.r_bytes r }
  | 1 ->
      let tx = Codec.r_varint r in
      let file = Codec.r_varint r in
      let res = r_resource r in
      let mode = r_lock_mode r in
      Ck_lock { tx; file; res; mode }
  | 2 -> Ck_release { tx = Codec.r_varint r }
  | 3 ->
      let scb = Codec.r_varint r in
      let file = Codec.r_varint r in
      let lo = Codec.r_bytes r in
      let hi = Codec.r_bytes r in
      let body = r_scb_body r in
      Ck_scb_open { scb; file; lo; hi; body }
  | 4 ->
      let scb = Codec.r_varint r in
      let groups = r_groups r in
      Ck_agg_state { scb; groups }
  | 5 -> Ck_scb_close { scb = Codec.r_varint r }
  | 6 ->
      let tx = Codec.r_varint r in
      let payload = Codec.r_bytes r in
      Ck_park { tx; payload }
  | 7 -> Ck_unpark { tx = Codec.r_varint r }
  | n -> bad_tag "checkpoint item" n

let encode_ckpt items =
  let w = Codec.writer () in
  Codec.w_varint w (List.length items);
  List.iter (fun item -> w_ckpt_item w item) items;
  Codec.contents w

let decode_ckpt_exn payload =
  let r = Codec.reader payload in
  let n = Codec.r_varint r in
  List.init n (fun _ -> r_ckpt_item r)

let decode_ckpt payload = guard decode_ckpt_exn payload

(** The FS-DP wire protocol.

    Every interaction between the File System (client side) and a Disk
    Process is one of these request/reply messages, serialized to bytes so
    that the message system can count real payload sizes — the paper's
    central performance quantity.

    Two interface generations coexist, as in the paper:

    {b The old, record-oriented ENSCRIBE interface}: point reads, single
    record inserts/updates/deletes, record-at-a-time sequential reads, and
    real sequential block buffering ([R_read_next] with [sbb]).

    {b The new SQL interface}: set-oriented requests carrying a primary-key
    range, an optional single-variable selection predicate, an optional
    field projection, or update-expression assignments. The first request
    of a set operation creates a {e Subset Control Block} in the Disk
    Process; continuation re-drives ([R_get_next], [R_update_subset_next],
    [R_delete_subset_next]) carry only the SCB number and the restart key —
    measurably smaller messages.

    [R_insert_block] is the paper's "future enhancement": a blocked
    sequential-insert interface (experiment E11). *)

module Row = Nsql_row.Row
module Expr = Nsql_expr.Expr

type buffered_op = Ob_update of Expr.assignment list | Ob_delete

type lock_mode = L_none | L_shared | L_exclusive

val pp_lock_mode : Format.formatter -> lock_mode -> unit

type buffering = B_rsbb | B_vsbb

type file_kind_spec = K_key_sequenced | K_relative of int | K_entry_sequenced

(** {1 Aggregate pushdown}

    The SQL interface lets the Disk Process evaluate COUNT/SUM/MIN/MAX/AVG
    at the source ([R_agg_first]/[R_agg_next]): instead of shipping every
    qualifying row up in virtual blocks, the DP folds rows into accumulator
    state inside the re-drive budget and the final reply carries one
    accumulator per (group, aggregate) — bytes proportional to the number
    of groups, not the number of rows. *)

type agg_kind = Agg_count_star | Agg_count | Agg_sum | Agg_min | Agg_max | Agg_avg

type agg_spec = {
  ag_kind : agg_kind;
  ag_arg : Expr.t option;  (** [None] only for [Agg_count_star] *)
}

(** One aggregate's partial state. A single representation serves every
    kind so that partials from different partitions (or re-drives) merge
    uniformly; [finish_acc] extracts the kind's final value. *)
type agg_acc = {
  mutable aa_count : int;  (** non-Null inputs seen (all rows for [*]) *)
  mutable aa_sum_i : int;
  mutable aa_sum_f : float;
  mutable aa_saw_float : bool;
  mutable aa_min : Row.value;  (** [Null] while no input seen *)
  mutable aa_max : Row.value;
}

val fresh_acc : unit -> agg_acc

(** [feed_acc acc v] folds one input value; [Null] is skipped (SQL
    aggregate semantics). *)
val feed_acc : agg_acc -> Row.value -> unit

(** [feeder spec] is {!feed_spec} with the kind/argument dispatch hoisted
    out of the per-row path — batch loops resolve it once per query and
    apply the returned closure to every row. *)
val feeder : agg_spec -> agg_acc -> Row.row -> unit

(** [feed_spec acc spec row] evaluates the spec's argument against [row]
    and feeds it ([Agg_count_star] counts the row unconditionally). *)
val feed_spec : agg_acc -> agg_spec -> Row.row -> unit

(** [merge_acc ~into acc] folds a partial into another — the requester-side
    combine step for per-partition partials. *)
val merge_acc : into:agg_acc -> agg_acc -> unit

(** [finish_acc kind acc] is the aggregate's final value: COUNT of zero
    rows is 0, every other kind over zero rows is [Null], SUM stays
    integer unless a float was seen. *)
val finish_acc : agg_kind -> agg_acc -> Row.value

type request =
  | R_create_file of {
      fname : string;
      kind : file_kind_spec;
      schema : Row.schema option;  (** SQL files carry their structure *)
      check : Expr.t option;  (** CHECK integrity constraint *)
    }
  | R_read of { file : int; tx : int; key : string; lock : lock_mode }
  | R_read_next of {
      file : int;
      tx : int;
      from_key : string;
      inclusive : bool;  (** start at [from_key] itself, or just after it *)
      lock : lock_mode;
      sbb : bool;  (** real sequential block buffering *)
    }
  | R_insert of { file : int; tx : int; key : string; record : string }
  | R_update of { file : int; tx : int; key : string; record : string }
  | R_delete of { file : int; tx : int; key : string }
  | R_lock_file of { file : int; tx : int; lock : lock_mode }
  | R_lock_generic of { file : int; tx : int; prefix : string; lock : lock_mode }
  | R_rel_read of { file : int; tx : int; slot : int }
  | R_rel_write of { file : int; tx : int; slot : int; record : string }
  | R_rel_rewrite of { file : int; tx : int; slot : int; record : string }
  | R_rel_delete of { file : int; tx : int; slot : int }
  | R_entry_append of { file : int; tx : int; record : string }
  | R_entry_read of { file : int; tx : int; addr : int }
  | R_get_first of {
      file : int;
      tx : int;
      buffering : buffering;
      range : Expr.key_range;
      pred : Expr.t option;
      proj : int array option;
      lock : lock_mode;
    }
  | R_get_next of { file : int; tx : int; scb : int; after_key : string }
  | R_update_subset_first of {
      file : int;
      tx : int;
      range : Expr.key_range;
      pred : Expr.t option;
      assignments : Expr.assignment list;
    }
  | R_update_subset_next of { file : int; tx : int; scb : int; after_key : string }
  | R_delete_subset_first of {
      file : int;
      tx : int;
      range : Expr.key_range;
      pred : Expr.t option;
    }
  | R_delete_subset_next of { file : int; tx : int; scb : int; after_key : string }
  | R_insert_row of { file : int; tx : int; row : Row.row }
  | R_insert_block of { file : int; tx : int; rows : Row.row list }
  | R_apply_block of {
      file : int;
      tx : int;
      ops : (string * buffered_op) list;
          (** updates/deletes of specific records, accumulated in the File
              System while a cursor walked them ("update/delete where
              current") and shipped in one message — the paper's second
              future enhancement *)
    }
  | R_close_scb of { scb : int }
  | R_agg_first of {
      file : int;
      tx : int;
      range : Expr.key_range;
      pred : Expr.t option;
      group_keys : int array;
          (** grouping fields, a prefix of the file's key columns *)
      aggs : agg_spec list;
      lock : lock_mode;
    }
  | R_agg_next of { file : int; tx : int; scb : int; after_key : string }
  | R_record_count of { file : int }
      (** catalog-style cardinality probe, one per partition *)

type reply =
  | Rp_ok
  | Rp_file of int  (** created file id *)
  | Rp_record of { key : string; record : string }
  | Rp_row of Row.row  (** projected point read *)
  | Rp_slot of int  (** relative slot / entry address *)
  | Rp_block of {
      entries : (string * string) list;
      last_key : string;
      more : bool;
      scb : int;  (** -1 for the stateless ENSCRIBE SBB path *)
    }
  | Rp_vblock of { rows : Row.row list; last_key : string; more : bool; scb : int }
  | Rp_progress of { processed : int; last_key : string; more : bool; scb : int }
  | Rp_end  (** scan/set exhausted *)
  | Rp_blocked of {
      blockers : int list;  (** transactions holding conflicting locks *)
      processed : int;  (** records already processed this request *)
      last_key : string;  (** restart point: last key fully processed *)
      scb : int;
    }  (** lock conflict: the requester waits and re-drives *)
  | Rp_agg of {
      groups : (Row.row * agg_acc list) list;
          (** group-key values paired with one accumulator per spec, in
              first-seen (= key) order; empty on intermediate re-drives —
              the partials stay in the SCB until the subset is exhausted *)
      last_key : string;
      more : bool;
      scb : int;
    }
  | Rp_error of Nsql_util.Errors.t

(** [tag req] is the human-readable message-type name, in the paper's
    GET^FIRST^VSBB style, used for tracing. *)
val tag : request -> string

(** Why decoding can fail: a tag byte outside the known range for a
    field, or a payload that ends mid-field. A malformed payload is a
    peer bug or corruption, so decoders return [result] and the
    transport layer answers with a protocol-level error instead of
    unwinding the process. *)
type decode_error =
  | Bad_tag of { field : string; tag : int }
  | Truncated

val decode_error_to_string : decode_error -> string

val encode_request : request -> string
val decode_request : string -> (request, decode_error) result

val encode_reply : reply -> string
val decode_reply : string -> (reply, decode_error) result

(** [is_mutation req] — does the request change file state (and thus
    checkpoint to the backup process)? *)
val is_mutation : request -> bool

(** {1 Process-pair checkpoint stream}

    The deltas a primary Disk Process sends its backup so the backup can
    resume as primary with no lost acknowledged work: SCB definitions (and
    the one kind of server-held progress, aggregate partials), lock grants
    and releases, and wait-queue membership. Encoded with the same codec as
    the request/reply protocol, so the byte charge of a checkpoint message
    is exactly the length of its encoded items. *)

module Lock = Nsql_lock.Lock

(** The definition half of a subset cursor — everything needed to rebuild
    the SCB on the backup. Scan {e position} is deliberately absent for
    read/update/delete cursors: it is client-held and re-supplied by every
    re-drive ([after_key]), so the replica never needs it. *)
type ckpt_scb_body =
  | Cs_read of {
      buffering : buffering;
      pred : Expr.t option;
      proj : int array option;
      lock : lock_mode;
    }
  | Cs_update of { pred : Expr.t option; assignments : Expr.assignment list }
  | Cs_delete of { pred : Expr.t option }
  | Cs_agg of {
      pred : Expr.t option;
      group_keys : int array;
      aggs : agg_spec list;
      lock : lock_mode;
    }

type ckpt_item =
  | Ck_intent of { payload : string }
      (** a mutation request is being applied: its full request bytes *)
  | Ck_lock of { tx : int; file : int; res : Lock.resource; mode : Lock.mode }
      (** a lock was granted, or upgraded to Exclusive *)
  | Ck_release of { tx : int }  (** commit/abort released every lock of [tx] *)
  | Ck_scb_open of {
      scb : int;
      file : int;
      lo : string;
      hi : string;
      body : ckpt_scb_body;
    }
  | Ck_agg_state of { scb : int; groups : (Row.row * agg_acc list) list }
      (** aggregate partials surviving a re-drive boundary *)
  | Ck_scb_close of { scb : int }
  | Ck_park of { tx : int; payload : string }
      (** a request was parked on the lock wait queue *)
  | Ck_unpark of { tx : int }  (** the parked request left the queue *)

val encode_ckpt : ckpt_item list -> string
val decode_ckpt : string -> (ckpt_item list, decode_error) result

module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Config = Nsql_sim.Config
module Moncore = Nsql_sim.Moncore
module Msg = Nsql_msg.Msg
module Disk = Nsql_disk.Disk
module Cache = Nsql_cache.Cache
module Lock = Nsql_lock.Lock
module Row = Nsql_row.Row
module Expr = Nsql_expr.Expr
module Btree = Nsql_store.Btree
module Relfile = Nsql_store.Relfile
module Entryfile = Nsql_store.Entryfile
module Tmf = Nsql_tmf.Tmf
module Trail = Nsql_audit.Trail
module Ar = Nsql_audit.Audit_record
module Keycode = Nsql_util.Keycode
module Errors = Nsql_util.Errors
module Trace = Nsql_trace.Trace

open Dp_msg

type structure =
  | S_btree of Btree.t
  | S_rel of Relfile.t
  | S_entry of Entryfile.t

type file = {
  f_id : int;
  f_name : string;
  f_kind : file_kind_spec;
  f_schema : Row.schema option;
  f_check : Expr.t option;
  mutable f_structure : structure;
}

(* What a Subset Control Block remembers so that re-drives don't have to
   re-send the predicate / projection / update expression. *)
type scb_body =
  | Scb_read of {
      buffering : buffering;
      pred : Expr.t option;
      proj : int array option;
      lock : lock_mode;
    }
  | Scb_update of { pred : Expr.t option; assignments : Expr.assignment list }
  | Scb_delete of { pred : Expr.t option }
  | Scb_agg of {
      pred : Expr.t option;
      group_keys : int array;
      aggs : agg_spec list;
      lock : lock_mode;
      (* partial state accumulated across re-drives, keyed by the encoded
         group-key values; [ag_order] remembers first-seen order (= key
         order, since the scan is key-ordered) so the final reply never
         depends on hash-table traversal order *)
      ag_groups : (string, Row.row * agg_acc list) Hashtbl.t;
      mutable ag_order : string list;  (** reversed *)
    }

type scb = {
  scb_file : int;
  scb_lo : string;  (** inclusive begin of the key range *)
  scb_hi : string;  (** exclusive end of the key range *)
  scb_body : scb_body;
  mutable scb_prev_leaf : int;  (** pre-fetch heuristic state *)
  mutable scb_pf_hi : int;
      (** highest block the deep (queue-depth > 1) read-ahead has
          submitted for this scan. Advisory only — not checkpointed, so
          after a takeover the frontier resets and the heuristic re-arms
          from the next sequential leaf. *)
}

(* A request parked on the lock wait queue: its reply is withheld (the
   requester holds a pending completion) until a release re-dispatch grants
   it, the wait budget expires, or deadlock resolution denies it. *)
type waiter = {
  w_tx : int;
  w_req : request;
  w_deferral : Msg.deferral;
  w_parked_at : float;
  w_payload : string;  (** raw request bytes, checkpointed to the backup *)
}

(* The backup half's replica of takeover-relevant state, maintained purely
   from the checkpoint stream (see {!Dp_msg.ckpt_item}): decoded SCB copies,
   the lock grant log (newest first; releases filter it), and the FIFO wait
   queue. Waiters are held by reference — the message-system deferral and
   its scheduled timeout survive the takeover, so budgets keep counting. *)
type replica = {
  rp_scbs : (int, scb) Hashtbl.t;
  mutable rp_locks : (int * int * Lock.resource * Lock.mode) list;
  mutable rp_parked : waiter list;
  mutable rp_bytes : int;  (** checkpoint bytes absorbed (observability) *)
}

type t = {
  sim : Sim.t;
  msys : Msg.system;
  tmf : Tmf.t;
  dp_name : string;
  endpoint : Msg.endpoint;
  volume : Disk.t;
  cache : Cache.t;
  locks : Lock.t;
  files : (int, file) Hashtbl.t;
  by_name : (string, int) Hashtbl.t;
  scbs : (int, scb) Hashtbl.t;
  mutable next_scb : int;
  (* lock wait queue, FIFO (oldest first). Invariant: a transaction has
     outgoing waitgraph edges iff it has a waiter in this queue or is the
     requester currently being probed. *)
  mutable waiters : waiter list;
  waitgraph : Lock.Waitgraph.g;
  (* checkpoint items accumulated (reversed) while a request executes;
     flushed as one checkpoint message when the request completes *)
  mutable ckpt_pending : Dp_msg.ckpt_item list;
  (* backup-side replica; [Some] iff a backup exists and
     [Config.dp_checkpoint] is on. Cleared by takeover (the backup is
     consumed) and by crash. *)
  mutable replica : replica option;
  (* transactions whose un-checkpointed state was lost in a replica-less
     takeover: their requests are denied with the retryable
     [Errors.Takeover] until they finish *)
  denied : (int, unit) Hashtbl.t;
  mutable lost_scbs : bool;  (** SCBs were dropped by a replica-less takeover *)
}

(* [handler] is defined at the bottom of this file (it needs the whole
   dispatch machinery); [create] wires the endpoint through this cell, and
   [pump_cell] lets the lock-release hook reach the wait-queue pump the
   same way. *)
let handler_cell : (t -> string -> string) ref =
  ref (fun _ _ -> assert false)

let pump_cell : (t -> unit) ref = ref (fun _ -> ())

(* --- process-pair checkpointing ---------------------------------------- *)

(* Checkpoint traffic flows whenever a backup exists — the replica knob
   only decides whether the backup half applies it. That keeps the knob
   free: on or off, message counts, bytes and clock are identical. *)
let ckpt_active t = Msg.endpoint_backup t.endpoint <> None

let ckpt_push t item =
  if ckpt_active t then t.ckpt_pending <- item :: t.ckpt_pending

(* Emit one checkpoint message immediately (park/unpark/release events that
   happen outside a request's execution window). *)
let ckpt_emit t items =
  if ckpt_active t then Msg.checkpoint t.msys t.endpoint (encode_ckpt items)

let ckpt_body_of_scb scb =
  match scb.scb_body with
  | Scb_read { buffering; pred; proj; lock } ->
      Cs_read { buffering; pred; proj; lock }
  | Scb_update { pred; assignments } -> Cs_update { pred; assignments }
  | Scb_delete { pred } -> Cs_delete { pred }
  | Scb_agg { pred; group_keys; aggs; lock; _ } ->
      Cs_agg { pred; group_keys; aggs; lock }

let scb_of_ckpt ~file ~lo ~hi body =
  let scb_body =
    match body with
    | Cs_read { buffering; pred; proj; lock } ->
        Scb_read { buffering; pred; proj; lock }
    | Cs_update { pred; assignments } -> Scb_update { pred; assignments }
    | Cs_delete { pred } -> Scb_delete { pred }
    | Cs_agg { pred; group_keys; aggs; lock } ->
        Scb_agg
          {
            pred;
            group_keys;
            aggs;
            lock;
            ag_groups = Hashtbl.create 16;
            ag_order = [];
          }
  in
  {
    scb_file = file;
    scb_lo = lo;
    scb_hi = hi;
    scb_body;
    scb_prev_leaf = -10;
    scb_pf_hi = -1;
  }

(* The backup half absorbing a checkpoint message: pure heap bookkeeping,
   never touching the simulation clock or counters — the wire cost was
   already charged by [Msg.checkpoint]. *)
let apply_ckpt t payload =
  match t.replica with
  | None -> ()
  | Some rp -> (
      match decode_ckpt payload with
      | Error e ->
          Errors.fatal
            ("Dp replica: malformed checkpoint: " ^ decode_error_to_string e)
      | Ok items ->
          rp.rp_bytes <- rp.rp_bytes + String.length payload;
          List.iter
            (fun item ->
              match item with
              | Ck_intent _ ->
                  (* the mutation lands in the shared durable structures;
                     the replica only mirrors control state *)
                  ()
              | Ck_lock { tx; file; res; mode } ->
                  rp.rp_locks <- (tx, file, res, mode) :: rp.rp_locks
              | Ck_release { tx } ->
                  rp.rp_locks <-
                    List.filter (fun (tx', _, _, _) -> tx' <> tx) rp.rp_locks
              | Ck_scb_open { scb; file; lo; hi; body } ->
                  Hashtbl.replace rp.rp_scbs scb (scb_of_ckpt ~file ~lo ~hi body)
              | Ck_agg_state { scb; groups } -> (
                  match Hashtbl.find_opt rp.rp_scbs scb with
                  | Some { scb_body = Scb_agg ag; _ } ->
                      Hashtbl.reset ag.ag_groups;
                      ag.ag_order <- [];
                      List.iter
                        (fun (key_vals, accs) ->
                          let w = Nsql_util.Codec.writer () in
                          Row.encode_values w key_vals;
                          let gk = Nsql_util.Codec.contents w in
                          Hashtbl.replace ag.ag_groups gk (key_vals, accs);
                          ag.ag_order <- gk :: ag.ag_order)
                        groups
                  | Some _ | None -> ())
              | Ck_scb_close { scb } -> Hashtbl.remove rp.rp_scbs scb
              | Ck_park { tx; payload = _ } -> (
                  (* mirror the live waiter record by reference: its
                     deferral and scheduled timeout stay valid across
                     takeover, so budgets keep counting *)
                  match List.find_opt (fun w -> w.w_tx = tx) t.waiters with
                  | Some w -> rp.rp_parked <- rp.rp_parked @ [ w ]
                  | None -> ())
              | Ck_unpark { tx } ->
                  rp.rp_parked <-
                    List.filter (fun w -> w.w_tx <> tx) rp.rp_parked)
            items)

let create sim msys tmf ~name ~processor ?backup () =
  let volume = Disk.create sim ~name in
  let trail = Tmf.trail tmf in
  let cfg = Sim.config sim in
  let cache =
    Cache.create sim volume ~capacity:cfg.Config.cache_blocks
      ~durable_lsn:(fun () -> Trail.durable_lsn trail)
      ~force_log:(fun lsn -> Trail.force trail lsn)
  in
  let locks = Lock.create sim in
  let endpoint =
    Msg.register msys ~name ~processor ?backup (fun _ -> assert false)
  in
  let t =
    {
      sim;
      msys;
      tmf;
      dp_name = name;
      endpoint;
      volume;
      cache;
      locks;
      files = Hashtbl.create 16;
      by_name = Hashtbl.create 16;
      scbs = Hashtbl.create 16;
      next_scb = 0;
      waiters = [];
      waitgraph = Lock.Waitgraph.create ();
      ckpt_pending = [];
      replica =
        (if backup <> None && cfg.Config.dp_checkpoint then
           Some
             {
               rp_scbs = Hashtbl.create 16;
               rp_locks = [];
               rp_parked = [];
               rp_bytes = 0;
             }
         else None);
      denied = Hashtbl.create 8;
      lost_scbs = false;
    }
  in
  (* mirror lock grants into the checkpoint stream *)
  Lock.set_grant_hook locks
    (Some (fun ~tx ~file res mode -> ckpt_push t (Ck_lock { tx; file; res; mode })));
  (* the backup half consumes the checkpoint stream *)
  if t.replica <> None then
    Msg.set_checkpoint_receiver endpoint (Some (fun payload -> apply_ckpt t payload));
  (* two-phase locking: locks drop at transaction finish, then the wait
     queue is pumped — freed resources may grant parked requests *)
  Tmf.register_resource_manager tmf ~on_finish:(fun tx ->
      let held = Lock.held locks ~tx in
      Lock.release_all locks ~tx;
      Hashtbl.remove t.denied tx;
      if held > 0 then ckpt_emit t [ Ck_release { tx } ];
      !pump_cell t);
  Msg.set_handler endpoint (fun payload -> !handler_cell t payload);
  t

let name t = t.dp_name
let endpoint t = t.endpoint
let volume t = t.volume
let cache t = t.cache
let locks t = t.locks

let file_id t fname = Hashtbl.find_opt t.by_name fname

let find_file t id =
  match Hashtbl.find_opt t.files id with
  | Some f -> Ok f
  | None -> Errors.fail (Errors.File_not_found (Printf.sprintf "#%d" id))

let file_schema t ~file =
  match Hashtbl.find_opt t.files file with
  | Some f -> f.f_schema
  | None -> None

let record_count t ~file =
  match Hashtbl.find_opt t.files file with
  | Some { f_structure = S_btree b; _ } -> Btree.record_count b
  | Some { f_structure = S_rel r; _ } -> Relfile.record_count r
  | Some { f_structure = S_entry e; _ } -> Entryfile.record_count e
  | None -> 0

(* --- small helpers ----------------------------------------------------- *)

let ( let* ) = Errors.( let* )

let audit t ~tx body = Trail.append (Tmf.trail t.tmf) ~tx body

let require_tx t tx =
  if tx <= 0 then Errors.fail Errors.No_transaction
  else if not (Tmf.is_active t.tmf ~tx) then
    Errors.fail (Errors.Tx_aborted (Printf.sprintf "tx %d not active" tx))
  else Ok ()

let btree_of f =
  match f.f_structure with
  | S_btree b -> Ok b
  | S_rel _ | S_entry _ ->
      Errors.fail (Errors.Bad_request "operation requires a key-sequenced file")

let rel_of f =
  match f.f_structure with
  | S_rel r -> Ok r
  | S_btree _ | S_entry _ ->
      Errors.fail (Errors.Bad_request "operation requires a relative file")

let entry_of f =
  match f.f_structure with
  | S_entry e -> Ok e
  | S_btree _ | S_rel _ ->
      Errors.fail (Errors.Bad_request "operation requires an entry-sequenced file")

let lock_of_mode = function
  | L_shared -> Some Lock.Shared
  | L_exclusive -> Some Lock.Exclusive
  | L_none -> None

(* Acquire or report blockage. [Error] carries blockers. *)
let try_lock t ~tx ~file resource mode =
  match Lock.acquire t.locks ~tx ~file resource mode with
  | Lock.Granted -> Ok ()
  | Lock.Blocked blockers -> Error blockers

type 'a lock_result = Locked of 'a | Lock_wait of int list

(* --- recovery-capable primitive mutations ------------------------------ *)

(* All mutations funnel through these, so normal operation, undo, and
   replay behave identically. Each validates that the operation will
   succeed, then audits, then applies: an audit record must never describe
   an operation that failed, or recovery would replay it. *)

let do_insert t ~tx f ~key ~record =
  let* b = btree_of f in
  if Btree.lookup b key <> None then Errors.fail (Errors.Duplicate_key key)
  else if not (Btree.record_fits b ~key ~record) then
    Errors.fail (Errors.Bad_request "record exceeds maximum size")
  else begin
    let lsn = audit t ~tx (Ar.Insert { file = f.f_id; key; image = record }) in
    match Btree.insert b ~key ~record ~lsn with
    | Ok () -> Ok lsn
    | Error e -> Errors.fatal ("Dp.do_insert: audited insert failed: " ^ Errors.to_string e)
  end

let do_delete t ~tx f ~key =
  let* b = btree_of f in
  match Btree.lookup b key with
  | None -> Errors.fail (Errors.Not_found_key key)
  | Some image ->
      let lsn = audit t ~tx (Ar.Delete { file = f.f_id; key; image }) in
      let* _old = Btree.delete b ~key ~lsn in
      Ok image

let do_update_full t ~tx f ~key ~record =
  let* b = btree_of f in
  match Btree.lookup b key with
  | None -> Errors.fail (Errors.Not_found_key key)
  | Some _ when not (Btree.record_fits b ~key ~record) ->
      Errors.fail (Errors.Bad_request "record exceeds maximum size")
  | Some before ->
      let lsn =
        audit t ~tx (Ar.Update_full { file = f.f_id; key; before; after = record })
      in
      let* _old = Btree.update b ~key ~record ~lsn in
      Ok before

(* field-compressed update: audit only the touched fields *)
let do_update_fields t ~tx f ~key ~before_row ~after_row ~targets schema =
  let* b = btree_of f in
  let record = Row.encode schema after_row in
  if not (Btree.record_fits b ~key ~record) then
    Errors.fail (Errors.Bad_request "record exceeds maximum size")
  else begin
    let fields =
      List.map (fun i -> (i, before_row.(i), after_row.(i))) targets
    in
    let lsn = audit t ~tx (Ar.Update_fields { file = f.f_id; key; fields }) in
    let* _old = Btree.update b ~key ~record ~lsn in
    Ok ()
  end

(* undo closures registered with TMF; they re-audit (compensation) *)
let register_undo_insert t ~tx f ~key =
  Tmf.register_undo t.tmf ~tx ~owner:t.dp_name (fun () ->
      match do_delete t ~tx f ~key with
      | Ok _ -> ()
      | Error e -> Errors.fatal ("Dp undo-insert: " ^ Errors.to_string e))

let register_undo_delete t ~tx f ~key ~image =
  Tmf.register_undo t.tmf ~tx ~owner:t.dp_name (fun () ->
      match do_insert t ~tx f ~key ~record:image with
      | Ok _ -> ()
      | Error e -> Errors.fatal ("Dp undo-delete: " ^ Errors.to_string e))

let register_undo_update t ~tx f ~key ~before =
  Tmf.register_undo t.tmf ~tx ~owner:t.dp_name (fun () ->
      match do_update_full t ~tx f ~key ~record:before with
      | Ok _ -> ()
      | Error e -> Errors.fatal ("Dp undo-update: " ^ Errors.to_string e))

(* --- constraint checking ------------------------------------------------- *)

let check_constraint f row =
  match f.f_check with
  | None -> Ok ()
  | Some check ->
      if Expr.eval_pred row check then Ok ()
      else
        Errors.fail
          (Errors.Constraint_violation
             (Format.asprintf "CHECK %a rejected row %a" Expr.pp check
                Row.pp_row row))

let validate_sql_row f row =
  match f.f_schema with
  | None -> Ok ()
  | Some schema -> Row.validate schema row

(* --- point / record operations ------------------------------------------- *)

let op_read t ~file ~tx ~key ~lock =
  let* f = find_file t file in
  let* b = btree_of f in
  let locked =
    match lock_of_mode lock with
    | None -> Ok ()
    | Some mode -> (
        match try_lock t ~tx ~file (Lock.Record key) mode with
        | Ok () -> Ok ()
        | Error blockers -> Error blockers)
  in
  match locked with
  | Error blockers ->
      Ok (Rp_blocked { blockers; processed = 0; last_key = ""; scb = -1 })
  | Ok () -> (
      Sim.tick t.sim 15;
      match Btree.lookup b key with
      | Some record -> Ok (Rp_record { key; record })
      | None -> Errors.fail (Errors.Not_found_key key))

let op_entry_read_next t ~file ~tx ~from_addr ~inclusive =
  ignore tx;
  let* f = find_file t file in
  let* e = entry_of f in
  let start = if inclusive then from_addr else from_addr + 1 in
  Sim.tick t.sim 10;
  match Entryfile.next_from e ~addr:start with
  | None -> Ok Rp_end
  | Some (addr, record) ->
      let st = Sim.stats t.sim in
      st.Stats.records_read <- st.Stats.records_read + 1;
      st.Stats.records_returned <- st.Stats.records_returned + 1;
      Ok (Rp_record { key = Keycode.of_int addr; record })

let op_read_next t ~file ~tx ~from_key ~inclusive ~lock ~sbb =
  let* f = find_file t file in
  match f.f_structure with
  | S_entry _ ->
      (* entry-sequenced sequential read: addressed by record address *)
      let from_addr =
        if String.equal from_key "" then -1
        else Keycode.read_int (Nsql_util.Codec.reader from_key)
      in
      op_entry_read_next t ~file ~tx ~from_addr ~inclusive
  | S_rel _ | S_btree _ ->
  let* b = btree_of f in
  let start = if inclusive then from_key else Keycode.successor from_key in
  let cursor = Btree.seek b start in
  match Btree.cursor_entry b cursor with
  | None -> Ok Rp_end
  | Some (key, record) ->
      if sbb then begin
        (* real sequential block buffering: ship the rest of this physical
           block in one reply; only file-level locking is effective *)
        let this_block = Btree.cursor_block cursor in
        let rec collect c acc last =
          match Btree.cursor_entry b c with
          | Some (k, r) when Btree.cursor_block c = this_block ->
              collect (Btree.advance b c) ((k, r) :: acc) k
          | Some _ | None ->
              (List.rev acc, last, Btree.cursor_entry b c <> None)
        in
        let entries, last_key, more = collect cursor [] key in
        let s = Sim.stats t.sim in
        s.Stats.records_read <- s.Stats.records_read + List.length entries;
        s.Stats.records_returned <-
          s.Stats.records_returned + List.length entries;
        Sim.tick t.sim (10 * List.length entries);
        Ok (Rp_block { entries; last_key; more; scb = -1 })
      end
      else begin
        let locked =
          match lock_of_mode lock with
          | None -> Ok ()
          | Some mode -> (
              match try_lock t ~tx ~file (Lock.Record key) mode with
              | Ok () -> Ok ()
              | Error blockers -> Error blockers)
        in
        match locked with
        | Error blockers ->
            Ok
              (Rp_blocked
                 { blockers; processed = 0; last_key = from_key; scb = -1 })
        | Ok () ->
            let s = Sim.stats t.sim in
            s.Stats.records_read <- s.Stats.records_read + 1;
            s.Stats.records_returned <- s.Stats.records_returned + 1;
            Sim.tick t.sim 15;
            Ok (Rp_record { key; record })
      end

(* whole-record writes to a SQL file must still satisfy its structure and
   CHECK constraint — the Disk Process enforces them regardless of which
   interface carried the record *)
let check_sql_image f record =
  match f.f_schema with
  | None -> Ok ()
  | Some schema -> (
      match Row.decode schema record with
      | Error _ -> Errors.fail (Errors.Bad_request "malformed record image")
      | Ok row ->
          let* () = Row.validate schema row in
          check_constraint f row)

let op_insert t ~file ~tx ~key ~record =
  let* () = require_tx t tx in
  let* f = find_file t file in
  let* () = check_sql_image f record in
  match try_lock t ~tx ~file (Lock.Record key) Lock.Exclusive with
  | Error blockers ->
      Ok (Rp_blocked { blockers; processed = 0; last_key = ""; scb = -1 })
  | Ok () ->
      let* _lsn = do_insert t ~tx f ~key ~record in
      register_undo_insert t ~tx f ~key;
      Ok Rp_ok

let op_update t ~file ~tx ~key ~record =
  let* () = require_tx t tx in
  let* f = find_file t file in
  let* () = check_sql_image f record in
  match try_lock t ~tx ~file (Lock.Record key) Lock.Exclusive with
  | Error blockers ->
      Ok (Rp_blocked { blockers; processed = 0; last_key = ""; scb = -1 })
  | Ok () ->
      let* before = do_update_full t ~tx f ~key ~record in
      register_undo_update t ~tx f ~key ~before;
      Ok Rp_ok

let op_delete t ~file ~tx ~key =
  let* () = require_tx t tx in
  let* f = find_file t file in
  match try_lock t ~tx ~file (Lock.Record key) Lock.Exclusive with
  | Error blockers ->
      Ok (Rp_blocked { blockers; processed = 0; last_key = ""; scb = -1 })
  | Ok () ->
      let* image = do_delete t ~tx f ~key in
      register_undo_delete t ~tx f ~key ~image;
      Ok Rp_ok

let op_lock_file t ~file ~tx ~lock =
  let* _f = find_file t file in
  match lock_of_mode lock with
  | None -> Errors.fail (Errors.Bad_request "LOCKFILE with mode none")
  | Some mode -> (
      match try_lock t ~tx ~file Lock.File mode with
      | Ok () -> Ok Rp_ok
      | Error blockers ->
          Ok (Rp_blocked { blockers; processed = 0; last_key = ""; scb = -1 }))

(* --- relative / entry-sequenced operations -------------------------------- *)

let op_lock_generic t ~file ~tx ~prefix ~lock =
  let* _f = find_file t file in
  match lock_of_mode lock with
  | None -> Errors.fail (Errors.Bad_request "LOCKGENERIC with mode none")
  | Some mode -> (
      match try_lock t ~tx ~file (Lock.Generic prefix) mode with
      | Ok () -> Ok Rp_ok
      | Error blockers ->
          Ok (Rp_blocked { blockers; processed = 0; last_key = ""; scb = -1 }))

let rel_key slot = Keycode.of_int slot

let op_rel_read t ~file ~tx ~slot =
  ignore tx;
  let* f = find_file t file in
  let* r = rel_of f in
  let* record = Relfile.read r ~slot in
  Ok (Rp_record { key = rel_key slot; record })

let op_rel_write t ~file ~tx ~slot ~record =
  let* () = require_tx t tx in
  let* f = find_file t file in
  let* r = rel_of f in
  match try_lock t ~tx ~file (Lock.Record (rel_key slot)) Lock.Exclusive with
  | Error blockers ->
      Ok (Rp_blocked { blockers; processed = 0; last_key = ""; scb = -1 })
  | Ok () ->
      let* () =
        if String.length record > Relfile.slot_size r then
          Errors.fail (Errors.Bad_request "record exceeds slot size")
        else
          match Relfile.read r ~slot with
          | Ok _ -> Errors.fail (Errors.Duplicate_key (string_of_int slot))
          | Error (Errors.Not_found_key _) -> Ok ()
          | Error e -> Errors.fail e
      in
      let lsn =
        audit t ~tx (Ar.Insert { file = f.f_id; key = rel_key slot; image = record })
      in
      let* () = Relfile.write r ~slot ~record ~lsn in
      Tmf.register_undo t.tmf ~tx ~owner:t.dp_name (fun () ->
          ignore
            (audit t ~tx
               (Ar.Delete { file = f.f_id; key = rel_key slot; image = record }));
          match Relfile.delete r ~slot ~lsn with
          | Ok _ -> ()
          | Error err -> Errors.fatal ("Dp undo-rel-insert: " ^ Errors.to_string err));
      Ok (Rp_slot slot)

let op_rel_rewrite t ~file ~tx ~slot ~record =
  let* () = require_tx t tx in
  let* f = find_file t file in
  let* r = rel_of f in
  match try_lock t ~tx ~file (Lock.Record (rel_key slot)) Lock.Exclusive with
  | Error blockers ->
      Ok (Rp_blocked { blockers; processed = 0; last_key = ""; scb = -1 })
  | Ok () ->
      let* before = Relfile.read r ~slot in
      let* () =
        if String.length record > Relfile.slot_size r then
          Errors.fail (Errors.Bad_request "record exceeds slot size")
        else Ok ()
      in
      let lsn =
        audit t ~tx
          (Ar.Update_full { file = f.f_id; key = rel_key slot; before; after = record })
      in
      let* _old = Relfile.rewrite r ~slot ~record ~lsn in
      Tmf.register_undo t.tmf ~tx ~owner:t.dp_name (fun () ->
          ignore
            (audit t ~tx
               (Ar.Update_full
                  { file = f.f_id; key = rel_key slot; before = record; after = before }));
          match Relfile.rewrite r ~slot ~record:before ~lsn with
          | Ok _ -> ()
          | Error err -> Errors.fatal ("Dp undo-rel-rewrite: " ^ Errors.to_string err));
      Ok Rp_ok

let op_rel_delete t ~file ~tx ~slot =
  let* () = require_tx t tx in
  let* f = find_file t file in
  let* r = rel_of f in
  match try_lock t ~tx ~file (Lock.Record (rel_key slot)) Lock.Exclusive with
  | Error blockers ->
      Ok (Rp_blocked { blockers; processed = 0; last_key = ""; scb = -1 })
  | Ok () ->
      let* image = Relfile.read r ~slot in
      let lsn =
        audit t ~tx (Ar.Delete { file = f.f_id; key = rel_key slot; image })
      in
      let* _old = Relfile.delete r ~slot ~lsn in
      Tmf.register_undo t.tmf ~tx ~owner:t.dp_name (fun () ->
          ignore
            (audit t ~tx (Ar.Insert { file = f.f_id; key = rel_key slot; image }));
          match Relfile.write r ~slot ~record:image ~lsn with
          | Ok () -> ()
          | Error err -> Errors.fatal ("Dp undo-rel-delete: " ^ Errors.to_string err));
      Ok Rp_ok

let op_entry_append t ~file ~tx ~record =
  let* () = require_tx t tx in
  let* f = find_file t file in
  let* e = entry_of f in
  (* entry-sequenced inserts at EOF: serialize appenders via a generic
     lock on the EOF *)
  match try_lock t ~tx ~file (Lock.Generic "EOF") Lock.Exclusive with
  | Error blockers ->
      Ok (Rp_blocked { blockers; processed = 0; last_key = ""; scb = -1 })
  | Ok () ->
      let* () =
        let bs = Disk.block_size t.volume in
        if String.length record + 2 > bs then
          Errors.fail (Errors.Bad_request "record exceeds block size")
        else Ok ()
      in
      let lsn = audit t ~tx (Ar.Insert { file = f.f_id; key = ""; image = record }) in
      let* addr = Entryfile.append e ~record ~lsn in
      Tmf.register_undo t.tmf ~tx ~owner:t.dp_name (fun () ->
          ignore
            (audit t ~tx
               (Ar.Delete { file = f.f_id; key = Keycode.of_int addr; image = record }));
          match Entryfile.truncate_to e ~addr ~lsn with
          | Ok () -> ()
          | Error err -> Errors.fatal ("Dp undo-append: " ^ Errors.to_string err));
      Ok (Rp_slot addr)

let op_entry_read t ~file ~tx ~addr =
  ignore tx;
  let* f = find_file t file in
  let* e = entry_of f in
  let* record = Entryfile.read e ~addr in
  Ok (Rp_record { key = Keycode.of_int addr; record })

(* --- set-oriented scans ---------------------------------------------------- *)

let alloc_scb t scb =
  let id = t.next_scb in
  t.next_scb <- id + 1;
  Hashtbl.replace t.scbs id scb;
  ckpt_push t
    (Ck_scb_open
       {
         scb = id;
         file = scb.scb_file;
         lo = scb.scb_lo;
         hi = scb.scb_hi;
         body = ckpt_body_of_scb scb;
       });
  id

let find_scb t id =
  match Hashtbl.find_opt t.scbs id with
  | Some scb -> Ok scb
  | None ->
      if t.lost_scbs then
        (* the cursor predates a replica-less takeover: retryable, so the
           session's retry machinery re-runs the statement from scratch *)
        Errors.fail
          (Errors.Takeover (Printf.sprintf "SCB %d lost in takeover" id))
      else
        Errors.fail (Errors.Bad_request (Printf.sprintf "unknown SCB %d" id))

(* Sequential pre-fetch heuristic: when the scan enters leaf block [b] and
   the previous leaf was [b-1] (physically clustered), asynchronously read
   ahead. Where clustering is broken by splits, the heuristic stays quiet.

   At queue depth 1 the read-ahead is one bulk window, re-armed only once
   the previous window has drained so each pre-fetch is a maximal bulk
   I/O — the historical behaviour, byte for byte. With a deeper device
   queue the scan keeps [disk_queue_depth] windows in flight: each
   sequential leaf entry tops the submitted frontier ([scb_pf_hi]) up to
   [depth] windows ahead, so the bulk transfers overlap each other and
   the DP's reply encoding across the device's channels. *)
let maybe_prefetch t scb block =
  let cfg = Sim.config t.sim in
  let depth = cfg.Config.disk_queue_depth in
  (if cfg.Config.dp_prefetch && block = scb.scb_prev_leaf + 1 then
     let window = Disk.max_bulk_blocks t.volume in
     if depth <= 1 then begin
       if not (Cache.resident t.cache (block + 1)) then begin
         let first = block + 1 in
         let avail = Disk.blocks t.volume - first in
         if avail > 0 then
           Cache.prefetch t.cache ~first ~count:(min window avail)
       end
     end
     else begin
       (* clamp the frontier to what the pool can hold: steady state keeps
          the unconsumed read-ahead plus the same number of just-consumed
          blocks resident (their LRU ages interleave), so a span past half
          the pool — less slack for the index path — evicts pre-fetched
          blocks before the scan reaches them and the scan degenerates
          into demand re-reads with seeks *)
       let cap = Cache.capacity t.cache in
       let span = min (depth * window) (max window ((cap / 2) - window)) in
       let target = min (block + span) (Disk.blocks t.volume - 1) in
       let lo = max (block + 1) (scb.scb_pf_hi + 1) in
       if target >= lo then begin
         Cache.prefetch t.cache ~first:lo ~count:(target - lo + 1);
         scb.scb_pf_hi <- target
       end
     end);
  scb.scb_prev_leaf <- block

(* One GET^FIRST/GET^NEXT execution: fill a (virtual or real) block. *)
let run_read_scan t ~tx f scb scb_id ~from_key =
  let cfg = Sim.config t.sim in
  let s = Sim.stats t.sim in
  let* b = btree_of f in
  match scb.scb_body with
  | Scb_update _ | Scb_delete _ | Scb_agg _ ->
      Errors.fail (Errors.Bad_request "SCB is not a read subset")
  | Scb_read { buffering; pred; proj; lock } -> (
      let schema = f.f_schema in
      let start_key = from_key in
      let ticks0 = s.Stats.cpu_ticks in
      let examined = ref 0 in
      let reply_bytes = ref 0 in
      let out = ref [] in
      let out_count = ref 0 in
      let last_key = ref from_key in
      let more = ref false in
      let first_block = ref (-1) in
      let stop = ref false in
      let cursor = ref (Btree.seek b from_key) in
      while not !stop do
        match Btree.cursor_entry b !cursor with
        | None -> stop := true
        | Some (key, record) ->
            if Keycode.compare_keys key scb.scb_hi >= 0 then stop := true
            else begin
              (match Btree.cursor_block !cursor with
              | Some blk ->
                  if !first_block < 0 then first_block := blk;
                  (* RSBB ships exactly one physical block per message *)
                  if buffering = B_rsbb && !first_block >= 0 && blk <> !first_block
                  then begin
                    stop := true;
                    more := true
                  end
                  else maybe_prefetch t scb blk
              | None -> ());
              if not !stop then begin
                incr examined;
                s.Stats.records_read <- s.Stats.records_read + 1;
                Sim.tick t.sim 15;
                let selected, row =
                  match (pred, schema) with
                  | None, _ -> (true, None)
                  | Some p, Some sch ->
                      let row = Row.decode_exn sch record in
                      Sim.tick t.sim (2 * Expr.size p);
                      (Expr.eval_pred row p, Some row)
                  | Some _, None -> (true, None)
                in
                if selected then begin
                  (match (buffering, proj, schema) with
                  | B_vsbb, Some fields, Some sch ->
                      let row =
                        match row with
                        | Some r -> r
                        | None -> Row.decode_exn sch record
                      in
                      let projected = Row.project row fields in
                      let w = Nsql_util.Codec.writer () in
                      Row.encode_values w projected;
                      reply_bytes := !reply_bytes + Nsql_util.Codec.written w;
                      out := `Row projected :: !out
                  | B_vsbb, None, Some sch ->
                      let row =
                        match row with
                        | Some r -> r
                        | None -> Row.decode_exn sch record
                      in
                      let w = Nsql_util.Codec.writer () in
                      Row.encode_values w row;
                      reply_bytes := !reply_bytes + Nsql_util.Codec.written w;
                      out := `Row row :: !out
                  | B_vsbb, _, None | B_rsbb, _, _ ->
                      reply_bytes :=
                        !reply_bytes + String.length key + String.length record;
                      out := `Entry (key, record) :: !out);
                  incr out_count;
                  s.Stats.records_returned <- s.Stats.records_returned + 1;
                  Sim.tick t.sim 10
                end;
                last_key := key;
                cursor := Btree.advance b !cursor;
                (* re-drive triggers: full buffer, record limit, or the
                   processor-time slice *)
                if
                  !reply_bytes >= cfg.Config.vsbb_buffer_bytes
                  || !examined >= cfg.Config.dp_records_per_request
                  || s.Stats.cpu_ticks - ticks0 >= cfg.Config.dp_ticks_per_request
                then begin
                  stop := true;
                  more := Btree.cursor_entry b !cursor <> None
                end
              end
            end
      done;
      (* virtual-block group locking: one lock covers the whole span this
         request processed, replacing per-record locks *)
      let lock_outcome =
        match lock_of_mode lock with
        | None -> Ok ()
        | Some mode ->
            if Keycode.compare_keys start_key !last_key <= 0 && !examined > 0
            then
              try_lock t ~tx ~file:f.f_id
                (Lock.Range (start_key, Keycode.successor !last_key))
                mode
            else Ok ()
      in
      match lock_outcome with
      | Error blockers ->
          Ok
            (Rp_blocked
               { blockers; processed = 0; last_key = from_key; scb = scb_id })
      | Ok () ->
          let items = List.rev !out in
          if !out_count = 0 && not !more then Ok Rp_end
          else
            let rows =
              List.filter_map (function `Row r -> Some r | `Entry _ -> None) items
            in
            let entries =
              List.filter_map
                (function `Entry e -> Some e | `Row _ -> None)
                items
            in
            if buffering = B_vsbb && f.f_schema <> None then
              Ok
                (Rp_vblock
                   { rows; last_key = !last_key; more = !more; scb = scb_id })
            else
              Ok
                (Rp_block
                   { entries; last_key = !last_key; more = !more; scb = scb_id }))

(* One AGGREGATE^FIRST/AGGREGATE^NEXT execution: fold qualifying records
   into the SCB's per-group accumulators under the same re-drive budget as
   a read scan. Intermediate replies carry no group data (the partials
   stay in the SCB); the final reply ships every group's accumulator state
   in first-seen order — which is key order, because the scan is. *)
let run_agg_scan t ~tx f scb scb_id ~from_key =
  let cfg = Sim.config t.sim in
  let s = Sim.stats t.sim in
  let* b = btree_of f in
  match scb.scb_body with
  | Scb_read _ | Scb_update _ | Scb_delete _ ->
      Errors.fail (Errors.Bad_request "SCB is not an aggregate subset")
  | Scb_agg ({ pred; group_keys; aggs; lock; ag_groups; _ } as ag) -> (
      let* schema =
        match f.f_schema with
        | Some sch -> Ok sch
        | None ->
            Errors.fail (Errors.Bad_request "AGGREGATE requires a SQL file")
      in
      let start_key = from_key in
      let ticks0 = s.Stats.cpu_ticks in
      let examined = ref 0 in
      let last_key = ref from_key in
      let more = ref false in
      let stop = ref false in
      let cursor = ref (Btree.seek b from_key) in
      while not !stop do
        match Btree.cursor_entry b !cursor with
        | None -> stop := true
        | Some (key, record) ->
            if Keycode.compare_keys key scb.scb_hi >= 0 then stop := true
            else begin
              (match Btree.cursor_block !cursor with
              | Some blk -> maybe_prefetch t scb blk
              | None -> ());
              incr examined;
              s.Stats.records_read <- s.Stats.records_read + 1;
              Sim.tick t.sim 15;
              let row = Row.decode_exn schema record in
              let selected =
                match pred with
                | None -> true
                | Some p ->
                    Sim.tick t.sim (2 * Expr.size p);
                    Expr.eval_pred row p
              in
              if selected then begin
                let key_vals = Array.map (fun i -> row.(i)) group_keys in
                let w = Nsql_util.Codec.writer () in
                Row.encode_values w key_vals;
                let gk = Nsql_util.Codec.contents w in
                let accs =
                  match Hashtbl.find_opt ag_groups gk with
                  | Some (_, accs) -> accs
                  | None ->
                      let accs = List.map (fun _ -> fresh_acc ()) aggs in
                      Hashtbl.replace ag_groups gk (key_vals, accs);
                      ag.ag_order <- gk :: ag.ag_order;
                      accs
                in
                List.iter2 (fun acc spec -> feed_spec acc spec row) accs aggs;
                Sim.tick t.sim 5
              end;
              last_key := key;
              cursor := Btree.advance b !cursor;
              if
                !examined >= cfg.Config.dp_records_per_request
                || s.Stats.cpu_ticks - ticks0 >= cfg.Config.dp_ticks_per_request
              then begin
                stop := true;
                more := Btree.cursor_entry b !cursor <> None
              end
            end
      done;
      (* virtual-block group locking, exactly as a read scan: one range
         lock covers the span this request examined *)
      let lock_outcome =
        match lock_of_mode lock with
        | None -> Ok ()
        | Some mode ->
            if Keycode.compare_keys start_key !last_key <= 0 && !examined > 0
            then
              try_lock t ~tx ~file:f.f_id
                (Lock.Range (start_key, Keycode.successor !last_key))
                mode
            else Ok ()
      in
      match lock_outcome with
      | Error blockers ->
          Ok
            (Rp_blocked
               { blockers; processed = 0; last_key = from_key; scb = scb_id })
      | Ok () ->
          let groups =
            if !more then []
            else
              List.rev_map
                (fun gk ->
                  match Hashtbl.find_opt ag_groups gk with
                  | Some g -> g
                  | None -> Errors.fatal "Dp.run_agg_scan: group order desync")
                ag.ag_order
          in
          Ok (Rp_agg { groups; last_key = !last_key; more = !more; scb = scb_id }))

(* One UPDATE^SUBSET / DELETE^SUBSET execution.

   Restart semantics: the FIRST message starts at the range's begin key
   (inclusive); each NEXT message carries the last fully processed key and
   restarts strictly after it. If a record's lock is unavailable, the reply
   reports the last key processed {e before} it (or "" if none this
   request), so the re-drive retries the conflicting record. One update is
   applied per matched record; updated records are never revisited because
   the scan key always advances past them. *)
let run_write_scan t ~tx f scb scb_id ~from_key ~inclusive =
  let cfg = Sim.config t.sim in
  let s = Sim.stats t.sim in
  let* () = require_tx t tx in
  let* b = btree_of f in
  let* schema =
    match f.f_schema with
    | Some sch -> Ok sch
    | None -> Errors.fail (Errors.Bad_request "set update requires a SQL file")
  in
  let pred, action =
    match scb.scb_body with
    | Scb_update { pred; assignments } -> (pred, `Update assignments)
    | Scb_delete { pred } -> (pred, `Delete)
    | Scb_read _ | Scb_agg _ -> invalid_arg "Dp.run_write_scan: read SCB"
  in
  let apply_one key record row =
    match action with
    | `Update assignments ->
        let after_row = Expr.apply_assignments row assignments in
        Sim.tick t.sim
          (List.fold_left
             (fun acc a -> acc + (2 * Expr.size a.Expr.source))
             0 assignments);
        let* () = validate_sql_row f after_row in
        let* () = check_constraint f after_row in
        let targets = List.map (fun a -> a.Expr.target) assignments in
        let* () =
          do_update_fields t ~tx f ~key ~before_row:row ~after_row ~targets
            schema
        in
        register_undo_update t ~tx f ~key ~before:record;
        Ok ()
    | `Delete ->
        let* image = do_delete t ~tx f ~key in
        register_undo_delete t ~tx f ~key ~image;
        Ok ()
  in
  let ticks0 = s.Stats.cpu_ticks in
  let examined = ref 0 in
  let processed = ref 0 in
  (* last key fully handled this request; "" = none yet *)
  let last_done = ref "" in
  let next_seek = ref (if inclusive then from_key else Keycode.successor from_key) in
  let more = ref false in
  let result = ref None in
  let continue_ = ref true in
  while !continue_ do
    let cursor = Btree.seek b !next_seek in
    match Btree.cursor_entry b cursor with
    | None -> continue_ := false
    | Some (key, record) ->
        if Keycode.compare_keys key scb.scb_hi >= 0 then continue_ := false
        else begin
          (match Btree.cursor_block cursor with
          | Some blk -> maybe_prefetch t scb blk
          | None -> ());
          incr examined;
          s.Stats.records_read <- s.Stats.records_read + 1;
          Sim.tick t.sim 15;
          let row = Row.decode_exn schema record in
          let selected =
            match pred with
            | None -> true
            | Some p ->
                Sim.tick t.sim (2 * Expr.size p);
                Expr.eval_pred row p
          in
          if selected then begin
            (* per-record exclusive lock for set mutations *)
            match try_lock t ~tx ~file:f.f_id (Lock.Record key) Lock.Exclusive with
            | Error blockers ->
                result :=
                  Some
                    (Rp_blocked
                       {
                         blockers;
                         processed = !processed;
                         last_key = !last_done;
                         scb = scb_id;
                       });
                continue_ := false
            | Ok () -> (
                match apply_one key record row with
                | Ok () ->
                    incr processed;
                    last_done := key;
                    next_seek := Keycode.successor key
                | Error e ->
                    result := Some (Rp_error e);
                    continue_ := false)
          end
          else begin
            last_done := key;
            next_seek := Keycode.successor key
          end;
          if
            !continue_
            && (!examined >= cfg.Config.dp_records_per_request
               || s.Stats.cpu_ticks - ticks0 >= cfg.Config.dp_ticks_per_request)
          then begin
            more := true;
            continue_ := false
          end
        end
  done;
  match !result with
  | Some r -> Ok r
  | None ->
      Ok
        (Rp_progress
           {
             processed = !processed;
             last_key = !last_done;
             more = !more;
             scb = scb_id;
           })

(* --- SQL row inserts --------------------------------------------------------- *)

let insert_sql_row t ~tx f row =
  let* schema =
    match f.f_schema with
    | Some s -> Ok s
    | None -> Errors.fail (Errors.Bad_request "INSERT^ROW requires a SQL file")
  in
  let* () = Row.validate schema row in
  let* () = check_constraint f row in
  let key = Row.key_of_row schema row in
  match try_lock t ~tx ~file:f.f_id (Lock.Record key) Lock.Exclusive with
  | Error blockers -> Ok (Lock_wait blockers)
  | Ok () ->
      let record = Row.encode schema row in
      let* _lsn = do_insert t ~tx f ~key ~record in
      register_undo_insert t ~tx f ~key;
      Ok (Locked key)

let op_insert_row t ~file ~tx ~row =
  let* () = require_tx t tx in
  let* f = find_file t file in
  let* r = insert_sql_row t ~tx f row in
  match r with
  | Locked _ -> Ok Rp_ok
  | Lock_wait blockers ->
      Ok (Rp_blocked { blockers; processed = 0; last_key = ""; scb = -1 })

(* Blocked sequential insert (the paper's future enhancement, E11): the
   whole target key range is locked by prior agreement, then the batch is
   applied with one message. *)
let op_insert_block t ~file ~tx ~rows =
  let* () = require_tx t tx in
  let* f = find_file t file in
  let* schema =
    match f.f_schema with
    | Some s -> Ok s
    | None -> Errors.fail (Errors.Bad_request "INSERT^BLOCK requires a SQL file")
  in
  match rows with
  | [] -> Ok Rp_ok
  | _ :: _ ->
      let keys = List.map (fun row -> Row.key_of_row schema row) rows in
      let lo = List.fold_left min (List.hd keys) keys in
      let hi = Keycode.successor (List.fold_left max (List.hd keys) keys) in
      (* the empty target range is locked before the batch lands, avoiding
         late-detected duplicate keys *)
      (match try_lock t ~tx ~file (Lock.Range (lo, hi)) Lock.Exclusive with
      | Error blockers ->
          Ok (Rp_blocked { blockers; processed = 0; last_key = ""; scb = -1 })
      | Ok () ->
          let rec apply n = function
            | [] ->
                Ok
                  (Rp_progress
                     { processed = n; last_key = ""; more = false; scb = -1 })
            | row :: rest ->
                let* () = Row.validate schema row in
                let* () = check_constraint f row in
                let key = Row.key_of_row schema row in
                let record = Row.encode schema row in
                let* _lsn = do_insert t ~tx f ~key ~record in
                register_undo_insert t ~tx f ~key;
                apply (n + 1) rest
          in
          apply 0 rows)

(* A buffer of updates/deletes of specific records, applied under one
   message. Updates are audited field-compressed; the whole batch fails on
   the first error (the transaction's undo restores prior ops). *)
let op_apply_block t ~file ~tx ~ops =
  let* () = require_tx t tx in
  let* f = find_file t file in
  let* schema =
    match f.f_schema with
    | Some s -> Ok s
    | None -> Errors.fail (Errors.Bad_request "APPLY^BLOCK requires a SQL file")
  in
  let* b = btree_of f in
  let apply (key, op) =
    match try_lock t ~tx ~file (Lock.Record key) Lock.Exclusive with
    | Error blockers -> Error (`Blocked blockers)
    | Ok () -> (
        match op with
        | Ob_delete -> (
            match do_delete t ~tx f ~key with
            | Ok image ->
                register_undo_delete t ~tx f ~key ~image;
                Ok ()
            | Error e -> Error (`Err e))
        | Ob_update assignments -> (
            match Btree.lookup b key with
            | None -> Error (`Err (Errors.Not_found_key key))
            | Some record -> (
                let row = Row.decode_exn schema record in
                let after_row = Expr.apply_assignments row assignments in
                let checked =
                  let* () = validate_sql_row f after_row in
                  let* () = check_constraint f after_row in
                  let targets =
                    List.map (fun a -> a.Expr.target) assignments
                  in
                  let* () =
                    do_update_fields t ~tx f ~key ~before_row:row ~after_row
                      ~targets schema
                  in
                  register_undo_update t ~tx f ~key ~before:record;
                  Ok ()
                in
                match checked with Ok () -> Ok () | Error e -> Error (`Err e))))
  in
  let rec go n = function
    | [] -> Ok (Rp_progress { processed = n; last_key = ""; more = false; scb = -1 })
    | op :: rest -> (
        match apply op with
        | Ok () -> go (n + 1) rest
        | Error (`Blocked blockers) ->
            Ok (Rp_blocked { blockers; processed = n; last_key = ""; scb = -1 })
        | Error (`Err e) -> Error e)
  in
  go 0 ops

(* --- DDL ----------------------------------------------------------------------- *)

let op_create_file t ~fname ~kind ~schema ~check =
  if Hashtbl.mem t.by_name fname then Errors.fail (Errors.File_exists fname)
  else if schema = None && check <> None then
    Errors.fail (Errors.Bad_request "CHECK constraint requires a schema")
  else begin
    let id = Tmf.allocate_file_id t.tmf in
    let structure =
      match kind with
      | K_key_sequenced ->
          S_btree (Btree.create t.sim t.cache ~name:fname)
      | K_relative slot_size ->
          S_rel (Relfile.create t.sim t.cache ~name:fname ~slot_size)
      | K_entry_sequenced -> S_entry (Entryfile.create t.sim t.cache ~name:fname)
    in
    let f =
      { f_id = id; f_name = fname; f_kind = kind; f_schema = schema;
        f_check = check; f_structure = structure }
    in
    Hashtbl.replace t.files id f;
    Hashtbl.replace t.by_name fname id;
    Ok (Rp_file id)
  end

(* The Disk Process frees a Subset Control Block itself as soon as it
   reports the subset exhausted, so the File System never has to send a
   CLOSE^SCB for a completed subset. *)
let drop_scb_when_done t = function
  | Rp_end -> ()
  | Rp_block { more = false; scb; _ }
  | Rp_vblock { more = false; scb; _ }
  | Rp_progress { more = false; scb; _ }
  | Rp_agg { more = false; scb; _ } ->
      if scb >= 0 && Hashtbl.mem t.scbs scb then begin
        Hashtbl.remove t.scbs scb;
        ckpt_push t (Ck_scb_close { scb })
      end
  | Rp_ok | Rp_file _ | Rp_record _ | Rp_row _ | Rp_slot _ | Rp_block _
  | Rp_vblock _ | Rp_progress _ | Rp_agg _ | Rp_blocked _ | Rp_error _ ->
      ()

(* Aggregate SCBs are the one cursor with server-held progress: when a
   re-drive boundary leaves partials in the SCB ([more = true]), checkpoint
   them so the backup's replica folds from the same accumulators. *)
let ckpt_agg_progress t scb_id scb reply =
  match reply with
  | Rp_agg { more = true; _ } -> (
      match scb.scb_body with
      | Scb_agg ag when ckpt_active t ->
          let groups =
            List.rev_map
              (fun gk -> Hashtbl.find ag.ag_groups gk)
              ag.ag_order
          in
          ckpt_push t (Ck_agg_state { scb = scb_id; groups })
      | _ -> ())
  | _ -> ()

(* --- dispatch -------------------------------------------------------------------- *)

let dispatch t req : (reply, Errors.t) result =
  match req with
  | R_create_file { fname; kind; schema; check } ->
      op_create_file t ~fname ~kind ~schema ~check
  | R_read { file; tx; key; lock } -> op_read t ~file ~tx ~key ~lock
  | R_read_next { file; tx; from_key; inclusive; lock; sbb } ->
      op_read_next t ~file ~tx ~from_key ~inclusive ~lock ~sbb
  | R_insert { file; tx; key; record } -> op_insert t ~file ~tx ~key ~record
  | R_update { file; tx; key; record } -> op_update t ~file ~tx ~key ~record
  | R_delete { file; tx; key } -> op_delete t ~file ~tx ~key
  | R_lock_file { file; tx; lock } -> op_lock_file t ~file ~tx ~lock
  | R_lock_generic { file; tx; prefix; lock } ->
      op_lock_generic t ~file ~tx ~prefix ~lock
  | R_rel_read { file; tx; slot } -> op_rel_read t ~file ~tx ~slot
  | R_rel_write { file; tx; slot; record } ->
      op_rel_write t ~file ~tx ~slot ~record
  | R_rel_rewrite { file; tx; slot; record } ->
      op_rel_rewrite t ~file ~tx ~slot ~record
  | R_rel_delete { file; tx; slot } -> op_rel_delete t ~file ~tx ~slot
  | R_entry_append { file; tx; record } -> op_entry_append t ~file ~tx ~record
  | R_entry_read { file; tx; addr } -> op_entry_read t ~file ~tx ~addr
  | R_get_first { file; tx; buffering; range; pred; proj; lock } ->
      let* f = find_file t file in
      let scb =
        {
          scb_file = file;
          scb_lo = range.Expr.lo;
          scb_hi = range.Expr.hi;
          scb_body = Scb_read { buffering; pred; proj; lock };
          scb_prev_leaf = -10;
          scb_pf_hi = -1;
        }
      in
      let scb_id = alloc_scb t scb in
      let* reply = run_read_scan t ~tx f scb scb_id ~from_key:range.Expr.lo in
      drop_scb_when_done t reply;
      Ok reply
  | R_get_next { file; tx; scb; after_key } ->
      let s = Sim.stats t.sim in
      s.Stats.redrives <- s.Stats.redrives + 1;
      let* f = find_file t file in
      let* scb_rec = find_scb t scb in
      let* reply =
        run_read_scan t ~tx f scb_rec scb ~from_key:(Keycode.successor after_key)
      in
      drop_scb_when_done t reply;
      Ok reply
  | R_update_subset_first { file; tx; range; pred; assignments } ->
      let* f = find_file t file in
      (* reject primary-key updates: the scan is keyed on them *)
      let* () =
        match f.f_schema with
        | Some sch ->
            let key_cols = Array.to_list sch.Row.key_cols in
            if
              List.exists
                (fun a -> List.mem a.Expr.target key_cols)
                assignments
            then
              Errors.fail
                (Errors.Bad_request "UPDATE of primary-key columns not allowed")
            else Ok ()
        | None -> Ok ()
      in
      let scb =
        {
          scb_file = file;
          scb_lo = range.Expr.lo;
          scb_hi = range.Expr.hi;
          scb_body = Scb_update { pred; assignments };
          scb_prev_leaf = -10;
          scb_pf_hi = -1;
        }
      in
      let scb_id = alloc_scb t scb in
      let* reply =
        run_write_scan t ~tx f scb scb_id ~from_key:range.Expr.lo ~inclusive:true
      in
      drop_scb_when_done t reply;
      Ok reply
  | R_update_subset_next { file; tx; scb; after_key } ->
      let s = Sim.stats t.sim in
      s.Stats.redrives <- s.Stats.redrives + 1;
      let* f = find_file t file in
      let* scb_rec = find_scb t scb in
      let inclusive = String.equal after_key "" in
      let from_key = if inclusive then scb_rec.scb_lo else after_key in
      let* reply = run_write_scan t ~tx f scb_rec scb ~from_key ~inclusive in
      drop_scb_when_done t reply;
      Ok reply
  | R_delete_subset_first { file; tx; range; pred } ->
      let* f = find_file t file in
      let scb =
        {
          scb_file = file;
          scb_lo = range.Expr.lo;
          scb_hi = range.Expr.hi;
          scb_body = Scb_delete { pred };
          scb_prev_leaf = -10;
          scb_pf_hi = -1;
        }
      in
      let scb_id = alloc_scb t scb in
      let* reply =
        run_write_scan t ~tx f scb scb_id ~from_key:range.Expr.lo ~inclusive:true
      in
      drop_scb_when_done t reply;
      Ok reply
  | R_delete_subset_next { file; tx; scb; after_key } ->
      let s = Sim.stats t.sim in
      s.Stats.redrives <- s.Stats.redrives + 1;
      let* f = find_file t file in
      let* scb_rec = find_scb t scb in
      let inclusive = String.equal after_key "" in
      let from_key = if inclusive then scb_rec.scb_lo else after_key in
      let* reply = run_write_scan t ~tx f scb_rec scb ~from_key ~inclusive in
      drop_scb_when_done t reply;
      Ok reply
  | R_insert_row { file; tx; row } -> op_insert_row t ~file ~tx ~row
  | R_insert_block { file; tx; rows } -> op_insert_block t ~file ~tx ~rows
  | R_apply_block { file; tx; ops } -> op_apply_block t ~file ~tx ~ops
  | R_close_scb { scb } ->
      if Hashtbl.mem t.scbs scb then begin
        Hashtbl.remove t.scbs scb;
        ckpt_push t (Ck_scb_close { scb })
      end;
      Ok Rp_ok
  | R_agg_first { file; tx; range; pred; group_keys; aggs; lock } ->
      let* f = find_file t file in
      let scb =
        {
          scb_file = file;
          scb_lo = range.Expr.lo;
          scb_hi = range.Expr.hi;
          scb_body =
            Scb_agg
              {
                pred;
                group_keys;
                aggs;
                lock;
                ag_groups = Hashtbl.create 16;
                ag_order = [];
              };
          scb_prev_leaf = -10;
          scb_pf_hi = -1;
        }
      in
      let scb_id = alloc_scb t scb in
      let* reply = run_agg_scan t ~tx f scb scb_id ~from_key:range.Expr.lo in
      ckpt_agg_progress t scb_id scb reply;
      drop_scb_when_done t reply;
      Ok reply
  | R_agg_next { file; tx; scb; after_key } ->
      let s = Sim.stats t.sim in
      s.Stats.redrives <- s.Stats.redrives + 1;
      let* f = find_file t file in
      let* scb_rec = find_scb t scb in
      let* reply =
        run_agg_scan t ~tx f scb_rec scb ~from_key:(Keycode.successor after_key)
      in
      ckpt_agg_progress t scb scb_rec reply;
      drop_scb_when_done t reply;
      Ok reply
  | R_record_count { file } ->
      let* _f = find_file t file in
      Ok (Rp_slot (record_count t ~file))

(* The transaction a request runs under, if any ([tx = 0] marks
   transactionless ENSCRIBE-style access). *)
let req_tx (req : request) =
  match req with
  | R_read { tx; _ }
  | R_read_next { tx; _ }
  | R_insert { tx; _ }
  | R_update { tx; _ }
  | R_delete { tx; _ }
  | R_lock_file { tx; _ }
  | R_lock_generic { tx; _ }
  | R_rel_read { tx; _ }
  | R_rel_write { tx; _ }
  | R_rel_rewrite { tx; _ }
  | R_rel_delete { tx; _ }
  | R_entry_append { tx; _ }
  | R_entry_read { tx; _ }
  | R_get_first { tx; _ }
  | R_get_next { tx; _ }
  | R_update_subset_first { tx; _ }
  | R_update_subset_next { tx; _ }
  | R_delete_subset_first { tx; _ }
  | R_delete_subset_next { tx; _ }
  | R_insert_row { tx; _ }
  | R_insert_block { tx; _ }
  | R_apply_block { tx; _ }
  | R_agg_first { tx; _ }
  | R_agg_next { tx; _ } -> Some tx
  | R_create_file _ | R_close_scb _ | R_record_count _ -> None

let run_request t req =
  match req_tx req with
  | Some tx when tx > 0 && Hashtbl.mem t.denied tx ->
      (* the transaction had un-checkpointed work in flight when the backup
         took over: its effects here are unknown, so every further request
         is refused until the transaction finishes (abort + retry) *)
      let s = Sim.stats t.sim in
      s.Stats.takeover_denials <- s.Stats.takeover_denials + 1;
      Rp_error
        (Errors.Takeover
           (Printf.sprintf "tx %d was in flight on %s at takeover" tx
              t.dp_name))
  | _ -> ( match dispatch t req with Ok reply -> reply | Error e -> Rp_error e)

(* Ship the deltas a dispatched request accumulated to the backup, as one
   checkpoint message. A mutation additionally carries its own request
   bytes (the write intent), so the charge covers exactly what a real
   process pair would ship before acknowledging. *)
let flush_ckpt t req =
  let pending = t.ckpt_pending in
  t.ckpt_pending <- [];
  if ckpt_active t then begin
    let items = List.rev pending in
    let items =
      if is_mutation req then Ck_intent { payload = encode_request req } :: items
      else items
    in
    if items <> [] then ckpt_emit t items
  end

let request_body t req =
  if not (Trace.enabled t.sim) then run_request t req
  else begin
    (* one span per dispatched request; a re-drive reusing a Subset
       Control Block is marked, making SCB hits visible per operator *)
    let attrs =
      ("dp", Trace.Str t.dp_name)
      ::
      (match req with
      | R_get_next { scb; _ }
      | R_update_subset_next { scb; _ }
      | R_delete_subset_next { scb; _ }
      | R_agg_next { scb; _ } ->
          [ ("scb_reuse", Trace.Bool true); ("scb", Trace.Int scb) ]
      | R_agg_first _ -> [ ("agg_fold", Trace.Bool true) ]
      | R_create_file _ | R_read _ | R_read_next _ | R_insert _ | R_update _
      | R_delete _ | R_lock_file _ | R_lock_generic _ | R_rel_read _
      | R_rel_write _ | R_rel_rewrite _ | R_rel_delete _ | R_entry_append _
      | R_entry_read _ | R_get_first _ | R_update_subset_first _
      | R_delete_subset_first _ | R_insert_row _ | R_insert_block _
      | R_apply_block _ | R_close_scb _ | R_record_count _ -> [])
    in
    let sp = Trace.begin_span t.sim ~cat:"dp" ~attrs (tag req) in
    Fun.protect
      ~finally:(fun () -> Trace.finish t.sim sp)
      (fun () -> run_request t req)
  end

let request t req =
  (* service duration via the capture-aware clock: virtual under a nowait
     issue or a pump re-dispatch, real when blocking — either way the
     requester-perceived service time of this dispatch *)
  let mc = Sim.moncore t.sim in
  let t0 = Sim.now t.sim in
  Sim.tick t.sim 20;
  let reply = request_body t req in
  flush_ckpt t req;
  let dur = Sim.now t.sim -. t0 in
  Moncore.observe mc "dp" dur;
  Moncore.add_busy mc Moncore.R_dp dur;
  reply

(* --- lock wait queue ------------------------------------------------------ *)

(* With [Config.dp_lock_wait] set, a blocked point request is parked on a
   FIFO wait queue instead of being denied: the Disk Process withholds the
   reply (a {!Msg.defer} deferral), records wait-for edges, and
   re-dispatches the request when a transaction finish releases locks.
   Only operations where [Rp_blocked] implies nothing was applied may park,
   because the re-dispatch repeats the whole operation; subset scans and
   apply-block batches carry partial progress (processed counts, SCB and
   accumulator state) and keep the immediate-denial protocol. *)
let park_tx (req : request) =
  match req with
  | R_read { tx; _ } -> Some tx
  | R_read_next { tx; _ } -> Some tx
  | R_insert { tx; _ } -> Some tx
  | R_update { tx; _ } -> Some tx
  | R_delete { tx; _ } -> Some tx
  | R_lock_file { tx; _ } -> Some tx
  | R_lock_generic { tx; _ } -> Some tx
  | R_rel_write { tx; _ } -> Some tx
  | R_rel_rewrite { tx; _ } -> Some tx
  | R_rel_delete { tx; _ } -> Some tx
  | R_entry_append { tx; _ } -> Some tx
  | R_insert_row { tx; _ } -> Some tx
  | R_insert_block { tx; _ } -> Some tx
  | R_create_file _ | R_rel_read _ | R_entry_read _ | R_get_first _
  | R_get_next _ | R_update_subset_first _ | R_update_subset_next _
  | R_delete_subset_first _ | R_delete_subset_next _ | R_apply_block _
  | R_close_scb _ | R_agg_first _ | R_agg_next _ | R_record_count _ -> None

let emit_wait_end t w ~outcome =
  Moncore.observe (Sim.moncore t.sim) "lock_wait"
    (Sim.now t.sim -. w.w_parked_at);
  if Trace.enabled t.sim then
    Trace.instant t.sim ~cat:"lock"
      ~attrs:
        [
          ("dp", Str t.dp_name);
          ("tx", Int w.w_tx);
          ("wait_us", Float (Sim.now t.sim -. w.w_parked_at));
          ("outcome", Str outcome);
        ]
      "lock_wait_end"

let remove_waiter t w =
  t.waiters <- List.filter (fun w' -> w' != w) t.waiters;
  Moncore.gauge_add (Sim.moncore t.sim) Moncore.G_parked (-1);
  Lock.Waitgraph.clear_waiting t.waitgraph ~tx:w.w_tx;
  ckpt_emit t [ Ck_unpark { tx = w.w_tx } ]

(* Deny a parked waiter (deadlock victim, wait-budget expiry): deliver the
   withheld reply as an error so its session can abort and retry. *)
let deny_waiter t w ~outcome err =
  remove_waiter t w;
  emit_wait_end t w ~outcome;
  Msg.resolve t.msys w.w_deferral (encode_reply (Rp_error err))

let find_waiter t ~tx = List.find_opt (fun w -> w.w_tx = tx) t.waiters

(* Deadlock resolution: while the wait-for relation has a cycle through
   [tx], deny the youngest transaction of the cycle (highest id — begun
   last, least work lost). Every cycle node has outgoing edges, so it is
   either parked here or is [tx] itself: the victim is always locally
   reachable. Returns [`Deny e] when [tx] itself must be denied. *)
let rec resolve_cycles t ~tx =
  match Lock.Waitgraph.find_cycle t.waitgraph ~tx with
  | None -> `Park
  | Some cycle ->
      let victim = List.fold_left max tx cycle in
      let s = Sim.stats t.sim in
      s.Stats.deadlocks <- s.Stats.deadlocks + 1;
      if Trace.enabled t.sim then
        Trace.instant t.sim ~cat:"lock"
          ~attrs:
            [
              ("dp", Str t.dp_name);
              ("victim", Int victim);
              ("cycle_len", Int (List.length cycle));
            ]
          "deadlock";
      let msg =
        Printf.sprintf "tx %d chosen as victim (cycle of %d)" victim
          (List.length cycle)
      in
      if victim = tx then begin
        Lock.Waitgraph.clear_waiting t.waitgraph ~tx;
        `Deny (Errors.Deadlock msg)
      end
      else begin
        (match find_waiter t ~tx:victim with
        | Some w -> deny_waiter t w ~outcome:"deadlock" (Errors.Deadlock msg)
        | None ->
            (* unreachable: a non-requester cycle node has out-edges only
               while parked *)
            Lock.Waitgraph.clear_waiting t.waitgraph ~tx:victim);
        resolve_cycles t ~tx
      end

let park t req ~tx ~blockers ~payload =
  Lock.Waitgraph.set_waiting t.waitgraph ~tx ~on:blockers;
  match resolve_cycles t ~tx with
  | `Deny e -> `Deny e
  | `Park ->
      let d = Msg.defer t.msys in
      let w =
        {
          w_tx = tx;
          w_req = req;
          w_deferral = d;
          w_parked_at = Sim.now t.sim;
          w_payload = payload;
        }
      in
      t.waiters <- t.waiters @ [ w ];
      Moncore.gauge_add (Sim.moncore t.sim) Moncore.G_parked 1;
      ckpt_emit t [ Ck_park { tx; payload } ];
      let s = Sim.stats t.sim in
      s.Stats.lock_waits <- s.Stats.lock_waits + 1;
      let budget = (Sim.config t.sim).Config.lock_wait_timeout_us in
      (* [Sim.schedule] against the virtual clock: under a nowait capture
         [Sim.after] would base the deadline on the frozen real clock *)
      Sim.schedule t.sim
        ~at:(Sim.now t.sim +. budget)
        (fun () ->
          if not (Msg.resolved d) then
            deny_waiter t w ~outcome:"timeout"
              (Errors.Lock_timeout "lock wait budget expired"));
      `Parked

(* Re-dispatch parked requests after a lock release, in FIFO order. The
   whole queue is scanned: per-resource FIFO is preserved (an earlier
   waiter on the freed resource re-dispatches first) while waiters on
   unrelated resources are not head-of-line blocked behind it. Each
   re-dispatch runs under a clock capture so its work lands on the parked
   requester's timeline, not the releasing transaction's. *)
let pump t =
  if t.waiters <> [] then
    List.iter
      (fun w ->
        (* a waiter denied by cycle resolution earlier in this scan is
           already resolved *)
        if not (Msg.resolved w.w_deferral) then
          let (), _probe_cost =
            Sim.capture t.sim (fun () ->
                match request t w.w_req with
                | Rp_blocked { blockers; _ } -> (
                    (* still blocked: refresh edges (the blocker set may
                       have changed) and re-check for cycles *)
                    Lock.Waitgraph.clear_waiting t.waitgraph ~tx:w.w_tx;
                    Lock.Waitgraph.set_waiting t.waitgraph ~tx:w.w_tx
                      ~on:blockers;
                    match resolve_cycles t ~tx:w.w_tx with
                    | `Park -> ()
                    | `Deny e -> deny_waiter t w ~outcome:"deadlock" e)
                | reply ->
                    remove_waiter t w;
                    emit_wait_end t w
                      ~outcome:
                        (match reply with
                        | Rp_error _ -> "error"
                        | _ -> "granted");
                    Msg.resolve t.msys w.w_deferral (encode_reply reply))
          in
          ())
      t.waiters

let handler t payload =
  match decode_request payload with
  | Error e ->
      encode_reply
        (Rp_error
           (Errors.Bad_request
              ("malformed request: " ^ decode_error_to_string e)))
  | Ok req -> (
      let reply = request t req in
      let action =
        match reply with
        | Rp_blocked { blockers; _ }
          when (Sim.config t.sim).Config.dp_lock_wait -> (
            match park_tx req with
            | Some tx when tx > 0 -> (
                match park t req ~tx ~blockers ~payload with
                | `Parked -> `Parked
                | `Deny e -> `Reply (Rp_error e))
            | Some _ | None -> `Reply reply)
        | _ -> `Reply reply
      in
      match action with
      | `Parked ->
          (* the reply is withheld; this placeholder is discarded by Msg *)
          ""
      | `Reply reply -> encode_reply reply)

(* Process-pair takeover: the backup resumes as primary. With an active
   replica (checkpointing on) every acknowledged piece of state survives —
   SCB definitions, aggregate partials, granted locks in grant order, and
   the parked waiters with their live deferrals, so wait budgets keep
   counting. Without a replica the backup still answers, but cursors and
   locks are gone: transactions that were in flight here are denied with a
   retryable [Errors.Takeover] until they finish, and parked requests are
   flushed the same way. *)
let takeover t =
  if not (Msg.takeover_endpoint t.endpoint) then
    Errors.fail
      (Errors.Bad_request (t.dp_name ^ ": process pair has no backup"))
  else begin
    let s = Sim.stats t.sim in
    s.Stats.takeovers <- s.Stats.takeovers + 1;
    let cfg = Sim.config t.sim in
    t.ckpt_pending <- [];
    (match t.replica with
    | Some rp ->
        (* rebuild primary structures from the replica alone: anything the
           checkpoint stream missed is deliberately lost, which is what the
           byte-identity and takeover tests probe *)
        Hashtbl.reset t.scbs;
        Lock.clear_all t.locks;
        Lock.Waitgraph.clear t.waitgraph;
        let items = ref 0 in
        List.iter
          (fun (id, scb) ->
            incr items;
            Hashtbl.replace t.scbs id scb)
          (Nsql_util.Tbl.sorted_bindings rp.rp_scbs);
        (* oldest grant first, so Shared-then-Exclusive upgrades replay in
           the order the primary granted them *)
        let locks = List.rev rp.rp_locks in
        List.iter (fun _ -> incr items) locks;
        Lock.restore t.locks locks;
        (* waiter records survive by reference: the withheld deferrals and
           the already-scheduled wait-budget timeouts stay valid, so FIFO
           order and remaining budgets carry across the takeover *)
        let old_parked = List.length t.waiters in
        t.waiters <-
          List.filter (fun w -> not (Msg.resolved w.w_deferral)) rp.rp_parked;
        Moncore.gauge_add (Sim.moncore t.sim) Moncore.G_parked
          (List.length t.waiters - old_parked);
        List.iter (fun _ -> incr items) t.waiters;
        (* the new primary has no backup: stop consuming checkpoints *)
        Msg.set_checkpoint_receiver t.endpoint None;
        t.replica <- None;
        (* rebuild cost: one message-handling quantum plus work linear in
           the replayed state *)
        Moncore.with_cat (Sim.moncore t.sim) Moncore.C_ckpt (fun () ->
            Sim.charge t.sim cfg.Config.msg_cpu_cost_us);
        Sim.tick t.sim (50 * !items);
        (* re-dispatch survivors: a waiter whose blocker never checkpointed
           re-parks against the restored lock table *)
        pump t
    | None ->
        (* no replica was maintained: volatile cursor and lock state is
           gone. Deny every transaction that had work in flight here with a
           retryable error; the wait queue is flushed the same way. *)
        List.iter
          (fun (tx, _file, _res, _mode) -> Hashtbl.replace t.denied tx ())
          (Lock.snapshot t.locks);
        List.iter (fun w -> Hashtbl.replace t.denied w.w_tx ()) t.waiters;
        Hashtbl.reset t.scbs;
        t.lost_scbs <- true;
        Lock.clear_all t.locks;
        Lock.Waitgraph.clear t.waitgraph;
        let parked = t.waiters in
        t.waiters <- [];
        Moncore.gauge_add (Sim.moncore t.sim) Moncore.G_parked
          (-List.length parked);
        List.iter
          (fun w ->
            if not (Msg.resolved w.w_deferral) then begin
              emit_wait_end t w ~outcome:"takeover";
              Msg.resolve t.msys w.w_deferral
                (encode_reply
                   (Rp_error
                      (Errors.Takeover
                         (t.dp_name ^ ": primary failed, state not checkpointed"))))
            end)
          parked;
        Moncore.with_cat (Sim.moncore t.sim) Moncore.C_ckpt (fun () ->
            Sim.charge t.sim cfg.Config.msg_cpu_cost_us));
    Ok ()
  end

(* --- idle-time work ------------------------------------------------------------- *)

let idle t = Cache.write_behind t.cache

(* --- crash and recovery ----------------------------------------------------------- *)

let crash t =
  Cache.drop_all t.cache;
  Hashtbl.reset t.scbs;
  (* lock tables are volatile too *)
  Lock.clear_all t.locks;
  (* a crash takes both halves of the pair down: the replica is as gone as
     the primary's own volatile state *)
  t.ckpt_pending <- [];
  (match t.replica with
  | Some rp ->
      Hashtbl.reset rp.rp_scbs;
      rp.rp_locks <- [];
      rp.rp_parked <- [];
      rp.rp_bytes <- 0
  | None -> ());
  (* parked requests lose their server: flush each with an I/O error so no
     requester is left holding a completion that can never resolve *)
  Lock.Waitgraph.clear t.waitgraph;
  let parked = t.waiters in
  t.waiters <- [];
  Moncore.gauge_add (Sim.moncore t.sim) Moncore.G_parked
    (-List.length parked);
  List.iter
    (fun w ->
      if not (Msg.resolved w.w_deferral) then begin
        emit_wait_end t w ~outcome:"crash";
        Msg.resolve t.msys w.w_deferral
          (encode_reply
             (Rp_error (Errors.Io_error (t.dp_name ^ ": disk process crashed"))))
      end)
    parked;
  (* in-flight transactions lose their compensations against this volume:
     restart recovery treats them as losers here, and the transactions can
     still abort cleanly on surviving volumes *)
  Tmf.forget_owner t.tmf ~owner:t.dp_name

let recover_with_gen t ~resolve =
  (* rebuild every structure empty (the file labels survive on disk), in
     file-id order: creation order decides cache/disk allocation *)
  List.iter
    (fun (_, f) ->
      let structure =
        match f.f_kind with
        | K_key_sequenced -> S_btree (Btree.create t.sim t.cache ~name:f.f_name)
        | K_relative slot_size ->
            S_rel (Relfile.create t.sim t.cache ~name:f.f_name ~slot_size)
        | K_entry_sequenced ->
            S_entry (Entryfile.create t.sim t.cache ~name:f.f_name)
      in
      f.f_structure <- structure)
    (Nsql_util.Tbl.sorted_bindings t.files);
  let apply body =
    let with_file file k =
      match Hashtbl.find_opt t.files file with Some f -> k f | None -> ()
    in
    match body with
    | Ar.Insert { file; key; image } ->
        with_file file (fun f ->
            match f.f_structure with
            | S_btree b -> Btree.upsert b ~key ~record:image ~lsn:0L
            | S_rel r ->
                let slot = Keycode.read_int (Nsql_util.Codec.reader key) in
                Errors.swallow (Relfile.write r ~slot ~record:image ~lsn:0L)
            | S_entry e -> Errors.swallow (Entryfile.append e ~record:image ~lsn:0L))
    | Ar.Delete { file; key; _ } ->
        with_file file (fun f ->
            match f.f_structure with
            | S_btree b -> Errors.swallow (Btree.delete b ~key ~lsn:0L)
            | S_rel r ->
                let slot = Keycode.read_int (Nsql_util.Codec.reader key) in
                Errors.swallow (Relfile.delete r ~slot ~lsn:0L)
            | S_entry _ -> ())
    | Ar.Update_full { file; key; after; _ } ->
        with_file file (fun f ->
            match f.f_structure with
            | S_btree b -> Btree.upsert b ~key ~record:after ~lsn:0L
            | S_rel r ->
                let slot = Keycode.read_int (Nsql_util.Codec.reader key) in
                Errors.swallow (Relfile.rewrite r ~slot ~record:after ~lsn:0L)
            | S_entry _ -> ())
    | Ar.Update_fields { file; key; fields } ->
        with_file file (fun f ->
            match (f.f_structure, f.f_schema) with
            | S_btree b, Some schema -> (
                match Btree.lookup b key with
                | Some record ->
                    let row = Row.decode_exn schema record in
                    List.iter (fun (i, _before, after) -> row.(i) <- after) fields;
                    Btree.upsert b ~key ~record:(Row.encode schema row) ~lsn:0L
                | None -> ())
            | _ -> ())
    | Ar.Begin_tx | Ar.Commit_tx | Ar.Abort_tx | Ar.Prepare_tx _ -> ()
  in
  Nsql_tmf.Recovery.rollforward_with (Tmf.trail t.tmf) ~resolve ~apply

let recover t =
  recover_with_gen t
    ~resolve:(fun ~coordinator_node:_ ~coordinator_tx:_ -> false)

let recover_with t ~resolve = recover_with_gen t ~resolve

let check_invariants t =
  List.fold_left
    (fun acc (_, f) ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          match f.f_structure with
          | S_btree b -> Btree.check_invariants b
          | S_rel _ | S_entry _ -> Ok ()))
    (Ok ())
    (Nsql_util.Tbl.sorted_bindings t.files)

let () = handler_cell := handler
let () = pump_cell := pump

module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Config = Nsql_sim.Config
module Moncore = Nsql_sim.Moncore
module Msg = Nsql_msg.Msg
module Disk = Nsql_disk.Disk
module Row = Nsql_row.Row
module Expr = Nsql_expr.Expr
module Fs = Nsql_fs.Fs
module Dp = Nsql_dp.Dp
module Tmf = Nsql_tmf.Tmf
module Trail = Nsql_audit.Trail
module Catalog = Nsql_sql.Catalog
module Parser = Nsql_sql.Parser
module Ast = Nsql_sql.Ast
module Binder = Nsql_sql.Binder
module Planner = Nsql_sql.Planner
module Executor = Nsql_sql.Executor
module Errors = Nsql_util.Errors
module Trace = Nsql_trace.Trace

open Errors

type node = {
  sim : Sim.t;
  msys : Msg.system;
  trail : Trail.t;
  tmf : Tmf.t;
  dps : Dp.t array;
  fs : Fs.t;
  catalog : Catalog.t;
  app_processor : Msg.processor;
}

(* Build one node's subsystems on an existing network. Disk Process
   endpoint names carry the node id so that a cluster's names stay
   unique. *)
let build_node ~sim ~msys ~node_id ~volumes ~dp_prefix ~app_processor =
  if volumes < 1 then invalid_arg "create_node: volumes < 1";
  let audit_volume =
    Disk.create sim ~name:(Printf.sprintf "$AUDIT%d" node_id)
  in
  let trail = Trail.create sim audit_volume in
  let tmf = Tmf.create sim trail in
  (* processors: 0 = requesters + TMF, 1..volumes = Disk Process
     primaries, backups on the next processor round-robin (max 16) *)
  let nproc = min 16 (volumes + 1) in
  let dps =
    Array.init volumes (fun i ->
        let cpu = 1 + (i mod (nproc - 1)) in
        let backup = 1 + ((i + 1) mod (nproc - 1)) in
        Dp.create sim msys tmf
          ~name:(Printf.sprintf "%s%d" dp_prefix (i + 1))
          ~processor:Msg.{ node = node_id; cpu }
          ~backup:Msg.{ node = node_id; cpu = backup }
          ())
  in
  let fs = Fs.create sim msys ~my_processor:app_processor in
  let catalog = Catalog.create fs ~dps in
  { sim; msys; trail; tmf; dps; fs; catalog; app_processor }

let create_node ?config ?(volumes = 2) ?(name = "\\NODE")
    ?(remote_requester = false) () =
  ignore name;
  let sim = Sim.create ?config () in
  let msys = Msg.create sim in
  let app_processor =
    if remote_requester then Msg.{ node = 1; cpu = 0 }
    else Msg.{ node = 0; cpu = 0 }
  in
  build_node ~sim ~msys ~node_id:0 ~volumes ~dp_prefix:"$DATA" ~app_processor

let sim n = n.sim
let stats n = Sim.stats n.sim
let msys n = n.msys
let tmf n = n.tmf
let fs n = n.fs
let catalog n = n.catalog
let dps n = n.dps
let trail n = n.trail
let app_processor n = n.app_processor
let snapshot n = Sim.snapshot n.sim
let measure n f = Sim.measure n.sim f

(* --- sessions ---------------------------------------------------------- *)

type session = {
  node : node;
  mutable open_tx : int option;
  mutable access_override : Fs.access option;
  mutable read_lock : Nsql_dp.Dp_msg.lock_mode;
}

type exec_result = Rows of Executor.rowset | Affected of int | Done

let pp_rowset = Executor.pp_rowset

let pp_exec_result ppf = function
  | Rows rs -> pp_rowset ppf rs
  | Affected n -> Format.fprintf ppf "%d row(s) affected" n
  | Done -> Format.pp_print_string ppf "ok"

let session node =
  { node; open_tx = None; access_override = None;
    read_lock = Nsql_dp.Dp_msg.L_none }

let set_access_mode s mode = s.access_override <- mode
let set_read_lock s mode = s.read_lock <- mode

let current_tx s = s.open_tx

(* run [f tx] in the session's open transaction, or autocommit *)
let with_tx s f =
  match s.open_tx with
  | Some tx -> f tx
  | None -> Tmf.run s.node.tmf f

let in_tx s f = Tmf.run s.node.tmf f

(* --- deadlock-victim retry --------------------------------------------- *)

let retryable = function
  | Errors.Deadlock _ | Errors.Lock_timeout _ | Errors.Takeover _ -> true
  | _ -> false

let in_tx_retry ?(max_retries = 8) ?(backoff_us = 200.) node f =
  let rec go attempt =
    let tx = Tmf.begin_tx node.tmf in
    let finish r =
      match r with
      | Ok v -> (
          match Tmf.commit node.tmf ~tx with
          | Ok () -> Some (Ok v)
          | Error e -> Some (Error e))
      | Error e -> (
          (* abort first — releases this transaction's locks so the
             competitors it deadlocked with can proceed *)
          match Tmf.abort node.tmf ~tx with
          | Error e' -> Some (Error e')
          | Ok () ->
              if retryable e && attempt < max_retries then None
              else Some (Error e))
    in
    match finish (f tx) with
    | Some r -> (r, attempt)
    | None ->
        (* bounded exponential backoff, charged to the simulated clock so
           competing sessions restart at staggered, deterministic times *)
        Moncore.with_cat (Sim.moncore node.sim) Moncore.C_await (fun () ->
            Sim.charge node.sim
              (backoff_us *. (2. ** float_of_int (min attempt 6))));
        go (attempt + 1)
  in
  go 0

let schema_of_create (cols : Ast.col_def list) primary_key =
  let columns =
    Array.of_list
      (List.map
         (fun cd ->
           (* key columns are implicitly NOT NULL *)
           let nullable =
             (not cd.Ast.cd_not_null) && not (List.mem cd.Ast.cd_name primary_key)
           in
           Row.column ~nullable cd.Ast.cd_name cd.Ast.cd_type)
         cols)
  in
  if primary_key = [] then
    fail (Errors.Bad_request "CREATE TABLE requires a PRIMARY KEY")
  else
    try Ok (Row.schema columns ~key:primary_key)
    with Invalid_argument msg -> fail (Errors.Bad_request msg)

let exec_statement0 s stmt =
  let node = s.node in
  let ctx_of tx =
    Executor.{ fs = node.fs; sim = node.sim; tx; read_lock = s.read_lock }
  in
  match stmt with
  | Ast.St_begin -> (
      match s.open_tx with
      | Some _ -> fail (Errors.Bad_request "transaction already open")
      | None ->
          s.open_tx <- Some (Tmf.begin_tx node.tmf);
          Ok Done)
  | Ast.St_commit -> (
      match s.open_tx with
      | None -> fail Errors.No_transaction
      | Some tx ->
          s.open_tx <- None;
          let* () = Tmf.commit node.tmf ~tx in
          Ok Done)
  | Ast.St_rollback -> (
      match s.open_tx with
      | None -> fail Errors.No_transaction
      | Some tx ->
          s.open_tx <- None;
          let* () = Tmf.abort node.tmf ~tx in
          Ok Done)
  | Ast.St_create_table { ct_name; ct_cols; ct_primary_key; ct_check } ->
      let* schema = schema_of_create ct_cols ct_primary_key in
      let* check =
        match ct_check with
        | None -> Ok None
        | Some c ->
            let env = Binder.env_of_tables [ (ct_name, None, schema) ] in
            let* e = Binder.bind env c in
            let* ty = Expr.typecheck schema e in
            if Row.equal_col_type ty Row.T_bool then Ok (Some e)
            else fail (Errors.Type_error "CHECK constraint must be boolean")
      in
      let* _tbl = Catalog.create_table node.catalog ~name:ct_name ~schema ?check () in
      Ok Done
  | Ast.St_create_index { ci_name; ci_table; ci_cols } ->
      let* () =
        with_tx s (fun tx ->
            Catalog.create_index node.catalog ~tx ~table:ci_table
              ~index:ci_name ~cols:ci_cols)
      in
      Ok Done
  | Ast.St_insert { i_table; i_cols; i_values } ->
      let* tbl = Catalog.find node.catalog i_table in
      let* n =
        with_tx s (fun tx -> Executor.run_insert (ctx_of tx) tbl ~cols:i_cols i_values)
      in
      Ok (Affected n)
  | Ast.St_select sel ->
      let* plan =
        Planner.plan_select node.catalog ?access_override:s.access_override sel
      in
      let* rows = with_tx s (fun tx -> Executor.run_select (ctx_of tx) plan) in
      Ok (Rows rows)
  | Ast.St_update { u_table; u_sets; u_where } ->
      let* plan = Planner.plan_update node.catalog ~table:u_table ~sets:u_sets ~where:u_where in
      let* n = with_tx s (fun tx -> Executor.run_update (ctx_of tx) plan) in
      Ok (Affected n)
  | Ast.St_drop_table name ->
      let* () = Catalog.drop_table node.catalog name in
      Ok Done
  | Ast.St_delete { d_table; d_where } ->
      let* plan = Planner.plan_delete node.catalog ~table:d_table ~where:d_where in
      let* n = with_tx s (fun tx -> Executor.run_delete (ctx_of tx) plan) in
      Ok (Affected n)

let statement_kind = function
  | Ast.St_begin -> "begin"
  | Ast.St_commit -> "commit"
  | Ast.St_rollback -> "rollback"
  | Ast.St_create_table _ -> "create table"
  | Ast.St_create_index _ -> "create index"
  | Ast.St_drop_table _ -> "drop table"
  | Ast.St_insert _ -> "insert"
  | Ast.St_select _ -> "select"
  | Ast.St_update _ -> "update"
  | Ast.St_delete _ -> "delete"

(* the statement span is the root of a statement's operator tree; [?sql]
   carries the original text into the trace when the caller has it *)
let exec_statement_traced ?sql s stmt =
  let sim = s.node.sim in
  if not (Trace.enabled sim) then exec_statement0 s stmt
  else begin
    let kind = statement_kind stmt in
    let attrs =
      match sql with None -> [] | Some q -> [ ("sql", Trace.Str q) ]
    in
    let sp = Trace.begin_span sim ~cat:"stmt" ~attrs kind in
    Fun.protect
      ~finally:(fun () -> Trace.finish sim sp)
      (fun () -> exec_statement0 s stmt)
  end

(* the monitor brackets the whole statement: its elapsed time decomposes
   into per-category clock movement (deltas of the cumulative category
   totals), which tiles the [Sim.now] delta exactly — see Moncore. *)
let exec_statement ?sql s stmt =
  let sim = s.node.sim in
  let mc = Sim.moncore sim in
  if not (Moncore.enabled mc) then exec_statement_traced ?sql s stmt
  else begin
    let t0 = Sim.now sim in
    let before = Moncore.cat_snapshot mc in
    Fun.protect
      ~finally:(fun () ->
        let after = Moncore.cat_snapshot mc in
        let cats = Array.mapi (fun i a -> a -. before.(i)) after in
        let elapsed = Sim.now sim -. t0 in
        Moncore.note_stmt mc ~name:(statement_kind stmt) ~start:t0 ~elapsed
          ~cats;
        Moncore.observe mc "stmt" elapsed)
      (fun () -> exec_statement_traced ?sql s stmt)
  end

let exec s sql =
  let* stmt = Parser.parse sql in
  exec_statement ~sql s stmt

let exec_exn s sql =
  match exec s sql with
  | Ok r -> r
  | Error e -> failwith (Printf.sprintf "exec %S: %s" sql (Errors.to_string e))

let query s sql =
  let* r = exec s sql in
  match r with
  | Rows rs -> Ok rs
  | Affected _ | Done -> fail (Errors.Bad_request "statement returned no rows")

let exec_script s sql =
  let* stmts = Parser.parse_many sql in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | stmt :: rest ->
        let* r = exec_statement s stmt in
        go (r :: acc) rest
  in
  go [] stmts

let explain s sql =
  let* stmt = Parser.parse sql in
  match stmt with
  | Ast.St_select sel ->
      let* plan =
        Planner.plan_select s.node.catalog ?access_override:s.access_override sel
      in
      Ok (Format.asprintf "%a" Planner.pp_select_plan plan)
  | _ -> fail (Errors.Bad_request "EXPLAIN supports SELECT only")

(* --- clusters ---------------------------------------------------------------- *)

module Dtx = Nsql_dtx.Dtx

type cluster = { cl_nodes : node array; cl_registry : Dtx.registry }

let create_cluster ?config ?(volumes_per_node = 1) ~nodes () =
  if nodes < 1 then invalid_arg "create_cluster: nodes < 1";
  let sim = Sim.create ?config () in
  let msys = Msg.create sim in
  let cl_nodes =
    Array.init nodes (fun node_id ->
        build_node ~sim ~msys ~node_id ~volumes:volumes_per_node
          ~dp_prefix:(Printf.sprintf "$N%dDATA" node_id)
          ~app_processor:Msg.{ node = node_id; cpu = 0 })
  in
  let cl_registry = Dtx.create_registry msys in
  Array.iteri
    (fun node_id n -> Dtx.register_tmf cl_registry ~node_id n.tmf)
    cl_nodes;
  { cl_nodes; cl_registry }

let cluster_nodes c = c.cl_nodes
let cluster_registry c = c.cl_registry

let network_tx c ~home =
  Dtx.begin_network c.cl_registry ~home
    ~from:c.cl_nodes.(home).app_processor

let recover_cluster_volume c ~node ~volume =
  let resolve ~coordinator_node ~coordinator_tx =
    match Dtx.tmf_of c.cl_registry ~node_id:coordinator_node with
    | Some tmf ->
        Nsql_tmf.Recovery.coordinator_committed (Tmf.trail tmf)
          ~tx:coordinator_tx
    | None -> false
  in
  Dp.recover_with c.cl_nodes.(node).dps.(volume) ~resolve

(* --- fault injection ------------------------------------------------------- *)

let crash_volume n i = Dp.crash n.dps.(i)
let recover_volume n i = Dp.recover n.dps.(i)

let takeover_volume n i =
  match Dp.takeover n.dps.(i) with Ok () -> true | Error _ -> false

let vm_pressure n i ~frames = Nsql_cache.Cache.steal (Dp.cache n.dps.(i)) frames

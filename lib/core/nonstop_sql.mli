(** NonStop SQL reproduction — the public API.

    A {!node} is one simulated Tandem system: up to sixteen processors, a
    set of Disk Processes (one per volume), the TMF transaction monitor
    with its audit-trail volume, and a message system connecting them. A
    {!session} executes SQL against the node through the SQL Executor and
    File System, which turn statements into FS-DP messages.

    {[
      let node = Nonstop_sql.create_node () in
      let s = Nonstop_sql.session node in
      ignore (Nonstop_sql.exec_exn s
        "CREATE TABLE emp (empno INT PRIMARY KEY, name VARCHAR(32), salary FLOAT NOT NULL)");
      ignore (Nonstop_sql.exec_exn s "INSERT INTO emp VALUES (1, 'Borr', 95000.0)");
      match Nonstop_sql.exec_exn s "SELECT name FROM emp WHERE salary > 32000" with
      | Rows rs -> Format.printf "%a@." Nonstop_sql.pp_rowset rs
      | _ -> ()
    ]} *)

module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Config = Nsql_sim.Config
module Msg = Nsql_msg.Msg
module Row = Nsql_row.Row
module Expr = Nsql_expr.Expr
module Fs = Nsql_fs.Fs
module Dp = Nsql_dp.Dp
module Tmf = Nsql_tmf.Tmf
module Catalog = Nsql_sql.Catalog
module Executor = Nsql_sql.Executor

type node

(** [create_node ()] brings up a simulated node. [volumes] Disk Processes
    are placed round-robin on processors 1..; the requester runs on
    processor 0. With [remote_requester] the application/Executor runs on
    a different {e node} of the network, so every FS-DP interaction is an
    internode message — the configuration in which the paper's
    filter-at-the-source argument matters most. *)
val create_node :
  ?config:Config.t -> ?volumes:int -> ?name:string ->
  ?remote_requester:bool -> unit -> node

val sim : node -> Sim.t
val stats : node -> Stats.t
val msys : node -> Msg.system
val tmf : node -> Tmf.t
val fs : node -> Fs.t
val catalog : node -> Catalog.t
val dps : node -> Dp.t array
val trail : node -> Nsql_audit.Trail.t

(** [app_processor node] is the processor the requesters (File System,
    sessions, workload drivers) run on. *)
val app_processor : node -> Msg.processor

(** [snapshot node] / [measure node f] — statistics bracketing. *)
val snapshot : node -> Stats.t

val measure : node -> (unit -> 'a) -> 'a * Stats.t

(** {1 Sessions} *)

type session

type exec_result =
  | Rows of Executor.rowset
  | Affected of int  (** rows touched by INSERT/UPDATE/DELETE *)
  | Done  (** DDL and transaction control *)

val pp_exec_result : Format.formatter -> exec_result -> unit
val pp_rowset : Format.formatter -> Executor.rowset -> unit

val session : node -> session

(** [exec s sql] parses and executes one statement. Outside BEGIN/COMMIT,
    each statement autocommits. *)
val exec : session -> string -> (exec_result, Nsql_util.Errors.t) result

(** [exec_exn s sql] is [exec] for examples and tests. *)
val exec_exn : session -> string -> exec_result

(** [query s sql] runs a SELECT and returns the rowset. *)
val query : session -> string -> (Executor.rowset, Nsql_util.Errors.t) result

(** [exec_script s sql] runs a [;]-separated script, stopping at the first
    error. *)
val exec_script : session -> string -> (exec_result list, Nsql_util.Errors.t) result

(** [set_access_mode s mode] pins the table-access mode used by scans —
    [Some A_record] / [Some A_rsbb] / [Some A_vsbb] for the paper's
    before/after comparisons, [None] to let the compiler choose. *)
val set_access_mode : session -> Fs.access option -> unit

(** [set_read_lock s mode] sets the lock mode of SELECT scans: [L_none]
    (the default) is browse access; [L_shared] holds virtual-block group
    locks to transaction end — repeatable read. *)
val set_read_lock : session -> Nsql_dp.Dp_msg.lock_mode -> unit

(** [explain s sql] renders the compiled plan of a SELECT. *)
val explain : session -> string -> (string, Nsql_util.Errors.t) result

(** [current_tx s] is the open transaction, if any. *)
val current_tx : session -> int option

(** [in_tx s f] runs [f tx] in a fresh transaction, committing on [Ok] and
    aborting on [Error] — for mixing SQL with programmatic FS access. *)
val in_tx :
  session -> (int -> ('a, Nsql_util.Errors.t) result) ->
  ('a, Nsql_util.Errors.t) result

(** [retryable e] — should the caller abort its transaction and re-run it?
    True for deadlock victims ([Deadlock]), lock-wait budget expiry
    ([Lock_timeout]), and requests lost to a process-pair takeover
    ([Takeover]): in each case nothing of the attempt was acknowledged, so
    re-running from the top is safe. *)
val retryable : Nsql_util.Errors.t -> bool

(** [in_tx_retry node f] runs [f tx] in a fresh transaction like {!in_tx},
    but when the transaction fails with a {!retryable} error — deadlock
    victim, lock-wait budget expiry, process-pair takeover — it aborts,
    releasing its locks so the competitors win, charges a bounded
    exponential backoff to the simulated clock, and runs [f] again in a
    new transaction, up to [max_retries] times. Returns the final result
    and the number of retries taken. *)
val in_tx_retry :
  ?max_retries:int -> ?backoff_us:float -> node ->
  (int -> ('a, Nsql_util.Errors.t) result) ->
  ('a, Nsql_util.Errors.t) result * int

(** {1 Clusters and network transactions}

    Multiple nodes share one simulated network; each node has its own TMF
    monitor (reachable as the ["$TMP<n>"] endpoint) and audit trail, and
    transactions spanning nodes commit atomically with two-phase commit —
    the distributed transaction management NonStop SQL inherits
    ({!Nsql_dtx.Dtx}). *)

type cluster

(** [create_cluster ~nodes ()] brings up [nodes] nodes on one network.
    Node [i]'s Disk Processes are named ["$N<i>DATA<j>"]. *)
val create_cluster :
  ?config:Config.t -> ?volumes_per_node:int -> nodes:int -> unit -> cluster

val cluster_nodes : cluster -> node array
val cluster_registry : cluster -> Nsql_dtx.Dtx.registry

(** [network_tx cluster ~home] begins a network transaction coordinated on
    node [home]; use {!Nsql_dtx.Dtx.branch} for per-node transaction ids
    and {!Nsql_dtx.Dtx.commit} / [abort] to finish. *)
val network_tx :
  cluster -> home:int -> (Nsql_dtx.Dtx.t, Nsql_util.Errors.t) result

(** [recover_cluster_volume cluster ~node ~volume] recovers after a crash,
    resolving in-doubt two-phase-commit branches against the coordinator
    nodes' audit trails. *)
val recover_cluster_volume :
  cluster -> node:int -> volume:int -> Nsql_tmf.Recovery.outcome

(** {1 Fault injection} *)

(** [crash_volume node i] crashes the i-th Disk Process (volatile state
    lost); [recover_volume node i] rolls the audit trail forward. *)
val crash_volume : node -> int -> unit

val recover_volume : node -> int -> Nsql_tmf.Recovery.outcome

(** [takeover_volume node i] fails the primary of the i-th Disk Process
    pair; the hot-standby backup keeps serving (no recovery needed).
    Returns [false] when the pair has no backup left. *)
val takeover_volume : node -> int -> bool

(** [vm_pressure node i ~frames] steals buffer frames from volume [i]'s
    cache, as the GUARDIAN memory manager does. Returns frames freed. *)
val vm_pressure : node -> int -> frames:int -> int

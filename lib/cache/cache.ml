module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Config = Nsql_sim.Config
module Moncore = Nsql_sim.Moncore
module Disk = Nsql_disk.Disk
module Tbl = Nsql_util.Tbl
module Errors = Nsql_util.Errors
module Trace = Nsql_trace.Trace

type frame = {
  block : int;
  mutable data : string;
  mutable dirty : bool;
  mutable page_lsn : int64;
  mutable valid_at : float;  (** async read in flight until this time *)
  mutable durable_at : float;  (** async write in flight until this time *)
  mutable prev : frame option;  (** towards MRU *)
  mutable next : frame option;  (** towards LRU *)
}

type t = {
  sim : Sim.t;
  disk : Disk.t;
  capacity : int;
  table : (int, frame) Hashtbl.t;
  mutable mru : frame option;
  mutable lru : frame option;
  durable_lsn : unit -> int64;
  force_log : int64 -> unit;
}

let create sim disk ~capacity ~durable_lsn ~force_log =
  if capacity < 8 then invalid_arg "Cache.create: capacity < 8";
  {
    sim;
    disk;
    capacity;
    table = Hashtbl.create (2 * capacity);
    mru = None;
    lru = None;
    durable_lsn;
    force_log;
  }

let disk t = t.disk
let capacity t = t.capacity
let cached t = Hashtbl.length t.table

(* --- LRU list maintenance -------------------------------------------- *)

let unlink t f =
  (match f.prev with Some p -> p.next <- f.next | None -> t.mru <- f.next);
  (match f.next with Some n -> n.prev <- f.prev | None -> t.lru <- f.prev);
  f.prev <- None;
  f.next <- None

let push_mru t f =
  f.prev <- None;
  f.next <- t.mru;
  (match t.mru with Some m -> m.prev <- Some f | None -> t.lru <- Some f);
  t.mru <- Some f

let touch t f =
  unlink t f;
  push_mru t f

(* --- cleaning and eviction ------------------------------------------- *)

(* WAL: before a dirty frame reaches disk, the audit trail must be durable
   through the frame's page_lsn. *)
let clean_frame t f =
  if f.dirty then begin
    if Int64.compare f.page_lsn (t.durable_lsn ()) > 0 then
      t.force_log f.page_lsn;
    assert (Int64.compare f.page_lsn (t.durable_lsn ()) <= 0);
    Disk.write t.disk f.block f.data;
    f.dirty <- false
  end
  else
    (* an async write may still be in flight; eviction must wait for it *)
    Moncore.with_cat (Sim.moncore t.sim) Moncore.C_disk (fun () ->
        Sim.wait_until t.sim f.durable_at)

let evict_frame t f =
  clean_frame t f;
  unlink t f;
  Hashtbl.remove t.table f.block

let evict_lru t =
  match t.lru with
  | Some f -> evict_frame t f
  | None -> Errors.fatal "Cache: no evictable frame"

let make_room t =
  while Hashtbl.length t.table >= t.capacity do
    evict_lru t
  done

let insert t block data ~dirty ~lsn ~valid_at =
  make_room t;
  let f =
    {
      block;
      data;
      dirty;
      page_lsn = lsn;
      valid_at;
      durable_at = 0.;
      prev = None;
      next = None;
    }
  in
  Hashtbl.replace t.table block f;
  push_mru t f;
  f

(* --- reads ------------------------------------------------------------ *)

let hit t f =
  if Trace.enabled t.sim then
    Trace.instant t.sim ~cat:"cache"
      ~attrs:[ ("block", Int f.block) ]
      "cache_hit";
  let s = Sim.stats t.sim in
  s.Stats.cache_hits <- s.Stats.cache_hits + 1;
  touch t f;
  (* if the block was pre-fetched and has not landed yet, wait out the
     remaining latency (still cheaper than a fresh synchronous read) *)
  Moncore.with_cat (Sim.moncore t.sim) Moncore.C_disk (fun () ->
      Sim.wait_until t.sim f.valid_at);
  Sim.tick t.sim 3

let miss t =
  if Trace.enabled t.sim then Trace.instant t.sim ~cat:"cache" "cache_miss";
  let s = Sim.stats t.sim in
  s.Stats.cache_misses <- s.Stats.cache_misses + 1

let read t block =
  match Hashtbl.find_opt t.table block with
  | Some f ->
      hit t f;
      f.data
  | None ->
      miss t;
      let data = Disk.read t.disk block in
      let f = insert t block data ~dirty:false ~lsn:0L ~valid_at:(Sim.now t.sim) in
      Sim.tick t.sim 5;
      f.data

let write t block data ~lsn =
  Sim.tick t.sim 3;
  match Hashtbl.find_opt t.table block with
  | Some f ->
      Moncore.with_cat (Sim.moncore t.sim) Moncore.C_disk (fun () ->
          Sim.wait_until t.sim f.valid_at);
      touch t f;
      f.data <- data;
      f.dirty <- true;
      if Int64.compare lsn f.page_lsn > 0 then f.page_lsn <- lsn
  | None ->
      (* write of a whole block without reading it first *)
      ignore (insert t block data ~dirty:true ~lsn ~valid_at:(Sim.now t.sim))

(* --- bulk reads and pre-fetch ----------------------------------------- *)

(* Group the missing blocks of [first..first+count) into maximal strings of
   consecutive absent blocks, clipped to the bulk I/O limit. *)
let missing_strings t ~first ~count =
  let limit = Disk.max_bulk_blocks t.disk in
  let strings = ref [] in
  let run_start = ref (-1) in
  let flush i =
    if !run_start >= 0 then begin
      let s = !run_start and e = i in
      (* split oversized runs at the bulk limit *)
      let rec split s =
        if s < e then begin
          let n = min limit (e - s) in
          strings := (s, n) :: !strings;
          split (s + n)
        end
      in
      split s;
      run_start := -1
    end
  in
  for i = first to first + count - 1 do
    if Hashtbl.mem t.table i then flush i
    else if !run_start < 0 then run_start := i
  done;
  flush (first + count);
  List.rev !strings

(* A block the range fetched itself: same LRU touch, in-flight wait and
   CPU charge as [hit], but no hit counting — arriving on the I/O this
   very call issued is not a cache hit. *)
let absorb t f =
  touch t f;
  Moncore.with_cat (Sim.moncore t.sim) Moncore.C_disk (fun () ->
      Sim.wait_until t.sim f.valid_at);
  Sim.tick t.sim 3

let read_range t ~first ~count =
  (* residency before any I/O decides hit/miss accounting: a miss per
     absent block (not per run-string), a hit only for blocks that were
     already in the pool when the call began *)
  let was_resident =
    Array.init count (fun i -> Hashtbl.mem t.table (first + i))
  in
  (* pump the missing strings through the device with up to
     [disk_queue_depth] submissions in flight, retiring (and inserting)
     in submission order before topping up — at depth 1 this is exactly
     the historical fetch-a-string, insert-a-string sequence *)
  let depth = max 1 (Sim.config t.sim).Config.disk_queue_depth in
  let pending = Queue.create () in
  let retire_one () =
    let s, io = Queue.pop pending in
    let datas = Disk.complete t.disk io in
    Array.iteri
      (fun i data ->
        ignore
          (insert t (s + i) data ~dirty:false ~lsn:0L
             ~valid_at:(Sim.now t.sim)))
      datas
  in
  List.iter
    (fun (s, n) ->
      for _ = 1 to n do
        miss t
      done;
      if Queue.length pending >= depth then retire_one ();
      Queue.push (s, Disk.submit_read t.disk ~first:s ~count:n) pending)
    (missing_strings t ~first ~count);
  while not (Queue.is_empty pending) do
    retire_one ()
  done;
  Array.init count (fun i ->
      match Hashtbl.find_opt t.table (first + i) with
      | Some f ->
          if was_resident.(i) then hit t f else absorb t f;
          f.data
      | None ->
          (* a range larger than the pool can evict its own earlier
             blocks while later strings are fetched; re-read those *)
          read t (first + i))

(* Each missing string is its own submission, so with a queue depth above
   1 the strings transfer concurrently across the device's channels — the
   pool keeps up to [disk_queue_depth] strings in flight. *)
let prefetch t ~first ~count =
  List.iter
    (fun (s, n) ->
      let datas, completion = Disk.read_bulk_async t.disk ~first:s ~count:n in
      Array.iteri
        (fun i data ->
          ignore
            (insert t (s + i) data ~dirty:false ~lsn:0L ~valid_at:completion))
        datas)
    (missing_strings t ~first ~count)

(* --- write-behind ------------------------------------------------------ *)

(* Find maximal strings of dirty resident blocks whose audit is durable and
   write them asynchronously — one submission per string, so a deeper
   device queue drains the dirty pool that many strings at a time. *)
let write_behind t =
  let durable = t.durable_lsn () in
  let sorted =
    List.filter
      (fun (_, f) -> f.dirty && Int64.compare f.page_lsn durable <= 0)
      (Tbl.sorted_bindings t.table)
  in
  let limit = Disk.max_bulk_blocks t.disk in
  let queued = ref 0 in
  let flush_string frames =
    match frames with
    | [] -> ()
    | (first, _) :: _ ->
        let arr = Array.of_list (List.map (fun (_, f) -> f.data) frames) in
        let completion = Disk.write_bulk_async t.disk ~first arr in
        List.iter
          (fun (_, f) ->
            f.dirty <- false;
            f.durable_at <- completion)
          frames;
        queued := !queued + List.length frames
  in
  let rec go current = function
    | [] -> flush_string (List.rev current)
    | (block, f) :: rest -> (
        match current with
        | [] -> go [ (block, f) ] rest
        | (prev_block, _) :: _ ->
            if block = prev_block + 1 && List.length current < limit then
              go ((block, f) :: current) rest
            else begin
              flush_string (List.rev current);
              go [ (block, f) ] rest
            end)
  in
  go [] sorted;
  !queued

(* --- forced cleaning, stealing, crash ---------------------------------- *)

let flush_block t block =
  match Hashtbl.find_opt t.table block with
  | Some f -> clean_frame t f
  | None -> ()

let flush_all t =
  List.iter (fun (_, f) -> if f.dirty then clean_frame t f)
    (Tbl.sorted_bindings t.table);
  (* wait for in-flight write-behind too *)
  Moncore.with_cat (Sim.moncore t.sim) Moncore.C_disk (fun () ->
      List.iter
        (fun (_, f) -> Sim.wait_until t.sim f.durable_at)
        (Tbl.sorted_bindings t.table))

let steal t n =
  let s = Sim.stats t.sim in
  let freed = ref 0 in
  while !freed < n && t.lru <> None do
    evict_lru t;
    incr freed;
    s.Stats.cache_steals <- s.Stats.cache_steals + 1
  done;
  if Trace.enabled t.sim then
    Trace.instant t.sim ~cat:"cache"
      ~attrs:[ ("asked", Int n); ("freed", Int !freed) ]
      "cache_steal";
  !freed

let drop_all t =
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None

let resident t block = Hashtbl.mem t.table block

let is_dirty t block =
  match Hashtbl.find_opt t.table block with
  | Some f -> f.dirty
  | None -> false

let dirty_count t =
  List.length (List.filter (fun (_, f) -> f.dirty) (Tbl.sorted_bindings t.table))

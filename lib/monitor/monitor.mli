(** The resource monitor: the high-level API over {!Nsql_sim.Moncore}.

    Zero-perturbation observability in the mould of [Nsql_trace.Trace]:
    latency histograms fed at existing span end sites, a time-sliced
    utilization/queueing sampler driven passively by the simulated
    clock, and an exhaustive decomposition of where simulated time goes
    — per-category totals tile [Sim.now] deltas exactly. Everything
    here only reads; monitoring on vs off is bit-identical in results,
    stats, and clock (test-enforced), and the MON-PURE lint rule
    statically keeps perturbing calls out of this library. *)

module Moncore = Nsql_sim.Moncore
module Hist = Nsql_sim.Hist

val set_enabled : Nsql_sim.Sim.t -> bool -> unit
(** Enabling clears previous state and starts accounting at the current
    simulated time. *)

val enabled : Nsql_sim.Sim.t -> bool
val clear : Nsql_sim.Sim.t -> unit

val set_slice_us : Nsql_sim.Sim.t -> float -> unit
(** Sampler slice width (default 10_000. us). Must be binary-exact. *)

val observe : Nsql_sim.Sim.t -> string -> float -> unit
(** Record a duration into a named latency histogram. *)

(** {2 Per-statement decomposition} *)

type stmt_mark

val stmt_begin : Nsql_sim.Sim.t -> stmt_mark option
(** Snapshot the clock and per-category totals; [None] when disabled
    (the usual one-branch guard). *)

val stmt_end : Nsql_sim.Sim.t -> stmt_mark option -> name:string -> unit
(** Record the statement: its category deltas sum to the [Sim.now]
    delta exactly, and its elapsed time feeds the "stmt" histogram. *)

(** {2 Rendering} *)

val pp_us : Format.formatter -> float -> unit

val sparkline : ?width:int -> Hist.t -> string
(** The histogram's non-empty bucket range as unicode block heights. *)

val pp_report : Format.formatter -> Nsql_sim.Sim.t -> unit
(** The [\monitor] view: where-time-goes table, busy fractions, gauges,
    histogram lines with sparklines, per-statement totals. *)

(** {2 Export} *)

val json : Nsql_sim.Sim.t -> string
(** Single-world monitor export; byte-identical for a given seed. *)

val json_of_moncores : Moncore.t list -> string
(** Multi-world export ([bench --monitor] collects one moncore per
    created world via {!Moncore.creation_hook}). *)

val chrome_counters : ?pid:int -> Moncore.t -> string list
(** Chrome trace-event counter samples (["ph":"C"]), one per closed
    slice per track (gauges, per-resource busy time), for merging into
    [Trace.chrome_json ~counters]. *)

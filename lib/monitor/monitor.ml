module Sim = Nsql_sim.Sim
module Moncore = Nsql_sim.Moncore
module Hist = Nsql_sim.Hist

(* Observation must never perturb the simulation: everything below reads
   [Sim.now] and the moncore storage but never calls [charge]/[tick]/
   [wait_until]/[schedule] or sends a message — the MON-PURE lint rule
   and test/test_monitor.ml hold this library to that. *)

let set_enabled sim on =
  Moncore.set_enabled (Sim.moncore sim) ~now:(Sim.now sim) on

let enabled sim = Moncore.enabled (Sim.moncore sim)
let clear sim = Moncore.clear (Sim.moncore sim) ~now:(Sim.now sim)
let set_slice_us sim us = Moncore.set_slice_us (Sim.moncore sim) us
let observe sim name v = Moncore.observe (Sim.moncore sim) name v

(* --- per-statement decomposition ------------------------------------------

   The caller brackets a statement with [stmt_begin]/[stmt_end]; the
   difference of the per-category clock totals tiles the [Sim.now] delta
   exactly (each total only ever grows by pieces of real clock advances,
   and all clock values are binary-exact multiples of 0.25 us). *)

type stmt_mark = { m_start : float; m_cats : float array }

let stmt_begin sim : stmt_mark option =
  let mc = Sim.moncore sim in
  if not (Moncore.enabled mc) then None
  else Some { m_start = Sim.now sim; m_cats = Moncore.cat_snapshot mc }

let stmt_end sim mark ~name =
  match mark with
  | None -> ()
  | Some { m_start; m_cats } ->
      let mc = Sim.moncore sim in
      let now = Sim.now sim in
      let after = Moncore.cat_snapshot mc in
      let cats =
        Array.init Moncore.n_cats (fun i -> after.(i) -. m_cats.(i))
      in
      let elapsed = now -. m_start in
      Moncore.note_stmt mc ~name ~start:m_start ~elapsed ~cats;
      Moncore.observe mc "stmt" elapsed

(* --- rendering ------------------------------------------------------------ *)

let pp_us ppf us =
  if us < 1_000. then Format.fprintf ppf "%.1fus" us
  else if us < 1_000_000. then Format.fprintf ppf "%.2fms" (us /. 1_000.)
  else Format.fprintf ppf "%.3fs" (us /. 1_000_000.)

let spark_levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]

(* the non-empty bucket range of [h], compressed into at most [width]
   columns, each column scaled to eight block heights by its count *)
let sparkline ?(width = 32) h =
  match Hist.nonzero h with
  | [] -> ""
  | nz ->
      let lo = fst (List.hd nz) in
      let hi = List.fold_left (fun acc (i, _) -> max acc i) lo nz in
      let nb = hi - lo + 1 in
      let cols = min width nb in
      let counts = Array.make cols 0 in
      List.iter
        (fun (i, c) ->
          let col = (i - lo) * cols / nb in
          counts.(col) <- counts.(col) + c)
        nz;
      let top = Array.fold_left max 1 counts in
      let buf = Buffer.create (3 * cols) in
      Array.iter
        (fun c ->
          if c = 0 then Buffer.add_char buf ' '
          else
            let lvl = min 7 (c * 8 / top) in
            Buffer.add_string buf spark_levels.(lvl))
        counts;
      Buffer.contents buf

let us_str us = Format.asprintf "%a" pp_us us

let pp_hist_line ppf (name, h) =
  Format.fprintf ppf "  %-10s n=%-6d p50=%-9s p95=%-9s p99=%-9s max=%-9s %s"
    name (Hist.count h)
    (us_str (Hist.quantile h 0.5))
    (us_str (Hist.quantile h 0.95))
    (us_str (Hist.quantile h 0.99))
    (us_str (Hist.max_value h))
    (sparkline h)

let pp_report ppf sim =
  let mc = Sim.moncore sim in
  if not (Moncore.enabled mc) then
    Format.fprintf ppf "monitor: disabled@."
  else begin
    let now = Sim.now sim in
    let start = Moncore.start_now mc in
    let elapsed = now -. start in
    let cats = Moncore.cat_snapshot mc in
    let total = Array.fold_left ( +. ) 0. cats in
    let slices = Moncore.slices mc in
    Format.fprintf ppf "monitor: %a simulated, slice %a, %d closed slices@."
      pp_us elapsed pp_us (Moncore.slice_us mc)
      (List.length slices);
    Format.fprintf ppf "where time goes:@.";
    Array.iteri
      (fun i name ->
        if cats.(i) > 0. then
          Format.fprintf ppf "  %-10s %14.1f us  %5.1f%%@." name cats.(i)
            (if elapsed > 0. then 100. *. cats.(i) /. elapsed else 0.))
      Moncore.cat_names;
    Format.fprintf ppf "  %-10s %14.1f us  (clock delta %.1f us)@." "total"
      total elapsed;
    let busy = Moncore.busy_snapshot mc in
    Format.fprintf ppf "busy:";
    Array.iteri
      (fun i name ->
        Format.fprintf ppf " %s %.1f%%" name
          (if elapsed > 0. then 100. *. busy.(i) /. elapsed else 0.))
      Moncore.res_names;
    Format.fprintf ppf "@.gauges:";
    List.iter
      (fun (name, g) ->
        Format.fprintf ppf " %s=%d" name (Moncore.gauge_value mc g))
      [
        ("outstanding", Moncore.G_outstanding);
        ("parked", Moncore.G_parked);
        ("locks", Moncore.G_locks);
        ("diskq", Moncore.G_diskq);
      ];
    Format.fprintf ppf "@.";
    (match Moncore.hists mc with
    | [] -> ()
    | hs ->
        Format.fprintf ppf "latency histograms:@.";
        List.iter (fun nh -> Format.fprintf ppf "%a@." pp_hist_line nh) hs);
    (* statements aggregated by name, heaviest first *)
    let stmts = Moncore.stmts mc in
    if stmts <> [] then begin
      let agg = Hashtbl.create 16 in
      List.iter
        (fun (s : Moncore.stmt) ->
          let n, us =
            match Hashtbl.find_opt agg s.st_name with
            | Some (n, us) -> (n, us)
            | None -> (0, 0.)
          in
          Hashtbl.replace agg s.st_name (n + 1, us +. s.st_elapsed))
        stmts;
      let rows =
        Nsql_util.Tbl.sorted_bindings agg
        |> List.sort (fun (a, (_, ua)) (b, (_, ub)) ->
               match compare ub ua with 0 -> compare a b | c -> c)
      in
      Format.fprintf ppf "statements (by total time):@.";
      List.iter
        (fun (name, (n, us)) ->
          Format.fprintf ppf "  %-10s x%-5d %a@." name n pp_us us)
        rows
    end;
    if Moncore.dropped_slices mc > 0 || Moncore.dropped_stmts mc > 0 then
      Format.fprintf ppf "dropped: %d slices, %d statements@."
        (Moncore.dropped_slices mc)
        (Moncore.dropped_stmts mc)
  end

(* --- JSON export ----------------------------------------------------------

   Byte-identical for a given seed: fixed [%.3f] for every microsecond
   value, histogram buckets as (index, count) pairs, slices in order. *)

let add_f buf f = Buffer.add_string buf (Printf.sprintf "%.3f" f)

let add_named_floats buf names values =
  Buffer.add_char buf '{';
  Array.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":" name);
      add_f buf values.(i))
    names;
  Buffer.add_char buf '}'

let add_named_ints buf names values =
  Buffer.add_char buf '{';
  Array.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" name values.(i)))
    names;
  Buffer.add_char buf '}'

let add_hist buf h =
  Buffer.add_string buf
    (Printf.sprintf "{\"n\":%d,\"min\":%.3f,\"max\":%.3f,\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f,\"buckets\":["
       (Hist.count h) (Hist.min_value h) (Hist.max_value h)
       (Hist.quantile h 0.5) (Hist.quantile h 0.95) (Hist.quantile h 0.99));
  List.iteri
    (fun i (b, c) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "[%d,%d]" b c))
    (Hist.nonzero h);
  Buffer.add_string buf "]}"

let add_slice buf (sl : Moncore.slice) =
  Buffer.add_string buf (Printf.sprintf "{\"t\":%.3f,\"cats\":" sl.sl_start);
  add_named_floats buf Moncore.cat_names sl.sl_cats;
  Buffer.add_string buf ",\"busy\":";
  add_named_floats buf Moncore.res_names sl.sl_busy;
  Buffer.add_string buf ",\"gauges\":";
  add_named_ints buf Moncore.gauge_names sl.sl_gauges;
  Buffer.add_string buf ",\"stats\":";
  add_named_ints buf Moncore.probe_names sl.sl_stats;
  Buffer.add_char buf '}'

let add_world buf mc =
  Buffer.add_string buf
    (Printf.sprintf "{\"start\":%.3f,\"now\":%.3f,\"slice_us\":%.3f"
       (Moncore.start_now mc) (Moncore.last_now mc) (Moncore.slice_us mc));
  Buffer.add_string buf ",\"cats\":";
  add_named_floats buf Moncore.cat_names (Moncore.cat_snapshot mc);
  Buffer.add_string buf ",\"busy\":";
  add_named_floats buf Moncore.res_names (Moncore.busy_snapshot mc);
  Buffer.add_string buf ",\"hists\":{";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":" name);
      add_hist buf h)
    (Moncore.hists mc);
  Buffer.add_string buf "},\"slices\":[";
  List.iteri
    (fun i sl ->
      if i > 0 then Buffer.add_string buf ",\n";
      add_slice buf sl)
    (Moncore.slices mc);
  Buffer.add_string buf
    (Printf.sprintf "],\"dropped_slices\":%d,\"dropped_stmts\":%d}"
       (Moncore.dropped_slices mc)
       (Moncore.dropped_stmts mc))

let json_of_moncores mcs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i mc ->
      if i > 0 then Buffer.add_string buf ",\n";
      add_world buf mc)
    mcs;
  Buffer.add_string buf "]\n";
  Buffer.contents buf

let json sim = json_of_moncores [ Sim.moncore sim ]

(* --- Chrome counter events ------------------------------------------------

   One "ph":"C" event per closed slice per track, timestamped at the
   slice close, rendered with the same fixed [%.3f] as the span export.
   Merged into [Trace.chrome_json ~counters] they draw queue depth,
   parked waiters, and busy time as tracks under the spans. *)

let chrome_counters ?(pid = 0) mc =
  let slice_us = Moncore.slice_us mc in
  List.concat_map
    (fun (sl : Moncore.slice) ->
      let ts = sl.sl_start +. slice_us in
      let ev name add_args =
        let buf = Buffer.create 128 in
        Buffer.add_string buf
          (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"monitor\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"tid\":0,\"args\":"
             name ts pid);
        add_args buf;
        Buffer.add_char buf '}';
        Buffer.contents buf
      in
      [
        ev "mon.gauges" (fun buf ->
            add_named_ints buf Moncore.gauge_names sl.sl_gauges);
        ev "mon.busy_us" (fun buf ->
            add_named_floats buf Moncore.res_names sl.sl_busy);
      ])
    (Moncore.slices mc)

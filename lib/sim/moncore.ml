(* Per-world monitor storage: the layer below [Sim] that the resource
   monitor (lib/monitor) reads and every subsystem feeds.

   Like [Tracer], this module is pure bookkeeping. It never touches the
   simulation — callers pass clock values in, and every entry point is a
   single [enabled] branch when monitoring is off. The simulated clock
   itself is attributed here: [Sim.advance_to] reports every real clock
   movement through [clock_advance], tagged with the *category* current
   at that instant ([with_cat] around charges and waits), so the
   per-category totals tile [Sim.now] deltas exactly — every config time
   constant is a binary-exact multiple of 0.25 us far below 2^52, so the
   float additions that split an advance across categories and slice
   boundaries are exact.

   The same clock hook drives the time-sliced sampler: when an advance
   crosses a slice boundary the open slice is closed — instantaneous
   gauges sampled, cumulative stat counters probed — and a fresh one
   opened, with the advance apportioned exactly across the boundary. No
   event is ever scheduled for sampling (a self-rescheduling sampler
   would keep [Sim.drain] alive forever and perturb event order). *)

(* where a clock advance is charged; [C_other] is the default for any
   movement no subsystem claimed *)
type cat = C_compute | C_msg | C_disk | C_lockwait | C_ckpt | C_await | C_other

let n_cats = 7

let cat_index = function
  | C_compute -> 0
  | C_msg -> 1
  | C_disk -> 2
  | C_lockwait -> 3
  | C_ckpt -> 4
  | C_await -> 5
  | C_other -> 6

let cat_names =
  [| "compute"; "msg"; "disk"; "lock_wait"; "ckpt"; "await"; "other" |]

(* instantaneous occupancy counters, sampled at slice close *)
type gauge = G_outstanding | G_parked | G_locks | G_diskq

let n_gauges = 4

let gauge_index = function
  | G_outstanding -> 0
  | G_parked -> 1
  | G_locks -> 2
  | G_diskq -> 3

let gauge_names = [| "outstanding"; "parked"; "locks"; "diskq" |]

(* resources whose service time is accumulated per slice (iostat-style:
   a slice's busy time is the service time of work *completed* in it,
   so overlapped service can exceed the slice length) *)
type res = R_dp | R_disk

let n_res = 2
let res_index = function R_dp -> 0 | R_disk -> 1
let res_names = [| "dp"; "disk" |]

(* cumulative counters probed from [Stats] at each slice close; the
   closure installed by [Sim.create] must produce them in this order *)
let probe_names =
  [| "msgs_sent"; "disk_reads"; "disk_writes"; "checkpoint_bytes"; "lock_waits" |]

type slice = {
  sl_start : float;
  sl_cats : float array;  (* per-category us spent inside the slice *)
  sl_busy : float array;  (* per-resource service us completed in the slice *)
  mutable sl_gauges : int array;  (* gauge values at slice close *)
  mutable sl_stats : int array;  (* cumulative probe at slice close *)
}

type stmt = {
  st_name : string;
  st_start : float;
  st_elapsed : float;
  st_cats : float array;  (* sums to [st_elapsed] exactly *)
}

let slice_cap = 8192
let stmt_cap = 16384

type t = {
  mutable enabled : bool;
  mutable cat : cat;
  mutable start_now : float;  (* clock when enabled / cleared *)
  mutable last_now : float;  (* clock high-water mark seen by the hook *)
  mutable slice_us : float;
  cat_us : float array;  (* per-category totals since [start_now] *)
  busy_us : float array;  (* per-resource totals since [start_now] *)
  gauges : int array;
  mutable cur : slice;
  mutable slices : slice array;
  mutable n_slices : int;
  mutable dropped_slices : int;
  mutable probe : (unit -> int array) option;
  hists : (string, Hist.t) Hashtbl.t;
  mutable stmts : stmt array;
  mutable n_stmts : int;
  mutable dropped_stmts : int;
}

let fresh_slice start =
  {
    sl_start = start;
    sl_cats = Array.make n_cats 0.;
    sl_busy = Array.make n_res 0.;
    sl_gauges = Array.make n_gauges 0;
    sl_stats = Array.make (Array.length probe_names) 0;
  }

let create () =
  {
    enabled = false;
    cat = C_other;
    start_now = 0.;
    last_now = 0.;
    slice_us = 10_000.;
    cat_us = Array.make n_cats 0.;
    busy_us = Array.make n_res 0.;
    gauges = Array.make n_gauges 0;
    cur = fresh_slice 0.;
    slices = [||];
    n_slices = 0;
    dropped_slices = 0;
    probe = None;
    hists = Hashtbl.create 16;
    stmts = [||];
    n_stmts = 0;
    dropped_stmts = 0;
  }

(* sim.create installs the stats probe; a monitor hook may already have
   enabled the world before the probe exists, hence the late binding *)
let set_probe t f = t.probe <- Some f

let creation_hook : (t -> unit) option ref = ref None

let enabled t = t.enabled

let clear t ~now =
  t.cat <- C_other;
  t.start_now <- now;
  t.last_now <- now;
  Array.fill t.cat_us 0 n_cats 0.;
  Array.fill t.busy_us 0 n_res 0.;
  Array.fill t.gauges 0 n_gauges 0;
  t.cur <- fresh_slice now;
  t.slices <- [||];
  t.n_slices <- 0;
  t.dropped_slices <- 0;
  Hashtbl.reset t.hists;
  t.stmts <- [||];
  t.n_stmts <- 0;
  t.dropped_stmts <- 0

let set_enabled t ~now on =
  if on && not t.enabled then clear t ~now;
  t.enabled <- on

let set_slice_us t us =
  if us <= 0. then invalid_arg "Moncore.set_slice_us";
  t.slice_us <- us

(* --- clock attribution ---------------------------------------------------- *)

let with_cat t c f =
  if not t.enabled then f ()
  else begin
    let saved = t.cat in
    t.cat <- c;
    Fun.protect ~finally:(fun () -> t.cat <- saved) f
  end

let push_slice t sl =
  if t.n_slices >= slice_cap then t.dropped_slices <- t.dropped_slices + 1
  else begin
    if t.n_slices >= Array.length t.slices then begin
      let cap = max 64 (2 * Array.length t.slices) in
      let a = Array.make (min cap slice_cap) sl in
      Array.blit t.slices 0 a 0 t.n_slices;
      t.slices <- a
    end;
    t.slices.(t.n_slices) <- sl;
    t.n_slices <- t.n_slices + 1
  end

let close_slice t sl =
  sl.sl_gauges <- Array.copy t.gauges;
  (match t.probe with None -> () | Some f -> sl.sl_stats <- f ());
  push_slice t sl

let clock_advance t ~from_ ~to_ =
  if t.enabled && to_ > from_ then begin
    let ci = cat_index t.cat in
    let rec go from_ =
      let sl = t.cur in
      let slice_end = sl.sl_start +. t.slice_us in
      if to_ <= slice_end then begin
        let dt = to_ -. from_ in
        sl.sl_cats.(ci) <- sl.sl_cats.(ci) +. dt;
        t.cat_us.(ci) <- t.cat_us.(ci) +. dt
      end
      else begin
        let dt = slice_end -. from_ in
        if dt > 0. then begin
          sl.sl_cats.(ci) <- sl.sl_cats.(ci) +. dt;
          t.cat_us.(ci) <- t.cat_us.(ci) +. dt
        end;
        close_slice t sl;
        t.cur <- fresh_slice slice_end;
        go slice_end
      end
    in
    go from_;
    t.last_now <- to_
  end

(* --- feeds ---------------------------------------------------------------- *)

let observe t name v =
  if t.enabled then begin
    let h =
      match Hashtbl.find_opt t.hists name with
      | Some h -> h
      | None ->
          let h = Hist.create () in
          Hashtbl.replace t.hists name h;
          h
    in
    Hist.record h v
  end

let add_busy t r dur =
  if t.enabled && dur > 0. then begin
    let ri = res_index r in
    t.cur.sl_busy.(ri) <- t.cur.sl_busy.(ri) +. dur;
    t.busy_us.(ri) <- t.busy_us.(ri) +. dur
  end

let gauge_add t g d =
  if t.enabled then begin
    let gi = gauge_index g in
    t.gauges.(gi) <- t.gauges.(gi) + d
  end

let note_stmt t ~name ~start ~elapsed ~cats =
  if t.enabled then begin
    if t.n_stmts >= stmt_cap then t.dropped_stmts <- t.dropped_stmts + 1
    else begin
      let st = { st_name = name; st_start = start; st_elapsed = elapsed; st_cats = cats } in
      if t.n_stmts >= Array.length t.stmts then begin
        let cap = max 64 (2 * Array.length t.stmts) in
        let a = Array.make (min cap stmt_cap) st in
        Array.blit t.stmts 0 a 0 t.n_stmts;
        t.stmts <- a
      end;
      t.stmts.(t.n_stmts) <- st;
      t.n_stmts <- t.n_stmts + 1
    end
  end

(* --- reads ---------------------------------------------------------------- *)

let start_now t = t.start_now
let last_now t = t.last_now
let slice_us t = t.slice_us
let cat_snapshot t = Array.copy t.cat_us
let busy_snapshot t = Array.copy t.busy_us
let gauge_value t g = t.gauges.(gauge_index g)
let dropped_slices t = t.dropped_slices
let dropped_stmts t = t.dropped_stmts

let slices t = Array.to_list (Array.sub t.slices 0 t.n_slices)
let current_slice t = t.cur
let stmts t = Array.to_list (Array.sub t.stmts 0 t.n_stmts)

let hist t name = Hashtbl.find_opt t.hists name

let hists t =
  Nsql_util.Tbl.sorted_bindings t.hists

(* Span collection for the deterministic tracer.

   This module is pure bookkeeping: it never reads the clock, never touches
   the statistics record, and never charges simulated time. The public API
   in [Nsql_trace.Trace] samples the clock and counters from the simulation
   world and passes them in, which lets the collector live below [Sim]
   (so [Sim.t] can own one) without a dependency cycle. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  sp_id : int;
  sp_parent : int option;
  sp_name : string;
  sp_cat : string;
  sp_tid : int;
  sp_start : float;
  mutable sp_end : float;
  mutable sp_attrs : (string * value) list;  (* in order of addition *)
  sp_before : Stats.t;  (* counter snapshot at begin *)
  mutable sp_stats : Stats.t;  (* counter delta over the span's extent *)
  mutable sp_explicit : bool;
      (* delta accumulated via [add_stats]; finish must not overwrite it *)
  mutable sp_open : bool;
}

type t = {
  mutable enabled : bool;
  capacity : int;
  ring : span option array;
  mutable head : int;  (* next write position *)
  mutable count : int;  (* live entries, <= capacity *)
  mutable dropped : int;  (* spans overwritten before collection *)
  mutable next_id : int;
  mutable stack : span list;  (* open spans, for parent inference *)
}

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  {
    enabled = false;
    capacity;
    ring = Array.make capacity None;
    head = 0;
    count = 0;
    dropped = 0;
    next_id = 1;
    stack = [];
  }

(* Hook consulted by [Sim.create] on every new simulation world; the bench
   harness uses it to switch tracing on for every world an experiment
   builds, without threading a flag through each constructor. *)
let creation_hook : (t -> unit) option ref = ref None

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let dropped t = t.dropped

let record t sp =
  t.ring.(t.head) <- Some sp;
  t.head <- (t.head + 1) mod t.capacity;
  if t.count = t.capacity then t.dropped <- t.dropped + 1
  else t.count <- t.count + 1

let push_open t sp = t.stack <- sp :: t.stack

let pop t sp =
  t.stack <- List.filter (fun s -> s.sp_id <> sp.sp_id) t.stack

let begin_ t ~now ~before ?parent ~push ?tid ~cat ~attrs name =
  let parent =
    match parent with Some _ -> parent | None -> (
      match t.stack with [] -> None | p :: _ -> Some p)
  in
  let tid =
    match tid with
    | Some x -> x
    | None -> ( match parent with Some p -> p.sp_tid | None -> 0)
  in
  let sp =
    {
      sp_id = t.next_id;
      sp_parent = Option.map (fun p -> p.sp_id) parent;
      sp_name = name;
      sp_cat = cat;
      sp_tid = tid;
      sp_start = now;
      sp_end = now;
      sp_attrs = attrs;
      sp_before = before;
      sp_stats = Stats.create ();
      sp_explicit = false;
      sp_open = true;
    }
  in
  t.next_id <- t.next_id + 1;
  record t sp;
  if push then push_open t sp;
  sp

let add_attr sp k v = sp.sp_attrs <- sp.sp_attrs @ [ (k, v) ]

let add_stats sp d =
  sp.sp_explicit <- true;
  sp.sp_stats <- Stats.add sp.sp_stats d

let finish t sp ~now ~after =
  if sp.sp_open then begin
    sp.sp_open <- false;
    sp.sp_end <- now;
    if not sp.sp_explicit then
      sp.sp_stats <- Stats.diff ~before:sp.sp_before ~after;
    pop t sp
  end

let instant t ~now ?tid ~cat ~attrs name =
  let sp = begin_ t ~now ~before:(Stats.create ()) ~push:false ?tid ~cat ~attrs name in
  sp.sp_explicit <- true;
  (* keep the zeroed delta *)
  sp.sp_open <- false

(* Drain collected spans in begin order. Spans still open keep their
   handles (their eventual [finish] mutates records no longer collected);
   the parent stack is preserved so nesting continues to resolve. *)
let take t =
  let start = (t.head - t.count + t.capacity) mod t.capacity in
  let out =
    List.init t.count (fun i ->
        match t.ring.((start + i) mod t.capacity) with
        | Some sp -> sp
        | None -> assert false)
  in
  Array.fill t.ring 0 t.capacity None;
  t.head <- 0;
  t.count <- 0;
  t.dropped <- 0;
  out

let clear t = ignore (take t)

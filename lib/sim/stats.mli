(** Simulation statistics.

    Every subsystem charges its activity to the statistics record of the
    simulation world it belongs to. Experiments snapshot the counters around
    a measured region ({!diff}) — message counts, I/O counts and bytes moved
    are the quantities the paper's claims are stated in. *)

type t = {
  mutable msgs_sent : int;  (** request messages (FS-DP and others) *)
  mutable msg_req_bytes : int;  (** request payload bytes *)
  mutable msg_reply_bytes : int;  (** reply payload bytes *)
  mutable msgs_remote : int;  (** messages that crossed a processor *)
  mutable msgs_internode : int;  (** messages that crossed a node *)
  mutable checkpoint_msgs : int;  (** primary-to-backup checkpoints *)
  mutable checkpoint_bytes : int;
  mutable disk_reads : int;  (** read I/O operations *)
  mutable disk_writes : int;  (** write I/O operations *)
  mutable blocks_read : int;  (** blocks transferred by reads *)
  mutable blocks_written : int;
  mutable bulk_reads : int;  (** read I/Os moving more than one block *)
  mutable bulk_writes : int;
  mutable prefetch_reads : int;  (** asynchronous pre-fetch I/Os *)
  mutable writebehind_writes : int;  (** asynchronous write-behind I/Os *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_steals : int;  (** frames surrendered to VM pressure *)
  mutable cpu_ticks : int;  (** simulated instruction units *)
  mutable lock_requests : int;
  mutable lock_conflicts : int;  (** conflicts answered with an immediate denial *)
  mutable lock_waits : int;  (** requests parked on a DP wait queue *)
  mutable deadlocks : int;  (** wait-for cycles detected (victim denied) *)
  mutable audit_records : int;
  mutable audit_bytes : int;
  mutable audit_flushes : int;  (** physical writes of the audit buffer *)
  mutable audit_flush_full : int;  (** flushes caused by buffer-full *)
  mutable audit_flush_timer : int;  (** flushes caused by the timer *)
  mutable group_commit_txs : int;  (** transactions committed by flushes *)
  mutable tx_begun : int;
  mutable tx_committed : int;
  mutable tx_aborted : int;
  mutable records_read : int;  (** records examined by the Disk Process *)
  mutable records_returned : int;  (** records shipped to the requester *)
  mutable exec_batches : int;
      (** reply buffers absorbed into an executor-visible scan batch *)
  mutable exec_rows : int;  (** rows flowing out of scan batches *)
  mutable redrives : int;  (** continuation re-drive messages *)
  mutable faults_injected : int;  (** faults applied by the chaos engine *)
  mutable msg_path_retries : int;  (** message-path failures retried *)
  mutable disk_transient_errors : int;  (** transient I/O errors retried *)
  mutable takeovers : int;  (** process-pair takeovers performed *)
  mutable takeover_denials : int;
      (** requests denied because their state predated a takeover *)
}

val create : unit -> t

(** [copy t] is an independent snapshot. *)
val copy : t -> t

(** [diff ~before ~after] is the per-counter difference. *)
val diff : before:t -> after:t -> t

(** [add a b] sums two statistics records into a fresh one. *)
val add : t -> t -> t

(** [map2 f a b] applies [f] to every counter pair into a fresh record.
    Because it names every field, it is the one place that must grow when a
    counter is added — tests exploit that to check {!pp} completeness. *)
val map2 : (int -> int -> int) -> t -> t -> t

val reset : t -> unit

val pp : Format.formatter -> t -> unit

(** [pp_brief] prints only the message/IO counters that the experiments
    report. *)
val pp_brief : Format.formatter -> t -> unit

(** [to_assoc t] lists (name, value) for every counter, for table output. *)
val to_assoc : t -> (string * int) list

(** Per-world monitor storage: the layer below {!Sim} that the resource
    monitor (lib/monitor) reads and every subsystem feeds.

    Pure bookkeeping in the [Tracer] mould: callers pass clock values
    in; nothing here charges, ticks, waits, schedules, or sends — the
    MON-PURE lint rule holds this module and lib/monitor to that. Every
    entry point is one [enabled] branch when monitoring is off, and
    enabling it is observationally free: results, stats, and the
    simulated clock are bit-identical either way (test-enforced). *)

(** Category a real clock advance is charged to. The per-category
    totals tile [Sim.now] deltas {e exactly}: every config time constant
    is a binary-exact multiple of 0.25 us far below 2^52, so the float
    additions splitting an advance across categories and slices are
    exact. [C_other] is the default for movement no subsystem claimed;
    [C_await] is overlapped/idle waiting (nowait completions, backoff,
    event drains) whose underlying work was charged under a capture. *)
type cat = C_compute | C_msg | C_disk | C_lockwait | C_ckpt | C_await | C_other

val n_cats : int
val cat_index : cat -> int
val cat_names : string array

(** Instantaneous occupancy counters, sampled at each slice close:
    outstanding nowait completions, parked lock waiters, held locks, and
    in-flight disk I/Os. [G_diskq] is maintained by the disk layer with
    lazy retirement — completed I/Os leave the gauge at the volume's next
    submission/completion/stall touch point, so between disk operations
    it reads the depth as of the last disk interaction. *)
type gauge = G_outstanding | G_parked | G_locks | G_diskq

val n_gauges : int
val gauge_index : gauge -> int
val gauge_names : string array

(** Resources whose service time is accumulated per slice. iostat-style:
    a slice's busy time is the service time of work {e completed} in it,
    so overlapped service can exceed the slice length. *)
type res = R_dp | R_disk

val n_res : int
val res_index : res -> int
val res_names : string array

val probe_names : string array
(** Names of the cumulative stat counters probed at each slice close,
    in the order the closure installed by [Sim.create] produces them. *)

type slice = {
  sl_start : float;
  sl_cats : float array;
  sl_busy : float array;
  mutable sl_gauges : int array;
  mutable sl_stats : int array;
}

type stmt = {
  st_name : string;
  st_start : float;
  st_elapsed : float;
  st_cats : float array;  (** sums to [st_elapsed] exactly *)
}

type t

val create : unit -> t

val creation_hook : (t -> unit) option ref
(** Called by [Sim.create] on every new world's monitor, before any
    simulation runs — how [bench --monitor] turns monitoring on for
    worlds it never sees constructed. *)

val set_probe : t -> (unit -> int array) -> unit
val enabled : t -> bool
val set_enabled : t -> now:float -> bool -> unit
val clear : t -> now:float -> unit

val set_slice_us : t -> float -> unit
(** Sampler slice width; must be a binary-exact positive value (the
    default 10_000. is) or boundary apportioning loses exactness. *)

val with_cat : t -> cat -> (unit -> 'a) -> 'a
(** Run [f] with clock advances attributed to the category; restores
    the previous category on exit. A no-op branch when disabled. *)

val clock_advance : t -> from_:float -> to_:float -> unit
(** The [Sim.advance_to] hook: attribute real clock movement to the
    current category and the open slice, closing slices (gauge sample +
    stats probe) at every boundary crossed. Never schedules anything. *)

val observe : t -> string -> float -> unit
(** Record a duration into the named histogram ("stmt", "dp", "disk",
    "lock_wait", "fs_req", "transfer", ...). *)

val add_busy : t -> res -> float -> unit
val gauge_add : t -> gauge -> int -> unit

val note_stmt :
  t -> name:string -> start:float -> elapsed:float -> cats:float array -> unit

val start_now : t -> float
val last_now : t -> float
val slice_us : t -> float
val cat_snapshot : t -> float array
val busy_snapshot : t -> float array
val gauge_value : t -> gauge -> int
val dropped_slices : t -> int
val dropped_stmts : t -> int
val slices : t -> slice list
val current_slice : t -> slice
val stmts : t -> stmt list
val hist : t -> string -> Hist.t option
val hists : t -> (string * Hist.t) list

(** The simulation world: a deterministic clock, an event queue, and the
    statistics record every subsystem charges against.

    Time is in simulated microseconds. Asynchronous activity (pre-fetch
    completions, write-behind, group-commit timers) is modelled as events:
    whenever the clock advances past an event's due time the event fires.
    There is no wall-clock or randomness anywhere in the simulation. *)

type t

val create : ?config:Config.t -> unit -> t

val config : t -> Config.t
val stats : t -> Stats.t

(** The world's span collector (see {!Tracer}); disabled at creation.
    Drive it through the high-level [Nsql_trace.Trace] API. *)
val tracer : t -> Tracer.t

(** The world's monitor storage (see {!Moncore}); disabled at creation.
    Drive it through the high-level [Nsql_monitor.Monitor] API. While
    enabled, every real clock advance is attributed to the current
    {!Moncore.cat} and apportioned across sampler slices — [tick] runs
    under [C_compute], [drain] under [C_await], and subsystems wrap
    their own charges — so per-category totals tile [now] deltas
    exactly. Bit-identical results, stats, and clock either way. *)
val moncore : t -> Moncore.t

(** [now t] is the current simulated time in microseconds. *)
val now : t -> float

(** [tick t n] charges [n] CPU ticks: bumps the counter and advances the
    clock by [n * cpu_tick_us], firing any events that come due. *)
val tick : t -> int -> unit

(** [charge t us] advances the clock by [us] microseconds. *)
val charge : t -> float -> unit

(** [wait_until t when_] advances the clock to at least [when_]. Used when a
    synchronous operation must wait for an asynchronous completion. *)
val wait_until : t -> float -> unit

(** [schedule t ~at f] registers [f] to fire when the clock reaches [at].
    Events scheduled at or before the current time fire on the next clock
    movement (or [flush_events]). *)
val schedule : t -> at:float -> (unit -> unit) -> unit

(** [after t delay f] is [schedule t ~at:(now t +. delay) f]. *)
val after : t -> float -> (unit -> unit) -> unit

(** [flush_events t] fires every event due at or before the current time. *)
val flush_events : t -> unit

(** [next_event t] is the due time of the earliest pending event, if any.
    Used by blocking waiters (e.g. {!Nsql_msg.Msg.await} on a parked lock
    request) to pump the event loop one step at a time: advance the clock
    to the returned time and the event fires. Must not be used to busy-wait
    under a {!capture} — events do not fire while the clock is frozen. *)
val next_event : t -> float option

(** [in_capture t] is true while a {!capture} is running. Blocking event
    pumps must refuse to run under a capture (they would spin forever). *)
val in_capture : t -> bool

(** [drain t] advances the clock until the event queue is empty (an idle
    period: pending write-behind, timers, etc. all complete). *)
val drain : t -> unit

(** [capture t f] runs [f] with the real clock frozen and returns its
    result together with the virtual elapsed time [f] would have taken.
    Inside the capture, [charge] and [wait_until] accumulate into the
    virtual clock ([now] reports base + accumulated), while CPU-tick and
    statistics counters — and persistent resource state such as disk busy
    windows — mutate exactly as in a blocking run. This is the substrate
    for nowait (overlapped) requests: issue each request under its own
    capture from the same base time, then the batch costs the {e max} of
    the captured elapsed times rather than their sum, with identical
    counters. Captures nest: an inner capture bases itself on the outer
    virtual clock. *)
val capture : t -> (unit -> 'a) -> 'a * float

(** [snapshot t] copies the statistics for later {!Stats.diff}. *)
val snapshot : t -> Stats.t

(** [measure t f] runs [f] and returns its result together with the
    statistics delta it produced. *)
val measure : t -> (unit -> 'a) -> 'a * Stats.t

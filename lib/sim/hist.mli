(** Deterministic fixed-bucket latency histogram.

    Log-spaced buckets with ratio 2^(1/8): bucket 0 holds values at or
    below 1 us, bucket [i] covers [(edge_hi (i-1), edge_hi i)], and 256
    buckets reach past an hour of microseconds (overflow clamps into the
    last bucket). Only int bucket counts and exact min/max are stored —
    no float sum — so {!merge} is associative and order-independent to
    the bit. *)

type t

val n_buckets : int

val bucket_of : float -> int
(** Bucket index a value falls in; pure function of the value. *)

val edge_hi : int -> float
(** Inclusive upper edge of a bucket. *)

val create : unit -> t
val record : t -> float -> unit
val count : t -> int
val is_empty : t -> bool

val min_value : t -> float
(** Exact smallest recorded value; [0.] when empty. *)

val max_value : t -> float
(** Exact largest recorded value; [0.] when empty. *)

val merge : t -> t -> t
(** Bucket-wise sum with min/max joins. Associative and commutative
    exactly: [merge a (merge b c)] and [merge (merge c a) b] agree on
    every bucket count, min, max, and therefore every quantile. *)

val quantile : t -> float -> float
(** [quantile t q] is the upper edge of the bucket holding the rank-
    ⌈q·n⌉ sample, clamped to the observed max: an upper bound on the
    true order statistic that always lies in the same bucket as it. The
    final bucket is unbounded above, so there the observed max stands in
    for the edge. [0.] when empty. *)

val nonzero : t -> (int * int) list
(** [(bucket index, count)] for every non-empty bucket, ascending. *)

type t = {
  mutable msgs_sent : int;
  mutable msg_req_bytes : int;
  mutable msg_reply_bytes : int;
  mutable msgs_remote : int;
  mutable msgs_internode : int;
  mutable checkpoint_msgs : int;
  mutable checkpoint_bytes : int;
  mutable disk_reads : int;
  mutable disk_writes : int;
  mutable blocks_read : int;
  mutable blocks_written : int;
  mutable bulk_reads : int;
  mutable bulk_writes : int;
  mutable prefetch_reads : int;
  mutable writebehind_writes : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_steals : int;
  mutable cpu_ticks : int;
  mutable lock_requests : int;
  mutable lock_conflicts : int;
  mutable lock_waits : int;
  mutable deadlocks : int;
  mutable audit_records : int;
  mutable audit_bytes : int;
  mutable audit_flushes : int;
  mutable audit_flush_full : int;
  mutable audit_flush_timer : int;
  mutable group_commit_txs : int;
  mutable tx_begun : int;
  mutable tx_committed : int;
  mutable tx_aborted : int;
  mutable records_read : int;
  mutable records_returned : int;
  mutable exec_batches : int;
  mutable exec_rows : int;
  mutable redrives : int;
  mutable faults_injected : int;
  mutable msg_path_retries : int;
  mutable disk_transient_errors : int;
  mutable takeovers : int;
  mutable takeover_denials : int;
}

let create () =
  {
    msgs_sent = 0;
    msg_req_bytes = 0;
    msg_reply_bytes = 0;
    msgs_remote = 0;
    msgs_internode = 0;
    checkpoint_msgs = 0;
    checkpoint_bytes = 0;
    disk_reads = 0;
    disk_writes = 0;
    blocks_read = 0;
    blocks_written = 0;
    bulk_reads = 0;
    bulk_writes = 0;
    prefetch_reads = 0;
    writebehind_writes = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_steals = 0;
    cpu_ticks = 0;
    lock_requests = 0;
    lock_conflicts = 0;
    lock_waits = 0;
    deadlocks = 0;
    audit_records = 0;
    audit_bytes = 0;
    audit_flushes = 0;
    audit_flush_full = 0;
    audit_flush_timer = 0;
    group_commit_txs = 0;
    tx_begun = 0;
    tx_committed = 0;
    tx_aborted = 0;
    records_read = 0;
    records_returned = 0;
    exec_batches = 0;
    exec_rows = 0;
    redrives = 0;
    faults_injected = 0;
    msg_path_retries = 0;
    disk_transient_errors = 0;
    takeovers = 0;
    takeover_denials = 0;
  }

let copy t = { t with msgs_sent = t.msgs_sent }

(* Applying an int->int->int operator pointwise keeps diff/add in sync with
   the field list. *)
let map2 f a b =
  {
    msgs_sent = f a.msgs_sent b.msgs_sent;
    msg_req_bytes = f a.msg_req_bytes b.msg_req_bytes;
    msg_reply_bytes = f a.msg_reply_bytes b.msg_reply_bytes;
    msgs_remote = f a.msgs_remote b.msgs_remote;
    msgs_internode = f a.msgs_internode b.msgs_internode;
    checkpoint_msgs = f a.checkpoint_msgs b.checkpoint_msgs;
    checkpoint_bytes = f a.checkpoint_bytes b.checkpoint_bytes;
    disk_reads = f a.disk_reads b.disk_reads;
    disk_writes = f a.disk_writes b.disk_writes;
    blocks_read = f a.blocks_read b.blocks_read;
    blocks_written = f a.blocks_written b.blocks_written;
    bulk_reads = f a.bulk_reads b.bulk_reads;
    bulk_writes = f a.bulk_writes b.bulk_writes;
    prefetch_reads = f a.prefetch_reads b.prefetch_reads;
    writebehind_writes = f a.writebehind_writes b.writebehind_writes;
    cache_hits = f a.cache_hits b.cache_hits;
    cache_misses = f a.cache_misses b.cache_misses;
    cache_steals = f a.cache_steals b.cache_steals;
    cpu_ticks = f a.cpu_ticks b.cpu_ticks;
    lock_requests = f a.lock_requests b.lock_requests;
    lock_conflicts = f a.lock_conflicts b.lock_conflicts;
    lock_waits = f a.lock_waits b.lock_waits;
    deadlocks = f a.deadlocks b.deadlocks;
    audit_records = f a.audit_records b.audit_records;
    audit_bytes = f a.audit_bytes b.audit_bytes;
    audit_flushes = f a.audit_flushes b.audit_flushes;
    audit_flush_full = f a.audit_flush_full b.audit_flush_full;
    audit_flush_timer = f a.audit_flush_timer b.audit_flush_timer;
    group_commit_txs = f a.group_commit_txs b.group_commit_txs;
    tx_begun = f a.tx_begun b.tx_begun;
    tx_committed = f a.tx_committed b.tx_committed;
    tx_aborted = f a.tx_aborted b.tx_aborted;
    records_read = f a.records_read b.records_read;
    records_returned = f a.records_returned b.records_returned;
    exec_batches = f a.exec_batches b.exec_batches;
    exec_rows = f a.exec_rows b.exec_rows;
    redrives = f a.redrives b.redrives;
    faults_injected = f a.faults_injected b.faults_injected;
    msg_path_retries = f a.msg_path_retries b.msg_path_retries;
    disk_transient_errors = f a.disk_transient_errors b.disk_transient_errors;
    takeovers = f a.takeovers b.takeovers;
    takeover_denials = f a.takeover_denials b.takeover_denials;
  }

let diff ~before ~after = map2 (fun a b -> a - b) after before
let add a b = map2 ( + ) a b

let reset t =
  let z = create () in
  t.msgs_sent <- z.msgs_sent;
  t.msg_req_bytes <- 0;
  t.msg_reply_bytes <- 0;
  t.msgs_remote <- 0;
  t.msgs_internode <- 0;
  t.checkpoint_msgs <- 0;
  t.checkpoint_bytes <- 0;
  t.disk_reads <- 0;
  t.disk_writes <- 0;
  t.blocks_read <- 0;
  t.blocks_written <- 0;
  t.bulk_reads <- 0;
  t.bulk_writes <- 0;
  t.prefetch_reads <- 0;
  t.writebehind_writes <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.cache_steals <- 0;
  t.cpu_ticks <- 0;
  t.lock_requests <- 0;
  t.lock_conflicts <- 0;
  t.lock_waits <- 0;
  t.deadlocks <- 0;
  t.audit_records <- 0;
  t.audit_bytes <- 0;
  t.audit_flushes <- 0;
  t.audit_flush_full <- 0;
  t.audit_flush_timer <- 0;
  t.group_commit_txs <- 0;
  t.tx_begun <- 0;
  t.tx_committed <- 0;
  t.tx_aborted <- 0;
  t.records_read <- 0;
  t.records_returned <- 0;
  t.exec_batches <- 0;
  t.exec_rows <- 0;
  t.redrives <- 0;
  t.faults_injected <- 0;
  t.msg_path_retries <- 0;
  t.disk_transient_errors <- 0;
  t.takeovers <- 0;
  t.takeover_denials <- 0

let to_assoc t =
  [
    ("msgs_sent", t.msgs_sent);
    ("msg_req_bytes", t.msg_req_bytes);
    ("msg_reply_bytes", t.msg_reply_bytes);
    ("msgs_remote", t.msgs_remote);
    ("msgs_internode", t.msgs_internode);
    ("checkpoint_msgs", t.checkpoint_msgs);
    ("checkpoint_bytes", t.checkpoint_bytes);
    ("disk_reads", t.disk_reads);
    ("disk_writes", t.disk_writes);
    ("blocks_read", t.blocks_read);
    ("blocks_written", t.blocks_written);
    ("bulk_reads", t.bulk_reads);
    ("bulk_writes", t.bulk_writes);
    ("prefetch_reads", t.prefetch_reads);
    ("writebehind_writes", t.writebehind_writes);
    ("cache_hits", t.cache_hits);
    ("cache_misses", t.cache_misses);
    ("cache_steals", t.cache_steals);
    ("cpu_ticks", t.cpu_ticks);
    ("lock_requests", t.lock_requests);
    ("lock_conflicts", t.lock_conflicts);
    ("lock_waits", t.lock_waits);
    ("deadlocks", t.deadlocks);
    ("audit_records", t.audit_records);
    ("audit_bytes", t.audit_bytes);
    ("audit_flushes", t.audit_flushes);
    ("audit_flush_full", t.audit_flush_full);
    ("audit_flush_timer", t.audit_flush_timer);
    ("group_commit_txs", t.group_commit_txs);
    ("tx_begun", t.tx_begun);
    ("tx_committed", t.tx_committed);
    ("tx_aborted", t.tx_aborted);
    ("records_read", t.records_read);
    ("records_returned", t.records_returned);
    ("exec_batches", t.exec_batches);
    ("exec_rows", t.exec_rows);
    ("redrives", t.redrives);
    ("faults_injected", t.faults_injected);
    ("msg_path_retries", t.msg_path_retries);
    ("disk_transient_errors", t.disk_transient_errors);
    ("takeovers", t.takeovers);
    ("takeover_denials", t.takeover_denials);
  ]

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, v) -> if v <> 0 then Format.fprintf ppf "%-20s %d@," name v)
    (to_assoc t);
  Format.fprintf ppf "@]"

let pp_brief ppf t =
  Format.fprintf ppf
    "msgs=%d req_bytes=%d reply_bytes=%d disk_reads=%d disk_writes=%d \
     cpu_ticks=%d"
    t.msgs_sent t.msg_req_bytes t.msg_reply_bytes t.disk_reads t.disk_writes
    t.cpu_ticks

(** Simulation parameters: era-faithful defaults, all overridable.

    The defaults model a late-1980s Tandem NonStop VLX-class configuration:
    4 KB disk blocks, 28 KB maximum bulk transfer, ~25 ms disk access time,
    millisecond-scale interprocess messages. Absolute values only set the
    scale of reported simulated times; the reproduced results are ratios of
    message/IO/byte counts, which do not depend on them. *)

type t = {
  block_size : int;  (** bytes per disk block (paper: 4 KB max) *)
  bulk_io_max_bytes : int;  (** max bytes per bulk I/O (paper: 28 KB) *)
  cache_blocks : int;  (** buffer-pool capacity in blocks *)
  vsbb_buffer_bytes : int;  (** reply buffer for virtual/real blocks *)
  audit_buffer_bytes : int;  (** audit (log) staging buffer *)
  dp_records_per_request : int;
      (** continuation re-drive limit: max records examined per FS-DP
          request message before the DP replies with a continuation *)
  dp_ticks_per_request : int;
      (** continuation re-drive limit: max CPU ticks per request *)
  dp_prefetch : bool;  (** asynchronous sequential pre-fetch in the DP *)
  fs_fanout : bool;
      (** drive partitioned files with overlapped (nowait) requests; when
          false the File System uses the blocking one-partition-at-a-time
          driver (the pre-nowait behaviour, kept for A/B comparison) *)
  dp_lock_wait : bool;
      (** park a blocked point request on a DP-side FIFO wait queue (with
          deadlock detection and a {!lock_wait_timeout_us} budget) instead
          of answering with an immediate denial; off by default so
          single-session workloads keep byte-identical message traffic *)
  dp_checkpoint : bool;
      (** maintain a backup-side replica of takeover-relevant DP state
          (open SCBs, lock table, wait queues, mutation intents) applied
          from the checkpoint stream; pure backup-side bookkeeping — the
          knob changes no message traffic, clock or counters, only whether
          a takeover can resume in-flight work *)
  exec_batch : bool;
      (** run the SQL executor as a push/batch pipeline: each FS-DP reply
          buffer flows through the operator chain as one row array with
          tight loops inside each operator; the pull-one-row reference
          path (exec_batch = false) is kept for A/B comparison and is
          byte-identical in results, message traffic, counters and clock *)
  disk_queue_depth : int;
      (** number of I/Os a volume services concurrently (io_uring-style
          submission/completion channels). 1 — the default — serializes
          every I/O behind a single busy window, byte-identical in
          results, counters and clock to the pre-queue-model disk
          (test-enforced); deeper queues overlap seeks and transfers
          across channels, and pre-fetch, write-behind and the DP scan
          read-ahead keep that many bulk windows in flight *)
  msg_local_cost_us : float;  (** fixed cost, same-processor message *)
  msg_cpu_cost_us : float;  (** fixed cost, cross-processor message *)
  msg_node_cost_us : float;  (** fixed cost, cross-node message *)
  msg_per_byte_us : float;  (** marginal cost per payload byte *)
  disk_seek_us : float;  (** average seek + rotational delay *)
  disk_sequential_us : float;  (** settle cost when physically sequential *)
  disk_per_block_us : float;  (** media transfer time per block *)
  cpu_tick_us : float;  (** duration of one simulated CPU tick *)
  lock_wait_timeout_us : float;  (** lock wait before timeout abort *)
  group_commit_timer_us : float;  (** initial group-commit timer *)
  group_commit_adaptive : bool;  (** Helland-style dynamic timer *)
  mirrored : bool;  (** mirrored volume writes *)
}

val default : t

(** [v ()] builds a configuration from [default] with optional overrides. *)
val v :
  ?block_size:int ->
  ?bulk_io_max_bytes:int ->
  ?cache_blocks:int ->
  ?vsbb_buffer_bytes:int ->
  ?audit_buffer_bytes:int ->
  ?dp_records_per_request:int ->
  ?dp_ticks_per_request:int ->
  ?dp_prefetch:bool ->
  ?fs_fanout:bool ->
  ?dp_lock_wait:bool ->
  ?dp_checkpoint:bool ->
  ?exec_batch:bool ->
  ?disk_queue_depth:int ->
  ?msg_local_cost_us:float ->
  ?msg_cpu_cost_us:float ->
  ?msg_node_cost_us:float ->
  ?msg_per_byte_us:float ->
  ?disk_seek_us:float ->
  ?disk_sequential_us:float ->
  ?disk_per_block_us:float ->
  ?cpu_tick_us:float ->
  ?lock_wait_timeout_us:float ->
  ?group_commit_timer_us:float ->
  ?group_commit_adaptive:bool ->
  ?mirrored:bool ->
  unit ->
  t

(* Deterministic fixed-bucket latency histogram.

   Buckets are log-spaced: bucket 0 holds everything at or below 1 us and
   bucket [i] covers (edges.(i-1), edges.(i)] with a fixed ratio of
   2^(1/8) (~9% per bucket), so 256 buckets reach past an hour of
   simulated microseconds. The edges are precomputed by repeated
   multiplication — no [log] in the record path — and lookup is a binary
   search, so the bucket assignment of a given float is a pure function
   of its value.

   A histogram deliberately stores only int bucket counts plus the exact
   min/max: there is no float sum, so [merge] is associative and
   order-independent to the bit (int additions commute; min/max are
   lattice operations). Quantiles are read as the upper edge of the
   bucket holding the rank, clamped to the observed max — always an
   upper bound on the true order statistic, and always inside the same
   bucket as it. *)

let n_buckets = 256

let edges =
  let e = Array.make n_buckets 1.0 in
  let ratio = 2. ** 0.125 in
  for i = 1 to n_buckets - 1 do
    e.(i) <- e.(i - 1) *. ratio
  done;
  e

(* smallest [i] with [v <= edges.(i)]; values beyond the last edge clamp
   into the final bucket *)
let bucket_of v =
  if v <= edges.(0) then 0
  else if v > edges.(n_buckets - 1) then n_buckets - 1
  else begin
    let lo = ref 0 and hi = ref (n_buckets - 1) in
    (* invariant: edges.(!lo) < v <= edges.(!hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v <= edges.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

let edge_hi i = edges.(i)

type t = {
  counts : int array;
  mutable n : int;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { counts = Array.make n_buckets 0; n = 0; min_v = infinity; max_v = neg_infinity }

let record t v =
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.n
let is_empty t = t.n = 0
let min_value t = if t.n = 0 then 0. else t.min_v
let max_value t = if t.n = 0 then 0. else t.max_v

let merge a b =
  let m = create () in
  for i = 0 to n_buckets - 1 do
    m.counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  m.n <- a.n + b.n;
  m.min_v <- min a.min_v b.min_v;
  m.max_v <- max a.max_v b.max_v;
  m

let quantile t q =
  if t.n = 0 then 0.
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.n)) in
      if r < 1 then 1 else if r > t.n then t.n else r
    in
    let b = ref 0 and cum = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + t.counts.(i);
         if !cum >= rank then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    (* the final bucket is unbounded above (overflow clamps into it), so
       its edge is no upper bound — the observed max is *)
    let v = if !b = n_buckets - 1 then t.max_v else edges.(!b) in
    if v > t.max_v then t.max_v else v
  end

(* (bucket index, count) for every non-empty bucket, in index order *)
let nonzero t =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (i, t.counts.(i)) :: !acc
  done;
  !acc

type capture = { cap_base : float; mutable cap_accum : float }

type t = {
  config : Config.t;
  stats : Stats.t;
  tracer : Tracer.t;
  moncore : Moncore.t;
  mutable now : float;
  events : (unit -> unit) Nsql_util.Heap.t;
  mutable firing : bool;
  mutable capture : capture option;
}

let create ?(config = Config.default) () =
  let tracer = Tracer.create () in
  (match !Tracer.creation_hook with None -> () | Some f -> f tracer);
  let moncore = Moncore.create () in
  let stats = Stats.create () in
  (* cumulative counters the sampler snapshots at each slice close; the
     order matches [Moncore.probe_names] *)
  Moncore.set_probe moncore (fun () ->
      [|
        stats.Stats.msgs_sent;
        stats.Stats.disk_reads;
        stats.Stats.disk_writes;
        stats.Stats.checkpoint_bytes;
        stats.Stats.lock_waits;
      |]);
  (match !Moncore.creation_hook with None -> () | Some f -> f moncore);
  {
    config;
    stats;
    tracer;
    moncore;
    now = 0.;
    events = Nsql_util.Heap.create ();
    firing = false;
    capture = None;
  }

let config t = t.config
let stats t = t.stats
let tracer t = t.tracer
let moncore t = t.moncore

let now t =
  match t.capture with
  | None -> t.now
  | Some c -> c.cap_base +. c.cap_accum

(* Events may schedule further events while firing; the loop re-examines the
   heap top each round. [firing] guards against re-entrant firing when an
   event handler itself advances the clock. *)
let fire_due t =
  if not t.firing then begin
    t.firing <- true;
    let rec loop () =
      match Nsql_util.Heap.min_prio t.events with
      | Some due when due <= t.now -> (
          match Nsql_util.Heap.pop_min t.events with
          | Some (_, f) ->
              f ();
              loop ()
          | None -> ())
      | Some _ | None -> ()
    in
    Fun.protect ~finally:(fun () -> t.firing <- false) loop
  end

let advance_to t when_ =
  (* step through intermediate event times so each event sees a clock that
     has just reached its due time; these two assignments are the only
     places [t.now] moves, so reporting them to the monitor here makes
     the per-category clock attribution exhaustive by construction *)
  let rec loop () =
    match Nsql_util.Heap.min_prio t.events with
    | Some due when due <= when_ && due > t.now ->
        Moncore.clock_advance t.moncore ~from_:t.now ~to_:due;
        t.now <- due;
        fire_due t;
        loop ()
    | _ ->
        if when_ > t.now then begin
          Moncore.clock_advance t.moncore ~from_:t.now ~to_:when_;
          t.now <- when_
        end;
        fire_due t
  in
  loop ()

let charge t us =
  if us > 0. then
    match t.capture with
    | None -> advance_to t (t.now +. us)
    | Some c -> c.cap_accum <- c.cap_accum +. us

let tick t n =
  if n > 0 then begin
    t.stats.Stats.cpu_ticks <- t.stats.Stats.cpu_ticks + n;
    Moncore.with_cat t.moncore Moncore.C_compute (fun () ->
        charge t (float_of_int n *. t.config.Config.cpu_tick_us))
  end

let wait_until t when_ =
  match t.capture with
  | None -> if when_ > t.now then advance_to t when_
  | Some c ->
      if when_ -. c.cap_base > c.cap_accum then
        c.cap_accum <- when_ -. c.cap_base

(* Run [f] with the real clock frozen: every [charge] and [wait_until]
   accumulates virtual elapsed time instead of advancing [t.now], while
   counters ([tick], stats) and persistent resource state (disk busy
   windows, cache stamps) mutate exactly as in a blocking run. Events
   scheduled during the capture keep their virtual due times and fire
   once the real clock later advances past them. Captures nest: an inner
   capture bases itself on the outer one's virtual clock. *)
let capture t f =
  let saved = t.capture in
  let c = { cap_base = now t; cap_accum = 0. } in
  t.capture <- Some c;
  let result = Fun.protect ~finally:(fun () -> t.capture <- saved) f in
  (result, c.cap_accum)

let schedule t ~at f =
  Nsql_util.Heap.push t.events ~prio:(max at t.now) f

let after t delay f = schedule t ~at:(t.now +. delay) f

let flush_events t = fire_due t

let next_event t = Nsql_util.Heap.min_prio t.events

let in_capture t = t.capture <> None

let drain t =
  Moncore.with_cat t.moncore Moncore.C_await (fun () ->
      let rec loop () =
        match Nsql_util.Heap.min_prio t.events with
        | None -> ()
        | Some due ->
            advance_to t (max due t.now);
            loop ()
      in
      loop ())

let snapshot t = Stats.copy t.stats

let measure t f =
  let before = snapshot t in
  let result = f () in
  let after_ = snapshot t in
  (result, Stats.diff ~before ~after:after_)

(** Span collection for the deterministic tracer.

    A span is a named, categorised interval on the simulated clock carrying
    key/value attributes and the {!Stats} delta observed over its extent.
    This module is the storage layer only — it never reads the clock or the
    statistics itself (the caller samples both and passes them in), so it
    can sit below {!Sim} and be owned by every simulation world.

    Use the high-level API in [Nsql_trace.Trace]; instrumented subsystems
    should not call [begin_]/[finish] here directly. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  sp_id : int;  (** deterministic, sequential from 1 per collector *)
  sp_parent : int option;  (** enclosing span's id *)
  sp_name : string;
  sp_cat : string;  (** subsystem category, e.g. "op", "msg", "disk" *)
  sp_tid : int;  (** display track; partition legs use 1 + leg index *)
  sp_start : float;  (** simulated µs *)
  mutable sp_end : float;
  mutable sp_attrs : (string * value) list;
  sp_before : Stats.t;
  mutable sp_stats : Stats.t;
  mutable sp_explicit : bool;
  mutable sp_open : bool;
}

type t

val create : ?capacity:int -> unit -> t

(** Consulted by [Sim.create] on every new simulation world. The bench
    harness sets it to enable tracing on every world an experiment builds. *)
val creation_hook : (t -> unit) option ref

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** Spans overwritten by ring wrap-around since the last {!take}. *)
val dropped : t -> int

(** [begin_ t ~now ~before ?parent ~push ?tid ~cat ~attrs name] opens a
    span. [parent] defaults to the innermost open pushed span; [tid]
    defaults to the parent's. [push] controls whether the new span becomes
    a parent candidate for spans begun inside it. *)
val begin_ :
  t ->
  now:float ->
  before:Stats.t ->
  ?parent:span ->
  push:bool ->
  ?tid:int ->
  cat:string ->
  attrs:(string * value) list ->
  string ->
  span

val add_attr : span -> string -> value -> unit

(** [add_stats sp d] accumulates an explicit counter delta; the span's
    begin/end window diff is then suppressed at finish. *)
val add_stats : span -> Stats.t -> unit

val finish : t -> span -> now:float -> after:Stats.t -> unit

(** Zero-duration event with an all-zero counter delta. *)
val instant :
  t ->
  now:float ->
  ?tid:int ->
  cat:string ->
  attrs:(string * value) list ->
  string ->
  unit

(** Parent-inference stack control, used by [Trace.attribute] to nest work
    under an un-pushed span (e.g. a partition leg). *)
val push_open : t -> span -> unit

val pop : t -> span -> unit

(** Drain collected spans in begin order and reset the ring. *)
val take : t -> span list

val clear : t -> unit

type t = {
  block_size : int;
  bulk_io_max_bytes : int;
  cache_blocks : int;
  vsbb_buffer_bytes : int;
  audit_buffer_bytes : int;
  dp_records_per_request : int;
  dp_ticks_per_request : int;
  dp_prefetch : bool;
  fs_fanout : bool;
      (** drive partitioned files with overlapped (nowait) requests; when
          false the File System falls back to the blocking one-partition-
          at-a-time driver (the pre-nowait behaviour, kept for A/B runs) *)
  dp_lock_wait : bool;
      (** park a blocked point request on a DP-side FIFO wait queue (with
          deadlock detection) instead of answering with an immediate
          [Rp_blocked]; off by default so single-session workloads keep
          byte-identical message traffic *)
  dp_checkpoint : bool;
      (** maintain a backup-side replica of takeover-relevant DP state
          (open SCBs, lock table, wait queues, mutation intents) applied
          from the checkpoint stream; the replica is pure backup-side
          bookkeeping, so turning it off changes no message traffic,
          clock or counters — only whether a takeover can resume
          in-flight work *)
  exec_batch : bool;
      (** run the SQL executor as a push/batch pipeline: each FS-DP reply
          buffer flows through the operator chain as one row array with
          tight loops inside each operator; when false the executor uses
          the pull-one-row reference path (kept for A/B runs and the
          byte-identity regression gate) *)
  disk_queue_depth : int;
      (** number of I/Os a volume services concurrently (io_uring-style
          submission/completion channels). 1 — the default — serializes
          every I/O behind a single busy window, byte-identical to the
          pre-queue-model disk (the regression gate test_diskq enforces);
          deeper queues overlap seeks/transfers across channels and make
          pre-fetch and the DP read-ahead keep that many bulk windows in
          flight *)
  msg_local_cost_us : float;
  msg_cpu_cost_us : float;
  msg_node_cost_us : float;
  msg_per_byte_us : float;
  disk_seek_us : float;
  disk_sequential_us : float;
  disk_per_block_us : float;
  cpu_tick_us : float;
  lock_wait_timeout_us : float;
  group_commit_timer_us : float;
  group_commit_adaptive : bool;
  mirrored : bool;
}

let default =
  {
    block_size = 4096;
    bulk_io_max_bytes = 28 * 1024;
    cache_blocks = 512;
    vsbb_buffer_bytes = 4096;
    audit_buffer_bytes = 28 * 1024;
    dp_records_per_request = 1024;
    dp_ticks_per_request = 200_000;
    dp_prefetch = true;
    fs_fanout = true;
    dp_lock_wait = false;
    dp_checkpoint = true;
    exec_batch = true;
    disk_queue_depth = 1;
    msg_local_cost_us = 300.;
    msg_cpu_cost_us = 1_000.;
    msg_node_cost_us = 5_000.;
    msg_per_byte_us = 0.5;
    disk_seek_us = 25_000.;
    disk_sequential_us = 1_000.;
    disk_per_block_us = 600.;
    cpu_tick_us = 1.;
    lock_wait_timeout_us = 2_000_000.;
    group_commit_timer_us = 10_000.;
    group_commit_adaptive = true;
    mirrored = false;
  }

let v ?(block_size = default.block_size)
    ?(bulk_io_max_bytes = default.bulk_io_max_bytes)
    ?(cache_blocks = default.cache_blocks)
    ?(vsbb_buffer_bytes = default.vsbb_buffer_bytes)
    ?(audit_buffer_bytes = default.audit_buffer_bytes)
    ?(dp_records_per_request = default.dp_records_per_request)
    ?(dp_ticks_per_request = default.dp_ticks_per_request)
    ?(dp_prefetch = default.dp_prefetch)
    ?(fs_fanout = default.fs_fanout)
    ?(dp_lock_wait = default.dp_lock_wait)
    ?(dp_checkpoint = default.dp_checkpoint)
    ?(exec_batch = default.exec_batch)
    ?(disk_queue_depth = default.disk_queue_depth)
    ?(msg_local_cost_us = default.msg_local_cost_us)
    ?(msg_cpu_cost_us = default.msg_cpu_cost_us)
    ?(msg_node_cost_us = default.msg_node_cost_us)
    ?(msg_per_byte_us = default.msg_per_byte_us)
    ?(disk_seek_us = default.disk_seek_us)
    ?(disk_sequential_us = default.disk_sequential_us)
    ?(disk_per_block_us = default.disk_per_block_us)
    ?(cpu_tick_us = default.cpu_tick_us)
    ?(lock_wait_timeout_us = default.lock_wait_timeout_us)
    ?(group_commit_timer_us = default.group_commit_timer_us)
    ?(group_commit_adaptive = default.group_commit_adaptive)
    ?(mirrored = default.mirrored) () =
  {
    block_size;
    bulk_io_max_bytes;
    cache_blocks;
    vsbb_buffer_bytes;
    audit_buffer_bytes;
    dp_records_per_request;
    dp_ticks_per_request;
    dp_prefetch;
    fs_fanout;
    dp_lock_wait;
    dp_checkpoint;
    exec_batch;
    disk_queue_depth;
    msg_local_cost_us;
    msg_cpu_cost_us;
    msg_node_cost_us;
    msg_per_byte_us;
    disk_seek_us;
    disk_sequential_us;
    disk_per_block_us;
    cpu_tick_us;
    lock_wait_timeout_us;
    group_commit_timer_us;
    group_commit_adaptive;
    mirrored;
  }

module Trail = Nsql_audit.Trail
module Ar = Nsql_audit.Audit_record

type outcome = { replayed : int; winners : int; losers : int }

let pp_outcome ppf o =
  Format.fprintf ppf "replayed=%d winners=%d losers=%d" o.replayed o.winners
    o.losers

(* In-doubt branches (PREPARE without a local decision) ask the resolver
   whether their coordinator committed; plain [rollforward] has no
   coordinator to ask, so in-doubt branches are losers (presumed abort). *)
let rollforward_with trail ~resolve ~apply =
  let records = Trail.read_durable trail in
  (* pass 1: find winners *)
  let committed = Hashtbl.create 64 in
  let prepared = Hashtbl.create 16 in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun r ->
      Hashtbl.replace seen r.Ar.tx ();
      match r.Ar.body with
      | Ar.Commit_tx ->
          Hashtbl.remove prepared r.Ar.tx;
          Hashtbl.replace committed r.Ar.tx ()
      | Ar.Abort_tx ->
          Hashtbl.remove prepared r.Ar.tx;
          Hashtbl.remove committed r.Ar.tx
      | Ar.Prepare_tx { coordinator_node; coordinator_tx } ->
          Hashtbl.replace prepared r.Ar.tx (coordinator_node, coordinator_tx)
      | Ar.Begin_tx | Ar.Insert _ | Ar.Delete _ | Ar.Update_full _
      | Ar.Update_fields _ ->
          ())
    records;
  (* in-doubt resolution, in ascending-tx order: [resolve] may message the
     coordinator, so iteration order is part of the replayed schedule *)
  List.iter
    (fun (tx, (coordinator_node, coordinator_tx)) ->
      if resolve ~coordinator_node ~coordinator_tx then
        Hashtbl.replace committed tx ())
    (Nsql_util.Tbl.sorted_bindings prepared);
  (* pass 2: replay winners' data operations in LSN order *)
  let replayed = ref 0 in
  List.iter
    (fun r ->
      if Hashtbl.mem committed r.Ar.tx then
        match r.Ar.body with
        | Ar.Begin_tx | Ar.Commit_tx | Ar.Abort_tx | Ar.Prepare_tx _ -> ()
        | Ar.Insert _ | Ar.Delete _ | Ar.Update_full _ | Ar.Update_fields _ ->
            apply r.Ar.body;
            incr replayed)
    records;
  {
    replayed = !replayed;
    winners = Hashtbl.length committed;
    losers = Hashtbl.length seen - Hashtbl.length committed;
  }

let rollforward trail ~apply =
  rollforward_with trail ~resolve:(fun ~coordinator_node:_ ~coordinator_tx:_ -> false) ~apply

(* [coordinator_committed trail ~tx] — did this trail record a COMMIT for
   [tx]? Used as the in-doubt resolver against a coordinator's trail. *)
let coordinator_committed trail ~tx =
  List.exists
    (fun r -> r.Ar.tx = tx && r.Ar.body = Ar.Commit_tx)
    (Trail.read_durable trail)

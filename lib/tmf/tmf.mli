(** TMF — the Transaction Monitoring Facility.

    Coordinates transactions across the Disk Processes of a node: assigns
    transaction identifiers, writes BEGIN/COMMIT/ABORT audit records to the
    shared audit trail, performs group-commit waits, and drives undo on
    abort.

    Resource managers (Disk Processes) register two callbacks:
    - an {e on-finish} hook, called with the transaction id after commit or
      abort — this is where two-phase locking releases its locks;
    - per-operation {e undo actions}, registered as work is done and run in
      reverse order on abort (logical compensation).

    Restart recovery is in {!Recovery}. *)

type t

type tx_state = Active | Prepared | Committed | Aborted

val create : Nsql_sim.Sim.t -> Nsql_audit.Trail.t -> t

val trail : t -> Nsql_audit.Trail.t

(** [register_resource_manager t ~on_finish] adds a participant whose
    [on_finish] runs at every transaction completion. *)
val register_resource_manager : t -> on_finish:(int -> unit) -> unit

(** [begin_tx t] starts a transaction and returns its id. *)
val begin_tx : t -> int

(** [allocate_file_id t] hands out a node-global file identifier, so that
    audit records in the shared trail name files unambiguously across the
    node's Disk Processes. *)
val allocate_file_id : t -> int

(** [state t ~tx] is the transaction's state, if known. *)
val state : t -> tx:int -> tx_state option

(** [is_active t ~tx] is true for in-flight transactions. *)
val is_active : t -> tx:int -> bool

(** [register_undo t ~tx ?owner undo] pushes a compensation action.
    [owner] names the resource manager (volume) whose state the action
    compensates — see {!forget_owner}. *)
val register_undo : t -> tx:int -> ?owner:string -> (unit -> unit) -> unit

(** [forget_owner t ~owner] drops, from every in-flight (active or
    prepared) transaction, the undo actions registered by [owner]. Called
    when that volume crashes: its volatile state is gone, and restart
    recovery will treat the unfinished transactions as losers there, so
    running their compensations would double-undo. The transactions can
    then still abort cleanly on the surviving volumes. *)
val forget_owner : t -> owner:string -> unit

(** [prepare t ~tx ~coordinator_node ~coordinator_tx] makes the
    transaction a ready branch of a network transaction: its PREPARE
    record is forced to the trail and its locks are retained until the
    coordinator's decision arrives. No further work is accepted. *)
val prepare :
  t -> tx:int -> coordinator_node:int -> coordinator_tx:int ->
  (unit, Nsql_util.Errors.t) result

(** [commit t ~tx] writes the COMMIT record, waits for group commit
    durability, then releases the participants. Also commits a prepared
    branch when the coordinator's decision arrives. *)
val commit : t -> tx:int -> (unit, Nsql_util.Errors.t) result

(** [abort t ~tx] runs the undo actions in reverse, writes the ABORT
    record, and releases the participants. *)
val abort : t -> tx:int -> (unit, Nsql_util.Errors.t) result

(** [active_count t] is the number of in-flight transactions. *)
val active_count : t -> int

(** [run t f] wraps [f] in a transaction: commits on [Ok], aborts on
    [Error] (returning the original error). *)
val run :
  t -> (int -> ('a, Nsql_util.Errors.t) result) -> ('a, Nsql_util.Errors.t) result

module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Trail = Nsql_audit.Trail
module Ar = Nsql_audit.Audit_record
module Errors = Nsql_util.Errors

type tx_state = Active | Prepared | Committed | Aborted

(* Undo actions are tagged with the resource manager (volume) that
   registered them: when that volume crashes, its actions become
   meaningless (the volume's state is rebuilt from the audit trail, where
   an unfinished transaction is a loser) and must be forgotten so the
   transaction can still abort cleanly on the surviving volumes. *)
type undo_entry = { u_owner : string option; u_act : unit -> unit }

type tx_entry = { mutable tx_state : tx_state; mutable undo : undo_entry list }

type t = {
  sim : Sim.t;
  trail : Trail.t;
  mutable next_tx : int;
  mutable next_file_id : int;
  table : (int, tx_entry) Hashtbl.t;
  mutable on_finish : (int -> unit) list;
}

let create sim trail =
  {
    sim;
    trail;
    next_tx = 1;
    next_file_id = 0;
    table = Hashtbl.create 64;
    on_finish = [];
  }

let allocate_file_id t =
  let id = t.next_file_id in
  t.next_file_id <- id + 1;
  id

let trail t = t.trail

let register_resource_manager t ~on_finish =
  t.on_finish <- on_finish :: t.on_finish

let begin_tx t =
  let tx = t.next_tx in
  t.next_tx <- tx + 1;
  Hashtbl.replace t.table tx { tx_state = Active; undo = [] };
  ignore (Trail.append t.trail ~tx Ar.Begin_tx);
  let s = Sim.stats t.sim in
  s.Stats.tx_begun <- s.Stats.tx_begun + 1;
  Sim.tick t.sim 20;
  tx

let state t ~tx =
  match Hashtbl.find_opt t.table tx with
  | Some e -> Some e.tx_state
  | None -> None

let is_active t ~tx =
  match state t ~tx with Some Active -> true | Some _ | None -> false

let register_undo t ~tx ?owner undo =
  match Hashtbl.find_opt t.table tx with
  | Some e when e.tx_state = Active ->
      e.undo <- { u_owner = owner; u_act = undo } :: e.undo
  | Some _ | None -> invalid_arg "Tmf.register_undo: transaction not active"

let forget_owner t ~owner =
  List.iter
    (fun (_, e) ->
      match e.tx_state with
      | Active | Prepared ->
          e.undo <-
            List.filter (fun u -> u.u_owner <> Some owner) e.undo
      | Committed | Aborted -> ())
    (Nsql_util.Tbl.sorted_bindings t.table)

let finish t tx = List.iter (fun f -> f tx) t.on_finish

let prepare t ~tx ~coordinator_node ~coordinator_tx =
  match Hashtbl.find_opt t.table tx with
  | Some ({ tx_state = Active; _ } as e) ->
      let lsn =
        Trail.append t.trail ~tx (Ar.Prepare_tx { coordinator_node; coordinator_tx })
      in
      (* a branch must be durable-ready before it answers the coordinator *)
      Trail.force t.trail lsn;
      e.tx_state <- Prepared;
      Sim.tick t.sim 20;
      Ok ()
  | Some _ | None -> Errors.fail Errors.No_transaction

let commit t ~tx =
  match Hashtbl.find_opt t.table tx with
  | None | Some { tx_state = Committed | Aborted; _ } ->
      Errors.fail Errors.No_transaction
  | Some e ->
      (* a read-only transaction logged no work: no COMMIT record and no
         group-commit wait are needed (two-phase locks still release) *)
      if e.undo <> [] || e.tx_state = Prepared then begin
        let lsn = Trail.append t.trail ~tx Ar.Commit_tx in
        Trail.request_commit t.trail ~tx lsn;
        Trail.await_durable t.trail lsn
      end;
      e.tx_state <- Committed;
      e.undo <- [];
      let s = Sim.stats t.sim in
      s.Stats.tx_committed <- s.Stats.tx_committed + 1;
      finish t tx;
      Sim.tick t.sim 20;
      Ok ()

let abort t ~tx =
  match Hashtbl.find_opt t.table tx with
  | None | Some { tx_state = Committed | Aborted; _ } ->
      Errors.fail Errors.No_transaction
  | Some e ->
      (* undo in reverse registration order; actions were pushed, so the
         list is already newest-first *)
      List.iter (fun u -> u.u_act ()) e.undo;
      e.undo <- [];
      ignore (Trail.append t.trail ~tx Ar.Abort_tx);
      e.tx_state <- Aborted;
      let s = Sim.stats t.sim in
      s.Stats.tx_aborted <- s.Stats.tx_aborted + 1;
      finish t tx;
      Sim.tick t.sim 20;
      Ok ()

let active_count t =
  List.length
    (List.filter
       (fun (_, e) -> e.tx_state = Active)
       (Nsql_util.Tbl.sorted_bindings t.table))

let run t f =
  let tx = begin_tx t in
  match f tx with
  | Ok result -> (
      match commit t ~tx with Ok () -> Ok result | Error _ as e -> e)
  | Error err ->
      (match abort t ~tx with
      | Ok () -> ()
      | Error e2 ->
          Errors.fatal ("Tmf.run: abort failed: " ^ Errors.to_string e2));
      Error err

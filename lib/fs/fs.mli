(** The File System: the requester-side library.

    These routines run in the application (or SQL Executor) process and
    turn logical file operations into FS-DP messages. As in the paper, the
    File System is the natural locale for the logic that — transparently
    to the caller —

    - routes an operation to the right {e partition} based on the record
      key (files may be horizontally partitioned over many Disk Processes
      on different processors or nodes);
    - accesses a base record {e via a secondary index} (first a message to
      the index's Disk Process, then a message to the base file's Disk
      Process — Figure 2 of the paper);
    - {e maintains secondary indices} consistently when records are
      inserted, updated or deleted;
    - performs {e sequential block buffering}: de-blocks locally from the
      real (RSBB) or virtual (VSBB) block returned by a set-oriented
      request, sending a continuation re-drive only when the local buffer
      drains;
    - accumulates sequential inserts into a local buffer and ships them
      with one blocked-insert message (the paper's future enhancement).

    Every operation here costs messages; nothing touches the disk or the
    lock table directly. *)

module Row = Nsql_row.Row
module Expr = Nsql_expr.Expr
module Msg = Nsql_msg.Msg
module Dp_msg = Nsql_dp.Dp_msg

type t

(** A partition: the key subrange [>= lo] hosted by one Disk Process. *)
type partition_spec = {
  ps_lo : string;  (** inclusive encoded lower bound; "" for the first *)
  ps_dp : Nsql_dp.Dp.t;
}

(** A secondary index over a SQL file. *)
type index_spec = {
  is_name : string;
  is_cols : int list;  (** base-file field numbers, index key prefix *)
  is_dp : Nsql_dp.Dp.t;  (** volume hosting the (unpartitioned) index *)
}

type file

(** [create sim msys ~my_processor] builds a File System instance for a
    requester running on [my_processor]. *)
val create : Nsql_sim.Sim.t -> Msg.system -> my_processor:Msg.processor -> t

(** [create_file t ~fname ~schema ?check ~partitions ~indexes ()] creates a
    SQL key-sequenced file on the given partitions, plus one key-sequenced
    file per secondary index, and returns the catalog handle. *)
val create_file :
  t ->
  fname:string ->
  schema:Row.schema ->
  ?check:Expr.t ->
  partitions:partition_spec list ->
  indexes:index_spec list ->
  unit ->
  (file, Nsql_util.Errors.t) result

(** [create_enscribe_file t ~fname ~kind ~partitions] creates a schema-less
    ENSCRIBE file (key-sequenced, relative or entry-sequenced). *)
val create_enscribe_file :
  t ->
  fname:string ->
  kind:Dp_msg.file_kind_spec ->
  partitions:partition_spec list ->
  (file, Nsql_util.Errors.t) result

val file_name : file -> string
val file_schema : file -> Row.schema option
val file_kind : file -> Dp_msg.file_kind_spec
val partition_count : file -> int
val index_names : file -> string list

(** [record_count t file] sums the partitions' live record counts: one
    RECORD^COUNT message per partition, overlapped (nowait) when
    {!Nsql_sim.Config.t.fs_fanout} is on. *)
val record_count : t -> file -> int

(** {1 Record-at-a-time operations (ENSCRIBE-style)} *)

(** [read t file ~tx ~key ~lock] reads one record by primary key. *)
val read :
  t -> file -> tx:int -> key:string -> lock:Dp_msg.lock_mode ->
  (string, Nsql_util.Errors.t) result

(** [read_row_via_index t file ~tx ~index ~index_key] implements Figure 2's
    first half: index lookup then base-file read; returns the base row. *)
val read_row_via_index :
  t -> file -> tx:int -> index:string -> index_key:Row.value list ->
  (Row.row option, Nsql_util.Errors.t) result

(** [insert t file ~tx ~key ~record] writes one (byte) record. *)
val insert :
  t -> file -> tx:int -> key:string -> record:string ->
  (unit, Nsql_util.Errors.t) result

(** [update t file ~tx ~key ~record] rewrites one (byte) record. *)
val update :
  t -> file -> tx:int -> key:string -> record:string ->
  (unit, Nsql_util.Errors.t) result

(** [append_entry t file ~tx ~record] appends to an entry-sequenced file
    and returns the record address. *)
val append_entry :
  t -> file -> tx:int -> record:string -> (int, Nsql_util.Errors.t) result

(** [delete t file ~tx ~key] removes one (byte) record (no index upkeep —
    ENSCRIBE byte files have no indices here). *)
val delete :
  t -> file -> tx:int -> key:string -> (unit, Nsql_util.Errors.t) result

(** [lock_file t file ~tx ~lock] locks every partition of the file; the
    per-partition round trips are overlapped under fan-out. *)
val lock_file :
  t -> file -> tx:int -> lock:Dp_msg.lock_mode ->
  (unit, Nsql_util.Errors.t) result

(** [lock_generic t file ~tx ~prefix ~lock] takes a generic (key-prefix)
    lock on the partition owning the prefix — ENSCRIBE's LOCKGENERIC. *)
val lock_generic :
  t -> file -> tx:int -> prefix:string -> lock:Dp_msg.lock_mode ->
  (unit, Nsql_util.Errors.t) result

(** [rel_read t file ~tx ~slot] reads one slot of a relative file. *)
val rel_read :
  t -> file -> tx:int -> slot:int -> (string, Nsql_util.Errors.t) result

(** [rel_write t file ~tx ~slot ~record] writes an empty slot and returns
    the slot number (ENSCRIBE REL^WRITE). *)
val rel_write :
  t -> file -> tx:int -> slot:int -> record:string ->
  (int, Nsql_util.Errors.t) result

(** [rel_rewrite t file ~tx ~slot ~record] overwrites an occupied slot. *)
val rel_rewrite :
  t -> file -> tx:int -> slot:int -> record:string ->
  (unit, Nsql_util.Errors.t) result

(** [rel_delete t file ~tx ~slot] empties a slot. *)
val rel_delete :
  t -> file -> tx:int -> slot:int -> (unit, Nsql_util.Errors.t) result

(** [entry_read t file ~tx ~addr] reads the entry at [addr] of an
    entry-sequenced file (addresses come from {!append_entry}). *)
val entry_read :
  t -> file -> tx:int -> addr:int -> (string, Nsql_util.Errors.t) result

(** {1 SQL row operations (with index maintenance)} *)

(** [insert_row t file ~tx row] validates DP-side, inserts into the right
    base partition, and maintains every secondary index (one message per
    index). *)
val insert_row :
  t -> file -> tx:int -> Row.row -> (unit, Nsql_util.Errors.t) result

(** [update_row_via_key t file ~tx ~key assignments] reads, recomputes,
    rewrites, and maintains indices — the requester-side path used when
    updated columns are indexed (set-oriented delegation is not legal
    then). *)
val update_row_via_key :
  t -> file -> tx:int -> key:string -> Expr.assignment list ->
  (unit, Nsql_util.Errors.t) result

(** [delete_row_via_key t file ~tx ~key] deletes a row and its index
    entries. *)
val delete_row_via_key :
  t -> file -> tx:int -> key:string -> (unit, Nsql_util.Errors.t) result

(** [read_next_raw t file ~tx ~from_key ~inclusive ~lock ~sbb] is the
    ENSCRIBE sequential-read primitive: returns the next record ([sbb] =
    false, one message per record) or the rest of the current physical
    block ([sbb] = true, ENSCRIBE's real sequential block buffering), in
    key order, transparently moving to the next partition when one is
    exhausted. The empty list means end-of-file. *)
val read_next_raw :
  t -> file -> tx:int -> from_key:string -> inclusive:bool ->
  lock:Dp_msg.lock_mode -> sbb:bool ->
  ((string * string) list, Nsql_util.Errors.t) result

(** {1 Set-oriented operations}

    These delegate selection / projection / update expressions to the Disk
    Processes and drive the continuation re-drive protocol. *)

(** How a scan moves data from the Disk Process to the requester. *)
type access =
  | A_record  (** record-at-a-time: one message per record (old way) *)
  | A_rsbb  (** real sequential block buffering: one block per message *)
  | A_vsbb  (** virtual blocks: selection + projection at the source *)

type scan

(** [open_scan t file ~tx ~access ~range ?pred ?proj ?ordered ~lock ()]
    starts a scan of the primary-key [range]. Under [A_vsbb] the predicate
    and projection execute in the Disk Process; under [A_rsbb] whole
    blocks are shipped and filtering happens here; under [A_record] each
    record costs one message (and per-record locks).

    When the range spans several partitions and
    {!Nsql_sim.Config.t.fs_fanout} is on, the block-buffered scans drive
    every partition with overlapped (nowait) requests, one outstanding
    re-drive per partition: per-partition message sequences — and thus
    message and byte counts — are identical to the blocking driver, but
    the elapsed time of requests in flight together is the max of their
    latencies, not the sum. [ordered] (default [true]) merges partitions
    in key order (partition ranges are disjoint and ascending, so this
    buffers not-yet-current partitions locally); [ordered:false] yields
    rows in completion order — earliest simulated completion first, ties
    to the lowest partition — which is still deterministic. *)
val open_scan :
  t ->
  file ->
  tx:int ->
  access:access ->
  range:Expr.key_range ->
  ?pred:Expr.t ->
  ?proj:int array ->
  ?ordered:bool ->
  lock:Dp_msg.lock_mode ->
  unit ->
  scan

(** [scan_next t scan] yields the next row (projected if requested),
    de-blocking locally and re-driving the Disk Process when the local
    buffer drains. [Ok None] is end-of-scan. *)
val scan_next : t -> scan -> (Row.row option, Nsql_util.Errors.t) result

(** [scan_next_batch t scan] surfaces everything the scan has buffered —
    at least one FS-DP reply buffer, re-driving the Disk Process if the
    buffer is empty — as one row array; [Ok None] is end-of-scan. The
    batch is exactly the rows an uninterrupted run of {!scan_next} pops
    would return, and by default carries the same aggregate per-row pop
    charge, so message traffic, counters and the simulated clock are
    byte-identical to pulling row-at-a-time.

    [~tick:false] defers the pop charge: the rows come back uncharged and
    the consumer owes [Sim.tick 3] per row {e before} any per-row message
    it sends — the contract that keeps send times exact for drivers that
    interleave messages with consumption (index base reads, per-record
    read-modify-write fallbacks). *)
val scan_next_batch :
  ?tick:bool -> t -> scan -> (Row.row array option, Nsql_util.Errors.t) result

(** [scan_next_entry t scan] yields raw (key, record) pairs — for
    schema-less files and RSBB baselines. *)
val scan_next_entry :
  t -> scan -> ((string * string) option, Nsql_util.Errors.t) result

val close_scan : t -> scan -> unit

(** [update_subset t file ~tx ~range ?pred assignments] delegates a
    set-oriented update (selection + update expression evaluated at the
    data source); re-drives until the subset is exhausted. Falls back to
    the requester-side per-record path when an updated column is indexed.
    Returns the number of records updated. *)
val update_subset :
  t -> file -> tx:int -> range:Expr.key_range -> ?pred:Expr.t ->
  Expr.assignment list -> (int, Nsql_util.Errors.t) result

(** [delete_subset t file ~tx ~range ?pred ()] — set-oriented delete;
    requester-side fallback when the file has indices. *)
val delete_subset :
  t -> file -> tx:int -> range:Expr.key_range -> ?pred:Expr.t -> unit ->
  (int, Nsql_util.Errors.t) result

(** {1 Aggregate pushdown}

    [aggregate t file ~tx ~range ?pred ~group_keys ~aggs ~lock ()]
    evaluates grouped aggregates at the data source: one
    AGGREGATE^FIRST / AGGREGATE^NEXT re-drive chain per partition
    (overlapped under fan-out), each final reply carrying one accumulator
    per (group, aggregate) instead of the qualifying rows. Partition
    results are combined here with {!Dp_msg.merge_acc} — groups whose rows
    straddle a partition boundary merge exactly. [group_keys] must be a
    prefix of the file's primary-key columns (the planner's legality
    rule), which makes first-seen order equal key order, so the group
    order is identical to a client-side scan's. *)
val aggregate :
  t -> file -> tx:int -> range:Expr.key_range -> ?pred:Expr.t ->
  group_keys:int array -> aggs:Dp_msg.agg_spec list -> lock:Dp_msg.lock_mode ->
  unit ->
  ((Row.row * Dp_msg.agg_acc list) list, Nsql_util.Errors.t) result

(** {1 Blocked sequential insert (extension, experiment E11)} *)

type insert_buffer

(** [open_insert_buffer t file ~tx ~capacity] starts client-side insert
    blocking: rows accumulate locally and ship [capacity] at a time. *)
val open_insert_buffer : t -> file -> tx:int -> capacity:int -> insert_buffer

val buffered_insert :
  t -> insert_buffer -> Row.row -> (unit, Nsql_util.Errors.t) result

(** [flush_insert_buffer t b] ships any remaining rows. *)
val flush_insert_buffer : t -> insert_buffer -> (unit, Nsql_util.Errors.t) result

(** [add_index t file ~tx spec] creates a new secondary index on an
    existing SQL file and backfills it by scanning the base file (VSBB) and
    inserting the index entries (blocked). Returns the updated catalog
    handle — callers must replace their old handle. *)
val add_index :
  t -> file -> tx:int -> index_spec -> (file, Nsql_util.Errors.t) result

(** {1 Buffered update/delete where current (extension, experiment E14)}

    The paper's second future enhancement: a cursor owner accumulates
    updates and deletes of the records it has visited in a local buffer;
    the File System ships a full buffer to the Disk Process in one
    APPLY^BLOCK message instead of one message per record. Not available
    on indexed files (index maintenance needs the old row at the
    requester) — {!buffered_update}/{!buffered_delete} fall back to the
    per-record path there. *)

type apply_buffer

val open_apply_buffer : t -> file -> tx:int -> capacity:int -> apply_buffer

val buffered_update :
  t -> apply_buffer -> key:string -> Expr.assignment list ->
  (unit, Nsql_util.Errors.t) result

val buffered_delete :
  t -> apply_buffer -> key:string -> (unit, Nsql_util.Errors.t) result

(** [flush_apply_buffer t b] ships any remaining buffered operations. *)
val flush_apply_buffer : t -> apply_buffer -> (unit, Nsql_util.Errors.t) result

(** {1 Scans via secondary index} *)

(** [index_scan t file ~tx ~index ~range ?pred ~proj ()] scans the index
    file with VSBB, then fetches each qualifying base row with a point
    read (one message per base row — the cost structure of Figure 2).
    [range] and [pred] are in terms of the {e index} file's fields;
    [proj] is in terms of the base file. Returns [(next, close)]: [next]
    streams base rows; the caller must run [close] on every exit (it is
    idempotent, and the stream closes itself when drained to the end), or
    an abandoned scan leaks its SCB and leaves its trace span open. *)
val index_scan :
  t -> file -> tx:int -> index:string -> range:Expr.key_range ->
  ?pred:Expr.t -> ?proj:int array -> lock:Dp_msg.lock_mode -> unit ->
  ((unit -> (Row.row option, Nsql_util.Errors.t) result) * (unit -> unit),
   Nsql_util.Errors.t) result

(** [index_scan_batch] is {!index_scan} with a batched stream: each
    [next_batch] call resolves one buffered batch of index entries to base
    rows (still one point read per row — the per-row messages and their
    send times are byte-identical to the row-at-a-time stream). Same
    close-on-every-exit contract as {!index_scan}. *)
val index_scan_batch :
  t -> file -> tx:int -> index:string -> range:Expr.key_range ->
  ?pred:Expr.t -> ?proj:int array -> lock:Dp_msg.lock_mode -> unit ->
  ((unit -> (Row.row array option, Nsql_util.Errors.t) result) * (unit -> unit),
   Nsql_util.Errors.t) result

(** [index_schema file ~index] is the schema of the index file (index
    columns then base key columns), for planners that push predicates to
    the index. *)
val index_schema : file -> index:string -> (Row.schema, Nsql_util.Errors.t) result

module Sim = Nsql_sim.Sim
module Config = Nsql_sim.Config
module Msg = Nsql_msg.Msg
module Row = Nsql_row.Row
module Expr = Nsql_expr.Expr
module Dp = Nsql_dp.Dp
module Dp_msg = Nsql_dp.Dp_msg
module Keycode = Nsql_util.Keycode
module Errors = Nsql_util.Errors
module Tbl = Nsql_util.Tbl
module Trace = Nsql_trace.Trace
module Stats = Nsql_sim.Stats

open Errors

type t = { sim : Sim.t; msys : Msg.system; my_processor : Msg.processor }

type partition_spec = { ps_lo : string; ps_dp : Dp.t }

type index_spec = { is_name : string; is_cols : int list; is_dp : Dp.t }

type partition = { p_lo : string; p_dp : Dp.t; p_file : int }

type index_ = {
  ix_name : string;
  ix_cols : int array;  (** base field numbers, in index-key order *)
  ix_all_cols : int array;  (** index cols then base key cols (deduped) *)
  ix_basekey_pos : int array;  (** where each base key col sits in ix rows *)
  ix_schema : Row.schema;
  ix_dp : Dp.t;
  ix_file : int;
}

type file = {
  fname : string;
  schema : Row.schema option;
  kind : Dp_msg.file_kind_spec;
  parts : partition array;  (** sorted by [p_lo] ascending; parts.(0).p_lo = "" *)
  indexes : index_ list;
}

let create sim msys ~my_processor = { sim; msys; my_processor }

let file_name f = f.fname
let file_schema f = f.schema
let file_kind f = f.kind
let partition_count f = Array.length f.parts
let index_names f = List.map (fun ix -> ix.ix_name) f.indexes

(* nowait fan-out across partitions, unless configured off for A/B runs *)
let fanout t = (Sim.config t.sim).Config.fs_fanout

(* --- messaging --------------------------------------------------------- *)

let decode_or_internal reply_payload =
  match Dp_msg.decode_reply reply_payload with
  | Ok reply -> reply
  | Error e ->
      Dp_msg.Rp_error
        (Errors.Internal
           ("malformed reply: " ^ Dp_msg.decode_error_to_string e))

let send t dp req =
  let payload = Dp_msg.encode_request req in
  let t0 = Sim.now t.sim in
  let reply =
    decode_or_internal
      (Msg.send t.msys ~from:t.my_processor ~tag:(Dp_msg.tag req)
         (Dp.endpoint dp) payload)
  in
  (* caller-perceived request/reply round trip, hops included *)
  Nsql_sim.Moncore.observe (Sim.moncore t.sim) "fs_req" (Sim.now t.sim -. t0);
  reply

(* overlapped request: issue now, collect the reply (and the latency) at
   the await. Every completion returned here must be awaited. *)
let send_nowait t dp req =
  Msg.send_nowait t.msys ~from:t.my_processor ~tag:(Dp_msg.tag req)
    (Dp.endpoint dp) (Dp_msg.encode_request req)

let await_reply t c = decode_or_internal (Msg.await t.msys c)

let record_count t f =
  (* one RECORD^COUNT message per partition; overlapped when fan-out is on *)
  let count_of = function Dp_msg.Rp_slot n -> n | _ -> 0 in
  if fanout t then begin
    let cs =
      Array.map
        (fun p -> send_nowait t p.p_dp (Dp_msg.R_record_count { file = p.p_file }))
        f.parts
    in
    Array.fold_left (fun acc c -> acc + count_of (await_reply t c)) 0 cs
  end
  else
    Array.fold_left
      (fun acc p ->
        acc + count_of (send t p.p_dp (Dp_msg.R_record_count { file = p.p_file })))
      0 f.parts

let blocked_error blockers =
  Errors.Lock_timeout
    (Printf.sprintf "blocked by transactions [%s]"
       (String.concat "; " (List.map string_of_int blockers)))

(* Every reply path surfaces protocol errors and lock denials the same
   way, so the shared arms live in this one classifier. [k] matches only
   the success shapes of the operation (returning [None] for anything
   else) and [ctx] names the operation for the unexpected-reply
   diagnostic. *)
let classify ~ctx reply k =
  match reply with
  | Dp_msg.Rp_error e -> Error e
  | Dp_msg.Rp_blocked { blockers; _ } -> Error (blocked_error blockers)
  | reply -> (
      match k reply with
      | Some r -> r
      | None -> Error (Errors.Internal ("unexpected reply to " ^ ctx)))

let expect_ok reply =
  classify ~ctx:"request" reply (function
    | Dp_msg.Rp_ok -> Some (Ok ())
    | _ -> None)

(* blocked (batched) requests acknowledge with either OK or a progress
   report; both mean the whole batch was applied *)
let expect_applied ~ctx reply =
  classify ~ctx reply (function
    | Dp_msg.Rp_progress _ | Dp_msg.Rp_ok -> Some (Ok ())
    | _ -> None)

let expect_file = function
  | Dp_msg.Rp_file id -> Ok id
  | Dp_msg.Rp_error e -> Error e
  | _ -> Error (Errors.Internal "unexpected reply to CREATE^FILE")

let expect_record reply =
  classify ~ctx:"READ" reply (function
    | Dp_msg.Rp_record { key; record } -> Some (Ok (key, record))
    | _ -> None)

(* --- partition routing --------------------------------------------------- *)

(* the partition whose [lo, next-lo) interval contains [key] *)
let route f key =
  let n = Array.length f.parts in
  let rec go i = if i + 1 < n && Keycode.compare_keys f.parts.(i + 1).p_lo key <= 0 then go (i + 1) else i in
  f.parts.(go 0)

(* clip [range] to each partition; returns the non-empty pieces in order *)
let partition_ranges f (range : Expr.key_range) =
  let n = Array.length f.parts in
  let pieces = ref [] in
  for i = n - 1 downto 0 do
    let p = f.parts.(i) in
    let p_hi = if i + 1 < n then f.parts.(i + 1).p_lo else Keycode.high_value in
    let lo = if Keycode.compare_keys range.Expr.lo p.p_lo > 0 then range.Expr.lo else p.p_lo in
    let hi = if Keycode.compare_keys range.Expr.hi p_hi < 0 then range.Expr.hi else p_hi in
    if Keycode.compare_keys lo hi < 0 then
      pieces := (p, Expr.{ lo; hi }) :: !pieces
  done;
  !pieces

(* --- file creation --------------------------------------------------------- *)

let validate_partitions partitions =
  match partitions with
  | [] -> fail (Errors.Invalid_argument_error "no partitions")
  | first :: _ ->
      if not (String.equal first.ps_lo "") then
        fail
          (Errors.Invalid_argument_error
             "first partition must start at LOW-VALUE")
      else begin
        let rec sorted = function
          | a :: (b :: _ as rest) ->
              Keycode.compare_keys a.ps_lo b.ps_lo < 0 && sorted rest
          | _ -> true
        in
        if sorted partitions then Ok ()
        else fail (Errors.Invalid_argument_error "partition keys not ascending")
      end

let build_index_meta (schema : Row.schema) spec =
  let key_cols = Array.to_list schema.Row.key_cols in
  let ix_cols = Array.of_list spec.is_cols in
  let extra = List.filter (fun k -> not (List.mem k spec.is_cols)) key_cols in
  let all = Array.of_list (spec.is_cols @ extra) in
  let cols = Array.map (fun i -> schema.Row.cols.(i)) all in
  let names = Array.map (fun c -> c.Row.col_name) cols in
  let ix_schema = Row.schema cols ~key:(Array.to_list names) in
  let pos_of base_col =
    let rec go i =
      if i >= Array.length all then invalid_arg "Fs: index misses base key col"
      else if all.(i) = base_col then i
      else go (i + 1)
    in
    go 0
  in
  let ix_basekey_pos = Array.of_list (List.map pos_of key_cols) in
  (ix_cols, all, ix_basekey_pos, ix_schema)

let create_file t ~fname ~schema ?check ~partitions ~indexes () =
  let* () = validate_partitions partitions in
  let* parts =
    Errors.list_map
      (fun (i, ps) ->
        let pname = Printf.sprintf "%s#p%d" fname i in
        let reply =
          send t ps.ps_dp
            (Dp_msg.R_create_file
               { fname = pname; kind = Dp_msg.K_key_sequenced; schema = Some schema; check })
        in
        let* id = expect_file reply in
        Ok { p_lo = ps.ps_lo; p_dp = ps.ps_dp; p_file = id })
      (List.mapi (fun i ps -> (i, ps)) partitions)
  in
  let* index_metas =
    Errors.list_map
      (fun spec ->
        let ix_cols, ix_all_cols, ix_basekey_pos, ix_schema =
          build_index_meta schema spec
        in
        let iname = Printf.sprintf "%s#ix_%s" fname spec.is_name in
        let reply =
          send t spec.is_dp
            (Dp_msg.R_create_file
               { fname = iname; kind = Dp_msg.K_key_sequenced; schema = Some ix_schema; check = None })
        in
        let* id = expect_file reply in
        Ok
          {
            ix_name = spec.is_name;
            ix_cols;
            ix_all_cols;
            ix_basekey_pos;
            ix_schema;
            ix_dp = spec.is_dp;
            ix_file = id;
          })
      indexes
  in
  Ok
    {
      fname;
      schema = Some schema;
      kind = Dp_msg.K_key_sequenced;
      parts = Array.of_list parts;
      indexes = index_metas;
    }

let create_enscribe_file t ~fname ~kind ~partitions =
  let* () = validate_partitions partitions in
  let* parts =
    Errors.list_map
      (fun (i, ps) ->
        let pname = Printf.sprintf "%s#p%d" fname i in
        let reply =
          send t ps.ps_dp
            (Dp_msg.R_create_file { fname = pname; kind; schema = None; check = None })
        in
        let* id = expect_file reply in
        Ok { p_lo = ps.ps_lo; p_dp = ps.ps_dp; p_file = id })
      (List.mapi (fun i ps -> (i, ps)) partitions)
  in
  Ok { fname; schema = None; kind; parts = Array.of_list parts; indexes = [] }

(* --- index helpers ------------------------------------------------------------ *)

let index_row ix row = Row.project row ix.ix_all_cols

let index_key ix row = Row.key_of_row ix.ix_schema (index_row ix row)

let base_key_of_index_row f ix irow =
  match f.schema with
  | None -> invalid_arg "Fs: index on schema-less file"
  | Some schema ->
      let values =
        Array.to_list (Array.map (fun p -> irow.(p)) ix.ix_basekey_pos)
      in
      Row.key_of_values schema values

let index_schema f ~index =
  match List.find_opt (fun ix -> String.equal ix.ix_name index) f.indexes with
  | Some ix -> Ok ix.ix_schema
  | None -> fail (Errors.Name_error ("unknown index " ^ index))

(* --- record-at-a-time operations ------------------------------------------------ *)

let read t f ~tx ~key ~lock =
  let p = route f key in
  let* _k, record = expect_record (send t p.p_dp (Dp_msg.R_read { file = p.p_file; tx; key; lock })) in
  Ok record

let insert t f ~tx ~key ~record =
  let p = route f key in
  expect_ok (send t p.p_dp (Dp_msg.R_insert { file = p.p_file; tx; key; record }))

let update t f ~tx ~key ~record =
  let p = route f key in
  expect_ok (send t p.p_dp (Dp_msg.R_update { file = p.p_file; tx; key; record }))

let append_entry t f ~tx ~record =
  (* entry-sequenced files are unpartitioned: all appends go to EOF *)
  let p = f.parts.(0) in
  classify ~ctx:"ENTRY^APPEND"
    (send t p.p_dp (Dp_msg.R_entry_append { file = p.p_file; tx; record }))
    (function Dp_msg.Rp_slot addr -> Some (Ok addr) | _ -> None)

let delete t f ~tx ~key =
  let p = route f key in
  expect_ok (send t p.p_dp (Dp_msg.R_delete { file = p.p_file; tx; key }))

let lock_file t f ~tx ~lock =
  if fanout t && Array.length f.parts > 1 then begin
    (* overlap the per-partition LOCKFILE round trips; every completion is
       awaited (first failing partition wins, in partition order) *)
    let cs =
      Array.map
        (fun p -> send_nowait t p.p_dp (Dp_msg.R_lock_file { file = p.p_file; tx; lock }))
        f.parts
    in
    Array.fold_left
      (fun acc c ->
        let reply = await_reply t c in
        match acc with Error _ -> acc | Ok () -> expect_ok reply)
      (Ok ()) cs
  end
  else
    let rec go i =
      if i >= Array.length f.parts then Ok ()
      else
        let p = f.parts.(i) in
        let* () =
          expect_ok (send t p.p_dp (Dp_msg.R_lock_file { file = p.p_file; tx; lock }))
        in
        go (i + 1)
    in
    go 0

let lock_generic t f ~tx ~prefix ~lock =
  let p = route f prefix in
  expect_ok
    (send t p.p_dp (Dp_msg.R_lock_generic { file = p.p_file; tx; prefix; lock }))

(* relative and entry-sequenced files are unpartitioned: every request goes
   through the first (only) partition, like [append_entry] *)

let rel_read t f ~tx ~slot =
  let p = f.parts.(0) in
  let* _k, record =
    expect_record (send t p.p_dp (Dp_msg.R_rel_read { file = p.p_file; tx; slot }))
  in
  Ok record

let rel_write t f ~tx ~slot ~record =
  let p = f.parts.(0) in
  classify ~ctx:"REL^WRITE"
    (send t p.p_dp (Dp_msg.R_rel_write { file = p.p_file; tx; slot; record }))
    (function Dp_msg.Rp_slot s -> Some (Ok s) | _ -> None)

let rel_rewrite t f ~tx ~slot ~record =
  let p = f.parts.(0) in
  expect_ok
    (send t p.p_dp (Dp_msg.R_rel_rewrite { file = p.p_file; tx; slot; record }))

let rel_delete t f ~tx ~slot =
  let p = f.parts.(0) in
  expect_ok (send t p.p_dp (Dp_msg.R_rel_delete { file = p.p_file; tx; slot }))

let entry_read t f ~tx ~addr =
  let p = f.parts.(0) in
  let* _k, record =
    expect_record (send t p.p_dp (Dp_msg.R_entry_read { file = p.p_file; tx; addr }))
  in
  Ok record

(* --- SQL row operations ----------------------------------------------------------- *)

let require_schema f =
  match f.schema with
  | Some s -> Ok s
  | None -> fail (Errors.Bad_request (f.fname ^ " is not a SQL file"))

let insert_row t f ~tx row =
  let* schema = require_schema f in
  let* () = Row.validate schema row in
  let key = Row.key_of_row schema row in
  let p = route f key in
  let* () =
    expect_ok (send t p.p_dp (Dp_msg.R_insert_row { file = p.p_file; tx; row }))
  in
  (* secondary-index maintenance: one message per index *)
  Errors.list_iter
    (fun ix ->
      expect_ok
        (send t ix.ix_dp
           (Dp_msg.R_insert_row { file = ix.ix_file; tx; row = index_row ix row })))
    f.indexes

let delete_index_entries t f ~tx old_row =
  Errors.list_iter
    (fun ix ->
      let key = index_key ix old_row in
      ignore f;
      expect_ok (send t ix.ix_dp (Dp_msg.R_delete { file = ix.ix_file; tx; key })))
    f.indexes

let update_row_via_key t f ~tx ~key assignments =
  let* schema = require_schema f in
  let p = route f key in
  (* requester-side read-modify-write: costs an extra message vs. the
     delegated update-expression path (the paper's point) *)
  let* _k, record =
    expect_record
      (send t p.p_dp (Dp_msg.R_read { file = p.p_file; tx; key; lock = Dp_msg.L_exclusive }))
  in
  let old_row = Row.decode_exn schema record in
  let new_row = Expr.apply_assignments old_row assignments in
  let* () = Row.validate schema new_row in
  let new_record = Row.encode schema new_row in
  let* () =
    expect_ok
      (send t p.p_dp (Dp_msg.R_update { file = p.p_file; tx; key; record = new_record }))
  in
  (* index maintenance for the indices whose entries changed *)
  Errors.list_iter
    (fun ix ->
      let old_ir = index_row ix old_row and new_ir = index_row ix new_row in
      if Row.equal_row old_ir new_ir then Ok ()
      else
        let* () =
          expect_ok
            (send t ix.ix_dp
               (Dp_msg.R_delete { file = ix.ix_file; tx; key = index_key ix old_row }))
        in
        expect_ok
          (send t ix.ix_dp (Dp_msg.R_insert_row { file = ix.ix_file; tx; row = new_ir })))
    f.indexes

let delete_row_via_key t f ~tx ~key =
  let* schema = require_schema f in
  let p = route f key in
  let* _k, record =
    expect_record
      (send t p.p_dp (Dp_msg.R_read { file = p.p_file; tx; key; lock = Dp_msg.L_exclusive }))
  in
  let old_row = Row.decode_exn schema record in
  let* () = expect_ok (send t p.p_dp (Dp_msg.R_delete { file = p.p_file; tx; key })) in
  delete_index_entries t f ~tx old_row

let read_row_via_index t f ~tx ~index ~index_key:ikey_values =
  let* schema = require_schema f in
  match List.find_opt (fun ix -> String.equal ix.ix_name index) f.indexes with
  | None -> fail (Errors.Name_error ("unknown index " ^ index))
  | Some ix -> (
      let* prefix = Row.key_of_values ix.ix_schema ikey_values in
      (* message 1: read the first matching index record *)
      let reply =
        send t ix.ix_dp
          (Dp_msg.R_read_next
             {
               file = ix.ix_file;
               tx;
               from_key = prefix;
               inclusive = true;
               lock = Dp_msg.L_none;
               sbb = false;
             })
      in
      classify ~ctx:"index READ^NEXT" reply (function
        | Dp_msg.Rp_end -> Some (Ok None)
        | Dp_msg.Rp_record { key; record } ->
            (* check the index record is within the prefix *)
            let within =
              String.length key >= String.length prefix
              && String.equal (String.sub key 0 (String.length prefix)) prefix
            in
            ignore record;
            Some
              (if not within then Ok None
               else begin
                 let irow = Row.decode_exn ix.ix_schema record in
                 let* base_key = base_key_of_index_row f ix irow in
                 (* message 2: read the base record on its partition *)
                 let* _k, base_record =
                   expect_record
                     (send t (route f base_key).p_dp
                        (Dp_msg.R_read
                           {
                             file = (route f base_key).p_file;
                             tx;
                             key = base_key;
                             lock = Dp_msg.L_none;
                           }))
                 in
                 Ok (Some (Row.decode_exn schema base_record))
               end)
        | _ -> None))

(* --- ENSCRIBE sequential read --------------------------------------------- *)

let read_next_raw t f ~tx ~from_key ~inclusive ~lock ~sbb =
  (* partitions at or after the one holding [from_key], in key order *)
  let n = Array.length f.parts in
  let rec try_part i from_key inclusive =
    if i >= n then Ok []
    else begin
      let p = f.parts.(i) in
      let reply =
        send t p.p_dp
          (Dp_msg.R_read_next { file = p.p_file; tx; from_key; inclusive; lock; sbb })
      in
      classify ~ctx:"READ^NEXT" reply (function
        | Dp_msg.Rp_end ->
            (* this partition is exhausted: continue in the next one *)
            Some
              (if i + 1 < n then try_part (i + 1) f.parts.(i + 1).p_lo true
               else Ok [])
        | Dp_msg.Rp_record { key; record } -> Some (Ok [ (key, record) ])
        | Dp_msg.Rp_block { entries; _ } -> Some (Ok entries)
        | _ -> None)
    end
  in
  let start_part =
    let rec go i =
      if i + 1 < n && Keycode.compare_keys f.parts.(i + 1).p_lo from_key <= 0
      then go (i + 1)
      else i
    in
    go 0
  in
  try_part start_part from_key inclusive

(* --- set-oriented scans -------------------------------------------------------------- *)

type access = A_record | A_rsbb | A_vsbb

let access_name = function
  | A_record -> "record"
  | A_rsbb -> "rsbb"
  | A_vsbb -> "vsbb"

type scan_item = I_row of Row.row | I_entry of string * string

(* the blocking driver: one partition at a time, one outstanding request *)
type seq_scan = {
  sc_file : file;
  sc_tx : int;
  sc_access : access;
  sc_pred : Expr.t option;
  sc_proj : int array option;
  sc_lock : Dp_msg.lock_mode;
  mutable sc_parts : (partition * Expr.key_range) list;  (** head = current *)
  mutable sc_scb : int option;
  mutable sc_last_key : string;
  mutable sc_started : bool;  (** GET^FIRST already sent in this partition *)
  mutable sc_buf : scan_item list;
  mutable sc_done : bool;
  sc_span : Trace.h;  (** scan-lifetime span, finished at close *)
}

(* the nowait driver: every partition keeps one outstanding re-drive *)
type par_part = {
  pp_part : partition;
  pp_range : Expr.key_range;
  mutable pp_scb : int option;
  mutable pp_last_key : string;
  mutable pp_pending : Msg.completion option;
  mutable pp_front : scan_item list;
  mutable pp_chunks : scan_item list list;  (** newest first *)
  mutable pp_done : bool;  (** partition exhausted on the DP side *)
  mutable pp_span : Trace.h;
      (** fan-out leg span; its counter deltas are attributed per
          interaction (issue, re-drive, close), never by window diff —
          sibling legs interleave inside the scan's extent *)
}

type par_scan = {
  pr_file : file;
  pr_tx : int;
  pr_access : access;  (** [A_rsbb] or [A_vsbb] *)
  pr_pred : Expr.t option;
  pr_proj : int array option;
  pr_lock : Dp_msg.lock_mode;
  pr_ordered : bool;
  pr_parts : par_part array;
  mutable pr_cur : int;  (** ordered: next partition to consume *)
  mutable pr_front : scan_item list;  (** unordered: arrival-order queue *)
  mutable pr_chunks : scan_item list list;
  mutable pr_started : bool;
  mutable pr_dead : bool;  (** closed or failed: yield nothing more *)
  pr_span : Trace.h;
}

type scan = Seq of seq_scan | Par of par_scan

let open_scan t f ~tx ~access ~range ?pred ?proj ?(ordered = true) ~lock () =
  let pieces = partition_ranges f range in
  (* the record-at-a-time path stays blocking: it is the old-interface
     baseline, and its lock acquisition is inherently one-at-a-time *)
  let par = fanout t && access <> A_record && List.length pieces > 1 in
  (* [push:false]: a scan handle outlives this call, so its span must not
     sit on the open-span stack between interactions — scan_next_item and
     close_scan bracket each interaction in an attribute window instead *)
  let sp =
    if Trace.enabled t.sim then
      Trace.begin_span t.sim ~push:false ~cat:"fs"
        ~attrs:
          [
            ("file", Trace.Str f.fname);
            ("access", Trace.Str (access_name access));
            ("partitions", Trace.Int (List.length pieces));
            ("parallel", Trace.Bool par);
          ]
        (access_name access ^ " scan " ^ f.fname)
    else None
  in
  if par then
    Par
      {
        pr_file = f;
        pr_tx = tx;
        pr_access = access;
        pr_pred = pred;
        pr_proj = proj;
        pr_lock = lock;
        pr_ordered = ordered;
        pr_parts =
          Array.of_list
            (List.map
               (fun (p, r) ->
                 {
                   pp_part = p;
                   pp_range = r;
                   pp_scb = None;
                   pp_last_key = "";
                   pp_pending = None;
                   pp_front = [];
                   pp_chunks = [];
                   pp_done = false;
                   pp_span = None;
                 })
               pieces);
        pr_cur = 0;
        pr_front = [];
        pr_chunks = [];
        pr_started = false;
        pr_dead = false;
        pr_span = sp;
      }
  else
    Seq
      {
        sc_file = f;
        sc_tx = tx;
        sc_access = access;
        sc_pred = pred;
        sc_proj = proj;
        sc_lock = lock;
        sc_parts = pieces;
        sc_scb = None;
        sc_last_key = "";
        sc_started = false;
        sc_buf = [];
        sc_done = false;
        sc_span = sp;
      }

(* client-side filtering for the record-at-a-time and RSBB paths *)
let client_select_gen ~schema ~pred ~proj key record =
  match schema with
  | None -> Some (I_entry (key, record))
  | Some schema -> (
      let row = Row.decode_exn schema record in
      match pred with
      | Some p when not (Expr.eval_pred row p) -> None
      | _ -> (
          match proj with
          | Some fields -> Some (I_row (Row.project row fields))
          | None -> Some (I_row row)))

(* --- sequential (blocking) scan driver ----------------------------------- *)

let seq_close t sc =
  (match (sc.sc_scb, sc.sc_parts) with
  | Some scb, (p, _) :: _ ->
      Trace.attribute t.sim sc.sc_span (fun () ->
          ignore (send t p.p_dp (Dp_msg.R_close_scb { scb })))
  | _ -> ());
  sc.sc_scb <- None;
  sc.sc_done <- true;
  Trace.finish t.sim sc.sc_span

(* move to the next partition *)
let advance_partition t sc =
  (match (sc.sc_scb, sc.sc_parts) with
  | Some scb, (p, _) :: _ -> ignore (send t p.p_dp (Dp_msg.R_close_scb { scb }))
  | _ -> ());
  sc.sc_scb <- None;
  sc.sc_started <- false;
  sc.sc_last_key <- "";
  match sc.sc_parts with
  | [] -> sc.sc_done <- true
  | _ :: rest ->
      sc.sc_parts <- rest;
      if rest = [] then sc.sc_done <- true

let client_select sc key record =
  client_select_gen ~schema:sc.sc_file.schema ~pred:sc.sc_pred
    ~proj:sc.sc_proj key record

(* one reply buffer absorbed into the scan's item buffer = one
   executor-visible batch; counted at the absorb site so the pull and
   batched executors (which drain the same buffers) agree exactly *)
let note_batch t n =
  if n > 0 then begin
    let s = Sim.stats t.sim in
    s.Stats.exec_batches <- s.Stats.exec_batches + 1;
    s.Stats.exec_rows <- s.Stats.exec_rows + n
  end

(* one FS-DP interaction to refill the buffer; true if the scan may continue *)
let refill t sc =
  match sc.sc_parts with
  | [] ->
      sc.sc_done <- true;
      Ok ()
  | (p, range) :: _ -> (
      match sc.sc_access with
      | A_record -> (
          let from_key, inclusive =
            if sc.sc_started then (sc.sc_last_key, false)
            else (range.Expr.lo, true)
          in
          sc.sc_started <- true;
          let reply =
            send t p.p_dp
              (Dp_msg.R_read_next
                 {
                   file = p.p_file;
                   tx = sc.sc_tx;
                   from_key;
                   inclusive;
                   lock = sc.sc_lock;
                   sbb = false;
                 })
          in
          classify ~ctx:"READ^NEXT" reply (function
            | Dp_msg.Rp_end ->
                advance_partition t sc;
                Some (Ok ())
            | Dp_msg.Rp_record { key; record } ->
                if Keycode.compare_keys key range.Expr.hi >= 0 then begin
                  advance_partition t sc;
                  Some (Ok ())
                end
                else begin
                  sc.sc_last_key <- key;
                  (match client_select sc key record with
                  | Some item ->
                      sc.sc_buf <- [ item ];
                      note_batch t 1
                  | None -> ());
                  Some (Ok ())
                end
            | _ -> None))
      | A_rsbb | A_vsbb -> (
          let buffering =
            match sc.sc_access with
            | A_rsbb -> Dp_msg.B_rsbb
            | A_vsbb | A_record -> Dp_msg.B_vsbb
          in
          let reply =
            match sc.sc_scb with
            | None when not sc.sc_started ->
                sc.sc_started <- true;
                send t p.p_dp
                  (Dp_msg.R_get_first
                     {
                       file = p.p_file;
                       tx = sc.sc_tx;
                       buffering;
                       range;
                       pred = (if sc.sc_access = A_vsbb then sc.sc_pred else None);
                       proj = (if sc.sc_access = A_vsbb then sc.sc_proj else None);
                       lock = sc.sc_lock;
                     })
            | Some scb ->
                send t p.p_dp
                  (Dp_msg.R_get_next
                     { file = p.p_file; tx = sc.sc_tx; scb; after_key = sc.sc_last_key })
            | None ->
                (* SCB lost but scan started: treat as exhausted *)
                Dp_msg.Rp_end
          in
          classify ~ctx:"GET" reply (function
            | Dp_msg.Rp_end ->
                (* the Disk Process has already dropped the SCB *)
                sc.sc_scb <- None;
                advance_partition t sc;
                Some (Ok ())
            | Dp_msg.Rp_vblock { rows; last_key; more; scb } ->
                sc.sc_scb <- (if more then Some scb else None);
                sc.sc_last_key <- last_key;
                sc.sc_buf <- List.map (fun r -> I_row r) rows;
                note_batch t (List.length sc.sc_buf);
                if not more then advance_partition t sc;
                Some (Ok ())
            | Dp_msg.Rp_block { entries; last_key; more; scb } ->
                sc.sc_scb <- (if more then Some scb else None);
                sc.sc_last_key <- last_key;
                sc.sc_buf <-
                  List.filter_map (fun (k, r) -> client_select sc k r) entries;
                note_batch t (List.length sc.sc_buf);
                if not more then advance_partition t sc;
                Some (Ok ())
            | _ -> None)))

let rec seq_next_item t sc =
  match sc.sc_buf with
  | item :: rest ->
      sc.sc_buf <- rest;
      Sim.tick t.sim 3;
      Ok (Some item)
  | [] ->
      if sc.sc_done then Ok None
      else
        let* () = refill t sc in
        if sc.sc_buf = [] && sc.sc_done then Ok None else seq_next_item t sc

(* take everything currently buffered as one batch. Draining item-by-item
   does nothing to the simulation between pops (the pops are pure), so one
   aggregated [Sim.tick (3n)] fires the same events at the same times as n
   interleaved [Sim.tick 3]s — the batched and pull paths are
   observationally identical. [tick:false] hands the rows over uncharged:
   the caller owes [Sim.tick 3] per row *before* any per-row message, which
   keeps message send times exact for consumers that interleave sends with
   consumption (index base reads, keyed fallbacks). *)
let rec seq_next_items ~tick t sc =
  match sc.sc_buf with
  | _ :: _ as items ->
      sc.sc_buf <- [];
      if tick then Sim.tick t.sim (3 * List.length items);
      Ok (Some items)
  | [] ->
      if sc.sc_done then Ok None
      else
        let* () = refill t sc in
        if sc.sc_buf = [] && sc.sc_done then Ok None
        else seq_next_items ~tick t sc

(* --- parallel (nowait) scan driver ---------------------------------------- *)

(* pop one buffered item; chunks hold whole replies, newest first *)
let chunk_take ~front ~chunks ~set_front ~set_chunks =
  match front with
  | it :: rest ->
      set_front rest;
      Some it
  | [] -> (
      match List.concat (List.rev chunks) with
      | [] -> None
      | it :: rest ->
          set_chunks [];
          set_front rest;
          Some it)

let pp_take pp =
  chunk_take ~front:pp.pp_front ~chunks:pp.pp_chunks
    ~set_front:(fun l -> pp.pp_front <- l)
    ~set_chunks:(fun l -> pp.pp_chunks <- l)

let pr_take ps =
  chunk_take ~front:ps.pr_front ~chunks:ps.pr_chunks
    ~set_front:(fun l -> ps.pr_front <- l)
    ~set_chunks:(fun l -> ps.pr_chunks <- l)

(* drain the whole buffer in pop order: the items a sequence of pops would
   return, with no simulation activity between them *)
let pp_take_all pp =
  let items = pp.pp_front @ List.concat (List.rev pp.pp_chunks) in
  pp.pp_front <- [];
  pp.pp_chunks <- [];
  items

let pr_take_all ps =
  let items = ps.pr_front @ List.concat (List.rev ps.pr_chunks) in
  ps.pr_front <- [];
  ps.pr_chunks <- [];
  items

(* ordered scans buffer per partition (ranges are disjoint and ascending,
   so partition order IS key order); unordered scans queue arrivals *)
let par_absorb ps pp items =
  match items with
  | [] -> ()
  | items ->
      if ps.pr_ordered then pp.pp_chunks <- items :: pp.pp_chunks
      else ps.pr_chunks <- items :: ps.pr_chunks

(* launch: one GET^FIRST^VSBB (or RSBB) per partition, all overlapped *)
let par_issue_first t ps =
  ps.pr_started <- true;
  Array.iteri
    (fun i pp ->
      if Trace.enabled t.sim then
        pp.pp_span <-
          Trace.begin_span t.sim ~parent:ps.pr_span ~push:false ~tid:(i + 1)
            ~cat:"fs.leg"
            ~attrs:[ ("partition", Trace.Int i) ]
            ("leg " ^ Dp.name pp.pp_part.p_dp);
      let vsbb = ps.pr_access = A_vsbb in
      let req =
        Dp_msg.R_get_first
          {
            file = pp.pp_part.p_file;
            tx = ps.pr_tx;
            buffering = (if vsbb then Dp_msg.B_vsbb else Dp_msg.B_rsbb);
            range = pp.pp_range;
            pred = (if vsbb then ps.pr_pred else None);
            proj = (if vsbb then ps.pr_proj else None);
            lock = ps.pr_lock;
          }
      in
      Trace.attribute t.sim pp.pp_span (fun () ->
          pp.pp_pending <- Some (send_nowait t pp.pp_part.p_dp req)))
    ps.pr_parts

(* fold one reply into the partition state; keep one re-drive outstanding *)
let par_process t ps pp reply =
  Trace.attribute t.sim pp.pp_span @@ fun () ->
  classify ~ctx:"GET" reply (function
  | Dp_msg.Rp_end ->
      pp.pp_scb <- None;
      pp.pp_done <- true;
      Some (Ok ())
  | Dp_msg.Rp_vblock { rows; last_key; more; scb } ->
      pp.pp_last_key <- last_key;
      let items = List.map (fun r -> I_row r) rows in
      par_absorb ps pp items;
      note_batch t (List.length items);
      if more then begin
        pp.pp_scb <- Some scb;
        pp.pp_pending <-
          Some
            (send_nowait t pp.pp_part.p_dp
               (Dp_msg.R_get_next
                  { file = pp.pp_part.p_file; tx = ps.pr_tx; scb; after_key = last_key }))
      end
      else begin
        pp.pp_scb <- None;
        pp.pp_done <- true
      end;
      Some (Ok ())
  | Dp_msg.Rp_block { entries; last_key; more; scb } ->
      pp.pp_last_key <- last_key;
      let items =
        List.filter_map
          (fun (k, r) ->
            client_select_gen ~schema:ps.pr_file.schema ~pred:ps.pr_pred
              ~proj:ps.pr_proj k r)
          entries
      in
      par_absorb ps pp items;
      note_batch t (List.length items);
      if more then begin
        pp.pp_scb <- Some scb;
        pp.pp_pending <-
          Some
            (send_nowait t pp.pp_part.p_dp
               (Dp_msg.R_get_next
                  { file = pp.pp_part.p_file; tx = ps.pr_tx; scb; after_key = last_key }))
      end
      else begin
        pp.pp_scb <- None;
        pp.pp_done <- true
      end;
      Some (Ok ())
  | _ -> None)

(* drain every outstanding completion (charging its latency); called on
   error and on close so no completion is ever leaked *)
let par_quiesce t ps =
  Array.iter
    (fun pp ->
      match pp.pp_pending with
      | None -> ()
      | Some c ->
          pp.pp_pending <- None;
          (match await_reply t c with
          | Dp_msg.Rp_vblock { more; scb; _ } | Dp_msg.Rp_block { more; scb; _ } ->
              pp.pp_scb <- (if more then Some scb else None)
          | Dp_msg.Rp_blocked { scb; _ } when scb >= 0 -> pp.pp_scb <- Some scb
          | _ -> pp.pp_scb <- None);
          pp.pp_done <- true)
    ps.pr_parts

(* await the earliest outstanding completion across ALL partitions (ties
   break to the lowest partition index — pure function of simulated time)
   and fold its reply in; [Ok false] when nothing was outstanding *)
let par_await_some t ps =
  let idxs = ref [] in
  Array.iteri
    (fun i pp -> if pp.pp_pending <> None then idxs := i :: !idxs)
    ps.pr_parts;
  match List.rev !idxs with
  | [] -> Ok false
  | idxs -> (
      let cs = List.map (fun i -> Option.get ps.pr_parts.(i).pp_pending) idxs in
      let which, payload = Msg.await_any t.msys cs in
      let pp = ps.pr_parts.(List.nth idxs which) in
      pp.pp_pending <- None;
      match par_process t ps pp (decode_or_internal payload) with
      | Ok () -> Ok true
      | Error e ->
          par_quiesce t ps;
          ps.pr_dead <- true;
          Error e)

let rec par_next_item t ps =
  if ps.pr_dead then Ok None
  else begin
    if not ps.pr_started then par_issue_first t ps;
    if ps.pr_ordered then begin
      if ps.pr_cur >= Array.length ps.pr_parts then Ok None
      else begin
        let pp = ps.pr_parts.(ps.pr_cur) in
        match pp_take pp with
        | Some it ->
            Sim.tick t.sim 3;
            Ok (Some it)
        | None ->
            if pp.pp_done && pp.pp_pending = None then begin
              ps.pr_cur <- ps.pr_cur + 1;
              par_next_item t ps
            end
            else
              let* progressed = par_await_some t ps in
              if progressed then par_next_item t ps else Ok None
      end
    end
    else begin
      match pr_take ps with
      | Some it ->
          Sim.tick t.sim 3;
          Ok (Some it)
      | None ->
          let all_done =
            Array.for_all (fun pp -> pp.pp_done && pp.pp_pending = None) ps.pr_parts
          in
          if all_done then Ok None
          else
            let* progressed = par_await_some t ps in
            if progressed then par_next_item t ps else Ok None
    end
  end

(* batch variant of [par_next_item]: same await/advance decisions, but a
   non-empty buffer is surrendered whole (see [seq_next_items] for the
   tick-equivalence argument) *)
let rec par_next_items ~tick t ps =
  if ps.pr_dead then Ok None
  else begin
    if not ps.pr_started then par_issue_first t ps;
    if ps.pr_ordered then begin
      if ps.pr_cur >= Array.length ps.pr_parts then Ok None
      else begin
        let pp = ps.pr_parts.(ps.pr_cur) in
        match pp_take_all pp with
        | _ :: _ as items ->
            if tick then Sim.tick t.sim (3 * List.length items);
            Ok (Some items)
        | [] ->
            if pp.pp_done && pp.pp_pending = None then begin
              ps.pr_cur <- ps.pr_cur + 1;
              par_next_items ~tick t ps
            end
            else
              let* progressed = par_await_some t ps in
              if progressed then par_next_items ~tick t ps else Ok None
      end
    end
    else begin
      match pr_take_all ps with
      | _ :: _ as items ->
          if tick then Sim.tick t.sim (3 * List.length items);
          Ok (Some items)
      | [] ->
          let all_done =
            Array.for_all (fun pp -> pp.pp_done && pp.pp_pending = None) ps.pr_parts
          in
          if all_done then Ok None
          else
            let* progressed = par_await_some t ps in
            if progressed then par_next_items ~tick t ps else Ok None
    end
  end

(* --- common scan interface -------------------------------------------------- *)

(* every interaction runs inside an attribute window on the scan's span:
   children begun here nest under it and its counter delta accumulates
   exactly over scan work, not whatever the caller does while holding the
   handle open *)
let scan_next_item t sc =
  let h = match sc with Seq sc -> sc.sc_span | Par ps -> ps.pr_span in
  Trace.attribute t.sim h (fun () ->
      match sc with
      | Seq sc -> seq_next_item t sc
      | Par ps -> par_next_item t ps)

let scan_file = function Seq sc -> sc.sc_file | Par ps -> ps.pr_file

let close_scan t = function
  | Seq sc -> seq_close t sc
  | Par ps ->
      Trace.attribute t.sim ps.pr_span (fun () ->
          par_quiesce t ps;
          Array.iter
            (fun pp ->
              (match pp.pp_scb with
              | Some scb ->
                  pp.pp_scb <- None;
                  Trace.attribute t.sim pp.pp_span (fun () ->
                      ignore
                        (send t pp.pp_part.p_dp (Dp_msg.R_close_scb { scb })))
              | None -> ());
              Trace.finish t.sim pp.pp_span)
            ps.pr_parts);
      Trace.finish t.sim ps.pr_span;
      ps.pr_dead <- true

let scan_next t sc =
  let* item = scan_next_item t sc in
  match item with
  | None -> Ok None
  | Some (I_row row) -> Ok (Some row)
  | Some (I_entry (_, record)) -> (
      match (scan_file sc).schema with
      | Some schema -> Ok (Some (Row.decode_exn schema record))
      | None -> Error (Errors.Bad_request "scan_next on schema-less file"))

(* surface everything the scan has buffered — at least one FS-DP reply
   buffer — as one row array; [None] when the scan is exhausted. With
   [~tick:false] the per-row pop charge is NOT applied: the consumer must
   charge [Sim.tick 3] per row before any per-row message it sends, so the
   message timeline stays byte-identical to the pull path. *)
let scan_next_batch ?(tick = true) t sc =
  let h = match sc with Seq sc -> sc.sc_span | Par ps -> ps.pr_span in
  let* items =
    Trace.attribute t.sim h (fun () ->
        match sc with
        | Seq sc -> seq_next_items ~tick t sc
        | Par ps -> par_next_items ~tick t ps)
  in
  match items with
  | None -> Ok None
  | Some items -> (
      match (scan_file sc).schema with
      | Some schema ->
          Ok
            (Some
               (Array.of_list items |> Array.map (function
                  | I_row row -> row
                  | I_entry (_, record) -> Row.decode_exn schema record)))
      | None ->
          if List.exists (function I_entry _ -> true | I_row _ -> false) items
          then Error (Errors.Bad_request "scan_next_batch on a schema-less file")
          else
            Ok
              (Some
                 (Array.of_list items |> Array.map (function
                    | I_row row -> row
                    | I_entry _ -> assert false))))

let scan_next_entry t sc =
  let* item = scan_next_item t sc in
  match item with
  | None -> Ok None
  | Some (I_entry (k, r)) -> Ok (Some (k, r))
  | Some (I_row _) ->
      Error (Errors.Bad_request "scan_next_entry on a projected scan")

(* --- set-oriented update / delete ------------------------------------------------------ *)

let assignments_touch_index f assignments =
  List.exists
    (fun ix ->
      List.exists
        (fun a -> Array.exists (fun c -> c = a.Expr.target) ix.ix_all_cols)
        assignments)
    f.indexes

(* the delegated path: UPDATE^SUBSET / DELETE^SUBSET with re-drives.
   Under fan-out every partition keeps one re-drive outstanding; the
   completion loop folds replies in earliest-completion order. *)
let drive_subset0 t f ~tx ~range ~first ~next =
  ignore tx;
  let pieces = partition_ranges f range in
  if fanout t && List.length pieces > 1 then begin
    let parts = Array.of_list pieces in
    let pending =
      Array.map (fun (p, prange) -> Some (send_nowait t p.p_dp (first p prange))) parts
    in
    let total = ref 0 in
    let err = ref None in
    let rec loop () =
      let idxs = ref [] in
      Array.iteri (fun i c -> if c <> None then idxs := i :: !idxs) pending;
      match List.rev !idxs with
      | [] -> ()
      | idxs ->
          let cs = List.map (fun i -> Option.get pending.(i)) idxs in
          let which, payload = Msg.await_any t.msys cs in
          let i = List.nth idxs which in
          pending.(i) <- None;
          let p, _ = parts.(i) in
          (match
             classify ~ctx:"SUBSET request" (decode_or_internal payload)
               (function
                 | Dp_msg.Rp_progress { processed; last_key; more; scb } ->
                     total := !total + processed;
                     if more then
                       if !err = None then
                         pending.(i) <-
                           Some (send_nowait t p.p_dp (next p scb last_key))
                       else
                         (* a sibling partition failed: abandon this subset *)
                         ignore (send t p.p_dp (Dp_msg.R_close_scb { scb }));
                     Some (Ok ())
                 | _ -> None)
           with
          | Ok () -> ()
          | Error e -> if !err = None then err := Some e);
          loop ()
    in
    loop ();
    match !err with Some e -> Error e | None -> Ok !total
  end
  else
    let rec per_partition total = function
      | [] -> Ok total
      | (p, prange) :: rest ->
          let rec drive total scb after_key =
            let reply =
              match scb with
              | None -> send t p.p_dp (first p prange)
              | Some scb -> send t p.p_dp (next p scb after_key)
            in
            classify ~ctx:"SUBSET request" reply (function
              | Dp_msg.Rp_progress { processed; last_key; more; scb } ->
                  Some
                    (if more then drive (total + processed) (Some scb) last_key
                     else
                       (* subset exhausted: the Disk Process dropped the SCB *)
                       Ok (total + processed))
              | _ -> None)
          in
          let* total = drive total None "" in
          per_partition total rest
    in
    per_partition 0 pieces

let drive_subset t f ~tx ~range ~first ~next =
  if not (Trace.enabled t.sim) then drive_subset0 t f ~tx ~range ~first ~next
  else begin
    let pieces = partition_ranges f range in
    let par = fanout t && List.length pieces > 1 in
    let sp =
      Trace.begin_span t.sim ~cat:"fs"
        ~attrs:
          [
            ("file", Trace.Str f.fname);
            ("partitions", Trace.Int (List.length pieces));
            ("parallel", Trace.Bool par);
          ]
        ("subset " ^ f.fname)
    in
    Fun.protect
      ~finally:(fun () -> Trace.finish t.sim sp)
      (fun () -> drive_subset0 t f ~tx ~range ~first ~next)
  end

let update_subset t f ~tx ~range ?pred assignments =
  let* _schema = require_schema f in
  if assignments_touch_index f assignments then begin
    (* not delegable: qualify with a VSBB scan projecting the key columns,
       then per-record read-modify-write with index maintenance *)
    let* schema = require_schema f in
    let key_cols = schema.Row.key_cols in
    let sc =
      open_scan t f ~tx ~access:A_vsbb ~range ?pred ~proj:key_cols
        ~lock:Dp_msg.L_exclusive ()
    in
    (* consume the qualifying keys a whole reply buffer at a time; the pop
       tick is deferred ([~tick:false]) and re-applied before each per-row
       read-modify-write so the message timeline matches the row-at-a-time
       driver exactly *)
    let rec go count =
      let* batch = scan_next_batch ~tick:false t sc in
      match batch with
      | None -> Ok count
      | Some batch ->
          let n = Array.length batch in
          let rec apply i =
            if i >= n then go (count + n)
            else begin
              Sim.tick t.sim 3;
              let* key = Row.key_of_values schema (Array.to_list batch.(i)) in
              let* () = update_row_via_key t f ~tx ~key assignments in
              apply (i + 1)
            end
          in
          apply 0
    in
    (* close on every exit — errors and raises out of the driver (a
       malformed record decode) must not leave the scan (or its span) open *)
    Fun.protect ~finally:(fun () -> close_scan t sc) (fun () -> go 0)
  end
  else
    drive_subset t f ~tx ~range
      ~first:(fun p prange ->
        Dp_msg.R_update_subset_first
          { file = p.p_file; tx; range = prange; pred; assignments })
      ~next:(fun p scb after_key ->
        Dp_msg.R_update_subset_next { file = p.p_file; tx; scb; after_key })

let delete_subset t f ~tx ~range ?pred () =
  let* _schema = require_schema f in
  if f.indexes <> [] then begin
    let* schema = require_schema f in
    let key_cols = schema.Row.key_cols in
    let sc =
      open_scan t f ~tx ~access:A_vsbb ~range ?pred ~proj:key_cols
        ~lock:Dp_msg.L_exclusive ()
    in
    let rec go count =
      let* batch = scan_next_batch ~tick:false t sc in
      match batch with
      | None -> Ok count
      | Some batch ->
          let n = Array.length batch in
          let rec apply i =
            if i >= n then go (count + n)
            else begin
              Sim.tick t.sim 3;
              let* key = Row.key_of_values schema (Array.to_list batch.(i)) in
              let* () = delete_row_via_key t f ~tx ~key in
              apply (i + 1)
            end
          in
          apply 0
    in
    Fun.protect ~finally:(fun () -> close_scan t sc) (fun () -> go 0)
  end
  else
    drive_subset t f ~tx ~range
      ~first:(fun p prange ->
        Dp_msg.R_delete_subset_first { file = p.p_file; tx; range = prange; pred })
      ~next:(fun p scb after_key ->
        Dp_msg.R_delete_subset_next { file = p.p_file; tx; scb; after_key })

(* --- aggregate pushdown ------------------------------------------------------ *)

(* drive one partition's AGGREGATE^FIRST / AGGREGATE^NEXT chain to its
   final reply; intermediate replies carry no groups (the partials stay in
   the Disk Process SCB) *)
let agg_fold_reply reply ~redrive ~finish ~fail =
  match
    classify ~ctx:"AGGREGATE request" reply (function
      | Dp_msg.Rp_agg { groups; last_key; more; scb } ->
          Some (Ok (if more then `Redrive (scb, last_key) else `Done groups))
      | _ -> None)
  with
  | Ok (`Redrive (scb, last_key)) -> redrive scb last_key
  | Ok (`Done groups) -> finish groups
  | Error e -> fail e

(* merge per-partition group lists in partition (= key) order; a group
   whose rows straddle a partition boundary merges accumulator-wise *)
let merge_partition_groups per_part =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  Array.iter
    (fun groups ->
      List.iter
        (fun (keyvals, accs) ->
          let gk =
            let w = Nsql_util.Codec.writer () in
            Row.encode_values w keyvals;
            Nsql_util.Codec.contents w
          in
          match Hashtbl.find_opt tbl gk with
          | None ->
              Hashtbl.replace tbl gk (keyvals, accs);
              order := gk :: !order
          | Some (_, into_accs) ->
              List.iter2 (fun into acc -> Dp_msg.merge_acc ~into acc) into_accs accs)
        groups)
    per_part;
  List.rev_map
    (fun gk ->
      match Hashtbl.find_opt tbl gk with
      | Some g -> g
      | None -> Errors.fatal "Fs.aggregate: group order desync")
    !order

let aggregate0 t f ~tx ~range ?pred ~group_keys ~aggs ~lock () =
  let* _schema = require_schema f in
  let first p prange =
    Dp_msg.R_agg_first
      { file = p.p_file; tx; range = prange; pred; group_keys; aggs; lock }
  in
  let next p scb after_key =
    Dp_msg.R_agg_next { file = p.p_file; tx; scb; after_key }
  in
  let pieces = partition_ranges f range in
  let parts = Array.of_list pieces in
  let per_part = Array.make (Array.length parts) [] in
  if fanout t && Array.length parts > 1 then begin
    let pending =
      Array.map (fun (p, prange) -> Some (send_nowait t p.p_dp (first p prange))) parts
    in
    let err = ref None in
    let rec loop () =
      let idxs = ref [] in
      Array.iteri (fun i c -> if c <> None then idxs := i :: !idxs) pending;
      match List.rev !idxs with
      | [] -> ()
      | idxs ->
          let cs = List.map (fun i -> Option.get pending.(i)) idxs in
          let which, payload = Msg.await_any t.msys cs in
          let i = List.nth idxs which in
          pending.(i) <- None;
          let p, _ = parts.(i) in
          agg_fold_reply (decode_or_internal payload)
            ~redrive:(fun scb last_key ->
              if !err = None then
                pending.(i) <- Some (send_nowait t p.p_dp (next p scb last_key))
              else ignore (send t p.p_dp (Dp_msg.R_close_scb { scb })))
            ~finish:(fun groups -> per_part.(i) <- groups)
            ~fail:(fun e -> if !err = None then err := Some e);
          loop ()
    in
    loop ();
    match !err with
    | Some e -> Error e
    | None -> Ok (merge_partition_groups per_part)
  end
  else begin
    let rec per_partition i =
      if i >= Array.length parts then Ok (merge_partition_groups per_part)
      else
        let p, prange = parts.(i) in
        let rec drive scb after_key =
          let reply =
            match scb with
            | None -> send t p.p_dp (first p prange)
            | Some scb -> send t p.p_dp (next p scb after_key)
          in
          agg_fold_reply reply
            ~redrive:(fun scb last_key -> drive (Some scb) last_key)
            ~finish:(fun groups ->
              per_part.(i) <- groups;
              Ok ())
            ~fail:(fun e -> Error e)
        in
        let* () = drive None "" in
        per_partition (i + 1)
    in
    per_partition 0
  end

let aggregate t f ~tx ~range ?pred ~group_keys ~aggs ~lock () =
  if not (Trace.enabled t.sim) then
    aggregate0 t f ~tx ~range ?pred ~group_keys ~aggs ~lock ()
  else begin
    let pieces = partition_ranges f range in
    let par = fanout t && List.length pieces > 1 in
    let sp =
      Trace.begin_span t.sim ~cat:"fs"
        ~attrs:
          [
            ("file", Trace.Str f.fname);
            ("partitions", Trace.Int (List.length pieces));
            ("parallel", Trace.Bool par);
            ("groups", Trace.Int (Array.length group_keys));
          ]
        ("aggregate " ^ f.fname)
    in
    Fun.protect
      ~finally:(fun () -> Trace.finish t.sim sp)
      (fun () -> aggregate0 t f ~tx ~range ?pred ~group_keys ~aggs ~lock ())
  end

(* --- blocked sequential inserts --------------------------------------------------------- *)

type insert_buffer = {
  ib_file : file;
  ib_tx : int;
  ib_capacity : int;
  mutable ib_rows : Row.row list;  (** newest first *)
}

let open_insert_buffer _t f ~tx ~capacity =
  if capacity < 1 then invalid_arg "Fs.open_insert_buffer: capacity < 1";
  { ib_file = f; ib_tx = tx; ib_capacity = capacity; ib_rows = [] }

let flush_insert_buffer t b =
  match b.ib_rows with
  | [] -> Ok ()
  | rows_rev ->
      let rows = List.rev rows_rev in
      b.ib_rows <- [];
      let* schema = require_schema b.ib_file in
      (* group by partition, one INSERT^BLOCK message per partition *)
      let groups = Hashtbl.create 4 in
      List.iter
        (fun row ->
          let p = route b.ib_file (Row.key_of_row schema row) in
          let existing =
            Option.value ~default:[] (Hashtbl.find_opt groups p.p_file)
          in
          Hashtbl.replace groups p.p_file (row :: existing))
        rows;
      let* () =
        Errors.list_iter
          (fun (pfile, prows) ->
            let p =
              Array.to_list b.ib_file.parts
              |> List.find (fun p -> p.p_file = pfile)
            in
            expect_applied ~ctx:"INSERT^BLOCK"
              (send t p.p_dp
                 (Dp_msg.R_insert_block
                    { file = pfile; tx = b.ib_tx; rows = List.rev prows })))
          (Tbl.sorted_bindings groups)
      in
      (* index maintenance, also blocked *)
      Errors.list_iter
        (fun ix ->
          let irows = List.map (fun row -> index_row ix row) rows in
          expect_applied ~ctx:"INSERT^BLOCK"
            (send t ix.ix_dp
               (Dp_msg.R_insert_block
                  { file = ix.ix_file; tx = b.ib_tx; rows = irows })))
        b.ib_file.indexes

let buffered_insert t b row =
  b.ib_rows <- row :: b.ib_rows;
  if List.length b.ib_rows >= b.ib_capacity then flush_insert_buffer t b
  else Ok ()

(* --- buffered update/delete where current ----------------------------------- *)

type apply_buffer = {
  ab_file : file;
  ab_tx : int;
  ab_capacity : int;
  mutable ab_ops : (string * Dp_msg.buffered_op) list;  (** newest first *)
}

let open_apply_buffer _t f ~tx ~capacity =
  if capacity < 1 then invalid_arg "Fs.open_apply_buffer: capacity < 1";
  { ab_file = f; ab_tx = tx; ab_capacity = capacity; ab_ops = [] }

let flush_apply_buffer t b =
  match b.ab_ops with
  | [] -> Ok ()
  | ops_rev ->
      let ops = List.rev ops_rev in
      b.ab_ops <- [];
      if b.ab_file.indexes <> [] then
        (* index maintenance needs the requester-side path *)
        Errors.list_iter
          (fun (key, op) ->
            match op with
            | Dp_msg.Ob_update assignments ->
                update_row_via_key t b.ab_file ~tx:b.ab_tx ~key assignments
            | Dp_msg.Ob_delete -> delete_row_via_key t b.ab_file ~tx:b.ab_tx ~key)
          ops
      else begin
        (* group by partition, one APPLY^BLOCK per partition touched *)
        let groups = Hashtbl.create 4 in
        List.iter
          (fun (key, op) ->
            let p = route b.ab_file key in
            let existing =
              Option.value ~default:[] (Hashtbl.find_opt groups p.p_file)
            in
            Hashtbl.replace groups p.p_file ((key, op) :: existing))
          ops;
        Errors.list_iter
          (fun (pfile, pops) ->
            let p =
              Array.to_list b.ab_file.parts
              |> List.find (fun p -> p.p_file = pfile)
            in
            expect_applied ~ctx:"APPLY^BLOCK"
              (send t p.p_dp
                 (Dp_msg.R_apply_block
                    { file = pfile; tx = b.ab_tx; ops = List.rev pops })))
          (Tbl.sorted_bindings groups)
      end

let buffer_op t b key op =
  b.ab_ops <- (key, op) :: b.ab_ops;
  if List.length b.ab_ops >= b.ab_capacity then flush_apply_buffer t b
  else Ok ()

let buffered_update t b ~key assignments =
  buffer_op t b key (Dp_msg.Ob_update assignments)

let buffered_delete t b ~key = buffer_op t b key Dp_msg.Ob_delete

(* --- index scans -------------------------------------------------------------------------- *)

let index_scan t f ~tx ~index ~range ?pred ?proj ~lock () =
  let* schema = require_schema f in
  match List.find_opt (fun ix -> String.equal ix.ix_name index) f.indexes with
  | None -> fail (Errors.Name_error ("unknown index " ^ index))
  | Some ix ->
      (* scan the index with VSBB: selection on index fields runs in the
         index's Disk Process; each qualifying entry costs one base read *)
      let ix_file : file =
        {
          fname = f.fname ^ "#ix_" ^ index;
          schema = Some ix.ix_schema;
          kind = Dp_msg.K_key_sequenced;
          parts = [| { p_lo = ""; p_dp = ix.ix_dp; p_file = ix.ix_file } |];
          indexes = [];
        }
      in
      let sc = open_scan t ix_file ~tx ~access:A_vsbb ~range ?pred ~lock () in
      let next () =
        match
          let* irow = scan_next t sc in
          match irow with
          | None -> Ok None
          | Some irow ->
              let* base_key = base_key_of_index_row f ix irow in
              let p = route f base_key in
              let* _k, record =
                expect_record
                  (send t p.p_dp
                     (Dp_msg.R_read { file = p.p_file; tx; key = base_key; lock }))
              in
              let row = Row.decode_exn schema record in
              let row =
                match proj with
                | Some fields -> Row.project row fields
                | None -> row
              in
              Ok (Some row)
        with
        | Ok (Some _) as r -> r
        | (Ok None | Error _) as r ->
            (* release eagerly at the end of the stream (scan-close is
               idempotent, callers may pull past the end) *)
            close_scan t sc;
            r
      in
      (* the caller must run [close] on every exit: a fault can abandon the
         stream between pulls, and only closing releases the SCB and the
         scan's trace span *)
      Ok (next, fun () -> close_scan t sc)

(* batch variant of [index_scan]: one call surfaces a whole buffered batch
   of index entries resolved to base rows. The index-scan pops are taken
   uncharged ([~tick:false]) and the pop tick is re-applied immediately
   before each base READ, so the message timeline is byte-identical to
   pulling rows one at a time. *)
let index_scan_batch t f ~tx ~index ~range ?pred ?proj ~lock () =
  let* schema = require_schema f in
  match List.find_opt (fun ix -> String.equal ix.ix_name index) f.indexes with
  | None -> fail (Errors.Name_error ("unknown index " ^ index))
  | Some ix ->
      let ix_file : file =
        {
          fname = f.fname ^ "#ix_" ^ index;
          schema = Some ix.ix_schema;
          kind = Dp_msg.K_key_sequenced;
          parts = [| { p_lo = ""; p_dp = ix.ix_dp; p_file = ix.ix_file } |];
          indexes = [];
        }
      in
      let sc = open_scan t ix_file ~tx ~access:A_vsbb ~range ?pred ~lock () in
      let next_batch () =
        match
          let* irows = scan_next_batch ~tick:false t sc in
          match irows with
          | None -> Ok None
          | Some irows ->
              let n = Array.length irows in
              let out = Array.make n [||] in
              let rec fill i =
                if i >= n then Ok (Some out)
                else begin
                  Sim.tick t.sim 3;
                  let* base_key = base_key_of_index_row f ix irows.(i) in
                  let p = route f base_key in
                  let* _k, record =
                    expect_record
                      (send t p.p_dp
                         (Dp_msg.R_read { file = p.p_file; tx; key = base_key; lock }))
                  in
                  let row = Row.decode_exn schema record in
                  out.(i) <-
                    (match proj with
                    | Some fields -> Row.project row fields
                    | None -> row);
                  fill (i + 1)
                end
              in
              fill 0
        with
        | Ok (Some _) as r -> r
        | (Ok None | Error _) as r ->
            (* release eagerly at the end of the stream (close is idempotent) *)
            close_scan t sc;
            r
      in
      Ok (next_batch, fun () -> close_scan t sc)

(* --- online index creation ------------------------------------------------ *)

let add_index t f ~tx spec =
  let* schema = require_schema f in
  if List.exists (fun ix -> String.equal ix.ix_name spec.is_name) f.indexes
  then fail (Errors.File_exists ("index " ^ spec.is_name))
  else begin
    let ix_cols, ix_all_cols, ix_basekey_pos, ix_schema =
      build_index_meta schema spec
    in
    let iname = Printf.sprintf "%s#ix_%s" f.fname spec.is_name in
    let* id =
      expect_file
        (send t spec.is_dp
           (Dp_msg.R_create_file
              { fname = iname; kind = Dp_msg.K_key_sequenced;
                schema = Some ix_schema; check = None }))
    in
    let ix =
      {
        ix_name = spec.is_name;
        ix_cols;
        ix_all_cols;
        ix_basekey_pos;
        ix_schema;
        ix_dp = spec.is_dp;
        ix_file = id;
      }
    in
    (* backfill: scan the base with VSBB projecting the index fields, ship
       the entries with blocked inserts *)
    let sc =
      open_scan t f ~tx ~access:A_vsbb ~range:Expr.full_range
        ~proj:ix_all_cols ~lock:Dp_msg.L_shared ()
    in
    let batch = ref [] in
    let flush () =
      match !batch with
      | [] -> Ok ()
      | rows ->
          let rows = List.rev rows in
          batch := [];
          expect_applied ~ctx:"INSERT^BLOCK"
            (send t spec.is_dp (Dp_msg.R_insert_block { file = id; tx; rows }))
    in
    let rec fill () =
      let* row = scan_next t sc in
      match row with
      | None -> flush ()
      | Some irow ->
          batch := irow :: !batch;
          let* () = if List.length !batch >= 50 then flush () else Ok () in
          fill ()
    in
    let* () = Fun.protect ~finally:(fun () -> close_scan t sc) fill in
    Ok { f with indexes = ix :: f.indexes }
  end

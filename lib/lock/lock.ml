module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Moncore = Nsql_sim.Moncore
module Keycode = Nsql_util.Keycode
module Trace = Nsql_trace.Trace

type mode = Shared | Exclusive

let pp_mode ppf = function
  | Shared -> Format.pp_print_string ppf "S"
  | Exclusive -> Format.pp_print_string ppf "X"

type resource =
  | File
  | Record of string
  | Generic of string
  | Range of string * string

let pp_resource ppf = function
  | File -> Format.pp_print_string ppf "FILE"
  | Record k -> Format.fprintf ppf "REC(%S)" k
  | Generic p -> Format.fprintf ppf "GEN(%S)" p
  | Range (lo, hi) -> Format.fprintf ppf "RANGE[%S,%S)" lo hi

type outcome = Granted | Blocked of int list

(* Every resource maps to an interval [lo, hi) of encoded-key space;
   hi = Keycode.high_value means unbounded above (inclusive of HIGH). *)
let interval = function
  | File -> (Keycode.low_value, Keycode.high_value)
  | Record k -> (k, Keycode.successor k)
  | Generic p -> (
      ( p,
        match Keycode.prefix_upper_bound p with
        | Some b -> b
        | None -> Keycode.high_value ))
  | Range (lo, hi) -> (lo, hi)

let intervals_overlap (lo1, hi1) (lo2, hi2) =
  Keycode.compare_keys lo1 hi2 < 0 && Keycode.compare_keys lo2 hi1 < 0

let modes_conflict a b =
  match (a, b) with Shared, Shared -> false | _ -> true

type entry = {
  e_tx : int;
  e_file : int;
  e_res : resource;
  e_iv : string * string;
  mutable e_mode : mode;
}

type file_table = {
  (* exact-key record locks, the common case, hashed for O(1) probing *)
  points : (string, entry list ref) Hashtbl.t;
  (* file / generic / range locks, normally few *)
  mutable ranged : entry list;
}

type t = {
  sim : Sim.t;
  files : (int, file_table) Hashtbl.t;
  by_tx : (int, entry list ref) Hashtbl.t;
  (* observer for process-pair checkpointing: called on every new grant and
     on every actual S->X upgrade (not on no-op re-grants), so a mirror of
     the table can be maintained elsewhere *)
  mutable grant_hook : (tx:int -> file:int -> resource -> mode -> unit) option;
}

let create sim =
  { sim; files = Hashtbl.create 16; by_tx = Hashtbl.create 16;
    grant_hook = None }

let set_grant_hook t hook = t.grant_hook <- hook

let notify_grant t ~tx ~file res mode =
  match t.grant_hook with None -> () | Some f -> f ~tx ~file res mode

let file_table t file =
  match Hashtbl.find_opt t.files file with
  | Some ft -> ft
  | None ->
      let ft = { points = Hashtbl.create 64; ranged = [] } in
      Hashtbl.replace t.files file ft;
      ft

(* All entries of [file] whose interval overlaps [iv]. For a point probe we
   only consult the matching hash bucket plus the ranged list; for a ranged
   probe we must scan the points too. *)
let overlapping ft res iv =
  let ranged = List.filter (fun e -> intervals_overlap e.e_iv iv) ft.ranged in
  match res with
  | Record k -> (
      match Hashtbl.find_opt ft.points k with
      | Some es -> !es @ ranged
      | None -> ranged)
  | File | Generic _ | Range _ ->
      Hashtbl.fold
        (fun _ es acc ->
          List.fold_left
            (fun acc e ->
              if intervals_overlap e.e_iv iv then e :: acc else acc)
            acc !es)
        ft.points ranged

let index_by_tx t e =
  match Hashtbl.find_opt t.by_tx e.e_tx with
  | Some es -> es := e :: !es
  | None -> Hashtbl.replace t.by_tx e.e_tx (ref [ e ])

let insert ft e =
  match e.e_res with
  | Record k -> (
      match Hashtbl.find_opt ft.points k with
      | Some es -> es := e :: !es
      | None -> Hashtbl.replace ft.points k (ref [ e ]))
  | File | Generic _ | Range _ -> ft.ranged <- e :: ft.ranged

let same_resource a b =
  match (a, b) with
  | File, File -> true
  | Record x, Record y | Generic x, Generic y -> String.equal x y
  | Range (a1, a2), Range (b1, b2) -> String.equal a1 b1 && String.equal a2 b2
  | (File | Record _ | Generic _ | Range _), _ -> false

let acquire t ~tx ~file res mode =
  let s = Sim.stats t.sim in
  s.Stats.lock_requests <- s.Stats.lock_requests + 1;
  Sim.tick t.sim 5;
  let ft = file_table t file in
  let iv = interval res in
  let over = overlapping ft res iv in
  (* an existing identical lock held by tx? *)
  let own =
    List.find_opt (fun e -> e.e_tx = tx && same_resource e.e_res res) over
  in
  let conflicts =
    List.filter (fun e -> e.e_tx <> tx && modes_conflict e.e_mode mode) over
  in
  match conflicts with
  | [] -> (
      match own with
      | Some e ->
          (* re-grant; upgrade S -> X in place *)
          if mode = Exclusive && e.e_mode = Shared then begin
            e.e_mode <- Exclusive;
            notify_grant t ~tx ~file res Exclusive
          end;
          Granted
      | None ->
          let e = { e_tx = tx; e_file = file; e_res = res; e_iv = iv; e_mode = mode } in
          insert ft e;
          index_by_tx t e;
          Moncore.gauge_add (Sim.moncore t.sim) Moncore.G_locks 1;
          notify_grant t ~tx ~file res mode;
          Granted)
  | cs ->
      s.Stats.lock_conflicts <- s.Stats.lock_conflicts + 1;
      let blockers = List.sort_uniq compare (List.map (fun e -> e.e_tx) cs) in
      if Trace.enabled t.sim then
        Trace.instant t.sim ~cat:"lock"
          ~attrs:
            [
              ("file", Int file);
              ("res", Str (Format.asprintf "%a" pp_resource res));
              ("mode", Str (Format.asprintf "%a" pp_mode mode));
              ("blockers", Int (List.length blockers));
            ]
          "lock_conflict";
      Blocked blockers

let remove_entry t e =
  match Hashtbl.find_opt t.files e.e_file with
  | None -> ()
  | Some ft -> (
      match e.e_res with
      | Record k -> (
          match Hashtbl.find_opt ft.points k with
          | Some es ->
              es := List.filter (fun e' -> e' != e) !es;
              if !es = [] then Hashtbl.remove ft.points k
          | None -> ())
      | File | Generic _ | Range _ ->
          ft.ranged <- List.filter (fun e' -> e' != e) ft.ranged)

let release_all t ~tx =
  match Hashtbl.find_opt t.by_tx tx with
  | None -> ()
  | Some es ->
      List.iter (remove_entry t) !es;
      Moncore.gauge_add (Sim.moncore t.sim) Moncore.G_locks
        (-List.length !es);
      Hashtbl.remove t.by_tx tx

let clear_all t =
  let held =
    List.fold_left
      (fun acc (_, es) -> acc + List.length !es)
      0
      (Nsql_util.Tbl.sorted_bindings t.by_tx)
  in
  Moncore.gauge_add (Sim.moncore t.sim) Moncore.G_locks (-held);
  Hashtbl.reset t.files;
  Hashtbl.reset t.by_tx

let held t ~tx =
  match Hashtbl.find_opt t.by_tx tx with
  | Some es -> List.length !es
  | None -> 0

let total_locks t =
  List.fold_left
    (fun acc (_, es) -> acc + List.length !es)
    0
    (Nsql_util.Tbl.sorted_bindings t.by_tx)

(* A deterministic image of every granted lock, ordered by transaction id
   then grant order within the transaction. Used by takeover tests and by
   the denial path to learn which transactions held pre-takeover state. *)
let snapshot t =
  List.concat_map
    (fun (tx, es) ->
      List.rev_map (fun e -> (tx, e.e_file, e.e_res, e.e_mode)) !es)
    (Nsql_util.Tbl.sorted_bindings t.by_tx)

(* Rebuild the table from a grant log — takeover on the new primary. No
   stats, no ticks, no conflict checks: the log only ever contains grants
   that were legal when made, and replaying upgrades last keeps the final
   mode right (an S entry followed by an X entry for the same resource). *)
let restore t entries =
  List.iter
    (fun (tx, file, res, mode) ->
      let ft = file_table t file in
      let own =
        List.find_opt
          (fun e -> e.e_tx = tx && same_resource e.e_res res)
          (overlapping ft res (interval res))
      in
      match own with
      | Some e -> if mode = Exclusive then e.e_mode <- Exclusive
      | None ->
          let e =
            { e_tx = tx; e_file = file; e_res = res; e_iv = interval res;
              e_mode = mode }
          in
          insert ft e;
          index_by_tx t e;
          Moncore.gauge_add (Sim.moncore t.sim) Moncore.G_locks 1)
    entries

let holders t ~file res =
  let ft = file_table t file in
  let iv = interval res in
  List.sort_uniq compare
    (List.map (fun e -> e.e_tx) (overlapping ft res iv))

module Waitgraph = struct
  type g = (int, int list) Hashtbl.t

  let create () : g = Hashtbl.create 16

  (* Merge, don't replace: a waiter blocked by several holders (e.g. an
     S->X upgrade against multiple readers) has an edge to each of them,
     and edges accumulated across probes must all survive. Callers that
     want replace semantics clear first. *)
  let set_waiting g ~tx ~on =
    let existing = Option.value ~default:[] (Hashtbl.find_opt g tx) in
    Hashtbl.replace g tx (List.sort_uniq compare (existing @ on))

  let clear_waiting g ~tx = Hashtbl.remove g tx

  let clear g = Hashtbl.reset g

  let find_cycle g ~tx =
    (* DFS from tx following wait-for edges; a path back to tx is a cycle *)
    let rec dfs path visited node =
      if List.mem node path && node = tx then Some (List.rev path)
      else if List.mem node visited then None
      else
        let succs = Option.value ~default:[] (Hashtbl.find_opt g node) in
        let rec try_succs = function
          | [] -> None
          | s :: rest -> (
              if s = tx then Some (List.rev (node :: path))
              else
                match dfs (node :: path) (node :: visited) s with
                | Some c -> Some c
                | None -> try_succs rest)
        in
        try_succs succs
    in
    let succs = Option.value ~default:[] (Hashtbl.find_opt g tx) in
    let rec from = function
      | [] -> None
      | s :: rest -> (
          if s = tx then Some [ tx ]
          else
            match dfs [ tx ] [ tx ] s with
            | Some c -> Some c
            | None -> from rest)
    in
    from succs
end

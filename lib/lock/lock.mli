(** The Disk Process lock manager.

    Concurrency control for both SQL and ENSCRIBE data at the file, record,
    or generic (key-prefix) level, as in the paper. SQL's virtual sequential
    block buffering adds *virtual-block group locking*: the records of a
    virtual block are locked as a group, which this module models as a key
    {e range} lock.

    Every resource is internally an interval of the encoded-key space, so
    conflicts between the four granularities reduce to interval overlap:
    - a whole-file lock covers [LOW, HIGH];
    - a record lock covers exactly its key;
    - a generic lock covers every key with the given prefix;
    - a range (virtual-block group) lock covers [lo, hi).

    Acquisition is non-blocking: the caller receives [Granted] or
    [Blocked blockers] and decides whether to queue, retry, or abort; the
    {!Waitgraph} companion detects deadlocks among waiting transactions. *)

type mode = Shared | Exclusive

val pp_mode : Format.formatter -> mode -> unit

type resource =
  | File
  | Record of string  (** encoded primary key *)
  | Generic of string  (** encoded key prefix *)
  | Range of string * string  (** [lo, hi) in encoded-key space *)

val pp_resource : Format.formatter -> resource -> unit

type outcome = Granted | Blocked of int list  (** blocking transaction ids *)

type t

val create : Nsql_sim.Sim.t -> t

(** [acquire t ~tx ~file resource mode] requests a lock for transaction
    [tx] on [resource] of file [file]. Re-acquisition by the same holder is
    granted (including Shared-to-Exclusive upgrade when [tx] is the sole
    conflicting holder). *)
val acquire : t -> tx:int -> file:int -> resource -> mode -> outcome

(** [release_all t ~tx] drops every lock of [tx] (commit/abort time —
    two-phase locking releases nothing earlier). *)
val release_all : t -> tx:int -> unit

(** [clear_all t] empties the lock table — processor crash (lock state is
    volatile). *)
val clear_all : t -> unit

(** [held t ~tx] is the number of locks held by [tx]. *)
val held : t -> tx:int -> int

(** [total_locks t] is the total number of granted locks (for tests). *)
val total_locks : t -> int

(** [holders t ~file resource] lists transactions whose locks overlap
    [resource] (any mode). *)
val holders : t -> file:int -> resource -> int list

(** [set_grant_hook t hook] registers an observer called on every new grant
    and on every actual Shared-to-Exclusive upgrade (no-op re-grants are not
    reported). The process-pair checkpoint stream uses this to mirror the
    lock table onto the backup. [None] unregisters. *)
val set_grant_hook :
  t -> (tx:int -> file:int -> resource -> mode -> unit) option -> unit

(** [snapshot t] is a deterministic image of every granted lock as
    [(tx, file, resource, mode)], ordered by transaction id then grant
    order. *)
val snapshot : t -> (int * int * resource * mode) list

(** [restore t entries] rebuilds the table from a grant log (takeover on
    the new primary). Charges no statistics and no simulated time: the
    backup already paid for this state through the checkpoint stream. *)
val restore : t -> (int * int * resource * mode) list -> unit

(** {1 Wait-for graph} *)

module Waitgraph : sig
  type g

  val create : unit -> g

  (** [set_waiting g ~tx ~on] records that [tx] waits for the transactions
      [on], merging with any edges [tx] already has — a waiter blocked by
      several holders keeps an edge to each. Use {!clear_waiting} first for
      replace semantics (e.g. when a re-probe reports a fresh blocker
      set). *)
  val set_waiting : g -> tx:int -> on:int list -> unit

  (** [clear_waiting g ~tx] removes [tx]'s outgoing edges. *)
  val clear_waiting : g -> tx:int -> unit

  (** [clear g] removes every edge — processor crash (wait state is
      volatile, like the lock table itself). *)
  val clear : g -> unit

  (** [find_cycle g ~tx] returns a deadlock cycle through [tx], if any. *)
  val find_cycle : g -> tx:int -> int list option
end

(** The DebitCredit (TP1 / ET1) banking workload.

    The transaction profile of the NonStop SQL benchmark workbook: update
    an account balance, its teller and its branch, and append a history
    record. Implemented twice over the same logical schema:

    - {b SQL}: three UPDATE statements with update expressions plus one
      INSERT, executed by the SQL Executor — updates are delegated to the
      Disk Processes (no preliminary read);
    - {b ENSCRIBE}: the pre-existing record-at-a-time style — READ (lock),
      modify in the requester, REWRITE, for each of the three records,
      plus a WRITE to an entry-sequenced history file.

    Experiment E8 compares the two implementations' message, I/O and CPU
    costs per transaction. *)

module N = Nsql_core.Nonstop_sql

type sql_db

(** [setup_sql node ~accounts ~tellers ~branches] creates and loads the
    four tables through SQL DDL/DML. *)
val setup_sql :
  N.node -> accounts:int -> tellers:int -> branches:int ->
  (sql_db, Nsql_util.Errors.t) result

(** [run_sql_tx db session ~aid ~delta] runs one DebitCredit transaction
    through SQL. *)
val run_sql_tx :
  sql_db -> N.session -> aid:int -> delta:float ->
  (unit, Nsql_util.Errors.t) result

type enscribe_db

(** [setup_enscribe node ~accounts ~tellers ~branches] creates and loads
    the ENSCRIBE files (key-sequenced account/teller/branch,
    entry-sequenced history). *)
val setup_enscribe :
  N.node -> accounts:int -> tellers:int -> branches:int ->
  (enscribe_db, Nsql_util.Errors.t) result

(** [run_enscribe_tx node db ~aid ~delta] runs one transaction through the
    record-at-a-time interface. *)
val run_enscribe_tx :
  N.node -> enscribe_db -> aid:int -> delta:float ->
  (unit, Nsql_util.Errors.t) result

(** [sql_balances db session] is (sum of account balances, history count) —
    for consistency checks. *)
val sql_balances :
  sql_db -> N.session -> (float * int, Nsql_util.Errors.t) result

val enscribe_balances :
  N.node -> enscribe_db -> (float * int, Nsql_util.Errors.t) result

(** {1 Multi-terminal contention}

    DebitCredit proper cannot deadlock (every terminal acquires account,
    teller, branch in the same order), so contended runs use a {e transfer}
    variant: move money between two hot accounts (read-modify-rewrite both,
    source first) and append a history entry. Terminals pick crossed
    source/destination pairs, so concurrent sessions regularly lock the
    same two records in opposite orders — real wait-for cycles for the
    Disk Process deadlock detector. Run it with
    {!Nsql_sim.Config.t.dp_lock_wait} on to exercise the wait queues; with
    it off, every conflict is an immediate denial and the driver's
    abort/backoff/retry path carries all the load. *)

type transfer_db

(** [setup_transfer node ~accounts] creates and loads the hot account file
    (balances 1000.0 each) and the entry-sequenced history file. *)
val setup_transfer :
  N.node -> accounts:int -> (transfer_db, Nsql_util.Errors.t) result

type transfer_report = {
  x_committed : int;
  x_deadlock_aborts : int;  (** aborts after a [Deadlock] denial *)
  x_timeout_aborts : int;  (** aborts after a lock-wait budget expiry *)
  x_takeover_aborts : int;  (** aborts after a process-pair takeover denial *)
  x_retries : int;  (** re-runs after a retryable abort *)
  x_failed : int;  (** parameter sets abandoned (retry budget spent) *)
}

(** [run_transfers db ~terminals ~txs_per_terminal ()] round-robins
    [terminals] terminal state machines, each with at most one Disk
    Process interaction outstanding, until every terminal has finished
    [txs_per_terminal] parameter sets. Deterministic for a fixed
    configuration: terminal parameters are arithmetic in (terminal id,
    sequence number), and the driver advances whichever completion the
    message system resolves earliest. [on_commit] fires once per committed
    transfer with its parameters (e.g. to mirror into an oracle). A victim
    aborts, backs off for a bounded terminal-staggered delay on the
    simulated clock, then retries the same parameters up to
    [max_retries]. *)
val run_transfers :
  ?max_retries:int ->
  ?backoff_us:float ->
  ?on_commit:(src:int -> dst:int -> delta:float -> unit) ->
  transfer_db ->
  terminals:int ->
  txs_per_terminal:int ->
  unit ->
  transfer_report

(** [transfer_balances db] lists (account, balance) pairs, read lock-free —
    the post-run state an oracle compares against. *)
val transfer_balances :
  transfer_db -> ((int * float) list, Nsql_util.Errors.t) result

(** [transfer_balance_sum db] is the sum of account balances (lock-free
    reads): invariant under every committed transfer. *)
val transfer_balance_sum : transfer_db -> (float, Nsql_util.Errors.t) result

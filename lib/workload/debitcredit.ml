module N = Nsql_core.Nonstop_sql
module Row = Nsql_row.Row
module Fs = Nsql_fs.Fs
module Dp_msg = Nsql_dp.Dp_msg
module Enscribe = Nsql_enscribe.Enscribe
module Tmf = Nsql_tmf.Tmf
module Errors = Nsql_util.Errors

open Errors

(* 100-byte filler keeps record sizes in the era-typical range *)
let filler = String.make 96 'f'

type sql_db = { s_accounts : int; s_tellers : int; s_branches : int; mutable s_hid : int }

let setup_sql node ~accounts ~tellers ~branches =
  let s = N.session node in
  let ddl =
    [
      "CREATE TABLE account (aid INT PRIMARY KEY, bid INT NOT NULL, balance \
       FLOAT NOT NULL, filler CHAR(96) NOT NULL)";
      "CREATE TABLE teller (tid INT PRIMARY KEY, bid INT NOT NULL, balance \
       FLOAT NOT NULL, filler CHAR(96) NOT NULL)";
      "CREATE TABLE branch (bid INT PRIMARY KEY, balance FLOAT NOT NULL, \
       filler CHAR(96) NOT NULL)";
      "CREATE TABLE history (hid INT PRIMARY KEY, aid INT NOT NULL, tid INT \
       NOT NULL, bid INT NOT NULL, delta FLOAT NOT NULL, filler CHAR(96) NOT \
       NULL)";
    ]
  in
  let* () =
    Errors.list_iter
      (fun sql ->
        let* _ = N.exec s sql in
        Ok ())
      ddl
  in
  (* load through blocked inserts (programmatic; load is unmeasured) *)
  let load table rows mk =
    let* tbl = N.Catalog.find (N.catalog node) table in
    Tmf.run (N.tmf node) (fun tx ->
        let buf =
          Fs.open_insert_buffer (N.fs node) tbl.N.Catalog.t_file ~tx
            ~capacity:100
        in
        let rec go i =
          if i >= rows then Fs.flush_insert_buffer (N.fs node) buf
          else
            let* () = Fs.buffered_insert (N.fs node) buf (mk i) in
            go (i + 1)
        in
        go 0)
  in
  let* () =
    load "account" accounts (fun i ->
        [| Row.Vint i; Row.Vint (i mod branches); Row.Vfloat 1000.; Row.Vstr filler |])
  in
  let* () =
    load "teller" tellers (fun i ->
        [| Row.Vint i; Row.Vint (i mod branches); Row.Vfloat 1000.; Row.Vstr filler |])
  in
  let* () =
    load "branch" branches (fun i ->
        [| Row.Vint i; Row.Vfloat 1000.; Row.Vstr filler |])
  in
  Ok { s_accounts = accounts; s_tellers = tellers; s_branches = branches; s_hid = 0 }

let run_sql_tx db s ~aid ~delta =
  let tid = aid mod db.s_tellers in
  let bid = tid mod db.s_branches in
  let hid = db.s_hid in
  db.s_hid <- hid + 1;
  let stmts =
    [
      Printf.sprintf "UPDATE account SET balance = balance + %f WHERE aid = %d"
        delta aid;
      Printf.sprintf "UPDATE teller SET balance = balance + %f WHERE tid = %d"
        delta tid;
      Printf.sprintf "UPDATE branch SET balance = balance + %f WHERE bid = %d"
        delta bid;
      Printf.sprintf
        "INSERT INTO history VALUES (%d, %d, %d, %d, %f, '%s')" hid aid tid bid
        delta filler;
    ]
  in
  let* _ = N.exec s "BEGIN WORK" in
  let rec go = function
    | [] ->
        let* _ = N.exec s "COMMIT WORK" in
        Ok ()
    | sql :: rest -> (
        match N.exec s sql with
        | Ok _ -> go rest
        | Error e ->
            let* _ = N.exec s "ROLLBACK WORK" in
            Error e)
  in
  go stmts

let sql_balances db s =
  ignore db;
  let* rs = N.query s "SELECT SUM(balance) FROM account" in
  let* hist = N.query s "SELECT COUNT(*) FROM history" in
  match (rs.Nsql_sql.Executor.rows, hist.Nsql_sql.Executor.rows) with
  | [ [| Row.Vfloat sum |] ], [ [| Row.Vint n |] ] -> Ok (sum, n)
  | _ -> fail (Errors.Internal "unexpected balance query shape")

(* --- the ENSCRIBE implementation ------------------------------------------ *)

(* the application's own record layouts, encoded with the shared codec *)
let account_schema =
  Row.schema
    [|
      Row.column "aid" Row.T_int;
      Row.column "bid" Row.T_int;
      Row.column "balance" Row.T_float;
      Row.column "filler" (Row.T_char 96);
    |]
    ~key:[ "aid" ]

let branch_schema =
  Row.schema
    [|
      Row.column "bid" Row.T_int;
      Row.column "balance" Row.T_float;
      Row.column "filler" (Row.T_char 96);
    |]
    ~key:[ "bid" ]

let history_schema =
  Row.schema
    [|
      Row.column "hid" Row.T_int;
      Row.column "aid" Row.T_int;
      Row.column "tid" Row.T_int;
      Row.column "bid" Row.T_int;
      Row.column "delta" Row.T_float;
      Row.column "filler" (Row.T_char 96);
    |]
    ~key:[ "hid" ]

type enscribe_db = {
  e_account : Enscribe.handle;
  e_teller : Enscribe.handle;
  e_branch : Enscribe.handle;
  e_history : Enscribe.handle;
  e_accounts : int;
  e_tellers : int;
  e_branches : int;
  mutable e_hid : int;
}

let key_int schema i =
  match Row.key_of_values schema [ Row.Vint i ] with
  | Ok k -> k
  | Error e -> failwith (Errors.to_string e)

let setup_enscribe node ~accounts ~tellers ~branches =
  let fs = N.fs node in
  let dps = N.dps node in
  let dp i = dps.(i mod Array.length dps) in
  let mk name kind dpi =
    Fs.create_enscribe_file fs ~fname:name ~kind
      ~partitions:[ Fs.{ ps_lo = ""; ps_dp = dp dpi } ]
  in
  let* f_account = mk "ens_account" Dp_msg.K_key_sequenced 0 in
  let* f_teller = mk "ens_teller" Dp_msg.K_key_sequenced 1 in
  let* f_branch = mk "ens_branch" Dp_msg.K_key_sequenced 1 in
  let* f_history = mk "ens_history" Dp_msg.K_entry_sequenced 0 in
  let db =
    {
      e_account = Enscribe.open_file fs f_account ~sbb:false;
      e_teller = Enscribe.open_file fs f_teller ~sbb:false;
      e_branch = Enscribe.open_file fs f_branch ~sbb:false;
      e_history = Enscribe.open_file fs f_history ~sbb:false;
      e_accounts = accounts;
      e_tellers = tellers;
      e_branches = branches;
      e_hid = 0;
    }
  in
  (* load with record-at-a-time writes, the only interface ENSCRIBE has *)
  Tmf.run (N.tmf node) (fun tx ->
      let rec load_file n handle schema mk i =
        if i >= n then Ok ()
        else
          let row = mk i in
          let* () =
            Enscribe.write handle ~tx ~key:(Row.key_of_row schema row)
              ~record:(Row.encode schema row)
          in
          load_file n handle schema mk (i + 1)
      in
      let* () =
        load_file accounts db.e_account account_schema
          (fun i ->
            [| Row.Vint i; Row.Vint (i mod branches); Row.Vfloat 1000.; Row.Vstr filler |])
          0
      in
      let* () =
        load_file tellers db.e_teller account_schema
          (fun i ->
            [| Row.Vint i; Row.Vint (i mod branches); Row.Vfloat 1000.; Row.Vstr filler |])
          0
      in
      load_file branches db.e_branch branch_schema
        (fun i -> [| Row.Vint i; Row.Vfloat 1000.; Row.Vstr filler |])
        0)
  |> fun r ->
  match r with Ok () -> Ok db | Error e -> Error e

(* read-modify-rewrite of one float field: the message pattern the paper's
   update-expression delegation eliminates *)
let bump_balance handle schema ~tx ~key ~field ~delta =
  let* record = Enscribe.read handle ~tx ~key ~lock:Dp_msg.L_exclusive in
  let row = Row.decode_exn schema record in
  (match row.(field) with
  | Row.Vfloat b -> row.(field) <- Row.Vfloat (b +. delta)
  | _ -> ());
  Enscribe.rewrite handle ~tx ~key ~record:(Row.encode schema row)

let run_enscribe_tx node db ~aid ~delta =
  let tid = aid mod db.e_tellers in
  let bid = tid mod db.e_branches in
  let hid = db.e_hid in
  db.e_hid <- hid + 1;
  Tmf.run (N.tmf node) (fun tx ->
      let* () =
        bump_balance db.e_account account_schema ~tx
          ~key:(key_int account_schema aid) ~field:2 ~delta
      in
      let* () =
        bump_balance db.e_teller account_schema ~tx
          ~key:(key_int account_schema tid) ~field:2 ~delta
      in
      let* () =
        bump_balance db.e_branch branch_schema ~tx
          ~key:(key_int branch_schema bid) ~field:1 ~delta
      in
      let hrow =
        [| Row.Vint hid; Row.Vint aid; Row.Vint tid; Row.Vint bid;
           Row.Vfloat delta; Row.Vstr filler |]
      in
      (* history is entry-sequenced: insert at EOF *)
      Enscribe.write db.e_history ~tx ~key:""
        ~record:(Row.encode history_schema hrow))

let enscribe_balances node db =
  Tmf.run (N.tmf node) (fun tx ->
      Enscribe.keyposition db.e_account ~key:"";
      let rec sum acc =
        let* entry = Enscribe.readnext db.e_account ~tx ~lock:Dp_msg.L_none in
        match entry with
        | None -> Ok acc
        | Some (_, record) -> (
            let row = Row.decode_exn account_schema record in
            match row.(2) with
            | Row.Vfloat b -> sum (acc +. b)
            | _ -> sum acc)
      in
      let* total = sum 0. in
      Ok (total, db.e_hid))

(* --- multi-terminal contention (transfer) driver --------------------------- *)

module Msg = Nsql_msg.Msg
module Dp = Nsql_dp.Dp
module Sim = Nsql_sim.Sim
module Moncore = Nsql_sim.Moncore

(* DebitCredit proper cannot deadlock: every terminal touches account,
   teller, branch in the same order, and reads take the lock it will
   write under. Contended runs therefore use a *transfer* variant — move
   [delta] from a source account to a destination account (read-modify-
   rewrite both, source first) and append a history entry. Terminals pick
   crossed source/destination pairs from a small hot set, so two sessions
   regularly acquire the same two records in opposite orders: a genuine
   wait-for cycle for the Disk Process to detect. Every committed
   transfer conserves the sum of account balances, which gives runs an
   end-of-run invariant independent of interleaving. *)

type transfer_db = {
  c_node : N.node;
  c_adp : Dp.t;  (** volume hosting the hot account file *)
  c_hdp : Dp.t;  (** volume hosting the history file *)
  c_afile : int;
  c_hfile : int;
  c_accounts : int;
}

let setup_transfer node ~accounts =
  if accounts < 2 then invalid_arg "setup_transfer: accounts < 2";
  let fs = N.fs node in
  let dps = N.dps node in
  let adp = dps.(0) and hdp = dps.(1 mod Array.length dps) in
  let* f_account =
    Fs.create_enscribe_file fs ~fname:"xfer_account"
      ~kind:Dp_msg.K_key_sequenced
      ~partitions:[ Fs.{ ps_lo = ""; ps_dp = adp } ]
  in
  let* _f_history =
    Fs.create_enscribe_file fs ~fname:"xfer_history"
      ~kind:Dp_msg.K_entry_sequenced
      ~partitions:[ Fs.{ ps_lo = ""; ps_dp = hdp } ]
  in
  let* () =
    Tmf.run (N.tmf node) (fun tx ->
        let rec go i =
          if i >= accounts then Ok ()
          else
            let row =
              [| Row.Vint i; Row.Vint 0; Row.Vfloat 1000.; Row.Vstr filler |]
            in
            let* () =
              Fs.insert fs f_account ~tx
                ~key:(key_int account_schema i)
                ~record:(Row.encode account_schema row)
            in
            go (i + 1)
        in
        go 0)
  in
  (* the Disk Process knows each single-partition file as "<fname>#p0" *)
  let fid dp name =
    match Dp.file_id dp (name ^ "#p0") with
    | Some id -> Ok id
    | None -> fail (Errors.Internal ("setup_transfer: missing file " ^ name))
  in
  let* c_afile = fid adp "xfer_account" in
  let* c_hfile = fid hdp "xfer_history" in
  Ok { c_node = node; c_adp = adp; c_hdp = hdp; c_afile; c_hfile;
       c_accounts = accounts }

type transfer_report = {
  x_committed : int;
  x_deadlock_aborts : int;
  x_timeout_aborts : int;
  x_takeover_aborts : int;
  x_retries : int;
  x_failed : int;
}

(* a terminal is an explicit state machine: at most one Disk Process
   interaction outstanding, advanced by the driver loop when its reply
   arrives — possibly long after it was sent, if the request sat on a
   lock wait queue *)
type phase = P_read_src | P_write_src | P_read_dst | P_write_dst | P_append

type terminal = {
  t_id : int;
  mutable t_done : int;  (** parameter sets finished (committed or given up) *)
  mutable t_seq : int;  (** parameter-set counter, drives the arithmetic *)
  mutable t_tx : int;
  mutable t_phase : phase;
  mutable t_pending : Msg.completion option;
  mutable t_src : int;
  mutable t_dst : int;
  mutable t_delta : float;
  mutable t_attempt : int;  (** aborts of the current parameter set *)
  mutable t_ready_at : float;  (** earliest simulated time to (re)start *)
  mutable t_started_at : float;  (** first attempt of the parameter set *)
}

let run_transfers ?(max_retries = 25) ?(backoff_us = 300.) ?on_commit db
    ~terminals ~txs_per_terminal () =
  if terminals < 1 then invalid_arg "run_transfers: terminals < 1";
  let node = db.c_node in
  let sim = N.sim node and msys = N.msys node and tmf = N.tmf node in
  let from = N.app_processor node in
  let committed = ref 0 and deadlocks = ref 0 and timeouts = ref 0 in
  let takeover_aborts = ref 0 and retries = ref 0 and failures = ref 0 in
  let send_dp dp req =
    Msg.send_nowait msys ~from ~tag:(Dp_msg.tag req) (Dp.endpoint dp)
      (Dp_msg.encode_request req)
  in
  let hot = db.c_accounts in
  (* deterministic crossed pairs: adjacent hot accounts, direction
     alternating with terminal parity, so concurrent terminals regularly
     lock the same pair in opposite orders *)
  let params t =
    let a = (t.t_id + t.t_seq) mod hot in
    let b = (a + 1) mod hot in
    let src, dst = if t.t_id land 1 = 0 then (a, b) else (b, a) in
    t.t_src <- src;
    t.t_dst <- dst;
    t.t_delta <- float_of_int (1 + ((t.t_seq * 7) + (t.t_id * 3)) mod 50)
  in
  let bump record delta =
    let row = Row.decode_exn account_schema record in
    (match row.(2) with
    | Row.Vfloat b -> row.(2) <- Row.Vfloat (b +. delta)
    | _ -> ());
    Row.encode account_schema row
  in
  let history_record t =
    Row.encode history_schema
      [| Row.Vint ((t.t_id * 1_000_000) + t.t_seq); Row.Vint t.t_src;
         Row.Vint 0; Row.Vint t.t_dst; Row.Vfloat t.t_delta; Row.Vstr filler |]
  in
  let read_account t aid =
    send_dp db.c_adp
      (Dp_msg.R_read
         { file = db.c_afile; tx = t.t_tx; key = key_int account_schema aid;
           lock = Dp_msg.L_exclusive })
  in
  let write_account t aid record =
    send_dp db.c_adp
      (Dp_msg.R_update
         { file = db.c_afile; tx = t.t_tx; key = key_int account_schema aid;
           record })
  in
  let start t =
    if t.t_attempt = 0 then begin
      params t;
      t.t_started_at <- Sim.now sim
    end;
    t.t_tx <- Tmf.begin_tx tmf;
    t.t_phase <- P_read_src;
    t.t_pending <- Some (read_account t t.t_src)
  in
  (* terminal-perceived transfer latency, retries and backoffs included *)
  let observe_transfer t =
    Moncore.observe (Sim.moncore sim) "transfer" (Sim.now sim -. t.t_started_at)
  in
  let give_up t =
    incr failures;
    observe_transfer t;
    t.t_done <- t.t_done + 1;
    t.t_seq <- t.t_seq + 1;
    t.t_attempt <- 0;
    t.t_ready_at <- Sim.now sim
  in
  (* the session-side half of victim abort: release our locks (waking the
     competitors we deadlocked with), then back off for a bounded,
     terminal-staggered time before retrying the same parameters *)
  let abort_terminal t e =
    (match Tmf.abort tmf ~tx:t.t_tx with
    | Ok () -> ()
    | Error e' -> Errors.fatal ("transfer abort: " ^ Errors.to_string e'));
    t.t_tx <- 0;
    let retryable =
      match e with
      | Errors.Deadlock _ ->
          incr deadlocks;
          true
      | Errors.Lock_timeout _ ->
          incr timeouts;
          true
      | Errors.Takeover _ ->
          (* the request was lost to a process-pair takeover: nothing was
             acknowledged, so re-running the parameter set is safe *)
          incr takeover_aborts;
          true
      | _ -> false
    in
    if not retryable then give_up t
    else if t.t_attempt >= max_retries then give_up t
    else begin
      incr retries;
      t.t_attempt <- t.t_attempt + 1;
      t.t_ready_at <-
        Sim.now sim
        +. (backoff_us *. (2. ** float_of_int (min t.t_attempt 6)))
        +. (float_of_int t.t_id *. backoff_us /. 4.)
    end
  in
  let commit_terminal t =
    match Tmf.commit tmf ~tx:t.t_tx with
    | Ok () ->
        t.t_tx <- 0;
        incr committed;
        observe_transfer t;
        (match on_commit with
        | Some f -> f ~src:t.t_src ~dst:t.t_dst ~delta:t.t_delta
        | None -> ());
        t.t_done <- t.t_done + 1;
        t.t_seq <- t.t_seq + 1;
        t.t_attempt <- 0;
        t.t_ready_at <- Sim.now sim
    | Error e -> abort_terminal t e
  in
  let advance t reply =
    match (reply : Dp_msg.reply) with
    | Dp_msg.Rp_error e -> abort_terminal t e
    | reply -> (
        match (t.t_phase, reply) with
        | P_read_src, Dp_msg.Rp_record { record; _ } ->
            t.t_phase <- P_write_src;
            t.t_pending <-
              Some (write_account t t.t_src (bump record (-.t.t_delta)))
        | P_write_src, Dp_msg.Rp_ok ->
            t.t_phase <- P_read_dst;
            t.t_pending <- Some (read_account t t.t_dst)
        | P_read_dst, Dp_msg.Rp_record { record; _ } ->
            t.t_phase <- P_write_dst;
            t.t_pending <- Some (write_account t t.t_dst (bump record t.t_delta))
        | P_write_dst, Dp_msg.Rp_ok ->
            t.t_phase <- P_append;
            t.t_pending <-
              Some
                (send_dp db.c_hdp
                   (Dp_msg.R_entry_append
                      { file = db.c_hfile; tx = t.t_tx;
                        record = history_record t }))
        | P_append, Dp_msg.Rp_slot _ -> commit_terminal t
        | _ -> Errors.fatal "transfer driver: reply does not match phase")
  in
  let terms =
    Array.init terminals (fun i ->
        { t_id = i; t_done = 0; t_seq = 0; t_tx = 0; t_phase = P_read_src;
          t_pending = None; t_src = 0; t_dst = 0; t_delta = 0.;
          t_attempt = 0; t_ready_at = 0.; t_started_at = 0. })
  in
  let undone t = t.t_done < txs_per_terminal in
  let rec loop () =
    (* start every idle, ready terminal, in terminal order *)
    Array.iter
      (fun t ->
        if undone t && t.t_pending = None && t.t_ready_at <= Sim.now sim then
          start t)
      terms;
    let pend =
      Array.to_list terms |> List.filter (fun t -> t.t_pending <> None)
    in
    if pend <> [] then begin
      let cs = List.map (fun t -> Option.get t.t_pending) pend in
      let which, payload = Msg.await_any msys cs in
      let t = List.nth pend which in
      t.t_pending <- None;
      (match Dp_msg.decode_reply payload with
      | Ok reply -> advance t reply
      | Error e ->
          Errors.fatal
            ("transfer driver: " ^ Dp_msg.decode_error_to_string e));
      loop ()
    end
    else if Array.exists undone terms then begin
      (* everyone unfinished is backing off; jump to the earliest restart *)
      let next =
        Array.fold_left
          (fun acc t -> if undone t then min acc t.t_ready_at else acc)
          infinity terms
      in
      Moncore.with_cat (Sim.moncore sim) Moncore.C_await (fun () ->
          Sim.wait_until sim next);
      loop ()
    end
  in
  loop ();
  {
    x_committed = !committed;
    x_deadlock_aborts = !deadlocks;
    x_timeout_aborts = !timeouts;
    x_takeover_aborts = !takeover_aborts;
    x_retries = !retries;
    x_failed = !failures;
  }

(* per-account balances, read lock-free outside any transaction — the
   post-run state an oracle compares against *)
let transfer_balances db =
  let node = db.c_node in
  let msys = N.msys node and from = N.app_processor node in
  let rec go i acc =
    if i >= db.c_accounts then Ok (List.rev acc)
    else
      let req =
        Dp_msg.R_read
          { file = db.c_afile; tx = 0; key = key_int account_schema i;
            lock = Dp_msg.L_none }
      in
      let payload =
        Msg.send msys ~from ~tag:(Dp_msg.tag req) (Dp.endpoint db.c_adp)
          (Dp_msg.encode_request req)
      in
      match Dp_msg.decode_reply payload with
      | Ok (Dp_msg.Rp_record { record; _ }) -> (
          match (Row.decode_exn account_schema record).(2) with
          | Row.Vfloat b -> go (i + 1) ((i, b) :: acc)
          | _ -> fail (Errors.Internal "transfer: non-float balance"))
      | Ok (Dp_msg.Rp_error e) -> Error e
      | Ok _ -> fail (Errors.Internal "unexpected reply to READ")
      | Error e -> fail (Errors.Internal (Dp_msg.decode_error_to_string e))
  in
  go 0 []

(* sum of account balances: invariant under every committed transfer *)
let transfer_balance_sum db =
  let* balances = transfer_balances db in
  Ok (List.fold_left (fun acc (_, b) -> acc +. b) 0. balances)

(* Batch helpers for the push-based executor: operators hand each other
   row *arrays* (one FS-DP reply buffer's worth) and loop tightly inside,
   instead of paying a closure call and a list cons per record at every
   operator boundary. The helpers are deliberately allocation-conscious:
   [filter] counts then blits, [buf] grows geometrically. *)

let empty : Row.row array = [||]

(* growable output buffer for operators whose output cardinality is not
   known up front (joins, filters over concatenations) *)
type buf = { mutable data : Row.row array; mutable len : int }

let empty_row : Row.row = [||]

let buf capacity = { data = Array.make (max capacity 1) empty_row; len = 0 }

let length b = b.len

let push b (x : Row.row) =
  if b.len = Array.length b.data then begin
    let bigger = Array.make (2 * Array.length b.data) empty_row in
    Array.blit b.data 0 bigger 0 b.len;
    b.data <- bigger
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let contents b = Array.sub b.data 0 b.len

(* [filter p batch] keeps the rows satisfying [p], preserving order, with
   one predicate evaluation per row; the common all-pass case returns the
   input array unchanged *)
let filter p (batch : Row.row array) =
  let n = Array.length batch in
  let rec first_fail i =
    if i >= n then n else if p batch.(i) then first_fail (i + 1) else i
  in
  let i0 = first_fail 0 in
  if i0 = n then batch
  else begin
    let out = Array.make (n - 1) empty_row in
    Array.blit batch 0 out 0 i0;
    let j = ref i0 in
    for i = i0 + 1 to n - 1 do
      if p batch.(i) then begin
        out.(!j) <- batch.(i);
        incr j
      end
    done;
    Array.sub out 0 !j
  end

let map = Array.map

(* [concat batches] flattens a batch list (in order) into one array *)
let concat (batches : Row.row array list) =
  match batches with
  | [] -> empty
  | [ b ] -> b
  | batches -> Array.concat batches

let total_rows batches =
  List.fold_left (fun n b -> n + Array.length b) 0 batches

let to_list (batch : Row.row array) = Array.to_list batch

let list_of_batches batches =
  List.concat_map Array.to_list batches

let of_list (rows : Row.row list) = Array.of_list rows

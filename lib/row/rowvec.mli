(** Row-batch helpers for the push-based executor.

    Operators exchange row arrays — each one FS-DP reply buffer's worth of
    rows (the VSBB reply is the natural batch unit) — and loop tightly
    inside an operator instead of paying a closure call and a list cons
    per record at every operator boundary. *)

val empty : Row.row array

(** {1 Growable output buffer}

    For operators whose output cardinality is unknown up front (joins,
    filters over concatenations). Amortized O(1) push, geometric growth. *)

type buf

val buf : int -> buf

val length : buf -> int

val push : buf -> Row.row -> unit

(** [contents b] is the pushed rows, in push order. *)
val contents : buf -> Row.row array

(** {1 Batch transforms} *)

(** [filter p batch] keeps rows satisfying [p] in order; returns the
    input array itself when every row passes. *)
val filter : (Row.row -> bool) -> Row.row array -> Row.row array

val map : (Row.row -> Row.row) -> Row.row array -> Row.row array

(** [concat batches] flattens a batch list (in order) into one array. *)
val concat : Row.row array list -> Row.row array

val total_rows : Row.row array list -> int

val to_list : Row.row array -> Row.row list

val list_of_batches : Row.row array list -> Row.row list

val of_list : Row.row list -> Row.row array

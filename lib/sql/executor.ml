module Row = Nsql_row.Row
module Rowvec = Nsql_row.Rowvec
module Expr = Nsql_expr.Expr
module Fs = Nsql_fs.Fs
module Dp_msg = Nsql_dp.Dp_msg
module Fastsort = Nsql_sort.Fastsort
module Errors = Nsql_util.Errors
module Sim = Nsql_sim.Sim
module Config = Nsql_sim.Config
module Trace = Nsql_trace.Trace

open Errors
open Planner

type ctx = {
  fs : Fs.t;
  sim : Sim.t;
  tx : int;
  read_lock : Dp_msg.lock_mode;
}

type rowset = { cols : string list; rows : Row.row list }

let pp_rowset ppf rs =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " rs.cols);
  List.iter (fun row -> Format.fprintf ppf "%a@," Row.pp_row row) rs.rows;
  Format.fprintf ppf "(%d rows)@]" (List.length rs.rows)

(* The executor has two engines over the same FS traffic:

   - the batched engine (default, [Config.exec_batch]): each FS-DP reply
     buffer flows through the operator chain as one row array, with tight
     loops inside every operator and no per-record closures across
     operator boundaries;
   - the pull engine: the original row-at-a-time reference path, kept for
     A/B runs and as the regression gate.

   Both produce byte-identical rowsets, message traffic, counters and
   simulated clock (test-enforced): the batch boundary is the reply buffer
   the pull path was already draining, and aggregated per-row CPU charges
   fire the same simulation events at the same times as the interleaved
   per-row charges they replace. *)

(* --- pull engine: base-table row streams ----------------------------------- *)

(* pull all rows of the first table's access path *)
let scan_table1 ctx (plan : select_plan) =
  let tbl = plan.p_table in
  match plan.p_access with
  | Ap_primary { access; range; pred; proj } ->
      let sc =
        Fs.open_scan ctx.fs tbl.Catalog.t_file ~tx:ctx.tx ~access ~range ?pred
          ?proj ~lock:ctx.read_lock ()
      in
      (* close on every exit — error or raise — since leaving the scan open
         would also leave its SCB and span open *)
      let rec go acc =
        match Fs.scan_next ctx.fs sc with
        | Ok (Some row) -> go (row :: acc)
        | Ok None -> Ok (List.rev acc)
        | Error e -> Error e
      in
      Fun.protect
        ~finally:(fun () -> Fs.close_scan ctx.fs sc)
        (fun () -> go [])
  | Ap_index { index; range; ipred; residual } ->
      let* next, close =
        Fs.index_scan ctx.fs tbl.Catalog.t_file ~tx:ctx.tx ~index ~range
          ?pred:ipred ~lock:ctx.read_lock ()
      in
      let rec go acc =
        let* row = next () in
        match row with
        | None -> Ok (List.rev acc)
        | Some row ->
            let keep =
              match residual with None -> true | Some p -> Expr.eval_pred row p
            in
            go (if keep then row :: acc else acc)
      in
      (* close on every exit, like the primary path: a raise mid-decode
         must not leak the index scan's SCB and span *)
      Fun.protect ~finally:close (fun () -> go [])

let scan_table0 ctx (plan : select_plan) =
  if not (Trace.enabled ctx.sim) then scan_table1 ctx plan
  else begin
    let tbl = plan.p_table in
    let path =
      match plan.p_access with
      | Ap_primary _ -> "primary"
      | Ap_index { index; _ } -> "index:" ^ index
    in
    let sp =
      Trace.begin_span ctx.sim ~cat:"op"
        ~attrs:
          [ ("table", Trace.Str tbl.Catalog.t_name); ("path", Trace.Str path) ]
        ("scan " ^ tbl.Catalog.t_name)
    in
    Fun.protect
      ~finally:(fun () -> Trace.finish ctx.sim sp)
      (fun () ->
        let res = scan_table1 ctx plan in
        (match res with
        | Ok rows -> Trace.add_attr sp "rows_out" (Trace.Int (List.length rows))
        | Error _ -> ());
        res)
  end

(* one nested-loop / keyed join step: extend each prefix row *)
let join_step1 ctx prefix_rows step =
  let tbl = step.j_table in
  let schema = tbl.Catalog.t_schema in
  match step.j_inner with
  | Ji_keyed { key_exprs } ->
      (* point read per outer row *)
      let* joined =
        Errors.list_map
          (fun prefix ->
            let values = List.map (fun e -> Expr.eval prefix e) key_exprs in
            if List.exists (fun v -> v = Row.Null) values then Ok []
            else
              let* key = Row.key_of_values schema values in
              match
                Fs.read ctx.fs tbl.Catalog.t_file ~tx:ctx.tx ~key
                  ~lock:ctx.read_lock
              with
              | Ok record ->
                  let inner = Row.decode_exn schema record in
                  Ok [ Array.append prefix inner ]
              | Error (Errors.Not_found_key _) -> Ok []
              | Error e -> Error e)
          prefix_rows
      in
      Ok (List.concat joined)
  | Ji_scan { pred } ->
      (* rescan the inner per outer row, with the inner-only predicate
         delegated to the Disk Process — and its primary-key conjuncts
         turned into the scan range, so the rescan touches only the
         qualifying span *)
      let range, pred =
        match pred with
        | None -> (Expr.full_range, None)
        | Some p -> (
            match Expr.extract_key_range schema p with
            | range, residual -> (range, residual))
      in
      let* joined =
        Errors.list_map
          (fun prefix ->
            let sc =
              Fs.open_scan ctx.fs tbl.Catalog.t_file ~tx:ctx.tx
                ~access:Fs.A_vsbb ~range ?pred ~lock:ctx.read_lock ()
            in
            let rec go acc =
              match Fs.scan_next ctx.fs sc with
              | Ok (Some inner) -> go (Array.append prefix inner :: acc)
              | Ok None -> Ok (List.rev acc)
              | Error e -> Error e
            in
            Fun.protect
              ~finally:(fun () -> Fs.close_scan ctx.fs sc)
              (fun () -> go []))
          prefix_rows
      in
      Ok (List.concat joined)

let join_step ctx prefix_rows step =
  if not (Trace.enabled ctx.sim) then join_step1 ctx prefix_rows step
  else begin
    let tbl = step.j_table in
    let kind =
      match step.j_inner with Ji_keyed _ -> "keyed" | Ji_scan _ -> "scan"
    in
    let sp =
      Trace.begin_span ctx.sim ~cat:"op"
        ~attrs:
          [
            ("table", Trace.Str tbl.Catalog.t_name);
            ("kind", Trace.Str kind);
            ("rows_in", Trace.Int (List.length prefix_rows));
          ]
        ("join " ^ tbl.Catalog.t_name)
    in
    Fun.protect
      ~finally:(fun () -> Trace.finish ctx.sim sp)
      (fun () ->
        let res = join_step1 ctx prefix_rows step in
        (match res with
        | Ok rows -> Trace.add_attr sp "rows_out" (Trace.Int (List.length rows))
        | Error _ -> ());
        res)
  end

let apply_post step rows =
  match step.j_post with
  | None -> rows
  | Some p -> List.filter (fun row -> Expr.eval_pred row p) rows

(* --- aggregation ---------------------------------------------------------------

   The client-side group path and the pushed-down path (Disk Process
   partials combined with [Dp_msg.merge_acc]) use the same accumulators,
   so both produce identical values and group order. *)

let finish_spec spec acc = Dp_msg.finish_acc spec.Dp_msg.ag_kind acc

let group_rows1 ctx (g : group_spec) rows =
  let specs = List.map dp_agg_spec g.g_aggs in
  let table = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun row ->
      Sim.tick ctx.sim 5;
      let keys = List.map (fun k -> Expr.eval row k) g.g_keys in
      let kenc =
        let w = Nsql_util.Codec.writer () in
        Row.encode_values w (Array.of_list keys);
        Nsql_util.Codec.contents w
      in
      let accs =
        match Hashtbl.find_opt table kenc with
        | Some (_, accs) -> accs
        | None ->
            let accs = List.map (fun _ -> Dp_msg.fresh_acc ()) specs in
            Hashtbl.replace table kenc (keys, accs);
            order := kenc :: !order;
            accs
      in
      List.iter2 (fun spec acc -> Dp_msg.feed_spec acc spec row) specs accs)
    rows;
  (* a grand aggregate over zero rows still yields one row *)
  if Hashtbl.length table = 0 && g.g_keys = [] then begin
    let accs = List.map (fun _ -> Dp_msg.fresh_acc ()) specs in
    Hashtbl.replace table "" ([], accs);
    order := [ "" ]
  end;
  let output =
    List.rev_map
      (fun kenc ->
        let keys, accs = Hashtbl.find table kenc in
        Array.of_list (keys @ List.map2 finish_spec specs accs))
      !order
  in
  match g.g_having with
  | None -> output
  | Some h -> List.filter (fun row -> Expr.eval_pred row h) output

let group_rows ctx (g : group_spec) rows =
  if not (Trace.enabled ctx.sim) then group_rows1 ctx g rows
  else begin
    let sp =
      Trace.begin_span ctx.sim ~cat:"op"
        ~attrs:
          [
            ("rows_in", Trace.Int (List.length rows));
            ("keys", Trace.Int (List.length g.g_keys));
          ]
        "group"
    in
    Fun.protect
      ~finally:(fun () -> Trace.finish ctx.sim sp)
      (fun () ->
        let out = group_rows1 ctx g rows in
        Trace.add_attr sp "rows_out" (Trace.Int (List.length out));
        out)
  end

(* --- sort / project / limit ------------------------------------------------------ *)

let sort_rows1 ctx order rows =
  if order = [] then rows
  else begin
    let decorated =
      List.map (fun row -> (List.map (fun (e, _) -> Expr.eval row e) order, row)) rows
    in
    let compare_rows (ka, _) (kb, _) =
      let rec go ks (specs : (Expr.t * bool) list) =
        match (ks, specs) with
        | (a, b) :: rest, (_, desc) :: specs ->
            let c = Row.compare_value a b in
            if c <> 0 then if desc then -c else c else go rest specs
        | _ -> 0
      in
      go (List.combine ka kb) order
    in
    let sorted, _stats = Fastsort.sort ctx.sim ~compare:compare_rows decorated in
    List.map snd sorted
  end

let sort_rows ctx order rows =
  if order = [] || not (Trace.enabled ctx.sim) then sort_rows1 ctx order rows
  else begin
    let sp =
      Trace.begin_span ctx.sim ~cat:"op"
        ~attrs:[ ("rows", Trace.Int (List.length rows)) ]
        "sort"
    in
    Fun.protect
      ~finally:(fun () -> Trace.finish ctx.sim sp)
      (fun () -> sort_rows1 ctx order rows)
  end

let project rows exprs =
  List.map (fun row -> Array.of_list (List.map (fun e -> Expr.eval row e) exprs)) rows

(* order-preserving de-duplication on encoded output rows *)
let distinct rows =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun row ->
      let w = Nsql_util.Codec.writer () in
      Row.encode_values w row;
      let k = Nsql_util.Codec.contents w in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    rows

let limit n rows =
  match n with
  | None -> rows
  | Some n ->
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | x :: rest -> x :: take (k - 1) rest
      in
      take n rows

(* --- entry points ------------------------------------------------------------------ *)

(* pushed-down aggregation: no scan — one AGGREGATE re-drive chain per
   partition, the File System merges partials, and the group-output rows
   (keys then finished aggregate values, in first-seen = key order) are
   identical to what [group_rows] would have produced *)
let pushdown_group_rows1 ctx (plan : select_plan) (g : group_spec)
    (ap : agg_pushdown) =
  let* groups =
    Fs.aggregate ctx.fs plan.p_table.Catalog.t_file ~tx:ctx.tx
      ~range:ap.ap_range ?pred:ap.ap_pred ~group_keys:ap.ap_group_keys
      ~aggs:ap.ap_aggs ~lock:ctx.read_lock ()
  in
  let rows =
    List.map
      (fun (keyvals, accs) ->
        Sim.tick ctx.sim 2;
        Array.append keyvals
          (Array.of_list (List.map2 finish_spec ap.ap_aggs accs)))
      groups
  in
  (* a grand aggregate over zero rows still yields one row *)
  let rows =
    if rows = [] && Array.length ap.ap_group_keys = 0 then
      [
        Array.of_list
          (List.map (fun spec -> finish_spec spec (Dp_msg.fresh_acc ())) ap.ap_aggs);
      ]
    else rows
  in
  match g.g_having with
  | None -> Ok rows
  | Some h -> Ok (List.filter (fun row -> Expr.eval_pred row h) rows)

let pushdown_group_rows ctx (plan : select_plan) (g : group_spec)
    (ap : agg_pushdown) =
  if not (Trace.enabled ctx.sim) then pushdown_group_rows1 ctx plan g ap
  else begin
    let sp =
      Trace.begin_span ctx.sim ~cat:"op"
        ~attrs:
          [
            ("table", Trace.Str plan.p_table.Catalog.t_name);
            ("keys", Trace.Int (Array.length ap.ap_group_keys));
          ]
        ("group-pushdown " ^ plan.p_table.Catalog.t_name)
    in
    Fun.protect
      ~finally:(fun () -> Trace.finish ctx.sim sp)
      (fun () ->
        let res = pushdown_group_rows1 ctx plan g ap in
        (match res with
        | Ok rows -> Trace.add_attr sp "rows_out" (Trace.Int (List.length rows))
        | Error _ -> ());
        res)
  end

let run_select_pull ctx (plan : select_plan) =
  let* rows =
    match (plan.p_group, plan.p_pushdown) with
    | Some g, Some ap -> pushdown_group_rows ctx plan g ap
    | _ ->
        let* rows = scan_table0 ctx plan in
        let* rows =
          let rec steps rows = function
            | [] -> Ok rows
            | step :: rest ->
                let* joined = join_step ctx rows step in
                steps (apply_post step joined) rest
          in
          steps rows plan.p_joins
        in
        Ok
          (match plan.p_group with
          | Some g -> group_rows ctx g rows
          | None -> rows)
  in
  let rows = sort_rows ctx plan.p_order rows in
  let emit () =
    let rows = project rows plan.p_exprs in
    let rows = if plan.p_distinct then distinct rows else rows in
    let rows = limit plan.p_limit rows in
    Sim.tick ctx.sim (2 * List.length rows);
    rows
  in
  let rows =
    if not (Trace.enabled ctx.sim) then emit ()
    else begin
      let sp =
        Trace.begin_span ctx.sim ~cat:"op"
          ~attrs:[ ("rows_in", Trace.Int (List.length rows)) ]
          "emit"
      in
      Fun.protect
        ~finally:(fun () -> Trace.finish ctx.sim sp)
        (fun () ->
          let rows = emit () in
          Trace.add_attr sp "rows_out" (Trace.Int (List.length rows));
          rows)
    end
  in
  Ok { cols = plan.p_names; rows }

(* === batched engine ==========================================================

   Operators consume and emit row batches; each batch is one FS-DP reply
   buffer (as the pull path would have drained it). Per-row CPU charges
   are applied once per batch in aggregate where the interleaved work is
   pure OCaml, and re-applied per row exactly where the pull path put them
   when a per-row message follows (keyed joins, index base reads) — see
   [Fs.scan_next_batch] for the contract. *)

(* a traced operator span around [f], sharing the pull engine's span
   names/attrs so profiles are comparable across engines *)
let op_span ctx name attrs f =
  if not (Trace.enabled ctx.sim) then f (fun _ -> ())
  else begin
    let sp = Trace.begin_span ctx.sim ~cat:"op" ~attrs name in
    Fun.protect
      ~finally:(fun () -> Trace.finish ctx.sim sp)
      (fun () -> f (fun out -> List.iter (fun (k, v) -> Trace.add_attr sp k v) out))
  end

(* scan the first table's access path as a list of batches, in order *)
let scan_batches1 ctx (plan : select_plan) =
  let tbl = plan.p_table in
  match plan.p_access with
  | Ap_primary { access; range; pred; proj } ->
      let sc =
        Fs.open_scan ctx.fs tbl.Catalog.t_file ~tx:ctx.tx ~access ~range ?pred
          ?proj ~lock:ctx.read_lock ()
      in
      let rec go acc =
        match Fs.scan_next_batch ctx.fs sc with
        | Ok (Some batch) ->
            Nsql_sim.Moncore.observe (Sim.moncore ctx.sim) "batch_rows"
              (float_of_int (Array.length batch));
            go (batch :: acc)
        | Ok None -> Ok (List.rev acc)
        | Error e -> Error e
      in
      Fun.protect
        ~finally:(fun () -> Fs.close_scan ctx.fs sc)
        (fun () -> go [])
  | Ap_index { index; range; ipred; residual } ->
      let* next_batch, close =
        Fs.index_scan_batch ctx.fs tbl.Catalog.t_file ~tx:ctx.tx ~index ~range
          ?pred:ipred ~lock:ctx.read_lock ()
      in
      (* the residual filter runs here, a batch at a time *)
      let rec go acc =
        let* batch = next_batch () in
        match batch with
        | None -> Ok (List.rev acc)
        | Some batch ->
            Nsql_sim.Moncore.observe (Sim.moncore ctx.sim) "batch_rows"
              (float_of_int (Array.length batch));
            let batch =
              match residual with
              | None -> batch
              | Some p -> Rowvec.filter (fun row -> Expr.eval_pred row p) batch
            in
            go (if Array.length batch = 0 then acc else batch :: acc)
      in
      Fun.protect ~finally:close (fun () -> go [])

let scan_batches ctx (plan : select_plan) =
  let tbl = plan.p_table in
  let path =
    match plan.p_access with
    | Ap_primary _ -> "primary"
    | Ap_index { index; _ } -> "index:" ^ index
  in
  op_span ctx
    ("scan " ^ tbl.Catalog.t_name)
    [ ("table", Trace.Str tbl.Catalog.t_name); ("path", Trace.Str path) ]
    (fun note ->
      let res = scan_batches1 ctx plan in
      (match res with
      | Ok batches ->
          note
            [
              ("rows_out", Trace.Int (Rowvec.total_rows batches));
              ("batches", Trace.Int (List.length batches));
            ]
      | Error _ -> ());
      res)

(* one join step over a batch of prefix rows *)
let join_batch ctx step batch =
  let tbl = step.j_table in
  let schema = tbl.Catalog.t_schema in
  match step.j_inner with
  | Ji_keyed { key_exprs } ->
      (* point read per outer row: the tick/message interleaving is
         per-row by nature, so only the operator boundary is batched *)
      let out = Rowvec.buf (Array.length batch) in
      let n = Array.length batch in
      let rec go i =
        if i >= n then Ok (Rowvec.contents out)
        else begin
          let prefix = batch.(i) in
          let values = List.map (fun e -> Expr.eval prefix e) key_exprs in
          if List.exists (fun v -> v = Row.Null) values then go (i + 1)
          else
            let* key = Row.key_of_values schema values in
            match
              Fs.read ctx.fs tbl.Catalog.t_file ~tx:ctx.tx ~key
                ~lock:ctx.read_lock
            with
            | Ok record ->
                Rowvec.push out (Array.append prefix (Row.decode_exn schema record));
                go (i + 1)
            | Error (Errors.Not_found_key _) -> go (i + 1)
            | Error e -> Error e
        end
      in
      go 0
  | Ji_scan { pred } ->
      let range, pred =
        match pred with
        | None -> (Expr.full_range, None)
        | Some p -> (
            match Expr.extract_key_range schema p with
            | range, residual -> (range, residual))
      in
      let out = Rowvec.buf (max 1 (Array.length batch)) in
      let n = Array.length batch in
      let rec go i =
        if i >= n then Ok (Rowvec.contents out)
        else begin
          let prefix = batch.(i) in
          let sc =
            Fs.open_scan ctx.fs tbl.Catalog.t_file ~tx:ctx.tx ~access:Fs.A_vsbb
              ~range ?pred ~lock:ctx.read_lock ()
          in
          let rec drain () =
            match Fs.scan_next_batch ctx.fs sc with
            | Ok (Some inner) ->
                Array.iter (fun r -> Rowvec.push out (Array.append prefix r)) inner;
                drain ()
            | Ok None -> Ok ()
            | Error e -> Error e
          in
          let* () =
            Fun.protect ~finally:(fun () -> Fs.close_scan ctx.fs sc) drain
          in
          go (i + 1)
        end
      in
      go 0

let apply_post_batches step batches =
  match step.j_post with
  | None -> batches
  | Some p ->
      List.filter_map
        (fun batch ->
          let batch = Rowvec.filter (fun row -> Expr.eval_pred row p) batch in
          if Array.length batch = 0 then None else Some batch)
        batches

let join_batches ctx batches step =
  let tbl = step.j_table in
  let kind =
    match step.j_inner with Ji_keyed _ -> "keyed" | Ji_scan _ -> "scan"
  in
  op_span ctx
    ("join " ^ tbl.Catalog.t_name)
    [
      ("table", Trace.Str tbl.Catalog.t_name);
      ("kind", Trace.Str kind);
      ("rows_in", Trace.Int (Rowvec.total_rows batches));
    ]
    (fun note ->
      let res = Errors.list_map (join_batch ctx step) batches in
      (match res with
      | Ok out -> note [ ("rows_out", Trace.Int (Rowvec.total_rows out)) ]
      | Error _ -> ());
      res)

(* Group identity in the batched engine: the pull path encodes every
   row's key values to a byte string; for non-float keys structural
   equality coincides with encoding equality (the codec is canonical for
   Null/Vint/Vbool/Vstr), so the values themselves can key the hash table
   and the per-row writer allocation and encode disappear. Floats keep
   the encoded form: [-0. = 0.] and NaN make structural and encoded
   equality disagree, and group identity must match the pull engine's
   exactly. *)
type gkey =
  | K_val of Row.value  (** single non-float key, the common case *)
  | K_vals of Row.value list
  | K_row of Row.row
  | K_enc of string

let gkey_of keys =
  if List.exists (function Row.Vfloat _ -> true | _ -> false) keys then
    K_enc
      (let w = Nsql_util.Codec.writer () in
       Row.encode_values w (Array.of_list keys);
       Nsql_util.Codec.contents w)
  else K_vals keys

(* batched group/aggregate: one aggregated tick per batch, then a tight
   feed loop — same accumulators and group order as the pull path *)
let group_batches1 ctx (g : group_spec) batches =
  let specs = List.map dp_agg_spec g.g_aggs in
  let table : (gkey, Row.value list * Dp_msg.agg_acc list) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  let feeds = List.map Dp_msg.feeder specs in
  let fresh gk keys =
    let accs = List.map (fun _ -> Dp_msg.fresh_acc ()) specs in
    Hashtbl.replace table gk (keys, accs);
    order := gk :: !order;
    accs
  in
  let feed row accs = List.iter2 (fun f acc -> f acc row) feeds accs in
  (match g.g_keys with
  | [ k ] ->
      (* single group key: the key value itself is the group identity —
         no per-row list, no encode *)
      List.iter
        (fun batch ->
          let n = Array.length batch in
          if n > 0 then Sim.tick ctx.sim (5 * n);
          for i = 0 to n - 1 do
            let row = batch.(i) in
            let v = Expr.eval row k in
            let gk =
              match v with Row.Vfloat _ -> gkey_of [ v ] | _ -> K_val v
            in
            let accs =
              match Hashtbl.find table gk with
              | _, accs -> accs
              | exception Not_found -> fresh gk [ v ]
            in
            feed row accs
          done)
        batches
  | _ ->
      List.iter
        (fun batch ->
          let n = Array.length batch in
          if n > 0 then Sim.tick ctx.sim (5 * n);
          for i = 0 to n - 1 do
            let row = batch.(i) in
            let keys = List.map (fun key -> Expr.eval row key) g.g_keys in
            let gk = gkey_of keys in
            let accs =
              match Hashtbl.find table gk with
              | _, accs -> accs
              | exception Not_found -> fresh gk keys
            in
            feed row accs
          done)
        batches);
  (* a grand aggregate over zero rows still yields one row *)
  if Hashtbl.length table = 0 && g.g_keys = [] then begin
    let accs = List.map (fun _ -> Dp_msg.fresh_acc ()) specs in
    Hashtbl.replace table (K_vals []) ([], accs);
    order := [ K_vals [] ]
  end;
  let output =
    List.rev_map
      (fun gk ->
        let keys, accs = Hashtbl.find table gk in
        Array.of_list (keys @ List.map2 finish_spec specs accs))
      !order
  in
  match g.g_having with
  | None -> output
  | Some h -> List.filter (fun row -> Expr.eval_pred row h) output

let group_batches ctx (g : group_spec) batches =
  op_span ctx "group"
    [
      ("rows_in", Trace.Int (Rowvec.total_rows batches));
      ("keys", Trace.Int (List.length g.g_keys));
    ]
    (fun note ->
      let out = group_batches1 ctx g batches in
      note [ ("rows_out", Trace.Int (List.length out)) ];
      out)

let sort_batches ctx order batches =
  if order = [] then batches
  else begin
    (* sorting needs the whole input anyway: concatenate once and reuse
       the pull path's Fastsort (same simulated sort cost on the same
       input) *)
    let sort () =
      [ Rowvec.of_list (sort_rows1 ctx order (Rowvec.list_of_batches batches)) ]
    in
    if not (Trace.enabled ctx.sim) then sort ()
    else
      op_span ctx "sort"
        [ ("rows", Trace.Int (Rowvec.total_rows batches)) ]
        (fun _ -> sort ())
  end

(* order-preserving de-duplication, array-in array-out; same identity
   fast path as the batched group (floats fall back to the encoding) *)
let distinct_batch rows =
  let seen : (gkey, unit) Hashtbl.t = Hashtbl.create 64 in
  Rowvec.filter
    (fun row ->
      let k =
        if Array.exists (function Row.Vfloat _ -> true | _ -> false) row then
          K_enc
            (let w = Nsql_util.Codec.writer () in
             Row.encode_values w row;
             Nsql_util.Codec.contents w)
        else K_row row
      in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    rows

let emit_batches ctx (plan : select_plan) batches =
  op_span ctx "emit"
    [ ("rows_in", Trace.Int (Rowvec.total_rows batches)) ]
    (fun note ->
      let exprs = Array.of_list plan.p_exprs in
      let projected =
        List.map
          (Rowvec.map (fun row -> Array.map (fun e -> Expr.eval row e) exprs))
          batches
      in
      let rows = Rowvec.concat projected in
      let rows = if plan.p_distinct then distinct_batch rows else rows in
      let rows =
        match plan.p_limit with
        | Some n when Array.length rows > n -> Array.sub rows 0 n
        | _ -> rows
      in
      Sim.tick ctx.sim (2 * Array.length rows);
      note [ ("rows_out", Trace.Int (Array.length rows)) ];
      Rowvec.to_list rows)

let run_select_batched ctx (plan : select_plan) =
  let* batches =
    match (plan.p_group, plan.p_pushdown) with
    | Some g, Some ap ->
        (* the pushed-down path is already set-oriented end to end; its
           group-output rows form the single source batch *)
        let* rows = pushdown_group_rows ctx plan g ap in
        Ok [ Rowvec.of_list rows ]
    | _ ->
        let* batches = scan_batches ctx plan in
        let* batches =
          let rec steps batches = function
            | [] -> Ok batches
            | step :: rest ->
                let* joined = join_batches ctx batches step in
                steps (apply_post_batches step joined) rest
          in
          steps batches plan.p_joins
        in
        Ok
          (match plan.p_group with
          | Some g -> [ Rowvec.of_list (group_batches ctx g batches) ]
          | None -> batches)
  in
  let batches = sort_batches ctx plan.p_order batches in
  Ok { cols = plan.p_names; rows = emit_batches ctx plan batches }

let run_select ctx (plan : select_plan) =
  if (Sim.config ctx.sim).Config.exec_batch then run_select_batched ctx plan
  else run_select_pull ctx plan

let traced_dml ctx name table f =
  if not (Trace.enabled ctx.sim) then f ()
  else begin
    let sp =
      Trace.begin_span ctx.sim ~cat:"op"
        ~attrs:[ ("table", Trace.Str table) ]
        (name ^ " " ^ table)
    in
    Fun.protect
      ~finally:(fun () -> Trace.finish ctx.sim sp)
      (fun () ->
        let res = f () in
        (match res with
        | Ok n -> Trace.add_attr sp "rows" (Trace.Int n)
        | Error _ -> ());
        res)
  end

let run_update ctx (plan : update_plan) =
  traced_dml ctx "update" plan.up_table.Catalog.t_name (fun () ->
      Fs.update_subset ctx.fs plan.up_table.Catalog.t_file ~tx:ctx.tx
        ~range:plan.up_range ?pred:plan.up_pred plan.up_assignments)

let run_delete ctx (plan : delete_plan) =
  traced_dml ctx "delete" plan.dp_table.Catalog.t_name (fun () ->
      Fs.delete_subset ctx.fs plan.dp_table.Catalog.t_file ~tx:ctx.tx
        ~range:plan.dp_range ?pred:plan.dp_pred ())

let run_insert0 ctx (tbl : Catalog.table) ~cols values =
  let schema = tbl.Catalog.t_schema in
  let width = Array.length schema.Row.cols in
  let* positions =
    match cols with
    | None -> Ok None
    | Some names ->
        let* ps = Errors.list_map (Row.field_number schema) names in
        Ok (Some ps)
  in
  let build literals =
    match positions with
    | None ->
        if List.length literals <> width then
          fail
            (Errors.Type_error
               (Printf.sprintf "INSERT supplies %d values for %d columns"
                  (List.length literals) width))
        else Ok (Array.of_list (List.map Binder.lit_value literals))
    | Some ps ->
        if List.length literals <> List.length ps then
          fail (Errors.Type_error "INSERT column/value count mismatch")
        else begin
          let row = Array.make width Row.Null in
          List.iter2
            (fun p l -> row.(p) <- Binder.lit_value l)
            ps literals;
          Ok row
        end
  in
  let rec go n = function
    | [] -> Ok n
    | literals :: rest ->
        let* row = build literals in
        let* () = Fs.insert_row ctx.fs tbl.Catalog.t_file ~tx:ctx.tx row in
        go (n + 1) rest
  in
  go 0 values

let run_insert ctx (tbl : Catalog.table) ~cols values =
  traced_dml ctx "insert" tbl.Catalog.t_name (fun () ->
      run_insert0 ctx tbl ~cols values)

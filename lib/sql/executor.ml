module Row = Nsql_row.Row
module Expr = Nsql_expr.Expr
module Fs = Nsql_fs.Fs
module Dp_msg = Nsql_dp.Dp_msg
module Fastsort = Nsql_sort.Fastsort
module Errors = Nsql_util.Errors
module Sim = Nsql_sim.Sim
module Trace = Nsql_trace.Trace

open Errors
open Planner

type ctx = {
  fs : Fs.t;
  sim : Sim.t;
  tx : int;
  read_lock : Dp_msg.lock_mode;
}

type rowset = { cols : string list; rows : Row.row list }

let pp_rowset ppf rs =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " rs.cols);
  List.iter (fun row -> Format.fprintf ppf "%a@," Row.pp_row row) rs.rows;
  Format.fprintf ppf "(%d rows)@]" (List.length rs.rows)

(* --- base-table row streams -------------------------------------------------- *)

(* pull all rows of the first table's access path *)
let scan_table1 ctx (plan : select_plan) =
  let tbl = plan.p_table in
  match plan.p_access with
  | Ap_primary { access; range; pred; proj } ->
      let sc =
        Fs.open_scan ctx.fs tbl.Catalog.t_file ~tx:ctx.tx ~access ~range ?pred
          ?proj ~lock:ctx.read_lock ()
      in
      (* close on every exit — error or raise — since leaving the scan open
         would also leave its SCB and span open *)
      let rec go acc =
        match Fs.scan_next ctx.fs sc with
        | Ok (Some row) -> go (row :: acc)
        | Ok None -> Ok (List.rev acc)
        | Error e -> Error e
      in
      Fun.protect
        ~finally:(fun () -> Fs.close_scan ctx.fs sc)
        (fun () -> go [])
  | Ap_index { index; range; ipred; residual } ->
      let* next, close =
        Fs.index_scan ctx.fs tbl.Catalog.t_file ~tx:ctx.tx ~index ~range
          ?pred:ipred ~lock:ctx.read_lock ()
      in
      let rec go acc =
        let* row = next () in
        match row with
        | None -> Ok (List.rev acc)
        | Some row ->
            let keep =
              match residual with None -> true | Some p -> Expr.eval_pred row p
            in
            go (if keep then row :: acc else acc)
      in
      let res = go [] in
      close ();
      res

let scan_table0 ctx (plan : select_plan) =
  if not (Trace.enabled ctx.sim) then scan_table1 ctx plan
  else begin
    let tbl = plan.p_table in
    let path =
      match plan.p_access with
      | Ap_primary _ -> "primary"
      | Ap_index { index; _ } -> "index:" ^ index
    in
    let sp =
      Trace.begin_span ctx.sim ~cat:"op"
        ~attrs:
          [ ("table", Trace.Str tbl.Catalog.t_name); ("path", Trace.Str path) ]
        ("scan " ^ tbl.Catalog.t_name)
    in
    Fun.protect
      ~finally:(fun () -> Trace.finish ctx.sim sp)
      (fun () ->
        let res = scan_table1 ctx plan in
        (match res with
        | Ok rows -> Trace.add_attr sp "rows_out" (Trace.Int (List.length rows))
        | Error _ -> ());
        res)
  end

(* one nested-loop / keyed join step: extend each prefix row *)
let join_step1 ctx prefix_rows step =
  let tbl = step.j_table in
  let schema = tbl.Catalog.t_schema in
  match step.j_inner with
  | Ji_keyed { key_exprs } ->
      (* point read per outer row *)
      let* joined =
        Errors.list_map
          (fun prefix ->
            let values = List.map (fun e -> Expr.eval prefix e) key_exprs in
            if List.exists (fun v -> v = Row.Null) values then Ok []
            else
              let* key = Row.key_of_values schema values in
              match
                Fs.read ctx.fs tbl.Catalog.t_file ~tx:ctx.tx ~key
                  ~lock:ctx.read_lock
              with
              | Ok record ->
                  let inner = Row.decode_exn schema record in
                  Ok [ Array.append prefix inner ]
              | Error (Errors.Not_found_key _) -> Ok []
              | Error e -> Error e)
          prefix_rows
      in
      Ok (List.concat joined)
  | Ji_scan { pred } ->
      (* rescan the inner per outer row, with the inner-only predicate
         delegated to the Disk Process — and its primary-key conjuncts
         turned into the scan range, so the rescan touches only the
         qualifying span *)
      let range, pred =
        match pred with
        | None -> (Expr.full_range, None)
        | Some p -> (
            match Expr.extract_key_range schema p with
            | range, residual -> (range, residual))
      in
      let* joined =
        Errors.list_map
          (fun prefix ->
            let sc =
              Fs.open_scan ctx.fs tbl.Catalog.t_file ~tx:ctx.tx
                ~access:Fs.A_vsbb ~range ?pred ~lock:ctx.read_lock ()
            in
            let rec go acc =
              match Fs.scan_next ctx.fs sc with
              | Ok (Some inner) -> go (Array.append prefix inner :: acc)
              | Ok None -> Ok (List.rev acc)
              | Error e -> Error e
            in
            Fun.protect
              ~finally:(fun () -> Fs.close_scan ctx.fs sc)
              (fun () -> go []))
          prefix_rows
      in
      Ok (List.concat joined)

let join_step ctx prefix_rows step =
  if not (Trace.enabled ctx.sim) then join_step1 ctx prefix_rows step
  else begin
    let tbl = step.j_table in
    let kind =
      match step.j_inner with Ji_keyed _ -> "keyed" | Ji_scan _ -> "scan"
    in
    let sp =
      Trace.begin_span ctx.sim ~cat:"op"
        ~attrs:
          [
            ("table", Trace.Str tbl.Catalog.t_name);
            ("kind", Trace.Str kind);
            ("rows_in", Trace.Int (List.length prefix_rows));
          ]
        ("join " ^ tbl.Catalog.t_name)
    in
    Fun.protect
      ~finally:(fun () -> Trace.finish ctx.sim sp)
      (fun () ->
        let res = join_step1 ctx prefix_rows step in
        (match res with
        | Ok rows -> Trace.add_attr sp "rows_out" (Trace.Int (List.length rows))
        | Error _ -> ());
        res)
  end

let apply_post step rows =
  match step.j_post with
  | None -> rows
  | Some p -> List.filter (fun row -> Expr.eval_pred row p) rows

(* --- aggregation ---------------------------------------------------------------

   The client-side group path and the pushed-down path (Disk Process
   partials combined with [Dp_msg.merge_acc]) use the same accumulators,
   so both produce identical values and group order. *)

let finish_spec spec acc = Dp_msg.finish_acc spec.Dp_msg.ag_kind acc

let group_rows1 ctx (g : group_spec) rows =
  let specs = List.map dp_agg_spec g.g_aggs in
  let table = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun row ->
      Sim.tick ctx.sim 5;
      let keys = List.map (fun k -> Expr.eval row k) g.g_keys in
      let kenc =
        let w = Nsql_util.Codec.writer () in
        Row.encode_values w (Array.of_list keys);
        Nsql_util.Codec.contents w
      in
      let accs =
        match Hashtbl.find_opt table kenc with
        | Some (_, accs) -> accs
        | None ->
            let accs = List.map (fun _ -> Dp_msg.fresh_acc ()) specs in
            Hashtbl.replace table kenc (keys, accs);
            order := kenc :: !order;
            accs
      in
      List.iter2 (fun spec acc -> Dp_msg.feed_spec acc spec row) specs accs)
    rows;
  (* a grand aggregate over zero rows still yields one row *)
  if Hashtbl.length table = 0 && g.g_keys = [] then begin
    let accs = List.map (fun _ -> Dp_msg.fresh_acc ()) specs in
    Hashtbl.replace table "" ([], accs);
    order := [ "" ]
  end;
  let output =
    List.rev_map
      (fun kenc ->
        let keys, accs = Hashtbl.find table kenc in
        Array.of_list (keys @ List.map2 finish_spec specs accs))
      !order
  in
  match g.g_having with
  | None -> output
  | Some h -> List.filter (fun row -> Expr.eval_pred row h) output

let group_rows ctx (g : group_spec) rows =
  if not (Trace.enabled ctx.sim) then group_rows1 ctx g rows
  else begin
    let sp =
      Trace.begin_span ctx.sim ~cat:"op"
        ~attrs:
          [
            ("rows_in", Trace.Int (List.length rows));
            ("keys", Trace.Int (List.length g.g_keys));
          ]
        "group"
    in
    Fun.protect
      ~finally:(fun () -> Trace.finish ctx.sim sp)
      (fun () ->
        let out = group_rows1 ctx g rows in
        Trace.add_attr sp "rows_out" (Trace.Int (List.length out));
        out)
  end

(* --- sort / project / limit ------------------------------------------------------ *)

let sort_rows1 ctx order rows =
  if order = [] then rows
  else begin
    let decorated =
      List.map (fun row -> (List.map (fun (e, _) -> Expr.eval row e) order, row)) rows
    in
    let compare_rows (ka, _) (kb, _) =
      let rec go ks (specs : (Expr.t * bool) list) =
        match (ks, specs) with
        | (a, b) :: rest, (_, desc) :: specs ->
            let c = Row.compare_value a b in
            if c <> 0 then if desc then -c else c else go rest specs
        | _ -> 0
      in
      go (List.combine ka kb) order
    in
    let sorted, _stats = Fastsort.sort ctx.sim ~compare:compare_rows decorated in
    List.map snd sorted
  end

let sort_rows ctx order rows =
  if order = [] || not (Trace.enabled ctx.sim) then sort_rows1 ctx order rows
  else begin
    let sp =
      Trace.begin_span ctx.sim ~cat:"op"
        ~attrs:[ ("rows", Trace.Int (List.length rows)) ]
        "sort"
    in
    Fun.protect
      ~finally:(fun () -> Trace.finish ctx.sim sp)
      (fun () -> sort_rows1 ctx order rows)
  end

let project rows exprs =
  List.map (fun row -> Array.of_list (List.map (fun e -> Expr.eval row e) exprs)) rows

(* order-preserving de-duplication on encoded output rows *)
let distinct rows =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun row ->
      let w = Nsql_util.Codec.writer () in
      Row.encode_values w row;
      let k = Nsql_util.Codec.contents w in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    rows

let limit n rows =
  match n with
  | None -> rows
  | Some n ->
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | x :: rest -> x :: take (k - 1) rest
      in
      take n rows

(* --- entry points ------------------------------------------------------------------ *)

(* pushed-down aggregation: no scan — one AGGREGATE re-drive chain per
   partition, the File System merges partials, and the group-output rows
   (keys then finished aggregate values, in first-seen = key order) are
   identical to what [group_rows] would have produced *)
let pushdown_group_rows1 ctx (plan : select_plan) (g : group_spec)
    (ap : agg_pushdown) =
  let* groups =
    Fs.aggregate ctx.fs plan.p_table.Catalog.t_file ~tx:ctx.tx
      ~range:ap.ap_range ?pred:ap.ap_pred ~group_keys:ap.ap_group_keys
      ~aggs:ap.ap_aggs ~lock:ctx.read_lock ()
  in
  let rows =
    List.map
      (fun (keyvals, accs) ->
        Sim.tick ctx.sim 2;
        Array.append keyvals
          (Array.of_list (List.map2 finish_spec ap.ap_aggs accs)))
      groups
  in
  (* a grand aggregate over zero rows still yields one row *)
  let rows =
    if rows = [] && Array.length ap.ap_group_keys = 0 then
      [
        Array.of_list
          (List.map (fun spec -> finish_spec spec (Dp_msg.fresh_acc ())) ap.ap_aggs);
      ]
    else rows
  in
  match g.g_having with
  | None -> Ok rows
  | Some h -> Ok (List.filter (fun row -> Expr.eval_pred row h) rows)

let pushdown_group_rows ctx (plan : select_plan) (g : group_spec)
    (ap : agg_pushdown) =
  if not (Trace.enabled ctx.sim) then pushdown_group_rows1 ctx plan g ap
  else begin
    let sp =
      Trace.begin_span ctx.sim ~cat:"op"
        ~attrs:
          [
            ("table", Trace.Str plan.p_table.Catalog.t_name);
            ("keys", Trace.Int (Array.length ap.ap_group_keys));
          ]
        ("group-pushdown " ^ plan.p_table.Catalog.t_name)
    in
    Fun.protect
      ~finally:(fun () -> Trace.finish ctx.sim sp)
      (fun () ->
        let res = pushdown_group_rows1 ctx plan g ap in
        (match res with
        | Ok rows -> Trace.add_attr sp "rows_out" (Trace.Int (List.length rows))
        | Error _ -> ());
        res)
  end

let run_select ctx (plan : select_plan) =
  let* rows =
    match (plan.p_group, plan.p_pushdown) with
    | Some g, Some ap -> pushdown_group_rows ctx plan g ap
    | _ ->
        let* rows = scan_table0 ctx plan in
        let* rows =
          let rec steps rows = function
            | [] -> Ok rows
            | step :: rest ->
                let* joined = join_step ctx rows step in
                steps (apply_post step joined) rest
          in
          steps rows plan.p_joins
        in
        Ok
          (match plan.p_group with
          | Some g -> group_rows ctx g rows
          | None -> rows)
  in
  let rows = sort_rows ctx plan.p_order rows in
  let emit () =
    let rows = project rows plan.p_exprs in
    let rows = if plan.p_distinct then distinct rows else rows in
    let rows = limit plan.p_limit rows in
    Sim.tick ctx.sim (2 * List.length rows);
    rows
  in
  let rows =
    if not (Trace.enabled ctx.sim) then emit ()
    else begin
      let sp =
        Trace.begin_span ctx.sim ~cat:"op"
          ~attrs:[ ("rows_in", Trace.Int (List.length rows)) ]
          "emit"
      in
      Fun.protect
        ~finally:(fun () -> Trace.finish ctx.sim sp)
        (fun () ->
          let rows = emit () in
          Trace.add_attr sp "rows_out" (Trace.Int (List.length rows));
          rows)
    end
  in
  Ok { cols = plan.p_names; rows }

let traced_dml ctx name table f =
  if not (Trace.enabled ctx.sim) then f ()
  else begin
    let sp =
      Trace.begin_span ctx.sim ~cat:"op"
        ~attrs:[ ("table", Trace.Str table) ]
        (name ^ " " ^ table)
    in
    Fun.protect
      ~finally:(fun () -> Trace.finish ctx.sim sp)
      (fun () ->
        let res = f () in
        (match res with
        | Ok n -> Trace.add_attr sp "rows" (Trace.Int n)
        | Error _ -> ());
        res)
  end

let run_update ctx (plan : update_plan) =
  traced_dml ctx "update" plan.up_table.Catalog.t_name (fun () ->
      Fs.update_subset ctx.fs plan.up_table.Catalog.t_file ~tx:ctx.tx
        ~range:plan.up_range ?pred:plan.up_pred plan.up_assignments)

let run_delete ctx (plan : delete_plan) =
  traced_dml ctx "delete" plan.dp_table.Catalog.t_name (fun () ->
      Fs.delete_subset ctx.fs plan.dp_table.Catalog.t_file ~tx:ctx.tx
        ~range:plan.dp_range ?pred:plan.dp_pred ())

let run_insert0 ctx (tbl : Catalog.table) ~cols values =
  let schema = tbl.Catalog.t_schema in
  let width = Array.length schema.Row.cols in
  let* positions =
    match cols with
    | None -> Ok None
    | Some names ->
        let* ps = Errors.list_map (Row.field_number schema) names in
        Ok (Some ps)
  in
  let build literals =
    match positions with
    | None ->
        if List.length literals <> width then
          fail
            (Errors.Type_error
               (Printf.sprintf "INSERT supplies %d values for %d columns"
                  (List.length literals) width))
        else Ok (Array.of_list (List.map Binder.lit_value literals))
    | Some ps ->
        if List.length literals <> List.length ps then
          fail (Errors.Type_error "INSERT column/value count mismatch")
        else begin
          let row = Array.make width Row.Null in
          List.iter2
            (fun p l -> row.(p) <- Binder.lit_value l)
            ps literals;
          Ok row
        end
  in
  let rec go n = function
    | [] -> Ok n
    | literals :: rest ->
        let* row = build literals in
        let* () = Fs.insert_row ctx.fs tbl.Catalog.t_file ~tx:ctx.tx row in
        go (n + 1) rest
  in
  go 0 values

let run_insert ctx (tbl : Catalog.table) ~cols values =
  traced_dml ctx "insert" tbl.Catalog.t_name (fun () ->
      run_insert0 ctx tbl ~cols values)

module Fs = Nsql_fs.Fs
module Row = Nsql_row.Row
module Expr = Nsql_expr.Expr
module Errors = Nsql_util.Errors

open Errors

type table = { t_name : string; t_file : Fs.file; t_schema : Row.schema }

type t = {
  fs : Fs.t;
  dps : Nsql_dp.Dp.t array;
  tables : (string, table) Hashtbl.t;
  mutable next_dp : int;
}

let create fs ~dps =
  if Array.length dps = 0 then invalid_arg "Catalog.create: no disk processes";
  { fs; dps; tables = Hashtbl.create 16; next_dp = 0 }

let fs t = t.fs

let canonical name = String.lowercase_ascii name

let register t name file =
  let name = canonical name in
  if Hashtbl.mem t.tables name then fail (Errors.File_exists name)
  else
    match Fs.file_schema file with
    | None -> fail (Errors.Bad_request (name ^ ": not a SQL file"))
    | Some schema ->
        Hashtbl.replace t.tables name
          { t_name = name; t_file = file; t_schema = schema };
        Ok ()

let find t name =
  match Hashtbl.find_opt t.tables (canonical name) with
  | Some tbl -> Ok tbl
  | None -> fail (Errors.Name_error ("unknown table " ^ name))

let table_names t = List.map fst (Nsql_util.Tbl.sorted_bindings t.tables)

let create_table t ~name ~schema ?check () =
  let name = canonical name in
  if Hashtbl.mem t.tables name then fail (Errors.File_exists name)
  else begin
    let dp = t.dps.(t.next_dp mod Array.length t.dps) in
    t.next_dp <- t.next_dp + 1;
    let* file =
      Fs.create_file t.fs ~fname:name ~schema ?check
        ~partitions:[ Fs.{ ps_lo = ""; ps_dp = dp } ]
        ~indexes:[] ()
    in
    let tbl = { t_name = name; t_file = file; t_schema = schema } in
    Hashtbl.replace t.tables name tbl;
    Ok tbl
  end

let drop_table t name =
  let name = canonical name in
  if Hashtbl.mem t.tables name then begin
    Hashtbl.remove t.tables name;
    Ok ()
  end
  else fail (Errors.Name_error ("unknown table " ^ name))

let create_index t ~tx ~table ~index ~cols =
  let* tbl = find t table in
  let* col_nums =
    Errors.list_map (fun c -> Row.field_number tbl.t_schema c) cols
  in
  let dp = t.dps.(t.next_dp mod Array.length t.dps) in
  t.next_dp <- t.next_dp + 1;
  let* file =
    Fs.add_index t.fs tbl.t_file ~tx
      Fs.{ is_name = canonical index; is_cols = col_nums; is_dp = dp }
  in
  Hashtbl.replace t.tables tbl.t_name { tbl with t_file = file };
  Ok ()

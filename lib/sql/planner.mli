(** The SQL compiler: produces execution plans in terms of File System
    operations.

    Faithful to the paper's architecture, the compiler reduces every
    statement to {e single-variable queries}: per-table conjuncts of the
    WHERE clause are lowered to the expression language and attached to
    the table's access path, where the File System will ship them to Disk
    Processes; a primary-key (or secondary-index) range is extracted from
    the predicate; the remaining multi-variable conjuncts stay in the
    Executor as join/residual predicates. *)

module Row = Nsql_row.Row
module Expr = Nsql_expr.Expr
module Fs = Nsql_fs.Fs
module Dp_msg = Nsql_dp.Dp_msg

type access_path =
  | Ap_primary of {
      access : Fs.access;
      range : Expr.key_range;
      pred : Expr.t option;  (** pushed to the Disk Process *)
      proj : int array option;  (** pushed projection *)
    }
  | Ap_index of {
      index : string;
      range : Expr.key_range;  (** over the index key space *)
      ipred : Expr.t option;  (** pushed to the index's Disk Process *)
      residual : Expr.t option;  (** over base rows, after the base read *)
    }

type inner_access =
  | Ji_scan of { pred : Expr.t option }  (** inner-table scan per outer row *)
  | Ji_keyed of { key_exprs : Expr.t list }
      (** primary-key point read built from the outer row *)

type join_step = {
  j_table : Catalog.table;
  j_inner : inner_access;
  j_post : Expr.t option;  (** residual over the joined row so far *)
}

type group_spec = {
  g_keys : Expr.t list;
  g_aggs : (Ast.agg_kind * Expr.t option) list;
  g_having : Expr.t option;  (** over the group-output row *)
}

(** Aggregate pushdown: the GROUP BY evaluates at the data source, one
    AGGREGATE^FIRST/NEXT re-drive chain per partition, replies carrying
    accumulator state instead of rows. Legal only for a single-table
    primary scan with no access override whose group keys are bare columns
    forming a prefix of the primary key (then per-partition first-seen
    order is key order, and partials for a group that straddles a
    partition boundary merge exactly). Fields are in base numbering. *)
type agg_pushdown = {
  ap_range : Expr.key_range;
  ap_pred : Expr.t option;
  ap_group_keys : int array;
  ap_aggs : Dp_msg.agg_spec list;
}

type select_plan = {
  p_distinct : bool;  (** SELECT DISTINCT: de-duplicate the output rows *)
  p_table : Catalog.table;
  p_access : access_path;
  p_joins : join_step list;
  p_group : group_spec option;
  p_pushdown : agg_pushdown option;
      (** when set, the Executor ignores [p_access] and drives
          {!Fs.aggregate} instead of a scan *)
  p_order : (Expr.t * bool) list;
  p_exprs : Expr.t list;  (** output expressions *)
  p_names : string list;
  p_limit : int option;
}

(** [dp_agg_spec (kind, arg)] is the wire spec for one aggregate; COUNT
    with no argument counts rows, like a star-count. The Executor's
    client-side group path uses the same accumulators
    ({!Dp_msg.feed_spec} / {!Dp_msg.finish_acc}), so pushed-down and
    client-side aggregation agree exactly. *)
val dp_agg_spec : Ast.agg_kind * Expr.t option -> Dp_msg.agg_spec

val pp_select_plan : Format.formatter -> select_plan -> unit

(** A linear description of the operator chain the Executor runs for a
    plan, one entry per operator in execution order — the vocabulary the
    batched pipeline and the per-operator experiments share. *)
type op_desc =
  | Od_scan of { table : string; path : string }
      (** base access; [path] is ["primary"] or ["index:<name>"] *)
  | Od_filter of { table : string }  (** client-side residual filter *)
  | Od_join of { table : string; kind : string }  (** ["keyed"] or ["scan"] *)
  | Od_group of { keys : int; aggs : int; pushdown : bool }
  | Od_sort of { keys : int }
  | Od_project of { exprs : int; distinct : bool }
  | Od_limit of { n : int }

(** [operators plan] lists the plan's operators in execution order. *)
val operators : select_plan -> op_desc list

val pp_op_desc : Format.formatter -> op_desc -> unit

type update_plan = {
  up_table : Catalog.table;
  up_range : Expr.key_range;
  up_pred : Expr.t option;
  up_assignments : Expr.assignment list;
}

type delete_plan = {
  dp_table : Catalog.table;
  dp_range : Expr.key_range;
  dp_pred : Expr.t option;
}

(** [plan_select cat ?access_override stmt] compiles a SELECT.
    [access_override] pins the scan mode (record-at-a-time / RSBB / VSBB)
    for the experiments; the default picks RSBB when there is nothing to
    push down and VSBB otherwise, as the paper describes. *)
val plan_select :
  Catalog.t -> ?access_override:Fs.access -> Ast.select_stmt ->
  (select_plan, Nsql_util.Errors.t) result

val plan_update :
  Catalog.t -> table:string -> sets:(string * Ast.sexpr) list ->
  where:Ast.sexpr option -> (update_plan, Nsql_util.Errors.t) result

val plan_delete :
  Catalog.t -> table:string -> where:Ast.sexpr option ->
  (delete_plan, Nsql_util.Errors.t) result

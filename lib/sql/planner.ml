module Row = Nsql_row.Row
module Expr = Nsql_expr.Expr
module Fs = Nsql_fs.Fs
module Dp_msg = Nsql_dp.Dp_msg
module Keycode = Nsql_util.Keycode
module Errors = Nsql_util.Errors

open Errors
open Ast

type access_path =
  | Ap_primary of {
      access : Fs.access;
      range : Expr.key_range;
      pred : Expr.t option;
      proj : int array option;
    }
  | Ap_index of {
      index : string;
      range : Expr.key_range;
      ipred : Expr.t option;
      residual : Expr.t option;
    }

type inner_access =
  | Ji_scan of { pred : Expr.t option }
  | Ji_keyed of { key_exprs : Expr.t list }

type join_step = {
  j_table : Catalog.table;
  j_inner : inner_access;
  j_post : Expr.t option;
}

type group_spec = {
  g_keys : Expr.t list;
  g_aggs : (Ast.agg_kind * Expr.t option) list;
  g_having : Expr.t option;
}

(** Aggregate pushdown: the whole GROUP BY evaluates at the data source
    (one AGGREGATE^FIRST/NEXT chain per partition). Legal only for a
    single-table primary scan whose group keys are bare columns forming a
    prefix of the primary key — then per-partition first-seen order is key
    order and partials merge exactly. Fields are in base numbering: the
    pushdown bypasses the scan-side projection remap. *)
type agg_pushdown = {
  ap_range : Expr.key_range;
  ap_pred : Expr.t option;
  ap_group_keys : int array;
  ap_aggs : Dp_msg.agg_spec list;
}

type select_plan = {
  p_distinct : bool;
  p_table : Catalog.table;
  p_access : access_path;
  p_joins : join_step list;
  p_group : group_spec option;
  p_pushdown : agg_pushdown option;
  p_order : (Expr.t * bool) list;
  p_exprs : Expr.t list;
  p_names : string list;
  p_limit : int option;
}

type update_plan = {
  up_table : Catalog.table;
  up_range : Expr.key_range;
  up_pred : Expr.t option;
  up_assignments : Expr.assignment list;
}

type delete_plan = {
  dp_table : Catalog.table;
  dp_range : Expr.key_range;
  dp_pred : Expr.t option;
}

let pp_access ppf = function
  | Ap_primary { access; range; pred; proj } ->
      Format.fprintf ppf "primary %s range=%a pred=%s proj=%s"
        (match access with
        | Fs.A_record -> "record-at-a-time"
        | Fs.A_rsbb -> "RSBB"
        | Fs.A_vsbb -> "VSBB")
        Expr.pp_key_range range
        (match pred with None -> "-" | Some p -> Format.asprintf "%a" Expr.pp p)
        (match proj with
        | None -> "-"
        | Some fields ->
            String.concat ","
              (Array.to_list (Array.map string_of_int fields)))
  | Ap_index { index; range; ipred; residual } ->
      Format.fprintf ppf "index %s range=%a ipred=%s residual=%s" index
        Expr.pp_key_range range
        (match ipred with None -> "-" | Some p -> Format.asprintf "%a" Expr.pp p)
        (match residual with
        | None -> "-"
        | Some p -> Format.asprintf "%a" Expr.pp p)

let pp_select_plan ppf p =
  Format.fprintf ppf "@[<v>scan %s via %a" p.p_table.Catalog.t_name pp_access
    p.p_access;
  List.iter
    (fun step ->
      Format.fprintf ppf "@,join %s (%s)" step.j_table.Catalog.t_name
        (match step.j_inner with
        | Ji_scan _ -> "nested-loop scan"
        | Ji_keyed _ -> "keyed point read"))
    p.p_joins;
  (match p.p_group with
  | Some g ->
      Format.fprintf ppf "@,group keys=%d aggs=%d%s" (List.length g.g_keys)
        (List.length g.g_aggs)
        (if p.p_pushdown <> None then " (pushed to DP)" else "")
  | None -> ());
  if p.p_order <> [] then Format.fprintf ppf "@,sort (%d keys)" (List.length p.p_order);
  Format.fprintf ppf "@]"

(* --- operator descriptors ----------------------------------------------------

   A linear description of the operator chain the Executor runs for a
   plan, one entry per operator in execution order. The batched executor
   and the experiments use it to label per-operator work and report
   per-operator cost without re-deriving the plan shape. *)

type op_desc =
  | Od_scan of { table : string; path : string }
  | Od_filter of { table : string }
  | Od_join of { table : string; kind : string }
  | Od_group of { keys : int; aggs : int; pushdown : bool }
  | Od_sort of { keys : int }
  | Od_project of { exprs : int; distinct : bool }
  | Od_limit of { n : int }

let operators p =
  let group pushdown =
    match p.p_group with
    | None -> []
    | Some g ->
        [
          Od_group
            {
              keys = List.length g.g_keys;
              aggs = List.length g.g_aggs;
              pushdown;
            };
        ]
  in
  let source =
    match (p.p_group, p.p_pushdown) with
    | Some _, Some _ -> group true
    | _ ->
        let table = p.p_table.Catalog.t_name in
        let scan =
          Od_scan
            {
              table;
              path =
                (match p.p_access with
                | Ap_primary _ -> "primary"
                | Ap_index { index; _ } -> "index:" ^ index);
            }
        in
        let residual =
          match p.p_access with
          | Ap_index { residual = Some _; _ } -> [ Od_filter { table } ]
          | _ -> []
        in
        let joins =
          List.map
            (fun step ->
              Od_join
                {
                  table = step.j_table.Catalog.t_name;
                  kind =
                    (match step.j_inner with
                    | Ji_keyed _ -> "keyed"
                    | Ji_scan _ -> "scan");
                })
            p.p_joins
        in
        (scan :: residual) @ joins @ group false
  in
  source
  @ (if p.p_order <> [] then [ Od_sort { keys = List.length p.p_order } ] else [])
  @ [ Od_project { exprs = List.length p.p_exprs; distinct = p.p_distinct } ]
  @ match p.p_limit with Some n -> [ Od_limit { n } ] | None -> []

let pp_op_desc ppf = function
  | Od_scan { table; path } -> Format.fprintf ppf "scan %s via %s" table path
  | Od_filter { table } -> Format.fprintf ppf "filter %s residual" table
  | Od_join { table; kind } -> Format.fprintf ppf "join %s (%s)" table kind
  | Od_group { keys; aggs; pushdown } ->
      Format.fprintf ppf "group keys=%d aggs=%d%s" keys aggs
        (if pushdown then " (pushed to DP)" else "")
  | Od_sort { keys } -> Format.fprintf ppf "sort (%d keys)" keys
  | Od_project { exprs; distinct } ->
      Format.fprintf ppf "project %d exprs%s" exprs
        (if distinct then " distinct" else "")
  | Od_limit { n } -> Format.fprintf ppf "limit %d" n

(* --- helpers ------------------------------------------------------------ *)

let conjoin_opt = function [] -> None | cs -> Some (Expr.conjoin cs)

(* wire spec for one aggregate; COUNT with no argument counts rows, like
   a star-count *)
let dp_agg_spec (kind, arg) =
  match (kind, arg) with
  | Ast.A_count_star, _ | Ast.A_count, None ->
      { Dp_msg.ag_kind = Dp_msg.Agg_count_star; ag_arg = None }
  | Ast.A_count, a -> { Dp_msg.ag_kind = Dp_msg.Agg_count; ag_arg = a }
  | Ast.A_sum, a -> { Dp_msg.ag_kind = Dp_msg.Agg_sum; ag_arg = a }
  | Ast.A_min, a -> { Dp_msg.ag_kind = Dp_msg.Agg_min; ag_arg = a }
  | Ast.A_max, a -> { Dp_msg.ag_kind = Dp_msg.Agg_max; ag_arg = a }
  | Ast.A_avg, a -> { Dp_msg.ag_kind = Dp_msg.Agg_avg; ag_arg = a }

(* structural equality of surface expressions, for GROUP BY matching *)
let rec sexpr_equal a b =
  match (a, b) with
  | E_col (q1, c1), E_col (q2, c2) -> q1 = q2 && String.equal c1 c2
  | E_lit l1, E_lit l2 -> l1 = l2
  | E_binop (o1, a1, b1), E_binop (o2, a2, b2) ->
      o1 = o2 && sexpr_equal a1 a2 && sexpr_equal b1 b2
  | E_cmp (o1, a1, b1), E_cmp (o2, a2, b2) ->
      o1 = o2 && sexpr_equal a1 a2 && sexpr_equal b1 b2
  | E_and (a1, b1), E_and (a2, b2) | E_or (a1, b1), E_or (a2, b2) ->
      sexpr_equal a1 a2 && sexpr_equal b1 b2
  | E_not a1, E_not a2 | E_is_null a1, E_is_null a2
  | E_is_not_null a1, E_is_not_null a2 ->
      sexpr_equal a1 a2
  | E_like (a1, p1), E_like (a2, p2) -> sexpr_equal a1 a2 && String.equal p1 p2
  | E_between (a1, l1, h1), E_between (a2, l2, h2) ->
      sexpr_equal a1 a2 && sexpr_equal l1 l2 && sexpr_equal h1 h2
  | E_in (a1, l1), E_in (a2, l2) -> sexpr_equal a1 a2 && l1 = l2
  | E_agg (k1, None), E_agg (k2, None) -> k1 = k2
  | E_agg (k1, Some a1), E_agg (k2, Some a2) -> k1 = k2 && sexpr_equal a1 a2
  | _ -> false

(* output column name for a select item *)
let item_name i = function
  | S_star -> assert false
  | S_expr (_, Some alias) -> alias
  | S_expr (E_col (_, c), None) -> c
  | S_expr (E_agg (kind, _), None) ->
      String.lowercase_ascii (Ast.agg_name kind)
  | S_expr (_, None) -> Printf.sprintf "col%d" (i + 1)

(* --- single-table access path ---------------------------------------------- *)

(* Translate a base-field expression into index-file numbering, when every
   referenced base field is materialised in the index. *)
let to_index_expr (ix_all_cols : int array) e =
  let pos_of b =
    let rec go i =
      if i >= Array.length ix_all_cols then None
      else if ix_all_cols.(i) = b then Some i
      else go (i + 1)
    in
    go 0
  in
  if List.for_all (fun b -> pos_of b <> None) (Expr.fields e) then
    Some (Expr.map_fields (fun b -> Option.get (pos_of b)) e)
  else None

let full_range_p (r : Expr.key_range) =
  String.equal r.Expr.lo Keycode.low_value
  && String.equal r.Expr.hi Keycode.high_value

(* choose the access path for the first (or only) table given its pushable
   conjuncts (already in base-field numbering) *)
let choose_access (tbl : Catalog.table) conjuncts_ =
  let schema = tbl.Catalog.t_schema in
  let pred = conjoin_opt conjuncts_ in
  let range, residual =
    match pred with
    | None -> (Expr.full_range, None)
    | Some p -> Expr.extract_key_range schema p
  in
  if (not (full_range_p range)) || conjuncts_ = [] then
    `Primary (range, residual)
  else begin
    (* primary key unconstrained: look for an index whose key prefix is *)
    let indexes = Fs.index_names tbl.Catalog.t_file in
    let try_index ixname =
      match Fs.index_schema tbl.Catalog.t_file ~index:ixname with
      | Error _ -> None
      | Ok ix_schema ->
          (* index field numbering = position in the index schema; we can
             translate a conjunct iff its base fields appear in the index.
             The index columns are, by construction, the index schema's
             columns in order; recover base numbering via column names. *)
          let base_of_ix =
            Array.map
              (fun c ->
                match Row.field_number schema c.Row.col_name with
                | Ok b -> b
                | Error _ -> -1)
              ix_schema.Row.cols
          in
          let translated, untranslated =
            List.partition_map
              (fun c ->
                match to_index_expr base_of_ix c with
                | Some ic -> Left ic
                | None -> Right c)
              conjuncts_
          in
          if translated = [] then None
          else begin
            let ipred = Expr.conjoin translated in
            let irange, iresidual = Expr.extract_key_range ix_schema ipred in
            if full_range_p irange then None
            else Some (ixname, irange, iresidual, conjoin_opt untranslated)
          end
    in
    let rec first_usable = function
      | [] -> `Primary (range, residual)
      | ix :: rest -> (
          match try_index ix with
          | Some (ixname, irange, ipred, base_residual) ->
              `Index (ixname, irange, ipred, base_residual)
          | None -> first_usable rest)
    in
    first_usable indexes
  end

(* --- SELECT -------------------------------------------------------------------- *)

let plan_select cat ?access_override (stmt : Ast.select_stmt) =
  (* resolve FROM *)
  let* tables =
    Errors.list_map
      (fun (name, alias) ->
        let* tbl = Catalog.find cat name in
        Ok (tbl, alias))
      stmt.sel_from
  in
  let env =
    Binder.env_of_tables
      (List.map
         (fun (tbl, alias) -> (tbl.Catalog.t_name, alias, tbl.Catalog.t_schema))
         tables)
  in
  let entries = Array.of_list env in
  let table_array = Array.of_list (List.map fst tables) in
  (* WHERE conjuncts bound over the joined row *)
  let* where_conjuncts =
    match stmt.sel_where with
    | None -> Ok []
    | Some w ->
        if Ast.has_agg w then
          fail (Errors.Bad_request "aggregates are not allowed in WHERE")
        else
          Errors.list_map (Binder.bind env) (Ast.conjuncts w)
  in
  (* classify conjuncts by the highest table they reference *)
  let ntables = Array.length entries in
  let level_of e =
    match Expr.fields e with
    | [] -> 0
    | fields ->
        let owner i =
          let rec go k =
            if
              k + 1 < ntables
              && i >= entries.(k + 1).Binder.en_offset
            then go (k + 1)
            else k
          in
          go 0
        in
        List.fold_left (fun acc i -> max acc (owner i)) 0 fields
  in
  let by_level = Array.make ntables [] in
  List.iter
    (fun c ->
      let l = level_of c in
      by_level.(l) <- c :: by_level.(l))
    where_conjuncts;
  Array.iteri (fun i cs -> by_level.(i) <- List.rev cs) by_level;
  (* level 0: single-variable over the first table (offsets 0.. so base
     numbering already) *)
  let t0 = table_array.(0) in
  let access0 = choose_access t0 by_level.(0) in
  (* join steps for tables 1..n-1 *)
  let* joins =
    let rec build k acc =
      if k >= ntables then Ok (List.rev acc)
      else begin
        let entry = entries.(k) in
        let tbl = table_array.(k) in
        let offset = entry.Binder.en_offset in
        let width = Array.length entry.Binder.en_schema.Row.cols in
        let conjs = by_level.(k) in
        (* inner-only conjuncts: push to the inner scan *)
        let inner_only, cross =
          List.partition
            (fun c ->
              List.for_all
                (fun i -> i >= offset && i < offset + width)
                (Expr.fields c))
            conjs
        in
        let inner_pred =
          conjoin_opt
            (List.map (Expr.map_fields (fun i -> i - offset)) inner_only)
        in
        (* keyed access: an equality on every pk column, rhs from earlier
           tables *)
        let pk = entry.Binder.en_schema.Row.key_cols in
        let find_key_expr used pk_col =
          let target = offset + pk_col in
          List.find_opt
            (fun c ->
              (not (List.memq c used))
              &&
              match c with
              | Expr.Cmp (Expr.Eq, Expr.Field f, rhs) when f = target ->
                  List.for_all (fun i -> i < offset) (Expr.fields rhs)
              | Expr.Cmp (Expr.Eq, lhs, Expr.Field f) when f = target ->
                  List.for_all (fun i -> i < offset) (Expr.fields lhs)
              | _ -> false)
            cross
        in
        let keyed =
          let rec collect used exprs = function
            | [] -> Some (List.rev exprs, used)
            | pk_col :: rest -> (
                match find_key_expr used pk_col with
                | Some c ->
                    let rhs =
                      match c with
                      | Expr.Cmp (Expr.Eq, Expr.Field f, rhs) when f = offset + pk_col -> rhs
                      | Expr.Cmp (Expr.Eq, lhs, Expr.Field _) -> lhs
                      | _ -> assert false
                    in
                    collect (c :: used) (rhs :: exprs) rest
                | None -> None)
          in
          collect [] [] (Array.to_list pk)
        in
        let j_inner, consumed =
          match keyed with
          | Some (key_exprs, used) when inner_pred = None ->
              (Ji_keyed { key_exprs }, used)
          | _ -> (Ji_scan { pred = inner_pred }, [])
        in
        let post =
          conjoin_opt (List.filter (fun c -> not (List.memq c consumed)) cross)
        in
        build (k + 1) ({ j_table = tbl; j_inner; j_post = post } :: acc)
      end
    in
    build 1 []
  in
  (* select items *)
  let expanded_items =
    List.concat_map
      (function
        | S_star ->
            List.concat_map
              (fun entry ->
                Array.to_list
                  (Array.map
                     (fun c -> S_expr (E_col (None, c.Row.col_name), Some c.Row.col_name))
                     entry.Binder.en_schema.Row.cols)
              |> List.mapi (fun i it ->
                     (* qualify to avoid ambiguity across tables *)
                     match it with
                     | S_expr (E_col (None, c), a) ->
                         ignore i;
                         S_expr
                           ( E_col
                               ( Some
                                   (match entry.Binder.en_alias with
                                   | Some al -> al
                                   | None -> entry.Binder.en_table),
                                 c ),
                             a )
                     | it -> it))
              env
        | S_expr _ as it -> [ it ])
      stmt.sel_items
  in
  let names = List.mapi item_name expanded_items in
  let item_exprs = List.map (function S_star -> assert false | S_expr (e, _) -> e) expanded_items in
  let aggregated =
    stmt.sel_group_by <> [] || List.exists Ast.has_agg item_exprs
    || (match stmt.sel_having with Some h -> Ast.has_agg h | None -> stmt.sel_having <> None)
  in
  if not aggregated then begin
    (* bind output and order expressions over the joined row *)
    let* exprs = Errors.list_map (Binder.bind env) item_exprs in
    let* order =
      Errors.list_map
        (fun o ->
          let* e = Binder.bind env o.o_expr in
          Ok (e, o.o_desc))
        stmt.sel_order_by
    in
    (* projection pushdown: single-table VSBB only *)
    let access0, exprs, order =
      match (access0, joins) with
      | `Primary (range, pred), [] ->
          let needed =
            List.sort_uniq compare
              (List.concat_map Expr.fields exprs
              @ List.concat_map (fun (e, _) -> Expr.fields e) order)
          in
          let width = Array.length t0.Catalog.t_schema.Row.cols in
          let access =
            match access_override with
            | Some a -> a
            | None ->
                if pred = None && List.length needed = width then Fs.A_rsbb
                else Fs.A_vsbb
          in
          if
            List.length needed < width
            && access = Fs.A_vsbb
          then begin
            let proj = Array.of_list needed in
            let pos i =
              let rec go k = if proj.(k) = i then k else go (k + 1) in
              go 0
            in
            let remap = Expr.map_fields pos in
            ( Ap_primary { access; range; pred; proj = Some proj },
              List.map remap exprs,
              List.map (fun (e, d) -> (remap e, d)) order )
          end
          else
            (Ap_primary { access; range; pred; proj = None }, exprs, order)
      | `Primary (range, pred), _ ->
          let access =
            match access_override with Some a -> a | None -> Fs.A_vsbb
          in
          (Ap_primary { access; range; pred; proj = None }, exprs, order)
      | `Index (index, range, ipred, residual), _ ->
          (Ap_index { index; range; ipred; residual }, exprs, order)
    in
    Ok
      {
        p_distinct = stmt.sel_distinct;
        p_table = t0;
        p_access = access0;
        p_joins = joins;
        p_group = None;
        p_pushdown = None;
        p_order = order;
        p_exprs = exprs;
        p_names = names;
        p_limit = stmt.sel_limit;
      }
  end
  else begin
    (* aggregation: rewrite items/having/order over the group-output row *)
    let* g_keys = Errors.list_map (Binder.bind env) stmt.sel_group_by in
    let nkeys = List.length g_keys in
    let aggs = ref [] in
    let agg_index kind arg_sexpr =
      (* one slot per distinct aggregate *)
      let rec find i = function
        | [] -> None
        | (k, a) :: rest ->
            if
              k = kind
              &&
              match (a, arg_sexpr) with
              | None, None -> true
              | Some x, Some y -> sexpr_equal x y
              | _ -> false
            then Some i
            else find (i + 1) rest
      in
      match find 0 (List.rev !aggs) with
      | Some i -> Ok i
      | None ->
          aggs := (kind, arg_sexpr) :: !aggs;
          Ok (List.length !aggs - 1)
    in
    let rec rewrite e =
      (* a sub-expression equal to a GROUP BY key becomes a key field *)
      let rec key_pos i = function
        | [] -> None
        | k :: rest -> if sexpr_equal k e then Some i else key_pos (i + 1) rest
      in
      match key_pos 0 stmt.sel_group_by with
      | Some i -> Ok (Expr.Field i)
      | None -> (
          match e with
          | E_agg (kind, arg) ->
              let* i = agg_index kind arg in
              Ok (Expr.Field (nkeys + i))
          | E_lit l -> Ok (Expr.Const (Binder.lit_value l))
          | E_col _ ->
              fail
                (Errors.Bad_request
                   (Format.asprintf
                      "column %a must appear in GROUP BY or an aggregate"
                      Ast.pp_sexpr e))
          | E_binop (op, a, b) ->
              let* a = rewrite a in
              let* b = rewrite b in
              Ok (Expr.Binop (Binder.bin_op op, a, b))
          | E_cmp (op, a, b) ->
              let* a = rewrite a in
              let* b = rewrite b in
              Ok (Expr.Cmp (Binder.cmp_op op, a, b))
          | E_and (a, b) ->
              let* a = rewrite a in
              let* b = rewrite b in
              Ok (Expr.And (a, b))
          | E_or (a, b) ->
              let* a = rewrite a in
              let* b = rewrite b in
              Ok (Expr.Or (a, b))
          | E_not a ->
              let* a = rewrite a in
              Ok (Expr.Not a)
          | E_is_null a ->
              let* a = rewrite a in
              Ok (Expr.Is_null a)
          | E_is_not_null a ->
              let* a = rewrite a in
              Ok (Expr.Not (Expr.Is_null a))
          | E_like (a, p) ->
              let* a = rewrite a in
              Ok (Expr.Like (a, p))
          | E_between _ | E_in _ ->
              fail
                (Errors.Bad_request
                   "BETWEEN/IN over aggregates not supported; rewrite with \
                    comparisons")
          )
    in
    let* exprs = Errors.list_map rewrite item_exprs in
    let* having =
      match stmt.sel_having with
      | None -> Ok None
      | Some h ->
          let* h = rewrite h in
          Ok (Some h)
    in
    let* order =
      Errors.list_map
        (fun o ->
          let* e = rewrite o.o_expr in
          Ok (e, o.o_desc))
        stmt.sel_order_by
    in
    (* bind aggregate arguments over the joined row *)
    let* g_aggs =
      Errors.list_map
        (fun (kind, arg) ->
          match arg with
          | None -> Ok (kind, None)
          | Some a ->
              let* a = Binder.bind env a in
              Ok (kind, Some a))
        (List.rev !aggs)
    in
    (* aggregate pushdown legality — decided in base-field numbering,
       before the projection remap below. A single-table primary scan with
       no access override whose group keys are bare columns forming a
       (set-wise) prefix of the primary key delegates the whole GROUP BY
       to the Disk Processes; anything else falls back to the client-side
       group path. *)
    let p_pushdown =
      match (access0, joins, access_override) with
      | `Primary (range, pred), [], None -> (
          let key_cols = t0.Catalog.t_schema.Row.key_cols in
          let nkeys = List.length g_keys in
          let rec bare_fields acc = function
            | [] -> Some (List.rev acc)
            | Expr.Field f :: rest -> bare_fields (f :: acc) rest
            | _ -> None
          in
          match bare_fields [] g_keys with
          | Some fields
            when nkeys <= Array.length key_cols
                 && List.sort_uniq compare fields
                    = List.sort compare
                        (Array.to_list (Array.sub key_cols 0 nkeys)) ->
              Some
                {
                  ap_range = range;
                  ap_pred = pred;
                  ap_group_keys = Array.of_list fields;
                  ap_aggs = List.map dp_agg_spec g_aggs;
                }
          | _ -> None)
      | _ -> None
    in
    (* projection pushdown for the aggregation inputs: only the group-key
       and aggregate-argument fields need to leave the Disk Process *)
    let g_keys, g_aggs, access0 =
      match (access0, joins) with
      | `Primary (range, pred), [] ->
          let needed =
            List.sort_uniq compare
              (List.concat_map Expr.fields g_keys
              @ List.concat_map
                  (fun (_, arg) ->
                    match arg with Some e -> Expr.fields e | None -> [])
                  g_aggs)
          in
          let width = Array.length t0.Catalog.t_schema.Row.cols in
          let access =
            match access_override with
            | Some a -> a
            | None ->
                if pred = None && List.length needed = width then Fs.A_rsbb
                else Fs.A_vsbb
          in
          if List.length needed < width && access = Fs.A_vsbb then begin
            let proj = Array.of_list needed in
            let pos i =
              let rec go k = if proj.(k) = i then k else go (k + 1) in
              go 0
            in
            let remap = Expr.map_fields pos in
            ( List.map remap g_keys,
              List.map
                (fun (kind, arg) -> (kind, Option.map remap arg))
                g_aggs,
              Ap_primary { access; range; pred; proj = Some proj } )
          end
          else (g_keys, g_aggs, Ap_primary { access; range; pred; proj = None })
      | `Primary (range, pred), _ ->
          let access =
            match access_override with
            | Some a -> a
            | None -> if pred = None then Fs.A_rsbb else Fs.A_vsbb
          in
          (g_keys, g_aggs, Ap_primary { access; range; pred; proj = None })
      | `Index (index, range, ipred, residual), _ ->
          (g_keys, g_aggs, Ap_index { index; range; ipred; residual })
    in
    Ok
      {
        p_distinct = stmt.sel_distinct;
        p_table = t0;
        p_access = access0;
        p_joins = joins;
        p_group = Some { g_keys; g_aggs; g_having = having };
        p_pushdown;
        p_order = order;
        p_exprs = exprs;
        p_names = names;
        p_limit = stmt.sel_limit;
      }
  end

(* --- UPDATE / DELETE ---------------------------------------------------------- *)

let single_table_where cat ~table ~where =
  let* tbl = Catalog.find cat table in
  let env =
    Binder.env_of_tables [ (tbl.Catalog.t_name, None, tbl.Catalog.t_schema) ]
  in
  let* pred =
    match where with
    | None -> Ok None
    | Some w ->
        let* p = Binder.bind env w in
        Ok (Some p)
  in
  let range, residual =
    match pred with
    | None -> (Expr.full_range, None)
    | Some p -> Expr.extract_key_range tbl.Catalog.t_schema p
  in
  Ok (tbl, env, range, residual)

let plan_update cat ~table ~sets ~where =
  let* tbl, env, range, pred = single_table_where cat ~table ~where in
  let* assignments =
    Errors.list_map
      (fun (col, e) ->
        let* target = Row.field_number tbl.Catalog.t_schema col in
        let* source = Binder.bind env e in
        Ok { Expr.target; source })
      sets
  in
  Ok { up_table = tbl; up_range = range; up_pred = pred; up_assignments = assignments }

let plan_delete cat ~table ~where =
  let* tbl, _env, range, pred = single_table_where cat ~table ~where in
  Ok { dp_table = tbl; dp_range = range; dp_pred = pred }

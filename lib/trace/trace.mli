(** Deterministic span tracing over the simulated clock.

    A span is a named, categorised interval with key/value attributes and
    the {!Nsql_sim.Stats} delta observed over its extent. Spans nest
    (parent inferred from the innermost open span, or given explicitly),
    are collected in a bounded ring per simulation world, and carry
    deterministic sequential ids — so for a given seed the collected trace,
    its Chrome JSON export, and the `\profile` rendering are byte-identical
    across runs.

    The zero-perturbation rule: tracing reads the clock and snapshots
    counters but never charges time or bumps a counter. Enabling tracing
    must leave [Sim.now] and every [Stats] field of a run bit-identical to
    a run with tracing off; test/test_trace.ml enforces this. When tracing
    is disabled every entry point below costs a single branch.

    Every {!begin_span} handle must reach {!finish} (the [SPAN-LEAK] lint
    rule flags handles that are dropped or never finished); prefer
    {!with_span} where control flow allows. *)

type value = Nsql_sim.Tracer.value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

(** A span handle: [None] when tracing was disabled at begin time, so
    every subsequent operation on it is one branch. *)
type h = Nsql_sim.Tracer.span option

val set_enabled : Nsql_sim.Sim.t -> bool -> unit
val enabled : Nsql_sim.Sim.t -> bool

(** [begin_span sim name] opens a span at the current simulated time with
    a counter snapshot. [parent] overrides stack inference (pass the
    enclosing fan-out span for partition legs); [push:false] keeps the
    span off the parent-inference stack (legs, so siblings don't adopt
    each other); [tid] sets the display track, defaulting to the
    parent's. *)
val begin_span :
  Nsql_sim.Sim.t ->
  ?parent:h ->
  ?push:bool ->
  ?tid:int ->
  ?cat:string ->
  ?attrs:(string * value) list ->
  string ->
  h

(** [finish sim h] closes the span at the current simulated time; unless
    {!add_stats} was used, its counter delta becomes the begin/end window
    diff. Idempotent; [None] is a no-op. *)
val finish : Nsql_sim.Sim.t -> h -> unit

(** [with_span sim name f] wraps [f] in a span, finishing on any exit. *)
val with_span :
  Nsql_sim.Sim.t ->
  ?tid:int ->
  ?cat:string ->
  ?attrs:(string * value) list ->
  string ->
  (unit -> 'a) ->
  'a

(** Zero-duration event (cache hit, lock wait, SCB reuse). *)
val instant :
  Nsql_sim.Sim.t ->
  ?tid:int ->
  ?cat:string ->
  ?attrs:(string * value) list ->
  string ->
  unit

val add_attr : h -> string -> value -> unit

(** [add_stats h d] accumulates an explicit counter delta into the span,
    suppressing the begin/end window diff at finish. Partition legs use
    this: a window diff would absorb the interleaved work of sibling
    legs. *)
val add_stats : h -> Nsql_sim.Stats.t -> unit

(** [attribute sim h f] runs [f], adds the counter delta it produced to
    [h] (as {!add_stats}), and — while [f] runs — lets spans begun inside
    infer [h] as their parent. One branch when [h] is [None]. *)
val attribute : Nsql_sim.Sim.t -> h -> (unit -> 'a) -> 'a

(** Drain the world's collected spans in begin order. *)
val take : Nsql_sim.Sim.t -> Nsql_sim.Tracer.span list

val clear : Nsql_sim.Sim.t -> unit

(** Spans lost to ring wrap-around since the last {!take}. *)
val dropped : Nsql_sim.Sim.t -> int

(** [attr sp k] looks up an attribute on a collected span. *)
val attr : Nsql_sim.Tracer.span -> string -> value option

(** {1 Exports} *)

(** [chrome_json worlds] renders one span list per simulation world (pid =
    list index) as Chrome trace-event JSON — loadable in chrome://tracing
    and Perfetto, byte-identical for a given seed. [?counters] appends
    pre-rendered ["ph":"C"] counter events (see
    [Nsql_monitor.Monitor.chrome_counters]) after the span events. *)
val chrome_json :
  ?counters:string list -> Nsql_sim.Tracer.span list list -> string

(** Default category filter for {!pp_profile}: statement, operator, file
    system and partition-leg spans. *)
val profile_cats : string list

(** [pp_profile ppf spans] renders the operator tree with per-span
    simulated µs and counter deltas (messages, bytes, re-drives, cache
    hits, records) — the `\profile` view. *)
val pp_profile :
  ?cats:string list -> Format.formatter -> Nsql_sim.Tracer.span list -> unit

(** The cat-"msg" spans of a collected trace, in send order. *)
val msg_spans : Nsql_sim.Tracer.span list -> Nsql_sim.Tracer.span list

(** One line per message interaction — the `\trace` view. *)
val pp_msg_span : Format.formatter -> Nsql_sim.Tracer.span -> unit

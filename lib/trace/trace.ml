module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Tracer = Nsql_sim.Tracer

type value = Tracer.value = Int of int | Float of float | Str of string | Bool of bool

type h = Tracer.span option

let set_enabled sim on = Tracer.set_enabled (Sim.tracer sim) on
let enabled sim = Tracer.enabled (Sim.tracer sim)
let take sim = Tracer.take (Sim.tracer sim)
let clear sim = Tracer.clear (Sim.tracer sim)
let dropped sim = Tracer.dropped (Sim.tracer sim)

(* Observation must never perturb the simulation: every function below
   reads [Sim.now] and copies counters ([Sim.snapshot]) but never calls
   [charge]/[tick]/[wait_until] — test/test_trace.ml holds the simulation
   to that. When tracing is disabled the cost is the [enabled] branch. *)

let begin_span sim ?(parent = None) ?(push = true) ?tid ?(cat = "misc")
    ?(attrs = []) name : h =
  let tr = Sim.tracer sim in
  if not (Tracer.enabled tr) then None
  else
    Some
      (Tracer.begin_ tr ~now:(Sim.now sim) ~before:(Sim.snapshot sim) ?parent
         ~push ?tid ~cat ~attrs name)

let finish sim (h : h) =
  match h with
  | None -> ()
  | Some sp ->
      Tracer.finish (Sim.tracer sim) sp ~now:(Sim.now sim)
        ~after:(Sim.snapshot sim)

let with_span sim ?tid ?cat ?attrs name f =
  match begin_span sim ?tid ?cat ?attrs name with
  | None -> f ()
  | Some _ as h -> Fun.protect ~finally:(fun () -> finish sim h) f

let instant sim ?tid ?(cat = "misc") ?(attrs = []) name =
  let tr = Sim.tracer sim in
  if Tracer.enabled tr then
    Tracer.instant tr ~now:(Sim.now sim) ?tid ~cat ~attrs name

let add_attr (h : h) k v =
  match h with None -> () | Some sp -> Tracer.add_attr sp k v

let add_stats (h : h) d =
  match h with None -> () | Some sp -> Tracer.add_stats sp d

let attribute sim (h : h) f =
  match h with
  | None -> f ()
  | Some sp ->
      let tr = Sim.tracer sim in
      let before = Sim.snapshot sim in
      Tracer.push_open tr sp;
      Fun.protect
        ~finally:(fun () ->
          Tracer.pop tr sp;
          Tracer.add_stats sp
            (Stats.diff ~before ~after:(Sim.snapshot sim)))
        f

let attr sp k = List.assoc_opt k sp.Tracer.sp_attrs

(* --- Chrome trace-event export ------------------------------------------

   One complete ("X") event per span, timestamps in microseconds rendered
   with a fixed [%.3f] so the artifact is byte-identical for a given seed.
   Loads in chrome://tracing and Perfetto. *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_json_value buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.3f" f)
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Str s ->
      Buffer.add_char buf '"';
      json_escape buf s;
      Buffer.add_char buf '"'

let add_event buf ~pid (sp : Tracer.span) =
  Buffer.add_string buf "{\"name\":\"";
  json_escape buf sp.sp_name;
  Buffer.add_string buf "\",\"cat\":\"";
  json_escape buf sp.sp_cat;
  Buffer.add_string buf
    (Printf.sprintf "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{"
       sp.sp_start
       (sp.sp_end -. sp.sp_start)
       pid sp.sp_tid);
  Buffer.add_string buf (Printf.sprintf "\"span\":%d" sp.sp_id);
  (match sp.sp_parent with
  | None -> ()
  | Some p -> Buffer.add_string buf (Printf.sprintf ",\"parent\":%d" p));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      json_escape buf k;
      Buffer.add_string buf "\":";
      add_json_value buf v)
    sp.sp_attrs;
  List.iter
    (fun (k, v) ->
      if v <> 0 then Buffer.add_string buf (Printf.sprintf ",\"%s\":%d" k v))
    (Stats.to_assoc sp.sp_stats);
  Buffer.add_string buf "}}"

let chrome_json ?(counters = []) (worlds : Tracer.span list list) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  List.iteri
    (fun pid spans ->
      List.iter
        (fun sp ->
          if !first then first := false else Buffer.add_string buf ",\n";
          add_event buf ~pid sp)
        spans)
    worlds;
  (* pre-rendered "ph":"C" counter events from the resource monitor *)
  List.iter
    (fun ev ->
      if !first then first := false else Buffer.add_string buf ",\n";
      Buffer.add_string buf ev)
    counters;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* --- profile rendering ---------------------------------------------------

   The `\profile` view: the statement/operator/partition-leg spans as an
   indented tree, each line annotated with the counter deltas the paper's
   claims are stated in. Message-level spans are summarised by their
   enclosing operator's delta rather than listed. *)

let profile_cats = [ "stmt"; "op"; "fs"; "fs.leg" ]

let pp_span_counters ppf (s : Stats.t) =
  let open Stats in
  List.iter
    (fun (k, v) -> if v <> 0 then Format.fprintf ppf " %s=%d" k v)
    [
      ("msgs", s.msgs_sent);
      ("reqB", s.msg_req_bytes);
      ("repB", s.msg_reply_bytes);
      ("redrives", s.redrives);
      ("hits", s.cache_hits);
      ("misses", s.cache_misses);
      ("reads", s.disk_reads);
      ("writes", s.disk_writes);
      ("recs_read", s.records_read);
      ("recs_ret", s.records_returned);
      ("batches", s.exec_batches);
      ("batch_rows", s.exec_rows);
      ("lock_waits", s.lock_waits);
    ]

let pp_profile ?(cats = profile_cats) ppf (spans : Tracer.span list) =
  let open Tracer in
  let keep sp = List.mem sp.sp_cat cats in
  let by_id = Hashtbl.create 256 in
  List.iter (fun sp -> Hashtbl.replace by_id sp.sp_id sp) spans;
  let kept_ids = Hashtbl.create 64 in
  List.iter (fun sp -> if keep sp then Hashtbl.replace kept_ids sp.sp_id ()) spans;
  (* nearest collected ancestor that survives the category filter *)
  let rec anchor = function
    | None -> None
    | Some id -> (
        if Hashtbl.mem kept_ids id then Some id
        else
          match Hashtbl.find_opt by_id id with
          | None -> None
          | Some sp -> anchor sp.sp_parent)
  in
  let children = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun sp ->
      if keep sp then
        match anchor sp.sp_parent with
        | Some p ->
            Hashtbl.replace children p
              (sp :: (Option.value ~default:[] (Hashtbl.find_opt children p)))
        | None -> roots := sp :: !roots)
    spans;
  let in_order l = List.rev l in
  let rec render depth sp =
    let label = String.make (2 * depth) ' ' ^ sp.sp_name in
    Format.fprintf ppf "%-44s %10.1f us %a@," label
      (sp.sp_end -. sp.sp_start)
      pp_span_counters sp.sp_stats;
    List.iter (render (depth + 1))
      (in_order (Option.value ~default:[] (Hashtbl.find_opt children sp.sp_id)))
  in
  Format.fprintf ppf "@[<v>";
  List.iter (render 0) (in_order !roots);
  Format.fprintf ppf "@]"

(* --- message view --------------------------------------------------------

   The `\trace` view: the cat-"msg" spans rendered one per line, replacing
   the old flat [Msg.trace_entry] log. *)

let msg_spans spans =
  List.filter (fun sp -> sp.Tracer.sp_cat = "msg") spans

let attr_str sp k =
  match attr sp k with Some (Str s) -> s | _ -> "?"

let attr_int sp k = match attr sp k with Some (Int i) -> i | _ -> 0

let pp_msg_span ppf (sp : Tracer.span) =
  Format.fprintf ppf "%8.0fus  %s -> %s (%s)  %-22s req=%dB reply=%dB"
    sp.Tracer.sp_start (attr_str sp "from") (attr_str sp "to")
    (attr_str sp "dest") sp.Tracer.sp_name (attr_int sp "req_bytes")
    (attr_int sp "reply_bytes")

(** Common error type shared by every subsystem of the reproduction.

    All fallible public operations return [('a, Errors.t) result]. The
    constructors mirror the error classes of the original system: file-system
    errors, disk-process errors, transaction aborts, and SQL front-end
    errors. *)

type t =
  | Not_found_key of string  (** no record with the given (encoded) key *)
  | Duplicate_key of string  (** unique-key violation on insert *)
  | File_not_found of string  (** unknown file name *)
  | File_exists of string  (** create of an existing file *)
  | Bad_request of string  (** malformed FS-DP request *)
  | Lock_timeout of string  (** lock wait aborted: timeout or deadlock *)
  | Tx_aborted of string  (** transaction was aborted *)
  | No_transaction  (** operation requires an active transaction *)
  | Constraint_violation of string  (** CHECK constraint rejected an update *)
  | Type_error of string  (** expression/type mismatch *)
  | Parse_error of string  (** SQL syntax error *)
  | Name_error of string  (** unknown table/column/index *)
  | Invalid_argument_error of string  (** bad parameter to a public API *)
  | Io_error of string  (** simulated device failure *)
  | Internal of string  (** invariant violation: a bug in this library *)
  | Deadlock of string
      (** transaction chosen as deadlock victim; the request was denied and
          the caller should abort and retry *)
  | Takeover of string
      (** request lost to a process-pair takeover: the transaction's
          un-checkpointed state did not survive on the new primary; the
          caller should abort and retry *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val equal : t -> t -> bool

(** [fail e] is [Error e]. *)
val fail : t -> ('a, t) result

(** Monadic bind for [('a, t) result]; also available as [let*]. *)
val ( let* ) : ('a, t) result -> ('a -> ('b, t) result) -> ('b, t) result

val ( let+ ) : ('a, t) result -> ('a -> 'b) -> ('b, t) result

(** [list_iter f xs] applies [f] to each element, stopping at the first
    error. *)
val list_iter : ('a -> (unit, t) result) -> 'a list -> (unit, t) result

(** [list_map f xs] maps [f], stopping at the first error. *)
val list_map : ('a -> ('b, t) result) -> 'a list -> ('b list, t) result

(** [get_ok ~ctx r] unwraps [r], raising [Failure] with [ctx] and the error
    text if [r] is an [Error]. Only for tests, examples and benches. *)
val get_ok : ctx:string -> ('a, t) result -> 'a

(** Unrecoverable invariant violation in a protocol path: an audited
    operation failed to apply, an undo action could not compensate, or an
    abort could not complete. Distinct from [Failure] so callers cannot
    confuse a corruption signal with an ordinary error message. *)
exception Fatal of string

(** [fatal msg] raises {!Fatal}. The nsql-lint rule ERR-SWALLOW bans bare
    [failwith] in protocol paths ([lib/dp], [lib/fs], [lib/msg], [lib/dtx],
    [lib/tmf]); this is the sanctioned replacement for genuine
    can't-happen failures. *)
val fatal : string -> 'a

(** [swallow r] deliberately discards a [result] in a path where failure is
    acceptable (best-effort cleanup, idempotent recovery replay). A
    greppable, audited marker: ERR-SWALLOW flags [ignore] of a
    result-returning call but accepts [swallow]. *)
val swallow : ('a, t) result -> unit

let sorted_bindings ?(compare = Stdlib.compare) tbl =
  let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.sort (fun (a, _) (b, _) -> compare a b) all

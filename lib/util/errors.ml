type t =
  | Not_found_key of string
  | Duplicate_key of string
  | File_not_found of string
  | File_exists of string
  | Bad_request of string
  | Lock_timeout of string
  | Tx_aborted of string
  | No_transaction
  | Constraint_violation of string
  | Type_error of string
  | Parse_error of string
  | Name_error of string
  | Invalid_argument_error of string
  | Io_error of string
  | Internal of string
  | Deadlock of string
  | Takeover of string

let pp ppf = function
  | Not_found_key k -> Format.fprintf ppf "key not found: %S" k
  | Duplicate_key k -> Format.fprintf ppf "duplicate key: %S" k
  | File_not_found f -> Format.fprintf ppf "file not found: %s" f
  | File_exists f -> Format.fprintf ppf "file already exists: %s" f
  | Bad_request m -> Format.fprintf ppf "bad request: %s" m
  | Lock_timeout m -> Format.fprintf ppf "lock timeout/deadlock: %s" m
  | Tx_aborted m -> Format.fprintf ppf "transaction aborted: %s" m
  | No_transaction -> Format.fprintf ppf "no active transaction"
  | Constraint_violation m -> Format.fprintf ppf "constraint violation: %s" m
  | Type_error m -> Format.fprintf ppf "type error: %s" m
  | Parse_error m -> Format.fprintf ppf "parse error: %s" m
  | Name_error m -> Format.fprintf ppf "name error: %s" m
  | Invalid_argument_error m -> Format.fprintf ppf "invalid argument: %s" m
  | Io_error m -> Format.fprintf ppf "i/o error: %s" m
  | Internal m -> Format.fprintf ppf "internal error: %s" m
  | Deadlock m -> Format.fprintf ppf "deadlock: %s" m
  | Takeover m -> Format.fprintf ppf "takeover: %s" m

let to_string e = Format.asprintf "%a" pp e

let equal (a : t) (b : t) = a = b

let fail e = Error e

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e
let ( let+ ) r f = match r with Ok x -> Ok (f x) | Error _ as e -> e

let list_iter f xs =
  let rec go = function
    | [] -> Ok ()
    | x :: rest -> ( match f x with Ok () -> go rest | Error _ as e -> e)
  in
  go xs

let list_map f xs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match f x with Ok y -> go (y :: acc) rest | Error _ as e -> e)
  in
  go [] xs

let get_ok ~ctx = function
  | Ok x -> x
  | Error e -> failwith (Printf.sprintf "%s: %s" ctx (to_string e))

exception Fatal of string

let fatal msg = raise (Fatal msg)

let swallow : ('a, t) result -> unit = function Ok _ | Error _ -> ()

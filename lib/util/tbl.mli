(** Deterministic views of hash tables.

    [Hashtbl] traversal order depends on the table's insertion history (and
    on hash randomization when enabled), so any [Hashtbl.iter]/[fold] whose
    effects reach state mutation or output silently breaks byte-identical
    seed replay. The nsql-lint rule DET-HASHITER bans raw traversal across
    [lib/]; this module is the sanctioned replacement. *)

val sorted_bindings :
  ?compare:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** [sorted_bindings tbl] is the bindings of [tbl] sorted by key
    ([Stdlib.compare] by default). When a key was bound several times with
    [Hashtbl.add], every binding appears; tables maintained with
    [Hashtbl.replace] (the norm in this codebase) contribute one binding per
    key. O(n log n) — fine for the checkpoint/recovery/diagnostic paths it
    serves; keep hot paths on point lookups. *)

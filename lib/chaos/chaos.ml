module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Msg = Nsql_msg.Msg
module Disk = Nsql_disk.Disk
module Row = Nsql_row.Row
module Expr = Nsql_expr.Expr
module Keycode = Nsql_util.Keycode
module Errors = Nsql_util.Errors
module Trail = Nsql_audit.Trail
module Tmf = Nsql_tmf.Tmf
module Recovery = Nsql_tmf.Recovery
module Dp = Nsql_dp.Dp
module Dp_msg = Nsql_dp.Dp_msg
module Fs = Nsql_fs.Fs
module Dtx = Nsql_dtx.Dtx
module N = Nsql_core.Nonstop_sql
module Oracle = Nsql_oracle.Oracle
module Debitcredit = Nsql_workload.Debitcredit

open Errors

(* --- deterministic pseudo-random stream --------------------------------- *)

module Prng = struct
  type t = { mutable state : int64 }

  let create ~seed = { state = Int64.of_int seed }

  (* splitmix64: every draw is one add + three xor-shift-multiplies; the
     stream depends only on the seed, never on the clock or on
     [Stdlib.Random]'s hidden global state *)
  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let split t = { state = next t }

  let int t bound =
    if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

  let float t bound =
    let u = Int64.to_float (Int64.shift_right_logical (next t) 11) in
    bound *. (u /. 9007199254740992.0 (* 2^53 *))

  let bool t = Int64.equal (Int64.logand (next t) 1L) 1L

  let pick t xs = List.nth xs (int t (List.length xs))
end

(* --- fault plans --------------------------------------------------------- *)

type fault =
  | F_msg_delay of { victim : string; delay_us : float; count : int }
  | F_msg_flap of { victim : string; retry_us : float; count : int }
  | F_takeover of { node : int; volume : int }
  | F_crash of { node : int; volume : int }
  | F_disk_transient of {
      node : int;
      volume : int;
      penalty_us : float;
      count : int;
    }
  | F_vm_pressure of { node : int; volume : int; frames : int }
  | F_audit_stall of { node : int; stall_us : float }
  | F_2pc_crash of { commit : bool; participant_crash : bool }

type event = { due : float; fault : fault }

type topology = Single | Cluster

type plan = { p_seed : int; p_topology : topology; p_events : event list }

let fault_kind = function
  | F_msg_delay _ -> "msg_delay"
  | F_msg_flap _ -> "msg_flap"
  | F_takeover _ -> "takeover"
  | F_crash _ -> "crash"
  | F_disk_transient _ -> "disk_transient"
  | F_vm_pressure _ -> "vm_pressure"
  | F_audit_stall _ -> "audit_stall"
  | F_2pc_crash _ -> "2pc_crash"

let fault_kinds =
  [
    "msg_delay";
    "msg_flap";
    "takeover";
    "crash";
    "disk_transient";
    "vm_pressure";
    "audit_stall";
    "2pc_crash";
  ]

let pp_fault ppf = function
  | F_msg_delay { victim; delay_us; count } ->
      Format.fprintf ppf "msg-delay %s +%.0fus x%d" victim delay_us count
  | F_msg_flap { victim; retry_us; count } ->
      Format.fprintf ppf "msg-path-fail %s retry %.0fus x%d" victim retry_us
        count
  | F_takeover { node; volume } ->
      Format.fprintf ppf "takeover node %d volume %d" node volume
  | F_crash { node; volume } ->
      Format.fprintf ppf "crash+recover node %d volume %d" node volume
  | F_disk_transient { node; volume; penalty_us; count } ->
      Format.fprintf ppf "disk-transient node %d volume %d +%.0fus x%d" node
        volume penalty_us count
  | F_vm_pressure { node; volume; frames } ->
      Format.fprintf ppf "vm-pressure node %d volume %d steal %d frames" node
        volume frames
  | F_audit_stall { node; stall_us } ->
      Format.fprintf ppf "audit-stall node %d %.0fus" node stall_us
  | F_2pc_crash { commit; participant_crash } ->
      Format.fprintf ppf "2pc coordinator crash (decision %s%s)"
        (if commit then "commit" else "abort")
        (if participant_crash then ", participant crashes in-doubt" else "")

let pp_topology ppf = function
  | Single -> Format.pp_print_string ppf "single-node"
  | Cluster -> Format.pp_print_string ppf "2-node cluster"

let pp_plan ppf p =
  Format.fprintf ppf "@[<v>seed %d, %a, %d faults:" p.p_seed pp_topology
    p.p_topology (List.length p.p_events);
  List.iter
    (fun e -> Format.fprintf ppf "@,  @[%10.0fus  %a@]" e.due pp_fault e.fault)
    p.p_events;
  Format.fprintf ppf "@]"

let default_topology seed = if seed land 3 = 3 then Cluster else Single

(* materialize the fault schedule from the plan stream; [horizon] is the
   simulated-time window the events are spread over *)
let build_plan prng ~topology ~horizon =
  let endpoints =
    match topology with
    | Single -> [ "$DATA1"; "$DATA2" ]
    | Cluster -> [ "$N0DATA1"; "$N1DATA1"; "$TMP0"; "$TMP1" ]
  in
  let volumes =
    match topology with
    | Single -> [ (0, 0); (0, 1) ]
    | Cluster -> [ (0, 0); (1, 0) ]
  in
  let nodes = match topology with Single -> 1 | Cluster -> 2 in
  let rand_msg_delay () =
    F_msg_delay
      {
        victim = Prng.pick prng endpoints;
        delay_us = 200. +. Prng.float prng 4800.;
        count = 1 + Prng.int prng 8;
      }
  in
  let rand_fault () =
    match Prng.int prng 8 with
    | 0 -> rand_msg_delay ()
    | 1 ->
        F_msg_flap
          {
            victim = Prng.pick prng endpoints;
            retry_us = 500. +. Prng.float prng 2500.;
            count = 1 + Prng.int prng 5;
          }
    | 2 ->
        let node, volume = Prng.pick prng volumes in
        F_takeover { node; volume }
    | 3 ->
        let node, volume = Prng.pick prng volumes in
        F_crash { node; volume }
    | 4 ->
        let node, volume = Prng.pick prng volumes in
        F_disk_transient
          {
            node;
            volume;
            penalty_us = 5_000. +. Prng.float prng 25_000.;
            count = 1 + Prng.int prng 3;
          }
    | 5 ->
        let node, volume = Prng.pick prng volumes in
        F_vm_pressure { node; volume; frames = 8 + Prng.int prng 56 }
    | 6 ->
        F_audit_stall
          {
            node = Prng.int prng nodes;
            stall_us = 10_000. +. Prng.float prng 70_000.;
          }
    | _ -> (
        match topology with
        | Cluster ->
            F_2pc_crash
              { commit = Prng.bool prng; participant_crash = Prng.bool prng }
        | Single -> rand_msg_delay ())
  in
  (* every plan carries the scenario the archetype cares most about: a full
     crash + rollforward, and (clusters) a mid-commit coordinator loss *)
  let mandatory =
    match topology with
    | Single ->
        [
          F_crash { node = 0; volume = Prng.int prng 2 };
          F_takeover { node = 0; volume = Prng.int prng 2 };
        ]
    | Cluster ->
        [
          F_2pc_crash
            { commit = Prng.bool prng; participant_crash = Prng.bool prng };
          F_crash { node = Prng.int prng 2; volume = 0 };
          (* a process-pair takeover racing the distributed workload — with
             2PC in the plan, some seeds land it mid-prepare/mid-commit *)
          F_takeover { node = Prng.int prng 2; volume = 0 };
        ]
  in
  let extra = List.init (2 + Prng.int prng 5) (fun _ -> rand_fault ()) in
  let events =
    List.map
      (fun fault -> { due = Prng.float prng horizon; fault })
      (mandatory @ extra)
  in
  List.sort (fun a b -> compare a.due b.due) events

let streams ~seed =
  let root = Prng.create ~seed in
  let plan_prng = Prng.split root in
  let wl_prng = Prng.split root in
  (plan_prng, wl_prng)

let horizon_of txs = float_of_int txs *. 30_000.

let plan ?(txs = 120) ?topology ~seed () =
  let p_topology =
    match topology with Some t -> t | None -> default_topology seed
  in
  let plan_prng, _ = streams ~seed in
  {
    p_seed = seed;
    p_topology;
    p_events =
      build_plan plan_prng ~topology:p_topology ~horizon:(horizon_of txs);
  }

(* --- the engine ----------------------------------------------------------- *)

(* Faults that are transparent to in-flight operations (delays, path
   retries, takeover, cache pressure, stalls) act the moment their event
   fires. Destructive faults — losing a whole volume — are flagged as
   pending and consumed by the driver at the next operation boundary,
   where the open transaction can be aborted between the crash and the
   rollforward, the way an operator would restart a failed disk pair. *)
type engine = {
  en_sim : Sim.t;
  mutable en_msg : (string * Msg.fault_action * int ref) list;
  en_disk : (string, float * int ref) Hashtbl.t;  (** dp name -> penalty *)
  mutable en_pending_crash : (int * int) list;
  mutable en_pending_steal : (int * int * int) list;
  mutable en_pending_2pc : (bool * bool) list;
  en_applied : (string, int) Hashtbl.t;
}

let engine_create sim =
  {
    en_sim = sim;
    en_msg = [];
    en_disk = Hashtbl.create 4;
    en_pending_crash = [];
    en_pending_steal = [];
    en_pending_2pc = [];
    en_applied = Hashtbl.create 8;
  }

let bump_applied engine kind =
  Hashtbl.replace engine.en_applied kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt engine.en_applied kind));
  let s = Sim.stats engine.en_sim in
  s.Stats.faults_injected <- s.Stats.faults_injected + 1

let msg_filter engine ~from:_ ~to_name ~tag:_ =
  let rec go = function
    | [] -> Msg.Fault_pass
    | (victim, action, remaining) :: rest ->
        if String.equal victim to_name && !remaining > 0 then begin
          decr remaining;
          action
        end
        else go rest
  in
  go engine.en_msg

let apply_fault engine nodes fault =
  bump_applied engine (fault_kind fault);
  match fault with
  | F_msg_delay { victim; delay_us; count } ->
      engine.en_msg <-
        (victim, Msg.Fault_delay delay_us, ref count) :: engine.en_msg
  | F_msg_flap { victim; retry_us; count } ->
      engine.en_msg <-
        (victim, Msg.Fault_path_retry retry_us, ref count) :: engine.en_msg
  | F_takeover { node; volume } ->
      ignore (N.takeover_volume nodes.(node) volume)
  | F_crash { node; volume } ->
      engine.en_pending_crash <- engine.en_pending_crash @ [ (node, volume) ]
  | F_disk_transient { node; volume; penalty_us; count } ->
      Hashtbl.replace engine.en_disk
        (Dp.name (N.dps nodes.(node)).(volume))
        (penalty_us, ref count)
  | F_vm_pressure { node; volume; frames } ->
      engine.en_pending_steal <-
        engine.en_pending_steal @ [ (node, volume, frames) ]
  | F_audit_stall { node; stall_us } ->
      Disk.stall (Trail.volume (N.trail nodes.(node))) ~us:stall_us
  | F_2pc_crash { commit; participant_crash } ->
      engine.en_pending_2pc <-
        engine.en_pending_2pc @ [ (commit, participant_crash) ]

let arm engine nodes events =
  Msg.set_fault_filter (N.msys nodes.(0)) (Some (msg_filter engine));
  Array.iter
    (fun n ->
      Array.iter
        (fun dp ->
          Disk.set_fault_hook (Dp.volume dp)
            (Some
               (fun () ->
                 match Hashtbl.find_opt engine.en_disk (Dp.name dp) with
                 | Some (penalty, remaining) when !remaining > 0 ->
                     decr remaining;
                     Some penalty
                 | _ -> None)))
        (N.dps n))
    nodes;
  let base = Sim.now engine.en_sim in
  List.iter
    (fun { due; fault } ->
      Sim.schedule engine.en_sim ~at:(base +. due) (fun () ->
          apply_fault engine nodes fault))
    events

(* --- run context ---------------------------------------------------------- *)

type ctx = {
  cx_nodes : N.node array;
  cx_cluster : N.cluster option;
  cx_engine : engine;
  cx_oracle : Oracle.t;
  mutable cx_attempted : int;
  mutable cx_committed : int;
  mutable cx_aborted : int;
  mutable cx_recoveries : int;
  mutable cx_violations : string list;  (** reversed *)
}

let ctx_create ~nodes ~cluster ~engine ~oracle =
  {
    cx_nodes = nodes;
    cx_cluster = cluster;
    cx_engine = engine;
    cx_oracle = oracle;
    cx_attempted = 0;
    cx_committed = 0;
    cx_aborted = 0;
    cx_recoveries = 0;
    cx_violations = [];
  }

let add_vio ctx v = ctx.cx_violations <- v :: ctx.cx_violations

let committed ctx view =
  Oracle.commit ctx.cx_oracle view;
  ctx.cx_committed <- ctx.cx_committed + 1

let aborted ctx = ctx.cx_aborted <- ctx.cx_aborted + 1

let recover_one ctx node volume =
  ctx.cx_recoveries <- ctx.cx_recoveries + 1;
  match ctx.cx_cluster with
  | Some c -> ignore (N.recover_cluster_volume c ~node ~volume)
  | None -> ignore (N.recover_volume ctx.cx_nodes.(node) volume)

let take_crashes engine =
  let cs = List.sort_uniq compare engine.en_pending_crash in
  engine.en_pending_crash <- [];
  cs

let take_steals engine =
  let s = engine.en_pending_steal in
  engine.en_pending_steal <- [];
  s

let take_2pc engine =
  match engine.en_pending_2pc with
  | [] -> None
  | f :: rest ->
      engine.en_pending_2pc <- rest;
      Some f

let poll_steals ctx =
  List.iter
    (fun (node, volume, frames) ->
      ignore (N.vm_pressure ctx.cx_nodes.(node) volume ~frames))
    (take_steals ctx.cx_engine)

let apply_crashes ctx crashes ~abort =
  List.iter
    (fun (node, volume) -> N.crash_volume ctx.cx_nodes.(node) volume)
    crashes;
  (* the crash dropped the volume's undo actions; the open transaction can
     now abort cleanly on the surviving volumes before rollforward *)
  abort ();
  List.iter (fun (node, volume) -> recover_one ctx node volume) crashes

let poll_idle ctx =
  poll_steals ctx;
  match take_crashes ctx.cx_engine with
  | [] -> ()
  | cs -> apply_crashes ctx cs ~abort:(fun () -> ())

(* operation-boundary checkpoint inside a transaction: if a crash is
   pending, the transaction is doomed — crash, abort it, recover, and
   unwind with [Tx_aborted] *)
let step ctx ~abort op =
  poll_steals ctx;
  match take_crashes ctx.cx_engine with
  | [] -> op ()
  | cs ->
      apply_crashes ctx cs ~abort;
      fail (Errors.Tx_aborted "chaos: volume crashed")

(* --- transaction wrappers -------------------------------------------------- *)

(* a polymorphic operation-boundary checkpoint, passed into transaction
   bodies (a record field so one body can step operations of different
   result types) *)
type stepper = {
  stp : 'a. (unit -> ('a, Errors.t) result) -> ('a, Errors.t) result;
}

(* Run [f ~tx ~view ~stp] in a programmatic (File System level)
   transaction on [node]; every operation inside [f] goes through [stp] so
   pending destructive faults land on operation boundaries. *)
let with_fs_tx ctx node f =
  ctx.cx_attempted <- ctx.cx_attempted + 1;
  let tmf = N.tmf node in
  let tx = Tmf.begin_tx tmf in
  let view = Oracle.view ctx.cx_oracle in
  let abort () = if Tmf.is_active tmf ~tx then ignore (Tmf.abort tmf ~tx) in
  let stp = { stp = (fun op -> step ctx ~abort op) } in
  match f ~tx ~view ~stp with
  | Ok `Commit -> (
      match Tmf.commit tmf ~tx with
      | Ok () -> committed ctx view
      | Error _ -> aborted ctx)
  | Ok `Abort ->
      abort ();
      aborted ctx
  | Error _ ->
      abort ();
      aborted ctx

(* Same shape for a SQL transaction through a session. *)
let with_sql_tx ctx session f =
  ctx.cx_attempted <- ctx.cx_attempted + 1;
  match N.exec session "BEGIN WORK" with
  | Error _ -> aborted ctx
  | Ok _ -> (
      let view = Oracle.view ctx.cx_oracle in
      let abort () =
        match N.current_tx session with
        | Some _ -> ignore (N.exec session "ROLLBACK WORK")
        | None -> ()
      in
      let stp = { stp = (fun op -> step ctx ~abort op) } in
      match f ~view ~stp with
      | Ok `Commit -> (
          match N.exec session "COMMIT WORK" with
          | Ok _ -> committed ctx view
          | Error _ -> aborted ctx)
      | Ok `Abort ->
          abort ();
          aborted ctx
      | Error _ ->
          abort ();
          aborted ctx)

(* --- dumps (post-recovery state, read through ordinary scans) ------------- *)

let dump_keyed node file schema =
  let fs = N.fs node in
  Tmf.run (N.tmf node) (fun tx ->
      let sc =
        Fs.open_scan fs file ~tx ~access:Fs.A_vsbb ~range:Expr.full_range
          ~lock:Dp_msg.L_none ()
      in
      let rec loop acc =
        match Fs.scan_next fs sc with
        | Ok None -> Ok (List.rev acc)
        | Ok (Some row) -> loop ((Row.key_of_row schema row, row) :: acc)
        | Error e -> Error e
      in
      (* close on every exit — including a raise — since scans hold SCBs
         and a trace span open *)
      Fun.protect
        ~finally:(fun () -> Fs.close_scan fs sc)
        (fun () -> loop []))

let dump_index node file index =
  let fs = N.fs node in
  Tmf.run (N.tmf node) (fun tx ->
      let* next, close =
        Fs.index_scan fs file ~tx ~index ~range:Expr.full_range
          ~lock:Dp_msg.L_none ()
      in
      let rec loop acc =
        match next () with
        | Ok None -> Ok (List.rev acc)
        | Ok (Some row) -> loop (row :: acc)
        | Error e -> Error e
      in
      (* close on raise too, not just on the fall-through path *)
      Fun.protect ~finally:close (fun () -> loop []))

let dump_entries node file =
  let fs = N.fs node in
  Tmf.run (N.tmf node) (fun tx ->
      (* entry-sequenced files are read with the ENSCRIBE sequential
         primitive (addressed by record address), not a key-range scan *)
      let rec loop acc ~from_key ~inclusive =
        match
          Fs.read_next_raw fs file ~tx ~from_key ~inclusive
            ~lock:Dp_msg.L_none ~sbb:true
        with
        | Ok [] -> Ok (List.rev acc)
        | Ok batch ->
            let last_key = fst (List.nth batch (List.length batch - 1)) in
            loop
              (List.rev_append (List.map snd batch) acc)
              ~from_key:last_key ~inclusive:false
        | Error e -> Error e
      in
      loop [] ~from_key:"" ~inclusive:true)

let check_dump ctx what = function
  | Ok violations -> List.iter (add_vio ctx) violations
  | Error e -> add_vio ctx (what ^ " dump failed: " ^ Errors.to_string e)

(* --- the single-node workload ---------------------------------------------- *)

let acct_file = "CHACCT"
let hist_file = "CHHIST"
let acct_index = "CHACCT_GRP"

type fsenv = {
  fe_node : N.node;
  fe_session : N.session;
  fe_acct : Fs.file;
  fe_acct_schema : Row.schema;
  fe_hist : Fs.file;
  fe_item_name : string;
  fe_item_schema : Row.schema;
  fe_dc : Debitcredit.sql_db;
  fe_dc_accounts : int;
  mutable fe_dc_sum : float;
  mutable fe_dc_count : int;
  mutable fe_next_acct : int;
  mutable fe_next_item : int;
}

let acct_schema_v () =
  Row.schema
    [|
      Row.column "acctno" Row.T_int;
      Row.column "balance" Row.T_float;
      Row.column "grp" Row.T_int;
      Row.column ~nullable:true "note" (Row.T_varchar 16);
    |]
    ~key:[ "acctno" ]

let setup_single oracle node =
  let fs = N.fs node and dps = N.dps node in
  let schema = acct_schema_v () in
  let acct =
    Errors.get_ok ~ctx:"chaos: create CHACCT"
      (Fs.create_file fs ~fname:acct_file ~schema
         ~partitions:
           [
             { Fs.ps_lo = ""; ps_dp = dps.(0) };
             { Fs.ps_lo = Keycode.of_int 1000; ps_dp = dps.(1) };
           ]
         ~indexes:[ { Fs.is_name = acct_index; is_cols = [ 2 ]; is_dp = dps.(1) } ]
         ())
  in
  let hist =
    Errors.get_ok ~ctx:"chaos: create CHHIST"
      (Fs.create_enscribe_file fs ~fname:hist_file
         ~kind:Dp_msg.K_entry_sequenced
         ~partitions:[ { Fs.ps_lo = ""; ps_dp = dps.(0) } ])
  in
  Oracle.add_file oracle ~name:acct_file ~schema
    ~indexes:[ (acct_index, [ 2 ]) ];
  Oracle.add_entry_file oracle ~name:hist_file;
  let view = Oracle.view oracle in
  Errors.get_ok ~ctx:"chaos: load CHACCT"
    (Tmf.run (N.tmf node) (fun tx ->
         let rec go i =
           if i >= 40 then Ok ()
           else
             let row =
               [|
                 Row.Vint (i * 50);
                 Row.Vfloat 1000.;
                 Row.Vint (i mod 5);
                 (if i mod 3 = 0 then Row.Null
                  else Row.Vstr (Printf.sprintf "o%02d" i));
               |]
             in
             let* () = Fs.insert_row fs acct ~tx row in
             Oracle.v_insert view ~file:acct_file row;
             go (i + 1)
         in
         go 0));
  Oracle.commit oracle view;
  (* the SQL side: an inventory table with an indexed column, driven
     through the Executor *)
  let session = N.session node in
  ignore
    (N.exec_exn session
       "CREATE TABLE item (k INT PRIMARY KEY, qty INT NOT NULL, tag \
        VARCHAR(8))");
  ignore (N.exec_exn session "CREATE INDEX item_qty ON item (qty)");
  let item_view = ref None in
  for k = 1 to 16 do
    ignore
      (N.exec_exn session
         (Printf.sprintf "INSERT INTO item VALUES (%d, %d, 'i%d')" k (100 + k)
            k));
    ignore item_view
  done;
  let item_tbl =
    Errors.get_ok ~ctx:"chaos: find item" (N.Catalog.find (N.catalog node) "item")
  in
  let item_name = Fs.file_name item_tbl.N.Catalog.t_file in
  Oracle.add_file oracle ~name:item_name ~schema:item_tbl.N.Catalog.t_schema
    ~indexes:[ ("item_qty", [ 1 ]) ];
  let iview = Oracle.view oracle in
  for k = 1 to 16 do
    Oracle.v_insert iview ~file:item_name
      [| Row.Vint k; Row.Vint (100 + k); Row.Vstr (Printf.sprintf "i%d" k) |]
  done;
  Oracle.commit oracle iview;
  (* DebitCredit rides along for the balance-conservation invariant *)
  let dc =
    Errors.get_ok ~ctx:"chaos: DebitCredit setup"
      (Debitcredit.setup_sql node ~accounts:24 ~tellers:6 ~branches:3)
  in
  {
    fe_node = node;
    fe_session = session;
    fe_acct = acct;
    fe_acct_schema = schema;
    fe_hist = hist;
    fe_item_name = item_name;
    fe_item_schema = item_tbl.N.Catalog.t_schema;
    fe_dc = dc;
    fe_dc_accounts = 24;
    fe_dc_sum = 0.;
    fe_dc_count = 0;
    fe_next_acct = 10_000;
    fe_next_item = 1_000;
  }

(* add [delta] to the balance of [key], through whichever of the two update
   paths the stream picks, and mirror the effect into the view *)
let bump_balance env prng ~tx ~view ~stp ~key ~delta =
  let fs = N.fs env.fe_node in
  let assigns =
    [
      Expr.
        {
          target = 1;
          source = Binop (Add, Field 1, Const (Row.Vfloat delta));
        };
    ]
  in
  let* () =
    if Prng.bool prng then
      (* set-oriented: selection and update expression at the data source *)
      let* n =
        stp.stp (fun () ->
            Fs.update_subset fs env.fe_acct ~tx
              ~range:Expr.{ lo = key; hi = Keycode.successor key }
              assigns)
      in
      if n = 1 then Ok ()
      else fail (Errors.Internal (Printf.sprintf "update_subset hit %d rows" n))
    else
      (* requester-side read-modify-rewrite *)
      stp.stp (fun () -> Fs.update_row_via_key fs env.fe_acct ~tx ~key assigns)
  in
  match Oracle.v_lookup view ~file:acct_file ~key with
  | Some row ->
      let row' = Array.copy row in
      (match row.(1) with
      | Row.Vfloat b -> row'.(1) <- Row.Vfloat (b +. delta)
      | _ -> ());
      Oracle.v_update view ~file:acct_file row';
      Ok ()
  | None -> fail (Errors.Internal "oracle lost a committed account")

let append_hist env ~tx ~view ~stp record =
  let fs = N.fs env.fe_node in
  let* _addr = stp.stp (fun () -> Fs.append_entry fs env.fe_hist ~tx ~record) in
  Oracle.v_append view ~file:hist_file ~record;
  Ok ()

let pick_two prng xs =
  let n = List.length xs in
  let i = Prng.int prng n in
  let j0 = Prng.int prng (n - 1) in
  let j = if j0 >= i then j0 + 1 else j0 in
  (List.nth xs i, List.nth xs j)

let acctno_of (_key, row) =
  match row.(0) with Row.Vint a -> a | _ -> -1

let fs_transfer ctx env prng =
  let accounts = Oracle.rows ctx.cx_oracle ~file:acct_file in
  if List.length accounts < 2 then ()
  else
    with_fs_tx ctx env.fe_node (fun ~tx ~view ~stp ->
        let a, b = pick_two prng accounts in
        let delta = float_of_int (1 + Prng.int prng 49) in
        let* () = bump_balance env prng ~tx ~view ~stp ~key:(fst a) ~delta in
        let* () =
          bump_balance env prng ~tx ~view ~stp ~key:(fst b)
            ~delta:(-.delta)
        in
        let* () =
          if Prng.bool prng then
            append_hist env ~tx ~view ~stp
              (Printf.sprintf "xfer %d %d %.0f" (acctno_of a) (acctno_of b)
                 delta)
          else Ok ()
        in
        Ok `Commit)

let acct_insert ctx env prng =
  with_fs_tx ctx env.fe_node (fun ~tx ~view ~stp ->
      let a = env.fe_next_acct in
      env.fe_next_acct <- a + 1 + Prng.int prng 3;
      let row =
        [|
          Row.Vint a;
          Row.Vfloat (float_of_int (100 + Prng.int prng 900));
          Row.Vint (Prng.int prng 5);
          (if Prng.bool prng then Row.Vstr "new" else Row.Null);
        |]
      in
      let fs = N.fs env.fe_node in
      let* () = stp.stp (fun () -> Fs.insert_row fs env.fe_acct ~tx row) in
      Oracle.v_insert view ~file:acct_file row;
      let* () = append_hist env ~tx ~view ~stp (Printf.sprintf "ins %d" a) in
      Ok `Commit)

let acct_delete ctx env prng =
  if Oracle.row_count ctx.cx_oracle ~file:acct_file < 15 then
    acct_insert ctx env prng
  else
    with_fs_tx ctx env.fe_node (fun ~tx ~view ~stp ->
        let accounts = Oracle.rows ctx.cx_oracle ~file:acct_file in
        let victim = List.nth accounts (Prng.int prng (List.length accounts)) in
        let fs = N.fs env.fe_node in
        let* () =
          stp.stp (fun () ->
              Fs.delete_row_via_key fs env.fe_acct ~tx ~key:(fst victim))
        in
        Oracle.v_delete view ~file:acct_file ~key:(fst victim);
        let* () =
          append_hist env ~tx ~view ~stp
            (Printf.sprintf "del %d" (acctno_of victim))
        in
        Ok `Commit)

let item_key env k =
  Errors.get_ok ~ctx:"chaos: item key"
    (Row.key_of_values env.fe_item_schema [ Row.Vint k ])

let exec_affected session sql =
  match N.exec session sql with
  | Ok (N.Affected n) -> Ok n
  | Ok _ -> Ok 0
  | Error e -> Error e

(* mirror a qty bump for item [k] if the statement touched one row *)
let mirror_item_bump ctx env view k d n =
  if n = 1 then
    let key = item_key env k in
    match Oracle.v_lookup view ~file:env.fe_item_name ~key with
    | Some row ->
        let row' = Array.copy row in
        (match row.(1) with
        | Row.Vint q -> row'.(1) <- Row.Vint (q + d)
        | _ -> ());
        Oracle.v_update view ~file:env.fe_item_name row';
        Ok ()
    | None -> fail (Errors.Internal "oracle lost a committed item")
  else begin
    ignore ctx;
    Ok ()
  end

let sql_item_transfer ctx env prng =
  let items = Oracle.rows ctx.cx_oracle ~file:env.fe_item_name in
  if List.length items < 2 then ()
  else
    with_sql_tx ctx env.fe_session (fun ~view ~stp ->
        let a, b = pick_two prng items in
        let ka = acctno_of a and kb = acctno_of b in
        let d = 1 + Prng.int prng 20 in
        let* na =
          stp.stp (fun () ->
              exec_affected env.fe_session
                (Printf.sprintf "UPDATE item SET qty = qty + %d WHERE k = %d" d
                   ka))
        in
        let* () = mirror_item_bump ctx env view ka d na in
        let* nb =
          stp.stp (fun () ->
              exec_affected env.fe_session
                (Printf.sprintf "UPDATE item SET qty = qty - %d WHERE k = %d" d
                   kb))
        in
        let* () = mirror_item_bump ctx env view kb (-d) nb in
        Ok `Commit)

let sql_item_churn ctx env prng =
  let items = Oracle.rows ctx.cx_oracle ~file:env.fe_item_name in
  let do_insert = List.length items <= 6 || Prng.bool prng in
  with_sql_tx ctx env.fe_session (fun ~view ~stp ->
      if do_insert then begin
        let k = env.fe_next_item in
        env.fe_next_item <- k + 1 + Prng.int prng 2;
        let q = 50 + Prng.int prng 200 in
        let* n =
          stp.stp (fun () ->
              exec_affected env.fe_session
                (Printf.sprintf "INSERT INTO item VALUES (%d, %d, 'c%d')" k q k))
        in
        if n = 1 then
          Oracle.v_insert view ~file:env.fe_item_name
            [| Row.Vint k; Row.Vint q; Row.Vstr (Printf.sprintf "c%d" k) |];
        Ok `Commit
      end
      else begin
        let victim = List.nth items (Prng.int prng (List.length items)) in
        let k = acctno_of victim in
        let* n =
          stp.stp (fun () ->
              exec_affected env.fe_session
                (Printf.sprintf "DELETE FROM item WHERE k = %d" k))
        in
        if n = 1 then
          Oracle.v_delete view ~file:env.fe_item_name ~key:(item_key env k);
        Ok `Commit
      end)

(* a read-only transaction that drains a full scan (base or via the
   secondary index) and cross-checks it against the oracle mid-run — this
   is where takeover-mid-scan and message flaps must not lose, duplicate
   or reorder rows under the continuation re-drive protocol *)
let scan_check ctx env prng =
  with_fs_tx ctx env.fe_node (fun ~tx ~view:_ ~stp ->
      let fs = N.fs env.fe_node in
      if Prng.bool prng then begin
        let sc =
          Fs.open_scan fs env.fe_acct ~tx ~access:Fs.A_vsbb
            ~range:Expr.full_range ~lock:Dp_msg.L_none ()
        in
        let rec loop acc =
          match stp.stp (fun () -> Fs.scan_next fs sc) with
          | Ok None -> Ok (List.rev acc)
          | Ok (Some row) -> loop (row :: acc)
          | Error e -> Error e
        in
        let* rows =
          Fun.protect
            ~finally:(fun () -> Fs.close_scan fs sc)
            (fun () -> loop [])
        in
        let actual =
          List.map (fun r -> (Row.key_of_row env.fe_acct_schema r, r)) rows
        in
        List.iter
          (fun v -> add_vio ctx ("mid-run scan: " ^ v))
          (Oracle.check_file ctx.cx_oracle ~file:acct_file ~actual);
        Ok `Commit
      end
      else begin
        let* next, close =
          stp.stp (fun () ->
              Fs.index_scan fs env.fe_acct ~tx ~index:acct_index
                ~range:Expr.full_range ~lock:Dp_msg.L_none ())
        in
        let rec loop acc =
          match stp.stp (fun () -> next ()) with
          | Ok None -> Ok (List.rev acc)
          | Ok (Some row) -> loop (row :: acc)
          | Error e -> Error e
        in
        (* close on raise too, not just on the fall-through path *)
        let* rows = Fun.protect ~finally:close (fun () -> loop []) in
        List.iter
          (fun v -> add_vio ctx ("mid-run index scan: " ^ v))
          (Oracle.check_index ctx.cx_oracle ~file:acct_file ~index:acct_index
             ~actual:rows);
        Ok `Commit
      end)

let deliberate_abort ctx env prng =
  let accounts = Oracle.rows ctx.cx_oracle ~file:acct_file in
  if List.length accounts < 2 then ()
  else
    with_fs_tx ctx env.fe_node (fun ~tx ~view ~stp ->
        let a, b = pick_two prng accounts in
        let delta = float_of_int (1 + Prng.int prng 30) in
        let* () = bump_balance env prng ~tx ~view ~stp ~key:(fst a) ~delta in
        let* () =
          if Prng.bool prng then
            bump_balance env prng ~tx ~view ~stp ~key:(fst b)
              ~delta:(-.delta)
          else Ok ()
        in
        (* changed our mind: the undo protocol must erase everything *)
        Ok `Abort)

let dc_tx ctx env prng =
  ctx.cx_attempted <- ctx.cx_attempted + 1;
  let aid = Prng.int prng env.fe_dc_accounts in
  let delta =
    float_of_int (1 + Prng.int prng 100)
    *. (if Prng.bool prng then 1. else -1.)
  in
  match Debitcredit.run_sql_tx env.fe_dc env.fe_session ~aid ~delta with
  | Ok () ->
      ctx.cx_committed <- ctx.cx_committed + 1;
      env.fe_dc_sum <- env.fe_dc_sum +. delta;
      env.fe_dc_count <- env.fe_dc_count + 1
  | Error _ ->
      aborted ctx;
      (* never leave the shared session stuck in a half-open transaction *)
      (match N.current_tx env.fe_session with
      | Some _ -> ignore (N.exec env.fe_session "ROLLBACK WORK")
      | None -> ())

let single_tx ctx env prng =
  match Prng.int prng 10 with
  | 0 | 1 -> fs_transfer ctx env prng
  | 2 -> acct_insert ctx env prng
  | 3 -> acct_delete ctx env prng
  | 4 | 5 -> sql_item_transfer ctx env prng
  | 6 -> sql_item_churn ctx env prng
  | 7 -> scan_check ctx env prng
  | 8 -> deliberate_abort ctx env prng
  | _ -> dc_tx ctx env prng

let verify_single ctx env =
  let node = env.fe_node in
  let sim = N.sim node in
  poll_idle ctx;
  Sim.drain sim;
  poll_idle ctx;
  (* the strongest durability probe: lose every volume, roll the audit
     trail forward, and require the committed state back *)
  Array.iteri
    (fun i _ ->
      N.crash_volume node i;
      recover_one ctx 0 i)
    (N.dps node);
  Array.iter
    (fun dp ->
      match Dp.check_invariants dp with
      | Ok () -> ()
      | Error m -> add_vio ctx ("invariant: " ^ m))
    (N.dps node);
  check_dump ctx acct_file
    (Result.map
       (fun actual -> Oracle.check_file ctx.cx_oracle ~file:acct_file ~actual)
       (dump_keyed node env.fe_acct env.fe_acct_schema));
  check_dump ctx (acct_file ^ "." ^ acct_index)
    (Result.map
       (fun actual ->
         Oracle.check_index ctx.cx_oracle ~file:acct_file ~index:acct_index
           ~actual)
       (dump_index node env.fe_acct acct_index));
  check_dump ctx hist_file
    (Result.map
       (fun actual -> Oracle.check_entries ctx.cx_oracle ~file:hist_file ~actual)
       (dump_entries node env.fe_hist));
  (match N.Catalog.find (N.catalog node) "item" with
  | Error e -> add_vio ctx ("item lookup failed: " ^ Errors.to_string e)
  | Ok tbl ->
      check_dump ctx env.fe_item_name
        (Result.map
           (fun actual ->
             Oracle.check_file ctx.cx_oracle ~file:env.fe_item_name ~actual)
           (dump_keyed node tbl.N.Catalog.t_file env.fe_item_schema));
      check_dump ctx (env.fe_item_name ^ ".item_qty")
        (Result.map
           (fun actual ->
             Oracle.check_index ctx.cx_oracle ~file:env.fe_item_name
               ~index:"item_qty" ~actual)
           (dump_index node tbl.N.Catalog.t_file "item_qty")));
  (* the workload invariant: money is conserved across every committed
     DebitCredit transaction, and the history grew exactly once each *)
  match Debitcredit.sql_balances env.fe_dc env.fe_session with
  | Error e -> add_vio ctx ("DebitCredit balances failed: " ^ Errors.to_string e)
  | Ok (sum, hcount) ->
      let expected = (1000. *. float_of_int env.fe_dc_accounts) +. env.fe_dc_sum in
      if Float.abs (sum -. expected) > 1e-6 then
        add_vio ctx
          (Printf.sprintf
             "DebitCredit conservation: balances sum to %.6f, oracle expects \
              %.6f"
             sum expected);
      if hcount <> env.fe_dc_count then
        add_vio ctx
          (Printf.sprintf "DebitCredit history: %d records, oracle expects %d"
             hcount env.fe_dc_count)

(* --- the cluster workload --------------------------------------------------- *)

let cl_file i = Printf.sprintf "CLACCT%d" i

type clenv = {
  ce_cluster : N.cluster;
  ce_nodes : N.node array;
  ce_schema : Row.schema;
  ce_files : Fs.file array;
  ce_accounts : int;
}

let setup_cluster oracle cluster =
  let nodes = N.cluster_nodes cluster in
  let schema =
    Row.schema
      [| Row.column "acctno" Row.T_int; Row.column "balance" Row.T_float |]
      ~key:[ "acctno" ]
  in
  let accounts = 12 in
  let files =
    Array.mapi
      (fun i node ->
        let fs = N.fs node in
        let file =
          Errors.get_ok ~ctx:"chaos: create CLACCT"
            (Fs.create_file fs ~fname:(cl_file i) ~schema
               ~partitions:[ { Fs.ps_lo = ""; ps_dp = (N.dps node).(0) } ]
               ~indexes:[] ())
        in
        Oracle.add_file oracle ~name:(cl_file i) ~schema ~indexes:[];
        let view = Oracle.view oracle in
        Errors.get_ok ~ctx:"chaos: load CLACCT"
          (Tmf.run (N.tmf node) (fun tx ->
               let rec go j =
                 if j >= accounts then Ok ()
                 else
                   let row = [| Row.Vint j; Row.Vfloat 100. |] in
                   let* () = Fs.insert_row fs file ~tx row in
                   Oracle.v_insert view ~file:(cl_file i) row;
                   go (j + 1)
               in
               go 0));
        Oracle.commit oracle view;
        file)
      nodes
  in
  { ce_cluster = cluster; ce_nodes = nodes; ce_schema = schema;
    ce_files = files; ce_accounts = accounts }

let cl_key env j =
  Errors.get_ok ~ctx:"chaos: cluster key"
    (Row.key_of_values env.ce_schema [ Row.Vint j ])

(* add [delta] to account [j] of node [i]'s file under transaction [tx] *)
let cl_bump env ~view ~stp ~node:i ~tx ~j ~delta =
  let fs = N.fs env.ce_nodes.(i) in
  let key = cl_key env j in
  let assigns =
    [
      Expr.
        {
          target = 1;
          source = Binop (Add, Field 1, Const (Row.Vfloat delta));
        };
    ]
  in
  let* () =
    stp.stp (fun () -> Fs.update_row_via_key fs env.ce_files.(i) ~tx ~key assigns)
  in
  match Oracle.v_lookup view ~file:(cl_file i) ~key with
  | Some row ->
      let row' = Array.copy row in
      (match row.(1) with
      | Row.Vfloat b -> row'.(1) <- Row.Vfloat (b +. delta)
      | _ -> ());
      Oracle.v_update view ~file:(cl_file i) row';
      Ok ()
  | None -> fail (Errors.Internal "oracle lost a committed cluster account")

(* a transfer within one node: plain local transaction *)
let cl_local_tx ctx env prng =
  let i = Prng.int prng 2 in
  with_fs_tx ctx env.ce_nodes.(i) (fun ~tx ~view ~stp ->
      let a = Prng.int prng env.ce_accounts in
      let b0 = Prng.int prng (env.ce_accounts - 1) in
      let b = if b0 >= a then b0 + 1 else b0 in
      let delta = float_of_int (1 + Prng.int prng 20) in
      let* () = cl_bump env ~view ~stp ~node:i ~tx ~j:a ~delta in
      let* () = cl_bump env ~view ~stp ~node:i ~tx ~j:b ~delta:(-.delta) in
      Ok (if Prng.int prng 8 = 0 then `Abort else `Commit))

(* a cross-node transfer under normal two-phase commit *)
let cl_transfer_normal ctx env ~src ~dst ~a ~b ~delta =
  ctx.cx_attempted <- ctx.cx_attempted + 1;
  let view = Oracle.view ctx.cx_oracle in
  match N.network_tx env.ce_cluster ~home:src with
  | Error _ -> aborted ctx
  | Ok d -> (
      let abort () = ignore (Dtx.abort d) in
      let stp = { stp = (fun op -> step ctx ~abort op) } in
      let body =
        let tx_src = Dtx.coordinator_tx d in
        let* () = cl_bump env ~view ~stp ~node:src ~tx:tx_src ~j:a ~delta:(-.delta) in
        let* tx_dst = stp.stp (fun () -> Dtx.branch d ~node_id:dst) in
        cl_bump env ~view ~stp ~node:dst ~tx:tx_dst ~j:b ~delta
      in
      match body with
      | Error _ ->
          abort ();
          aborted ctx
      | Ok () -> (
          match Dtx.commit d with
          | Ok () -> committed ctx view
          | Error _ -> aborted ctx))

(* a cross-node transfer whose coordinator is lost between PREPARE and the
   decision reaching the participant: the branch is in-doubt and must
   resolve against the coordinator node's audit trail — optionally after
   crashing the participant volume too *)
let cl_transfer_2pc_fault ctx env prng ~src ~dst ~a ~b ~delta ~commit
    ~participant_crash =
  ignore prng;
  ctx.cx_attempted <- ctx.cx_attempted + 1;
  let tmf_src = N.tmf env.ce_nodes.(src)
  and tmf_dst = N.tmf env.ce_nodes.(dst) in
  let tx_src = Tmf.begin_tx tmf_src in
  let tx_dst = Tmf.begin_tx tmf_dst in
  let view = Oracle.view ctx.cx_oracle in
  let abort_both () =
    if Tmf.is_active tmf_dst ~tx:tx_dst then ignore (Tmf.abort tmf_dst ~tx:tx_dst);
    if Tmf.is_active tmf_src ~tx:tx_src then ignore (Tmf.abort tmf_src ~tx:tx_src)
  in
  let stp = { stp = (fun op -> step ctx ~abort:abort_both op) } in
  let body =
    let* () = cl_bump env ~view ~stp ~node:src ~tx:tx_src ~j:a ~delta:(-.delta) in
    let* () = cl_bump env ~view ~stp ~node:dst ~tx:tx_dst ~j:b ~delta in
    Tmf.prepare tmf_dst ~tx:tx_dst ~coordinator_node:src ~coordinator_tx:tx_src
  in
  match body with
  | Error _ ->
      abort_both ();
      aborted ctx
  | Ok () ->
      (* the participant is now in-doubt; the coordinator process dies
         right after (or before) forcing its decision *)
      (if commit then ignore (Tmf.commit tmf_src ~tx:tx_src)
       else ignore (Tmf.abort tmf_src ~tx:tx_src));
      if participant_crash then begin
        N.crash_volume env.ce_nodes.(dst) 0;
        recover_one ctx dst 0
      end;
      let resolved =
        Recovery.coordinator_committed (N.trail env.ce_nodes.(src)) ~tx:tx_src
      in
      if resolved <> commit then
        add_vio ctx
          (Printf.sprintf
             "2PC resolution mismatch: coordinator decided %s but trail says %s"
             (if commit then "commit" else "abort")
             (if resolved then "commit" else "abort"));
      (match Tmf.state tmf_dst ~tx:tx_dst with
      | Some (Tmf.Active | Tmf.Prepared) ->
          if resolved then ignore (Tmf.commit tmf_dst ~tx:tx_dst)
          else ignore (Tmf.abort tmf_dst ~tx:tx_dst)
      | _ -> ());
      if commit then committed ctx view else aborted ctx

let cl_transfer ctx env prng =
  let src = if Prng.bool prng then 0 else 1 in
  let dst = 1 - src in
  let a = Prng.int prng env.ce_accounts in
  let b = Prng.int prng env.ce_accounts in
  let delta = float_of_int (1 + Prng.int prng 20) in
  match take_2pc ctx.cx_engine with
  | Some (commit, participant_crash) ->
      cl_transfer_2pc_fault ctx env prng ~src ~dst ~a ~b ~delta ~commit
        ~participant_crash
  | None -> cl_transfer_normal ctx env ~src ~dst ~a ~b ~delta

let cl_scan_check ctx env prng =
  let i = Prng.int prng 2 in
  with_fs_tx ctx env.ce_nodes.(i) (fun ~tx ~view:_ ~stp ->
      let fs = N.fs env.ce_nodes.(i) in
      let sc =
        Fs.open_scan fs env.ce_files.(i) ~tx ~access:Fs.A_vsbb
          ~range:Expr.full_range ~lock:Dp_msg.L_none ()
      in
      let rec loop acc =
        match stp.stp (fun () -> Fs.scan_next fs sc) with
        | Ok None -> Ok (List.rev acc)
        | Ok (Some row) -> loop (row :: acc)
        | Error e -> Error e
      in
      let* rows =
        Fun.protect
          ~finally:(fun () -> Fs.close_scan fs sc)
          (fun () -> loop [])
      in
      let actual =
        List.map (fun r -> (Row.key_of_row env.ce_schema r, r)) rows
      in
      List.iter
        (fun v -> add_vio ctx ("mid-run scan: " ^ v))
        (Oracle.check_file ctx.cx_oracle ~file:(cl_file i) ~actual);
      Ok `Commit)

let cluster_tx ctx env prng =
  match Prng.int prng 8 with
  | 0 | 1 | 2 -> cl_local_tx ctx env prng
  | 3 | 4 | 5 | 6 -> cl_transfer ctx env prng
  | _ -> cl_scan_check ctx env prng

let verify_cluster ctx env =
  let sim = N.sim env.ce_nodes.(0) in
  poll_idle ctx;
  Sim.drain sim;
  poll_idle ctx;
  Array.iteri
    (fun i node ->
      N.crash_volume node 0;
      recover_one ctx i 0)
    env.ce_nodes;
  Array.iter
    (fun node ->
      Array.iter
        (fun dp ->
          match Dp.check_invariants dp with
          | Ok () -> ()
          | Error m -> add_vio ctx ("invariant: " ^ m))
        (N.dps node))
    env.ce_nodes;
  let total = ref 0. in
  Array.iteri
    (fun i node ->
      match dump_keyed node env.ce_files.(i) env.ce_schema with
      | Error e ->
          add_vio ctx (cl_file i ^ " dump failed: " ^ Errors.to_string e)
      | Ok actual ->
          List.iter (add_vio ctx)
            (Oracle.check_file ctx.cx_oracle ~file:(cl_file i) ~actual);
          List.iter
            (fun (_k, row) ->
              match row.(1) with
              | Row.Vfloat b -> total := !total +. b
              | _ -> ())
            actual)
    env.ce_nodes;
  (* transfers and local bumps both conserve money, committed or not *)
  let expected = float_of_int (2 * env.ce_accounts) *. 100. in
  if Float.abs (!total -. expected) > 1e-6 then
    add_vio ctx
      (Printf.sprintf
         "cluster conservation: balances sum to %.6f, expected %.6f" !total
         expected)

(* --- reports ---------------------------------------------------------------- *)

type report = {
  r_seed : int;
  r_topology : topology;
  r_txs_attempted : int;
  r_txs_committed : int;
  r_txs_aborted : int;
  r_faults : (string * int) list;
  r_recoveries : int;
  r_violations : string list;
  r_stats : Stats.t;
}

let report_of ctx ~seed ~topology sim =
  {
    r_seed = seed;
    r_topology = topology;
    r_txs_attempted = ctx.cx_attempted;
    r_txs_committed = ctx.cx_committed;
    r_txs_aborted = ctx.cx_aborted;
    r_faults =
      List.map
        (fun k ->
          (k, Option.value ~default:0 (Hashtbl.find_opt ctx.cx_engine.en_applied k)))
        fault_kinds;
    r_recoveries = ctx.cx_recoveries;
    r_violations = List.rev ctx.cx_violations;
    r_stats = Sim.snapshot sim;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>chaos seed %d (%a): %d transactions = %d committed + %d aborted@,\
     faults applied:" r.r_seed pp_topology r.r_topology r.r_txs_attempted
    r.r_txs_committed r.r_txs_aborted;
  List.iter
    (fun (k, n) -> if n > 0 then Format.fprintf ppf " %s x%d" k n)
    r.r_faults;
  Format.fprintf ppf
    "@,%d volume recoveries; %d messages, %d disk reads, %d disk writes, %d \
     path retries, %d transient I/O errors"
    r.r_recoveries r.r_stats.Stats.msgs_sent r.r_stats.Stats.disk_reads
    r.r_stats.Stats.disk_writes r.r_stats.Stats.msg_path_retries
    r.r_stats.Stats.disk_transient_errors;
  (match r.r_violations with
  | [] -> Format.fprintf ppf "@,ACID: no violations"
  | vs ->
      Format.fprintf ppf "@,%d VIOLATION(S):" (List.length vs);
      List.iter (fun v -> Format.fprintf ppf "@,  %s" v) vs);
  Format.fprintf ppf "@]"

(* --- contended multi-terminal runs ------------------------------------------ *)

type contention_report = {
  n_seed : int;
  n_terminals : int;
  n_accounts : int;
  n_transfers : Debitcredit.transfer_report;
  n_lock_waits : int;
  n_deadlocks : int;
  n_violations : string list;
  n_stats : Stats.t;
}

let pp_contention_report ppf r =
  let t = r.n_transfers in
  Format.fprintf ppf
    "@[<v>contention seed %d: %d terminals over %d hot accounts@,\
     %d committed, %d deadlock aborts, %d timeout aborts, %d takeover \
     aborts, %d retries, %d abandoned@,\
     %d lock waits queued, %d deadlocks detected, %d takeovers, %d messages"
    r.n_seed r.n_terminals r.n_accounts t.Debitcredit.x_committed
    t.Debitcredit.x_deadlock_aborts t.Debitcredit.x_timeout_aborts
    t.Debitcredit.x_takeover_aborts t.Debitcredit.x_retries
    t.Debitcredit.x_failed r.n_lock_waits r.n_deadlocks
    r.n_stats.Stats.takeovers r.n_stats.Stats.msgs_sent;
  (match r.n_violations with
  | [] -> Format.fprintf ppf "@,no violations"
  | vs ->
      Format.fprintf ppf "@,%d VIOLATION(S):" (List.length vs);
      List.iter (fun v -> Format.fprintf ppf "@,  %s" v) vs);
  Format.fprintf ppf "@]"

(* [run_contention ~seed ()] drives genuinely interleaved terminal
   sessions against one node with DP-side lock waiting on, optionally
   under seeded message delays, and verifies the committed state against
   a per-account mirror maintained by the on-commit hook. *)
let run_contention ?(terminals = 4) ?(txs_per_terminal = 10)
    ?(takeover = false) ~seed () =
  let prng = Prng.create ~seed in
  let accounts = 3 + Prng.int prng 4 in
  let config =
    Nsql_sim.Config.v ~dp_lock_wait:true ~lock_wait_timeout_us:150_000. ()
  in
  let node = N.create_node ~config ~volumes:2 () in
  let engine = engine_create (N.sim node) in
  (* a few seeded message delays against the hot volume shuffle arrival
     order without breaking determinism *)
  let events =
    List.init
      (1 + Prng.int prng 3)
      (fun _ ->
        {
          due = Prng.float prng 300_000.;
          fault =
            F_msg_delay
              {
                victim = "$DATA1";
                delay_us = 100. +. Prng.float prng 900.;
                count = 1 + Prng.int prng 4;
              };
        })
    |> List.sort (fun a b -> compare a.due b.due)
  in
  let db =
    Errors.get_ok ~ctx:"contention: setup"
      (Debitcredit.setup_transfer node ~accounts)
  in
  arm engine [| node |] events;
  (* with [takeover] set, fail the hot volume's primary mid-run: terminals
     are mid-scan, parked on the wait queue, or between phases when the
     backup resumes. Drawn from the same stream, but only after every
     existing draw, so [takeover:false] runs replay byte-identically. *)
  if takeover then begin
    let due = 20_000. +. Prng.float prng 120_000. in
    Sim.schedule (N.sim node) ~at:due (fun () ->
        ignore (N.takeover_volume node 0))
  end;
  (* the oracle: expected per-account balances, updated once per commit *)
  let expected = Array.make accounts 1000. in
  let on_commit ~src ~dst ~delta =
    expected.(src) <- expected.(src) -. delta;
    expected.(dst) <- expected.(dst) +. delta
  in
  let transfers =
    Debitcredit.run_transfers ~on_commit db ~terminals ~txs_per_terminal ()
  in
  Sim.drain (N.sim node);
  let violations = ref [] in
  let vio v = violations := v :: !violations in
  (match Debitcredit.transfer_balances db with
  | Error e -> vio ("balance dump failed: " ^ Errors.to_string e)
  | Ok balances ->
      List.iter
        (fun (aid, b) ->
          if Float.abs (b -. expected.(aid)) > 1e-6 then
            vio
              (Printf.sprintf
                 "account %d: balance %.6f, oracle expects %.6f" aid b
                 expected.(aid)))
        balances;
      let total = List.fold_left (fun acc (_, b) -> acc +. b) 0. balances in
      let conserved = 1000. *. float_of_int accounts in
      if Float.abs (total -. conserved) > 1e-6 then
        vio
          (Printf.sprintf
             "conservation: balances sum to %.6f, expected %.6f" total
             conserved));
  let finished =
    transfers.Debitcredit.x_committed + transfers.Debitcredit.x_failed
  in
  if finished <> terminals * txs_per_terminal then
    vio
      (Printf.sprintf "accounting: %d transfers finished, expected %d"
         finished (terminals * txs_per_terminal));
  let s = Sim.stats (N.sim node) in
  {
    n_seed = seed;
    n_terminals = terminals;
    n_accounts = accounts;
    n_transfers = transfers;
    n_lock_waits = s.Stats.lock_waits;
    n_deadlocks = s.Stats.deadlocks;
    n_violations = List.rev !violations;
    n_stats = Sim.snapshot (N.sim node);
  }

(* --- entry point ------------------------------------------------------------- *)

let run ?(txs = 120) ?topology ~seed () =
  let p_topology =
    match topology with Some t -> t | None -> default_topology seed
  in
  let plan_prng, wl_prng = streams ~seed in
  let events =
    build_plan plan_prng ~topology:p_topology ~horizon:(horizon_of txs)
  in
  let oracle = Oracle.create () in
  match p_topology with
  | Single ->
      let node = N.create_node ~volumes:2 () in
      let engine = engine_create (N.sim node) in
      let ctx =
        ctx_create ~nodes:[| node |] ~cluster:None ~engine ~oracle
      in
      let env = setup_single oracle node in
      arm engine ctx.cx_nodes events;
      for _ = 1 to txs do
        poll_idle ctx;
        single_tx ctx env wl_prng
      done;
      verify_single ctx env;
      report_of ctx ~seed ~topology:p_topology (N.sim node)
  | Cluster ->
      let cluster = N.create_cluster ~nodes:2 () in
      let nodes = N.cluster_nodes cluster in
      let engine = engine_create (N.sim nodes.(0)) in
      let ctx =
        ctx_create ~nodes ~cluster:(Some cluster) ~engine ~oracle
      in
      let env = setup_cluster oracle cluster in
      arm engine ctx.cx_nodes events;
      for _ = 1 to txs do
        poll_idle ctx;
        cluster_tx ctx env wl_prng
      done;
      verify_cluster ctx env;
      report_of ctx ~seed ~topology:p_topology (N.sim nodes.(0))

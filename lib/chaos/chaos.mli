(** Deterministic chaos harness.

    From a single integer seed this module materializes a {e fault plan} —
    a fixed list of (simulated time, fault) pairs — then runs a mixed
    SQL/File-System transactional workload against a simulated node (or a
    two-node cluster) while the plan's faults fire from the {!Nsql_sim.Sim}
    event queue. Every transaction the harness sees commit is mirrored
    into the {!Nsql_oracle.Oracle} reference model; at the end of the run
    every volume is crashed and recovered once more, and the surviving
    state is dumped and compared against the oracle.

    There is no wall-clock time and no use of [Random] anywhere: the plan,
    the workload and every fault are drawn from a splitmix64 stream seeded
    by the caller, so one seed replays byte-identically — the final
    {!Nsql_sim.Stats.t} of two runs of the same seed are equal, which is
    what makes a failing seed a reproducible bug report.

    Fault repertoire: message delays and path failures (resent on the
    alternate path, as GUARDIAN does), Disk Process primary takeover by
    the process-pair backup, full volume crash + audit-trail recovery,
    transient disk I/O errors, buffer-cache pressure from the memory
    manager, audit-volume stalls, and — on clusters — coordinator and
    participant crashes between the two phases of network commit. *)

module Stats = Nsql_sim.Stats

(** {1 Deterministic pseudo-random stream} *)

(** A splitmix64 generator — deliberately {e not} [Stdlib.Random], which
    keeps hidden global state. Everything the harness draws comes from a
    stream derived from the run's seed. *)
module Prng : sig
  type t

  val create : seed:int -> t

  (** [split t] derives an independent stream (and advances [t]). *)
  val split : t -> t

  (** [int t bound] is uniform in [\[0, bound)]. *)
  val int : t -> int -> int

  (** [float t bound] is uniform in [\[0., bound)]. *)
  val float : t -> float -> float

  val bool : t -> bool

  (** [pick t xs] draws one element of a non-empty list. *)
  val pick : t -> 'a list -> 'a
end

(** {1 Fault plans} *)

type fault =
  | F_msg_delay of { victim : string; delay_us : float; count : int }
      (** the next [count] messages to endpoint [victim] suffer extra
          queueing delay *)
  | F_msg_flap of { victim : string; retry_us : float; count : int }
      (** the next [count] messages to [victim] fail on the primary path
          and are resent on the alternate *)
  | F_takeover of { node : int; volume : int }
      (** the volume's primary Disk Process fails; the backup takes over *)
  | F_crash of { node : int; volume : int }
      (** the volume's process pair is lost entirely; applied at the next
          operation boundary, any open transaction is aborted, and the
          volume recovers by audit-trail rollforward *)
  | F_disk_transient of {
      node : int;
      volume : int;
      penalty_us : float;
      count : int;
    }  (** the next [count] I/Os on the volume fail once and are retried *)
  | F_vm_pressure of { node : int; volume : int; frames : int }
      (** the memory manager steals buffer-cache frames *)
  | F_audit_stall of { node : int; stall_us : float }
      (** the node's audit volume stops serving for a while — group commit
          backs up behind it *)
  | F_2pc_crash of { commit : bool; participant_crash : bool }
      (** (clusters) the next network transfer loses its coordinator
          between PREPARE and the decision; the prepared branch is
          in-doubt and resolves against the coordinator's trail. With
          [participant_crash] the participant volume also crashes while
          in-doubt and must resolve during recovery *)

type event = { due : float;  (** microseconds after workload start *) fault : fault }

type topology = Single | Cluster

type plan = { p_seed : int; p_topology : topology; p_events : event list }

(** [plan ?txs ?topology ~seed ()] materializes the fault schedule for
    [seed] — the same plan {!run} will execute. [topology] defaults to a
    seed-determined choice; [txs] scales the time horizon. *)
val plan : ?txs:int -> ?topology:topology -> seed:int -> unit -> plan

val pp_fault : Format.formatter -> fault -> unit
val pp_plan : Format.formatter -> plan -> unit

(** {1 Running} *)

type report = {
  r_seed : int;
  r_topology : topology;
  r_txs_attempted : int;
  r_txs_committed : int;
  r_txs_aborted : int;  (** chaos- and deliberately-aborted *)
  r_faults : (string * int) list;  (** faults actually applied, by kind *)
  r_recoveries : int;  (** volume recoveries, incl. the final sweep *)
  r_violations : string list;  (** empty = ACID held *)
  r_stats : Stats.t;  (** full counter record — determinism witness *)
}

(** [run ?txs ?topology ~seed ()] executes the whole experiment: set up,
    load, run [txs] transactions under the fault plan, drain, crash and
    recover every volume, then verify against the oracle. Never raises on
    ACID violations — they are returned in [r_violations]. *)
val run : ?txs:int -> ?topology:topology -> seed:int -> unit -> report

val pp_report : Format.formatter -> report -> unit

(** {1 Contended multi-terminal runs}

    Exercises the Disk Process lock wait queues: terminal sessions genuinely
    interleave (each an explicit state machine with one request in flight),
    conflicting requests park on the DP, deadlock victims abort and retry.
    See {!Nsql_workload.Debitcredit.run_transfers}. *)

type contention_report = {
  n_seed : int;
  n_terminals : int;
  n_accounts : int;  (** hot-set size (seed-derived) *)
  n_transfers : Nsql_workload.Debitcredit.transfer_report;
  n_lock_waits : int;  (** requests parked on a DP wait queue *)
  n_deadlocks : int;  (** wait-for cycles detected and resolved *)
  n_violations : string list;  (** empty = consistency held *)
  n_stats : Stats.t;
}

(** [run_contention ~seed ()] runs a seeded multi-terminal transfer
    workload with {!Nsql_sim.Config.t.dp_lock_wait} on and a few seeded
    message delays, then verifies every account balance against a
    per-account mirror updated at each commit, plus the conservation
    invariant. Deterministic in [seed]. With [takeover] (default off) the
    hot volume's primary fails at a seed-derived time mid-run and the
    backup takes over under live traffic; the same oracle must still
    hold. [takeover:false] runs are unaffected by the flag's existence. *)
val run_contention :
  ?terminals:int -> ?txs_per_terminal:int -> ?takeover:bool -> seed:int ->
  unit -> contention_report

val pp_contention_report : Format.formatter -> contention_report -> unit

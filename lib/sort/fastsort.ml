module Sim = Nsql_sim.Sim

type stats = {
  runs_formed : int;
  merge_passes : int;
  comparisons : int;
  elapsed_us : float;
}

let pp_stats ppf s =
  Format.fprintf ppf "runs=%d passes=%d cmps=%d elapsed=%.0fus" s.runs_formed
    s.merge_passes s.comparisons s.elapsed_us

(* split [items] round-robin over [ways] sub-sorters *)
let distribute ways items =
  let buckets = Array.make ways [] in
  List.iteri (fun i x -> buckets.(i mod ways) <- x :: buckets.(i mod ways)) items;
  Array.map List.rev buckets

(* cut a list into runs of at most [cap] elements *)
let runs_of cap items =
  let rec go acc current k = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
        if k = cap then go (List.rev current :: acc) [ x ] 1 rest
        else go acc (x :: current) (k + 1) rest
  in
  go [] [] 0 items

(* merge two sorted lists, counting comparisons *)
let merge_two compare comparisons a b =
  let rec go acc a b =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs, y :: ys ->
        incr comparisons;
        if compare x y <= 0 then go (x :: acc) xs b else go (y :: acc) a ys
  in
  go [] a b

(* repeatedly merge pairs of runs until one remains; count passes *)
let merge_runs compare comparisons passes runs =
  let rec pass = function
    | [] -> []
    | [ r ] -> [ r ]
    | a :: b :: rest -> merge_two compare comparisons a b :: pass rest
  in
  let rec go runs =
    match runs with
    | [] -> []
    | [ r ] -> r
    | _ ->
        incr passes;
        go (pass runs)
  in
  go runs

let sort ?(ways = 4) ?(run_capacity = 256) sim ~compare items =
  if ways < 1 then invalid_arg "Fastsort.sort: ways < 1";
  let n = List.length items in
  if n <= 1 then
    (items, { runs_formed = (if n = 0 then 0 else 1); merge_passes = 0; comparisons = 0; elapsed_us = 0. })
  else begin
    let t0 = Sim.now sim in
    let comparisons = ref 0 in
    let total_runs = ref 0 in
    let passes = ref 0 in
    (* phase 1+2: each sub-sorter forms runs and merges them locally;
       simulated work per sub-sorter is measured by its comparison count *)
    let sub_outputs_and_work =
      Array.map
        (fun sub_items ->
          let before = !comparisons in
          let runs = runs_of run_capacity sub_items in
          total_runs := !total_runs + List.length runs;
          let sorted_runs =
            List.map
              (fun run ->
                (* in-memory run formation: n log n comparisons charged *)
                let arr = Array.of_list run in
                let len = Array.length arr in
                Array.sort
                  (fun a b ->
                    incr comparisons;
                    compare a b)
                  arr;
                ignore len;
                Array.to_list arr)
              runs
          in
          let merged = merge_runs compare comparisons passes sorted_runs in
          (merged, !comparisons - before))
        (distribute ways items)
    in
    (* elapsed of the parallel phase = max of the sub-sorters' work *)
    let max_work =
      Array.fold_left (fun acc (_, w) -> max acc w) 0 sub_outputs_and_work
    in
    Nsql_sim.Moncore.with_cat (Sim.moncore sim) Nsql_sim.Moncore.C_compute
      (fun () -> Sim.charge sim (float_of_int max_work *. 0.5));
    (* final fan-in merge runs on the coordinating processor *)
    let before = !comparisons in
    let final =
      merge_runs compare comparisons passes
        (Array.to_list (Array.map fst sub_outputs_and_work))
    in
    Sim.tick sim (!comparisons - before);
    ( final,
      {
        runs_formed = !total_runs;
        merge_passes = !passes;
        comparisons = !comparisons;
        elapsed_us = Sim.now sim -. t0;
      } )
  end

let sort_keyed ?ways ?run_capacity sim items =
  sort ?ways ?run_capacity sim
    ~compare:(fun (a, _) (b, _) -> String.compare a b)
    items

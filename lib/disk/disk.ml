module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Config = Nsql_sim.Config
module Moncore = Nsql_sim.Moncore
module Trace = Nsql_trace.Trace

type t = {
  sim : Sim.t;
  name : string;
  mirrored : bool;
  mutable data : bytes array;  (** one [bytes] of [block_size] per block *)
  mutable nblocks : int;
  mutable last_block : int;  (** head position for sequential detection *)
  slots : float array;
      (** busy-until per service channel ([Config.disk_queue_depth] of
          them): a submission enters the earliest-free channel, so up to
          [Array.length slots] I/Os are in service concurrently and the
          rest queue behind them. One channel reproduces the historical
          single-[busy_until] device exactly. *)
  mutable inflight : float list;
      (** completion times of submitted I/Os not yet retired from the
          [Moncore.G_diskq] gauge (lazy retirement at touch points) *)
  mutable fault_hook : (unit -> float option) option;
      (** transient I/O errors: [Some penalty_us] makes this I/O fail once
          and be retried (mirror read / recalibrate), costing [penalty_us] *)
}

let create ?mirrored sim ~name =
  let cfg = Sim.config sim in
  let mirrored =
    match mirrored with Some m -> m | None -> cfg.Config.mirrored
  in
  let depth = cfg.Config.disk_queue_depth in
  if depth < 1 then
    invalid_arg
      (Printf.sprintf "Disk(%s): disk_queue_depth %d < 1" name depth);
  {
    sim;
    name;
    mirrored;
    data = [||];
    nblocks = 0;
    last_block = -10;
    slots = Array.make depth 0.;
    inflight = [];
    fault_hook = None;
  }

let set_fault_hook t h = t.fault_hook <- h

(* Drop I/Os whose completion the clock has passed from the in-flight set
   and the queue-depth gauge; returns the number still in flight. Called
   at every submission/completion/stall touch point — the gauge cannot be
   decremented *at* a future completion time without scheduling an event,
   which would perturb [Sim.drain]. *)
let retire t =
  let now = Sim.now t.sim in
  let live = List.filter (fun c -> c > now) t.inflight in
  let n_done = List.length t.inflight - List.length live in
  t.inflight <- live;
  if n_done > 0 then begin
    let mc = Sim.moncore t.sim in
    let drop = min n_done (Moncore.gauge_value mc Moncore.G_diskq) in
    if drop > 0 then Moncore.gauge_add mc Moncore.G_diskq (-drop)
  end;
  List.length live

let queue_depth t = retire t

(* [stall t ~us] makes the device unavailable for [us] microseconds from
   now: queued and future I/Os wait it out. Models a controller hiccup or
   an own-path retry storm on the (audit) volume — every service channel
   is held, but a backlog already longer than the stall absorbs it. *)
let stall t ~us =
  let until = Sim.now t.sim +. us in
  Array.iteri (fun i b -> t.slots.(i) <- max b until) t.slots;
  ignore (retire t)

let name t = t.name
let block_size t = (Sim.config t.sim).Config.block_size
let blocks t = t.nblocks

let max_bulk_blocks t =
  let cfg = Sim.config t.sim in
  max 1 (cfg.Config.bulk_io_max_bytes / cfg.Config.block_size)

let allocate t n =
  let first = t.nblocks in
  let needed = t.nblocks + n in
  if needed > Array.length t.data then begin
    let cap = max 64 (max needed (2 * Array.length t.data)) in
    let bs = block_size t in
    let data = Array.init cap (fun i ->
        if i < t.nblocks then t.data.(i) else Bytes.make bs '\x00')
    in
    t.data <- data
  end;
  t.nblocks <- needed;
  first

let check_range t ~first ~count =
  if first < 0 || count < 1 || first + count > t.nblocks then
    invalid_arg
      (Printf.sprintf "Disk(%s): blocks [%d..%d) out of range [0..%d)" t.name
         first (first + count) t.nblocks);
  if count > max_bulk_blocks t then
    invalid_arg
      (Printf.sprintf "Disk(%s): bulk I/O of %d blocks exceeds limit %d"
         t.name count (max_bulk_blocks t))

(* Service time of one I/O; the head moves to the end of the range. *)
let io_time t ~first ~count =
  let cfg = Sim.config t.sim in
  let position_cost =
    (* continuing right after — or rewriting — the last touched block is
       physically sequential *)
    if first = t.last_block + 1 || first = t.last_block then
      cfg.Config.disk_sequential_us
    else cfg.Config.disk_seek_us
  in
  t.last_block <- first + count - 1;
  position_cost +. (float_of_int count *. cfg.Config.disk_per_block_us)

(* An I/O enters the device queue: it starts when its service channel is
   free and the caller has reached that point in time. The channel is the
   earliest-free slot (lowest index on ties), so submissions stack up
   breadth-first across the configured queue depth. Returns the completion
   time. Head movement ([io_time]'s sequential detection) follows
   submission order regardless of depth — determinism over realism. *)
let enqueue_io t ~first ~count =
  let live = retire t in
  let si = ref 0 in
  for i = 1 to Array.length t.slots - 1 do
    if t.slots.(i) < t.slots.(!si) then si := i
  done;
  let si = !si in
  let start = max t.slots.(si) (Sim.now t.sim) in
  let retry_penalty =
    match t.fault_hook with
    | None -> 0.
    | Some hook -> (
        match hook () with
        | None -> 0.
        | Some penalty ->
            let s = Sim.stats t.sim in
            s.Stats.disk_transient_errors <-
              s.Stats.disk_transient_errors + 1;
            penalty)
  in
  let completion = start +. io_time t ~first ~count +. retry_penalty in
  t.slots.(si) <- completion;
  t.inflight <- completion :: t.inflight;
  (* device service window and caller-perceived latency (queueing
     included); virtual times under a capture, like the spans. The global
     "disk" histogram keeps its pre-queue-model feed; the per-volume
     latency and depth-at-submission histograms attribute tails by
     volume and by how deep the queue ran. *)
  let mc = Sim.moncore t.sim in
  Moncore.add_busy mc Moncore.R_disk (completion -. start);
  Moncore.observe mc "disk" (completion -. Sim.now t.sim);
  Moncore.gauge_add mc Moncore.G_diskq 1;
  Moncore.observe mc ("disk:" ^ t.name) (completion -. Sim.now t.sim);
  Moncore.observe mc ("diskq:" ^ t.name) (float_of_int (live + 1));
  completion

let count_read t ~count ~prefetch =
  let s = Sim.stats t.sim in
  s.Stats.disk_reads <- s.Stats.disk_reads + 1;
  s.Stats.blocks_read <- s.Stats.blocks_read + count;
  if count > 1 then s.Stats.bulk_reads <- s.Stats.bulk_reads + 1;
  if prefetch then s.Stats.prefetch_reads <- s.Stats.prefetch_reads + 1

let count_write t ~count ~behind =
  let s = Sim.stats t.sim in
  let ios = if t.mirrored then 2 else 1 in
  s.Stats.disk_writes <- s.Stats.disk_writes + ios;
  s.Stats.blocks_written <- s.Stats.blocks_written + (count * ios);
  if count > 1 then s.Stats.bulk_writes <- s.Stats.bulk_writes + ios;
  if behind then
    s.Stats.writebehind_writes <- s.Stats.writebehind_writes + ios

let fetch t ~first ~count =
  Array.init count (fun i -> Bytes.to_string t.data.(first + i))

let store t ~first data =
  Array.iteri
    (fun i block ->
      let bs = block_size t in
      if String.length block <> bs then
        invalid_arg
          (Printf.sprintf "Disk(%s): block payload %d bytes, expected %d"
             t.name (String.length block) bs);
      Bytes.blit_string block 0 t.data.(first + i) 0 bs)
    data

let io_attrs t ~first ~count =
  [
    ("vol", Trace.Str t.name);
    ("first", Trace.Int first);
    ("count", Trace.Int count);
    ("bulk", Trace.Bool (count > 1));
  ]

(* --- submission/completion handles ------------------------------------ *)

type io = {
  io_first : int;
  io_count : int;
  io_read : bool;
  io_submitted : float;
  io_done : float;
  io_span : Trace.h;
}

let io_done_at io = io.io_done

let submit_read t ~first ~count =
  check_range t ~first ~count;
  let sp =
    if Trace.enabled t.sim then
      Trace.begin_span t.sim ~cat:"disk" ~attrs:(io_attrs t ~first ~count)
        "disk_read"
    else None
  in
  count_read t ~count ~prefetch:false;
  let submitted = Sim.now t.sim in
  let completion = enqueue_io t ~first ~count in
  {
    io_first = first;
    io_count = count;
    io_read = true;
    io_submitted = submitted;
    io_done = completion;
    io_span = sp;
  }

let submit_write t ~first data =
  let count = Array.length data in
  check_range t ~first ~count;
  let sp =
    if Trace.enabled t.sim then
      Trace.begin_span t.sim ~cat:"disk" ~attrs:(io_attrs t ~first ~count)
        "disk_write"
    else None
  in
  count_write t ~count ~behind:false;
  store t ~first data;
  let submitted = Sim.now t.sim in
  let completion = enqueue_io t ~first ~count in
  {
    io_first = first;
    io_count = count;
    io_read = false;
    io_submitted = submitted;
    io_done = completion;
    io_span = sp;
  }

(* Reap one completion: block until the I/O's done-time, then hand the
   data over (reads transfer into memory only now — events firing during
   the wait run before the contents are observed). The sole blocking wait
   in this module. *)
let complete t io =
  Moncore.with_cat (Sim.moncore t.sim) Moncore.C_disk (fun () ->
      Sim.wait_until t.sim io.io_done);
  ignore (retire t);
  let blocks =
    if io.io_read then fetch t ~first:io.io_first ~count:io.io_count
    else [||]
  in
  Trace.finish t.sim io.io_span;
  blocks

let read_bulk t ~first ~count =
  let io = submit_read t ~first ~count in
  complete t io

let read t i =
  match read_bulk t ~first:i ~count:1 with
  | [| b |] -> b
  | _ -> assert false

let write_bulk t ~first data =
  let io = submit_write t ~first data in
  ignore (complete t io)

let write t i data = write_bulk t ~first:i [| data |]

let read_bulk_async t ~first ~count =
  check_range t ~first ~count;
  count_read t ~count ~prefetch:true;
  let completion = enqueue_io t ~first ~count in
  if Trace.enabled t.sim then
    Trace.instant t.sim ~cat:"disk"
      ~attrs:(io_attrs t ~first ~count @ [ ("done_at", Float completion) ])
      "disk_prefetch";
  (fetch t ~first ~count, completion)

let write_bulk_async t ~first data =
  let count = Array.length data in
  check_range t ~first ~count;
  count_write t ~count ~behind:true;
  store t ~first data;
  let completion = enqueue_io t ~first ~count in
  if Trace.enabled t.sim then
    Trace.instant t.sim ~cat:"disk"
      ~attrs:(io_attrs t ~first ~count @ [ ("done_at", Float completion) ])
      "disk_write_behind";
  completion

let io_busy_until t = Array.fold_left max t.slots.(0) t.slots

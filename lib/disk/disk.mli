(** Simulated disk volume.

    A volume is a growable array of fixed-size blocks, optionally mirrored
    on a pair of physical drives (writes go to both, reads are served by
    one). The cost model distinguishes random access (seek + rotational
    delay) from physically sequential access, and supports *bulk I/O*: one
    operation transferring a string of consecutive blocks, bounded by the
    configured maximum (the paper's 28 KB).

    The device is an io_uring-style multi-queue model: it services up to
    {!Nsql_sim.Config.t.disk_queue_depth} I/Os concurrently (submissions
    enter the earliest-free channel; the rest queue behind them), and
    submission is decoupled from completion. {!submit_read} and
    {!submit_write} enqueue an I/O and return a handle immediately — no
    simulated time passes — and {!complete} blocks until the handle's
    done-time and hands the data over. The classic {!read_bulk} /
    {!write_bulk} are submit-then-complete; at queue depth 1 the model is
    byte-identical to the historical single-busy-window device
    (test-enforced).

    Asynchronous variants return a completion time instead of blocking the
    simulated clock; the cache layer uses them for pre-fetch and
    write-behind. *)

type t

(** [create sim ~name] makes an empty volume. Mirroring comes from the
    simulation config unless overridden. *)
val create : ?mirrored:bool -> Nsql_sim.Sim.t -> name:string -> t

val name : t -> string
val block_size : t -> int

(** [blocks t] is the current number of allocated blocks. *)
val blocks : t -> int

(** [max_bulk_blocks t] is the bulk I/O limit in blocks. *)
val max_bulk_blocks : t -> int

(** [allocate t n] extends the volume by [n] zeroed blocks and returns the
    index of the first new block. No I/O is charged (allocation is a
    catalogue operation). *)
val allocate : t -> int -> int

(** [read t i] synchronously reads block [i]. *)
val read : t -> int -> string

(** [read_bulk t ~first ~count] synchronously reads [count] consecutive
    blocks as one I/O. [count] must not exceed [max_bulk_blocks]. *)
val read_bulk : t -> first:int -> count:int -> string array

(** [write t i data] synchronously writes block [i]. *)
val write : t -> int -> string -> unit

(** [write_bulk t ~first data] synchronously writes consecutive blocks as
    one I/O. *)
val write_bulk : t -> first:int -> string array -> unit

(** {1 Submission/completion handles}

    The nowait face of the device: submission costs no simulated time and
    completions are reaped explicitly, so a caller can keep several I/Os
    in flight and overlap CPU work (or further submissions) with the
    transfers. Every handle must reach {!complete} — the RES-LEAK lint
    rule flags submissions that provably never do. *)

type io
(** An in-flight I/O: carries its block range, submission and completion
    times, and the open trace span. *)

(** [submit_read t ~first ~count] enqueues a demand bulk read and returns
    its handle without advancing the clock. *)
val submit_read : t -> first:int -> count:int -> io

(** [submit_write t ~first data] enqueues a bulk write. The block contents
    are applied immediately (the simulated controller owns the buffer). *)
val submit_write : t -> first:int -> string array -> io

(** [io_done_at io] is the simulated time at which the I/O completes. *)
val io_done_at : io -> float

(** [complete t io] waits until the I/O's done-time and returns the blocks
    read ([[||]] for writes). *)
val complete : t -> io -> string array

(** [queue_depth t] is the number of I/Os in flight at the current
    simulated time (in service or queued on a busy channel). *)
val queue_depth : t -> int

(** [read_bulk_async t ~first ~count] starts a read and returns the data
    together with its completion time; the caller must [Sim.wait_until]
    that time before using the data. Counted as a pre-fetch read. *)
val read_bulk_async : t -> first:int -> count:int -> string array * float

(** [write_bulk_async t ~first data] starts a write and returns its
    completion time. Counted as a write-behind write. The block contents
    are applied immediately (the simulated controller owns the buffer). *)
val write_bulk_async : t -> first:int -> string array -> float

(** [io_busy_until t] is the time at which the device becomes fully idle
    (every service channel drained). *)
val io_busy_until : t -> float

(** {1 Fault injection} *)

(** [set_fault_hook t (Some h)] consults [h] on every I/O; returning
    [Some penalty_us] makes that I/O suffer a transient error — it is
    retried (from the mirror, or after recalibration) and completes
    [penalty_us] later. Data always gets through; only latency and the
    {!Nsql_sim.Stats.t} transient-error counter change. *)
val set_fault_hook : t -> (unit -> float option) option -> unit

(** [stall t ~us] makes the device unavailable until [now + us] (queued
    I/Os wait it out; a backlog already extending past that point absorbs
    the stall), modelling a controller hiccup — used by the chaos layer
    for audit-volume stalls. *)
val stall : t -> us:float -> unit

(** Simulated disk volume.

    A volume is a growable array of fixed-size blocks, optionally mirrored
    on a pair of physical drives (writes go to both, reads are served by
    one). The cost model distinguishes random access (seek + rotational
    delay) from physically sequential access, and supports *bulk I/O*: one
    operation transferring a string of consecutive blocks, bounded by the
    configured maximum (the paper's 28 KB).

    Asynchronous variants return a completion time instead of blocking the
    simulated clock; the cache layer uses them for pre-fetch and
    write-behind. *)

type t

(** [create sim ~name] makes an empty volume. Mirroring comes from the
    simulation config unless overridden. *)
val create : ?mirrored:bool -> Nsql_sim.Sim.t -> name:string -> t

val name : t -> string
val block_size : t -> int

(** [blocks t] is the current number of allocated blocks. *)
val blocks : t -> int

(** [max_bulk_blocks t] is the bulk I/O limit in blocks. *)
val max_bulk_blocks : t -> int

(** [allocate t n] extends the volume by [n] zeroed blocks and returns the
    index of the first new block. No I/O is charged (allocation is a
    catalogue operation). *)
val allocate : t -> int -> int

(** [read t i] synchronously reads block [i]. *)
val read : t -> int -> string

(** [read_bulk t ~first ~count] synchronously reads [count] consecutive
    blocks as one I/O. [count] must not exceed [max_bulk_blocks]. *)
val read_bulk : t -> first:int -> count:int -> string array

(** [write t i data] synchronously writes block [i]. *)
val write : t -> int -> string -> unit

(** [write_bulk t ~first data] synchronously writes consecutive blocks as
    one I/O. *)
val write_bulk : t -> first:int -> string array -> unit

(** [read_bulk_async t ~first ~count] starts a read and returns the data
    together with its completion time; the caller must [Sim.wait_until]
    that time before using the data. Counted as a pre-fetch read. *)
val read_bulk_async : t -> first:int -> count:int -> string array * float

(** [write_bulk_async t ~first data] starts a write and returns its
    completion time. Counted as a write-behind write. The block contents
    are applied immediately (the simulated controller owns the buffer). *)
val write_bulk_async : t -> first:int -> string array -> float

(** [io_busy_until t] is the time at which the device becomes idle; I/Os
    queue behind each other. *)
val io_busy_until : t -> float

(** {1 Fault injection} *)

(** [set_fault_hook t (Some h)] consults [h] on every I/O; returning
    [Some penalty_us] makes that I/O suffer a transient error — it is
    retried (from the mirror, or after recalibration) and completes
    [penalty_us] later. Data always gets through; only latency and the
    {!Nsql_sim.Stats.t} transient-error counter change. *)
val set_fault_hook : t -> (unit -> float option) option -> unit

(** [stall t ~us] holds the device busy for [us] microseconds from now
    (queued I/Os wait), modelling a controller hiccup — used by the chaos
    layer for audit-volume stalls. *)
val stall : t -> us:float -> unit

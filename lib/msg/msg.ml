module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Config = Nsql_sim.Config
module Moncore = Nsql_sim.Moncore
module Trace = Nsql_trace.Trace
module Errors = Nsql_util.Errors

type processor = { node : int; cpu : int }

let pp_processor ppf p = Format.fprintf ppf "\\%d.%d" p.node p.cpu

type endpoint = {
  name : string;
  mutable processor : processor;
  mutable backup : processor option;
  mutable handler : string -> string;
  (* backup-side consumer of checkpoint payloads; pure bookkeeping — it must
     never touch the simulation clock or counters *)
  mutable ckpt_receiver : (string -> unit) option;
}

type fault_action =
  | Fault_pass
  | Fault_delay of float
  | Fault_path_retry of float

type fault_filter =
  from:processor -> to_name:string -> tag:string -> fault_action

(* A deferred reply: the server parked the request (e.g. on a lock wait
   queue) and will deliver the reply later via [resolve]. [d_arrived_at] is
   the virtual time the request reached the server — resolution can never
   complete before it. *)
type deferral = {
  d_from : processor;
  d_endpoint : endpoint;
  d_arrived_at : float;
  mutable d_state : [ `Waiting | `Resolved of string * float ];
}

(* Per-call context threaded to the handler so it can [defer] the reply. *)
type call_ctx = {
  cc_from : processor;
  cc_endpoint : endpoint;
  mutable cc_deferral : deferral option;
}

type system = {
  sim : Sim.t;
  endpoints : (string, endpoint) Hashtbl.t;
  mutable fault_filter : fault_filter option;
  mutable current_call : call_ctx option;
}

let create sim =
  {
    sim;
    endpoints = Hashtbl.create 16;
    fault_filter = None;
    current_call = None;
  }

let set_fault_filter t f = t.fault_filter <- f

let sim t = t.sim

let register t ~name ~processor ?backup handler =
  if Hashtbl.mem t.endpoints name then
    invalid_arg (Printf.sprintf "Msg.register: duplicate endpoint %s" name);
  let e = { name; processor; backup; handler; ckpt_receiver = None } in
  Hashtbl.replace t.endpoints name e;
  e

let set_handler e h = e.handler <- h

let endpoint_name e = e.name
let endpoint_processor e = e.processor

let lookup t name = Hashtbl.find_opt t.endpoints name

let distance_cost cfg ~(from : processor) ~(to_ : processor) =
  if from.node <> to_.node then cfg.Config.msg_node_cost_us
  else if from.cpu <> to_.cpu then cfg.Config.msg_cpu_cost_us
  else cfg.Config.msg_local_cost_us

let charge_hop ?(cat = Moncore.C_msg) t ~from ~to_ bytes =
  let cfg = Sim.config t.sim in
  let cost =
    distance_cost cfg ~from ~to_
    +. (float_of_int bytes *. cfg.Config.msg_per_byte_us)
  in
  Moncore.with_cat (Sim.moncore t.sim) cat (fun () -> Sim.charge t.sim cost)

type raw_result = R_ready of string | R_deferred of deferral

let do_send t ~from ~tag e request =
  let stats = Sim.stats t.sim in
  stats.Stats.msgs_sent <- stats.Stats.msgs_sent + 1;
  stats.Stats.msg_req_bytes <- stats.Stats.msg_req_bytes + String.length request;
  if from.cpu <> e.processor.cpu || from.node <> e.processor.node then
    stats.Stats.msgs_remote <- stats.Stats.msgs_remote + 1;
  if from.node <> e.processor.node then
    stats.Stats.msgs_internode <- stats.Stats.msgs_internode + 1;
  (* fault injection: the chaos engine may delay this interaction or fail
     the first path, in which case GUARDIAN transparently resends over the
     alternate path — the requester only sees added latency *)
  (match t.fault_filter with
  | None -> ()
  | Some filter -> (
      match filter ~from ~to_name:e.name ~tag with
      | Fault_pass -> ()
      | Fault_delay d ->
          Moncore.with_cat (Sim.moncore t.sim) Moncore.C_msg (fun () ->
              Sim.charge t.sim d)
      | Fault_path_retry d ->
          stats.Stats.msg_path_retries <- stats.Stats.msg_path_retries + 1;
          (* the failed attempt still cost a hop before the timeout *)
          charge_hop t ~from ~to_:e.processor (String.length request);
          Moncore.with_cat (Sim.moncore t.sim) Moncore.C_msg (fun () ->
              Sim.charge t.sim d)));
  charge_hop t ~from ~to_:e.processor (String.length request);
  let ctx = { cc_from = from; cc_endpoint = e; cc_deferral = None } in
  let saved = t.current_call in
  t.current_call <- Some ctx;
  let reply =
    Fun.protect
      ~finally:(fun () -> t.current_call <- saved)
      (fun () -> e.handler request)
  in
  match ctx.cc_deferral with
  | Some d ->
      (* reply withheld: its bytes and hop are charged at [resolve] time *)
      R_deferred d
  | None ->
      stats.Stats.msg_reply_bytes <-
        stats.Stats.msg_reply_bytes + String.length reply;
      charge_hop t ~from:e.processor ~to_:from (String.length reply);
      R_ready reply

(* One span per request/reply interaction, covering both hops and the
   server handler; virtual times when issued under a capture (nowait). A
   deferred interaction's span covers only the request leg — the server
   reports the wait itself (cat-"lock" instants), keeping spans and clock
   charges aligned. *)
let do_send_traced t ~from ~tag e request =
  if not (Trace.enabled t.sim) then do_send t ~from ~tag e request
  else begin
    let sp =
      Trace.begin_span t.sim ~cat:"msg"
        ~attrs:
          [
            ("from", Str (Format.asprintf "%a" pp_processor from));
            ("to", Str e.name);
            ("dest", Str (Format.asprintf "%a" pp_processor e.processor));
            ("req_bytes", Int (String.length request));
            ("remote",
             Bool (from.cpu <> e.processor.cpu || from.node <> e.processor.node));
            ("internode", Bool (from.node <> e.processor.node));
          ]
        tag
    in
    Fun.protect
      ~finally:(fun () -> Trace.finish t.sim sp)
      (fun () ->
        match do_send t ~from ~tag e request with
        | R_ready reply ->
            Trace.add_attr sp "reply_bytes" (Int (String.length reply));
            R_ready reply
        | R_deferred d ->
            Trace.add_attr sp "deferred" (Bool true);
            R_deferred d)
  end

(* --- deferred replies ---------------------------------------------------- *)

let defer t =
  match t.current_call with
  | None -> invalid_arg "Msg.defer: no request/reply interaction in progress"
  | Some ctx -> (
      match ctx.cc_deferral with
      | Some _ -> invalid_arg "Msg.defer: reply already deferred"
      | None ->
          let d =
            {
              d_from = ctx.cc_from;
              d_endpoint = ctx.cc_endpoint;
              d_arrived_at = Sim.now t.sim;
              d_state = `Waiting;
            }
          in
          ctx.cc_deferral <- Some d;
          d)

let resolve t d reply =
  match d.d_state with
  | `Resolved _ -> invalid_arg "Msg.resolve: deferral already resolved"
  | `Waiting ->
      let stats = Sim.stats t.sim in
      stats.Stats.msg_reply_bytes <-
        stats.Stats.msg_reply_bytes + String.length reply;
      (* measure the reply hop without advancing the resolver's clock: the
         hop belongs to the parked requester's timeline *)
      let (), hop =
        Sim.capture t.sim (fun () ->
            charge_hop t ~from:d.d_endpoint.processor ~to_:d.d_from
              (String.length reply))
      in
      let done_at = max (Sim.now t.sim) d.d_arrived_at +. hop in
      d.d_state <- `Resolved (reply, done_at)

let resolved d = match d.d_state with `Resolved _ -> true | `Waiting -> false

(* Pump the event loop until the deferral resolves: the resolution comes
   from another session's lock release (ordinary control flow reached via
   an awaited completion) or from a scheduled timeout/deadlock event. *)
let pump_until_resolved t d =
  if Sim.in_capture t.sim then
    Errors.fatal
      "Msg: blocking wait on a deferred reply under a clock capture";
  (* the requester is parked on a server-side lock queue: its wall time
     here is lock wait, whatever events happen to fire meanwhile *)
  Moncore.with_cat (Sim.moncore t.sim) Moncore.C_lockwait (fun () ->
      let rec loop () =
        match d.d_state with
        | `Resolved (reply, done_at) ->
            Sim.wait_until t.sim done_at;
            reply
        | `Waiting -> (
            match Sim.next_event t.sim with
            | None ->
                Errors.fatal
                  "Msg: deferred reply can never resolve (no pending events)"
            | Some due ->
                if due <= Sim.now t.sim then Sim.flush_events t.sim
                else Sim.wait_until t.sim due;
                loop ())
      in
      loop ())

let send t ~from ~tag e request =
  match do_send_traced t ~from ~tag e request with
  | R_ready reply -> reply
  | R_deferred d -> pump_until_resolved t d

(* --- nowait (overlapped) requests -------------------------------------- *)

type completion =
  | C_ready of { c_reply : string; c_done_at : float }
  | C_pending of deferral

(* GUARDIAN nowait I/O: issue the interaction under a clock capture so its
   full latency (hops, Disk Process work, disk waits) is measured but not
   yet charged; the completion records when the reply lands. A batch of
   nowait sends issued back-to-back therefore costs the max of the
   individual latencies once awaited — never the sum — while every message,
   byte, CPU-tick and lock counter is identical to the blocking path.
   Handlers still run at issue time, in issue order: server-side state
   changes are deterministic and independent of await order. A parked
   request yields a pending completion whose time is fixed at [resolve]. *)
let send_nowait t ~from ~tag e request =
  let r, elapsed =
    Sim.capture t.sim (fun () -> do_send_traced t ~from ~tag e request)
  in
  Moncore.gauge_add (Sim.moncore t.sim) Moncore.G_outstanding 1;
  match r with
  | R_ready reply -> C_ready { c_reply = reply; c_done_at = Sim.now t.sim +. elapsed }
  | R_deferred d -> C_pending d

let await t c =
  Moncore.gauge_add (Sim.moncore t.sim) Moncore.G_outstanding (-1);
  match c with
  | C_ready { c_reply; c_done_at } ->
      Moncore.with_cat (Sim.moncore t.sim) Moncore.C_await (fun () ->
          Sim.wait_until t.sim c_done_at);
      c_reply
  | C_pending d -> pump_until_resolved t d

let done_at = function
  | C_ready { c_done_at; _ } -> Some c_done_at
  | C_pending d -> (
      match d.d_state with
      | `Resolved (_, done_at) -> Some done_at
      | `Waiting -> None)

let await_any t cs =
  if cs = [] then invalid_arg "Msg.await_any: empty completion list";
  if Sim.in_capture t.sim && List.exists (function C_pending d -> not (resolved d) | C_ready _ -> false) cs
  then Errors.fatal "Msg.await_any: pending deferral under a clock capture";
  (* earliest known completion wins; ties break to the lowest list index so
     the choice never depends on anything but the sim clock. While some
     completion is still parked, pump events one at a time — a pending
     request may resolve earlier than the best already-known time. *)
  Moncore.with_cat (Sim.moncore t.sim) Moncore.C_await @@ fun () ->
  let rec loop () =
    let best = ref None in
    List.iteri
      (fun i c ->
        let known =
          match c with
          | C_ready { c_reply; c_done_at } -> Some (c_done_at, c_reply)
          | C_pending d -> (
              match d.d_state with
              | `Resolved (reply, done_at) -> Some (done_at, reply)
              | `Waiting -> None)
        in
        match (known, !best) with
        | Some (da, reply), None -> best := Some (i, da, reply)
        | Some (da, reply), Some (_, best_da, _) when da < best_da ->
            best := Some (i, da, reply)
        | _ -> ())
      cs;
    let pump_one due =
      if due <= Sim.now t.sim then Sim.flush_events t.sim
      else Sim.wait_until t.sim due
    in
    match !best with
    | Some (i, da, reply) -> (
        match Sim.next_event t.sim with
        | Some due when due < da ->
            (* an event firing before the best known completion may resolve
               a parked request to an earlier time *)
            pump_one due;
            loop ()
        | Some _ | None ->
            Sim.wait_until t.sim da;
            (i, reply))
    | None -> (
        match Sim.next_event t.sim with
        | Some due ->
            pump_one due;
            loop ()
        | None ->
            Errors.fatal
              "Msg.await_any: every completion is parked and no events are \
               pending")
  in
  let result = loop () in
  Moncore.gauge_add (Sim.moncore t.sim) Moncore.G_outstanding (-1);
  result

let set_checkpoint_receiver e r = e.ckpt_receiver <- r

let checkpoint t e payload =
  match e.backup with
  | None -> ()
  | Some backup ->
      let bytes_ = String.length payload in
      if Trace.enabled t.sim then
        Trace.instant t.sim ~cat:"msg"
          ~attrs:
            [
              ("from", Str (Format.asprintf "%a" pp_processor e.processor));
              ("to", Str (e.name ^ ":backup"));
              ("dest", Str (Format.asprintf "%a" pp_processor backup));
              ("req_bytes", Int bytes_);
            ]
          "checkpoint";
      let stats = Sim.stats t.sim in
      stats.Stats.checkpoint_msgs <- stats.Stats.checkpoint_msgs + 1;
      stats.Stats.checkpoint_bytes <- stats.Stats.checkpoint_bytes + bytes_;
      charge_hop ~cat:Moncore.C_ckpt t ~from:e.processor ~to_:backup bytes_;
      (* deliver to the backup half: heap-only replica maintenance *)
      (match e.ckpt_receiver with None -> () | Some f -> f payload)

(* Process-pair takeover: the backup becomes the primary. The old primary
   is gone; a new backup would be re-created elsewhere in the real system
   (not modelled). *)
let takeover_endpoint e =
  match e.backup with
  | None -> false
  | Some backup ->
      e.processor <- backup;
      e.backup <- None;
      true

let endpoint_backup e = e.backup

module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Config = Nsql_sim.Config
module Trace = Nsql_trace.Trace

type processor = { node : int; cpu : int }

let pp_processor ppf p = Format.fprintf ppf "\\%d.%d" p.node p.cpu

type endpoint = {
  name : string;
  mutable processor : processor;
  mutable backup : processor option;
  mutable handler : string -> string;
}

type fault_action =
  | Fault_pass
  | Fault_delay of float
  | Fault_path_retry of float

type fault_filter =
  from:processor -> to_name:string -> tag:string -> fault_action

type system = {
  sim : Sim.t;
  endpoints : (string, endpoint) Hashtbl.t;
  mutable fault_filter : fault_filter option;
}

let create sim = { sim; endpoints = Hashtbl.create 16; fault_filter = None }

let set_fault_filter t f = t.fault_filter <- f

let sim t = t.sim

let register t ~name ~processor ?backup handler =
  if Hashtbl.mem t.endpoints name then
    invalid_arg (Printf.sprintf "Msg.register: duplicate endpoint %s" name);
  let e = { name; processor; backup; handler } in
  Hashtbl.replace t.endpoints name e;
  e

let set_handler e h = e.handler <- h

let endpoint_name e = e.name
let endpoint_processor e = e.processor

let lookup t name = Hashtbl.find_opt t.endpoints name

let distance_cost cfg ~(from : processor) ~(to_ : processor) =
  if from.node <> to_.node then cfg.Config.msg_node_cost_us
  else if from.cpu <> to_.cpu then cfg.Config.msg_cpu_cost_us
  else cfg.Config.msg_local_cost_us

let charge_hop t ~from ~to_ bytes =
  let cfg = Sim.config t.sim in
  let cost =
    distance_cost cfg ~from ~to_
    +. (float_of_int bytes *. cfg.Config.msg_per_byte_us)
  in
  Sim.charge t.sim cost

let do_send t ~from ~tag e request =
  let stats = Sim.stats t.sim in
  stats.Stats.msgs_sent <- stats.Stats.msgs_sent + 1;
  stats.Stats.msg_req_bytes <- stats.Stats.msg_req_bytes + String.length request;
  if from.cpu <> e.processor.cpu || from.node <> e.processor.node then
    stats.Stats.msgs_remote <- stats.Stats.msgs_remote + 1;
  if from.node <> e.processor.node then
    stats.Stats.msgs_internode <- stats.Stats.msgs_internode + 1;
  (* fault injection: the chaos engine may delay this interaction or fail
     the first path, in which case GUARDIAN transparently resends over the
     alternate path — the requester only sees added latency *)
  (match t.fault_filter with
  | None -> ()
  | Some filter -> (
      match filter ~from ~to_name:e.name ~tag with
      | Fault_pass -> ()
      | Fault_delay d -> Sim.charge t.sim d
      | Fault_path_retry d ->
          stats.Stats.msg_path_retries <- stats.Stats.msg_path_retries + 1;
          (* the failed attempt still cost a hop before the timeout *)
          charge_hop t ~from ~to_:e.processor (String.length request);
          Sim.charge t.sim d));
  charge_hop t ~from ~to_:e.processor (String.length request);
  let reply = e.handler request in
  stats.Stats.msg_reply_bytes <-
    stats.Stats.msg_reply_bytes + String.length reply;
  charge_hop t ~from:e.processor ~to_:from (String.length reply);
  reply

(* One span per request/reply interaction, covering both hops and the
   server handler; virtual times when issued under a capture (nowait). *)
let send t ~from ~tag e request =
  if not (Trace.enabled t.sim) then do_send t ~from ~tag e request
  else begin
    let sp =
      Trace.begin_span t.sim ~cat:"msg"
        ~attrs:
          [
            ("from", Str (Format.asprintf "%a" pp_processor from));
            ("to", Str e.name);
            ("dest", Str (Format.asprintf "%a" pp_processor e.processor));
            ("req_bytes", Int (String.length request));
            ("remote",
             Bool (from.cpu <> e.processor.cpu || from.node <> e.processor.node));
            ("internode", Bool (from.node <> e.processor.node));
          ]
        tag
    in
    Fun.protect
      ~finally:(fun () -> Trace.finish t.sim sp)
      (fun () ->
        let reply = do_send t ~from ~tag e request in
        Trace.add_attr sp "reply_bytes" (Int (String.length reply));
        reply)
  end

(* --- nowait (overlapped) requests -------------------------------------- *)

type completion = { c_reply : string; c_done_at : float }

(* GUARDIAN nowait I/O: issue the interaction under a clock capture so its
   full latency (hops, Disk Process work, disk waits) is measured but not
   yet charged; the completion records when the reply lands. A batch of
   nowait sends issued back-to-back therefore costs the max of the
   individual latencies once awaited — never the sum — while every message,
   byte, CPU-tick and lock counter is identical to the blocking path.
   Handlers still run at issue time, in issue order: server-side state
   changes are deterministic and independent of await order. *)
let send_nowait t ~from ~tag e request =
  let reply, elapsed = Sim.capture t.sim (fun () -> send t ~from ~tag e request) in
  { c_reply = reply; c_done_at = Sim.now t.sim +. elapsed }

let await t c =
  Sim.wait_until t.sim c.c_done_at;
  c.c_reply

let done_at c = c.c_done_at

let await_any t cs =
  match cs with
  | [] -> invalid_arg "Msg.await_any: empty completion list"
  | first :: rest ->
      (* earliest simulated completion wins; ties break to the lowest list
         index so the choice never depends on anything but the sim clock *)
      let _, best_i, best =
        List.fold_left
          (fun (i, best_i, best) c ->
            let i = i + 1 in
            if c.c_done_at < best.c_done_at then (i, i, c)
            else (i, best_i, best))
          (0, 0, first) rest
      in
      Sim.wait_until t.sim best.c_done_at;
      (best_i, best.c_reply)

let checkpoint t e ~bytes_ =
  match e.backup with
  | None -> ()
  | Some backup ->
      if Trace.enabled t.sim then
        Trace.instant t.sim ~cat:"msg"
          ~attrs:
            [
              ("from", Str (Format.asprintf "%a" pp_processor e.processor));
              ("to", Str (e.name ^ ":backup"));
              ("dest", Str (Format.asprintf "%a" pp_processor backup));
              ("req_bytes", Int bytes_);
            ]
          "checkpoint";
      let stats = Sim.stats t.sim in
      stats.Stats.checkpoint_msgs <- stats.Stats.checkpoint_msgs + 1;
      stats.Stats.checkpoint_bytes <- stats.Stats.checkpoint_bytes + bytes_;
      charge_hop t ~from:e.processor ~to_:backup bytes_

(* Process-pair takeover: the backup becomes the primary. The old primary
   is gone; a new backup would be re-created elsewhere in the real system
   (not modelled). *)
let takeover_endpoint e =
  match e.backup with
  | None -> false
  | Some backup ->
      e.processor <- backup;
      e.backup <- None;
      true

let endpoint_backup e = e.backup

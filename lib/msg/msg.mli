(** The message system.

    Tandem's GUARDIAN operating system is message-based: requesters (the
    File System running inside application processes) talk to servers (Disk
    Processes) exclusively through request/reply messages, whether the
    server runs on the same processor, another processor of the node, or a
    remote node. The bandwidth asymmetry this creates is the paper's central
    motivation, so this module makes every message — and its payload bytes —
    a counted, costed event.

    A {!send} models one request/reply interaction: the requester blocks
    until the reply arrives. Costs scale with distance (same processor <
    cross-processor < cross-node) and payload size. *)

type processor = { node : int; cpu : int }

val pp_processor : Format.formatter -> processor -> unit

type system

type endpoint

val create : Nsql_sim.Sim.t -> system

val sim : system -> Nsql_sim.Sim.t

(** {1 Fault injection}

    GUARDIAN sends every interprocess message over one of two paths and
    transparently resends over the alternate path when the first fails; a
    chaos layer can observe and perturb every send through a filter. *)

type fault_action =
  | Fault_pass  (** deliver normally *)
  | Fault_delay of float  (** extra queueing delay in microseconds *)
  | Fault_path_retry of float
      (** the primary path fails: the request hop is charged twice plus
          this retry delay; delivery still succeeds (alternate path) *)

type fault_filter =
  from:processor -> to_name:string -> tag:string -> fault_action

(** [set_fault_filter sys (Some f)] consults [f] on every {!send};
    [set_fault_filter sys None] removes the filter. *)
val set_fault_filter : system -> fault_filter option -> unit

(** [register sys ~name ~processor ?backup handler] creates a server
    endpoint. [backup] is the hot-standby half of the process pair; when
    given, {!checkpoint} messages to it are charged. The handler receives
    the raw request payload and returns the reply payload. *)
val register :
  system ->
  name:string ->
  processor:processor ->
  ?backup:processor ->
  (string -> string) ->
  endpoint

(** [set_handler e h] replaces the endpoint's handler (used to break the
    construction cycle between a server and its message system). *)
val set_handler : endpoint -> (string -> string) -> unit

val endpoint_name : endpoint -> string
val endpoint_processor : endpoint -> processor
val endpoint_backup : endpoint -> processor option

(** [takeover_endpoint e] moves the endpoint to its backup processor (the
    process-pair takeover after a primary failure); returns [false] if no
    backup exists. Checkpointed state makes this transparent to clients. *)
val takeover_endpoint : endpoint -> bool

val lookup : system -> string -> endpoint option

(** [send sys ~from ~tag endpoint request] performs one request/reply
    interaction and returns the reply payload. Charges message costs and
    counters on the system's simulation world. When tracing is enabled
    (see [Nsql_trace.Trace]) each interaction is one cat-"msg" span with
    kind, endpoint, byte and locality attributes.

    If the server {!defer}s the reply, [send] blocks by pumping the event
    loop — advancing the clock event by event — until another session's
    release path or a timeout event {!resolve}s it. Must not be called on a
    deferring endpoint under a {!Nsql_sim.Sim.capture} (raises
    [Errors.Fatal]: events cannot fire while the clock is frozen). *)
val send : system -> from:processor -> tag:string -> endpoint -> string -> string

(** {1 Deferred replies}

    A server handler may park a request instead of answering it — the Disk
    Process does this for lock waits: the requester stays blocked while
    other sessions run, and the reply is delivered when the lock is granted
    or the wait budget expires. The handler calls [defer] (its returned
    string is then discarded), holds on to the deferral, and later calls
    [resolve] from ordinary control flow or a scheduled event. *)

type deferral

(** [defer sys] parks the current request/reply interaction and returns the
    handle the server must eventually {!resolve}. Only callable from inside
    an endpoint handler, once per interaction. *)
val defer : system -> deferral

(** [resolve sys d reply] delivers the withheld reply: charges the reply
    bytes and hop, and stamps the completion time (never earlier than the
    request's arrival at the server). The resolver's own clock does not
    advance. Resolving twice raises [Invalid_argument]. *)
val resolve : system -> deferral -> string -> unit

(** [resolved d] is true once {!resolve} has delivered the reply. *)
val resolved : deferral -> bool

(** {1 Nowait (overlapped) requests}

    GUARDIAN lets a requester issue an I/O without blocking and collect the
    completion later ("nowait I/O") — the mechanism the real File System
    used to drive several Disk Processes in parallel. [send_nowait] models
    it on the deterministic clock: the interaction runs at issue time under
    a {!Nsql_sim.Sim.capture}, so all counters (messages, bytes, CPU ticks,
    locks) are charged exactly as a blocking {!send}, but the elapsed time
    is only charged when the completion is awaited. Awaiting a batch of
    overlapped requests costs the {e max} of their latencies, not the sum.

    Every completion must be awaited (see the [NOWAIT-LEAK] lint rule):
    dropping one silently discards the latency of a request whose effects
    already happened. *)

type completion

(** [send_nowait sys ~from ~tag endpoint request] issues one interaction
    without blocking and returns its completion handle. The server handler
    runs immediately (in issue order), so replies and server state are
    deterministic regardless of await order. If the server {!defer}s, the
    completion is pending: its time is fixed when the server resolves it. *)
val send_nowait :
  system -> from:processor -> tag:string -> endpoint -> string -> completion

(** [await sys c] advances the clock to the completion time (a no-op if
    already past) and returns the reply payload. Idempotent. A pending
    completion is awaited by pumping the event loop (see {!send}). *)
val await : system -> completion -> string

(** [done_at c] is the simulated time at which the reply lands, or [None]
    while the request is still parked at the server. *)
val done_at : completion -> float option

(** [await_any sys cs] waits for the earliest completion in [cs] and
    returns its index and reply. Ties break to the lowest index, so the
    order is a pure function of simulated time. While any completion is
    still parked, events are pumped one at a time — a parked request may
    resolve to an earlier time than the best already-known completion.
    Raises [Invalid_argument] on the empty list. *)
val await_any : system -> completion list -> int * string

(** [checkpoint sys endpoint payload] sends a primary-to-backup checkpoint
    message carrying [payload], if the endpoint has a backup: charges the
    hop and the payload bytes, then hands the payload to the endpoint's
    checkpoint receiver (the backup half's replica maintenance). A no-op
    without a backup. State-changing requests checkpoint so the backup can
    take over mid-transaction. *)
val checkpoint : system -> endpoint -> string -> unit

(** [set_checkpoint_receiver e (Some f)] installs the backup-side consumer
    of checkpoint payloads. [f] must be pure heap bookkeeping: it runs
    synchronously inside {!checkpoint} after the charge and must never
    touch the simulation clock or counters. [None] uninstalls. *)
val set_checkpoint_receiver : endpoint -> (string -> unit) option -> unit

(* The rule engine: repo-specific rules over compiler-libs parse trees.

   Every rule is a pure function from a parse tree (plus whatever cross-file
   context it needs) to a list of diagnostics. Traversal uses
   [Ast_iterator.default_iterator] and touches only AST constructors that
   are stable across OCaml 5.1/5.2 (idents, applications, constructs,
   cases, type declarations), so the lint builds on both compilers in CI.

   The interprocedural rules at the bottom consume a [ctx]: the whole-repo
   call graph ([Callgraph]) and per-function may-effect summaries
   ([Effects]), so they see through helper calls instead of spot-checking
   call sites.

   | rule          | invariant it protects                                   |
   |---------------|---------------------------------------------------------|
   | DET-RANDOM    | all randomness flows from the chaos seed                |
   | SIM-CLOCK     | all time flows from the simulation clock                |
   | MON-PURE      | the monitor observes without perturbing the simulation  |
   | DET-HASHITER  | no unordered hash traversal reaches state or output     |
   | ERR-SWALLOW   | protocol paths neither drop results nor raise untyped   |
   | LOCK-ORDER    | acquisitions follow the declared volume→file→key order  |
   | PROTO-EXHAUST | every DP request is dispatched and has a requester path |
   | RES-LEAK      | every scan/span/completion/deferral/disk-I/O handle     |
   |               | reaches its paired close, even through helpers          |
   | CKPT-COMPLETE | every replica-visible DP mutation emits its checkpoint  |
   | CLOCK-CHARGE  | I/O and parking on dispatch paths charge the sim clock  |
   | PARK-SAFE     | only nothing-applied ops enter the lock wait queue      |
*)

open Parsetree

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
  go 0

(* [under "lib/sim" "lib/sim/sim.ml"] — directory test on '/'-separated
   paths, robust to absolute roots *)
let under dir path =
  let needle = dir ^ "/" in
  (String.length path >= String.length needle
  && String.equal (String.sub path 0 (String.length needle)) needle)
  || contains ~needle:("/" ^ needle) path

let ident_path expr =
  match expr.pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Some (Longident.flatten txt) with _ -> None)
  | _ -> None

(* treat [Stdlib.Random.int] and [Random.int] alike *)
let normalize = function "Stdlib" :: rest -> rest | path -> path

let iter_exprs structure f =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure

(* --- DET-RANDOM --------------------------------------------------------- *)

(* Nondeterministic randomness breaks byte-identical seed replay (PR 1's
   chaos harness). lib/sim is exempt: it owns the config that could one day
   seed legitimate randomness. The chaos harness's own [Prng] is a distinct
   seeded module and is untouched by this rule. *)
let det_random ~path structure =
  if under "lib/sim" path then []
  else begin
    let diags = ref [] in
    iter_exprs structure (fun e ->
        match Option.map normalize (ident_path e) with
        | Some ("Random" :: _ as p) ->
            diags :=
              Diag.of_loc ~rule:"DET-RANDOM" ~file:path e.pexp_loc
                (Printf.sprintf
                   "nondeterministic randomness source %s; derive randomness \
                    from a seeded Prng instead"
                   (String.concat "." p))
              :: !diags
        | _ -> ())
  ;
    List.rev !diags
  end

(* --- SIM-CLOCK ----------------------------------------------------------- *)

let wall_clock_reads =
  [
    [ "Unix"; "time" ];
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "sleep" ];
    [ "Unix"; "sleepf" ];
    [ "Unix"; "localtime" ];
    [ "Unix"; "gmtime" ];
    [ "Sys"; "time" ];
  ]

let sim_clock ~path structure =
  let diags = ref [] in
  iter_exprs structure (fun e ->
      match Option.map normalize (ident_path e) with
      | Some p
        when List.mem p wall_clock_reads
             || (match p with
                | ("Ptime_clock" | "Mtime_clock") :: _ -> true
                | _ -> false) ->
          diags :=
            Diag.of_loc ~rule:"SIM-CLOCK" ~file:path e.pexp_loc
              (Printf.sprintf
                 "wall-clock read %s; all time must come from Sim.now / the \
                  simulation clock"
                 (String.concat "." p))
            :: !diags
      | _ -> ());
  List.rev !diags

(* --- MON-PURE ------------------------------------------------------------ *)

(* The monitor layer is a pure observer: it reads the clock, snapshots
   counters and buckets durations, but must never charge time, schedule
   work, send messages or submit disk I/O. Any such call from the monitor
   would perturb the simulation and break the bit-identical-with-monitoring
   guarantee that test/test_monitor.ml enforces. The rule covers
   lib/monitor plus the in-sim bookkeeping modules it is built on
   (Moncore, Hist). *)

let mon_pure_file path =
  under "lib/monitor" path
  || contains ~needle:"lib/sim/moncore" path
  || contains ~needle:"lib/sim/hist" path

(* matched against the last two components of the identifier, so
   [Nsql_sim.Sim.charge] and [Sim.charge] are caught alike *)
let mon_pure_forbidden =
  [
    [ "Sim"; "tick" ];
    [ "Sim"; "charge" ];
    [ "Sim"; "wait_until" ];
    [ "Sim"; "schedule" ];
    [ "Sim"; "after" ];
    [ "Sim"; "drain" ];
    [ "Msg"; "send" ];
    [ "Msg"; "send_nowait" ];
    [ "Msg"; "await" ];
    [ "Msg"; "await_any" ];
    [ "Msg"; "checkpoint" ];
    [ "Disk"; "read" ];
    [ "Disk"; "write" ];
    [ "Disk"; "read_bulk" ];
    [ "Disk"; "write_bulk" ];
    [ "Disk"; "read_bulk_async" ];
    [ "Disk"; "write_bulk_async" ];
    [ "Disk"; "submit_read" ];
    [ "Disk"; "submit_write" ];
    [ "Disk"; "complete" ];
    [ "Disk"; "stall" ];
  ]

let mon_pure ~path structure =
  if not (mon_pure_file path) then []
  else begin
    let diags = ref [] in
    iter_exprs structure (fun e ->
        match ident_path e with
        | Some p -> (
            let tail =
              match List.rev p with
              | f :: m :: _ -> Some [ m; f ]
              | _ -> None
            in
            match tail with
            | Some t when List.mem t mon_pure_forbidden ->
                diags :=
                  Diag.of_loc ~rule:"MON-PURE" ~file:path e.pexp_loc
                    (Printf.sprintf
                       "monitor code calls %s; the monitor observes the \
                        simulation and must never charge time, schedule \
                        work, send messages or touch a disk"
                       (String.concat "." p))
                  :: !diags
            | _ -> ())
        | None -> ());
    List.rev !diags
  end

(* --- DET-HASHITER -------------------------------------------------------- *)

let hashtbl_traversals =
  [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

(* lib/util/tbl.ml is the sanctioned wrapper and the one place allowed to
   touch raw traversal. *)
let det_hashiter ~path structure =
  if Filename.check_suffix path "lib/util/tbl.ml" then []
  else begin
    let diags = ref [] in
    iter_exprs structure (fun e ->
        match Option.map normalize (ident_path e) with
        | Some [ "Hashtbl"; f ] when List.mem f hashtbl_traversals ->
            diags :=
              Diag.of_loc ~rule:"DET-HASHITER" ~file:path e.pexp_loc
                (Printf.sprintf
                   "unordered traversal Hashtbl.%s; use \
                    Nsql_util.Tbl.sorted_bindings, or allowlist a provably \
                    order-insensitive use"
                   f)
              :: !diags
        | _ -> ())
  ;
    List.rev !diags
  end

(* --- ERR-SWALLOW --------------------------------------------------------- *)

let protocol_dirs = [ "lib/dp"; "lib/fs"; "lib/msg"; "lib/dtx"; "lib/tmf" ]

let in_protocol_path path = List.exists (fun d -> under d path) protocol_dirs

(* The cross-file ingredient: the set of (Module, value) pairs whose
   declared type returns a [result], harvested from every .mli in the
   tree. Ignoring such a call discards an error. *)
module Result_index = struct
  type t = (string * string, unit) Hashtbl.t

  let create () : t = Hashtbl.create 256

  let rec returns_result ty =
    match ty.ptyp_desc with
    | Ptyp_arrow (_, _, ret) -> returns_result ret
    | Ptyp_constr ({ txt; _ }, _) -> (
        match try Longident.flatten txt with _ -> [] with
        | l -> ( match List.rev l with "result" :: _ -> true | _ -> false))
    | Ptyp_poly (_, ty) -> returns_result ty
    | _ -> false

  let add_signature (t : t) ~module_name signature =
    List.iter
      (fun item ->
        match item.psig_desc with
        | Psig_value { pval_name; pval_type; _ } ->
            if returns_result pval_type then
              Hashtbl.replace t (module_name, pval_name.txt) ()
        | _ -> ())
      signature

  let mem (t : t) ~module_name ~value = Hashtbl.mem t (module_name, value)
end

let err_swallow ~path ~(index : Result_index.t) structure =
  if not (in_protocol_path path) then []
  else begin
    let self = Source.module_name path in
    let diags = ref [] in
    let flag loc msg = diags := Diag.of_loc ~rule:"ERR-SWALLOW" ~file:path loc msg :: !diags in
    iter_exprs structure (fun e ->
        match e.pexp_desc with
        | Pexp_ident _ when ident_path e |> Option.map normalize = Some [ "failwith" ] ->
            flag e.pexp_loc
              "bare failwith in a protocol path; use Errors.fatal for \
               invariant violations or return a typed error"
        | Pexp_apply (fn, [ (Asttypes.Nolabel, arg) ])
          when ident_path fn |> Option.map normalize = Some [ "ignore" ] -> (
            match arg.pexp_desc with
            | Pexp_apply (callee, _) -> (
                match Option.map normalize (ident_path callee) with
                | Some callee_path -> (
                    let hit =
                      match List.rev callee_path with
                      | value :: m :: _ ->
                          Result_index.mem index ~module_name:m ~value
                      | [ value ] ->
                          Result_index.mem index ~module_name:self ~value
                      | [] -> false
                    in
                    match hit with
                    | true ->
                        flag e.pexp_loc
                          (Printf.sprintf
                             "ignore of result-returning %s discards an \
                              error; handle it or mark the intent with \
                              Errors.swallow"
                             (String.concat "." callee_path))
                    | false -> ())
                | None -> ())
            | _ -> ())
        | _ -> ());
    List.rev !diags
  end

(* --- LOCK-ORDER ---------------------------------------------------------- *)

let lock_dirs = [ "lib/dp"; "lib/tmf"; "lib/dtx" ]

(* The declared acquisition order is volume → file → key: a FILE lock may
   be followed by generic/range locks which may be followed by record
   locks, never the other way around within one code path. Ranks follow
   that coarse-to-fine ladder. *)
let rank_name = function
  | 0 -> "FILE"
  | 1 -> "GENERIC/RANGE"
  | 2 -> "RECORD"
  | _ -> "?"

let resource_rank expr =
  match expr.pexp_desc with
  | Pexp_construct ({ txt; _ }, _) -> (
      match try List.rev (Longident.flatten txt) with _ -> [] with
      | "File" :: _ -> Some 0
      | "Generic" :: _ | "Range" :: _ -> Some 1
      | "Record" :: _ -> Some 2
      | _ -> None)
  | _ -> None

let is_acquire_callee expr =
  match Option.map List.rev (ident_path expr) with
  | Some ("acquire" :: _) | Some ("try_lock" :: _) -> Some ()
  | _ -> None

(* Collect acquisition sites per top-level binding (interprocedural
   ordering is out of scope; each exported operation acquires its locks
   within one top-level definition in this codebase). *)
let lock_order ~path structure =
  if not (List.exists (fun d -> under d path) lock_dirs) then []
  else begin
    let diags = ref [] in
    List.iter
      (fun item ->
        let sites = ref [] in
        let it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun it e ->
                (match e.pexp_desc with
                | Pexp_apply (fn, args) when is_acquire_callee fn <> None ->
                    let rank =
                      List.find_map (fun (_, a) -> resource_rank a) args
                    in
                    sites := (e.pexp_loc, rank, fn) :: !sites
                | _ -> ());
                Ast_iterator.default_iterator.expr it e);
          }
        in
        it.structure_item it item;
        let sites = List.rev !sites in
        let coarsest = ref (-1) in
        List.iter
          (fun (loc, rank, fn) ->
            match rank with
            | None ->
                let name =
                  match ident_path fn with
                  | Some p -> String.concat "." p
                  | None -> "<fn>"
                in
                diags :=
                  Diag.of_loc ~rule:"LOCK-ORDER" ~file:path loc
                    (Printf.sprintf
                       "cannot prove lock order: resource argument of %s is \
                        not a literal Lock resource constructor"
                       name)
                  :: !diags
            | Some r ->
                if r < !coarsest then
                  diags :=
                    Diag.of_loc ~rule:"LOCK-ORDER" ~file:path loc
                      (Printf.sprintf
                         "%s lock acquired after a %s lock; acquisitions \
                          must follow the volume→file→key order"
                         (rank_name r) (rank_name !coarsest))
                    :: !diags
                else coarsest := max !coarsest r)
          sites)
      structure;
    List.rev !diags
  end

(* --- PROTO-EXHAUST ------------------------------------------------------- *)

(* Three obligations tie the wire protocol together:
   1. no match over DP requests (in the message or dispatch module) hides
      behind a catch-all — adding a request must not silently no-op;
   2. every request constructor is dispatched by name in the DP;
   3. every request constructor is constructed somewhere FS-side, i.e. the
      protocol carries no dead or DP-only requests. *)

let request_constructors structure =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, decls) ->
          List.concat_map
            (fun d ->
              if String.equal d.ptype_name.txt "request" then
                match d.ptype_kind with
                | Ptype_variant ctors ->
                    List.map
                      (fun c -> (c.pcd_name.txt, c.pcd_name.loc))
                      ctors
                | _ -> []
              else [])
            decls
      | _ -> [])
    structure

let rec pattern_heads in_set pat =
  match pat.ppat_desc with
  | Ppat_construct ({ txt; _ }, arg) ->
      let head =
        match try List.rev (Longident.flatten txt) with _ -> [] with
        | name :: _ when in_set name -> [ name ]
        | _ -> []
      in
      head
      @ (match arg with
        | Some (_, p) -> pattern_heads in_set p
        | None -> [])
  | Ppat_or (a, b) -> pattern_heads in_set a @ pattern_heads in_set b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) ->
      pattern_heads in_set p
  | Ppat_tuple ps -> List.concat_map (pattern_heads in_set) ps
  | _ -> []

let is_catch_all pat =
  match pat.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias ({ ppat_desc = Ppat_any; _ }, _) -> true
  | _ -> false

(* Scan every case list in [structure] (match, function, try — the [cases]
   iterator hook sees them all). A case list "is over requests" when at
   least one of its patterns mentions a request constructor. *)
let scan_request_matches ~path ~in_set structure =
  let matched = Hashtbl.create 32 in
  let diags = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      cases =
        (fun it cs ->
          let heads =
            List.concat_map (fun c -> pattern_heads in_set c.pc_lhs) cs
          in
          if heads <> [] then begin
            List.iter (fun h -> Hashtbl.replace matched h ()) heads;
            List.iter
              (fun c ->
                if is_catch_all c.pc_lhs then
                  diags :=
                    Diag.of_loc ~rule:"PROTO-EXHAUST" ~file:path
                      c.pc_lhs.ppat_loc
                      "catch-all pattern in a match over DP requests; new \
                       request constructors must be handled explicitly"
                    :: !diags)
              cs
          end;
          Ast_iterator.default_iterator.cases it cs);
    }
  in
  it.structure it structure;
  (matched, List.rev !diags)

let record_constructed ~in_set built structure =
  iter_exprs structure (fun e ->
      match e.pexp_desc with
      | Pexp_construct ({ txt; _ }, _) -> (
          match try List.rev (Longident.flatten txt) with _ -> [] with
          | name :: _ when in_set name -> Hashtbl.replace built name ()
          | _ -> ())
      | _ -> ())

let proto_exhaust ~msg:(msg_path, msg_structure)
    ~dispatch:(dispatch_path, dispatch_structure) ~requesters =
  let ctors = request_constructors msg_structure in
  if ctors = [] then []
  else begin
    let in_set name = List.mem_assoc name ctors in
    let dispatched, dispatch_diags =
      scan_request_matches ~path:dispatch_path ~in_set dispatch_structure
    in
    let _, msg_diags =
      scan_request_matches ~path:msg_path ~in_set msg_structure
    in
    let requester_built = Hashtbl.create 32 in
    List.iter
      (fun (_, structure) -> record_constructed ~in_set requester_built structure)
      requesters;
    let missing_dispatch =
      List.filter_map
        (fun (name, loc) ->
          if Hashtbl.mem dispatched name then None
          else
            Some
              (Diag.of_loc ~rule:"PROTO-EXHAUST" ~file:msg_path loc
                 (Printf.sprintf
                    "request constructor %s is not dispatched in %s" name
                    dispatch_path)))
        ctors
    in
    let missing_requester =
      List.filter_map
        (fun (name, loc) ->
          if Hashtbl.mem requester_built name then None
          else
            Some
              (Diag.of_loc ~rule:"PROTO-EXHAUST" ~file:msg_path loc
                 (Printf.sprintf
                    "request constructor %s has no FS-side requester or \
                     continuation path"
                    name)))
        ctors
    in
    msg_diags @ dispatch_diags @ missing_dispatch @ missing_requester
  end

(* does [name] occur as an identifier anywhere in [e]? (conservative:
   shadowing counts as a use) *)
let uses_var name e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it x ->
          (match x.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; _ } when String.equal n name ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it x);
    }
  in
  it.expr it e;
  !found

(* --- interprocedural context ---------------------------------------------- *)

(* Shared by the graph-aware rules: the whole-repo call graph and the
   per-function may-effect summaries computed over it. Built once per
   engine run from every parsed file. *)
type ctx = { graph : Callgraph.t; summaries : Effects.summaries }

let build_ctx parsed =
  let graph = Callgraph.build parsed in
  { graph; summaries = Effects.summaries graph }

(* --- RES-LEAK -------------------------------------------------------------- *)

(* One rule for every open/close-paired handle in the system:

     handle               opener            paired close
     scan (SCB + span)    open_scan         close_scan / seq_close
     trace span           begin_span        Trace.finish
     nowait completion    send_nowait       Msg.await / Msg.await_any
     withheld reply       Msg.defer         Msg.resolve
     in-flight disk I/O   Disk.submit_read  Disk.complete
                          Disk.submit_write

   A dropped handle is never neutral here: an unclosed scan pins its SCB
   (and its span), an unawaited completion silently discards the latency of
   a request whose effects already happened, an unresolved deferral leaves
   a requester blocked forever, and an uncompleted disk submission never
   charges its transfer to the clock (its span stays open too).

   The per-file shapes that provably drop the handle are flagged as before:
   [ignore (opener ...)], a statement-position call, a [_] binding, and a
   named binding with no use at all. The interprocedural upgrade is in how
   a *used* binding is judged: every use of the handle is classified. A use
   that reaches a paired close — directly, or as an argument to a function
   whose effect summary contains the closing effect — proves the binding
   fine; so does any use the analysis cannot see through (a store into a
   record or constructor transfers ownership; a call to an unknown or
   unresolved function might close). But when *every* use hands the handle
   to functions whose analyzed bodies provably never reach the close, the
   handle cannot be closed on any path and the binding is flagged — the
   cross-function blind spot the old per-file NOWAIT-LEAK/SPAN-LEAK fences
   could not see. *)

type res_kind = K_scan | K_span | K_completion | K_deferral | K_diskio

let kind_label = function
  | K_scan -> "scan"
  | K_span -> "span"
  | K_completion -> "nowait completion"
  | K_deferral -> "deferral"
  | K_diskio -> "disk I/O"

let kind_close = function
  | K_scan -> "close_scan"
  | K_span -> "Trace.finish"
  | K_completion -> "Msg.await"
  | K_deferral -> "Msg.resolve"
  | K_diskio -> "Disk.complete"

let closer_names = function
  | K_scan -> [ "close_scan"; "seq_close" ]
  | K_span -> [ "finish" ]
  | K_completion -> [ "await"; "await_any" ]
  | K_deferral -> [ "resolve" ]
  | K_diskio -> [ "complete" ]

let closing_effect = function
  | K_scan -> Effects.Closes_scan
  | K_span -> Effects.Finishes_span
  | K_completion -> Effects.Awaits_completion
  | K_deferral -> Effects.Resolves_deferral
  (* [Disk.complete] is the only primitive carrying this effect besides the
     [Msg] awaits; a helper that awaits *something* is trusted to be the
     completion path — may-analysis, it can only prove a binding fine *)
  | K_diskio -> Effects.Awaits_completion

let opener_of_app e =
  match e.pexp_desc with
  | Pexp_apply (callee, _) -> (
      match Option.map List.rev (ident_path callee) with
      | Some ("open_scan" :: _) -> Some K_scan
      | Some ("begin_span" :: _) -> Some K_span
      | Some ("send_nowait" :: _) -> Some K_completion
      | Some ("defer" :: "Msg" :: _) -> Some K_deferral
      | Some ("submit_read" :: "Disk" :: _) | Some ("submit_write" :: "Disk" :: _)
        ->
          Some K_diskio
      | _ -> None)
  | _ -> None

(* the opener may sit behind value-position wrappers: [if Trace.enabled sim
   then Some (begin_span ...) else None] still binds a live handle *)
let rec spine_opener e =
  match opener_of_app e with
  | Some k -> Some k
  | None -> (
      match e.pexp_desc with
      | Pexp_ifthenelse (_, a, b) -> (
          match spine_opener a with
          | Some k -> Some k
          | None -> Option.bind b spine_opener)
      | Pexp_match (_, cases) | Pexp_try (_, cases) ->
          List.find_map (fun c -> spine_opener c.pc_rhs) cases
      | Pexp_construct (_, Some a) -> spine_opener a
      | Pexp_let (_, _, b) | Pexp_sequence (_, b) | Pexp_open (_, b) ->
          spine_opener b
      | Pexp_constraint (a, _) -> spine_opener a
      | _ -> None)

type use = U_closer | U_known_nonclosing of string | U_unknown

(* classify every occurrence of [name] in [body] by its immediate context *)
let classify_uses ~ctx ~unit_name ~kind name body =
  let uses = ref [] in
  let add u = uses := u :: !uses in
  let is_x e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; _ } -> String.equal n name
    | _ -> false
  in
  let classify_callee callee =
    match ident_path callee with
    | None -> U_unknown
    | Some p -> (
        match List.rev p with
        | last :: _ when List.mem last (closer_names kind) -> U_closer
        | _ -> (
            match Callgraph.resolve ctx.graph ~unit_name p with
            | None -> U_unknown
            | Some key ->
                if Effects.mem (closing_effect kind)
                     (Effects.summary ctx.summaries key)
                then U_closer
                else U_known_nonclosing key))
  in
  let rec go e =
    match e.pexp_desc with
    | Pexp_apply (callee, args) when List.exists (fun (_, a) -> is_x a) args ->
        let u = classify_callee callee in
        List.iter (fun (_, a) -> if is_x a then add u else go a) args;
        go callee
    | Pexp_ident { txt = Longident.Lident n; _ } when String.equal n name ->
        add U_unknown
    | _ ->
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ child -> go child);
          }
        in
        Ast_iterator.default_iterator.expr it e
  in
  go body;
  List.rev !uses

(* A handle that *is* closed, but only by a statement-position close at the
   end of its binding's let-chain, leaks whenever the driver between open
   and close raises ([Row.decode_exn] on a malformed record, any assert).
   Detect exactly that shape — [let x = opener in ... let r = drive ... in
   close x; r] where the handle was already used before the close — and
   demand the [Fun.protect ~finally] idiom instead. The walk stays on the
   binding's spine (let chains, sequences, branches), so a close handed out
   in a closure (caller-must-close contracts) is never flagged. *)
let trailing_unprotected_close ~kind name body =
  let is_x e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; _ } -> String.equal n name
    | _ -> false
  in
  let direct_close e =
    match e.pexp_desc with
    | Pexp_apply (callee, args) -> (
        List.exists (fun (_, a) -> is_x a) args
        &&
        match Option.map List.rev (ident_path callee) with
        | Some (last :: _) -> List.mem last (closer_names kind)
        | _ -> false)
    | _ -> false
  in
  let rec walk used e =
    match e.pexp_desc with
    | Pexp_let (_, vbs, cont) ->
        let used =
          used || List.exists (fun vb -> uses_var name vb.pvb_expr) vbs
        in
        walk used cont
    | Pexp_sequence (e1, cont) ->
        if direct_close e1 then if used then Some e1.pexp_loc else None
        else walk (used || uses_var name e1) cont
    | Pexp_ifthenelse (_, a, b) -> (
        match walk used a with
        | Some l -> Some l
        | None -> Option.bind b (walk used))
    | Pexp_match (_, cases) ->
        List.find_map (fun c -> walk used c.pc_rhs) cases
    | Pexp_open (_, cont) | Pexp_constraint (cont, _) -> walk used cont
    | _ -> None
  in
  walk false body

(* --- streamed cursors -------------------------------------------------------

   [Fs.index_scan] (and its batch variant) hands back a [(next, close)]
   pair instead of a scan handle, bound through [let*] over result — three
   blind spots at once for the handle analysis above: the opener is not an
   [open_scan]-family call, the pattern is a tuple, and [let*] is a
   [Pexp_letop], which the [Pexp_let] walk never visits. Recognize exactly
   that shape — a let/let* binding a tuple whose last component is a
   variable, whose bound expression calls [index_scan]* — and treat the
   last component as the stream's close thunk:

   - never called and never passed on: the SCB and span leak on every path;
   - called only in statement position at the end of the binding's spine
     after the stream was driven: leaks whenever the driver raises —
     demand [Fun.protect ~finally];
   - passed as an argument (e.g. [~finally:close]) or closed inside a
     function value: assumed safe. *)

let stream_opener_names = [ "index_scan"; "index_scan_batch" ]

let calls_stream_opener e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it x ->
          (match ident_path x with
          | Some p -> (
              match List.rev p with
              | last :: _ when List.mem last stream_opener_names ->
                  found := true
              | _ -> ())
          | None -> ());
          Ast_iterator.default_iterator.expr it x);
    }
  in
  it.expr it e;
  !found

(* how the close thunk occurs in the body: applied in callee position,
   passed somewhere as an argument, or mentioned some other way *)
let stream_close_uses name body =
  let applied = ref 0 and passed = ref 0 in
  let is_x x =
    match x.pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; _ } -> String.equal n name
    | _ -> false
  in
  let rec go x =
    match x.pexp_desc with
    | Pexp_apply (callee, args) ->
        if is_x callee then incr applied else go callee;
        List.iter
          (fun (_, a) -> if is_x a then incr passed else go a)
          args
    | Pexp_ident { txt = Longident.Lident n; _ } when String.equal n name ->
        incr passed
    | _ ->
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ child -> go child);
          }
        in
        Ast_iterator.default_iterator.expr it x
  in
  go body;
  (!applied, !passed)

(* like [trailing_unprotected_close], but the close is the bound thunk
   applied in callee position, and "used" means the stream's other tuple
   components (the [next] function) were referenced earlier on the spine *)
let stream_trailing_close ~others name body =
  let is_close_call x =
    match x.pexp_desc with
    | Pexp_apply (callee, _) -> (
        match callee.pexp_desc with
        | Pexp_ident { txt = Longident.Lident n; _ } -> String.equal n name
        | _ -> false)
    | _ -> false
  in
  let uses_stream x = List.exists (fun n -> uses_var n x) others in
  let rec walk used e =
    match e.pexp_desc with
    | Pexp_let (_, vbs, cont) ->
        let used =
          used || List.exists (fun vb -> uses_stream vb.pvb_expr) vbs
        in
        walk used cont
    | Pexp_letop { let_; ands; body = cont; _ } ->
        let used =
          used
          || List.exists (fun op -> uses_stream op.pbop_exp) (let_ :: ands)
        in
        walk used cont
    | Pexp_sequence (e1, cont) ->
        if is_close_call e1 then if used then Some e1.pexp_loc else None
        else walk (used || uses_stream e1) cont
    | Pexp_ifthenelse (_, a, b) -> (
        match walk used a with
        | Some l -> Some l
        | None -> Option.bind b (walk used))
    | Pexp_match (_, cases) -> List.find_map (fun c -> walk used c.pc_rhs) cases
    | Pexp_open (_, cont) | Pexp_constraint (cont, _) -> walk used cont
    | _ -> None
  in
  walk false body

let rec stream_pat_var p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) | Ppat_alias (p, _) -> stream_pat_var p
  | _ -> None

let check_stream_binding ~flag pat expr body =
  let rec unwrap p =
    match p.ppat_desc with
    | Ppat_constraint (p, _) | Ppat_alias (p, _) -> unwrap p
    | _ -> p
  in
  match (unwrap pat).ppat_desc with
  | Ppat_tuple comps when List.length comps >= 2 && calls_stream_opener expr
    -> (
      match List.rev comps with
      | last :: others_rev -> (
          match stream_pat_var last with
          | None -> ()
          | Some close_name -> (
              let others = List.filter_map stream_pat_var others_rev in
              match stream_close_uses close_name body with
              | 0, 0 ->
                  flag pat.ppat_loc
                    (Printf.sprintf
                       "index-scan close thunk %s is never called; the \
                        stream's SCB and span leak on every path"
                       close_name)
              | _, passed when passed > 0 ->
                  (* handed off (e.g. Fun.protect ~finally:close) *)
                  ()
              | _, _ -> (
                  match stream_trailing_close ~others close_name body with
                  | Some loc ->
                      flag loc
                        (Printf.sprintf
                           "index-scan stream is closed only on the \
                            fall-through path; a raise out of the driver \
                            leaks it — run %s under Fun.protect ~finally"
                           close_name)
                  | None -> ())))
      | [] -> ())
  | _ -> ()

let res_leak ~path ~ctx structure =
  let unit_name = Source.module_name path in
  let diags = ref [] in
  let flag loc msg =
    diags := Diag.of_loc ~rule:"RES-LEAK" ~file:path loc msg :: !diags
  in
  iter_exprs structure (fun e ->
      match e.pexp_desc with
      | Pexp_apply (fn, [ (Asttypes.Nolabel, arg) ])
        when ident_path fn |> Option.map normalize = Some [ "ignore" ] -> (
          match opener_of_app arg with
          | Some k ->
              flag e.pexp_loc
                (Printf.sprintf
                   "%s handle discarded with ignore; it can never reach %s"
                   (kind_label k) (kind_close k))
          | None -> ())
      | Pexp_sequence (e1, _) -> (
          match opener_of_app e1 with
          | Some k ->
              flag e1.pexp_loc
                (Printf.sprintf
                   "%s opened in statement position drops its handle; bind \
                    it and %s it on every path"
                   (kind_label k) (kind_close k))
          | None -> ())
      | Pexp_letop { let_; ands; body; _ } ->
          List.iter
            (fun op -> check_stream_binding ~flag op.pbop_pat op.pbop_exp body)
            (let_ :: ands)
      | Pexp_let (_, vbs, body) ->
          List.iter
            (fun vb -> check_stream_binding ~flag vb.pvb_pat vb.pvb_expr body)
            vbs;
          List.iter
            (fun vb ->
              match spine_opener vb.pvb_expr with
              | None -> ()
              | Some k -> (
                  let rec pat_var p =
                    match p.ppat_desc with
                    | Ppat_var { txt; _ } -> Some txt
                    | Ppat_constraint (p, _) | Ppat_alias (p, _) -> pat_var p
                    | _ -> None
                  in
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_any ->
                      flag vb.pvb_pat.ppat_loc
                        (Printf.sprintf
                           "%s handle bound to _ can never reach %s"
                           (kind_label k) (kind_close k))
                  | _ -> (
                      match pat_var vb.pvb_pat with
                      | None -> ()
                      | Some name -> (
                          match
                            classify_uses ~ctx ~unit_name ~kind:k name body
                          with
                          | [] ->
                              flag vb.pvb_pat.ppat_loc
                                (Printf.sprintf
                                   "%s handle %s is never used; %s it on \
                                    every path"
                                   (kind_label k) name (kind_close k))
                          | uses
                            when List.for_all
                                   (function
                                     | U_known_nonclosing _ -> true
                                     | _ -> false)
                                   uses ->
                              let callees =
                                List.sort_uniq String.compare
                                  (List.filter_map
                                     (function
                                       | U_known_nonclosing key -> Some key
                                       | _ -> None)
                                     uses)
                              in
                              flag vb.pvb_pat.ppat_loc
                                (Printf.sprintf
                                   "%s handle %s is only passed to %s, none \
                                    of which can reach %s; the handle leaks \
                                    on every path"
                                   (kind_label k) name
                                   (String.concat ", " callees)
                                   (kind_close k))
                          | _ -> (
                              match
                                trailing_unprotected_close ~kind:k name body
                              with
                              | Some loc ->
                                  flag loc
                                    (Printf.sprintf
                                       "%s handle %s is closed only on the \
                                        fall-through path; a raise out of \
                                        the driver leaks it — run %s under \
                                        Fun.protect ~finally"
                                       (kind_label k) name (kind_close k))
                              | None -> ())))))
            vbs
      | _ -> ());
  List.rev !diags

(* --- CKPT-COMPLETE --------------------------------------------------------- *)

(* Zero acknowledged-commit loss on takeover (PR 6) only holds if every
   piece of replica-visible state the primary mutates while serving a
   request is also streamed to the backup. Two obligations over the
   dispatch-reachable part of lib/dp (everything reachable from a DP
   [handler]; [takeover]/[crash]/recovery entry points rebuild state by
   design and are exempt):

   1. any reachable function that locally mutates checkpoint-carried
      control state (the SCB table, the waiter queue) must have
      [Emits_ckpt] in its transitive summary — the mutation and its
      checkpoint item may be in different functions, but a mutation whose
      entire call subtree never emits is state the backup cannot learn;
   2. a handler whose summary reaches [Mutates_heap] (B-tree / relative /
      entry file writes) must also reach [Emits_ckpt] — the write-intent
      stream must exist on mutation paths. *)

let ckpt_complete ~ctx () =
  let dp_nodes =
    List.filter
      (fun (n : Callgraph.node) -> under "lib/dp" n.n_file)
      (Callgraph.nodes ctx.graph)
  in
  let roots =
    List.filter (fun (n : Callgraph.node) -> String.equal n.n_name "handler")
      dp_nodes
  in
  if roots = [] then []
  else begin
    let reach =
      Callgraph.reachable ctx.graph
        ~roots:(List.map (fun (n : Callgraph.node) -> n.n_key) roots)
    in
    let mutation_diags =
      List.filter_map
        (fun (n : Callgraph.node) ->
          if
            Hashtbl.mem reach n.n_key
            && Effects.mem Effects.Mutates_control (Effects.local_of_node n)
            && not
                 (Effects.mem Effects.Emits_ckpt
                    (Effects.summary ctx.summaries n.n_key))
          then
            Some
              (Diag.of_loc ~rule:"CKPT-COMPLETE" ~file:n.n_file n.n_loc
                 (Printf.sprintf
                    "%s mutates replica-visible control state on a dispatch \
                     path but nothing in its call subtree emits a checkpoint \
                     item; the backup cannot learn this state"
                    n.n_name))
          else None)
        dp_nodes
    in
    let root_diags =
      List.filter_map
        (fun (n : Callgraph.node) ->
          let s = Effects.summary ctx.summaries n.n_key in
          if Effects.mem Effects.Mutates_heap s
             && not (Effects.mem Effects.Emits_ckpt s)
          then
            Some
              (Diag.of_loc ~rule:"CKPT-COMPLETE" ~file:n.n_file n.n_loc
                 (Printf.sprintf
                    "dispatch root %s reaches heap mutations but no \
                     checkpoint emit; acknowledged writes would be lost on \
                     takeover"
                    n.n_name))
          else None)
        roots
    in
    mutation_diags @ root_diags
  end

(* --- CLOCK-CHARGE ---------------------------------------------------------- *)

(* The max-of-latencies accounting (PR 3) and every elapsed-time claim in
   the experiment suite assume that real work on a dispatch path costs
   simulated time. A function on a DP/FS dispatch path that performs disk
   I/O or parks a waiter, while nothing in its call subtree ever touches
   the simulation clock, is free work — it silently deflates elapsed-time
   measurements. [roots] are the DP handlers plus every FS-exported entry
   point; the engine computes them from the graph and the interfaces. *)

let clock_charge ~ctx ~roots () =
  let reach = Callgraph.reachable ctx.graph ~roots in
  List.filter_map
    (fun (n : Callgraph.node) ->
      if Hashtbl.mem reach n.n_key then begin
        let local = Effects.local_of_node n in
        let wants =
          Effects.mem Effects.Performs_io local
          || Effects.mem Effects.Parks_waiter local
        in
        if
          wants
          && not
               (Effects.mem Effects.Charges_clock
                  (Effects.summary ctx.summaries n.n_key))
        then
          Some
            (Diag.of_loc ~rule:"CLOCK-CHARGE" ~file:n.n_file n.n_loc
               (Printf.sprintf
                  "%s performs I/O or parks a waiter on a dispatch path but \
                   nothing in its call subtree charges the simulation \
                   clock; the work is free and corrupts elapsed-time \
                   accounting"
                  n.n_name))
        else None
      end
      else None)
    (Callgraph.nodes ctx.graph)

(* --- PARK-SAFE ------------------------------------------------------------- *)

(* Only nothing-applied operations may enter the DP lock wait queue (PR 5):
   a parked request is re-dispatched from scratch, so any operation that
   carries partial progress (SCB state, processed counts, accumulators)
   must keep the immediate-denial protocol. Three obligations:

   1. the set of ops [park_tx] actually parks must equal the declared
      whitelist below — extending the queue to a new op is a deliberate,
      audited decision, not a fallout of editing a match;
   2. no declared op may silently stop parking (stale whitelist);
   3. no parked op's dispatch arm may reach [Opens_scan] (SCB allocation):
      re-dispatch would duplicate the partial state the SCB carries. *)

let park_whitelist =
  [
    "R_read";
    "R_read_next";
    "R_insert";
    "R_update";
    "R_delete";
    "R_lock_file";
    "R_lock_generic";
    "R_rel_write";
    "R_rel_rewrite";
    "R_rel_delete";
    "R_entry_append";
    "R_insert_row";
    "R_insert_block";
  ]

let case_lists_of expr =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      cases =
        (fun it cs ->
          acc := cs :: !acc;
          Ast_iterator.default_iterator.cases it cs);
    }
  in
  it.expr it expr;
  List.rev !acc

let is_request_ctor name =
  String.length name > 2 && String.equal (String.sub name 0 2) "R_"

let non_parking_body e =
  match e.pexp_desc with
  | Pexp_construct ({ txt; _ }, None) -> (
      match try List.rev (Longident.flatten txt) with _ -> [] with
      | ("None" | "false") :: _ -> true
      | _ -> false)
  | _ -> false

let park_safe ?(whitelist = park_whitelist) ~ctx () =
  let find_dp name =
    List.find_opt
      (fun (n : Callgraph.node) ->
        under "lib/dp" n.n_file && String.equal n.n_name name)
      (Callgraph.nodes ctx.graph)
  in
  match find_dp "park_tx" with
  | None -> []
  | Some park_tx ->
      let diags = ref [] in
      let flag ~file loc msg =
        diags := Diag.of_loc ~rule:"PARK-SAFE" ~file loc msg :: !diags
      in
      let parked = ref [] in
      List.iter
        (fun cases ->
          List.iter
            (fun c ->
              if not (non_parking_body c.pc_rhs) then
                List.iter
                  (fun h ->
                    if not (List.mem h !parked) then begin
                      parked := h :: !parked;
                      if not (List.mem h whitelist) then
                        flag ~file:park_tx.n_file c.pc_lhs.ppat_loc
                          (Printf.sprintf
                             "%s may park on the lock wait queue but is not \
                              in the declared nothing-applied whitelist; \
                              audit re-dispatch safety and extend the \
                              PARK-SAFE whitelist deliberately"
                             h)
                    end)
                  (pattern_heads is_request_ctor c.pc_lhs))
            cases)
        (case_lists_of park_tx.n_body);
      List.iter
        (fun w ->
          if not (List.mem w !parked) then
            flag ~file:park_tx.n_file park_tx.n_loc
              (Printf.sprintf
                 "declared nothing-applied op %s no longer parks in \
                  park_tx; remove it from the PARK-SAFE whitelist"
                 w))
        whitelist;
      (match find_dp "dispatch" with
      | None -> ()
      | Some dispatch ->
          List.iter
            (fun cases ->
              List.iter
                (fun c ->
                  let heads =
                    List.filter
                      (fun h -> List.mem h !parked)
                      (pattern_heads is_request_ctor c.pc_lhs)
                  in
                  if heads <> [] then begin
                    let eff =
                      Effects.of_expr ctx.graph ctx.summaries
                        ~unit_name:dispatch.n_unit c.pc_rhs
                    in
                    if Effects.mem Effects.Opens_scan eff then
                      flag ~file:dispatch.n_file c.pc_lhs.ppat_loc
                        (Printf.sprintf
                           "parkable op %s opens an SCB/scan on its dispatch \
                            path; re-dispatch after a park would duplicate \
                            partial scan state"
                           (String.concat "/" heads))
                  end)
                cases)
            (case_lists_of dispatch.n_body));
      List.rev !diags

(* --- the per-file bundle -------------------------------------------------- *)

let per_file ~path ~index ~ctx ~enabled structure =
  let r name f = if enabled name then f () else [] in
  r "DET-RANDOM" (fun () -> det_random ~path structure)
  @ r "SIM-CLOCK" (fun () -> sim_clock ~path structure)
  @ r "MON-PURE" (fun () -> mon_pure ~path structure)
  @ r "DET-HASHITER" (fun () -> det_hashiter ~path structure)
  @ r "ERR-SWALLOW" (fun () -> err_swallow ~path ~index structure)
  @ r "LOCK-ORDER" (fun () -> lock_order ~path structure)
  @ r "RES-LEAK" (fun () -> res_leak ~path ~ctx structure)

(* The rule engine: six repo-specific rules over compiler-libs parse trees.

   Every rule is a pure function from a parse tree (plus whatever cross-file
   context it needs) to a list of diagnostics. Traversal uses
   [Ast_iterator.default_iterator] and touches only AST constructors that
   are stable across OCaml 5.1/5.2 (idents, applications, constructs,
   cases, type declarations), so the lint builds on both compilers in CI.

   | rule         | invariant it protects                                   |
   |--------------|---------------------------------------------------------|
   | DET-RANDOM   | all randomness flows from the chaos seed                |
   | SIM-CLOCK    | all time flows from the simulation clock                |
   | DET-HASHITER | no unordered hash traversal reaches state or output     |
   | ERR-SWALLOW  | protocol paths neither drop results nor raise untyped   |
   | LOCK-ORDER   | acquisitions follow the declared volume→file→key order  |
   | PROTO-EXHAUST| every DP request is dispatched and has a requester path |
   | NOWAIT-LEAK  | every send_nowait completion is bound and awaited       |
   | SPAN-LEAK    | every begin_span handle is bound and finished           |
*)

open Parsetree

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
  go 0

(* [under "lib/sim" "lib/sim/sim.ml"] — directory test on '/'-separated
   paths, robust to absolute roots *)
let under dir path =
  let needle = dir ^ "/" in
  (String.length path >= String.length needle
  && String.equal (String.sub path 0 (String.length needle)) needle)
  || contains ~needle:("/" ^ needle) path

let ident_path expr =
  match expr.pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Some (Longident.flatten txt) with _ -> None)
  | _ -> None

(* treat [Stdlib.Random.int] and [Random.int] alike *)
let normalize = function "Stdlib" :: rest -> rest | path -> path

let iter_exprs structure f =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure

(* --- DET-RANDOM --------------------------------------------------------- *)

(* Nondeterministic randomness breaks byte-identical seed replay (PR 1's
   chaos harness). lib/sim is exempt: it owns the config that could one day
   seed legitimate randomness. The chaos harness's own [Prng] is a distinct
   seeded module and is untouched by this rule. *)
let det_random ~path structure =
  if under "lib/sim" path then []
  else begin
    let diags = ref [] in
    iter_exprs structure (fun e ->
        match Option.map normalize (ident_path e) with
        | Some ("Random" :: _ as p) ->
            diags :=
              Diag.of_loc ~rule:"DET-RANDOM" ~file:path e.pexp_loc
                (Printf.sprintf
                   "nondeterministic randomness source %s; derive randomness \
                    from a seeded Prng instead"
                   (String.concat "." p))
              :: !diags
        | _ -> ())
  ;
    List.rev !diags
  end

(* --- SIM-CLOCK ----------------------------------------------------------- *)

let wall_clock_reads =
  [
    [ "Unix"; "time" ];
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "sleep" ];
    [ "Unix"; "sleepf" ];
    [ "Unix"; "localtime" ];
    [ "Unix"; "gmtime" ];
    [ "Sys"; "time" ];
  ]

let sim_clock ~path structure =
  let diags = ref [] in
  iter_exprs structure (fun e ->
      match Option.map normalize (ident_path e) with
      | Some p
        when List.mem p wall_clock_reads
             || (match p with
                | ("Ptime_clock" | "Mtime_clock") :: _ -> true
                | _ -> false) ->
          diags :=
            Diag.of_loc ~rule:"SIM-CLOCK" ~file:path e.pexp_loc
              (Printf.sprintf
                 "wall-clock read %s; all time must come from Sim.now / the \
                  simulation clock"
                 (String.concat "." p))
            :: !diags
      | _ -> ());
  List.rev !diags

(* --- DET-HASHITER -------------------------------------------------------- *)

let hashtbl_traversals =
  [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

(* lib/util/tbl.ml is the sanctioned wrapper and the one place allowed to
   touch raw traversal. *)
let det_hashiter ~path structure =
  if Filename.check_suffix path "lib/util/tbl.ml" then []
  else begin
    let diags = ref [] in
    iter_exprs structure (fun e ->
        match Option.map normalize (ident_path e) with
        | Some [ "Hashtbl"; f ] when List.mem f hashtbl_traversals ->
            diags :=
              Diag.of_loc ~rule:"DET-HASHITER" ~file:path e.pexp_loc
                (Printf.sprintf
                   "unordered traversal Hashtbl.%s; use \
                    Nsql_util.Tbl.sorted_bindings, or allowlist a provably \
                    order-insensitive use"
                   f)
              :: !diags
        | _ -> ())
  ;
    List.rev !diags
  end

(* --- ERR-SWALLOW --------------------------------------------------------- *)

let protocol_dirs = [ "lib/dp"; "lib/fs"; "lib/msg"; "lib/dtx"; "lib/tmf" ]

let in_protocol_path path = List.exists (fun d -> under d path) protocol_dirs

(* The cross-file ingredient: the set of (Module, value) pairs whose
   declared type returns a [result], harvested from every .mli in the
   tree. Ignoring such a call discards an error. *)
module Result_index = struct
  type t = (string * string, unit) Hashtbl.t

  let create () : t = Hashtbl.create 256

  let rec returns_result ty =
    match ty.ptyp_desc with
    | Ptyp_arrow (_, _, ret) -> returns_result ret
    | Ptyp_constr ({ txt; _ }, _) -> (
        match try Longident.flatten txt with _ -> [] with
        | l -> ( match List.rev l with "result" :: _ -> true | _ -> false))
    | Ptyp_poly (_, ty) -> returns_result ty
    | _ -> false

  let add_signature (t : t) ~module_name signature =
    List.iter
      (fun item ->
        match item.psig_desc with
        | Psig_value { pval_name; pval_type; _ } ->
            if returns_result pval_type then
              Hashtbl.replace t (module_name, pval_name.txt) ()
        | _ -> ())
      signature

  let mem (t : t) ~module_name ~value = Hashtbl.mem t (module_name, value)
end

let err_swallow ~path ~(index : Result_index.t) structure =
  if not (in_protocol_path path) then []
  else begin
    let self = Source.module_name path in
    let diags = ref [] in
    let flag loc msg = diags := Diag.of_loc ~rule:"ERR-SWALLOW" ~file:path loc msg :: !diags in
    iter_exprs structure (fun e ->
        match e.pexp_desc with
        | Pexp_ident _ when ident_path e |> Option.map normalize = Some [ "failwith" ] ->
            flag e.pexp_loc
              "bare failwith in a protocol path; use Errors.fatal for \
               invariant violations or return a typed error"
        | Pexp_apply (fn, [ (Asttypes.Nolabel, arg) ])
          when ident_path fn |> Option.map normalize = Some [ "ignore" ] -> (
            match arg.pexp_desc with
            | Pexp_apply (callee, _) -> (
                match Option.map normalize (ident_path callee) with
                | Some callee_path -> (
                    let hit =
                      match List.rev callee_path with
                      | value :: m :: _ ->
                          Result_index.mem index ~module_name:m ~value
                      | [ value ] ->
                          Result_index.mem index ~module_name:self ~value
                      | [] -> false
                    in
                    match hit with
                    | true ->
                        flag e.pexp_loc
                          (Printf.sprintf
                             "ignore of result-returning %s discards an \
                              error; handle it or mark the intent with \
                              Errors.swallow"
                             (String.concat "." callee_path))
                    | false -> ())
                | None -> ())
            | _ -> ())
        | _ -> ());
    List.rev !diags
  end

(* --- LOCK-ORDER ---------------------------------------------------------- *)

let lock_dirs = [ "lib/dp"; "lib/tmf"; "lib/dtx" ]

(* The declared acquisition order is volume → file → key: a FILE lock may
   be followed by generic/range locks which may be followed by record
   locks, never the other way around within one code path. Ranks follow
   that coarse-to-fine ladder. *)
let rank_name = function
  | 0 -> "FILE"
  | 1 -> "GENERIC/RANGE"
  | 2 -> "RECORD"
  | _ -> "?"

let resource_rank expr =
  match expr.pexp_desc with
  | Pexp_construct ({ txt; _ }, _) -> (
      match try List.rev (Longident.flatten txt) with _ -> [] with
      | "File" :: _ -> Some 0
      | "Generic" :: _ | "Range" :: _ -> Some 1
      | "Record" :: _ -> Some 2
      | _ -> None)
  | _ -> None

let is_acquire_callee expr =
  match Option.map List.rev (ident_path expr) with
  | Some ("acquire" :: _) | Some ("try_lock" :: _) -> Some ()
  | _ -> None

(* Collect acquisition sites per top-level binding (interprocedural
   ordering is out of scope; each exported operation acquires its locks
   within one top-level definition in this codebase). *)
let lock_order ~path structure =
  if not (List.exists (fun d -> under d path) lock_dirs) then []
  else begin
    let diags = ref [] in
    List.iter
      (fun item ->
        let sites = ref [] in
        let it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun it e ->
                (match e.pexp_desc with
                | Pexp_apply (fn, args) when is_acquire_callee fn <> None ->
                    let rank =
                      List.find_map (fun (_, a) -> resource_rank a) args
                    in
                    sites := (e.pexp_loc, rank, fn) :: !sites
                | _ -> ());
                Ast_iterator.default_iterator.expr it e);
          }
        in
        it.structure_item it item;
        let sites = List.rev !sites in
        let coarsest = ref (-1) in
        List.iter
          (fun (loc, rank, fn) ->
            match rank with
            | None ->
                let name =
                  match ident_path fn with
                  | Some p -> String.concat "." p
                  | None -> "<fn>"
                in
                diags :=
                  Diag.of_loc ~rule:"LOCK-ORDER" ~file:path loc
                    (Printf.sprintf
                       "cannot prove lock order: resource argument of %s is \
                        not a literal Lock resource constructor"
                       name)
                  :: !diags
            | Some r ->
                if r < !coarsest then
                  diags :=
                    Diag.of_loc ~rule:"LOCK-ORDER" ~file:path loc
                      (Printf.sprintf
                         "%s lock acquired after a %s lock; acquisitions \
                          must follow the volume→file→key order"
                         (rank_name r) (rank_name !coarsest))
                    :: !diags
                else coarsest := max !coarsest r)
          sites)
      structure;
    List.rev !diags
  end

(* --- PROTO-EXHAUST ------------------------------------------------------- *)

(* Three obligations tie the wire protocol together:
   1. no match over DP requests (in the message or dispatch module) hides
      behind a catch-all — adding a request must not silently no-op;
   2. every request constructor is dispatched by name in the DP;
   3. every request constructor is constructed somewhere FS-side, i.e. the
      protocol carries no dead or DP-only requests. *)

let request_constructors structure =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, decls) ->
          List.concat_map
            (fun d ->
              if String.equal d.ptype_name.txt "request" then
                match d.ptype_kind with
                | Ptype_variant ctors ->
                    List.map
                      (fun c -> (c.pcd_name.txt, c.pcd_name.loc))
                      ctors
                | _ -> []
              else [])
            decls
      | _ -> [])
    structure

let rec pattern_heads in_set pat =
  match pat.ppat_desc with
  | Ppat_construct ({ txt; _ }, arg) ->
      let head =
        match try List.rev (Longident.flatten txt) with _ -> [] with
        | name :: _ when in_set name -> [ name ]
        | _ -> []
      in
      head
      @ (match arg with
        | Some (_, p) -> pattern_heads in_set p
        | None -> [])
  | Ppat_or (a, b) -> pattern_heads in_set a @ pattern_heads in_set b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) ->
      pattern_heads in_set p
  | Ppat_tuple ps -> List.concat_map (pattern_heads in_set) ps
  | _ -> []

let is_catch_all pat =
  match pat.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias ({ ppat_desc = Ppat_any; _ }, _) -> true
  | _ -> false

(* Scan every case list in [structure] (match, function, try — the [cases]
   iterator hook sees them all). A case list "is over requests" when at
   least one of its patterns mentions a request constructor. *)
let scan_request_matches ~path ~in_set structure =
  let matched = Hashtbl.create 32 in
  let diags = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      cases =
        (fun it cs ->
          let heads =
            List.concat_map (fun c -> pattern_heads in_set c.pc_lhs) cs
          in
          if heads <> [] then begin
            List.iter (fun h -> Hashtbl.replace matched h ()) heads;
            List.iter
              (fun c ->
                if is_catch_all c.pc_lhs then
                  diags :=
                    Diag.of_loc ~rule:"PROTO-EXHAUST" ~file:path
                      c.pc_lhs.ppat_loc
                      "catch-all pattern in a match over DP requests; new \
                       request constructors must be handled explicitly"
                    :: !diags)
              cs
          end;
          Ast_iterator.default_iterator.cases it cs);
    }
  in
  it.structure it structure;
  (matched, List.rev !diags)

let record_constructed ~in_set built structure =
  iter_exprs structure (fun e ->
      match e.pexp_desc with
      | Pexp_construct ({ txt; _ }, _) -> (
          match try List.rev (Longident.flatten txt) with _ -> [] with
          | name :: _ when in_set name -> Hashtbl.replace built name ()
          | _ -> ())
      | _ -> ())

let proto_exhaust ~msg:(msg_path, msg_structure)
    ~dispatch:(dispatch_path, dispatch_structure) ~requesters =
  let ctors = request_constructors msg_structure in
  if ctors = [] then []
  else begin
    let in_set name = List.mem_assoc name ctors in
    let dispatched, dispatch_diags =
      scan_request_matches ~path:dispatch_path ~in_set dispatch_structure
    in
    let _, msg_diags =
      scan_request_matches ~path:msg_path ~in_set msg_structure
    in
    let requester_built = Hashtbl.create 32 in
    List.iter
      (fun (_, structure) -> record_constructed ~in_set requester_built structure)
      requesters;
    let missing_dispatch =
      List.filter_map
        (fun (name, loc) ->
          if Hashtbl.mem dispatched name then None
          else
            Some
              (Diag.of_loc ~rule:"PROTO-EXHAUST" ~file:msg_path loc
                 (Printf.sprintf
                    "request constructor %s is not dispatched in %s" name
                    dispatch_path)))
        ctors
    in
    let missing_requester =
      List.filter_map
        (fun (name, loc) ->
          if Hashtbl.mem requester_built name then None
          else
            Some
              (Diag.of_loc ~rule:"PROTO-EXHAUST" ~file:msg_path loc
                 (Printf.sprintf
                    "request constructor %s has no FS-side requester or \
                     continuation path"
                    name)))
        ctors
    in
    msg_diags @ dispatch_diags @ missing_dispatch @ missing_requester
  end

(* --- NOWAIT-LEAK ---------------------------------------------------------- *)

(* A [send_nowait] whose completion is never awaited silently discards the
   latency of a request whose effects already happened — the overlapped
   request becomes free, which corrupts every elapsed-time measurement.
   Full data-flow tracking is out of scope (like LOCK-ORDER, the rule is a
   conservative syntactic check): flag the shapes that provably drop the
   handle — [ignore (send_nowait ...)], a statement-position call, a
   wildcard binding, and a named binding unused in its scope. A handle
   stored in a record field or passed along is accepted; the structure
   holding it is then responsible for awaiting. *)

let is_send_nowait_app e =
  match e.pexp_desc with
  | Pexp_apply (callee, _) -> (
      match Option.map List.rev (ident_path callee) with
      | Some ("send_nowait" :: _) -> true
      | _ -> false)
  | _ -> false

(* does [name] occur as an identifier anywhere in [e]? (conservative:
   shadowing counts as a use) *)
let uses_var name e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it x ->
          (match x.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; _ } when String.equal n name ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it x);
    }
  in
  it.expr it e;
  !found

let nowait_leak ~path structure =
  let diags = ref [] in
  let flag loc msg =
    diags := Diag.of_loc ~rule:"NOWAIT-LEAK" ~file:path loc msg :: !diags
  in
  iter_exprs structure (fun e ->
      match e.pexp_desc with
      | Pexp_apply (fn, [ (Asttypes.Nolabel, arg) ])
        when ident_path fn |> Option.map normalize = Some [ "ignore" ]
             && is_send_nowait_app arg ->
          flag e.pexp_loc
            "completion of send_nowait discarded with ignore; every \
             overlapped request must be awaited"
      | Pexp_sequence (e1, _) when is_send_nowait_app e1 ->
          flag e1.pexp_loc
            "send_nowait in statement position discards its completion; \
             bind the handle and await it"
      | Pexp_let (_, vbs, body) ->
          List.iter
            (fun vb ->
              if is_send_nowait_app vb.pvb_expr then
                match vb.pvb_pat.ppat_desc with
                | Ppat_any ->
                    flag vb.pvb_pat.ppat_loc
                      "completion of send_nowait bound to _ is never \
                       awaited"
                | Ppat_var { txt = name; _ } ->
                    if not (uses_var name body) then
                      flag vb.pvb_pat.ppat_loc
                        (Printf.sprintf
                           "completion %s of send_nowait is never used; \
                            await it on every path"
                           name)
                | _ -> ())
            vbs
      | _ -> ());
  List.rev !diags

(* --- SPAN-LEAK ------------------------------------------------------------ *)

(* A [begin_span] handle that is dropped can never reach [finish]: the span
   stays open forever, never collects its counter delta, and — when pushed —
   becomes the inferred parent of every span begun after it, corrupting the
   trace's nesting. Same conservative syntactic shapes as NOWAIT-LEAK:
   [ignore (begin_span ...)], a statement-position call, a wildcard binding,
   and a named binding unused in its scope. A handle stored in a record
   field or otherwise passed along is accepted; the structure holding it is
   then responsible for finishing it. *)

let is_begin_span_app e =
  match e.pexp_desc with
  | Pexp_apply (callee, _) -> (
      match Option.map List.rev (ident_path callee) with
      | Some ("begin_span" :: _) -> true
      | _ -> false)
  | _ -> false

let span_leak ~path structure =
  let diags = ref [] in
  let flag loc msg =
    diags := Diag.of_loc ~rule:"SPAN-LEAK" ~file:path loc msg :: !diags
  in
  iter_exprs structure (fun e ->
      match e.pexp_desc with
      | Pexp_apply (fn, [ (Asttypes.Nolabel, arg) ])
        when ident_path fn |> Option.map normalize = Some [ "ignore" ]
             && is_begin_span_app arg ->
          flag e.pexp_loc
            "begin_span handle discarded with ignore; every span must reach \
             finish"
      | Pexp_sequence (e1, _) when is_begin_span_app e1 ->
          flag e1.pexp_loc
            "begin_span in statement position drops its handle; bind it and \
             finish it"
      | Pexp_let (_, vbs, body) ->
          List.iter
            (fun vb ->
              if is_begin_span_app vb.pvb_expr then
                match vb.pvb_pat.ppat_desc with
                | Ppat_any ->
                    flag vb.pvb_pat.ppat_loc
                      "begin_span handle bound to _ can never be finished"
                | Ppat_var { txt = name; _ } ->
                    if not (uses_var name body) then
                      flag vb.pvb_pat.ppat_loc
                        (Printf.sprintf
                           "span handle %s is never finished; pass it to \
                            finish on every path"
                           name)
                | _ -> ())
            vbs
      | _ -> ());
  List.rev !diags

(* --- the per-file bundle -------------------------------------------------- *)

let per_file ~path ~index structure =
  det_random ~path structure
  @ sim_clock ~path structure
  @ det_hashiter ~path structure
  @ err_swallow ~path ~index structure
  @ lock_order ~path structure
  @ nowait_leak ~path structure
  @ span_leak ~path structure

(* Orchestration: discover sources, parse, build the result-returning
   function index from interfaces, build the whole-repo call graph and
   effect summaries, run every enabled rule, apply the allowlist.

   The engine is itself deterministic — file lists and diagnostics are
   sorted — so CI output is stable and diffable. *)

type report = {
  diags : Diag.t list;  (** unsuppressed findings, sorted *)
  suppressed : int;  (** findings silenced by the allowlist *)
  stale_allows : Allow.entry list;  (** allow entries that matched nothing *)
  files_scanned : int;
}

(* the rule registry: every rule the engine can run, with a one-line doc.
   [--list-rules] prints this table; [--rule] validates against it.
   LINT-PARSE is not filterable — an unparseable file fails every run. *)
let registry =
  [
    ("DET-RANDOM", "no nondeterministic randomness outside lib/sim");
    ("SIM-CLOCK", "no wall-clock reads; simulated time only");
    ("MON-PURE", "monitor code never charges, schedules, sends or does I/O");
    ("DET-HASHITER", "no order-dependent hash-table iteration");
    ("ERR-SWALLOW", "result-returning calls must not be discarded");
    ("LOCK-ORDER", "lock acquisition follows the declared order");
    ("PROTO-EXHAUST", "every request constructor is dispatched and sent");
    ("RES-LEAK", "scan/span/completion/deferral handles reach their close");
    ("CKPT-COMPLETE", "dispatch-path mutations reach a checkpoint emit");
    ("CLOCK-CHARGE", "dispatch-path I/O and parking charge the sim clock");
    ("PARK-SAFE", "wait-queue parking matches the nothing-applied whitelist");
  ]

let rule_names = List.map fst registry
let known_rule name = List.mem_assoc name registry

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.equal (String.sub s (l - ls) ls) suffix

(* exported value names of every lib/fs interface: the FS entry points that
   seed CLOCK-CHARGE reachability alongside the DP handlers *)
let fs_exported_keys ~mli_sigs =
  List.concat_map
    (fun (path, signature) ->
      if Rules.under "lib/fs" path then
        let unit_name = Source.module_name path in
        List.filter_map
          (fun item ->
            match item.Parsetree.psig_desc with
            | Parsetree.Psig_value vd ->
                Some (unit_name ^ "." ^ vd.Parsetree.pval_name.txt)
            | _ -> None)
          signature
      else [])
    mli_sigs

let clock_roots ~(ctx : Rules.ctx) ~mli_sigs =
  let dp_handlers =
    List.filter_map
      (fun (n : Callgraph.node) ->
        if Rules.under "lib/dp" n.n_file && String.equal n.n_name "handler"
        then Some n.n_key
        else None)
      (Callgraph.nodes ctx.graph)
  in
  let fs_exports =
    List.filter
      (fun key -> Callgraph.find ctx.graph key <> None)
      (fs_exported_keys ~mli_sigs)
  in
  List.sort_uniq String.compare (dp_handlers @ fs_exports)

let run ?(allow_file = None) ?(rules = None) ~roots () =
  let enabled name =
    match rules with None -> true | Some rs -> List.mem name rs
  in
  let ml = Source.ml_files roots in
  let parsed, parse_diags =
    List.fold_left
      (fun (ok, bad) path ->
        match Source.parse_impl path with
        | Ok structure -> ((path, structure) :: ok, bad)
        | Error d -> (ok, d :: bad))
      ([], []) ml
  in
  let parsed = List.rev parsed in
  let index = Rules.Result_index.create () in
  let mli_sigs =
    List.filter_map
      (fun path ->
        match Source.parse_intf path with
        | Ok signature -> Some (path, signature)
        | Error _ -> None)
      (Source.mli_files roots)
  in
  List.iter
    (fun (path, signature) ->
      Rules.Result_index.add_signature index
        ~module_name:(Source.module_name path) signature)
    mli_sigs;
  let ctx = Rules.build_ctx parsed in
  let file_diags =
    List.concat_map
      (fun (path, structure) ->
        Rules.per_file ~path ~index ~ctx ~enabled structure)
      parsed
  in
  let find suffix = List.find_opt (fun (p, _) -> ends_with ~suffix p) parsed in
  let proto_diags =
    if not (enabled "PROTO-EXHAUST") then []
    else
      match (find "dp/dp_msg.ml", find "dp/dp.ml") with
      | Some msg, Some dispatch ->
          let requesters =
            List.filter (fun (p, _) -> not (Rules.under "lib/dp" p)) parsed
          in
          Rules.proto_exhaust ~msg ~dispatch ~requesters
      | _ -> []
  in
  let graph_diags =
    (if enabled "CKPT-COMPLETE" then Rules.ckpt_complete ~ctx () else [])
    @ (if enabled "CLOCK-CHARGE" then
         Rules.clock_charge ~ctx ~roots:(clock_roots ~ctx ~mli_sigs) ()
       else [])
    @ if enabled "PARK-SAFE" then Rules.park_safe ~ctx () else []
  in
  let all = parse_diags @ file_diags @ proto_diags @ graph_diags in
  let entries =
    match allow_file with
    | None -> []
    | Some path -> (
        match Allow.load path with
        | Ok entries -> entries
        | Error msg ->
            (* a broken allowlist must not silently allow everything *)
            failwith msg)
  in
  let kept, suppressed = Allow.apply entries all in
  (* an entry for a rule this run did not execute is not stale evidence *)
  let stale =
    List.filter (fun e -> enabled e.Allow.a_rule) (Allow.stale entries)
  in
  {
    diags = List.sort_uniq Diag.compare kept;
    suppressed;
    stale_allows = stale;
    files_scanned = List.length ml;
  }

(* Orchestration: discover sources, parse, build the result-returning
   function index from interfaces, run every rule, apply the allowlist.

   The engine is itself deterministic — file lists and diagnostics are
   sorted — so CI output is stable and diffable. *)

type report = {
  diags : Diag.t list;  (** unsuppressed findings, sorted *)
  suppressed : int;  (** findings silenced by the allowlist *)
  stale_allows : Allow.entry list;  (** allow entries that matched nothing *)
  files_scanned : int;
}

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.equal (String.sub s (l - ls) ls) suffix

let run ?(allow_file = None) ~roots () =
  let ml = Source.ml_files roots in
  let parsed, parse_diags =
    List.fold_left
      (fun (ok, bad) path ->
        match Source.parse_impl path with
        | Ok structure -> ((path, structure) :: ok, bad)
        | Error d -> (ok, d :: bad))
      ([], []) ml
  in
  let parsed = List.rev parsed in
  let index = Rules.Result_index.create () in
  List.iter
    (fun path ->
      match Source.parse_intf path with
      | Ok signature ->
          Rules.Result_index.add_signature index
            ~module_name:(Source.module_name path) signature
      | Error _ -> ())
    (Source.mli_files roots);
  let file_diags =
    List.concat_map
      (fun (path, structure) -> Rules.per_file ~path ~index structure)
      parsed
  in
  let find suffix = List.find_opt (fun (p, _) -> ends_with ~suffix p) parsed in
  let proto_diags =
    match (find "dp/dp_msg.ml", find "dp/dp.ml") with
    | Some msg, Some dispatch ->
        let requesters =
          List.filter (fun (p, _) -> not (Rules.under "lib/dp" p)) parsed
        in
        Rules.proto_exhaust ~msg ~dispatch ~requesters
    | _ -> []
  in
  let all = parse_diags @ file_diags @ proto_diags in
  let entries =
    match allow_file with
    | None -> []
    | Some path -> (
        match Allow.load path with
        | Ok entries -> entries
        | Error msg ->
            (* a broken allowlist must not silently allow everything *)
            failwith msg)
  in
  let kept, suppressed = Allow.apply entries all in
  {
    diags = List.sort_uniq Diag.compare kept;
    suppressed;
    stale_allows = Allow.stale entries;
    files_scanned = List.length ml;
  }

(* A single lint finding. [file] is the path as the engine discovered it
   (relative to the lint invocation's cwd), which is what both the printed
   diagnostic and allowlist suffix-matching use. *)

type t = { rule : string; file : string; line : int; col : int; msg : string }

let v ~rule ~file ~line ~col msg = { rule; file; line; col; msg }

let of_loc ~rule ~file (loc : Location.t) msg =
  let p = loc.Location.loc_start in
  {
    rule;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    msg;
  }

let to_string d =
  Printf.sprintf "%s:%d:%d [%s] %s" d.file d.line d.col d.rule d.msg

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

(* Effect summaries: which invariant-relevant effects a function *may*
   perform, directly or through anything it calls.

   The lattice is a finite powerset (a bit set), so the interprocedural
   propagation below is a textbook monotone fixed point over the call
   graph: start every node at its locally recognized effects, union in
   callee summaries until nothing changes. Recursion and mutual recursion
   converge for free; unknown callees (Stdlib, closures, dynamic calls
   through refs or record fields) contribute nothing, which keeps the
   analysis a may-over-approximation on the resolved part of the graph —
   exactly what the rules need: CKPT-COMPLETE and CLOCK-CHARGE demand an
   effect is *present* in a summary, so a lost edge can only produce a
   finding, never hide one, and RES-LEAK only trusts a summary to prove a
   callee *cannot* close a handle when the callee body was actually
   analyzed.

   Local effects come from a syntactic primitive table: module-qualified
   calls ([Sim.tick], [Disk.read], [Msg.checkpoint], [Btree.insert]...),
   constructor builds ([Ck_*] checkpoint items), and mutations of the DP's
   replica-visible control state ([Hashtbl.replace t.scbs ...],
   [t.waiters <- ...]). The defining modules themselves are seeded by node
   key ([Sim.tick] *is* Charges_clock even though its body just bumps a
   counter field), so effects originate correctly whether a file calls the
   primitive or is the primitive. *)

open Parsetree

type effect_ =
  | Acquires_lock
  | Parks_waiter
  | Opens_scan
  | Closes_scan
  | Opens_span
  | Finishes_span
  | Creates_deferral
  | Resolves_deferral
  | Opens_completion
  | Awaits_completion
  | Emits_ckpt
  | Mutates_heap
  | Mutates_control
  | Charges_clock
  | Performs_io
  | Mutates_stats

let all_effects =
  [
    Acquires_lock;
    Parks_waiter;
    Opens_scan;
    Closes_scan;
    Opens_span;
    Finishes_span;
    Creates_deferral;
    Resolves_deferral;
    Opens_completion;
    Awaits_completion;
    Emits_ckpt;
    Mutates_heap;
    Mutates_control;
    Charges_clock;
    Performs_io;
    Mutates_stats;
  ]

let bit = function
  | Acquires_lock -> 1
  | Parks_waiter -> 2
  | Opens_scan -> 4
  | Closes_scan -> 8
  | Opens_span -> 16
  | Finishes_span -> 32
  | Creates_deferral -> 64
  | Resolves_deferral -> 128
  | Opens_completion -> 256
  | Awaits_completion -> 512
  | Emits_ckpt -> 1024
  | Mutates_heap -> 2048
  | Mutates_control -> 4096
  | Charges_clock -> 8192
  | Performs_io -> 16384
  | Mutates_stats -> 32768

let name = function
  | Acquires_lock -> "Acquires_lock"
  | Parks_waiter -> "Parks_waiter"
  | Opens_scan -> "Opens_scan"
  | Closes_scan -> "Closes_scan"
  | Opens_span -> "Opens_span"
  | Finishes_span -> "Finishes_span"
  | Creates_deferral -> "Creates_deferral"
  | Resolves_deferral -> "Resolves_deferral"
  | Opens_completion -> "Opens_completion"
  | Awaits_completion -> "Awaits_completion"
  | Emits_ckpt -> "Emits_ckpt"
  | Mutates_heap -> "Mutates_heap"
  | Mutates_control -> "Mutates_control"
  | Charges_clock -> "Charges_clock"
  | Performs_io -> "Performs_io"
  | Mutates_stats -> "Mutates_stats"

type set = int

let empty : set = 0
let add e s = s lor bit e
let mem e s = s land bit e <> 0
let union a b = a lor b
let of_list es = List.fold_left (fun s e -> add e s) empty es
let names s = List.filter_map (fun e -> if mem e s then Some (name e) else None) all_effects

(* --- primitive recognition ------------------------------------------------ *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.equal (String.sub s (l - ls) ls) suffix

(* effects of one call/reference by name. [m] is the last module component
   of the path, if any. Most primitives require their module qualifier —
   [acquire] alone proves nothing, [Lock.acquire] does. A few names are
   distinctive enough (and called unqualified inside their own layer) to
   match bare. *)
let call_effects ~m ~fname =
  let qualified wanted = match m with Some q -> String.equal q wanted | None -> false in
  match fname with
  | "tick" | "charge" | "wait_until" when qualified "Sim" -> of_list [ Charges_clock ]
  (* synchronous I/O only: [read_bulk_async]/[write_bulk_async] return their
     completion time to the caller, who charges it at consumption (the cache
     waits out [valid_at]/[durable_at]) — submission is deliberately free.
     The same split holds for the handle face of the multi-queue device:
     [submit_read]/[submit_write] cost nothing, the transfer is observed
     (and the clock charged) at [Disk.complete], so that is where
     [Performs_io] lives *)
  | "read" | "write" | "read_bulk" | "write_bulk" when qualified "Disk" ->
      of_list [ Performs_io ]
  | "complete" when qualified "Disk" ->
      of_list [ Performs_io; Awaits_completion ]
  | "defer" when qualified "Msg" -> of_list [ Creates_deferral ]
  | "resolve" when qualified "Msg" -> of_list [ Resolves_deferral ]
  | "await" | "await_any" when qualified "Msg" -> of_list [ Awaits_completion ]
  | "checkpoint" when qualified "Msg" -> of_list [ Emits_ckpt ]
  | "begin_span" -> of_list [ Opens_span ]
  | "finish" when qualified "Trace" -> of_list [ Finishes_span ]
  | "acquire" | "try_lock" when qualified "Lock" -> of_list [ Acquires_lock ]
  | "insert" | "delete" | "update" | "upsert" when qualified "Btree" ->
      of_list [ Mutates_heap ]
  | "write" | "rewrite" | "delete" | "truncate_to" when qualified "Relfile" ->
      of_list [ Mutates_heap ]
  | "append" | "truncate_to" when qualified "Entryfile" -> of_list [ Mutates_heap ]
  | "send_nowait" -> of_list [ Opens_completion ]
  | "open_scan" -> of_list [ Opens_scan ]
  | "alloc_scb" -> of_list [ Opens_scan ]
  | "close_scan" | "seq_close" -> of_list [ Closes_scan ]
  | _ -> empty

(* the modules whose own definitions *are* the primitives: seed their node
   summaries so the effect exists at its origin, not only at call sites *)
let intrinsic_of_key key =
  match key with
  | "Sim.tick" | "Sim.charge" | "Sim.wait_until" -> of_list [ Charges_clock ]
  | "Disk.read" | "Disk.write" | "Disk.read_bulk" | "Disk.write_bulk" ->
      of_list [ Performs_io ]
  | "Disk.complete" -> of_list [ Performs_io; Awaits_completion ]
  | "Msg.defer" -> of_list [ Creates_deferral ]
  | "Msg.resolve" -> of_list [ Resolves_deferral ]
  | "Msg.await" | "Msg.await_any" -> of_list [ Awaits_completion ]
  | "Msg.checkpoint" -> of_list [ Emits_ckpt ]
  | "Trace.begin_span" -> of_list [ Opens_span ]
  | "Trace.finish" -> of_list [ Finishes_span ]
  | "Lock.acquire" | "Lock.try_lock" -> of_list [ Acquires_lock ]
  | "Msg.send_nowait" -> of_list [ Opens_completion ]
  | "Fs.open_scan" -> of_list [ Opens_scan ]
  | "Fs.close_scan" | "Fs.seq_close" -> of_list [ Closes_scan ]
  | _ -> empty

let path_split path =
  match List.rev path with
  | fname :: rev_mods ->
      let m = match rev_mods with m :: _ -> Some m | [] -> None in
      Some (m, fname)
  | [] -> None

(* local (intra-body) effects of one expression tree *)
let local_of_expr expr =
  let acc = ref empty in
  let hit s = acc := union !acc s in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match path_split (try Longident.flatten txt with _ -> []) with
              | Some (m, fname) -> hit (call_effects ~m ~fname)
              | None -> ())
          | Pexp_construct ({ txt; _ }, _) -> (
              match try List.rev (Longident.flatten txt) with _ -> [] with
              | ctor :: _ when starts_with ~prefix:"Ck_" ctor ->
                  hit (of_list [ Emits_ckpt ])
              | _ -> ())
          | Pexp_setfield (_, { txt; _ }, _) -> (
              match try Longident.flatten txt with _ -> [] with
              | [] -> ()
              | comps -> (
                  (match List.rev comps with
                  | field :: _
                    when String.equal field "waiters"
                         || String.equal field "rp_parked" ->
                      hit (of_list [ Parks_waiter; Mutates_control ])
                  | _ -> ());
                  if List.exists (String.equal "Stats") comps then
                    hit (of_list [ Mutates_stats ])))
          | Pexp_apply (callee, args) -> (
              (* replica-control hash tables: Hashtbl.replace/remove/reset
                 on an ...scbs field is a checkpoint-visible mutation *)
              match path_split (match callee.pexp_desc with
                | Pexp_ident { txt; _ } -> (
                    try Longident.flatten txt with _ -> [])
                | _ -> []) with
              | Some (Some "Hashtbl", ("replace" | "remove" | "reset")) ->
                  let on_scbs (_, a) =
                    match a.pexp_desc with
                    | Pexp_field (_, { txt; _ }) -> (
                        match try List.rev (Longident.flatten txt) with _ -> [] with
                        | field :: _ -> ends_with ~suffix:"scbs" field
                        | [] -> false)
                    | _ -> false
                  in
                  if List.exists on_scbs args then
                    hit (of_list [ Mutates_control ])
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it expr;
  !acc

let local_of_node (node : Callgraph.node) =
  union (local_of_expr node.n_body) (intrinsic_of_key node.n_key)

(* --- the fixed point ------------------------------------------------------ *)

type summaries = (string, set) Hashtbl.t

let summaries graph : summaries =
  let tbl : summaries = Hashtbl.create 512 in
  let nodes = Callgraph.nodes graph in
  List.iter
    (fun (n : Callgraph.node) -> Hashtbl.replace tbl n.n_key (local_of_node n))
    nodes;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (n : Callgraph.node) ->
        let cur = Option.value ~default:empty (Hashtbl.find_opt tbl n.n_key) in
        let next =
          List.fold_left
            (fun s callee ->
              union s (Option.value ~default:empty (Hashtbl.find_opt tbl callee)))
            cur n.n_callees
        in
        if next <> cur then begin
          Hashtbl.replace tbl n.n_key next;
          changed := true
        end)
      nodes
  done;
  tbl

let summary (tbl : summaries) key =
  Option.value ~default:empty (Hashtbl.find_opt tbl key)

(* effects of an arbitrary expression *in context*: local primitives plus
   the summaries of every resolvable reference — used for per-arm analysis
   of the DP dispatch (PARK-SAFE) where the unit of interest is smaller
   than a whole binding *)
let of_expr graph (tbl : summaries) ~unit_name expr =
  let local = local_of_expr expr in
  List.fold_left
    (fun s path ->
      match Callgraph.resolve graph ~unit_name path with
      | Some key -> union s (summary tbl key)
      | None -> s)
    local
    (Callgraph.reference_paths expr)

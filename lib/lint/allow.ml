(* The audited-exception list: lint/allow.sexp.

   Each entry suppresses exactly one rule at one site and must carry a
   note explaining why the invariant still holds:

     ((rule DET-HASHITER) (file lib/lock/lock.ml) (line 85)
      (note "commutative accumulation; every escaping list is sorted"))

   [line] is optional; without it the entry covers the whole file for that
   rule (use sparingly). Entries that match no finding are reported as
   stale and fail the run, so the list cannot rot silently. *)

type sexp = Atom of string | List of sexp list

exception Parse_error of string

(* --- a minimal s-expression reader ------------------------------------- *)

let parse_sexps src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some ';' ->
        while !pos < n && src.[!pos] <> '\n' do
          advance ()
        done;
        skip_ws ()
    | _ -> ()
  in
  let quoted_atom () =
    advance ();
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Parse_error "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some c -> Buffer.add_char buf c
          | None -> raise (Parse_error "unterminated escape"));
          advance ();
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let bare_atom () =
    let start = !pos in
    let stop = function
      | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> true
      | _ -> false
    in
    while !pos < n && not (stop src.[!pos]) do
      advance ()
    done;
    Atom (String.sub src start (!pos - start))
  in
  let rec sexp () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
        advance ();
        let rec items acc =
          skip_ws ();
          match peek () with
          | Some ')' ->
              advance ();
              List (List.rev acc)
          | None -> raise (Parse_error "unterminated list")
          | _ -> items (sexp () :: acc)
        in
        items []
    | Some ')' -> raise (Parse_error "unexpected ')'")
    | Some '"' -> quoted_atom ()
    | Some _ -> bare_atom ()
  in
  let rec top acc =
    skip_ws ();
    if !pos >= n then List.rev acc else top (sexp () :: acc)
  in
  top []

(* --- entries ------------------------------------------------------------ *)

type entry = {
  a_rule : string;
  a_file : string;
  a_line : int option;
  a_note : string;
  mutable a_used : bool;
}

let describe e =
  Printf.sprintf "(rule %s) (file %s)%s" e.a_rule e.a_file
    (match e.a_line with
    | Some l -> Printf.sprintf " (line %d)" l
    | None -> "")

let entry_of_sexp s =
  let field name fields =
    List.find_map
      (function
        | List [ Atom k; Atom v ] when String.equal k name -> Some v
        | _ -> None)
      fields
  in
  match s with
  | List fields ->
      let required name =
        match field name fields with
        | Some v -> v
        | None -> raise (Parse_error ("allow entry missing (" ^ name ^ " ...)"))
      in
      {
        a_rule = required "rule";
        a_file = required "file";
        a_line = Option.map int_of_string (field "line" fields);
        a_note = Option.value ~default:"" (field "note" fields);
        a_used = false;
      }
  | Atom a -> raise (Parse_error ("expected an allow entry, got atom " ^ a))

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  try Ok (List.map entry_of_sexp (parse_sexps src)) with
  | Parse_error msg -> Error (path ^ ": " ^ msg)
  | Failure msg -> Error (path ^ ": " ^ msg)

(* Path suffix match so entries written repo-relative keep working when the
   lint is invoked with absolute roots. *)
let file_matches ~entry_file ~diag_file =
  String.equal entry_file diag_file
  ||
  let le = String.length entry_file and ld = String.length diag_file in
  ld > le
  && String.equal (String.sub diag_file (ld - le) le) entry_file
  && diag_file.[ld - le - 1] = '/'

let matches e (d : Diag.t) =
  String.equal e.a_rule d.Diag.rule
  && file_matches ~entry_file:e.a_file ~diag_file:d.Diag.file
  && match e.a_line with None -> true | Some l -> l = d.Diag.line

(* Partition [diags] into (unsuppressed, suppressed_count), marking used
   entries so the caller can report stale ones. *)
let apply entries diags =
  let suppressed = ref 0 in
  let kept =
    List.filter
      (fun d ->
        match List.find_opt (fun e -> matches e d) entries with
        | Some e ->
            e.a_used <- true;
            incr suppressed;
            false
        | None -> true)
      diags
  in
  (kept, !suppressed)

let stale entries = List.filter (fun e -> not e.a_used) entries

(* File discovery and parsing.

   Discovery is deterministic: directories are walked recursively and every
   result list is sorted, so diagnostics come out in a stable order no
   matter the filesystem. Parsing goes through compiler-libs [Parse], the
   same front end the build uses. *)

let is_dir p = try Sys.is_directory p with Sys_error _ -> false

let skip_dir name =
  String.length name > 0 && (name.[0] = '.' || name.[0] = '_')

let rec walk acc path =
  if is_dir path then
    Array.fold_left
      (fun acc name ->
        if skip_dir name then acc else walk acc (Filename.concat path name))
      acc (Sys.readdir path)
  else path :: acc

let files_with_ext ext roots =
  let all = List.fold_left walk [] roots in
  List.sort String.compare
    (List.filter (fun p -> Filename.check_suffix p ext) all)

let ml_files roots = files_with_ext ".ml" roots
let mli_files roots = files_with_ext ".mli" roots

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let lexbuf_for ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  lexbuf

(* [module_name "lib/tmf/tmf.ml"] = "Tmf": the module a compilation unit
   defines, used to resolve unqualified calls against its own .mli. *)
let module_name path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let syntax_error_diag ~path exn =
  let of_location loc msg = Diag.of_loc ~rule:"LINT-PARSE" ~file:path loc msg in
  match exn with
  | Syntaxerr.Error err ->
      Some (of_location (Syntaxerr.location_of_error err) "syntax error")
  | Lexer.Error (_, loc) -> Some (of_location loc "lexer error")
  | _ -> None

let parse_impl path =
  let src = read_file path in
  match Parse.implementation (lexbuf_for ~path src) with
  | structure -> Ok structure
  | exception exn -> (
      match syntax_error_diag ~path exn with
      | Some d -> Error d
      | None ->
          Error
            (Diag.v ~rule:"LINT-PARSE" ~file:path ~line:1 ~col:0
               (Printexc.to_string exn)))

let parse_intf path =
  let src = read_file path in
  match Parse.interface (lexbuf_for ~path src) with
  | signature -> Ok signature
  | exception exn -> (
      match syntax_error_diag ~path exn with
      | Some d -> Error d
      | None ->
          Error
            (Diag.v ~rule:"LINT-PARSE" ~file:path ~line:1 ~col:0
               (Printexc.to_string exn)))

(* For test fixtures: parse an inline snippet under a pretend path. *)
let parse_string ~path src = Parse.implementation (lexbuf_for ~path src)

let parse_intf_string ~path src = Parse.interface (lexbuf_for ~path src)

(* A whole-repo call graph over compiler-libs parse trees.

   Nodes are top-level value bindings (including bindings inside nested
   [module S = struct ... end] blocks), keyed by a module-qualified name:
   ["Dp.request"], ["Lock.Waitgraph.clear_waiting"]. Edges are *references*,
   not just application heads: any [Pexp_ident] in a binding's body that
   resolves to another node adds an edge, so a function passed as a value
   (the higher-order case — [Sim.schedule t (fun () -> deny_waiter ...)])
   still contributes its effects to the enclosing binding. That makes the
   graph a may-call over-approximation, which is exactly what the
   may-effect summaries in [Effects] need.

   Resolution mirrors how the repo actually names things:
   - a compilation unit is its capitalized basename ([Source.module_name]);
   - files alias wrapped-library modules ([module Msg = Nsql_msg.Msg],
     [module N = Nsql_core.Nonstop_sql]) — a per-file alias table maps the
     alias to the *last* component of its target, which is the unit name
     under dune's wrapping;
   - [open M] makes M's bindings visible unqualified;
   - an unqualified name resolves to the innermost enclosing module chain
     first (nested module, then the unit itself), then to opened units — so
     a unit's own [f] shadows any opened unit's [f].

   A qualified path [A.B.f] is tried as [alias(B).f] (unit access, possibly
   through an alias) and then [alias(A).B.f] (a nested module of another
   unit, e.g. [Lock.Waitgraph.find_cycle]). Anything that resolves to no
   node — Stdlib, closures, record fields — is an unknown callee and simply
   contributes no edge. *)

open Parsetree

type node = {
  n_key : string;  (** "Unit.f" or "Unit.Sub.f" *)
  n_unit : string;
  n_name : string;  (** "f" or "Sub.f" *)
  n_file : string;
  n_loc : Location.t;
  n_body : expression;
  n_prefixes : string list;
      (** qualifiers to try for unqualified refs, innermost first:
          ["Unit.Sub."; "Unit."] *)
  mutable n_callees : string list;  (** resolved node keys, sorted uniq *)
}

type file_ctx = {
  c_unit : string;
  c_aliases : (string, string) Hashtbl.t;  (** alias -> target unit name *)
  mutable c_opens : string list;  (** opened unit names, latest first *)
}

type t = {
  g_nodes : (string, node) Hashtbl.t;
  g_ctx : (string, file_ctx) Hashtbl.t;  (** unit name -> its file context *)
  mutable g_order : string list;  (** node keys, sorted; DET-HASHITER-clean *)
}

let last_component lid =
  match try List.rev (Longident.flatten lid) with _ -> [] with
  | last :: _ -> Some last
  | [] -> None

(* every variable a (possibly nested) binding pattern introduces *)
let rec pattern_vars pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> [ (txt, pat.ppat_loc) ]
  | Ppat_alias (p, { txt; _ }) -> (txt, pat.ppat_loc) :: pattern_vars p
  | Ppat_constraint (p, _) | Ppat_open (_, p) | Ppat_lazy p ->
      pattern_vars p
  | Ppat_tuple ps -> List.concat_map pattern_vars ps
  | _ -> []

let register t ~file ~unit_name ~prefixes structure =
  let rec items prefix prefixes structure =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                List.iter
                  (fun (name, loc) ->
                    let n_name = prefix ^ name in
                    let key = unit_name ^ "." ^ n_name in
                    if not (Hashtbl.mem t.g_nodes key) then
                      t.g_order <- key :: t.g_order;
                    Hashtbl.replace t.g_nodes key
                      {
                        n_key = key;
                        n_unit = unit_name;
                        n_name;
                        n_file = file;
                        n_loc = loc;
                        n_body = vb.pvb_expr;
                        n_prefixes = prefixes;
                        n_callees = [];
                      })
                  (pattern_vars vb.pvb_pat))
              vbs
        | Pstr_module { pmb_name = { txt = Some sub; _ }; pmb_expr; _ } -> (
            match pmb_expr.pmod_desc with
            | Pmod_structure str ->
                items (prefix ^ sub ^ ".")
                  ((unit_name ^ "." ^ prefix ^ sub ^ ".") :: prefixes)
                  str
            | _ -> ())
        | Pstr_recmodule mbs ->
            List.iter
              (fun mb ->
                match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
                | Some sub, Pmod_structure str ->
                    items (prefix ^ sub ^ ".")
                      ((unit_name ^ "." ^ prefix ^ sub ^ ".") :: prefixes)
                      str
                | _ -> ())
              mbs
        | _ -> ())
      structure
  in
  items "" prefixes structure

let context_of t ~unit_name structure =
  let ctx =
    { c_unit = unit_name; c_aliases = Hashtbl.create 8; c_opens = [] }
  in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_module { pmb_name = { txt = Some alias; _ }; pmb_expr; _ } -> (
          match pmb_expr.pmod_desc with
          | Pmod_ident { txt; _ } -> (
              match last_component txt with
              | Some target -> Hashtbl.replace ctx.c_aliases alias target
              | None -> ())
          | _ -> ())
      | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }
        -> (
          match last_component txt with
          | Some target ->
              let target =
                Option.value ~default:target
                  (Hashtbl.find_opt ctx.c_aliases target)
              in
              ctx.c_opens <- target :: ctx.c_opens
          | None -> ())
      | _ -> ())
    structure;
  Hashtbl.replace t.g_ctx unit_name ctx;
  ctx

let alias_in ctx m = Option.value ~default:m (Hashtbl.find_opt ctx.c_aliases m)

(* resolve a reference path (["Msg"; "checkpoint"] or ["go"]) occurring in
   [ctx]'s file, inside a binding whose enclosing-module prefixes are
   [prefixes], to a node key *)
let resolve_with t ctx ~prefixes path =
  match List.rev path with
  | [] -> None
  | name :: rev_mods -> (
      let mods = List.rev rev_mods in
      let candidates =
        match mods with
        | [] ->
            List.map (fun p -> p ^ name) prefixes
            @ [ ctx.c_unit ^ "." ^ name ]
            @ List.map (fun o -> o ^ "." ^ name) ctx.c_opens
        | mods -> (
            let rec last_two = function
              | [ a; b ] -> (Some a, b)
              | [ b ] -> (None, b)
              | _ :: rest -> last_two rest
              | [] -> assert false
            in
            let before, last = last_two mods in
            let unit_access = alias_in ctx last ^ "." ^ name in
            (* a nested module of this very unit: [Waitgraph.find_cycle]
               written inside lock.ml means Lock.Waitgraph.find_cycle *)
            let own_nested =
              ctx.c_unit ^ "." ^ String.concat "." mods ^ "." ^ name
            in
            match before with
            | None -> [ unit_access; own_nested ]
            | Some m ->
                [
                  unit_access;
                  alias_in ctx m ^ "." ^ last ^ "." ^ name;
                  own_nested;
                ])
      in
      match
        List.find_opt (fun key -> Hashtbl.mem t.g_nodes key) candidates
      with
      | Some key -> Some key
      | None -> None)

let resolve t ~unit_name path =
  match Hashtbl.find_opt t.g_ctx unit_name with
  | None -> None
  | Some ctx -> resolve_with t ctx ~prefixes:[] path

(* all identifier reference paths in an expression *)
let reference_paths expr =
  let refs = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match try Longident.flatten txt with _ -> [] with
              | [] -> ()
              | p -> refs := p :: !refs)
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it expr;
  List.rev !refs

let build parsed =
  let t =
    { g_nodes = Hashtbl.create 512; g_ctx = Hashtbl.create 64; g_order = [] }
  in
  (* pass 1: nodes and per-file contexts *)
  List.iter
    (fun (path, structure) ->
      let unit_name = Source.module_name path in
      let _ctx = context_of t ~unit_name structure in
      register t ~file:path ~unit_name ~prefixes:[] structure)
    parsed;
  t.g_order <- List.sort String.compare t.g_order;
  (* pass 2: edges, now that every node exists *)
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.g_nodes key with
      | None -> ()
      | Some node -> (
          match Hashtbl.find_opt t.g_ctx node.n_unit with
          | None -> ()
          | Some ctx ->
              let callees =
                List.filter_map
                  (resolve_with t ctx ~prefixes:node.n_prefixes)
                  (reference_paths node.n_body)
              in
              node.n_callees <- List.sort_uniq String.compare callees))
    t.g_order;
  t

let find t key = Hashtbl.find_opt t.g_nodes key

let nodes t = List.filter_map (find t) t.g_order

let callees t key =
  match find t key with Some n -> n.n_callees | None -> []

(* forward reachability from [roots] over resolved edges *)
let reachable t ~roots =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 128 in
  let rec go key =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      List.iter go (callees t key)
    end
  in
  List.iter go roots;
  seen

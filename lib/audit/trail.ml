module Sim = Nsql_sim.Sim
module Stats = Nsql_sim.Stats
module Config = Nsql_sim.Config
module Disk = Nsql_disk.Disk
module Trace = Nsql_trace.Trace

type flush_reason = Flush_full | Flush_timer | Flush_force

type t = {
  sim : Sim.t;
  volume : Disk.t;
  buffer : Buffer.t;
  mutable next_lsn : int64;
  mutable last_staged_lsn : int64;
  mutable durable_lsn : int64;
  mutable write_pos : int;  (** byte offset of the durable trail's end *)
  mutable pending : (int * int64) list;  (** (tx, commit lsn) awaiting flush *)
  mutable timer_armed : bool;
  mutable timer_due : float;
  mutable timer_us : float;
  mutable timer_pinned : bool;
  mutable last_commit_at : float;
  mutable ewma_interval_us : float;
  mutable tail_image : Bytes.t;  (** in-memory image of the partial last block *)
}

let create sim volume =
  let cfg = Sim.config sim in
  {
    sim;
    volume;
    buffer = Buffer.create cfg.Config.audit_buffer_bytes;
    next_lsn = 1L;
    last_staged_lsn = 0L;
    durable_lsn = 0L;
    write_pos = 0;
    pending = [];
    timer_armed = false;
    timer_due = 0.;
    timer_us = cfg.Config.group_commit_timer_us;
    timer_pinned = not cfg.Config.group_commit_adaptive;
    last_commit_at = 0.;
    ewma_interval_us = cfg.Config.group_commit_timer_us;
    tail_image = Bytes.make cfg.Config.block_size '\x00';
  }

let next_lsn t = t.next_lsn
let volume t = t.volume
let durable_lsn t = t.durable_lsn
let buffered_bytes t = Buffer.length t.buffer
let bytes_written t = t.write_pos

let set_timer_us t us =
  t.timer_us <- us;
  t.timer_pinned <- true

let current_timer_us t = t.timer_us

(* Write the staged bytes to the volume, continuing the byte stream at
   [write_pos]: the first block is rewritten in full if partially filled. *)
let write_to_volume t data =
  let bs = Disk.block_size t.volume in
  let first_block = t.write_pos / bs in
  let offset = t.write_pos mod bs in
  let total = offset + String.length data in
  let nblocks = (total + bs - 1) / bs in
  (* the partial head block's image is kept in memory between flushes (the
     audit Disk Process never re-reads its own tail) *)
  let images =
    Array.init nblocks (fun i ->
        let block = Bytes.make bs '\x00' in
        if i = 0 && offset > 0 then
          Bytes.blit t.tail_image 0 block 0 offset;
        (* copy the slice of [data] that lands in this block *)
        let data_start = max 0 ((i * bs) - offset) in
        let block_start = if i = 0 then offset else 0 in
        let len =
          min (String.length data - data_start) (bs - block_start)
        in
        if len > 0 then Bytes.blit_string data data_start block block_start len;
        Bytes.to_string block)
  in
  (* make sure the volume is large enough *)
  let needed = first_block + nblocks in
  if Disk.blocks t.volume < needed then
    ignore (Disk.allocate t.volume (needed - Disk.blocks t.volume));
  (* bulk-write in chunks bounded by the bulk I/O limit *)
  let limit = Disk.max_bulk_blocks t.volume in
  let rec write_chunks i =
    if i < nblocks then begin
      let n = min limit (nblocks - i) in
      Disk.write_bulk t.volume ~first:(first_block + i)
        (Array.sub images i n);
      write_chunks (i + n)
    end
  in
  write_chunks 0;
  t.write_pos <- t.write_pos + String.length data;
  (* remember the new tail image for the next flush *)
  let tail_idx = (t.write_pos - 1) / bs - first_block in
  if tail_idx >= 0 && tail_idx < nblocks then
    t.tail_image <- Bytes.of_string images.(tail_idx)

let flush t reason =
  if Buffer.length t.buffer > 0 then begin
    let sp =
      if Trace.enabled t.sim then
        Trace.begin_span t.sim ~cat:"tmf"
          ~attrs:
            [
              ( "reason",
                Trace.Str
                  (match reason with
                  | Flush_full -> "full"
                  | Flush_timer -> "timer"
                  | Flush_force -> "force") );
              ("bytes", Trace.Int (Buffer.length t.buffer));
            ]
          "audit_flush"
      else None
    in
    let s = Sim.stats t.sim in
    s.Stats.audit_flushes <- s.Stats.audit_flushes + 1;
    (match reason with
    | Flush_full -> s.Stats.audit_flush_full <- s.Stats.audit_flush_full + 1
    | Flush_timer -> s.Stats.audit_flush_timer <- s.Stats.audit_flush_timer + 1
    | Flush_force -> ());
    let data = Buffer.contents t.buffer in
    Buffer.clear t.buffer;
    write_to_volume t data;
    t.durable_lsn <- t.last_staged_lsn;
    (* the flush commits every pending transaction whose commit record is
       now durable: one I/O, a group of commits *)
    let committed, still_waiting =
      List.partition (fun (_, lsn) -> Int64.compare lsn t.durable_lsn <= 0)
        t.pending
    in
    s.Stats.group_commit_txs <- s.Stats.group_commit_txs + List.length committed;
    t.pending <- still_waiting;
    if t.pending = [] then t.timer_armed <- false;
    Trace.add_attr sp "group_commits" (Trace.Int (List.length committed));
    Trace.finish t.sim sp
  end

let append t ~tx body =
  let lsn = t.next_lsn in
  t.next_lsn <- Int64.add t.next_lsn 1L;
  let record = Audit_record.{ lsn; tx; body } in
  let encoded = Audit_record.encode record in
  Buffer.add_string t.buffer encoded;
  t.last_staged_lsn <- lsn;
  let s = Sim.stats t.sim in
  s.Stats.audit_records <- s.Stats.audit_records + 1;
  s.Stats.audit_bytes <- s.Stats.audit_bytes + String.length encoded;
  Sim.tick t.sim 5;
  let cfg = Sim.config t.sim in
  if Buffer.length t.buffer >= cfg.Config.audit_buffer_bytes then
    flush t Flush_full;
  lsn

let force t lsn =
  if Int64.compare t.durable_lsn lsn < 0 then begin
    if Int64.compare t.last_staged_lsn lsn < 0 then
      invalid_arg "Trail.force: lsn not yet appended";
    flush t Flush_force
  end

(* Helland adaptation: aim the timer at collecting [target_batch] commits,
   estimated from the EWMA of commit inter-arrival times, within bounds. *)
let target_batch = 4.
let min_timer_us = 1_000.
let max_timer_us = 50_000.

let adapt_timer t =
  if not t.timer_pinned then begin
    let now = Sim.now t.sim in
    if t.last_commit_at > 0. then begin
      let interval = now -. t.last_commit_at in
      t.ewma_interval_us <-
        (0.8 *. t.ewma_interval_us) +. (0.2 *. interval)
    end;
    t.last_commit_at <- now;
    t.timer_us <-
      Float.min max_timer_us
        (Float.max min_timer_us (target_batch *. t.ewma_interval_us))
  end

let arm_timer t =
  if not t.timer_armed then begin
    t.timer_armed <- true;
    let due = Sim.now t.sim +. t.timer_us in
    t.timer_due <- due;
    Sim.schedule t.sim ~at:due (fun () ->
        (* the timer may have been logically disarmed by an earlier flush *)
        if t.timer_armed && t.pending <> [] then flush t Flush_timer)
  end

let request_commit t ~tx lsn =
  adapt_timer t;
  if Int64.compare lsn t.durable_lsn > 0 then begin
    t.pending <- (tx, lsn) :: t.pending;
    arm_timer t
  end

let await_durable t lsn =
  let guard = ref 0 in
  while Int64.compare t.durable_lsn lsn < 0 do
    incr guard;
    if !guard > 1000 then failwith "Trail.await_durable: stuck";
    if t.timer_armed then begin
      (* group-commit: idle until the timer pops *)
      Nsql_sim.Moncore.with_cat (Sim.moncore t.sim) Nsql_sim.Moncore.C_await
        (fun () -> Sim.wait_until t.sim t.timer_due);
      Sim.flush_events t.sim;
      (* the timer event may have found nothing pending; ensure progress *)
      if Int64.compare t.durable_lsn lsn < 0 then flush t Flush_timer
    end
    else force t lsn
  done

let read_durable t =
  let bs = Disk.block_size t.volume in
  let nblocks = (t.write_pos + bs - 1) / bs in
  if nblocks = 0 then []
  else begin
    let buf = Buffer.create t.write_pos in
    let limit = Disk.max_bulk_blocks t.volume in
    let rec read_chunks i =
      if i < nblocks then begin
        let n = min limit (nblocks - i) in
        Array.iter (Buffer.add_string buf)
          (Disk.read_bulk t.volume ~first:i ~count:n);
        read_chunks (i + n)
      end
    in
    read_chunks 0;
    let bytes_ = String.sub (Buffer.contents buf) 0 t.write_pos in
    let r = Nsql_util.Codec.reader bytes_ in
    let records = ref [] in
    while not (Nsql_util.Codec.at_end r) do
      records := Audit_record.decode r :: !records
    done;
    List.rev !records
  end

(** The TMF audit trail.

    One audit trail per node, resident on its own volume and managed (in
    the real system) by a standard Disk Process whose audit-writing path is
    optimized for long sequential bulk I/Os. This module reproduces that
    behaviour:

    - records are staged in an audit buffer (default 28 KB);
    - the buffer is flushed to the audit volume with bulk writes when it
      fills ({e buffer-full flush}), when a group-commit timer expires
      ({e timer flush}), or when the WAL protocol forces it ({e force});
    - transactions whose COMMIT record is in the buffer wait for the flush
      that makes it durable — every flush thus commits a {e group} of
      transactions [Gawlick];
    - because field compression makes buffer-full flushes rarer, a timer
      forces out pending commits from a partially full buffer; following
      [Helland], the timer adapts to the observed transaction rate. *)

type t

type flush_reason = Flush_full | Flush_timer | Flush_force

val create : Nsql_sim.Sim.t -> Nsql_disk.Disk.t -> t

(** [volume t] is the audit volume the trail writes to — exposed so the
    chaos layer can stall it. *)
val volume : t -> Nsql_disk.Disk.t

(** [append t ~tx body] stages a record and returns its LSN. May trigger a
    buffer-full flush. *)
val append : t -> tx:int -> Audit_record.body -> int64

(** [next_lsn t] is the LSN the next append will receive. *)
val next_lsn : t -> int64

(** [durable_lsn t] is the highest LSN safely on the audit volume. *)
val durable_lsn : t -> int64

(** [force t lsn] synchronously makes the trail durable through [lsn]
    (write-ahead-log servicing for the cache manager). *)
val force : t -> int64 -> unit

(** [request_commit t ~tx lsn] registers a commit waiting on [lsn] and arms
    the group-commit timer if no flush is otherwise scheduled. *)
val request_commit : t -> tx:int -> int64 -> unit

(** [await_durable t lsn] advances simulated time until [lsn] is durable
    (the group-commit wait). *)
val await_durable : t -> int64 -> unit

(** [read_durable t] reads back every durable record from the volume, in
    LSN order — the restart-recovery scan. *)
val read_durable : t -> Audit_record.t list

(** [buffered_bytes t] is the current staging-buffer occupancy. *)
val buffered_bytes : t -> int

(** [set_timer_us t us] pins the group-commit timer (disables adaptation
    for experiment E7 sweeps). *)
val set_timer_us : t -> float -> unit

(** [current_timer_us t] is the timer in effect. *)
val current_timer_us : t -> float

(** [bytes_written t] is the total bytes flushed to the audit volume. *)
val bytes_written : t -> int

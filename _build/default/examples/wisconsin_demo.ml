(* Wisconsin: run the benchmark's selection queries under the three access
   methods — record-at-a-time, RSBB, VSBB — and print the message traffic
   each one costs, reproducing the shape of the paper's 3x / 3x claim.

   Run with: dune exec examples/wisconsin_demo.exe *)

module N = Nsql_core.Nonstop_sql
module Fs = Nsql_fs.Fs
module Stats = Nsql_sim.Stats
module Wisconsin = Nsql_workload.Wisconsin
module Errors = Nsql_util.Errors

let rows = 2000

let () =
  let node = N.create_node () in
  Errors.get_ok ~ctx:"load"
    (Wisconsin.create node ~name:"tenktup1" ~rows ());
  Format.printf "loaded Wisconsin table (%d rows)@.@." rows;
  let s = N.session node in
  let queries = Wisconsin.selection_queries ~table:"tenktup1" ~rows in
  Format.printf "%-4s %-48s %9s %9s %9s@." "id" "query" "record" "RSBB" "VSBB";
  List.iter
    (fun q ->
      let cost mode =
        N.set_access_mode s mode;
        let result, delta =
          N.measure node (fun () -> N.exec_exn s q.Wisconsin.q_sql)
        in
        (match result with N.Rows _ -> () | _ -> failwith "expected rows");
        delta.Stats.msgs_sent
      in
      let m_rec = cost (Some Fs.A_record) in
      let m_rsbb = cost (Some Fs.A_rsbb) in
      let m_vsbb = cost (Some Fs.A_vsbb) in
      Format.printf "%-4s %-48s %9d %9d %9d@." q.Wisconsin.q_id
        q.Wisconsin.q_desc m_rec m_rsbb m_vsbb)
    queries;
  N.set_access_mode s None;
  Format.printf
    "@.(messages per query; RSBB saves the blocking factor, VSBB also \
     filters and projects at the data source)@."

(* Banking: the DebitCredit workload through both interfaces, a comparison
   of their per-transaction costs, and a crash/recovery demonstration.

   Run with: dune exec examples/banking.exe *)

module N = Nsql_core.Nonstop_sql
module Stats = Nsql_sim.Stats
module Row = Nsql_row.Row
module Debitcredit = Nsql_workload.Debitcredit
module Errors = Nsql_util.Errors

let get_ok = Errors.get_ok

let () =
  Format.printf "=== DebitCredit through NonStop SQL ===@.";
  let node = N.create_node ~volumes:2 () in
  let db =
    get_ok ~ctx:"setup"
      (Debitcredit.setup_sql node ~accounts:500 ~tellers:50 ~branches:5)
  in
  let s = N.session node in
  let txs = 100 in
  let (), delta =
    N.measure node (fun () ->
        for i = 0 to txs - 1 do
          get_ok ~ctx:"tx"
            (Debitcredit.run_sql_tx db s ~aid:((i * 31) mod 500)
               ~delta:(float_of_int ((i mod 21) - 10)))
        done)
  in
  Format.printf "%d transactions:@.  %a@." txs Stats.pp_brief delta;
  Format.printf "  per tx: %.1f messages, %.1f disk I/Os@."
    (float_of_int delta.Stats.msgs_sent /. float_of_int txs)
    (float_of_int (delta.Stats.disk_reads + delta.Stats.disk_writes)
    /. float_of_int txs);
  let total, hist = get_ok ~ctx:"bal" (Debitcredit.sql_balances db s) in
  Format.printf "  sum of balances: %.0f, history rows: %d@.@." total hist;

  Format.printf "=== the same workload through ENSCRIBE ===@.";
  let node_e = N.create_node ~volumes:2 () in
  let db_e =
    get_ok ~ctx:"setup"
      (Debitcredit.setup_enscribe node_e ~accounts:500 ~tellers:50 ~branches:5)
  in
  let (), delta_e =
    N.measure node_e (fun () ->
        for i = 0 to txs - 1 do
          get_ok ~ctx:"tx"
            (Debitcredit.run_enscribe_tx node_e db_e ~aid:((i * 31) mod 500)
               ~delta:(float_of_int ((i mod 21) - 10)))
        done)
  in
  Format.printf "%d transactions:@.  %a@." txs Stats.pp_brief delta_e;
  Format.printf
    "  SQL sends %.0f%% of ENSCRIBE's messages (update expressions avoid the \
     preliminary reads)@.@."
    (100.
    *. float_of_int delta.Stats.msgs_sent
    /. float_of_int delta_e.Stats.msgs_sent);

  Format.printf "=== crash and recovery ===@.";
  (* run a few more transactions, crash volume 0 mid-flight, recover *)
  ignore (N.exec_exn s "BEGIN WORK");
  ignore (N.exec_exn s "UPDATE account SET balance = 0.0 WHERE aid = 3");
  (* the uncommitted update is in flight when the processor fails *)
  Format.printf "crashing $DATA1 with one transaction in flight...@.";
  N.crash_volume node 0;
  N.crash_volume node 1;
  let o0 = N.recover_volume node 0 in
  let o1 = N.recover_volume node 1 in
  Format.printf "recovery: %a / %a@." Nsql_tmf.Recovery.pp_outcome o0
    Nsql_tmf.Recovery.pp_outcome o1;
  let s2 = N.session node in
  let total2, hist2 = get_ok ~ctx:"bal" (Debitcredit.sql_balances db s2) in
  Format.printf
    "after recovery: sum of balances %.0f (unchanged: %b), history rows %d@."
    total2
    (abs_float (total2 -. total) < 1e-6)
    hist2

(* Quickstart: bring up a simulated Tandem node and talk SQL to it.

   Run with: dune exec examples/quickstart.exe *)

module N = Nsql_core.Nonstop_sql

let () =
  let node = N.create_node () in
  let s = N.session node in
  let run sql =
    Format.printf ">> %s@." sql;
    Format.printf "%a@.@." N.pp_exec_result (N.exec_exn s sql)
  in
  (* the paper's running example: the EMP table *)
  run
    "CREATE TABLE emp (empno INT PRIMARY KEY, name VARCHAR(32) NOT NULL, \
     hire_date CHAR(10) NOT NULL, salary FLOAT NOT NULL)";
  run "INSERT INTO emp VALUES (1, 'Borr', '1978-03-01', 95000.0)";
  run "INSERT INTO emp VALUES (2, 'Putzolu', '1979-11-15', 97000.0)";
  run "INSERT INTO emp VALUES (3, 'Gray', '1980-06-20', 99000.0)";
  run "INSERT INTO emp VALUES (950, 'Recent Hire', '1988-06-01', 31000.0)";
  run "INSERT INTO emp VALUES (1200, 'Out of range', '1988-06-01', 50000.0)";

  (* Example (1) of the paper: selection + projection -> one GET^FIRST^VSBB *)
  run "SELECT name, hire_date FROM emp WHERE empno <= 1000 AND salary > 32000.0";

  (* Example (2): SELECT * -> real sequential block buffering *)
  run "SELECT * FROM emp";

  (* Example (3): update via expression, evaluated in the Disk Process *)
  run "UPDATE emp SET salary = salary * 1.07 WHERE salary > 0.0";
  run "SELECT name, salary FROM emp ORDER BY salary DESC LIMIT 3";

  (* transactions *)
  run "BEGIN WORK";
  run "DELETE FROM emp WHERE empno = 950";
  run "ROLLBACK WORK";
  run "SELECT COUNT(*) FROM emp";

  (* what did all of that cost? *)
  Format.printf "--- simulation counters ---@.%a@." Nsql_sim.Stats.pp
    (N.stats node)

examples/distributed.ml: Array Format List Nsql_core Nsql_expr Nsql_fs Nsql_msg Nsql_row Nsql_tmf Nsql_util Printf

examples/cluster.ml: Array Format List Nsql_core Nsql_dp Nsql_dtx Nsql_expr Nsql_fs Nsql_msg Nsql_row Nsql_tmf Nsql_util Printf

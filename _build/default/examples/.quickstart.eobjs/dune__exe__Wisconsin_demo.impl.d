examples/wisconsin_demo.ml: Format List Nsql_core Nsql_fs Nsql_sim Nsql_util Nsql_workload

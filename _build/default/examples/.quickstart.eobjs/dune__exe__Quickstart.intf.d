examples/quickstart.mli:

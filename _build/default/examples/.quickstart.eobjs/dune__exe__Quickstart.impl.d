examples/quickstart.ml: Format Nsql_core Nsql_sim

examples/wisconsin_demo.mli:

examples/cluster.mli:

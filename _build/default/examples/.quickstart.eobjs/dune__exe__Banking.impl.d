examples/banking.ml: Format Nsql_core Nsql_row Nsql_sim Nsql_tmf Nsql_util Nsql_workload

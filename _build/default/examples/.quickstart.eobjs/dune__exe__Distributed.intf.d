examples/distributed.mli:

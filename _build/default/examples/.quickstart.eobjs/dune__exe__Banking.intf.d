examples/banking.mli:

module Msg = Nsql_msg.Msg
module Tmf = Nsql_tmf.Tmf
module Codec = Nsql_util.Codec
module Errors = Nsql_util.Errors

open Errors

(* --- the TMF-to-TMF wire protocol ---------------------------------------- *)

type tmf_request =
  | M_begin
  | M_prepare of { tx : int; coordinator_node : int; coordinator_tx : int }
  | M_commit of { tx : int }
  | M_abort of { tx : int }

type tmf_reply = M_tx of int | M_ok | M_failed of string

let tag_of_request = function
  | M_begin -> "TMF^BEGIN"
  | M_prepare _ -> "TMF^PREPARE"
  | M_commit _ -> "TMF^COMMIT"
  | M_abort _ -> "TMF^ABORT"

let encode_request req =
  let w = Codec.writer () in
  (match req with
  | M_begin -> Codec.w_u8 w 0
  | M_prepare { tx; coordinator_node; coordinator_tx } ->
      Codec.w_u8 w 1;
      Codec.w_varint w tx;
      Codec.w_varint w coordinator_node;
      Codec.w_varint w coordinator_tx
  | M_commit { tx } ->
      Codec.w_u8 w 2;
      Codec.w_varint w tx
  | M_abort { tx } ->
      Codec.w_u8 w 3;
      Codec.w_varint w tx);
  Codec.contents w

let decode_request payload =
  let r = Codec.reader payload in
  match Codec.r_u8 r with
  | 0 -> M_begin
  | 1 ->
      let tx = Codec.r_varint r in
      let coordinator_node = Codec.r_varint r in
      let coordinator_tx = Codec.r_varint r in
      M_prepare { tx; coordinator_node; coordinator_tx }
  | 2 -> M_commit { tx = Codec.r_varint r }
  | 3 -> M_abort { tx = Codec.r_varint r }
  | n -> invalid_arg (Printf.sprintf "Dtx: bad TMF request tag %d" n)

let encode_reply reply =
  let w = Codec.writer () in
  (match reply with
  | M_tx tx ->
      Codec.w_u8 w 0;
      Codec.w_varint w tx
  | M_ok -> Codec.w_u8 w 1
  | M_failed msg_ ->
      Codec.w_u8 w 2;
      Codec.w_bytes w msg_);
  Codec.contents w

let decode_reply payload =
  let r = Codec.reader payload in
  match Codec.r_u8 r with
  | 0 -> M_tx (Codec.r_varint r)
  | 1 -> M_ok
  | 2 -> M_failed (Codec.r_bytes r)
  | n -> invalid_arg (Printf.sprintf "Dtx: bad TMF reply tag %d" n)

(* --- the participant side ------------------------------------------------- *)

let serve tmf payload =
  let reply =
    match decode_request payload with
    | M_begin -> M_tx (Tmf.begin_tx tmf)
    | M_prepare { tx; coordinator_node; coordinator_tx } -> (
        match Tmf.prepare tmf ~tx ~coordinator_node ~coordinator_tx with
        | Ok () -> M_ok
        | Error e -> M_failed (Errors.to_string e))
    | M_commit { tx } -> (
        match Tmf.commit tmf ~tx with
        | Ok () -> M_ok
        | Error e -> M_failed (Errors.to_string e))
    | M_abort { tx } -> (
        match Tmf.abort tmf ~tx with
        | Ok () -> M_ok
        | Error e -> M_failed (Errors.to_string e))
  in
  encode_reply reply

(* --- registry --------------------------------------------------------------- *)

type registry = {
  msys : Msg.system;
  monitors : (int, Tmf.t * Msg.endpoint) Hashtbl.t;
}

let create_registry msys = { msys; monitors = Hashtbl.create 4 }

let register_tmf reg ~node_id tmf =
  if Hashtbl.mem reg.monitors node_id then
    invalid_arg (Printf.sprintf "Dtx: node %d already registered" node_id);
  let endpoint =
    Msg.register reg.msys
      ~name:(Printf.sprintf "$TMP%d" node_id)
      ~processor:Msg.{ node = node_id; cpu = 0 }
      (serve tmf)
  in
  Hashtbl.replace reg.monitors node_id (tmf, endpoint)

let tmf_of reg ~node_id =
  Option.map fst (Hashtbl.find_opt reg.monitors node_id)

(* --- the coordinator side ----------------------------------------------------- *)

type t = {
  reg : registry;
  from : Msg.processor;
  home : int;
  home_tmf : Tmf.t;
  c_tx : int;
  mutable branches : (int * int) list;  (** (node id, local tx) *)
  mutable finished : bool;
}

let find_monitor reg node_id =
  match Hashtbl.find_opt reg.monitors node_id with
  | Some m -> Ok m
  | None -> fail (Errors.Name_error (Printf.sprintf "no TMF on node %d" node_id))

let begin_network reg ~home ~from =
  let* home_tmf, _ = find_monitor reg home in
  let c_tx = Tmf.begin_tx home_tmf in
  Ok { reg; from; home; home_tmf; c_tx; branches = []; finished = false }

let coordinator_tx t = t.c_tx

let call t endpoint req =
  let reply =
    Msg.send t.reg.msys ~from:t.from ~tag:(tag_of_request req) endpoint
      (encode_request req)
  in
  decode_reply reply

let branch t ~node_id =
  if node_id = t.home then Ok t.c_tx
  else
    match List.assoc_opt node_id t.branches with
    | Some tx -> Ok tx
    | None -> (
        let* _, endpoint = find_monitor t.reg node_id in
        match call t endpoint M_begin with
        | M_tx tx ->
            t.branches <- (node_id, tx) :: t.branches;
            Ok tx
        | M_ok | M_failed _ ->
            fail (Errors.Internal "unexpected reply to TMF^BEGIN"))

let branch_count t = List.length t.branches

let abort_branches t =
  List.iter
    (fun (node_id, tx) ->
      match find_monitor t.reg node_id with
      | Ok (_, endpoint) -> ignore (call t endpoint (M_abort { tx }))
      | Error _ -> ())
    t.branches

let abort t =
  if t.finished then fail Errors.No_transaction
  else begin
    t.finished <- true;
    abort_branches t;
    Tmf.abort t.home_tmf ~tx:t.c_tx
  end

let commit t =
  if t.finished then fail Errors.No_transaction
  else begin
    t.finished <- true;
    (* phase 1: every remote branch prepares (forcing its trail) *)
    let rec prepare_all = function
      | [] -> Ok ()
      | (node_id, tx) :: rest -> (
          let* _, endpoint = find_monitor t.reg node_id in
          match
            call t endpoint
              (M_prepare
                 { tx; coordinator_node = t.home; coordinator_tx = t.c_tx })
          with
          | M_ok -> prepare_all rest
          | M_failed msg_ ->
              fail (Errors.Tx_aborted ("branch failed to prepare: " ^ msg_))
          | M_tx _ -> fail (Errors.Internal "unexpected reply to TMF^PREPARE"))
    in
    match prepare_all t.branches with
    | Error e ->
        abort_branches t;
        (match Tmf.abort t.home_tmf ~tx:t.c_tx with Ok () | Error _ -> ());
        Error e
    | Ok () -> (
        (* decision point: the coordinator's durable COMMIT record *)
        match Tmf.commit t.home_tmf ~tx:t.c_tx with
        | Error e ->
            abort_branches t;
            Error e
        | Ok () ->
            (* phase 2: tell the branches; a branch that misses this
               message resolves itself at recovery from our trail *)
            List.iter
              (fun (node_id, tx) ->
                match find_monitor t.reg node_id with
                | Ok (_, endpoint) ->
                    ignore (call t endpoint (M_commit { tx }))
                | Error _ -> ())
              t.branches;
            Ok ())
  end

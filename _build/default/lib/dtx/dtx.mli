(** Distributed transactions: TMF's network-atomic commitment.

    The paper inherits distribution from the pre-existing architecture:
    "A transaction mechanism coordinates the atomic commitment of updates
    by multiple processes in the network" [Borr1]. This module reproduces
    that mechanism as two-phase commit between the per-node TMF monitors:

    - each node's TMF is reachable as a message endpoint (["$TMP<n>"], the
      transaction monitor process), so BEGIN/PREPARE/COMMIT/ABORT between
      nodes are counted messages like all other traffic;
    - a {e network transaction} has a coordinator transaction on its home
      node and one {e branch} transaction per participating remote node,
      created lazily as work spreads;
    - commit is presumed-abort 2PC: every branch PREPAREs (forcing its
      PREPARE record to its node's audit trail), then the coordinator's
      local commit is the decision point, then branches COMMIT;
    - a branch that crashes between PREPARE and the decision is {e
      in-doubt}; its recovery resolves it against the coordinator node's
      trail ({!Nsql_tmf.Recovery.rollforward_with}). *)

module Msg = Nsql_msg.Msg
module Tmf = Nsql_tmf.Tmf

(** A registry of the cluster's TMF monitors. *)
type registry

val create_registry : Msg.system -> registry

(** [register_tmf reg ~node_id tmf] exposes [tmf] as endpoint
    ["$TMP<node_id>"] on processor [{node = node_id; cpu = 0}]. *)
val register_tmf : registry -> node_id:int -> Tmf.t -> unit

(** [tmf_of reg ~node_id] looks a registered monitor up (local calls). *)
val tmf_of : registry -> node_id:int -> Tmf.t option

(** A network transaction. *)
type t

(** [begin_network reg ~home ~from] starts a network transaction whose
    coordinator transaction lives on node [home]; [from] is the requesting
    processor (message costs are charged from there). *)
val begin_network :
  registry -> home:int -> from:Msg.processor -> (t, Nsql_util.Errors.t) result

(** [coordinator_tx t] is the coordinator's local transaction id — use it
    for work against Disk Processes of the home node. *)
val coordinator_tx : t -> int

(** [branch t ~node_id] returns the local transaction id to use for work
    on [node_id], enlisting the node (via a counted BEGIN message) on
    first use. *)
val branch : t -> node_id:int -> (int, Nsql_util.Errors.t) result

(** [commit t] runs two-phase commit: PREPARE every remote branch, commit
    the coordinator transaction (the decision point), then COMMIT the
    branches. If any branch fails to prepare, everything aborts and
    [Tx_aborted] is returned. *)
val commit : t -> (unit, Nsql_util.Errors.t) result

(** [abort t] aborts the coordinator and every enlisted branch. *)
val abort : t -> (unit, Nsql_util.Errors.t) result

(** [branch_count t] is the number of enlisted remote branches. *)
val branch_count : t -> int

lib/dtx/dtx.ml: Hashtbl List Nsql_msg Nsql_tmf Nsql_util Option Printf

lib/dtx/dtx.mli: Nsql_msg Nsql_tmf Nsql_util

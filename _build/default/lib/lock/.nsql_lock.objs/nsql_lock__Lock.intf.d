lib/lock/lock.mli: Format Nsql_sim

lib/lock/lock.ml: Format Hashtbl List Nsql_sim Nsql_util Option String

type t = {
  config : Config.t;
  stats : Stats.t;
  mutable now : float;
  events : (unit -> unit) Nsql_util.Heap.t;
  mutable firing : bool;
}

let create ?(config = Config.default) () =
  {
    config;
    stats = Stats.create ();
    now = 0.;
    events = Nsql_util.Heap.create ();
    firing = false;
  }

let config t = t.config
let stats t = t.stats
let now t = t.now

(* Events may schedule further events while firing; the loop re-examines the
   heap top each round. [firing] guards against re-entrant firing when an
   event handler itself advances the clock. *)
let fire_due t =
  if not t.firing then begin
    t.firing <- true;
    let rec loop () =
      match Nsql_util.Heap.min_prio t.events with
      | Some due when due <= t.now -> (
          match Nsql_util.Heap.pop_min t.events with
          | Some (_, f) ->
              f ();
              loop ()
          | None -> ())
      | Some _ | None -> ()
    in
    Fun.protect ~finally:(fun () -> t.firing <- false) loop
  end

let advance_to t when_ =
  (* step through intermediate event times so each event sees a clock that
     has just reached its due time *)
  let rec loop () =
    match Nsql_util.Heap.min_prio t.events with
    | Some due when due <= when_ && due > t.now ->
        t.now <- due;
        fire_due t;
        loop ()
    | _ ->
        if when_ > t.now then t.now <- when_;
        fire_due t
  in
  loop ()

let charge t us = if us > 0. then advance_to t (t.now +. us)

let tick t n =
  if n > 0 then begin
    t.stats.Stats.cpu_ticks <- t.stats.Stats.cpu_ticks + n;
    charge t (float_of_int n *. t.config.Config.cpu_tick_us)
  end

let wait_until t when_ = if when_ > t.now then advance_to t when_

let schedule t ~at f =
  Nsql_util.Heap.push t.events ~prio:(max at t.now) f

let after t delay f = schedule t ~at:(t.now +. delay) f

let flush_events t = fire_due t

let drain t =
  let rec loop () =
    match Nsql_util.Heap.min_prio t.events with
    | None -> ()
    | Some due ->
        advance_to t (max due t.now);
        loop ()
  in
  loop ()

let snapshot t = Stats.copy t.stats

let measure t f =
  let before = snapshot t in
  let result = f () in
  let after_ = snapshot t in
  (result, Stats.diff ~before ~after:after_)

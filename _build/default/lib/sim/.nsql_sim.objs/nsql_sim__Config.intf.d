lib/sim/config.mli:

lib/sim/config.ml:

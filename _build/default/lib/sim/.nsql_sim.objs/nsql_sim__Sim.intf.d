lib/sim/sim.mli: Config Stats

lib/sim/stats.ml: Format List

lib/sim/sim.ml: Config Fun Nsql_util Stats

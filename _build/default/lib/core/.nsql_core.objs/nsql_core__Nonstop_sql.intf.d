lib/core/nonstop_sql.mli: Format Nsql_audit Nsql_dp Nsql_dtx Nsql_expr Nsql_fs Nsql_msg Nsql_row Nsql_sim Nsql_sql Nsql_tmf Nsql_util

lib/core/nonstop_sql.ml: Array Format List Nsql_audit Nsql_cache Nsql_disk Nsql_dp Nsql_dtx Nsql_expr Nsql_fs Nsql_msg Nsql_row Nsql_sim Nsql_sql Nsql_tmf Nsql_util Printf

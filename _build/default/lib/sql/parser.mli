(** Recursive-descent SQL parser. *)

(** [parse src] parses one statement (an optional trailing [;] is
    allowed). *)
val parse : string -> (Ast.statement, Nsql_util.Errors.t) result

(** [parse_many src] parses a [;]-separated script. *)
val parse_many : string -> (Ast.statement list, Nsql_util.Errors.t) result

(** [parse_expr src] parses a standalone scalar expression (used by tests
    and by programmatic CHECK constraints). *)
val parse_expr : string -> (Ast.sexpr, Nsql_util.Errors.t) result

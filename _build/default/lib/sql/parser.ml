module Errors = Nsql_util.Errors
module Row = Nsql_row.Row

open Ast

exception Syntax of string

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.T_eof | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let fail_at st msg =
  raise
    (Syntax
       (Format.asprintf "%s (at %a)" msg Lexer.pp_token (peek st)))

let expect_symbol st s =
  match next st with
  | Lexer.T_symbol s' when String.equal s s' -> ()
  | _ -> fail_at st (Printf.sprintf "expected %s" s)

let expect_keyword st k =
  match next st with
  | Lexer.T_keyword k' when String.equal k k' -> ()
  | _ -> fail_at st (Printf.sprintf "expected %s" k)

let accept_symbol st s =
  match peek st with
  | Lexer.T_symbol s' when String.equal s s' ->
      advance st;
      true
  | _ -> false

let accept_keyword st k =
  match peek st with
  | Lexer.T_keyword k' when String.equal k k' ->
      advance st;
      true
  | _ -> false

let expect_ident st =
  match next st with
  | Lexer.T_ident id -> id
  | _ -> fail_at st "expected identifier"

let expect_int st =
  match next st with
  | Lexer.T_int i -> i
  | _ -> fail_at st "expected integer"

(* --- expressions -------------------------------------------------------- *)

let agg_of_keyword = function
  | "COUNT" -> Some A_count
  | "SUM" -> Some A_sum
  | "MIN" -> Some A_min
  | "MAX" -> Some A_max
  | "AVG" -> Some A_avg
  | _ -> None

let rec parse_or st =
  let a = parse_and st in
  if accept_keyword st "OR" then E_or (a, parse_or st) else a

and parse_and st =
  let a = parse_not st in
  if accept_keyword st "AND" then E_and (a, parse_and st) else a

and parse_not st =
  if accept_keyword st "NOT" then E_not (parse_not st) else parse_predicate st

and parse_predicate st =
  let a = parse_additive st in
  match peek st with
  | Lexer.T_symbol "=" ->
      advance st;
      E_cmp (Eq, a, parse_additive st)
  | Lexer.T_symbol "<>" ->
      advance st;
      E_cmp (Ne, a, parse_additive st)
  | Lexer.T_symbol "<" ->
      advance st;
      E_cmp (Lt, a, parse_additive st)
  | Lexer.T_symbol "<=" ->
      advance st;
      E_cmp (Le, a, parse_additive st)
  | Lexer.T_symbol ">" ->
      advance st;
      E_cmp (Gt, a, parse_additive st)
  | Lexer.T_symbol ">=" ->
      advance st;
      E_cmp (Ge, a, parse_additive st)
  | Lexer.T_keyword "IS" ->
      advance st;
      if accept_keyword st "NOT" then begin
        expect_keyword st "NULL";
        E_is_not_null a
      end
      else begin
        expect_keyword st "NULL";
        E_is_null a
      end
  | Lexer.T_keyword "LIKE" ->
      advance st;
      (match next st with
      | Lexer.T_string p -> E_like (a, p)
      | _ -> fail_at st "expected pattern string after LIKE")
  | Lexer.T_keyword "NOT" -> (
      advance st;
      match next st with
      | Lexer.T_keyword "LIKE" -> (
          match next st with
          | Lexer.T_string p -> E_not (E_like (a, p))
          | _ -> fail_at st "expected pattern string after NOT LIKE")
      | Lexer.T_keyword "BETWEEN" ->
          let lo = parse_additive st in
          expect_keyword st "AND";
          let hi = parse_additive st in
          E_not (E_between (a, lo, hi))
      | Lexer.T_keyword "IN" -> E_not (parse_in st a)
      | _ -> fail_at st "expected LIKE, BETWEEN or IN after NOT")
  | Lexer.T_keyword "BETWEEN" ->
      advance st;
      let lo = parse_additive st in
      expect_keyword st "AND";
      let hi = parse_additive st in
      E_between (a, lo, hi)
  | Lexer.T_keyword "IN" ->
      advance st;
      parse_in st a
  | _ -> a

and parse_in st a =
  expect_symbol st "(";
  let rec literals acc =
    let l = parse_literal st in
    if accept_symbol st "," then literals (l :: acc)
    else begin
      expect_symbol st ")";
      List.rev (l :: acc)
    end
  in
  E_in (a, literals [])

and parse_literal st =
  match next st with
  | Lexer.T_int i -> L_int i
  | Lexer.T_float f -> L_float f
  | Lexer.T_string s -> L_string s
  | Lexer.T_keyword "TRUE" -> L_bool true
  | Lexer.T_keyword "FALSE" -> L_bool false
  | Lexer.T_keyword "NULL" -> L_null
  | Lexer.T_symbol "-" -> (
      match next st with
      | Lexer.T_int i -> L_int (-i)
      | Lexer.T_float f -> L_float (-.f)
      | _ -> fail_at st "expected number after unary minus")
  | _ -> fail_at st "expected literal"

and parse_additive st =
  let rec go a =
    if accept_symbol st "+" then go (E_binop (Add, a, parse_multiplicative st))
    else if accept_symbol st "-" then go (E_binop (Sub, a, parse_multiplicative st))
    else if accept_symbol st "||" then go (E_binop (Concat, a, parse_multiplicative st))
    else a
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go a =
    if accept_symbol st "*" then go (E_binop (Mul, a, parse_primary st))
    else if accept_symbol st "/" then go (E_binop (Div, a, parse_primary st))
    else a
  in
  go (parse_primary st)

and parse_primary st =
  match peek st with
  | Lexer.T_int _ | Lexer.T_float _ | Lexer.T_string _
  | Lexer.T_keyword ("TRUE" | "FALSE" | "NULL") ->
      E_lit (parse_literal st)
  | Lexer.T_symbol "-" ->
      advance st;
      E_binop (Sub, E_lit (L_int 0), parse_primary st)
  | Lexer.T_symbol "(" ->
      advance st;
      let e = parse_or st in
      expect_symbol st ")";
      e
  | Lexer.T_keyword k when agg_of_keyword k <> None ->
      advance st;
      expect_symbol st "(";
      if String.equal k "COUNT" && accept_symbol st "*" then begin
        expect_symbol st ")";
        E_agg (A_count_star, None)
      end
      else begin
        let e = parse_or st in
        expect_symbol st ")";
        match agg_of_keyword k with
        | Some kind -> E_agg (kind, Some e)
        | None -> assert false
      end
  | Lexer.T_ident id ->
      advance st;
      if accept_symbol st "." then begin
        let col = expect_ident st in
        E_col (Some id, col)
      end
      else E_col (None, id)
  | _ -> fail_at st "expected expression"

(* --- types ---------------------------------------------------------------- *)

let parse_col_type st =
  match next st with
  | Lexer.T_keyword ("INT" | "INTEGER") -> Row.T_int
  | Lexer.T_keyword ("FLOAT" | "REAL") -> Row.T_float
  | Lexer.T_keyword "DOUBLE" ->
      ignore (accept_keyword st "PRECISION");
      Row.T_float
  | Lexer.T_keyword ("BOOL" | "BOOLEAN") -> Row.T_bool
  | Lexer.T_keyword "CHAR" ->
      expect_symbol st "(";
      let n = expect_int st in
      expect_symbol st ")";
      Row.T_char n
  | Lexer.T_keyword "VARCHAR" ->
      expect_symbol st "(";
      let n = expect_int st in
      expect_symbol st ")";
      Row.T_varchar n
  | _ -> fail_at st "expected column type"

(* --- statements ------------------------------------------------------------- *)

let parse_ident_list st =
  expect_symbol st "(";
  let rec go acc =
    let id = expect_ident st in
    if accept_symbol st "," then go (id :: acc)
    else begin
      expect_symbol st ")";
      List.rev (id :: acc)
    end
  in
  go []

let parse_create st =
  if accept_keyword st "TABLE" then begin
    let name = expect_ident st in
    expect_symbol st "(";
    let cols = ref [] in
    let pk = ref [] in
    let check = ref None in
    let rec item () =
      if accept_keyword st "PRIMARY" then begin
        expect_keyword st "KEY";
        pk := parse_ident_list st
      end
      else if accept_keyword st "CHECK" then begin
        expect_symbol st "(";
        let e = parse_or st in
        expect_symbol st ")";
        check := Some e
      end
      else begin
        let cname = expect_ident st in
        let ty = parse_col_type st in
        let not_null = ref false in
        let inline_pk = ref false in
        let rec modifiers () =
          if accept_keyword st "NOT" then begin
            expect_keyword st "NULL";
            not_null := true;
            modifiers ()
          end
          else if accept_keyword st "PRIMARY" then begin
            expect_keyword st "KEY";
            inline_pk := true;
            modifiers ()
          end
        in
        modifiers ();
        cols := { cd_name = cname; cd_type = ty; cd_not_null = !not_null } :: !cols;
        if !inline_pk then pk := !pk @ [ cname ]
      end;
      if accept_symbol st "," then item () else expect_symbol st ")"
    in
    item ();
    St_create_table
      { ct_name = name; ct_cols = List.rev !cols; ct_primary_key = !pk; ct_check = !check }
  end
  else begin
    ignore (accept_keyword st "UNIQUE");
    expect_keyword st "INDEX";
    let ci_name = expect_ident st in
    expect_keyword st "ON";
    let ci_table = expect_ident st in
    let ci_cols = parse_ident_list st in
    St_create_index { ci_name; ci_table; ci_cols }
  end

let parse_insert st =
  expect_keyword st "INTO";
  let table = expect_ident st in
  let cols =
    match peek st with
    | Lexer.T_symbol "(" -> Some (parse_ident_list st)
    | _ -> None
  in
  expect_keyword st "VALUES";
  let tuple () =
    expect_symbol st "(";
    let rec go acc =
      let l = parse_literal st in
      if accept_symbol st "," then go (l :: acc)
      else begin
        expect_symbol st ")";
        List.rev (l :: acc)
      end
    in
    go []
  in
  let rec tuples acc =
    let t = tuple () in
    if accept_symbol st "," then tuples (t :: acc) else List.rev (t :: acc)
  in
  St_insert { i_table = table; i_cols = cols; i_values = tuples [] }

let parse_select st =
  let distinct = accept_keyword st "DISTINCT" in
  let items =
    if accept_symbol st "*" then [ S_star ]
    else begin
      let item () =
        let e = parse_or st in
        if accept_keyword st "AS" then S_expr (e, Some (expect_ident st))
        else
          match peek st with
          | Lexer.T_ident alias ->
              advance st;
              S_expr (e, Some alias)
          | _ -> S_expr (e, None)
      in
      let rec go acc =
        let it = item () in
        if accept_symbol st "," then go (it :: acc) else List.rev (it :: acc)
      in
      go []
    end
  in
  expect_keyword st "FROM";
  let from_item () =
    let tname = expect_ident st in
    let alias =
      if accept_keyword st "AS" then Some (expect_ident st)
      else
        match peek st with
        | Lexer.T_ident a ->
            advance st;
            Some a
        | _ -> None
    in
    (tname, alias)
  in
  let from = ref [ from_item () ] in
  let join_preds = ref [] in
  let rec more_tables () =
    if accept_symbol st "," then begin
      from := from_item () :: !from;
      more_tables ()
    end
    else if accept_keyword st "INNER" || accept_keyword st "JOIN" then begin
      (* INNER was consumed; a following JOIN may remain *)
      ignore (accept_keyword st "JOIN");
      from := from_item () :: !from;
      expect_keyword st "ON";
      join_preds := parse_or st :: !join_preds;
      more_tables ()
    end
  in
  more_tables ();
  let where = if accept_keyword st "WHERE" then Some (parse_or st) else None in
  let where =
    List.fold_left
      (fun acc p -> match acc with None -> Some p | Some w -> Some (E_and (w, p)))
      where !join_preds
  in
  let group_by =
    if accept_keyword st "GROUP" then begin
      expect_keyword st "BY";
      let rec go acc =
        let e = parse_or st in
        if accept_symbol st "," then go (e :: acc) else List.rev (e :: acc)
      in
      go []
    end
    else []
  in
  let having = if accept_keyword st "HAVING" then Some (parse_or st) else None in
  let order_by =
    if accept_keyword st "ORDER" then begin
      expect_keyword st "BY";
      let rec go acc =
        let e = parse_or st in
        let desc =
          if accept_keyword st "DESC" then true
          else begin
            ignore (accept_keyword st "ASC");
            false
          end
        in
        if accept_symbol st "," then go ({ o_expr = e; o_desc = desc } :: acc)
        else List.rev ({ o_expr = e; o_desc = desc } :: acc)
      in
      go []
    end
    else []
  in
  let limit = if accept_keyword st "LIMIT" then Some (expect_int st) else None in
  St_select
    {
      sel_distinct = distinct;
      sel_items = items;
      sel_from = List.rev !from;
      sel_where = where;
      sel_group_by = group_by;
      sel_having = having;
      sel_order_by = order_by;
      sel_limit = limit;
    }

let parse_update st =
  let table = expect_ident st in
  expect_keyword st "SET";
  let assignment () =
    let col = expect_ident st in
    (* allow qualified target: TABLE.COL *)
    let col =
      if accept_symbol st "." then expect_ident st else col
    in
    expect_symbol st "=";
    (col, parse_or st)
  in
  let rec go acc =
    let a = assignment () in
    if accept_symbol st "," then go (a :: acc) else List.rev (a :: acc)
  in
  let sets = go [] in
  let where = if accept_keyword st "WHERE" then Some (parse_or st) else None in
  St_update { u_table = table; u_sets = sets; u_where = where }

let parse_delete st =
  expect_keyword st "FROM";
  let table = expect_ident st in
  let where = if accept_keyword st "WHERE" then Some (parse_or st) else None in
  St_delete { d_table = table; d_where = where }

let parse_statement st =
  match next st with
  | Lexer.T_keyword "CREATE" -> parse_create st
  | Lexer.T_keyword "DROP" ->
      expect_keyword st "TABLE";
      St_drop_table (expect_ident st)
  | Lexer.T_keyword "INSERT" -> parse_insert st
  | Lexer.T_keyword "SELECT" -> parse_select st
  | Lexer.T_keyword "UPDATE" -> parse_update st
  | Lexer.T_keyword "DELETE" -> parse_delete st
  | Lexer.T_keyword "BEGIN" ->
      ignore (accept_keyword st "WORK");
      St_begin
  | Lexer.T_keyword "COMMIT" ->
      ignore (accept_keyword st "WORK");
      St_commit
  | Lexer.T_keyword "ROLLBACK" ->
      ignore (accept_keyword st "WORK");
      St_rollback
  | _ -> fail_at st "expected a statement"

let with_tokens src f =
  match Lexer.tokenize src with
  | Error _ as e -> e
  | Ok toks -> (
      let st = { toks } in
      try Ok (f st)
      with Syntax msg -> Errors.fail (Errors.Parse_error msg))

let parse src =
  with_tokens src (fun st ->
      let stmt = parse_statement st in
      ignore (accept_symbol st ";");
      (match peek st with
      | Lexer.T_eof -> ()
      | _ -> fail_at st "trailing input after statement");
      stmt)

let parse_many src =
  with_tokens src (fun st ->
      let rec go acc =
        match peek st with
        | Lexer.T_eof -> List.rev acc
        | _ ->
            let stmt = parse_statement st in
            let _ = accept_symbol st ";" in
            go (stmt :: acc)
      in
      go [])

let parse_expr src =
  with_tokens src (fun st ->
      let e = parse_or st in
      (match peek st with
      | Lexer.T_eof -> ()
      | _ -> fail_at st "trailing input after expression");
      e)

module Errors = Nsql_util.Errors

type token =
  | T_ident of string
  | T_keyword of string
  | T_int of int
  | T_float of float
  | T_string of string
  | T_symbol of string
  | T_eof

let pp_token ppf = function
  | T_ident s -> Format.fprintf ppf "ident %s" s
  | T_keyword s -> Format.fprintf ppf "keyword %s" s
  | T_int i -> Format.fprintf ppf "int %d" i
  | T_float f -> Format.fprintf ppf "float %g" f
  | T_string s -> Format.fprintf ppf "string '%s'" s
  | T_symbol s -> Format.fprintf ppf "symbol %s" s
  | T_eof -> Format.pp_print_string ppf "<eof>"

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "INSERT"; "INTO"; "VALUES";
    "UPDATE"; "SET"; "DELETE"; "CREATE"; "TABLE"; "INDEX"; "ON"; "PRIMARY";
    "KEY"; "CHECK"; "NULL"; "IS"; "LIKE"; "BETWEEN"; "IN"; "AS"; "ORDER";
    "GROUP"; "BY"; "HAVING"; "ASC"; "DESC"; "LIMIT"; "BEGIN"; "COMMIT";
    "ROLLBACK"; "WORK"; "INT"; "INTEGER"; "FLOAT"; "REAL"; "DOUBLE"; "BOOL";
    "BOOLEAN"; "CHAR"; "VARCHAR"; "TRUE"; "FALSE"; "COUNT"; "SUM"; "MIN";
    "MAX"; "AVG"; "JOIN"; "INNER"; "PRECISION"; "UNIQUE"; "DISTINCT"; "DROP";
  ]

let is_keyword s = List.mem (String.uppercase_ascii s) keywords

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let error = ref None in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  while !error = None && !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      if is_keyword word then push (T_keyword (String.uppercase_ascii word))
      else push (T_ident (String.lowercase_ascii word))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      if !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1] then begin
        incr i;
        while !i < n && is_digit src.[!i] do incr i done;
        (if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
           incr i;
           if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
           while !i < n && is_digit src.[!i] do incr i done
         end);
        push (T_float (float_of_string (String.sub src start (!i - start))))
      end
      else if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        while !i < n && is_digit src.[!i] do incr i done;
        push (T_float (float_of_string (String.sub src start (!i - start))))
      end
      else push (T_int (int_of_string (String.sub src start (!i - start))))
    end
    else if c = '\'' then begin
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !error = None do
        if !i >= n then error := Some "unterminated string literal"
        else if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if !error = None then push (T_string (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "<=" | ">=" | "<>" | "!=" | "||" ->
          push (T_symbol (if two = "!=" then "<>" else two));
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | ',' | ';' | '=' | '<' | '>' | '+' | '-' | '*' | '/'
          | '.' ->
              push (T_symbol (String.make 1 c));
              incr i
          | c -> error := Some (Printf.sprintf "unexpected character %C" c))
    end
  done;
  match !error with
  | Some msg -> Errors.fail (Errors.Parse_error msg)
  | None -> Ok (List.rev (T_eof :: !tokens))

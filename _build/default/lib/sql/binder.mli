(** Name resolution and lowering of surface expressions to the
    single-record expression language.

    A binding environment lists the FROM tables in order; the bound
    expression sees the {e joined row} — the concatenation of the tables'
    fields — so a column reference becomes [Expr.Field (offset + field)].
    For a single-table query the joined row is just the record, and the
    bound expression is exactly the single-variable form the File System
    can ship to a Disk Process. *)

module Row = Nsql_row.Row
module Expr = Nsql_expr.Expr

type env_entry = {
  en_table : string;  (** catalog name *)
  en_alias : string option;
  en_schema : Row.schema;
  en_offset : int;  (** first field number of this table in the joined row *)
}

type env = env_entry list

(** [env_of_tables tables] builds the environment, assigning offsets in
    order. *)
val env_of_tables : (string * string option * Row.schema) list -> env

(** [joined_width env] is the total field count. *)
val joined_width : env -> int

(** [resolve env ~qualifier ~column] finds the joined-row field number.
    Unqualified names must be unambiguous. *)
val resolve :
  env -> qualifier:string option -> column:string ->
  (int, Nsql_util.Errors.t) result

(** [bind env e] lowers a surface expression (no aggregates allowed). *)
val bind : env -> Ast.sexpr -> (Expr.t, Nsql_util.Errors.t) result

(** [lit_value l] converts a literal. *)
val lit_value : Ast.literal -> Row.value

(** Operator lowering, shared with the planner's aggregate rewriting. *)
val cmp_op : Ast.cmp -> Expr.cmp
val bin_op : Ast.binop -> Expr.binop

(** [table_of_field env i] is the env entry owning joined field [i]. *)
val table_of_field : env -> int -> env_entry

(** [fields_within env entry e] — does [e] reference only fields of
    [entry]'s table? (single-variable test for pushdown) *)
val fields_within : env -> env_entry -> Expr.t -> bool

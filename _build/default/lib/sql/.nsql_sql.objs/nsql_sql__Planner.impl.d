lib/sql/planner.ml: Array Ast Binder Catalog Format List Nsql_expr Nsql_fs Nsql_row Nsql_util Option Printf String

lib/sql/executor.ml: Array Ast Binder Catalog Format Hashtbl List Nsql_dp Nsql_expr Nsql_fs Nsql_row Nsql_sim Nsql_sort Nsql_util Planner Printf String

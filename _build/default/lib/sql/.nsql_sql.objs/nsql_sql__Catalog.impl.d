lib/sql/catalog.ml: Array Hashtbl List Nsql_dp Nsql_expr Nsql_fs Nsql_row Nsql_util String

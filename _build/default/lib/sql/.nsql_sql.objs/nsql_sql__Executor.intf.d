lib/sql/executor.mli: Ast Catalog Format Nsql_dp Nsql_fs Nsql_row Nsql_sim Nsql_util Planner

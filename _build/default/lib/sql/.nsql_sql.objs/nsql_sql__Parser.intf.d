lib/sql/parser.mli: Ast Nsql_util

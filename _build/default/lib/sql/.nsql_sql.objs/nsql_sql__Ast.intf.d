lib/sql/ast.mli: Format Nsql_row

lib/sql/lexer.mli: Format Nsql_util

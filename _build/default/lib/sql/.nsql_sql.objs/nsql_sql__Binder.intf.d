lib/sql/binder.mli: Ast Nsql_expr Nsql_row Nsql_util

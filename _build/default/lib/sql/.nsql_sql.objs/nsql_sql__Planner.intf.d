lib/sql/planner.mli: Ast Catalog Format Nsql_expr Nsql_fs Nsql_row Nsql_util

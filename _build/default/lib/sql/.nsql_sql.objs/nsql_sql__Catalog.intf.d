lib/sql/catalog.mli: Nsql_dp Nsql_expr Nsql_fs Nsql_row Nsql_util

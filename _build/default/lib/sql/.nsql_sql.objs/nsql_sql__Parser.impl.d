lib/sql/parser.ml: Ast Format Lexer List Nsql_row Nsql_util Printf String

lib/sql/binder.ml: Array Ast List Nsql_expr Nsql_row Nsql_util Printf String

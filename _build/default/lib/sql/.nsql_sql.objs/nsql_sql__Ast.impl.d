lib/sql/ast.ml: Format List Nsql_row

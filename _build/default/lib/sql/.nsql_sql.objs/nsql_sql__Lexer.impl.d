lib/sql/lexer.ml: Buffer Format List Nsql_util Printf String

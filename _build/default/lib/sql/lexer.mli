(** Hand-written SQL lexer. Keywords are case-insensitive; identifiers are
    normalised to lowercase; strings use single quotes with [''] escapes. *)

type token =
  | T_ident of string
  | T_keyword of string  (** uppercased *)
  | T_int of int
  | T_float of float
  | T_string of string
  | T_symbol of string  (** punctuation and operators *)
  | T_eof

val pp_token : Format.formatter -> token -> unit

(** [tokenize src] produces the token list. *)
val tokenize : string -> (token list, Nsql_util.Errors.t) result

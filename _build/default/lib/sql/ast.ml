type literal =
  | L_int of int
  | L_float of float
  | L_string of string
  | L_bool of bool
  | L_null

type binop = Add | Sub | Mul | Div | Concat

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type agg_kind = A_count_star | A_count | A_sum | A_min | A_max | A_avg

type sexpr =
  | E_col of string option * string
  | E_lit of literal
  | E_binop of binop * sexpr * sexpr
  | E_cmp of cmp * sexpr * sexpr
  | E_and of sexpr * sexpr
  | E_or of sexpr * sexpr
  | E_not of sexpr
  | E_is_null of sexpr
  | E_is_not_null of sexpr
  | E_like of sexpr * string
  | E_between of sexpr * sexpr * sexpr
  | E_in of sexpr * literal list
  | E_agg of agg_kind * sexpr option

type select_item = S_star | S_expr of sexpr * string option

type order_item = { o_expr : sexpr; o_desc : bool }

type col_def = {
  cd_name : string;
  cd_type : Nsql_row.Row.col_type;
  cd_not_null : bool;
}

type statement =
  | St_create_table of {
      ct_name : string;
      ct_cols : col_def list;
      ct_primary_key : string list;
      ct_check : sexpr option;
    }
  | St_create_index of { ci_name : string; ci_table : string; ci_cols : string list }
  | St_insert of {
      i_table : string;
      i_cols : string list option;
      i_values : literal list list;
    }
  | St_select of select_stmt
  | St_update of {
      u_table : string;
      u_sets : (string * sexpr) list;
      u_where : sexpr option;
    }
  | St_delete of { d_table : string; d_where : sexpr option }
  | St_drop_table of string
  | St_begin
  | St_commit
  | St_rollback

and select_stmt = {
  sel_distinct : bool;
  sel_items : select_item list;
  sel_from : (string * string option) list;
  sel_where : sexpr option;
  sel_group_by : sexpr list;
  sel_having : sexpr option;
  sel_order_by : order_item list;
  sel_limit : int option;
}

let pp_literal ppf = function
  | L_int i -> Format.pp_print_int ppf i
  | L_float f -> Format.fprintf ppf "%g" f
  | L_string s -> Format.fprintf ppf "'%s'" s
  | L_bool b -> Format.pp_print_string ppf (if b then "TRUE" else "FALSE")
  | L_null -> Format.pp_print_string ppf "NULL"

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Concat -> "||"

let cmp_symbol = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let agg_name = function
  | A_count_star | A_count -> "COUNT"
  | A_sum -> "SUM"
  | A_min -> "MIN"
  | A_max -> "MAX"
  | A_avg -> "AVG"

let rec pp_sexpr ppf = function
  | E_col (None, c) -> Format.pp_print_string ppf c
  | E_col (Some t, c) -> Format.fprintf ppf "%s.%s" t c
  | E_lit l -> pp_literal ppf l
  | E_binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_sexpr a (binop_symbol op) pp_sexpr b
  | E_cmp (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_sexpr a (cmp_symbol op) pp_sexpr b
  | E_and (a, b) -> Format.fprintf ppf "(%a AND %a)" pp_sexpr a pp_sexpr b
  | E_or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp_sexpr a pp_sexpr b
  | E_not a -> Format.fprintf ppf "(NOT %a)" pp_sexpr a
  | E_is_null a -> Format.fprintf ppf "(%a IS NULL)" pp_sexpr a
  | E_is_not_null a -> Format.fprintf ppf "(%a IS NOT NULL)" pp_sexpr a
  | E_like (a, p) -> Format.fprintf ppf "(%a LIKE '%s')" pp_sexpr a p
  | E_between (a, lo, hi) ->
      Format.fprintf ppf "(%a BETWEEN %a AND %a)" pp_sexpr a pp_sexpr lo
        pp_sexpr hi
  | E_in (a, ls) ->
      Format.fprintf ppf "(%a IN (%a))" pp_sexpr a
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_literal)
        ls
  | E_agg (A_count_star, _) -> Format.pp_print_string ppf "COUNT(*)"
  | E_agg (kind, Some e) -> Format.fprintf ppf "%s(%a)" (agg_name kind) pp_sexpr e
  | E_agg (kind, None) -> Format.fprintf ppf "%s(?)" (agg_name kind)

let pp_statement ppf = function
  | St_create_table { ct_name; _ } -> Format.fprintf ppf "CREATE TABLE %s" ct_name
  | St_create_index { ci_name; ci_table; _ } ->
      Format.fprintf ppf "CREATE INDEX %s ON %s" ci_name ci_table
  | St_insert { i_table; i_values; _ } ->
      Format.fprintf ppf "INSERT INTO %s (%d rows)" i_table (List.length i_values)
  | St_select _ -> Format.pp_print_string ppf "SELECT"
  | St_update { u_table; _ } -> Format.fprintf ppf "UPDATE %s" u_table
  | St_delete { d_table; _ } -> Format.fprintf ppf "DELETE FROM %s" d_table
  | St_drop_table name -> Format.fprintf ppf "DROP TABLE %s" name
  | St_begin -> Format.pp_print_string ppf "BEGIN WORK"
  | St_commit -> Format.pp_print_string ppf "COMMIT WORK"
  | St_rollback -> Format.pp_print_string ppf "ROLLBACK WORK"

let conjuncts e =
  let rec go acc = function
    | E_and (a, b) -> go (go acc b) a
    | e -> e :: acc
  in
  go [] e

let rec has_agg = function
  | E_agg _ -> true
  | E_col _ | E_lit _ -> false
  | E_binop (_, a, b) | E_cmp (_, a, b) | E_and (a, b) | E_or (a, b) ->
      has_agg a || has_agg b
  | E_not a | E_is_null a | E_is_not_null a | E_like (a, _) | E_in (a, _) ->
      has_agg a
  | E_between (a, lo, hi) -> has_agg a || has_agg lo || has_agg hi

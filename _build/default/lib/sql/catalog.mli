(** The SQL catalog: table name → file handle + schema.

    DDL placement policy: tables created through SQL go to the node's Disk
    Processes round-robin; programmatically created (e.g. partitioned)
    files can be registered directly. *)

module Fs = Nsql_fs.Fs
module Row = Nsql_row.Row
module Expr = Nsql_expr.Expr

type table = { t_name : string; t_file : Fs.file; t_schema : Row.schema }

type t

val create : Fs.t -> dps:Nsql_dp.Dp.t array -> t

val fs : t -> Fs.t

(** [register t name file] adds an externally created SQL file. *)
val register : t -> string -> Fs.file -> (unit, Nsql_util.Errors.t) result

val find : t -> string -> (table, Nsql_util.Errors.t) result

val table_names : t -> string list

(** [create_table t ~name ~schema ?check ()] creates an unpartitioned
    table on the next Disk Process (round-robin). *)
val create_table :
  t -> name:string -> schema:Row.schema -> ?check:Expr.t -> unit ->
  (table, Nsql_util.Errors.t) result

(** [drop_table t name] removes the table from the catalog; its data
    becomes unreachable. The on-volume blocks and Disk Process file labels
    are not reclaimed (the simulated volumes only grow), so re-creating a
    dropped table requires a fresh name. *)
val drop_table : t -> string -> (unit, Nsql_util.Errors.t) result

(** [create_index t ~tx ~table ~index ~cols] builds a secondary index
    (with backfill) and updates the catalog handle. *)
val create_index :
  t -> tx:int -> table:string -> index:string -> cols:string list ->
  (unit, Nsql_util.Errors.t) result

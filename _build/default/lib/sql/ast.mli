(** Abstract syntax of the supported SQL dialect.

    The dialect covers what the paper's discussion and examples need:
    CREATE TABLE (with PRIMARY KEY and CHECK), CREATE INDEX, INSERT,
    SELECT (projection, WHERE, joins, GROUP BY with aggregates, ORDER BY,
    LIMIT), UPDATE with expressions, DELETE, and transaction control. *)

type literal =
  | L_int of int
  | L_float of float
  | L_string of string
  | L_bool of bool
  | L_null

type binop = Add | Sub | Mul | Div | Concat

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type agg_kind = A_count_star | A_count | A_sum | A_min | A_max | A_avg

type sexpr =
  | E_col of string option * string  (** optional table qualifier, column *)
  | E_lit of literal
  | E_binop of binop * sexpr * sexpr
  | E_cmp of cmp * sexpr * sexpr
  | E_and of sexpr * sexpr
  | E_or of sexpr * sexpr
  | E_not of sexpr
  | E_is_null of sexpr
  | E_is_not_null of sexpr
  | E_like of sexpr * string
  | E_between of sexpr * sexpr * sexpr
  | E_in of sexpr * literal list
  | E_agg of agg_kind * sexpr option

type select_item = S_star | S_expr of sexpr * string option

type order_item = { o_expr : sexpr; o_desc : bool }

type col_def = {
  cd_name : string;
  cd_type : Nsql_row.Row.col_type;
  cd_not_null : bool;
}

type statement =
  | St_create_table of {
      ct_name : string;
      ct_cols : col_def list;
      ct_primary_key : string list;
      ct_check : sexpr option;
    }
  | St_create_index of { ci_name : string; ci_table : string; ci_cols : string list }
  | St_insert of {
      i_table : string;
      i_cols : string list option;
      i_values : literal list list;
    }
  | St_select of select_stmt
  | St_update of {
      u_table : string;
      u_sets : (string * sexpr) list;
      u_where : sexpr option;
    }
  | St_delete of { d_table : string; d_where : sexpr option }
  | St_drop_table of string
  | St_begin
  | St_commit
  | St_rollback

and select_stmt = {
  sel_distinct : bool;
  sel_items : select_item list;
  sel_from : (string * string option) list;  (** table, alias *)
  sel_where : sexpr option;
  sel_group_by : sexpr list;
  sel_having : sexpr option;
  sel_order_by : order_item list;
  sel_limit : int option;
}

val agg_name : agg_kind -> string

val pp_literal : Format.formatter -> literal -> unit
val pp_sexpr : Format.formatter -> sexpr -> unit
val pp_statement : Format.formatter -> statement -> unit

(** [conjuncts e] flattens nested ANDs. *)
val conjuncts : sexpr -> sexpr list

(** [has_agg e] — does the expression contain an aggregate? *)
val has_agg : sexpr -> bool

(** The SQL Executor: runs compiled plans by invoking the File System.

    Runs in the application's process environment (the requester side);
    every data access it performs is an FS-DP message issued by
    {!Nsql_fs.Fs}. Join, aggregation, sort (via FastSort) and final
    projection happen here, over the rows the Disk Processes have already
    filtered and projected. *)

module Row = Nsql_row.Row
module Fs = Nsql_fs.Fs

type ctx = {
  fs : Fs.t;
  sim : Nsql_sim.Sim.t;
  tx : int;
  read_lock : Nsql_dp.Dp_msg.lock_mode;
      (** lock mode for SELECT scans: [L_none] is browse access (read
          through locks), [L_shared] gives repeatable reads via
          virtual-block group locks *)
}

(** Result rows with their output column names. *)
type rowset = { cols : string list; rows : Row.row list }

val pp_rowset : Format.formatter -> rowset -> unit

val run_select :
  ctx -> Planner.select_plan -> (rowset, Nsql_util.Errors.t) result

(** [run_update ctx plan] returns the number of rows updated. *)
val run_update : ctx -> Planner.update_plan -> (int, Nsql_util.Errors.t) result

val run_delete : ctx -> Planner.delete_plan -> (int, Nsql_util.Errors.t) result

(** [run_insert ctx table ~cols values] inserts literal rows, reordering
    and null-filling per the optional column list. Returns rows
    inserted. *)
val run_insert :
  ctx -> Catalog.table -> cols:string list option ->
  Ast.literal list list -> (int, Nsql_util.Errors.t) result
